#!/bin/sh
# Tier-2 CI gate (see README "Testing"): vet, build, and the full test
# suite under the race detector. The parallel surfaces -race exercises:
# the campaign worker pool, the pipeline's singleflight cache and
# study scheduler (experiment.Study fan-out), the snapshot engines, and
# the telemetry registry every one of them reports into concurrently.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Pipeline-equivalence smoke: the same artifact rendered through the
# memoized pipeline and through the legacy serial path must be
# bit-identical (DESIGN.md §9's determinism guarantee, end to end).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -pipeline=true >"$tmpdir/pipeline.out"
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -pipeline=false >"$tmpdir/serial.out"
diff "$tmpdir/pipeline.out" "$tmpdir/serial.out"

# Core-equivalence gate (DESIGN.md §11): the same campaigns executed on
# the predecoded fast cores and pinned to the reference loops must render
# bit-identical artifacts — fast-core drift in any outcome count, origin
# attribution, or golden counter shows up as a diff here.
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -refcore=false >"$tmpdir/fastcore.out"
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -refcore=true >"$tmpdir/refcore.out"
diff "$tmpdir/fastcore.out" "$tmpdir/refcore.out"

# Equivalence-pruning gate (DESIGN.md §10): a pruned campaign's SDC
# estimate must land inside the full campaign's 95% Wilson interval on
# every cross-validation row. prunebench marks misses inside_ci=false.
go run ./cmd/experiments -only prunebench -bench crc32 -runs 2000 -q \
    -json >"$tmpdir/prune.json"
if grep -q '"inside_ci": false' "$tmpdir/prune.json"; then
    echo "pruned SDC estimate outside the full campaign's 95% Wilson interval:" >&2
    cat "$tmpdir/prune.json" >&2
    exit 1
fi

# Static-masking gate (DESIGN.md §15): the pruned+masked estimate must
# also land inside the full campaign's 95% Wilson interval, and the
# dynamic probe of statically proven-masked bits must find every sample
# benign (anything else is a soundness bug in internal/bitmask).
go run ./cmd/experiments -only maskbench -bench crc32 -runs 2000 -q \
    -json >"$tmpdir/mask.json"
if grep -q '"inside_ci": false' "$tmpdir/mask.json"; then
    echo "pruned+masked SDC estimate outside the full campaign's 95% Wilson interval:" >&2
    cat "$tmpdir/mask.json" >&2
    exit 1
fi
if ! grep -q '"agreement": 1' "$tmpdir/mask.json" || \
    grep -q '"agreement": 0' "$tmpdir/mask.json"; then
    echo "static masking verdicts disagree with dynamic injection:" >&2
    cat "$tmpdir/mask.json" >&2
    exit 1
fi

# Compositional-sectioning gate (DESIGN.md §16): after a one-function
# edit, the composed per-section SDC estimate must land inside the
# edited program's full-campaign 95% Wilson interval on every row,
# re-execute only dirty sections, and cut injections >= 5x on the rows
# where sections are finer than the edit (crc32/asm is the documented
# single-function control at ~1x). Seed 7 is the pinned evaluation seed
# (EXPERIMENTS.md A4).
go run ./cmd/experiments -only sectionbench -runs 2000 -seed 7 -q \
    -json >"$tmpdir/section.json"
if grep -q '"inside_ci": false' "$tmpdir/section.json"; then
    echo "composed sectioned SDC estimate outside the full campaign's 95% Wilson interval:" >&2
    cat "$tmpdir/section.json" >&2
    exit 1
fi
if grep -q '"only_dirty": false' "$tmpdir/section.json"; then
    echo "sectioned re-analysis re-executed an unchanged section:" >&2
    cat "$tmpdir/section.json" >&2
    exit 1
fi
big=$(grep -o '"reduction": [0-9.]*' "$tmpdir/section.json" |
    awk '$2 >= 5 {n++} END {print n+0}')
if [ "$big" -lt 3 ]; then
    echo "expected >=5x injection reduction on at least 3 of 4 sectionbench rows:" >&2
    cat "$tmpdir/section.json" >&2
    exit 1
fi

# Telemetry smoke (DESIGN.md §12): a real study run must emit the run
# report and the span tree with the pinned metric families and the
# study → pipeline stage → campaign batch → engine run span hierarchy.
go run ./cmd/experiments -only results -bench crc32 -runs 40 -samples 120 -q \
    -metrics "$tmpdir/metrics.json" -trace "$tmpdir/trace.json"
for key in engine_runs_total campaign_runs_total pipeline_stage_misses_total \
    campaign_batch_seconds engine_slow_fallback_total; do
    grep -q "$key" "$tmpdir/metrics.json"
done
for span in '"study"' 'pipeline.campaign' 'campaign.batch' 'engine.run'; do
    grep -q "$span" "$tmpdir/trace.json"
done

# Sharded-campaign exactness gate (DESIGN.md §13): the same campaign
# executed unsharded and sharded across 1, 2, and 4 worker processes
# must print bit-identical statistics — any divergence in shard
# partitioning, the worker protocol, or the merge shows up as a diff.
go build -o "$tmpdir/flowery" ./cmd/flowery
"$tmpdir/flowery" inject -runs 400 -seed 7 crc32 >"$tmpdir/unsharded.out"
for procs in 1 2 4; do
    "$tmpdir/flowery" inject -runs 400 -seed 7 -shards 8 \
        -shard-workers "$procs" crc32 >"$tmpdir/sharded.out"
    diff "$tmpdir/unsharded.out" "$tmpdir/sharded.out"
done

# Telemetry overhead guard: the no-op sink must cost <= 2% of simbench
# engine throughput (disabled and enabled runs agree within tolerance;
# the test retries to ride out scheduler noise).
TELEMETRY_OVERHEAD_GUARD=1 go test ./internal/experiment \
    -run TestTelemetryOverheadGuard -count=1

# Formatting gate: the tree must be gofmt-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Daemon round-trip gate (DESIGN.md §14): a campaign submitted to
# floweryd must stream statistics bit-identical to the batch
# `flowery inject` of the same spec; a repeated submission must be
# served from the persistent artifact store (observable as a
# store_hits_total increment on /metrics) and still print identically;
# and the daemon-side record log must byte-match the batch one.
go build -o "$tmpdir/floweryd" ./cmd/floweryd
"$tmpdir/floweryd" -addr 127.0.0.1:0 -addr-file "$tmpdir/addr" \
    -store "$tmpdir/cas" 2>"$tmpdir/floweryd.log" &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT
for _ in $(seq 50); do
    [ -s "$tmpdir/addr" ] && break
    sleep 0.1
done
daemon_url="http://$(cat "$tmpdir/addr")"

"$tmpdir/flowery" inject -runs 60 -samples 120 -seed 11 \
    -reclog "$tmpdir/batch.reclog" crc32 >"$tmpdir/batch.out"
"$tmpdir/flowery" remote -addr "$daemon_url" inject -runs 60 -samples 120 -seed 11 \
    -reclog "$tmpdir/remote.reclog" crc32 >"$tmpdir/remote.out"
diff "$tmpdir/batch.out" "$tmpdir/remote.out"
cmp "$tmpdir/batch.reclog" "$tmpdir/remote.reclog"

# Repeat without records: answered from the store, identical stats.
"$tmpdir/flowery" remote -addr "$daemon_url" inject -runs 60 -samples 120 -seed 11 \
    crc32 >"$tmpdir/repeat.out"
diff "$tmpdir/batch.out" "$tmpdir/repeat.out"
"$tmpdir/flowery" remote -addr "$daemon_url" metrics >"$tmpdir/daemon.prom"
grep -q '^store_hits_total [1-9]' "$tmpdir/daemon.prom"
grep -q '^service_jobs_done_total 2' "$tmpdir/daemon.prom"

# Sectioned incremental gate (DESIGN.md §16): submit a sectioned
# campaign on a crc32 IR file, edit one constant outside the loops,
# resubmit, and require that only the edited section re-executes while
# both loop summaries are recalled from the daemon's persistent store
# across processes — observable on the resubmitted job's own metrics
# page as pipeline_store_hits_total.
"$tmpdir/flowery" ir crc32 >"$tmpdir/prog.ir"
"$tmpdir/flowery" remote -addr "$daemon_url" inject -sections -layer ir \
    -runs 2000 -seed 7 "$tmpdir/prog.ir" \
    >"$tmpdir/sec_cold.out" 2>"$tmpdir/sec_cold.err"
grep -q 'sectioned: sections=3 executed=3 recalled=0' "$tmpdir/sec_cold.out"
sed 's/store i64 4294967295, %3/store i64 4294967294, %3/' \
    "$tmpdir/prog.ir" >"$tmpdir/prog_edited.ir"
if cmp -s "$tmpdir/prog.ir" "$tmpdir/prog_edited.ir"; then
    echo "fixture edit did not change the IR" >&2
    exit 1
fi
"$tmpdir/flowery" remote -addr "$daemon_url" inject -sections -layer ir \
    -runs 2000 -seed 7 "$tmpdir/prog_edited.ir" \
    >"$tmpdir/sec_warm.out" 2>"$tmpdir/sec_warm.err"
grep -q 'sectioned: sections=3 executed=1 recalled=2' "$tmpdir/sec_warm.out"
job=$(awk '/^remote: job / {print $3; exit}' "$tmpdir/sec_warm.err")
"$tmpdir/flowery" remote -addr "$daemon_url" metrics "$job" >"$tmpdir/secjob.prom"
grep -q '^pipeline_store_hits_total [1-9]' "$tmpdir/secjob.prom"
kill "$daemon_pid"

# Remote socket worker gate (DESIGN.md §17): the same campaign farmed
# over TCP to two socket workers must print statistics bit-identical to
# the unsharded run, and the shard-streamed record log must byte-match
# the single-writer one.
"$tmpdir/flowery" shard-worker -listen 127.0.0.1:0 \
    -addr-file "$tmpdir/w1.addr" 2>/dev/null &
w1_pid=$!
"$tmpdir/flowery" shard-worker -listen 127.0.0.1:0 \
    -addr-file "$tmpdir/w2.addr" 2>/dev/null &
w2_pid=$!
w3_pid=
trap 'kill "$daemon_pid" "$w1_pid" "$w2_pid" $w3_pid 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for _ in $(seq 50); do
    [ -s "$tmpdir/w1.addr" ] && [ -s "$tmpdir/w2.addr" ] && break
    sleep 0.1
done
"$tmpdir/flowery" inject -runs 400 -seed 7 \
    -reclog "$tmpdir/local.frl" crc32 >/dev/null
"$tmpdir/flowery" inject -runs 400 -seed 7 -shards 8 \
    -remote-workers "$(cat "$tmpdir/w1.addr"),$(cat "$tmpdir/w2.addr")" \
    -reclog "$tmpdir/socket.frl" crc32 >"$tmpdir/socket.out"
diff "$tmpdir/unsharded.out" "$tmpdir/socket.out"
cmp "$tmpdir/local.frl" "$tmpdir/socket.frl"

# Chaos smoke (DESIGN.md §17): one of the two workers dies abruptly
# after its first result — no quit, no teardown, like a crashed host.
# The campaign must still print bit-identical statistics, with the lost
# shard visibly re-dealt in telemetry. Redialing the dead worker is
# disabled so the smoke exercises re-deal, not resurrection.
FLOWERY_SHARD_CHAOS_EXIT_AFTER=1 "$tmpdir/flowery" shard-worker \
    -listen 127.0.0.1:0 -addr-file "$tmpdir/w3.addr" 2>/dev/null &
w3_pid=$!
for _ in $(seq 50); do
    [ -s "$tmpdir/w3.addr" ] && break
    sleep 0.1
done
"$tmpdir/flowery" -metrics "$tmpdir/chaos.prom" inject -runs 400 -seed 7 \
    -shards 8 -remote-redials -1 \
    -remote-workers "$(cat "$tmpdir/w1.addr"),$(cat "$tmpdir/w3.addr")" \
    crc32 >"$tmpdir/chaos.out"
diff "$tmpdir/unsharded.out" "$tmpdir/chaos.out"
grep -q '^shard_shards_redealt_total [1-9]' "$tmpdir/chaos.prom"
