#!/bin/sh
# Tier-2 CI gate (see README "Testing"): build, vet, and the full test
# suite under the race detector. The campaign scheduler and the snapshot
# engines are the main concurrency surfaces -race exercises.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
