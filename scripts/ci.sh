#!/bin/sh
# Tier-2 CI gate (see README "Testing"): build, vet, and the full test
# suite under the race detector. The campaign scheduler and the snapshot
# engines are the main concurrency surfaces -race exercises.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Pipeline-equivalence smoke: the same artifact rendered through the
# memoized pipeline and through the legacy serial path must be
# bit-identical (DESIGN.md §9's determinism guarantee, end to end).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -pipeline=true >"$tmpdir/pipeline.out"
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -pipeline=false >"$tmpdir/serial.out"
diff "$tmpdir/pipeline.out" "$tmpdir/serial.out"

# Core-equivalence gate (DESIGN.md §11): the same campaigns executed on
# the predecoded fast cores and pinned to the reference loops must render
# bit-identical artifacts — fast-core drift in any outcome count, origin
# attribution, or golden counter shows up as a diff here.
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -refcore=false >"$tmpdir/fastcore.out"
go run ./cmd/experiments -only fig2 -bench crc32 -runs 40 -samples 120 -q \
    -refcore=true >"$tmpdir/refcore.out"
diff "$tmpdir/fastcore.out" "$tmpdir/refcore.out"

# Equivalence-pruning gate (DESIGN.md §10): a pruned campaign's SDC
# estimate must land inside the full campaign's 95% Wilson interval on
# every cross-validation row. prunebench marks misses inside_ci=false.
go run ./cmd/experiments -only prunebench -bench crc32 -runs 2000 -q \
    -json >"$tmpdir/prune.json"
if grep -q '"inside_ci": false' "$tmpdir/prune.json"; then
    echo "pruned SDC estimate outside the full campaign's 95% Wilson interval:" >&2
    cat "$tmpdir/prune.json" >&2
    exit 1
fi
