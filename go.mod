module flowery

go 1.22
