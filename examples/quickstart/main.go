// Quickstart: build a tiny program with the IR builder, protect it with
// instruction duplication + Flowery, and watch a fault get caught at
// assembly level.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flowery/internal/backend"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// buildProgram constructs: sum of squares 0..9, printed.
func buildProgram() *ir.Module {
	m := ir.NewModule("quickstart")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	sum := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 10), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		sq := b.Mul(i, i)
		cur := b.Load(ir.I64, sum)
		b.Store(b.Add(cur, sq), sum)
	})
	v := b.Load(ir.I64, sum)
	b.PrintI64(v)
	b.Ret(v)
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	m := buildProgram()
	fmt.Println("--- original IR ---")
	fmt.Print(m.String())

	// Protect: duplicate everything, then apply the Flowery patches.
	if err := dup.ApplyFull(m); err != nil {
		log.Fatal(err)
	}
	st, err := flowery.Apply(m, flowery.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- protected (stores hoisted: %d, branches patched: %d, compares isolated: %d) ---\n",
		st.StoresHoisted, st.BranchesPatched, st.CmpsIsolated)

	// Lower to assembly and run on the machine simulator.
	prog, err := backend.Lower(m)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		log.Fatal(err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})
	fmt.Printf("golden run: output=%q dynamic instructions=%d\n", golden.Output, golden.DynInstrs)

	// Inject a handful of faults spread across the execution.
	for frac := 1; frac <= 5; frac++ {
		target := golden.InjectableInstrs * int64(frac) / 6
		res := mc.Run(sim.Fault{TargetIndex: target, Bit: 7}, sim.Options{})
		verdict := "benign"
		switch {
		case res.Status == sim.StatusDetected:
			verdict = "DETECTED by a checker"
		case res.Status == sim.StatusTrap:
			verdict = fmt.Sprintf("DUE (%v)", res.Trap)
		case string(res.Output) != string(golden.Output):
			verdict = fmt.Sprintf("SDC! output %q", res.Output)
		}
		fmt.Printf("fault @%4d bit 7 -> %s\n", target, verdict)
	}
}
