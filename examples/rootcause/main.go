// Rootcause: reproduce the paper's illustrative figures (4–15) — show,
// on a minimal function, how each of the five penetration patterns
// appears in the lowered assembly of a duplicated program, and how the
// Flowery patches remove the three fixable ones.
//
//	go run ./examples/rootcause
package main

import (
	"fmt"
	"log"
	"strings"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
)

// buildDemo is a miniature of the paper's running example: a couple of
// loads feeding arithmetic, a comparison steering a branch, a store, and
// a call — one synchronization point of every kind.
func buildDemo() *ir.Module {
	m := ir.NewModule("demo")
	gA := m.NewGlobalI64("a", []int64{41})
	gB := m.NewGlobalI64("b", []int64{1})
	gOut := m.NewGlobalI64("out", []int64{0})

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, gA)
	y := b.Load(ir.I64, gB)
	sum := b.Add(x, y)
	big := b.ICmp(ir.PredSGT, sum, ir.ConstInt(ir.I64, 10))
	b.If(big, func() {
		b.Store(sum, gOut)
		b.PrintI64(sum)
	}, func() {
		b.PrintI64(ir.ConstInt(ir.I64, 0))
	})
	b.Ret(ir.ConstInt(ir.I64, 0))
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	fmt.Println("=== Original program (cf. paper Fig. 1a) ===")
	orig := buildDemo()
	fmt.Print(orig.String())

	fmt.Println("=== After instruction duplication (cf. Fig. 1b, 8) ===")
	protected := buildDemo()
	if err := dup.ApplyFull(protected); err != nil {
		log.Fatal(err)
	}
	fmt.Print(protected.String())

	fmt.Println("=== Lowered assembly of the protected program ===")
	fmt.Println("    (origin tags mark the penetration sites of Fig. 5, 7, 9, 11, 12)")
	prog, err := backend.Lower(protected)
	if err != nil {
		log.Fatal(err)
	}
	printMain(prog)
	summarize("ID only", prog)

	fmt.Println("=== Same program with the Flowery patches (cf. Fig. 13–15) ===")
	patched := buildDemo()
	if err := dup.ApplyFull(patched); err != nil {
		log.Fatal(err)
	}
	st, err := flowery.Apply(patched, flowery.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    (eager stores: %d, postponed branch checks: %d, isolated compares: %d)\n",
		st.StoresHoisted, st.BranchesPatched, st.CmpsIsolated)
	prog2, err := backend.Lower(patched)
	if err != nil {
		log.Fatal(err)
	}
	printMain(prog2)
	summarize("ID + Flowery", prog2)
}

func printMain(p *asm.Program) {
	f := p.Func("main")
	fmt.Print(f.String())
	fmt.Println()
}

// summarize counts static penetration sites by origin.
func summarize(label string, p *asm.Program) {
	counts := p.OriginCounts()
	var parts []string
	for _, o := range []asm.Origin{asm.OriginStoreReload, asm.OriginBranchTest,
		asm.OriginCmpFolded, asm.OriginCallArg, asm.OriginFrame} {
		parts = append(parts, fmt.Sprintf("%s=%d", o, counts[o]))
	}
	fmt.Printf(">>> %s static penetration sites: %s\n\n", label, strings.Join(parts, " "))
}
