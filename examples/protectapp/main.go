// Protectapp: the downstream-user workflow — you have an application (a
// matrix-multiply kernel here), a reliability target, and a performance
// budget. Profile it, pick a protection level with the knapsack
// selection, apply duplication + Flowery, and measure what you bought.
//
//	go run ./examples/protectapp
package main

import (
	"fmt"
	"log"

	"flowery/internal/backend"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

const n = 8 // matrix dimension

// buildApp multiplies two matrices and prints a digest.
func buildApp() *ir.Module {
	m := ir.NewModule("matmul")
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := range a {
		a[i] = float64((i*7)%13) / 3
		bb[i] = float64((i*5)%11) / 7
	}
	gA := m.NewGlobalF64("a", a)
	gB := m.NewGlobalF64("b", bb)
	gC := m.NewGlobalF64("c", make([]float64, n*n))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	c64 := func(v int64) *ir.Const { return ir.ConstInt(ir.I64, v) }
	b.ForLoop("i", c64(0), c64(n), c64(1), func(i ir.Value) {
		b.ForLoop("j", c64(0), c64(n), c64(1), func(j ir.Value) {
			acc := b.AllocVar(ir.F64)
			b.Store(ir.ConstFloat(0), acc)
			b.ForLoop("k", c64(0), c64(n), c64(1), func(k ir.Value) {
				av := b.LoadElem(ir.F64, gA, b.Add(b.Mul(i, c64(n)), k))
				bv := b.LoadElem(ir.F64, gB, b.Add(b.Mul(k, c64(n)), j))
				cur := b.Load(ir.F64, acc)
				b.Store(b.FAdd(cur, b.FMul(av, bv)), acc)
			})
			b.StoreElem(ir.F64, gC, b.Add(b.Mul(i, c64(n)), j), b.Load(ir.F64, acc))
		})
	})
	sum := b.AllocVar(ir.F64)
	b.Store(ir.ConstFloat(0), sum)
	b.ForLoop("ck", c64(0), c64(n*n), c64(1), func(i ir.Value) {
		b.Store(b.FAdd(b.Load(ir.F64, sum), b.LoadElem(ir.F64, gC, i)), sum)
	})
	b.PrintF64(b.Load(ir.F64, sum))
	b.PrintF64(b.LoadElem(ir.F64, gC, c64(n*n/2)))
	b.Ret(c64(0))
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	const runs = 1200
	spec := campaign.Spec{Runs: runs, Seed: 7}

	// Step 1: baseline vulnerability at assembly level.
	raw := measureAsm(buildApp(), spec)
	fmt.Printf("unprotected: SDC %.1f%%  DUE %.1f%%  (dynamic asm instructions: %d)\n",
		raw.SDCRate()*100, raw.Rate(campaign.OutcomeDUE)*100, raw.GoldenDyn)

	// Step 2: profile once to find the SDC-heavy instructions.
	profile, err := dup.BuildProfile(buildApp(), dup.ProfileOptions{Samples: 1000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled: raw IR SDC probability %.1f%%\n\n", profile.BaseSDC*100)

	// Step 3: compare protection configurations under the budget.
	fmt.Printf("%22s %10s %10s %10s\n", "configuration", "coverage", "SDC rate", "overhead")
	for _, level := range []dup.Level{dup.Level30, dup.Level70} {
		for _, withFlowery := range []bool{false, true} {
			m := buildApp()
			if err := dup.Apply(m, dup.Select(profile, level)); err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("ID@%.0f%%", float64(level)*100)
			if withFlowery {
				if _, err := flowery.Apply(m, flowery.All()); err != nil {
					log.Fatal(err)
				}
				label += "+Flowery"
			}
			st := measureAsm(m, spec)
			fmt.Printf("%22s %9.1f%% %9.2f%% %9.1f%%\n",
				label,
				campaign.Coverage(raw, st)*100,
				st.SDCRate()*100,
				(float64(st.GoldenDyn)/float64(raw.GoldenDyn)-1)*100)
		}
	}
	fmt.Println("\nFlowery closes most of the gap between the nominal protection level")
	fmt.Println("and the coverage actually delivered at assembly level.")

	// Step 4: sanity — the protected program still computes the same thing.
	m := buildApp()
	base := interp.New(m).Run(sim.Fault{}, sim.Options{})
	p := buildApp()
	if err := dup.ApplyFull(p); err != nil {
		log.Fatal(err)
	}
	if _, err := flowery.Apply(p, flowery.All()); err != nil {
		log.Fatal(err)
	}
	got := interp.New(p).Run(sim.Fault{}, sim.Options{})
	if string(base.Output) != string(got.Output) {
		log.Fatal("protection changed program semantics!")
	}
	fmt.Println("semantics check passed: protected output identical to baseline.")
}

func measureAsm(m *ir.Module, spec campaign.Spec) campaign.Stats {
	prog, err := backend.Lower(m)
	if err != nil {
		log.Fatal(err)
	}
	st, err := campaign.Run(func() (sim.Engine, error) { return machine.New(m, prog) }, spec)
	if err != nil {
		log.Fatal(err)
	}
	return st
}
