// Crosslayer: reproduce the paper's core finding on one benchmark —
// instruction duplication looks much better when evaluated at the level
// it was applied (IR) than at the level where faults actually strike
// (assembly).
//
//	go run ./examples/crosslayer [benchmark] [runs]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

func main() {
	name := "bfs"
	runs := 800
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		n, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad run count %q", os.Args[2])
		}
		runs = n
	}
	bm, ok := bench.ByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (try: %v)", name, bench.Names())
	}

	spec := campaign.Spec{Runs: runs, Seed: 2023}
	rawIR := mustCampaign(irFactory(bm.Build()), spec)
	rawAsm := mustCampaign(asmFactory(bm.Build()), spec)

	profile, err := dup.BuildProfile(bm.Build(), dup.ProfileOptions{Samples: 800, Seed: 2023})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: raw SDC rate  IR %.1f%%  assembly %.1f%%\n\n",
		name, rawIR.SDCRate()*100, rawAsm.SDCRate()*100)
	fmt.Printf("%8s %12s %12s %8s\n", "level", "IR coverage", "asm coverage", "gap")
	for _, level := range []dup.Level{dup.Level30, dup.Level50, dup.Level70, dup.Level100} {
		sel := dup.Select(profile, level)

		mi := bm.Build()
		if err := dup.Apply(mi, sel); err != nil {
			log.Fatal(err)
		}
		idIR := mustCampaign(irFactory(mi), spec)

		ma := bm.Build()
		if err := dup.Apply(ma, sel); err != nil {
			log.Fatal(err)
		}
		idAsm := mustCampaign(asmFactory(ma), spec)

		ci := campaign.Coverage(rawIR, idIR)
		ca := campaign.Coverage(rawAsm, idAsm)
		fmt.Printf("%7.0f%% %11.1f%% %11.1f%% %7.1f%%\n",
			float64(level)*100, ci*100, ca*100, (ci-ca)*100)
	}
	fmt.Println("\nThe assembly-level coverage consistently falls short of the IR-level")
	fmt.Println("estimate — the protection deficiency the paper demystifies.")
}

func irFactory(m *ir.Module) campaign.EngineFactory {
	return func() (sim.Engine, error) { return interp.New(m), nil }
}

func asmFactory(m *ir.Module) campaign.EngineFactory {
	prog, err := backend.Lower(m)
	if err != nil {
		log.Fatal(err)
	}
	return func() (sim.Engine, error) { return machine.New(m, prog) }
}

func mustCampaign(f campaign.EngineFactory, spec campaign.Spec) campaign.Stats {
	st, err := campaign.Run(f, spec)
	if err != nil {
		log.Fatal(err)
	}
	return st
}
