package telemetry

import "time"

// EngineMetrics bundles the per-engine metric handles so an engine's
// run-boundary flush is a handful of atomic adds — no map lookups, no
// name formatting. A nil *EngineMetrics is the disabled sink; both
// fault-injection engines hold one and rebind it only when the
// registry in sim.Options changes.
type EngineMetrics struct {
	runs   [2]*Counter // indexed by core: 0 = reference loop, 1 = fast core
	instrs [2]*Counter
	dur    [2]*Histogram
	rate   [2]*Gauge
	slow   *Counter
}

// NewEngineMetrics resolves an engine's metric handles in r (nil r →
// nil, the no-op sink). engine labels every metric: "ir" for the
// interpreter, "asm" for the machine.
func NewEngineMetrics(r *Registry, engine string) *EngineMetrics {
	if r == nil {
		return nil
	}
	m := &EngineMetrics{
		slow: r.Counter(`engine_slow_fallback_total{engine="` + engine + `"}`),
	}
	for i, core := range [...]string{"ref", "fast"} {
		l := `{engine="` + engine + `",core="` + core + `"}`
		m.runs[i] = r.Counter("engine_runs_total" + l)
		m.instrs[i] = r.Counter("engine_instrs_total" + l)
		m.dur[i] = r.Histogram("engine_run_seconds" + l)
		m.rate[i] = r.Gauge("engine_instrs_per_sec" + l)
	}
	return m
}

// FlushRun records one completed engine run: which core served it, how
// many instructions it executed, how many of those fell back to the
// generic slow step, and its wall time. The instrs/sec gauge is
// recomputed from the cumulative counters, so on a registry shared by
// campaign workers it reads as fleet-wide core throughput.
func (m *EngineMetrics) FlushRun(fast bool, instrs, slowSteps int64, d time.Duration) {
	if m == nil {
		return
	}
	i := 0
	if fast {
		i = 1
	}
	m.runs[i].Inc()
	m.instrs[i].Add(instrs)
	m.dur[i].Observe(d)
	if slowSteps > 0 {
		m.slow.Add(slowSteps)
	}
	if s := m.dur[i].Sum().Seconds(); s > 0 {
		m.rate[i].Set(float64(m.instrs[i].Value()) / s)
	}
}
