// Package telemetry is the unified observability layer of the
// reproduction stack: one allocation-conscious registry of counters,
// gauges, and fixed-bucket duration histograms, plus hierarchical trace
// spans (study → pipeline stage → campaign batch → engine run). Every
// execution layer — the artifact pipeline, the campaign harness, and
// both fault-injection engines — reports into the same registry, so a
// single run report can answer where a study spent its time and its
// injections.
//
// The disabled state is a nil *Registry: every constructor returns nil
// handles and every method on a nil handle is an inlinable early return,
// so a program that never enables telemetry pays one pointer test at
// each run boundary and nothing per instruction. Engines additionally
// keep their hot loops free of telemetry calls by accumulating plain
// int64 fields and flushing them once per run (see DESIGN.md §12 for
// the materialization points).
//
// Metric names follow the Prometheus convention, with any labels baked
// into the name string (`campaign_runs_total{layer="asm"}`): callers
// format a name once, keep the returned handle, and the hot path is a
// single atomic add. Two deterministic renderings are exported through
// Snapshot: a JSON run report and a Prometheus-style text page (see
// report.go).
package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the number of trace spans a registry retains.
// Spans beyond the cap are dropped (counted in Report.SpansDropped), so
// a campaign with hundreds of thousands of engine runs cannot grow the
// trace without bound.
const DefaultMaxSpans = 8192

// Registry holds all metrics and spans of one process (or one study —
// callers choose the sharing). The zero value is not usable; construct
// with New. A nil *Registry is the no-op sink: all methods are nil-safe
// and return nil handles whose operations compile to early returns.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*span
	maxSpans int
	dropped  atomic.Int64
}

// New returns an empty registry with the default span cap.
func New() *Registry { return NewWithSpanCap(DefaultMaxSpans) }

// NewWithSpanCap returns an empty registry retaining at most maxSpans
// trace spans (0 disables span collection entirely).
func NewWithSpanCap(maxSpans int) *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		maxSpans: maxSpans,
	}
}

// Counter returns the named monotonic counter, creating it on first use.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram (fixed buckets, see
// BucketBounds), creating it on first use. Returns nil (a valid no-op
// handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (the disabled sink) and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric. All methods are safe on a
// nil receiver and safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// BucketBounds are the fixed upper bounds (inclusive) of every duration
// histogram, in seconds: 1µs to 1min in decades, wide enough for an
// engine run at the bottom and a full study at the top. The implicit
// final bucket is +Inf.
var BucketBounds = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 60}

// Histogram is a fixed-bucket duration histogram. All methods are safe
// on a nil receiver and safe for concurrent use.
type Histogram struct {
	counts [len(BucketBounds) + 1]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := 0
	for i < len(BucketBounds) && s > BucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total observed duration (0 on a nil histogram).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// span is the registry-internal record; Span is the caller-facing
// handle. Mutation (End, SetAttr) goes through the registry mutex —
// spans are created at batch/stage/run boundaries, never inside an
// engine's instruction loop, so the lock is off any hot path.
type span struct {
	name   string
	parent int // index into Registry.spans, -1 for roots
	start  time.Time
	dur    time.Duration
	ended  bool
	attrs  map[string]string
}

// Span identifies one trace span. A nil *Span is a valid no-op handle
// (returned by a nil registry, a capped registry, or as the parent of a
// root span).
type Span struct {
	r   *Registry
	idx int
}

// StartSpan opens a span under parent (nil parent = root). Returns nil
// when the registry is nil or its span cap is reached; a nil parent
// from a dropped span re-roots the child rather than failing.
func (r *Registry) StartSpan(parent *Span, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.maxSpans {
		r.dropped.Add(1)
		return nil
	}
	p := -1
	if parent != nil && parent.r == r {
		p = parent.idx
	}
	r.spans = append(r.spans, &span{name: name, parent: p, start: time.Now()})
	return &Span{r: r, idx: len(r.spans) - 1}
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	sp := s.r.spans[s.idx]
	if !sp.ended {
		sp.dur = time.Since(sp.start)
		sp.ended = true
	}
}

// SetAttr attaches a string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	sp := s.r.spans[s.idx]
	if sp.attrs == nil {
		sp.attrs = make(map[string]string)
	}
	sp.attrs[key] = value
}

// SetIntAttr attaches an integer attribute to the span.
func (s *Span) SetIntAttr(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// sortedKeys returns map keys in sorted order (deterministic renders).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
