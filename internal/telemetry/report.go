package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Report is a point-in-time snapshot of a registry, structured for the
// two deterministic renderings: the JSON run report (JSON) and the
// Prometheus-style text page (Prometheus). Metrics are sorted by name;
// spans keep registry creation order (deterministic for single-threaded
// producers; concurrent producers interleave, which only affects
// sibling order, never parentage).
type Report struct {
	// Metrics lists every counter, gauge, and histogram, sorted by name.
	Metrics []MetricSnapshot `json:"metrics"`
	// Spans is the trace forest (roots in creation order).
	Spans []SpanSnapshot `json:"spans,omitempty"`
	// SpansDropped counts spans lost to the registry's span cap.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// MetricSnapshot is one metric's state. Value carries counter and gauge
// readings (counters are integral); Count/SumSeconds/Buckets are
// histogram-only.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter", "gauge", or "histogram"

	Value float64 `json:"value"`

	Count      int64            `json:"count,omitempty"`
	SumSeconds float64          `json:"sum_seconds,omitempty"`
	Buckets    []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one histogram bucket. LE is the inclusive upper
// bound in seconds, rendered as a string so "+Inf" survives JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// SpanSnapshot is one trace span with its children.
type SpanSnapshot struct {
	Name            string            `json:"name"`
	DurationSeconds float64           `json:"duration_seconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Children        []SpanSnapshot    `json:"children,omitempty"`
}

// Snapshot captures the registry's current state. Nil registries
// snapshot to an empty (but renderable) report.
func (r *Registry) Snapshot() *Report {
	rep := &Report{}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedKeys(r.counters) {
		rep.Metrics = append(rep.Metrics, MetricSnapshot{
			Name: name, Type: "counter", Value: float64(r.counters[name].Value()),
		})
	}
	for _, name := range sortedKeys(r.gauges) {
		rep.Metrics = append(rep.Metrics, MetricSnapshot{
			Name: name, Type: "gauge", Value: r.gauges[name].Value(),
		})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		m := MetricSnapshot{
			Name: name, Type: "histogram",
			Count:      h.Count(),
			SumSeconds: h.Sum().Seconds(),
		}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(BucketBounds) {
				le = formatFloat(BucketBounds[i])
			}
			m.Buckets = append(m.Buckets, BucketSnapshot{LE: le, Count: cum})
		}
		rep.Metrics = append(rep.Metrics, m)
	}
	sortMetrics(rep.Metrics)

	// Assemble the span forest. Children attach in creation order.
	nodes := make([]SpanSnapshot, len(r.spans))
	for i, sp := range r.spans {
		nodes[i] = SpanSnapshot{
			Name:            sp.name,
			DurationSeconds: sp.dur.Seconds(),
			Attrs:           sp.attrs,
		}
	}
	// Build bottom-up: spans only ever parent earlier spans, so a
	// reverse sweep attaches each node's completed subtree exactly once.
	for i := len(r.spans) - 1; i >= 0; i-- {
		p := r.spans[i].parent
		if p >= 0 {
			nodes[p].Children = append([]SpanSnapshot{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, sp := range r.spans {
		if sp.parent < 0 {
			rep.Spans = append(rep.Spans, nodes[i])
		}
	}
	rep.SpansDropped = r.dropped.Load()
	return rep
}

func sortMetrics(ms []MetricSnapshot) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// ZeroDurations erases every wall-clock-derived quantity — span
// durations, histogram sums, and bucket tallies (observation counts
// stay) — so two reports of the same deterministic workload render to
// identical bytes. Golden tests pin both renderings through this.
func (rep *Report) ZeroDurations() {
	for i := range rep.Metrics {
		m := &rep.Metrics[i]
		if m.Type != "histogram" {
			continue
		}
		m.SumSeconds = 0
		for j := range m.Buckets {
			// Keep the cumulative count only at +Inf (the observation
			// total, which is deterministic); timing decides the rest.
			if m.Buckets[j].LE != "+Inf" {
				m.Buckets[j].Count = 0
			}
		}
	}
	var zero func(ns []SpanSnapshot)
	zero = func(ns []SpanSnapshot) {
		for i := range ns {
			ns[i].DurationSeconds = 0
			zero(ns[i].Children)
		}
	}
	zero(rep.Spans)
}

// JSON renders the run report (metrics + trace forest), indented,
// trailing newline included.
func (rep *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// TraceJSON renders only the span forest (the -trace artifact), using
// the same schema as the full report.
func (rep *Report) TraceJSON() ([]byte, error) {
	t := &Report{Metrics: []MetricSnapshot{}, Spans: rep.Spans, SpansDropped: rep.SpansDropped}
	return t.JSON()
}

// Prometheus renders the metrics as a Prometheus text exposition page.
// Spans have no Prometheus form and are omitted.
func (rep *Report) Prometheus() []byte {
	var sb strings.Builder
	typed := make(map[string]bool)
	emitType := func(name, typ string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&sb, "# TYPE %s %s\n", base, typ)
		}
	}
	for _, m := range rep.Metrics {
		switch m.Type {
		case "counter", "gauge":
			emitType(m.Name, m.Type)
			fmt.Fprintf(&sb, "%s %s\n", m.Name, formatFloat(m.Value))
		case "histogram":
			emitType(m.Name, "histogram")
			for _, b := range m.Buckets {
				fmt.Fprintf(&sb, "%s %d\n", withLabel(m.Name, `le="`+b.LE+`"`, "_bucket"), b.Count)
			}
			fmt.Fprintf(&sb, "%s %s\n", withSuffix(m.Name, "_sum"), formatFloat(m.SumSeconds))
			fmt.Fprintf(&sb, "%s %d\n", withSuffix(m.Name, "_count"), m.Count)
		}
	}
	return []byte(sb.String())
}

// WriteFiles renders reg to the standard CLI artifacts: metricsPath
// receives the full run report (JSON, or the Prometheus text page when
// the path ends in .prom), tracePath the span forest alone. Empty paths
// are skipped; a nil registry writes empty-but-valid documents. This is
// the implementation behind the -metrics/-trace flags of cmd/flowery
// and cmd/experiments.
func WriteFiles(reg *Registry, metricsPath, tracePath string) error {
	rep := reg.Snapshot()
	if metricsPath != "" {
		var out []byte
		if strings.HasSuffix(metricsPath, ".prom") {
			out = rep.Prometheus()
		} else {
			var err error
			if out, err = rep.JSON(); err != nil {
				return err
			}
		}
		if err := os.WriteFile(metricsPath, out, 0o644); err != nil {
			return err
		}
	}
	if tracePath != "" {
		out, err := rep.TraceJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// withSuffix appends suffix to the metric base name, before any label
// block: "x_seconds{stage=\"a\"}" + "_sum" → "x_seconds_sum{stage=\"a\"}".
func withSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends suffix to the base name and merges label into the
// label block (creating one if absent).
func withLabel(name, label, suffix string) string {
	name = withSuffix(name, suffix)
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
