package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a small but representative registry: labeled
// counters, a gauge, a histogram, and a three-level span tree — the
// shapes every instrumented layer produces.
func goldenRegistry() *Registry {
	r := New()
	r.Counter(`campaign_runs_total{layer="asm"}`).Add(120)
	r.Counter(`campaign_runs_total{layer="ir"}`).Add(120)
	r.Counter("engine_slow_fallback_total").Add(3)
	r.Gauge(`campaign_worker_injections_per_sec{worker="0"}`).Set(1536.5)
	h := r.Histogram(`pipeline_stage_seconds{stage="campaign"}`)
	h.Observe(2 * time.Millisecond)
	h.Observe(30 * time.Millisecond)

	study := r.StartSpan(nil, "study")
	stage := r.StartSpan(study, "pipeline.campaign")
	stage.SetAttr("stage", "campaign")
	batch := r.StartSpan(stage, "campaign.batch")
	batch.SetIntAttr("worker", 0)
	batch.SetIntAttr("jobs", 60)
	run := r.StartSpan(batch, "engine.run")
	run.SetAttr("outcome", "masked")
	run.End()
	batch.End()
	stage.End()
	study.End()
	return r
}

// TestGoldenRenderings pins the byte-exact schema of both renderings.
// Durations are zeroed first (ZeroDurations), so the goldens are stable
// across machines; the structural content — metric names, counts, span
// hierarchy, attrs — is fully exercised.
func TestGoldenRenderings(t *testing.T) {
	rep := goldenRegistry().Snapshot()
	rep.ZeroDurations()

	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json.golden", js)
	checkGolden(t, "report.prom.golden", rep.Prometheus())

	tj, err := rep.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.json.golden", tj)
}

// TestGoldenStability re-renders the same workload and demands byte
// equality — the determinism contract the golden files rest on.
func TestGoldenStability(t *testing.T) {
	render := func() string {
		rep := goldenRegistry().Snapshot()
		rep.ZeroDurations()
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(js) + string(rep.Prometheus())
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("renderings differ across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
