package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.StartSpan(nil, "root")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatalf("nil registry must hand out nil handles: %v %v %v %v", c, g, h, s)
	}
	// Every operation on a nil handle must be a silent no-op.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(time.Millisecond)
	s.End()
	s.SetAttr("k", "v")
	s.SetIntAttr("n", 7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	rep := r.Snapshot()
	if len(rep.Metrics) != 0 || len(rep.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", rep)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("empty report must render: %v", err)
	}
}

func TestHandleIdentityAndValues(t *testing.T) {
	r := New()
	c := r.Counter("runs_total")
	if c != r.Counter("runs_total") {
		t.Fatal("same name must return the same counter")
	}
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := r.Gauge("rate")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %v, want -1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("run_seconds")
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	h.Observe(time.Microsecond)      // bucket 0 (inclusive bound)
	h.Observe(2 * time.Microsecond)  // bucket 1 (≤10µs)
	h.Observe(time.Millisecond)      // bucket 3 (≤1ms)
	h.Observe(2 * time.Minute)       // +Inf bucket
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	want := 500*time.Nanosecond + time.Microsecond + 2*time.Microsecond + time.Millisecond + 2*time.Minute
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var raw [len(BucketBounds) + 1]int64
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
	}
	wantRaw := [len(BucketBounds) + 1]int64{2, 1, 0, 1, 0, 0, 0, 0, 0, 1}
	if raw != wantRaw {
		t.Fatalf("bucket counts = %v, want %v", raw, wantRaw)
	}
}

func TestSpanHierarchyAndCap(t *testing.T) {
	r := NewWithSpanCap(3)
	root := r.StartSpan(nil, "study")
	child := r.StartSpan(root, "stage")
	grand := r.StartSpan(child, "run")
	grand.SetIntAttr("idx", 42)
	dropped := r.StartSpan(child, "over-cap")
	if dropped != nil {
		t.Fatal("span beyond cap must be dropped")
	}
	// A child of a dropped span re-roots rather than failing.
	r.StartSpan(dropped, "orphan")
	grand.End()
	child.End()
	root.End()

	rep := r.Snapshot()
	if rep.SpansDropped != 2 {
		t.Fatalf("SpansDropped = %d, want 2", rep.SpansDropped)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "study" {
		t.Fatalf("want single root 'study', got %+v", rep.Spans)
	}
	st := rep.Spans[0]
	if len(st.Children) != 1 || st.Children[0].Name != "stage" {
		t.Fatalf("want child 'stage', got %+v", st.Children)
	}
	runSpan := st.Children[0].Children
	if len(runSpan) != 1 || runSpan[0].Name != "run" || runSpan[0].Attrs["idx"] != "42" {
		t.Fatalf("want grandchild 'run' with idx=42, got %+v", runSpan)
	}
}

func TestSpanEndTwiceKeepsFirstDuration(t *testing.T) {
	r := New()
	s := r.StartSpan(nil, "s")
	s.End()
	first := r.spans[0].dur
	time.Sleep(2 * time.Millisecond)
	s.End()
	if got := r.spans[0].dur; got != first {
		t.Fatalf("second End changed duration: %v -> %v", first, got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := New()
	r.Counter(`runs_total{layer="asm"}`).Add(3)
	r.Counter(`runs_total{layer="ir"}`).Add(4)
	r.Gauge("rate").Set(1.5)
	r.Histogram(`stage_seconds{stage="build"}`).Observe(time.Millisecond)
	page := string(r.Snapshot().Prometheus())

	for _, want := range []string{
		"# TYPE runs_total counter\n",
		`runs_total{layer="asm"} 3` + "\n",
		`runs_total{layer="ir"} 4` + "\n",
		"# TYPE rate gauge\n",
		"# TYPE stage_seconds histogram\n",
		`stage_seconds_bucket{stage="build",le="0.001"} 1` + "\n",
		`stage_seconds_bucket{stage="build",le="+Inf"} 1` + "\n",
		`stage_seconds_count{stage="build"} 1` + "\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("prometheus page missing %q:\n%s", want, page)
		}
	}
	if n := strings.Count(page, "# TYPE runs_total"); n != 1 {
		t.Errorf("TYPE line for runs_total emitted %d times, want 1", n)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race (scripts/ci.sh tier 2) it proves the registry is a safe
// shared sink for parallel campaign workers.
func TestRegistryConcurrency(t *testing.T) {
	r := NewWithSpanCap(64)
	root := r.StartSpan(nil, "root")
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_seconds")
			g := r.Gauge("worker_rate")
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Counter("shared_total").Inc() // lookup path, too
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Set(float64(w*iters + i))
				if s := r.StartSpan(root, "unit"); s != nil {
					s.SetIntAttr("i", int64(i))
					s.End()
				}
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := r.Counter("shared_total").Value(); got != 2*workers*iters {
		t.Fatalf("counter = %d, want %d", got, 2*workers*iters)
	}
	if got := r.Histogram("shared_seconds").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	rep := r.Snapshot()
	if len(rep.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(rep.Spans))
	}
	if kept, dropped := int64(len(rep.Spans[0].Children)), rep.SpansDropped; kept+dropped != workers*iters {
		t.Fatalf("kept %d + dropped %d spans, want %d total", kept, dropped, workers*iters)
	}
}

func TestZeroDurations(t *testing.T) {
	r := New()
	r.Histogram("h_seconds").Observe(3 * time.Millisecond)
	r.Histogram("h_seconds").Observe(40 * time.Millisecond)
	s := r.StartSpan(nil, "s")
	time.Sleep(time.Millisecond)
	s.End()
	rep := r.Snapshot()
	rep.ZeroDurations()
	for _, m := range rep.Metrics {
		if m.SumSeconds != 0 {
			t.Fatalf("%s SumSeconds = %v, want 0", m.Name, m.SumSeconds)
		}
		for _, b := range m.Buckets {
			switch {
			case b.LE == "+Inf" && b.Count != 2:
				t.Fatalf("+Inf bucket = %d, want observation total 2", b.Count)
			case b.LE != "+Inf" && b.Count != 0:
				t.Fatalf("bucket le=%s = %d, want 0", b.LE, b.Count)
			}
		}
		if m.Count != 2 {
			t.Fatalf("%s Count = %d, want 2 (observation totals survive zeroing)", m.Name, m.Count)
		}
	}
	if rep.Spans[0].DurationSeconds != 0 {
		t.Fatalf("span duration = %v, want 0", rep.Spans[0].DurationSeconds)
	}
}
