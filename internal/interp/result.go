// Package interp executes IR modules directly and implements the
// IR-level fault injector of the study (the counterpart of LLFI-style
// LLVM-level injection in the paper). Faults are single bit flips in the
// destination value of a chosen dynamic instruction; IR instructions
// without results (stores, branches, void calls) are not injection sites,
// exactly matching the paper's fault model.
package interp

import "flowery/internal/sim"

// MaxCallDepth bounds recursion (a corrupted recursion guard would
// otherwise run the frame allocator into the stack guard anyway; this is
// a cheaper, earlier diagnosis).
const MaxCallDepth = 4096

// Re-exported simulation types; see package sim for their semantics.
// The interpreter and the assembly simulator share these so one campaign
// harness drives both layers.
type (
	Fault   = sim.Fault
	Options = sim.Options
	Result  = sim.Result
	Status  = sim.Status
	Trap    = sim.Trap
)

const (
	StatusOK       = sim.StatusOK
	StatusDetected = sim.StatusDetected
	StatusTrap     = sim.StatusTrap

	TrapNone           = sim.TrapNone
	TrapBadAddress     = sim.TrapBadAddress
	TrapDivide         = sim.TrapDivide
	TrapStackOverflow  = sim.TrapStackOverflow
	TrapTimeout        = sim.TrapTimeout
	TrapCallDepth      = sim.TrapCallDepth
	TrapOutputOverflow = sim.TrapOutputOverflow

	DefaultMaxSteps = sim.DefaultMaxSteps
)
