package interp

import (
	"fmt"
	"math"
	"time"

	"flowery/internal/ir"
	"flowery/internal/rt"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

// Interp executes one module. An Interp is not safe for concurrent use;
// campaign workers each own one (they are cheap after the first Run:
// memory is reset incrementally, not reallocated).
type Interp struct {
	mod     *ir.Module
	funcs   map[*ir.Function]*cfunc
	main    *cfunc
	gInstrs []*ir.Instr

	mem     []byte
	dataEnd int64

	// Run state.
	out       []byte
	steps     int64
	maxSteps  int64
	inject    int64 // injectable-instruction counter
	injectAt  int64
	injectBit int
	injected  bool
	injStatic int32
	profile   []int64
	profiling bool
	refCore   bool // pin this run to the reference loop (opts.Reference)
	retVal    uint64
	minTouch  int64 // lowest stack address used since last reset
	spVal     int64
	valPool   [][]uint64
	frames    []frame // explicit call stack (see exec.go)

	// Def-use tracing (see trace.go). tr is only set during RunTraced;
	// trFrames shadows frames with def handles.
	tr       sim.Tracer
	trFrames []traceFrame

	// Snapshot state (see snapshot.go). snapCapture is only set during
	// BuildSnapshots' golden run; dataLo/dataHi track the dirty region of
	// the data segment during that run so checkpoints copy kilobytes, not
	// the full memory image.
	snapCapture  bool
	snapInterval int64
	nextSnapAt   int64
	dataLo       int64
	dataHi       int64
	snaps        []snapshot
	goldenOut    []byte

	// Run-boundary telemetry (see telemetry.EngineMetrics). met is the
	// cached handle bundle for metReg; flushed once per run in finish.
	met    *telemetry.EngineMetrics
	metReg *telemetry.Registry
}

// setMetrics rebinds the run-boundary flush target. Handles are
// resolved only when the registry changes, so steady-state runs pay a
// single pointer compare here.
func (ip *Interp) setMetrics(r *telemetry.Registry) {
	if r != ip.metReg {
		ip.metReg = r
		ip.met = telemetry.NewEngineMetrics(r, "ir")
	}
}

// trapPanic carries a trap out of the execution loop.
type trapPanic struct{ trap Trap }

// detectedPanic signals check_fail.
type detectedPanic struct{}

// New prepares an interpreter for the module. It assigns global
// addresses (idempotent) and compiles every function. The module must
// have passed Verify.
func New(m *ir.Module) *Interp {
	end := m.AssignAddresses()
	if end > ir.StackLimit {
		panic(fmt.Sprintf("interp: globals (%d bytes) overflow the data segment", end-ir.GlobalBase))
	}
	funcs, gInstrs := compile(m)
	mainF := m.Func("main")
	if mainF == nil {
		panic("interp: module has no main")
	}
	ip := &Interp{
		mod:      m,
		funcs:    funcs,
		main:     funcs[mainF],
		gInstrs:  gInstrs,
		mem:      make([]byte, ir.MemSize),
		dataEnd:  end,
		minTouch: ir.StackTop,
	}
	return ip
}

// Module returns the module being executed.
func (ip *Interp) Module() *ir.Module { return ip.mod }

// StaticInstrs returns the module's instructions in compile order; index
// i corresponds to ProfileCounts()[i].
func (ip *Interp) StaticInstrs() []*ir.Instr { return ip.gInstrs }

// ProfileCounts returns per-static-instruction execution counts from the
// most recent profiled run (nil if Profile was not enabled).
func (ip *Interp) ProfileCounts() []int64 { return ip.profile }

// Run executes main once, optionally injecting a fault.
func (ip *Interp) Run(fault Fault, opts Options) Result {
	ip.reset()
	ip.maxSteps = opts.MaxSteps
	if ip.maxSteps <= 0 {
		ip.maxSteps = DefaultMaxSteps
	}
	ip.injectAt = fault.TargetIndex
	ip.injectBit = fault.Bit
	ip.profiling = opts.Profile
	if opts.Profile {
		ip.profile = make([]int64, len(ip.gInstrs))
	}
	ip.refCore = opts.Reference
	ip.setMetrics(opts.Metrics)

	return ip.finish(true)
}

// finish executes to completion (entering main when fresh; resuming the
// restored frame stack otherwise) and packages the outcome.
func (ip *Interp) finish(fresh bool) Result {
	var t0 time.Time
	if ip.met != nil {
		t0 = time.Now()
	}
	startSteps := ip.steps
	usedFast := false
	res := Result{Status: StatusOK}
	func() {
		defer func() {
			switch p := recover().(type) {
			case nil:
			case trapPanic:
				res.Status = StatusTrap
				res.Trap = p.trap
			case detectedPanic:
				res.Status = StatusDetected
			default:
				panic(p)
			}
		}()
		if fresh {
			ip.pushFrame(ip.main, nil)
		}
		// Loop selection, once per run: any instrumentation (profiling,
		// def-use tracing, snapshot capture) or an explicit Reference
		// request pins the run to the reference loop.
		if ip.refCore || ip.snapCapture || ip.profiling || ip.tr != nil {
			ip.retVal = ip.run()
		} else {
			usedFast = true
			ip.retVal = ip.runFast()
		}
	}()

	res.Output = append([]byte(nil), ip.out...)
	res.RetVal = int64(ip.retVal)
	res.DynInstrs = ip.steps
	res.InjectableInstrs = ip.inject
	res.Injected = ip.injected
	res.InjectedStatic = ip.injStatic
	if ip.met != nil {
		// The interpreter's fast core has no per-instruction fallback
		// (closures cover every op), so slowSteps is always 0 here.
		ip.met.FlushRun(usedFast, ip.steps-startSteps, 0, time.Since(t0))
	}
	return res
}

// reset restores memory to its initial image, touching only regions the
// previous run could have dirtied.
func (ip *Interp) reset() {
	// Data segment: zero then replay initializers.
	zero(ip.mem[ir.GlobalBase:ip.dataEnd])
	for _, g := range ip.mod.Globals {
		copy(ip.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	// Stack: zero from the lowest touched address.
	if ip.minTouch < ir.StackTop {
		zero(ip.mem[ip.minTouch:ir.StackTop])
	}
	ip.minTouch = ir.StackTop
	ip.spVal = ir.StackTop
	ip.out = ip.out[:0]
	ip.steps = 0
	ip.inject = 0
	ip.injected = false
	ip.injStatic = -1
	ip.profile = nil
	// A trapped run leaves its frames behind; recycle them here.
	for i := range ip.frames {
		ip.releaseVals(ip.frames[i].vals)
	}
	ip.frames = ip.frames[:0]
	ip.trFrames = ip.trFrames[:0]
	if ip.snapCapture {
		ip.snaps = ip.snaps[:0]
		ip.nextSnapAt = ip.snapInterval
		ip.dataLo, ip.dataHi = ip.dataEnd, ir.GlobalBase
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func (ip *Interp) trap(t Trap) {
	panic(trapPanic{trap: t})
}

// mapped reports whether [addr, addr+size) is a legal access.
func (ip *Interp) mapped(addr, size int64) bool {
	if addr >= ir.GlobalBase && addr+size <= ip.dataEnd {
		return true
	}
	return addr >= ir.StackLimit && addr+size <= ir.StackTop
}

func (ip *Interp) loadMem(addr, size int64) uint64 {
	if !ip.mapped(addr, size) {
		ip.trap(TrapBadAddress)
	}
	var v uint64
	for i := int64(0); i < size; i++ {
		v |= uint64(ip.mem[addr+i]) << (8 * i)
	}
	return v
}

func (ip *Interp) storeMem(addr, size int64, v uint64) {
	if !ip.mapped(addr, size) {
		ip.trap(TrapBadAddress)
	}
	for i := int64(0); i < size; i++ {
		ip.mem[addr+i] = byte(v >> (8 * i))
	}
	if addr >= ir.StackLimit {
		if addr < ip.minTouch {
			ip.minTouch = addr
		}
	} else if ip.snapCapture {
		// Data-segment dirty range, tracked only while building
		// checkpoints (the segment below StackLimit is globals only).
		if addr < ip.dataLo {
			ip.dataLo = addr
		}
		if end := addr + size; end > ip.dataHi {
			ip.dataHi = end
		}
	}
}

// frameVals returns a value array of at least n slots, reusing pooled
// storage across calls.
func (ip *Interp) frameVals(n int32) []uint64 {
	if l := len(ip.valPool); l > 0 {
		v := ip.valPool[l-1]
		ip.valPool = ip.valPool[:l-1]
		if int32(cap(v)) >= n {
			return v[:n]
		}
	}
	return make([]uint64, n)
}

func (ip *Interp) releaseVals(v []uint64) {
	if len(ip.valPool) < 64 {
		ip.valPool = append(ip.valPool, v)
	}
}

// framePush carves a frame from the software-managed stack; the frame
// base is derived from depth-ordered allocation below the previous frame.
func (ip *Interp) framePush(size int64) int64 {
	newSP := ip.sp() - size
	if newSP < ir.StackLimit {
		ip.trap(TrapStackOverflow)
	}
	ip.spSet(newSP)
	if newSP < ip.minTouch {
		ip.minTouch = newSP
	}
	return newSP
}

func (ip *Interp) framePop(size int64) {
	ip.spSet(ip.sp() + size)
}

// The stack pointer itself lives in a field; helpers keep the call sites
// symmetric with framePush/framePop.
func (ip *Interp) sp() int64 { return ip.spVal }

func (ip *Interp) spSet(v int64) { ip.spVal = v }

func (ip *Interp) callRuntime(f rt.Func, args []uint64) uint64 {
	switch f {
	case rt.FuncPrintI64:
		ip.out = rt.AppendI64(ip.out, int64(args[0]))
	case rt.FuncPrintF64:
		ip.out = rt.AppendF64(ip.out, math.Float64frombits(args[0]))
	case rt.FuncPrintChar:
		ip.out = rt.AppendChar(ip.out, byte(args[0]))
	case rt.FuncCheckFail:
		panic(detectedPanic{})
	case rt.FuncPow:
		return math.Float64bits(rt.Math2(f, math.Float64frombits(args[0]), math.Float64frombits(args[1])))
	default:
		return math.Float64bits(rt.Math1(f, math.Float64frombits(args[0])))
	}
	if len(ip.out) > rt.MaxOutput {
		ip.trap(TrapOutputOverflow)
	}
	return 0
}
