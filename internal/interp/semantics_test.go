package interp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"flowery/internal/ir"
	"flowery/internal/sim"
)

// evalBin builds and runs `ret <op> ty x, y` and returns main's result.
func evalBin(t *testing.T, op ir.Op, ty ir.Type, x, y int64) (int64, sim.Result) {
	t.Helper()
	m := ir.NewModule("bin")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Bin(op, ir.ConstInt(ty, x), ir.ConstInt(ty, y))
	var w ir.Value = v
	if ty != ir.I64 {
		w = b.SExt(ir.I64, v)
	}
	b.Ret(w)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res := New(m).Run(sim.Fault{}, sim.Options{})
	return res.RetVal, res
}

func TestIntegerArithmetic(t *testing.T) {
	cases := []struct {
		op   ir.Op
		ty   ir.Type
		x, y int64
		want int64
	}{
		{ir.OpAdd, ir.I64, 3, 4, 7},
		{ir.OpAdd, ir.I64, math.MaxInt64, 1, math.MinInt64}, // wraps
		{ir.OpAdd, ir.I32, math.MaxInt32, 1, math.MinInt32}, // 32-bit wrap
		{ir.OpAdd, ir.I8, 127, 1, -128},
		{ir.OpSub, ir.I64, 3, 10, -7},
		{ir.OpMul, ir.I32, 1 << 20, 1 << 20, 0}, // overflow drops high bits
		{ir.OpMul, ir.I64, -3, 7, -21},
		{ir.OpSDiv, ir.I64, 7, 2, 3},
		{ir.OpSDiv, ir.I64, -7, 2, -3}, // trunc toward zero
		{ir.OpSRem, ir.I64, -7, 2, -1},
		{ir.OpSRem, ir.I32, 7, -3, 1},
		{ir.OpAnd, ir.I64, 0b1100, 0b1010, 0b1000},
		{ir.OpOr, ir.I64, 0b1100, 0b1010, 0b1110},
		{ir.OpXor, ir.I64, 0b1100, 0b1010, 0b0110},
		{ir.OpShl, ir.I64, 1, 63, math.MinInt64},
		{ir.OpShl, ir.I64, 1, 64, 1}, // count masked mod 64
		{ir.OpShl, ir.I32, 1, 32, 1}, // count masked mod 32
		{ir.OpShl, ir.I8, 1, 8, 0},   // 8-bit shifts by 8 lose all bits
		{ir.OpAShr, ir.I64, -8, 2, -2},
		{ir.OpAShr, ir.I8, -128, 7, -1},
		{ir.OpLShr, ir.I64, -1, 60, 15},
		{ir.OpLShr, ir.I8, -1, 4, 15}, // shifts the zero-extended byte
		{ir.OpLShr, ir.I32, -2, 1, math.MaxInt32},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v_%v_%d_%d", c.op, c.ty, c.x, c.y), func(t *testing.T) {
			got, res := evalBin(t, c.op, c.ty, c.x, c.y)
			if res.Status != sim.StatusOK {
				t.Fatalf("trapped: %v", res.Trap)
			}
			if got != c.want {
				t.Fatalf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestDivisionTraps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		ty   ir.Type
		x, y int64
		trap bool
	}{
		{ir.OpSDiv, ir.I64, 1, 0, true},
		{ir.OpSRem, ir.I32, 5, 0, true},
		{ir.OpSDiv, ir.I64, math.MinInt64, -1, true}, // x86 #DE
		{ir.OpSDiv, ir.I32, math.MinInt32, -1, true},
		{ir.OpSDiv, ir.I8, -128, -1, false}, // promoted to 32-bit idiv
		{ir.OpSDiv, ir.I64, math.MinInt64, 1, false},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v_%v_%d_%d", c.op, c.ty, c.x, c.y), func(t *testing.T) {
			_, res := evalBin(t, c.op, c.ty, c.x, c.y)
			if c.trap && (res.Status != sim.StatusTrap || res.Trap != sim.TrapDivide) {
				t.Fatalf("expected divide trap, got %v (%v)", res.Status, res.Trap)
			}
			if !c.trap && res.Status != sim.StatusOK {
				t.Fatalf("unexpected trap %v", res.Trap)
			}
		})
	}
}

func TestMemoryTraps(t *testing.T) {
	build := func(addr int64) *ir.Module {
		m := ir.NewModule("mem")
		f := m.NewFunction("main", ir.I64)
		b := ir.NewBuilder(f)
		g := m.NewGlobalI64("g", []int64{1})
		p := b.GEP(g, ir.ConstInt(ir.I64, addr), 1)
		v := b.Load(ir.I64, p)
		b.Ret(v)
		return m
	}
	// In-bounds access is fine.
	if res := New(build(0)).Run(sim.Fault{}, sim.Options{}); res.Status != sim.StatusOK {
		t.Fatalf("in-bounds load trapped: %v", res.Trap)
	}
	// A huge offset lands in unmapped space.
	if res := New(build(1<<30)).Run(sim.Fault{}, sim.Options{}); res.Trap != sim.TrapBadAddress {
		t.Fatalf("wild load: got %v, want bad-address", res.Trap)
	}
	// The gap between data segment and stack is unmapped too.
	if res := New(build((ir.StackLimit-ir.GlobalBase)/2)).Run(sim.Fault{}, sim.Options{}); res.Trap != sim.TrapBadAddress {
		t.Fatalf("gap load: got %v, want bad-address", res.Trap)
	}
	// Null dereference.
	if res := New(build(-ir.GlobalBase)).Run(sim.Fault{}, sim.Options{}); res.Trap != sim.TrapBadAddress {
		t.Fatalf("null-ish load: got %v, want bad-address", res.Trap)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	m := ir.NewModule("so")
	// Infinite recursion with a big frame.
	f := m.NewFunction("rec", ir.Void)
	b := ir.NewBuilder(f)
	slot := b.Alloca(4096)
	b.Store(ir.ConstInt(ir.I64, 1), slot)
	b.Call(f)
	b.Ret(nil)

	fm := m.NewFunction("main", ir.I64)
	bm := ir.NewBuilder(fm)
	bm.Call(f)
	bm.Ret(ir.ConstInt(ir.I64, 0))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res := New(m).Run(sim.Fault{}, sim.Options{})
	if res.Status != sim.StatusTrap || res.Trap != sim.TrapStackOverflow {
		t.Fatalf("got %v (%v), want stack overflow", res.Status, res.Trap)
	}
}

func TestTimeoutTrap(t *testing.T) {
	m := ir.NewModule("loop")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	spin := b.NewBlock("spin")
	b.Br(spin)
	b.SetBlock(spin)
	b.Br(spin)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res := New(m).Run(sim.Fault{}, sim.Options{MaxSteps: 10_000})
	if res.Trap != sim.TrapTimeout {
		t.Fatalf("got %v, want timeout", res.Trap)
	}
}

func TestOutputOverflowTrap(t *testing.T) {
	m := ir.NewModule("spam")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 1<<21), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		b.PrintI64(i)
	})
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := New(m).Run(sim.Fault{}, sim.Options{})
	if res.Trap != sim.TrapOutputOverflow {
		t.Fatalf("got %v, want output overflow", res.Trap)
	}
}

func TestCasts(t *testing.T) {
	m := ir.NewModule("casts")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	// trunc -1 (i64) to i8 -> -1; zext that byte -> 255
	tr := b.Trunc(ir.I8, ir.ConstInt(ir.I64, -1))
	z := b.ZExt(ir.I64, tr)
	b.PrintI64(z)
	// sext i1 true widened as int -> 1 via zext, -1 via sext? (sext of i1
	// is not part of our builder tests elsewhere; here: zext only)
	zb := b.ZExt(ir.I64, ir.ConstBool(true))
	b.PrintI64(zb)
	// fptosi truncation toward zero and indefinite value
	c1 := b.FPToSI(ir.I64, ir.ConstFloat(-2.9))
	b.PrintI64(c1)
	c2 := b.FPToSI(ir.I32, ir.ConstFloat(1e300))
	b.PrintI64(b.SExt(ir.I64, c2))
	c3 := b.FPToSI(ir.I64, ir.ConstFloat(math.NaN()))
	b.PrintI64(c3)
	// sitofp exactness for small ints
	fv := b.SIToFP(ir.ConstInt(ir.I64, -7))
	b.PrintF64(fv)
	b.Ret(ir.ConstInt(ir.I64, 0))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res := New(m).Run(sim.Fault{}, sim.Options{})
	want := "255\n1\n-2\n-2147483648\n-9223372036854775808\n-7\n"
	if string(res.Output) != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

func TestICmpSignedVsUnsigned(t *testing.T) {
	m := ir.NewModule("cmp")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	neg := ir.ConstInt(ir.I32, -1)
	one := ir.ConstInt(ir.I32, 1)
	slt := b.ICmp(ir.PredSLT, neg, one) // -1 < 1 signed: true
	ult := b.ICmp(ir.PredULT, neg, one) // 0xffffffff < 1 unsigned: false
	b.PrintI64(b.ZExt(ir.I64, slt))
	b.PrintI64(b.ZExt(ir.I64, ult))
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := New(m).Run(sim.Fault{}, sim.Options{})
	if string(res.Output) != "1\n0\n" {
		t.Fatalf("output %q", res.Output)
	}
}

// Property: for any (x, y), interpreting `x op y` agrees with the Go
// reference computation, across widths.
func TestIntBinAgainstReference(t *testing.T) {
	check := func(x, y int64) bool {
		for _, c := range []struct {
			op  ir.Op
			ty  ir.Type
			ref func(a, b int64) (int64, bool)
		}{
			{ir.OpAdd, ir.I32, func(a, b int64) (int64, bool) { return int64(int32(a) + int32(b)), true }},
			{ir.OpSub, ir.I32, func(a, b int64) (int64, bool) { return int64(int32(a) - int32(b)), true }},
			{ir.OpMul, ir.I32, func(a, b int64) (int64, bool) { return int64(int32(a) * int32(b)), true }},
			{ir.OpAdd, ir.I8, func(a, b int64) (int64, bool) { return int64(int8(a) + int8(b)), true }},
			{ir.OpXor, ir.I64, func(a, b int64) (int64, bool) { return a ^ b, true }},
		} {
			want, ok := c.ref(x, y)
			if !ok {
				continue
			}
			got, res := evalBin(t, c.op, c.ty, x, y)
			if res.Status != sim.StatusOK || got != want {
				t.Logf("%v %v: x=%d y=%d got %d want %d", c.op, c.ty, x, y, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCallDepthTrap(t *testing.T) {
	m := ir.NewModule("deep")
	f := m.NewFunction("rec", ir.Void)
	b := ir.NewBuilder(f)
	// Small frame so recursion depth trips before stack space does.
	b.Call(f)
	b.Ret(nil)
	fm := m.NewFunction("main", ir.I64)
	bm := ir.NewBuilder(fm)
	bm.Call(f)
	bm.Ret(ir.ConstInt(ir.I64, 0))
	res := New(m).Run(sim.Fault{}, sim.Options{})
	if res.Trap != sim.TrapCallDepth {
		t.Fatalf("got %v, want call-depth", res.Trap)
	}
}

func TestInjectionBitWithinTypeWidth(t *testing.T) {
	// An i1 destination flipped with any bit index must stay 0/1.
	m := ir.NewModule("i1")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	c := b.ICmp(ir.PredEQ, ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 1))
	b.PrintI64(b.ZExt(ir.I64, c))
	b.Ret(ir.ConstInt(ir.I64, 0))
	ip := New(m)
	for bit := 0; bit < 64; bit++ {
		res := ip.Run(sim.Fault{TargetIndex: 1, Bit: bit}, sim.Options{})
		out := string(res.Output)
		if out != "0\n" && out != "1\n" {
			t.Fatalf("bit %d produced non-boolean %q", bit, out)
		}
		if out != "0\n" {
			t.Fatalf("bit %d: flip of true compare must print 0, got %q", bit, out)
		}
	}
}
