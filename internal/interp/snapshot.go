package interp

import (
	"flowery/internal/ir"
	"flowery/internal/sim"
)

var _ sim.SnapshotEngine = (*Interp)(nil)

// Checkpoint/fast-forward support. During one golden run the interpreter
// captures periodic snapshots of its complete execution state, keyed by
// the injectable-instruction counter. A faulty run whose injection point
// lies past a snapshot restores it and executes forward from there. The
// execution before the injection point is bit-identical to the golden
// run by construction (same program, same inputs, no fault yet), so the
// restored run's observable Result is identical to a from-scratch run's;
// the output prefix is replayed from the recorded golden bytes.
//
// Snapshots copy only dirty state: the stack above the minTouch low-water
// mark and the dirty range of the data segment (dataLo/dataHi, tracked by
// storeMem during the capture run) — kilobytes, not the full ir.MemSize
// image.

// snapshot is one checkpoint of a golden run.
type snapshot struct {
	index    int64 // injectable-instruction counter at capture
	steps    int64 // dynamic instructions executed up to here
	outLen   int   // golden output bytes emitted so far
	spVal    int64
	minTouch int64
	dataLo   int64
	dataHi   int64
	stack    []byte // mem[minTouch:StackTop]
	data     []byte // mem[dataLo:dataHi]
	frames   []frameSnap
}

// frameSnap is a captured activation record.
type frameSnap struct {
	cf   *cfunc
	fp   int64
	bi   int32
	ii   int32
	vals []uint64
	args [maxCallArgs]uint64
}

// BuildSnapshots runs the golden execution once, capturing a checkpoint
// roughly every interval injectable instructions (granularity is one
// basic block). It returns the golden result; snapshots are only kept if
// the run completed normally. It implements sim.SnapshotEngine.
func (ip *Interp) BuildSnapshots(interval int64, opts Options) Result {
	ip.DropSnapshots()
	if interval <= 0 {
		interval = 1
	}
	ip.snapInterval = interval
	ip.snapCapture = true
	res := ip.Run(Fault{}, opts)
	ip.snapCapture = false
	if res.Status != StatusOK {
		ip.DropSnapshots()
		return res
	}
	ip.goldenOut = append([]byte(nil), res.Output...)
	return res
}

// DropSnapshots releases all checkpoint storage.
func (ip *Interp) DropSnapshots() {
	ip.snaps = nil
	ip.goldenOut = nil
}

// RunFrom is Run accelerated by checkpoint restore: it fast-forwards to
// the densest snapshot below the fault's injection point and executes
// from there. The returned result is bit-identical to Run's; skipped
// reports how many dynamic instructions the restore avoided re-executing.
// Runs that cannot use a snapshot (no snapshots built, target before the
// first checkpoint, golden fault, or profiling requested) fall back to a
// from-scratch Run.
func (ip *Interp) RunFrom(fault Fault, opts Options) (res Result, skipped int64) {
	s := ip.bestSnapshot(fault.TargetIndex)
	if s == nil || opts.Profile {
		return ip.Run(fault, opts), 0
	}
	ip.restore(s)
	ip.maxSteps = opts.MaxSteps
	if ip.maxSteps <= 0 {
		ip.maxSteps = DefaultMaxSteps
	}
	ip.injectAt = fault.TargetIndex
	ip.injectBit = fault.Bit
	ip.profiling = false
	ip.refCore = opts.Reference
	ip.setMetrics(opts.Metrics)
	return ip.finish(false), s.steps
}

// bestSnapshot returns the snapshot with the largest index strictly below
// target (the fault fires when the injectable counter reaches target, so
// a checkpoint at index target-1 is still usable), or nil.
func (ip *Interp) bestSnapshot(target int64) *snapshot {
	if target <= 0 {
		return nil
	}
	lo, hi := 0, len(ip.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if ip.snaps[mid].index < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &ip.snaps[lo-1]
}

// captureSnapshot records the current state. Called from the dispatch
// loop during BuildSnapshots' golden run, where frame positions are exact.
func (ip *Interp) captureSnapshot() {
	s := snapshot{
		index:    ip.inject,
		steps:    ip.steps,
		outLen:   len(ip.out),
		spVal:    ip.spVal,
		minTouch: ip.minTouch,
		dataLo:   ip.dataLo,
		dataHi:   ip.dataHi,
		stack:    append([]byte(nil), ip.mem[ip.minTouch:ir.StackTop]...),
		frames:   make([]frameSnap, len(ip.frames)),
	}
	if s.dataLo < s.dataHi {
		s.data = append([]byte(nil), ip.mem[s.dataLo:s.dataHi]...)
	}
	for i := range ip.frames {
		f := &ip.frames[i]
		s.frames[i] = frameSnap{
			cf:   f.cf,
			fp:   f.fp,
			bi:   f.bi,
			ii:   f.ii,
			vals: append([]uint64(nil), f.vals...),
			args: f.args,
		}
	}
	ip.snaps = append(ip.snaps, s)
	ip.nextSnapAt = ip.inject + ip.snapInterval
}

// restore rebuilds the state captured in s, replacing whatever the
// previous run left behind. Untouched memory is zero in both the golden
// run (fresh reset) and here (explicitly re-zeroed), so states match
// bit for bit.
func (ip *Interp) restore(s *snapshot) {
	// Data segment: rebuild the initial image, overlay the dirty bytes.
	zero(ip.mem[ir.GlobalBase:ip.dataEnd])
	for _, g := range ip.mod.Globals {
		copy(ip.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	if s.dataLo < s.dataHi {
		copy(ip.mem[s.dataLo:s.dataHi], s.data)
	}
	// Stack: zero the previous run's dirt, then lay down the snapshot.
	if ip.minTouch < ir.StackTop {
		zero(ip.mem[ip.minTouch:ir.StackTop])
	}
	copy(ip.mem[s.minTouch:ir.StackTop], s.stack)
	ip.minTouch = s.minTouch
	ip.spVal = s.spVal

	// Frames: deep-copy (the resumed run mutates them; snapshots may be
	// restored many times).
	for i := range ip.frames {
		ip.releaseVals(ip.frames[i].vals)
	}
	ip.frames = ip.frames[:0]
	for i := range s.frames {
		sf := &s.frames[i]
		vals := ip.frameVals(int32(len(sf.vals)))
		copy(vals, sf.vals)
		ip.frames = append(ip.frames, frame{
			cf: sf.cf, fp: sf.fp, bi: sf.bi, ii: sf.ii,
			vals: vals, args: sf.args,
		})
	}

	ip.out = append(ip.out[:0], ip.goldenOut[:s.outLen]...)
	ip.steps = s.steps
	ip.inject = s.index
	ip.injected = false
	ip.injStatic = -1
	ip.profile = nil
}
