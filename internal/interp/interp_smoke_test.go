package interp

import (
	"testing"

	"flowery/internal/ir"
)

// buildSumModule constructs: for i in [0,10) sum += i*i; print sum.
func buildSumModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("sum")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	sum := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 10), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		sq := b.Mul(i, i)
		cur := b.Load(ir.I64, sum)
		b.Store(b.Add(cur, sq), sum)
	})
	v := b.Load(ir.I64, sum)
	b.PrintI64(v)
	b.Ret(v)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestInterpSumLoop(t *testing.T) {
	m := buildSumModule(t)
	ip := New(m)
	res := ip.Run(Fault{}, Options{})
	if res.Status != StatusOK {
		t.Fatalf("status = %v (trap %v)", res.Status, res.Trap)
	}
	if got, want := string(res.Output), "285\n"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if res.RetVal != 285 {
		t.Fatalf("ret = %d, want 285", res.RetVal)
	}
	if res.DynInstrs == 0 || res.InjectableInstrs == 0 {
		t.Fatalf("counts not collected: %+v", res)
	}
	if res.InjectableInstrs >= res.DynInstrs {
		t.Fatalf("injectable (%d) should be < dynamic (%d): stores/branches have no destination",
			res.InjectableInstrs, res.DynInstrs)
	}
}

func TestInterpDeterministicAcrossRuns(t *testing.T) {
	ip := New(buildSumModule(t))
	r1 := ip.Run(Fault{}, Options{})
	r2 := ip.Run(Fault{}, Options{})
	if string(r1.Output) != string(r2.Output) || r1.DynInstrs != r2.DynInstrs {
		t.Fatalf("runs differ: %+v vs %+v", r1, r2)
	}
}

func TestInterpFaultInjectionChangesState(t *testing.T) {
	ip := New(buildSumModule(t))
	golden := ip.Run(Fault{}, Options{})

	sawChange := false
	for idx := int64(1); idx <= golden.InjectableInstrs; idx += 3 {
		res := ip.Run(Fault{TargetIndex: idx, Bit: 0}, Options{})
		if !res.Injected {
			t.Fatalf("fault at index %d did not fire", idx)
		}
		if string(res.Output) != string(golden.Output) || res.Status != StatusOK {
			sawChange = true
		}
	}
	if !sawChange {
		t.Fatal("no injection produced any visible change; injector is likely inert")
	}
}

func TestInterpProfileCounts(t *testing.T) {
	ip := New(buildSumModule(t))
	res := ip.Run(Fault{}, Options{Profile: true})
	counts := ip.ProfileCounts()
	if counts == nil {
		t.Fatal("no profile collected")
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != res.DynInstrs {
		t.Fatalf("profile total %d != dynamic count %d", total, res.DynInstrs)
	}
}
