package interp

import (
	"math"

	"flowery/internal/ir"
	"flowery/internal/rt"
)

// maxCallArgs bounds call arity; the per-frame argument buffer is a
// fixed array to keep the hot path allocation-free.
const maxCallArgs = 8

// frame is one activation record on the interpreter's explicit call
// stack. The stack is explicit (rather than Go recursion) so that the
// complete execution state at any instruction boundary is plain data:
// checkpointing a run is a deep copy of the frame stack plus the dirty
// memory regions (see snapshot.go).
type frame struct {
	cf *cfunc
	fp int64
	// bi/ii are the current block and instruction indices. For frames
	// below the top they address the OpCall being waited on; for the top
	// frame they are synced at every dispatch-loop entry (block edges,
	// calls, returns), which is where snapshots are taken.
	bi   int32
	ii   int32
	vals []uint64
	args [maxCallArgs]uint64
}

// pushFrame enters cf. The depth and stack-overflow checks mirror the
// recursive call path this replaced: callee depth is the current frame
// count (main sits at depth 0).
func (ip *Interp) pushFrame(cf *cfunc, args []uint64) {
	if len(ip.frames) > MaxCallDepth {
		ip.trap(TrapCallDepth)
	}
	fp := ip.framePush(cf.frameSize)
	ip.frames = append(ip.frames, frame{cf: cf, fp: fp, vals: ip.frameVals(cf.numVals)})
	f := &ip.frames[len(ip.frames)-1]
	copy(f.args[:], args)
	if ip.tr != nil {
		ip.tracePushFrame(cf)
	}
}

// popFrame leaves the top frame, returning its value storage to the pool.
func (ip *Interp) popFrame() {
	if ip.tr != nil {
		ip.tracePopFrame()
	}
	n := len(ip.frames) - 1
	f := &ip.frames[n]
	ip.framePop(f.cf.frameSize)
	ip.releaseVals(f.vals)
	f.vals = nil
	ip.frames = ip.frames[:n]
}

// run drives the frame stack until main returns. The stack must hold at
// least one frame (Run pushes main; RunFrom restores a snapshot's stack).
func (ip *Interp) run() uint64 {
	var retVal uint64
	returning := false
dispatch:
	for {
		f := &ip.frames[len(ip.frames)-1]
		cf := f.cf
		vals := f.vals
		args := f.args[:]
		fp := f.fp
		bi := f.bi
		i := f.ii

		if returning {
			// Deliver the callee's return value to the call instruction
			// this frame was suspended at, then resume past it. (A call
			// is never a block terminator, so i+1 stays in range.)
			returning = false
			ci := &cf.blocks[bi].instrs[i]
			if ci.slot >= 0 {
				res := retVal
				ip.inject++
				if ip.inject == ip.injectAt {
					res = flipBit(ci.ty, res, ip.injectBit)
					ip.injected = true
					ip.injStatic = ci.gidx
				}
				vals[ci.slot] = res
				if ip.tr != nil {
					ip.traceCommit(ci, res)
				}
			}
			i++
		}

	block:
		if ip.snapCapture && ip.inject >= ip.nextSnapAt {
			// Sync the top frame's position and checkpoint: this is an
			// instruction boundary, so the captured state is exact.
			f.bi, f.ii = bi, i
			ip.captureSnapshot()
		}
		blk := &cf.blocks[bi]
		n := int32(len(blk.instrs))
		for i < n {
			ci := &blk.instrs[i]
			ip.steps++
			if ip.steps > ip.maxSteps {
				ip.trap(TrapTimeout)
			}
			if ip.profiling {
				ip.profile[ci.gidx]++
			}
			if ip.tr != nil {
				ip.traceUses(ci)
			}

			var res uint64
			switch ci.op {
			case ir.OpAlloca:
				res = uint64(fp + ci.aux)

			case ir.OpLoad:
				addr := int64(ip.eval(ci.args[0], vals, args))
				res = ip.loadMem(addr, ci.ty.Size())
				if ci.ty.IsInt() {
					res = ir.NormalizeInt(ci.ty, res)
				}

			case ir.OpStore:
				v := ip.eval(ci.args[0], vals, args)
				addr := int64(ip.eval(ci.args[1], vals, args))
				ip.storeMem(addr, ci.srcTy.Size(), v)
				i++
				continue

			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpShl, ir.OpAShr, ir.OpLShr, ir.OpSDiv, ir.OpSRem:
				x := ip.eval(ci.args[0], vals, args)
				y := ip.eval(ci.args[1], vals, args)
				res = ip.intBin(ci.op, ci.ty, x, y)

			case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
				x := math.Float64frombits(ip.eval(ci.args[0], vals, args))
				y := math.Float64frombits(ip.eval(ci.args[1], vals, args))
				var f float64
				switch ci.op {
				case ir.OpFAdd:
					f = x + y
				case ir.OpFSub:
					f = x - y
				case ir.OpFMul:
					f = x * y
				default:
					f = x / y
				}
				res = math.Float64bits(f)

			case ir.OpICmp:
				x := ip.eval(ci.args[0], vals, args)
				y := ip.eval(ci.args[1], vals, args)
				if icmp(ci.pred, ci.srcTy, x, y) {
					res = 1
				}

			case ir.OpFCmp:
				x := math.Float64frombits(ip.eval(ci.args[0], vals, args))
				y := math.Float64frombits(ip.eval(ci.args[1], vals, args))
				if fcmp(ci.pred, x, y) {
					res = 1
				}

			case ir.OpGEP:
				base := ip.eval(ci.args[0], vals, args)
				idx := int64(ip.eval(ci.args[1], vals, args))
				res = uint64(int64(base) + idx*ci.aux)

			case ir.OpTrunc:
				res = ir.NormalizeInt(ci.ty, ip.eval(ci.args[0], vals, args))
			case ir.OpZExt:
				res = zextBits(ci.srcTy, ip.eval(ci.args[0], vals, args))
			case ir.OpSExt:
				// Values are kept sign-extended canonically.
				res = ip.eval(ci.args[0], vals, args)
			case ir.OpSIToFP:
				res = math.Float64bits(float64(int64(ip.eval(ci.args[0], vals, args))))
			case ir.OpFPToSI:
				f := math.Float64frombits(ip.eval(ci.args[0], vals, args))
				res = fpToSI(ci.ty, f)

			case ir.OpCall:
				var ab [maxCallArgs]uint64
				for ai := range ci.args {
					ab[ai] = ip.eval(ci.args[ai], vals, args)
				}
				callee := ci.callee
				if callee.rtFunc != rt.FuncNone {
					r := ip.callRuntime(callee.rtFunc, ab[:len(ci.args)])
					if ci.slot < 0 {
						i++
						continue
					}
					res = r
					break
				}
				// Suspend at this call; the return is delivered at the
				// top of the dispatch loop.
				f.bi, f.ii = bi, i
				ip.pushFrame(callee, ab[:len(ci.args)])
				if ip.tr != nil {
					ip.traceCallArgs(ci)
				}
				continue dispatch

			case ir.OpBr:
				bi = ci.blocks[0]
				i = 0
				goto block

			case ir.OpCondBr:
				c := ip.eval(ci.args[0], vals, args)
				if c&1 != 0 {
					bi = ci.blocks[0]
				} else {
					bi = ci.blocks[1]
				}
				i = 0
				goto block

			case ir.OpRet:
				var r uint64
				if len(ci.args) == 1 {
					r = ip.eval(ci.args[0], vals, args)
				}
				ip.popFrame()
				if len(ip.frames) == 0 {
					return r
				}
				retVal = r
				returning = true
				continue dispatch

			default:
				panic("interp: unknown opcode " + ci.op.String())
			}

			// Commit the destination, applying the fault if this is the
			// chosen dynamic instruction.
			ip.inject++
			if ip.inject == ip.injectAt {
				res = flipBit(ci.ty, res, ip.injectBit)
				ip.injected = true
				ip.injStatic = ci.gidx
			}
			vals[ci.slot] = res
			if ip.tr != nil {
				ip.traceCommit(ci, res)
			}
			i++
		}
		// A verified function never falls off a block, but a trap in the
		// middle of one exits via panic; reaching here means the block
		// had no terminator.
		panic("interp: block without terminator")
	}
}

func (ip *Interp) eval(o opnd, vals, args []uint64) uint64 {
	switch o.kind {
	case opndSlot:
		return vals[o.idx]
	case opndParam:
		return args[o.idx]
	default: // opndConst, opndGlobal
		return o.bits
	}
}

// flipBit flips fault bit b (reduced modulo the type width) in v and
// re-canonicalizes integer values.
func flipBit(ty ir.Type, v uint64, b int) uint64 {
	w := ty.Bits()
	if w == 0 {
		return v
	}
	v ^= 1 << (b % w)
	if ty.IsInt() {
		v = ir.NormalizeInt(ty, v)
	}
	return v
}

func (ip *Interp) intBin(op ir.Op, ty ir.Type, x, y uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return ir.NormalizeInt(ty, x+y)
	case ir.OpSub:
		return ir.NormalizeInt(ty, x-y)
	case ir.OpMul:
		return ir.NormalizeInt(ty, x*y)
	case ir.OpAnd:
		return x & y
	case ir.OpOr:
		return x | y
	case ir.OpXor:
		return x ^ y
	case ir.OpShl:
		return ir.NormalizeInt(ty, x<<shiftCount(ty, y))
	case ir.OpAShr:
		return ir.NormalizeInt(ty, uint64(int64(x)>>shiftCount(ty, y)))
	case ir.OpLShr:
		return ir.NormalizeInt(ty, zextBits(ty, x)>>shiftCount(ty, y))
	case ir.OpSDiv, ir.OpSRem:
		xi, yi := int64(x), int64(y)
		if yi == 0 {
			ip.trap(TrapDivide)
		}
		// x86 idiv raises #DE on signed overflow. The backend lowers i8
		// division through 32-bit idiv (as clang does after promotion),
		// where i8 operands can never overflow, so only 32- and 64-bit
		// division can trap this way.
		if yi == -1 && (ty == ir.I32 || ty == ir.I64) && xi == minInt(ty) {
			ip.trap(TrapDivide)
		}
		if op == ir.OpSDiv {
			return ir.NormalizeInt(ty, uint64(xi/yi))
		}
		return ir.NormalizeInt(ty, uint64(xi%yi))
	default:
		panic("interp: not an integer binop")
	}
}

// shiftCount masks the shift amount the way x86 shl/sar/shr do: modulo 64
// for 64-bit operations and modulo 32 for everything narrower (x86 masks
// 8- and 16-bit shifts by 31 as well).
func shiftCount(ty ir.Type, y uint64) uint64 {
	if ty.Bits() >= 64 {
		return y & 63
	}
	return y & 31
}

// zextBits returns the zero-extended low-width bits of a canonical
// (sign-extended) value.
func zextBits(ty ir.Type, v uint64) uint64 {
	switch ty {
	case ir.I1:
		return v & 1
	case ir.I8:
		return v & 0xff
	case ir.I32:
		return v & 0xffff_ffff
	default:
		return v
	}
}

func minInt(ty ir.Type) int64 {
	switch ty {
	case ir.I8:
		return math.MinInt8
	case ir.I32:
		return math.MinInt32
	case ir.I64:
		return math.MinInt64
	default:
		return 0
	}
}

func icmp(p ir.Pred, ty ir.Type, x, y uint64) bool {
	xs, ys := int64(x), int64(y)
	xu, yu := zextBits(ty, x), zextBits(ty, y)
	if ty == ir.Ptr {
		xu, yu = x, y
	}
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredSLT:
		return xs < ys
	case ir.PredSLE:
		return xs <= ys
	case ir.PredSGT:
		return xs > ys
	case ir.PredSGE:
		return xs >= ys
	case ir.PredULT:
		return xu < yu
	case ir.PredULE:
		return xu <= yu
	case ir.PredUGT:
		return xu > yu
	case ir.PredUGE:
		return xu >= yu
	default:
		panic("interp: bad icmp predicate")
	}
}

func fcmp(p ir.Pred, x, y float64) bool {
	switch p {
	case ir.PredOEQ:
		return x == y
	case ir.PredONE:
		return x != y && !math.IsNaN(x) && !math.IsNaN(y)
	case ir.PredOLT:
		return x < y
	case ir.PredOLE:
		return x <= y
	case ir.PredOGT:
		return x > y
	case ir.PredOGE:
		return x >= y
	default:
		panic("interp: bad fcmp predicate")
	}
}

// fpToSI converts with x86 cvttsd2si semantics via the shared runtime
// helper. cvttsd2si only exists at 32 and 64 bits; narrower IR types
// convert through the 32-bit form and truncate, exactly as the backend
// lowers them.
func fpToSI(ty ir.Type, f float64) uint64 {
	w := ty.Bits()
	if w < 32 {
		w = 32
	}
	return ir.NormalizeInt(ty, uint64(rt.FpToSI(w, f)))
}
