package interp

import (
	"bytes"
	"testing"

	"flowery/internal/bench"
)

func sameResult(t *testing.T, tag string, want, got Result) {
	t.Helper()
	if want.Status != got.Status || want.Trap != got.Trap ||
		want.RetVal != got.RetVal ||
		want.DynInstrs != got.DynInstrs ||
		want.InjectableInstrs != got.InjectableInstrs ||
		want.Injected != got.Injected ||
		want.InjectedStatic != got.InjectedStatic {
		t.Fatalf("%s: result diverged:\nscratch %+v\nrestore %+v", tag, want, got)
	}
	if !bytes.Equal(want.Output, got.Output) {
		t.Fatalf("%s: output diverged:\nscratch %q\nrestore %q", tag, want.Output, got.Output)
	}
}

// TestSnapshotEquivalence: for faults sampled across the injectable
// range, a snapshot-restored run must be bit-identical to a from-scratch
// run. quicksort exercises recursion, so snapshots capture multi-frame
// call stacks.
func TestSnapshotEquivalence(t *testing.T) {
	for _, name := range []string{"bfs", "quicksort", "fft2"} {
		bm, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		m := bm.Build()
		scratch := New(m)
		snap := New(m)

		golden := snap.BuildSnapshots(977, Options{})
		if golden.Status != StatusOK {
			t.Fatalf("%s: golden failed: %v", name, golden.Status)
		}
		if len(snap.snaps) == 0 {
			t.Fatalf("%s: no snapshots captured", name)
		}

		inj := golden.InjectableInstrs
		var restoredSome bool
		for i := int64(0); i < 60; i++ {
			fault := Fault{TargetIndex: 1 + i*inj/60, Bit: int(i * 11 % 64)}
			want := scratch.Run(fault, Options{})
			got, skipped := snap.RunFrom(fault, Options{})
			sameResult(t, name, want, got)
			if skipped > 0 {
				restoredSome = true
			}
		}
		if !restoredSome {
			t.Fatalf("%s: no run used a snapshot", name)
		}
	}
}

// TestSnapshotDeepStack pins the frame capture on a snapshot taken deep
// inside recursion: every checkpoint of a quicksort golden run restores
// to a state that finishes with the golden output.
func TestSnapshotDeepStack(t *testing.T) {
	bm, _ := bench.ByName("quicksort")
	m := bm.Build()
	ip := New(m)
	if res := ip.BuildSnapshots(499, Options{}); res.Status != StatusOK {
		t.Fatalf("golden failed: %v", res.Status)
	}
	maxFrames := 0
	for i := range ip.snaps {
		if n := len(ip.snaps[i].frames); n > maxFrames {
			maxFrames = n
		}
	}
	if maxFrames < 2 {
		t.Fatalf("no snapshot captured inside a call (max %d frames)", maxFrames)
	}
	for i := range ip.snaps {
		target := ip.snaps[i].index + 1
		// A fault on a bit that the golden value never uses may still be
		// benign; what matters here is that resuming from every single
		// snapshot replays the prefix correctly, so inject nothing and
		// expect the golden result exactly.
		res, skipped := ip.RunFrom(Fault{TargetIndex: target, Bit: 0}, Options{})
		if skipped != ip.snaps[i].steps {
			t.Fatalf("snapshot %d: skipped %d, want %d", i, skipped, ip.snaps[i].steps)
		}
		scratch := New(m).Run(Fault{TargetIndex: target, Bit: 0}, Options{})
		sameResult(t, "deep", scratch, res)
	}
}

// TestSnapshotProfileFallback: profiled runs bypass snapshots (profile
// counts must cover the whole run).
func TestSnapshotProfileFallback(t *testing.T) {
	bm, _ := bench.ByName("bfs")
	m := bm.Build()
	ip := New(m)
	golden := ip.BuildSnapshots(1024, Options{})
	_, skipped := ip.RunFrom(Fault{TargetIndex: golden.InjectableInstrs / 2, Bit: 1}, Options{Profile: true})
	if skipped != 0 {
		t.Fatalf("profiled run used a snapshot")
	}
	if got := ip.ProfileCounts(); got == nil {
		t.Fatalf("profiled run produced no counts")
	}
}
