package interp

import (
	"fmt"

	"flowery/internal/ir"
	"flowery/internal/rt"
)

// Operand kinds for compiled operands.
const (
	opndConst  uint8 = iota
	opndSlot         // result of another instruction: frame value slot
	opndParam        // function parameter: argument slot
	opndGlobal       // global address (resolved to a constant at compile)
)

// opnd is a pre-resolved operand: evaluating one is a couple of array
// indexing operations instead of a type switch on ir.Value.
type opnd struct {
	kind uint8
	idx  int32
	bits uint64
}

// cinstr is the compiled form of an ir.Instr.
type cinstr struct {
	op     ir.Op
	ty     ir.Type
	srcTy  ir.Type // type of Args[0]: cast sources, stored values, cmp operands
	pred   ir.Pred
	slot   int32 // destination value slot, -1 if none
	gidx   int32 // module-wide static instruction index (profiling)
	aux    int64
	args   []opnd
	blocks [2]int32 // successor block indices
	callee *cfunc   // for OpCall
	orig   *ir.Instr
	fn     fastFn // specialized closure for the fast core; nil = control flow
}

// cblock is a compiled basic block.
type cblock struct {
	instrs []cinstr
}

// cfunc is a compiled function.
type cfunc struct {
	f         *ir.Function
	rtFunc    rt.Func // non-zero for external runtime functions
	blocks    []cblock
	numVals   int32
	frameSize int64
	numParams int
}

// compile translates the module into the interpreter's internal form.
// The module must verify.
func compile(m *ir.Module) (map[*ir.Function]*cfunc, []*ir.Instr) {
	funcs := make(map[*ir.Function]*cfunc, len(m.Funcs))
	var gInstrs []*ir.Instr

	// Create shells first so calls can reference any function.
	for _, f := range m.Funcs {
		cf := &cfunc{f: f, numParams: len(f.Params)}
		if f.External {
			id, ok := rt.ByName[f.Name]
			if !ok {
				panic(fmt.Sprintf("interp: external function %q is not a runtime function", f.Name))
			}
			cf.rtFunc = id
		}
		funcs[f] = cf
	}

	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		cf := funcs[f]
		f.Renumber()

		blockIdx := make(map[*ir.Block]int32, len(f.Blocks))
		for i, b := range f.Blocks {
			blockIdx[b] = int32(i)
		}

		// Frame layout: sum of alloca sizes, 8-byte aligned each.
		offsets := make(map[*ir.Instr]int64)
		var frame int64
		numVals := int32(0)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAlloca {
					offsets[in] = frame
					frame += (in.Aux + 7) &^ 7
				}
				if in.HasResult() {
					numVals++
				}
			}
		}
		cf.frameSize = (frame + 15) &^ 15
		cf.numVals = numVals

		cf.blocks = make([]cblock, len(f.Blocks))
		for bi, b := range f.Blocks {
			cb := &cf.blocks[bi]
			cb.instrs = make([]cinstr, 0, len(b.Instrs))
			for _, in := range b.Instrs {
				ci := cinstr{
					op:   in.Op,
					ty:   in.Ty,
					pred: in.Pred,
					aux:  in.Aux,
					slot: -1,
					gidx: int32(len(gInstrs)),
					orig: in,
				}
				gInstrs = append(gInstrs, in)
				if in.Op == ir.OpAlloca {
					ci.aux = offsets[in] // repurposed: frame offset
				}
				if in.HasResult() {
					ci.slot = int32(in.ID)
				}
				if len(in.Args) > 0 {
					ci.srcTy = in.Args[0].Type()
				}
				if in.Op == ir.OpCall && len(in.Args) > maxCallArgs {
					panic(fmt.Sprintf("interp: call to @%s has %d args; max %d", in.Callee.Name, len(in.Args), maxCallArgs))
				}
				for _, a := range in.Args {
					ci.args = append(ci.args, compileOperand(a))
				}
				for i, t := range in.Blocks {
					ci.blocks[i] = blockIdx[t]
				}
				if in.Callee != nil {
					ci.callee = funcs[in.Callee]
				}
				ci.fn = fastCompile(&ci)
				cb.instrs = append(cb.instrs, ci)
			}
		}
	}
	return funcs, gInstrs
}

func compileOperand(v ir.Value) opnd {
	switch x := v.(type) {
	case *ir.Const:
		return opnd{kind: opndConst, bits: x.Bits}
	case *ir.Instr:
		if x.ID < 0 {
			panic("interp: operand instruction has no result id")
		}
		return opnd{kind: opndSlot, idx: int32(x.ID)}
	case *ir.Param:
		return opnd{kind: opndParam, idx: int32(x.Index)}
	case *ir.Global:
		if x.Addr == 0 {
			panic(fmt.Sprintf("interp: global @%s has no address; call AssignAddresses", x.Name))
		}
		return opnd{kind: opndGlobal, bits: uint64(x.Addr)}
	default:
		panic(fmt.Sprintf("interp: unknown operand kind %T", v))
	}
}
