package interp

import (
	"encoding/binary"
	"math"

	"flowery/internal/ir"
	"flowery/internal/rt"
)

// The interpreter's fast execution core. compile attaches a specialized
// closure (fastFn) to every straight-line instruction; runFast drives
// the same dispatch/frame machinery as run but executes those closures
// instead of re-dispatching on op and operand kind every step. Control
// flow (call/br/condbr/ret) stays in runFast's switch — it manipulates
// the loop state itself. Instrumented runs (profiling, def-use tracing,
// snapshot capture) and opts.Reference runs take run(), the semantic
// reference this core must match bit for bit.

// fastFn executes one straight-line instruction and returns its result
// (garbage for stores, which have no destination slot — the caller skips
// the commit when slot < 0).
type fastFn func(ip *Interp, fp int64, vals, args []uint64) uint64

// operand shape classes for specialization: slot and param index arrays
// directly; consts and globals are both compile-time literals.
const (
	shSlot = iota
	shParam
	shLit
)

func shape(o opnd) int {
	switch o.kind {
	case opndSlot:
		return shSlot
	case opndParam:
		return shParam
	default:
		return shLit
	}
}

// un1 builds a fastFn computing f over one operand, with the operand
// fetch specialized away.
func un1(a opnd, f func(ip *Interp, x uint64) uint64) fastFn {
	switch shape(a) {
	case shSlot:
		ai := a.idx
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, vals[ai]) }
	case shParam:
		ai := a.idx
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, args[ai]) }
	default:
		av := a.bits
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, av) }
	}
}

// bin2 builds a fastFn computing f over two operands. All nine operand
// shape combinations get their own closure so the hot path is two array
// indexes plus one call.
func bin2(a, b opnd, f func(ip *Interp, x, y uint64) uint64) fastFn {
	ai, bi := a.idx, b.idx
	av, bv := a.bits, b.bits
	switch shape(a)*3 + shape(b) {
	case shSlot*3 + shSlot:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, vals[ai], vals[bi]) }
	case shSlot*3 + shParam:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, vals[ai], args[bi]) }
	case shSlot*3 + shLit:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, vals[ai], bv) }
	case shParam*3 + shSlot:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, args[ai], vals[bi]) }
	case shParam*3 + shParam:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, args[ai], args[bi]) }
	case shParam*3 + shLit:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, args[ai], bv) }
	case shLit*3 + shSlot:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, av, vals[bi]) }
	case shLit*3 + shParam:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, av, args[bi]) }
	default:
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return f(ip, av, bv) }
	}
}

// fastFused builds fully-fused closures (operand fetch, operation, and
// width normalization in one body, no inner indirect call) for the op ×
// operand-shape × type combinations that dominate execution. Returns nil
// when the combination is not worth a dedicated closure; fastCompile
// then falls back to the composed un1/bin2 form.
func fastFused(ci *cinstr) fastFn {
	switch ci.op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor:
		if ci.ty != ir.I64 && ci.ty != ir.I32 {
			return nil
		}
		a, b := ci.args[0], ci.args[1]
		op, wide := ci.op, ci.ty == ir.I64
		// Closures are written out per op and shape so the arithmetic
		// inlines; only I64 (no normalization) and I32 (sign-extend) are
		// fused.
		switch {
		case shape(a) == shSlot && shape(b) == shSlot:
			ai, bi := a.idx, b.idx
			if wide {
				switch op {
				case ir.OpAdd:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] + vals[bi] }
				case ir.OpSub:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] - vals[bi] }
				case ir.OpAnd:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] & vals[bi] }
				case ir.OpOr:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] | vals[bi] }
				default:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] ^ vals[bi] }
				}
			}
			switch op {
			case ir.OpAdd:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] + vals[bi])))
				}
			case ir.OpSub:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] - vals[bi])))
				}
			case ir.OpAnd:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] & vals[bi])))
				}
			case ir.OpOr:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] | vals[bi])))
				}
			default:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] ^ vals[bi])))
				}
			}
		case shape(a) == shSlot && shape(b) == shLit:
			ai, bv := a.idx, b.bits
			if wide {
				switch op {
				case ir.OpAdd:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] + bv }
				case ir.OpSub:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] - bv }
				case ir.OpAnd:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] & bv }
				case ir.OpOr:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] | bv }
				default:
					return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return vals[ai] ^ bv }
				}
			}
			switch op {
			case ir.OpAdd:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] + bv)))
				}
			case ir.OpSub:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] - bv)))
				}
			case ir.OpAnd:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] & bv)))
				}
			case ir.OpOr:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] | bv)))
				}
			default:
				return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
					return uint64(int64(int32(vals[ai] ^ bv)))
				}
			}
		}
		return nil

	case ir.OpICmp:
		a, b := ci.args[0], ci.args[1]
		if shape(a) != shSlot {
			return nil
		}
		ai := a.idx
		pred, sty := ci.pred, ci.srcTy
		// Canonical values are sign-extended, so signed compares and
		// equality work on the raw uint64s at every width; unsigned
		// compares do too at I64/Ptr (zero-extension is the identity).
		if pred == ir.PredULT || pred == ir.PredULE || pred == ir.PredUGT || pred == ir.PredUGE {
			if sty != ir.I64 && sty != ir.Ptr {
				return nil
			}
		}
		switch pred {
		case ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredSLE, ir.PredSGT,
			ir.PredSGE, ir.PredULT, ir.PredULE, ir.PredUGT, ir.PredUGE:
		default:
			return nil
		}
		// The predicate switch lives inside the closure on a captured
		// constant — perfectly predicted, and one call cheaper than
		// composing a comparator closure.
		switch shape(b) {
		case shSlot:
			bi := b.idx
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				x, y := vals[ai], vals[bi]
				var c bool
				switch pred {
				case ir.PredEQ:
					c = x == y
				case ir.PredNE:
					c = x != y
				case ir.PredSLT:
					c = int64(x) < int64(y)
				case ir.PredSLE:
					c = int64(x) <= int64(y)
				case ir.PredSGT:
					c = int64(x) > int64(y)
				case ir.PredSGE:
					c = int64(x) >= int64(y)
				case ir.PredULT:
					c = x < y
				case ir.PredULE:
					c = x <= y
				case ir.PredUGT:
					c = x > y
				default:
					c = x >= y
				}
				if c {
					return 1
				}
				return 0
			}
		case shLit:
			bv := b.bits
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				x := vals[ai]
				var c bool
				switch pred {
				case ir.PredEQ:
					c = x == bv
				case ir.PredNE:
					c = x != bv
				case ir.PredSLT:
					c = int64(x) < int64(bv)
				case ir.PredSLE:
					c = int64(x) <= int64(bv)
				case ir.PredSGT:
					c = int64(x) > int64(bv)
				case ir.PredSGE:
					c = int64(x) >= int64(bv)
				case ir.PredULT:
					c = x < bv
				case ir.PredULE:
					c = x <= bv
				case ir.PredUGT:
					c = x > bv
				default:
					c = x >= bv
				}
				if c {
					return 1
				}
				return 0
			}
		}
		return nil

	case ir.OpGEP:
		a, b := ci.args[0], ci.args[1]
		scale := ci.aux
		if shape(a) == shSlot && shape(b) == shSlot {
			ai, bi := a.idx, b.idx
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				return uint64(int64(vals[ai]) + int64(vals[bi])*scale)
			}
		}
		return nil

	case ir.OpLoad:
		if shape(ci.args[0]) != shSlot {
			return nil
		}
		ai := ci.args[0].idx
		size := ci.ty.Size()
		switch ci.ty {
		case ir.I64, ir.Ptr, ir.F64:
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				return ip.fastLoadMem(int64(vals[ai]), size)
			}
		case ir.I32:
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				return uint64(int64(int32(ip.fastLoadMem(int64(vals[ai]), size))))
			}
		case ir.I8:
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				return uint64(int64(int8(ip.fastLoadMem(int64(vals[ai]), size))))
			}
		default: // I1
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				return ip.fastLoadMem(int64(vals[ai]), size) & 1
			}
		}

	case ir.OpStore:
		v, a := ci.args[0], ci.args[1]
		if shape(a) != shSlot {
			return nil
		}
		addri := a.idx
		size := ci.srcTy.Size()
		switch shape(v) {
		case shSlot:
			vi := v.idx
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				ip.fastStoreMem(int64(vals[addri]), size, vals[vi])
				return 0
			}
		case shLit:
			vv := v.bits
			return func(ip *Interp, fp int64, vals, args []uint64) uint64 {
				ip.fastStoreMem(int64(vals[addri]), size, vv)
				return 0
			}
		}
		return nil
	}
	return nil
}

// fastCompile builds the specialized closure for ci, or nil for the ops
// runFast dispatches itself (call, branches, ret). Each closure computes
// exactly what the corresponding case in run computes — the reference
// helpers (intBin, icmp, fpToSI, ...) are reused wherever the semantics
// have any subtlety.
func fastCompile(ci *cinstr) fastFn {
	if fn := fastFused(ci); fn != nil {
		return fn
	}
	switch ci.op {
	case ir.OpAlloca:
		off := ci.aux
		return func(ip *Interp, fp int64, vals, args []uint64) uint64 { return uint64(fp + off) }

	case ir.OpLoad:
		size := ci.ty.Size()
		if ci.ty.IsInt() {
			ty := ci.ty
			return un1(ci.args[0], func(ip *Interp, x uint64) uint64 {
				return ir.NormalizeInt(ty, ip.fastLoadMem(int64(x), size))
			})
		}
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 {
			return ip.fastLoadMem(int64(x), size)
		})

	case ir.OpStore:
		size := ci.srcTy.Size()
		// args: value, address. The result is unused (slot is -1).
		return bin2(ci.args[0], ci.args[1], func(ip *Interp, v, addr uint64) uint64 {
			ip.fastStoreMem(int64(addr), size, v)
			return 0
		})

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpAShr, ir.OpLShr, ir.OpSDiv, ir.OpSRem:
		ty := ci.ty
		var f func(ip *Interp, x, y uint64) uint64
		switch ci.op {
		case ir.OpAdd:
			f = func(ip *Interp, x, y uint64) uint64 { return ir.NormalizeInt(ty, x+y) }
		case ir.OpSub:
			f = func(ip *Interp, x, y uint64) uint64 { return ir.NormalizeInt(ty, x-y) }
		case ir.OpMul:
			f = func(ip *Interp, x, y uint64) uint64 { return ir.NormalizeInt(ty, x*y) }
		case ir.OpAnd:
			f = func(ip *Interp, x, y uint64) uint64 { return x & y }
		case ir.OpOr:
			f = func(ip *Interp, x, y uint64) uint64 { return x | y }
		case ir.OpXor:
			f = func(ip *Interp, x, y uint64) uint64 { return x ^ y }
		case ir.OpShl:
			f = func(ip *Interp, x, y uint64) uint64 {
				return ir.NormalizeInt(ty, x<<shiftCount(ty, y))
			}
		case ir.OpAShr:
			f = func(ip *Interp, x, y uint64) uint64 {
				return ir.NormalizeInt(ty, uint64(int64(x)>>shiftCount(ty, y)))
			}
		case ir.OpLShr:
			f = func(ip *Interp, x, y uint64) uint64 {
				return ir.NormalizeInt(ty, zextBits(ty, x)>>shiftCount(ty, y))
			}
		default:
			// Division can trap; keep the reference implementation.
			op := ci.op
			f = func(ip *Interp, x, y uint64) uint64 { return ip.intBin(op, ty, x, y) }
		}
		return bin2(ci.args[0], ci.args[1], f)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		var f func(ip *Interp, x, y uint64) uint64
		switch ci.op {
		case ir.OpFAdd:
			f = func(ip *Interp, x, y uint64) uint64 {
				return math.Float64bits(math.Float64frombits(x) + math.Float64frombits(y))
			}
		case ir.OpFSub:
			f = func(ip *Interp, x, y uint64) uint64 {
				return math.Float64bits(math.Float64frombits(x) - math.Float64frombits(y))
			}
		case ir.OpFMul:
			f = func(ip *Interp, x, y uint64) uint64 {
				return math.Float64bits(math.Float64frombits(x) * math.Float64frombits(y))
			}
		default:
			f = func(ip *Interp, x, y uint64) uint64 {
				return math.Float64bits(math.Float64frombits(x) / math.Float64frombits(y))
			}
		}
		return bin2(ci.args[0], ci.args[1], f)

	case ir.OpICmp:
		pred, sty := ci.pred, ci.srcTy
		return bin2(ci.args[0], ci.args[1], func(ip *Interp, x, y uint64) uint64 {
			if icmp(pred, sty, x, y) {
				return 1
			}
			return 0
		})

	case ir.OpFCmp:
		pred := ci.pred
		return bin2(ci.args[0], ci.args[1], func(ip *Interp, x, y uint64) uint64 {
			if fcmp(pred, math.Float64frombits(x), math.Float64frombits(y)) {
				return 1
			}
			return 0
		})

	case ir.OpGEP:
		scale := ci.aux
		return bin2(ci.args[0], ci.args[1], func(ip *Interp, base, idx uint64) uint64 {
			return uint64(int64(base) + int64(idx)*scale)
		})

	case ir.OpTrunc:
		ty := ci.ty
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 { return ir.NormalizeInt(ty, x) })
	case ir.OpZExt:
		sty := ci.srcTy
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 { return zextBits(sty, x) })
	case ir.OpSExt:
		// Values are kept sign-extended canonically: pure copy.
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 { return x })
	case ir.OpSIToFP:
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 {
			return math.Float64bits(float64(int64(x)))
		})
	case ir.OpFPToSI:
		ty := ci.ty
		return un1(ci.args[0], func(ip *Interp, x uint64) uint64 {
			return fpToSI(ty, math.Float64frombits(x))
		})

	default:
		// OpCall, OpBr, OpCondBr, OpRet: runFast handles control flow.
		return nil
	}
}

// fastLoadMem/fastStoreMem are loadMem/storeMem with the byte loop
// replaced by little-endian word access; mapped() bounds the slice so the
// accesses cannot overrun. fastStoreMem keeps the minTouch low-water mark
// but not the snapshot dirty range — snapCapture runs never use this core.
func (ip *Interp) fastLoadMem(addr, size int64) uint64 {
	if !ip.mapped(addr, size) {
		ip.trap(TrapBadAddress)
	}
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(ip.mem[addr:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(ip.mem[addr:]))
	default:
		return uint64(ip.mem[addr])
	}
}

func (ip *Interp) fastStoreMem(addr, size int64, v uint64) {
	if !ip.mapped(addr, size) {
		ip.trap(TrapBadAddress)
	}
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(ip.mem[addr:], v)
	case 4:
		binary.LittleEndian.PutUint32(ip.mem[addr:], uint32(v))
	default:
		ip.mem[addr] = byte(v)
	}
	if addr >= ir.StackLimit && addr < ip.minTouch {
		ip.minTouch = addr
	}
}

// runFast is run() with the instrumentation hooks removed (the loop
// selection in finish guarantees they are off) and the per-instruction
// dispatch replaced by the compiled closures. Counters, injection
// points, trap points, and frame handling are identical.
func (ip *Interp) runFast() uint64 {
	var retVal uint64
	returning := false
dispatch:
	for {
		f := &ip.frames[len(ip.frames)-1]
		cf := f.cf
		vals := f.vals
		args := f.args[:]
		fp := f.fp
		bi := f.bi
		i := f.ii

		if returning {
			// Deliver the callee's return value to the call instruction
			// this frame was suspended at, then resume past it.
			returning = false
			ci := &cf.blocks[bi].instrs[i]
			if ci.slot >= 0 {
				res := retVal
				ip.inject++
				if ip.inject == ip.injectAt {
					res = flipBit(ci.ty, res, ip.injectBit)
					ip.injected = true
					ip.injStatic = ci.gidx
				}
				vals[ci.slot] = res
			}
			i++
		}

	block:
		blk := &cf.blocks[bi]
		n := int32(len(blk.instrs))
		for i < n {
			ci := &blk.instrs[i]
			ip.steps++
			if ip.steps > ip.maxSteps {
				ip.trap(TrapTimeout)
			}

			if fn := ci.fn; fn != nil {
				res := fn(ip, fp, vals, args)
				if ci.slot < 0 {
					// Stores: no destination, no injection site.
					i++
					continue
				}
				ip.inject++
				if ip.inject == ip.injectAt {
					res = flipBit(ci.ty, res, ip.injectBit)
					ip.injected = true
					ip.injStatic = ci.gidx
				}
				vals[ci.slot] = res
				i++
				continue
			}

			switch ci.op {
			case ir.OpCall:
				var ab [maxCallArgs]uint64
				for ai := range ci.args {
					ab[ai] = ip.eval(ci.args[ai], vals, args)
				}
				callee := ci.callee
				if callee.rtFunc != rt.FuncNone {
					r := ip.callRuntime(callee.rtFunc, ab[:len(ci.args)])
					if ci.slot >= 0 {
						ip.inject++
						if ip.inject == ip.injectAt {
							r = flipBit(ci.ty, r, ip.injectBit)
							ip.injected = true
							ip.injStatic = ci.gidx
						}
						vals[ci.slot] = r
					}
					i++
					continue
				}
				// Suspend at this call; the return is delivered at the
				// top of the dispatch loop.
				f.bi, f.ii = bi, i
				ip.pushFrame(callee, ab[:len(ci.args)])
				continue dispatch

			case ir.OpBr:
				bi = ci.blocks[0]
				i = 0
				goto block

			case ir.OpCondBr:
				c := ip.eval(ci.args[0], vals, args)
				if c&1 != 0 {
					bi = ci.blocks[0]
				} else {
					bi = ci.blocks[1]
				}
				i = 0
				goto block

			case ir.OpRet:
				var r uint64
				if len(ci.args) == 1 {
					r = ip.eval(ci.args[0], vals, args)
				}
				ip.popFrame()
				if len(ip.frames) == 0 {
					return r
				}
				retVal = r
				returning = true
				continue dispatch

			default:
				panic("interp: unknown opcode " + ci.op.String())
			}
		}
		panic("interp: block without terminator")
	}
}
