package interp

import (
	"flowery/internal/ir"
	"flowery/internal/rt"
	"flowery/internal/sim"
)

// traceFrame shadows one frame of the call stack with def handles: one
// per value slot and one per incoming argument (-1 = untracked). Slot
// handles are owned by the frame; argument handles are retained copies
// of caller defs (a caller slot can be overwritten — and its def
// killed from the caller's side — while the callee still reads the
// copied value, so the def's liveness is reference-counted through the
// tracer).
type traceFrame struct {
	slots []int64
	args  [maxCallArgs]int64
}

// RunTraced implements sim.TraceEngine: a golden run that streams
// def-use events to t. Def order matches the injection counter: the
// i-th Def call corresponds to Fault.TargetIndex i+1.
func (ip *Interp) RunTraced(opts Options, t sim.Tracer) Result {
	ip.reset()
	ip.maxSteps = opts.MaxSteps
	if ip.maxSteps <= 0 {
		ip.maxSteps = DefaultMaxSteps
	}
	ip.injectAt = 0
	ip.injectBit = 0
	ip.profiling = opts.Profile
	if opts.Profile {
		ip.profile = make([]int64, len(ip.gInstrs))
	}
	ip.tr = t
	defer func() { ip.tr = nil }()
	ip.setMetrics(opts.Metrics)
	return ip.finish(true)
}

// tracePushFrame mirrors pushFrame. Argument handles are filled in by
// the OpCall path (the only caller with arguments).
func (ip *Interp) tracePushFrame(cf *cfunc) {
	tf := traceFrame{slots: make([]int64, cf.numVals)}
	for i := range tf.slots {
		tf.slots[i] = -1
	}
	for i := range tf.args {
		tf.args[i] = -1
	}
	ip.trFrames = append(ip.trFrames, tf)
}

// tracePopFrame releases every def reference the departing frame holds.
func (ip *Interp) tracePopFrame() {
	n := len(ip.trFrames) - 1
	tf := &ip.trFrames[n]
	for _, h := range tf.slots {
		ip.tr.Kill(h)
	}
	for _, h := range tf.args {
		ip.tr.Kill(h)
	}
	ip.trFrames = ip.trFrames[:n]
}

// traceHandle resolves an operand to the def handle currently live in
// it (-1 for constants and globals).
func (ip *Interp) traceHandle(tf *traceFrame, o opnd) int64 {
	switch o.kind {
	case opndSlot:
		return tf.slots[o.idx]
	case opndParam:
		return tf.args[o.idx]
	default:
		return -1
	}
}

// traceCommit records the injectable definition committed to ci's slot,
// ending the previous def of that slot.
func (ip *Interp) traceCommit(ci *cinstr, res uint64) {
	tf := &ip.trFrames[len(ip.trFrames)-1]
	if old := tf.slots[ci.slot]; old >= 0 {
		ip.tr.Kill(old)
	}
	tf.slots[ci.slot] = ip.tr.Def(ci.gidx, uint8(ci.ty.Bits()), res, false)
}

// traceCallArgs retains the caller defs flowing into a call and plants
// them as the callee frame's argument handles. Must run after both the
// caller's position sync and tracePushFrame.
func (ip *Interp) traceCallArgs(ci *cinstr) {
	n := len(ip.trFrames)
	caller, callee := &ip.trFrames[n-2], &ip.trFrames[n-1]
	for ai := range ci.args {
		h := ip.traceHandle(caller, ci.args[ai])
		if h >= 0 {
			ip.tr.Retain(h)
		}
		callee.args[ai] = h
	}
}

// traceUses records how ci consumes its operands, before ci executes.
func (ip *Interp) traceUses(ci *cinstr) {
	tf := &ip.trFrames[len(ip.trFrames)-1]
	for ai := range ci.args {
		h := ip.traceHandle(tf, ci.args[ai])
		if h < 0 {
			continue
		}
		ip.tr.Use(h, ci.gidx, useKindFor(ci, ai))
	}
}

// useKindFor classifies operand ai of ci for the equivalence signature.
func useKindFor(ci *cinstr, ai int) sim.UseKind {
	switch ci.op {
	case ir.OpStore:
		if ai == 0 {
			return sim.UseStoreVal
		}
		return sim.UseAddr
	case ir.OpLoad, ir.OpGEP:
		return sim.UseAddr
	case ir.OpCondBr:
		return sim.UseBranch
	case ir.OpICmp, ir.OpFCmp:
		return sim.UseCmp
	case ir.OpSDiv, ir.OpSRem:
		return sim.UseDiv
	case ir.OpRet:
		return sim.UseRet
	case ir.OpCall:
		switch ci.callee.rtFunc {
		case rt.FuncPrintI64, rt.FuncPrintF64, rt.FuncPrintChar:
			return sim.UseOutput
		}
		return sim.UseCallArg
	default:
		return sim.UseArith
	}
}
