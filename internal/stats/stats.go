// Package stats provides the statistical helpers the evaluation uses:
// binomial proportion estimates with Wilson score intervals (the
// standard choice for fault-injection campaigns, which are Bernoulli
// trials), and error propagation for the derived coverage ratio.
package stats

import "math"

// Z95 is the normal quantile for 95% two-sided intervals.
const Z95 = 1.959963984540054

// Proportion is an estimated binomial proportion.
type Proportion struct {
	Hits  int
	Total int
}

// P returns the point estimate.
func (p Proportion) P() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Total)
}

// Wilson returns the Wilson score interval at confidence z (use Z95).
// Unlike the normal approximation it behaves sensibly for proportions
// near 0 or 1 and for small campaigns.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Total == 0 {
		return 0, 1
	}
	n := float64(p.Total)
	ph := p.P()
	z2 := z * z
	denom := 1 + z2/n
	center := (ph + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// StdErr returns the standard error of the proportion estimate.
func (p Proportion) StdErr() float64 {
	if p.Total == 0 {
		return 0
	}
	ph := p.P()
	return math.Sqrt(ph * (1 - ph) / float64(p.Total))
}

// CoverageInterval propagates campaign uncertainty into the SDC-coverage
// ratio C = (praw − pprot)/praw. It uses first-order (delta-method)
// propagation with independent campaigns, then clamps to [0, 1]; the
// result degrades gracefully to the full interval when the baseline is
// too small to support an estimate.
func CoverageInterval(raw, prot Proportion, z float64) (c, lo, hi float64) {
	pr := raw.P()
	pp := prot.P()
	if pr == 0 {
		return 1, 0, 1
	}
	c = (pr - pp) / pr
	// dC/dpr = pp/pr², dC/dpp = −1/pr
	vr := raw.StdErr() * raw.StdErr()
	vp := prot.StdErr() * prot.StdErr()
	se := math.Sqrt(vr*(pp/(pr*pr))*(pp/(pr*pr)) + vp/(pr*pr))
	lo = c - z*se
	hi = c + z*se
	c = clamp01(c)
	lo = clamp01(lo)
	hi = clamp01(hi)
	return c, lo, hi
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Stratum is one stratum of a stratified binomial estimate (the
// equivalence-pruned campaigns of package equiv): a subpopulation of
// known weight sampled with its own pilot runs.
type Stratum struct {
	// Weight is the stratum's share of the population (weights should
	// sum to 1).
	Weight float64
	// Hits and Total are the stratum's pilot outcomes.
	Hits  int
	Total int
	// Exact marks strata whose rate Hits/Total is known a priori
	// rather than estimated (provably-benign dead sites): they
	// contribute zero sampling variance.
	Exact bool
}

// StratifiedP is the stratified point estimate Σ wₕ·pₕ. It is unbiased
// for the population rate whenever each stratum's pilots are drawn
// uniformly from the stratum — within-stratum homogeneity affects only
// the variance.
func StratifiedP(strata []Stratum) float64 {
	p := 0.0
	for _, s := range strata {
		if s.Total > 0 {
			p += s.Weight * float64(s.Hits) / float64(s.Total)
		}
	}
	return p
}

// StratifiedCI returns the stratified estimate with a confidence
// interval at quantile z (use Z95). Per-stratum variance uses the
// Laplace-smoothed rate (h+1)/(n+2), which keeps one-pilot strata from
// claiming certainty; the interval is the normal approximation on the
// summed variance, clamped to [0, 1].
func StratifiedCI(strata []Stratum, z float64) (p, lo, hi float64) {
	p = StratifiedP(strata)
	v := 0.0
	for _, s := range strata {
		if s.Exact || s.Total == 0 {
			continue
		}
		n := float64(s.Total)
		ph := (float64(s.Hits) + 1) / (n + 2)
		v += s.Weight * s.Weight * ph * (1 - ph) / n
	}
	se := math.Sqrt(v)
	return p, clamp01(p - z*se), clamp01(p + z*se)
}

// MergeStrata merges per-partition tallies of the same stratification:
// each part holds one []Stratum with identical length, Weight, and Exact
// flags (the strata themselves — the partition of fault *sites* — are a
// property of the target, not of which worker sampled them), and only
// the integer Hits/Total tallies differ. The merge sums tallies
// elementwise, so StratifiedP and StratifiedCI over the merged strata
// are exactly independent of how the pilot runs were partitioned:
// integer addition is associative and commutative, and the float
// arithmetic downstream sees identical inputs. Parts may be nil (a
// worker that drew no pilots). Returns nil when no part carries strata;
// panics if parts disagree on the stratification itself, since that is
// a programming error rather than a data condition.
func MergeStrata(parts ...[]Stratum) []Stratum {
	var merged []Stratum
	for _, part := range parts {
		if part == nil {
			continue
		}
		if merged == nil {
			merged = make([]Stratum, len(part))
			copy(merged, part)
			continue
		}
		if len(part) != len(merged) {
			panic("stats: MergeStrata parts disagree on stratum count")
		}
		for i, s := range part {
			if s.Weight != merged[i].Weight || s.Exact != merged[i].Exact {
				panic("stats: MergeStrata parts disagree on stratification")
			}
			merged[i].Hits += s.Hits
			merged[i].Total += s.Total
		}
	}
	return merged
}

// SectionStrata is one program section's self-contained stratified
// estimate: the section's share of the whole-program fault population
// plus its within-section strata, whose weights sum to 1 over the
// section. Keeping the inner weights section-relative is what makes a
// stored section summary reusable across program edits — the section's
// own strata never mention the rest of the program, and only the outer
// Weight is recomputed when sections are composed.
type SectionStrata struct {
	// Weight is the section's share of the whole-program population.
	Weight float64
	// Strata are the within-section strata (weights sum to 1).
	Strata []Stratum
}

// FlattenSections rescales per-section strata into one whole-program
// stratification: each inner stratum's global weight is the product of
// its section weight and its within-section weight. The flattening is
// exact — products of floats are associative-free of the grouping (each
// global weight is computed by the same single multiplication whatever
// order sections arrive in) — so composition is associative and
// independent of how the program was partitioned into section groups:
// flattening a grouped hierarchy level by level multiplies the same
// factors and sums the same variance terms.
func FlattenSections(secs []SectionStrata) []Stratum {
	var out []Stratum
	for _, sec := range secs {
		for _, s := range sec.Strata {
			s.Weight *= sec.Weight
			out = append(out, s)
		}
	}
	return out
}

// ComposeSections composes per-section stratified estimates into the
// whole-program rate with a stratified confidence interval at quantile
// z: the point estimate is Σ_S w_S Σ_h w_h·p_h and the variance sums
// (w_S·w_h)² per non-exact stratum — the same Wilson-compatible normal
// machinery StratifiedCI applies to a single-level stratification, so a
// composed sectioned campaign and a flat pruned campaign report
// intervals on the same scale.
func ComposeSections(secs []SectionStrata, z float64) (p, lo, hi float64) {
	return StratifiedCI(FlattenSections(secs), z)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}
