package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportionBasics(t *testing.T) {
	p := Proportion{Hits: 30, Total: 100}
	if p.P() != 0.3 {
		t.Fatalf("P = %v", p.P())
	}
	if se := p.StdErr(); math.Abs(se-math.Sqrt(0.3*0.7/100)) > 1e-12 {
		t.Fatalf("StdErr = %v", se)
	}
	if (Proportion{}).P() != 0 || (Proportion{}).StdErr() != 0 {
		t.Fatal("empty proportion mishandled")
	}
}

func TestWilsonProperties(t *testing.T) {
	check := func(hits, total uint16) bool {
		tot := int(total%2000) + 1
		h := int(hits) % (tot + 1)
		p := Proportion{Hits: h, Total: tot}
		lo, hi := p.Wilson(Z95)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		// The point estimate lies inside the interval.
		ph := p.P()
		return lo <= ph+1e-12 && ph-1e-12 <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonKnownValue(t *testing.T) {
	// 50/100 at 95%: the classic interval ≈ (0.4038, 0.5962).
	lo, hi := (Proportion{Hits: 50, Total: 100}).Wilson(Z95)
	if math.Abs(lo-0.4038) > 0.001 || math.Abs(hi-0.5962) > 0.001 {
		t.Fatalf("Wilson(50/100) = (%v, %v)", lo, hi)
	}
	// Zero hits still gives a nonzero upper bound (rule-of-three-ish).
	lo, hi = (Proportion{Hits: 0, Total: 100}).Wilson(Z95)
	if lo > 1e-9 || hi < 0.01 || hi > 0.06 {
		t.Fatalf("Wilson(0/100) = (%v, %v)", lo, hi)
	}
}

func TestWilsonNarrowsWithN(t *testing.T) {
	lo1, hi1 := (Proportion{Hits: 30, Total: 100}).Wilson(Z95)
	lo2, hi2 := (Proportion{Hits: 300, Total: 1000}).Wilson(Z95)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not narrow with more samples")
	}
}

func TestCoverageInterval(t *testing.T) {
	raw := Proportion{Hits: 200, Total: 1000} // praw = 0.2
	prot := Proportion{Hits: 20, Total: 1000} // pprot = 0.02
	c, lo, hi := CoverageInterval(raw, prot, Z95)
	if math.Abs(c-0.9) > 1e-12 {
		t.Fatalf("coverage = %v, want 0.9", c)
	}
	if lo >= c || hi <= c || lo < 0 || hi > 1 {
		t.Fatalf("interval (%v, %v) malformed around %v", lo, hi, c)
	}
	// Zero baseline: defined as full coverage with maximal uncertainty.
	c, lo, hi = CoverageInterval(Proportion{0, 1000}, prot, Z95)
	if c != 1 || lo != 0 || hi != 1 {
		t.Fatalf("degenerate baseline: %v (%v, %v)", c, lo, hi)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.001 {
		t.Fatalf("stddev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}
