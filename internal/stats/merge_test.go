package stats

import (
	"math/rand"
	"testing"
)

// TestMergeStrataAssociativity is the property test behind sharded
// pruned campaigns: however the pilot tallies of a stratification are
// partitioned across workers — and in whatever order and grouping the
// partitions are merged back — StratifiedP and StratifiedCI must come
// out bit-identical to the unpartitioned computation.
func TestMergeStrataAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		nStrata := 1 + rng.Intn(12)
		full := make([]Stratum, nStrata)
		wsum := 0.0
		for i := range full {
			full[i] = Stratum{
				Weight: rng.Float64(),
				Hits:   rng.Intn(50),
				Exact:  rng.Intn(4) == 0,
			}
			full[i].Total = full[i].Hits + rng.Intn(200)
			wsum += full[i].Weight
		}
		for i := range full {
			full[i].Weight /= wsum
		}

		// Split every stratum's tallies across k random partitions.
		k := 1 + rng.Intn(6)
		parts := make([][]Stratum, k)
		for p := range parts {
			parts[p] = make([]Stratum, nStrata)
			for i := range full {
				parts[p][i] = Stratum{Weight: full[i].Weight, Exact: full[i].Exact}
			}
		}
		for i, s := range full {
			for h := 0; h < s.Hits; h++ {
				p := rng.Intn(k)
				parts[p][i].Hits++
				parts[p][i].Total++
			}
			for n := 0; n < s.Total-s.Hits; n++ {
				parts[rng.Intn(k)][i].Total++
			}
		}

		wantP := StratifiedP(full)
		_, wantLo, wantHi := StratifiedCI(full, Z95)

		check := func(name string, merged []Stratum) {
			t.Helper()
			if len(merged) != nStrata {
				t.Fatalf("trial %d %s: %d strata, want %d", trial, name, len(merged), nStrata)
			}
			for i := range merged {
				if merged[i] != full[i] {
					t.Fatalf("trial %d %s: stratum %d = %+v, want %+v", trial, name, i, merged[i], full[i])
				}
			}
			if p := StratifiedP(merged); p != wantP {
				t.Fatalf("trial %d %s: StratifiedP = %v, want %v", trial, name, p, wantP)
			}
			if _, lo, hi := StratifiedCI(merged, Z95); lo != wantLo || hi != wantHi {
				t.Fatalf("trial %d %s: CI [%v,%v], want [%v,%v]", trial, name, lo, hi, wantLo, wantHi)
			}
		}

		// Flat merge in shuffled order.
		shuffled := make([][]Stratum, k)
		copy(shuffled, parts)
		rng.Shuffle(k, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		check("flat", MergeStrata(shuffled...))

		// Left fold: ((p0 ⊕ p1) ⊕ p2) ⊕ ...
		acc := MergeStrata(parts[0])
		for _, p := range parts[1:] {
			acc = MergeStrata(acc, p)
		}
		check("left-fold", acc)

		// Random binary tree of merges.
		pool := make([][]Stratum, k)
		copy(pool, parts)
		for len(pool) > 1 {
			i := rng.Intn(len(pool) - 1)
			pool[i] = MergeStrata(pool[i], pool[i+1])
			pool = append(pool[:i+1], pool[i+2:]...)
		}
		check("tree", pool[0])

		// Nil parts are identity elements.
		check("with-nils", MergeStrata(append([][]Stratum{nil}, append(parts, nil)...)...))
	}
}

func TestMergeStrataEdgeCases(t *testing.T) {
	if MergeStrata() != nil {
		t.Fatal("empty merge should be nil")
	}
	if MergeStrata(nil, nil) != nil {
		t.Fatal("all-nil merge should be nil")
	}
	one := []Stratum{{Weight: 1, Hits: 2, Total: 5}}
	got := MergeStrata(one)
	if len(got) != 1 || got[0] != one[0] {
		t.Fatalf("singleton merge = %v", got)
	}
	got[0].Hits = 99
	if one[0].Hits != 2 {
		t.Fatal("merge aliases its input slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stratification did not panic")
		}
	}()
	MergeStrata(one, []Stratum{{Weight: 0.5}})
}
