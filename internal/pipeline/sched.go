package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n) using at most width
// concurrent goroutines (width <= 0 means GOMAXPROCS). Indices are
// claimed in order, each fn writes results into caller-owned slots
// addressed by its index, and the returned error is the lowest-index
// failure — so the observable outcome is independent of scheduling.
// Every index runs even when an earlier one fails; artifact computations
// are memoized, so completed work is never wasted.
func ForEach(width, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if width > n {
		width = n
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
