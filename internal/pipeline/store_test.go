package pipeline

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"flowery/internal/campaign"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// storeCfg pins CampaignWorkers to 1 so the scheduling-dependent perf
// fields (SimulatedInstrs/SavedInstrs) are reproducible across the two
// pipelines being compared.
var storeCfg = Config{Runs: 60, ProfileSamples: 100, Seed: 11, CampaignWorkers: 1}

func runThrough(t *testing.T, st store.Store) campaign.Stats {
	t.Helper()
	cfg := storeCfg
	cfg.Artifacts = st
	p := New(cfg)
	stats, err := p.Campaign(testSource(t), FullIDVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestStoreMemoryDiskBitIdentity is the cache-key compatibility gate:
// the same campaign driven through a memory-backed and a disk-backed
// artifact store must deposit bit-identical blobs under identical keys,
// so either tier can serve the other's artifacts.
func TestStoreMemoryDiskBitIdentity(t *testing.T) {
	mem := store.NewMemory(nil)
	disk, err := store.OpenDisk(t.TempDir(), store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	memStats := runThrough(t, mem)
	diskStats := runThrough(t, disk)
	memStats.Elapsed, diskStats.Elapsed = 0, 0 // wall clock, excluded from blobs
	if memStats != diskStats {
		t.Fatalf("stats diverge:\nmemory %+v\ndisk   %+v", memStats, diskStats)
	}

	mk, dk := mem.Keys(), disk.Keys()
	sort.Strings(mk)
	sort.Strings(dk)
	if len(mk) == 0 {
		t.Fatal("no artifacts stored")
	}
	if strings.Join(mk, "\n") != strings.Join(dk, "\n") {
		t.Fatalf("key sets diverge:\nmemory %v\ndisk   %v", mk, dk)
	}
	for _, k := range mk {
		mb, ok1, err1 := mem.Get(k)
		db, ok2, err2 := disk.Get(k)
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			t.Fatalf("recall %q: mem ok=%v err=%v, disk ok=%v err=%v", k, ok1, err1, ok2, err2)
		}
		if !bytes.Equal(mb, db) {
			t.Fatalf("blob for %q diverges:\nmemory %s\ndisk   %s", k, mb, db)
		}
	}
}

// TestStoreRecallAcrossPipelines models the daemon's repeated-spec path:
// a second pipeline (a new process, in daemon terms) sharing the store
// serves the campaign from storage without executing anything.
func TestStoreRecallAcrossPipelines(t *testing.T) {
	shared := store.NewMemory(nil)

	cfg := storeCfg
	cfg.Artifacts = shared
	first := New(cfg)
	want, err := first.Campaign(testSource(t), FullIDVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	cfg2 := storeCfg
	cfg2.Artifacts = shared
	cfg2.Telemetry = reg
	second := New(cfg2)
	got, err := second.Campaign(testSource(t), FullIDVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}

	// Recalled stats match except Elapsed, which the store zeroes (the
	// one wall-clock field) and a fresh run would repopulate.
	want.Elapsed = 0
	if got != want {
		t.Fatalf("recalled stats diverge:\nfirst  %+v\nsecond %+v", want, got)
	}
	if hits := reg.Counter("pipeline_store_hits_total").Value(); hits != 1 {
		t.Fatalf("pipeline_store_hits_total = %d, want 1", hits)
	}
	// The recall short-circuits the derivation chain: no engine ever ran.
	if runs := reg.Counter("engine_runs_total").Value(); runs != 0 {
		t.Fatalf("engine_runs_total = %d after a store recall, want 0", runs)
	}
}

// TestStoreRecordsRequestBypassesRecall pins the Records contract: a
// request that needs per-run records cannot be served from storage (a
// recalled artifact replays none), but its computation is stored for
// later record-free requests.
func TestStoreRecordsRequestBypassesRecall(t *testing.T) {
	shared := store.NewMemory(nil)
	cfg := storeCfg
	cfg.Artifacts = shared
	p := New(cfg)

	// Seed the store.
	if _, err := p.Campaign(testSource(t), FullIDVariant(), CampaignOpts{Layer: LayerAsm}); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	cfg2 := storeCfg
	cfg2.Artifacts = shared
	cfg2.Telemetry = reg
	p2 := New(cfg2)
	var records []campaign.Record
	st, err := p2.Campaign(testSource(t), FullIDVariant(), CampaignOpts{
		Layer:   LayerAsm,
		Records: func(r campaign.Record) { records = append(records, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != st.Runs {
		t.Fatalf("got %d records for %d runs — the store recall swallowed them", len(records), st.Runs)
	}
	if hits := reg.Counter("pipeline_store_hits_total").Value(); hits != 0 {
		t.Fatalf("records request recalled from store (%d hits)", hits)
	}
}
