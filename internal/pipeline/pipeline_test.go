package pipeline

import (
	"testing"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// testCfg keeps the integration tests fast.
var testCfg = Config{Runs: 80, ProfileSamples: 120, Seed: 7}

func testSource(t *testing.T) Source {
	t.Helper()
	bm, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 benchmark missing")
	}
	return BenchSource(bm)
}

func stageTel(t *testing.T, p *Pipeline, stage string) StageTelemetry {
	t.Helper()
	for _, s := range p.Telemetry().Stages {
		if s.Stage == stage {
			return s
		}
	}
	return StageTelemetry{Stage: stage}
}

// TestArtifactReuse exercises the reuse edges of the graph: one build
// and one profile feed every level; the ID module at a level feeds both
// the ID campaigns and the Flowery derivation.
func TestArtifactReuse(t *testing.T) {
	p := New(testCfg)
	src := testSource(t)

	levels := []dup.Level{dup.Level50, dup.Level100}
	for _, l := range levels {
		if _, err := p.Module(src, IDVariant(l)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Module(src, FloweryVariant(l, flowery.All())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Module(src, RawVariant()); err != nil {
		t.Fatal(err)
	}

	if st := stageTel(t, p, StageBuild); st.Misses != 1 {
		t.Fatalf("build misses = %d, want 1 (one shared raw module)", st.Misses)
	}
	if st := stageTel(t, p, StageProfile); st.Misses != 1 {
		t.Fatalf("profile misses = %d, want 1 (one profile for all levels)", st.Misses)
	}
	if st := stageTel(t, p, StageDup); st.Misses != int64(len(levels)) {
		t.Fatalf("dup misses = %d, want %d (one per level, shared by ID and Flowery)",
			st.Misses, len(levels))
	}
	if st := stageTel(t, p, StageFlowery); st.Misses != int64(len(levels)) {
		t.Fatalf("flowery misses = %d, want %d", st.Misses, len(levels))
	}

	// A second pass over the same requests adds hits, never misses.
	before := p.Telemetry().CacheMisses()
	for _, l := range levels {
		if _, err := p.Module(src, IDVariant(l)); err != nil {
			t.Fatal(err)
		}
	}
	if after := p.Telemetry().CacheMisses(); after != before {
		t.Fatalf("repeat requests caused %d new misses", after-before)
	}
}

// TestCampaignMatchesLegacyChain checks a pipeline campaign is
// bit-identical to the hand-rolled build→profile→select→dup→flowery→
// lower→campaign chain the experiment package used before the pipeline.
func TestCampaignMatchesLegacyChain(t *testing.T) {
	bm, _ := bench.ByName("crc32")
	level := dup.Level70

	// Legacy chain, exactly as experiment.RunBenchmark does it.
	profile, err := dup.BuildProfile(bm.Build(), dup.ProfileOptions{
		Samples: testCfg.ProfileSamples,
		Seed:    testCfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := bm.Build()
	if err := dup.Apply(m, dup.Select(profile, level)); err != nil {
		t.Fatal(err)
	}
	if _, err := flowery.Apply(m, flowery.All()); err != nil {
		t.Fatal(err)
	}
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := campaign.Spec{Runs: testCfg.Runs, Seed: testCfg.Seed}
	wantIR, err := campaign.Run(func() (sim.Engine, error) { return interp.New(m), nil }, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantAsm, err := campaign.Run(func() (sim.Engine, error) { return machine.New(m, prog) }, spec)
	if err != nil {
		t.Fatal(err)
	}

	p := New(testCfg)
	src := BenchSource(bm)
	v := FloweryVariant(level, flowery.All())
	gotIR, err := p.Campaign(src, v, CampaignOpts{Layer: LayerIR})
	if err != nil {
		t.Fatal(err)
	}
	gotAsm, err := p.Campaign(src, v, CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}

	assertStatsEqual(t, "ir", wantIR, gotIR)
	assertStatsEqual(t, "asm", wantAsm, gotAsm)
}

// assertStatsEqual compares the outcome-relevant fields (Elapsed and the
// snapshot-dependent instruction counters vary run to run).
func assertStatsEqual(t *testing.T, layer string, want, got campaign.Stats) {
	t.Helper()
	if got.Runs != want.Runs {
		t.Fatalf("%s: runs %d != %d", layer, got.Runs, want.Runs)
	}
	if got.Counts != want.Counts {
		t.Fatalf("%s: counts %v != %v", layer, got.Counts, want.Counts)
	}
	if got.SDCByOrigin != want.SDCByOrigin {
		t.Fatalf("%s: SDC origins %v != %v", layer, got.SDCByOrigin, want.SDCByOrigin)
	}
	if got.GoldenDyn != want.GoldenDyn || got.GoldenInjectable != want.GoldenInjectable {
		t.Fatalf("%s: golden %d/%d != %d/%d", layer,
			got.GoldenDyn, got.GoldenInjectable, want.GoldenDyn, want.GoldenInjectable)
	}
}

// TestCampaignKeyDistinguishesKnobs checks that outcome-relevant knobs
// produce distinct campaign artifacts while scheduling knobs do not
// enter the key at all.
func TestCampaignKeyDistinguishesKnobs(t *testing.T) {
	p := New(testCfg)
	src := testSource(t)
	v := RawVariant()

	if _, err := p.Campaign(src, v, CampaignOpts{Layer: LayerAsm}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Campaign(src, v, CampaignOpts{Layer: LayerAsm, Runs: testCfg.Runs}); err != nil {
		t.Fatal(err)
	}
	if st := stageTel(t, p, StageCampaign); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("same knobs: misses/hits = %d/%d, want 1/1", st.Misses, st.Hits)
	}

	// Different layer, run count, and backend each add a key.
	if _, err := p.Campaign(src, v, CampaignOpts{Layer: LayerIR}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Campaign(src, v, CampaignOpts{Layer: LayerAsm, Runs: testCfg.Runs / 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Campaign(src, v, CampaignOpts{
		Layer: LayerAsm, Backend: backend.Config{GPRScratch: backend.MinGPRScratch},
	}); err != nil {
		t.Fatal(err)
	}
	if st := stageTel(t, p, StageCampaign); st.Keys != 4 || st.Misses != 4 {
		t.Fatalf("distinct knobs: keys/misses = %d/%d, want 4/4", st.Keys, st.Misses)
	}
}

// TestGolden checks the golden-run node and its reuse.
func TestGolden(t *testing.T) {
	p := New(testCfg)
	src := testSource(t)
	r1, err := p.Golden(src, RawVariant(), LayerAsm, backend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != sim.StatusOK || r1.DynInstrs == 0 {
		t.Fatalf("golden run: status %v, dyn %d", r1.Status, r1.DynInstrs)
	}
	r2, err := p.Golden(src, RawVariant(), LayerAsm, backend.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.DynInstrs != r1.DynInstrs {
		t.Fatalf("golden rerun differs: %d != %d", r2.DynInstrs, r1.DynInstrs)
	}
	if st := stageTel(t, p, StageGolden); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("golden misses/hits = %d/%d, want 1/1", st.Misses, st.Hits)
	}
}

// TestPrunedCampaignNode checks the pruned-campaign artifact: it lives
// under its own stage, is keyed apart from the full campaign and by
// pilot count, memoizes like any other node, and feeds the pilot-run
// telemetry counter.
func TestPrunedCampaignNode(t *testing.T) {
	p := New(testCfg)
	src := testSource(t)
	v := RawVariant()

	full, err := p.Campaign(src, v, CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := p.Campaign(src, v, CampaignOpts{
		Layer: LayerAsm, Pruning: campaign.PruneClasses, PilotsPerClass: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Pruned || !pruned.Pruned {
		t.Fatalf("pruned flags: full %v, pruned %v", full.Pruned, pruned.Pruned)
	}
	if pruned.Runs != full.Runs {
		t.Fatalf("pruned extrapolates to %d runs, want %d", pruned.Runs, full.Runs)
	}

	// Repeat is a hit on the prune stage; a different pilot count is a new
	// key; the full campaign stage is untouched by either.
	if _, err := p.Campaign(src, v, CampaignOpts{
		Layer: LayerAsm, Pruning: campaign.PruneClasses, PilotsPerClass: 3,
	}); err != nil {
		t.Fatal(err)
	}
	pruned2, err := p.Campaign(src, v, CampaignOpts{
		Layer: LayerAsm, Pruning: campaign.PruneClasses, PilotsPerClass: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := stageTel(t, p, StagePrune); st.Keys != 2 || st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("prune stage keys/misses/hits = %d/%d/%d, want 2/2/1",
			st.Keys, st.Misses, st.Hits)
	}
	if st := stageTel(t, p, StageCampaign); st.Keys != 1 || st.Misses != 1 {
		t.Fatalf("campaign stage keys/misses = %d/%d, want 1/1", st.Keys, st.Misses)
	}
	want := int64(pruned.PilotRuns + pruned2.PilotRuns) // cache hit adds nothing
	if tel := p.Telemetry(); tel.PilotRuns != want {
		t.Fatalf("pilot-run telemetry = %d, want %d", tel.PilotRuns, want)
	}
}

// TestDisabledPipelineRecomputes checks the memoization-off mode used as
// the pipebench baseline still produces identical campaign statistics.
func TestDisabledPipelineRecomputes(t *testing.T) {
	cfg := testCfg
	cfg.Disabled = true
	p := New(cfg)
	src := testSource(t)
	s1, err := p.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "asm", s1, s2)
	if st := stageTel(t, p, StageCampaign); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("disabled misses/hits = %d/%d, want 2/0", st.Misses, st.Hits)
	}
}
