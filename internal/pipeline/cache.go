package pipeline

import (
	"sync"
	"time"
)

// Stage names, one per artifact node kind. Telemetry is aggregated per
// stage and rendered in this order.
const (
	StageBuild    = "build"
	StageProfile  = "profile"
	StageSelect   = "select"
	StageDup      = "dup"
	StageFlowery  = "flowery"
	StageLower    = "lower"
	StageGolden   = "golden"
	StageCampaign = "campaign"
	StagePrune    = "prune"
)

var stageOrder = []string{
	StageBuild, StageProfile, StageSelect, StageDup,
	StageFlowery, StageLower, StageGolden, StageCampaign, StagePrune,
}

// StageTelemetry is one stage's cache counters. Keys counts distinct
// artifact keys requested; Misses counts computations actually executed —
// with memoization enabled the two are equal exactly when every artifact
// was computed once. Wall is the total time spent inside this stage's
// compute functions, inclusive of any upstream artifacts a miss pulled in.
type StageTelemetry struct {
	Stage  string
	Keys   int
	Hits   int64
	Misses int64
	Wall   time.Duration
}

type stageStats struct {
	hits   int64
	misses int64
	wall   time.Duration
	keys   map[string]struct{}
}

// cache memoizes artifact computations under content keys with
// singleflight semantics: concurrent requests for one key block on a
// single computation. Errors are cached too — computations are
// deterministic, so retrying cannot help. With disabled set, every
// request recomputes (the memoization-off mode pipebench measures), but
// telemetry is still collected.
type cache struct {
	disabled bool

	mu      sync.Mutex
	entries map[string]*cacheEntry
	stages  map[string]*stageStats
}

type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

func newCache(disabled bool) *cache {
	return &cache{
		disabled: disabled,
		entries:  make(map[string]*cacheEntry),
		stages:   make(map[string]*stageStats),
	}
}

func (c *cache) stage(name string) *stageStats {
	st := c.stages[name]
	if st == nil {
		st = &stageStats{keys: make(map[string]struct{})}
		c.stages[name] = st
	}
	return st
}

// do returns the value for key, computing it at most once (unless the
// cache is disabled). The first requester runs compute; later requesters
// count a hit and wait for the result.
func (c *cache) do(stage, key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	st := c.stage(stage)
	st.keys[key] = struct{}{}
	if !c.disabled {
		if e, ok := c.entries[key]; ok {
			st.hits++
			c.mu.Unlock()
			<-e.done
			return e.val, e.err
		}
	}
	st.misses++
	var e *cacheEntry
	if !c.disabled {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
	}
	c.mu.Unlock()

	start := time.Now()
	val, err := compute()
	elapsed := time.Since(start)

	c.mu.Lock()
	st.wall += elapsed
	c.mu.Unlock()

	if e != nil {
		e.val, e.err = val, err
		close(e.done)
	}
	return val, err
}

func (c *cache) telemetry() []StageTelemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []StageTelemetry
	for _, s := range stageOrder {
		st, ok := c.stages[s]
		if !ok {
			continue
		}
		out = append(out, StageTelemetry{
			Stage:  s,
			Keys:   len(st.keys),
			Hits:   st.hits,
			Misses: st.misses,
			Wall:   st.wall,
		})
	}
	return out
}
