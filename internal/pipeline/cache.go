package pipeline

import (
	"sync"
	"time"

	"flowery/internal/telemetry"
)

// Stage names, one per artifact node kind. Telemetry is aggregated per
// stage and rendered in this order.
const (
	StageBuild    = "build"
	StageProfile  = "profile"
	StageSelect   = "select"
	StageDup      = "dup"
	StageFlowery  = "flowery"
	StageLower    = "lower"
	StageGolden   = "golden"
	StageMask     = "mask"
	StageCampaign = "campaign"
	StagePrune    = "prune"
	// StageSectionTable memoizes section tables (internal/section);
	// StageSection memoizes composed sectioned campaigns. Per-section
	// summaries themselves live in the persistent store under
	// program-independent keys, not in this cache — recalling them
	// across processes is the point of sectioned campaigns.
	StageSectionTable = "sections"
	StageSection      = "section"
)

var stageOrder = []string{
	StageBuild, StageProfile, StageSelect, StageDup,
	StageFlowery, StageLower, StageGolden, StageMask, StageCampaign, StagePrune,
	StageSectionTable, StageSection,
}

// StageTelemetry is one stage's cache counters. Keys counts distinct
// artifact keys requested; Misses counts computations actually executed —
// with memoization enabled the two are equal exactly when every artifact
// was computed once. Wall is the total time spent inside this stage's
// compute functions, inclusive of any upstream artifacts a miss pulled in.
type StageTelemetry struct {
	Stage  string
	Keys   int
	Hits   int64
	Misses int64
	Wall   time.Duration
}

// stageStats holds one stage's registry handles (resolved once, on the
// stage's first request) plus the distinct-key set. The counters and
// histogram live in the pipeline's registry, so a study-wide telemetry
// report shows the same numbers Telemetry() does.
type stageStats struct {
	keys   map[string]struct{}
	hits   *telemetry.Counter
	misses *telemetry.Counter
	wall   *telemetry.Histogram
}

// cache memoizes artifact computations under content keys with
// singleflight semantics: concurrent requests for one key block on a
// single computation. Errors are cached too — computations are
// deterministic, so retrying cannot help. With disabled set, every
// request recomputes (the memoization-off mode pipebench measures), but
// telemetry is still collected.
type cache struct {
	disabled bool
	reg      *telemetry.Registry // stage counters; never nil
	spanReg  *telemetry.Registry // stage spans; nil records none
	parent   *telemetry.Span

	mu      sync.Mutex
	entries map[string]*cacheEntry
	stages  map[string]*stageStats
}

type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

// newCache wires the cache's telemetry sinks: reg (required) receives
// the per-stage counters; spanReg (optional) additionally receives one
// trace span per cache miss, parented under parent.
func newCache(disabled bool, reg, spanReg *telemetry.Registry, parent *telemetry.Span) *cache {
	return &cache{
		disabled: disabled,
		reg:      reg,
		spanReg:  spanReg,
		parent:   parent,
		entries:  make(map[string]*cacheEntry),
		stages:   make(map[string]*stageStats),
	}
}

func (c *cache) stage(name string) *stageStats {
	st := c.stages[name]
	if st == nil {
		st = &stageStats{
			keys:   make(map[string]struct{}),
			hits:   c.reg.Counter(`pipeline_stage_hits_total{stage="` + name + `"}`),
			misses: c.reg.Counter(`pipeline_stage_misses_total{stage="` + name + `"}`),
			wall:   c.reg.Histogram(`pipeline_stage_seconds{stage="` + name + `"}`),
		}
		c.stages[name] = st
	}
	return st
}

// do returns the value for key, computing it at most once (unless the
// cache is disabled). The first requester runs compute; later requesters
// count a hit and wait for the result. compute receives the miss's stage
// span (nil when span recording is off) so nodes can hang their own
// sub-telemetry — notably campaign batches — under the right parent.
func (c *cache) do(stage, key string, compute func(sp *telemetry.Span) (any, error)) (any, error) {
	c.mu.Lock()
	st := c.stage(stage)
	st.keys[key] = struct{}{}
	if !c.disabled {
		if e, ok := c.entries[key]; ok {
			st.hits.Inc()
			c.mu.Unlock()
			<-e.done
			return e.val, e.err
		}
	}
	st.misses.Inc()
	var e *cacheEntry
	if !c.disabled {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
	}
	c.mu.Unlock()

	sp := c.spanReg.StartSpan(c.parent, "pipeline."+stage)
	sp.SetAttr("key", key)
	start := time.Now()
	val, err := compute(sp)
	st.wall.Observe(time.Since(start))
	sp.End()

	if e != nil {
		e.val, e.err = val, err
		close(e.done)
	}
	return val, err
}

func (c *cache) telemetry() []StageTelemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []StageTelemetry
	for _, s := range stageOrder {
		st, ok := c.stages[s]
		if !ok {
			continue
		}
		out = append(out, StageTelemetry{
			Stage:  s,
			Keys:   len(st.keys),
			Hits:   st.hits.Value(),
			Misses: st.misses.Value(),
			Wall:   st.wall.Sum(),
		})
	}
	return out
}
