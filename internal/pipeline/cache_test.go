package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"flowery/internal/telemetry"
)

// TestCacheSingleflight checks that concurrent requests for one key run
// the computation exactly once and all observe its result.
func TestCacheSingleflight(t *testing.T) {
	c := newCache(false, telemetry.New(), nil, nil)
	var computed atomic.Int64
	gate := make(chan struct{})

	const requesters = 16
	results := make([]any, requesters)
	var wg sync.WaitGroup
	for i := 0; i < requesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.do(StageBuild, "k", func(_ *telemetry.Span) (any, error) {
				computed.Add(1)
				<-gate // hold the computation open so others pile up
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := computed.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("requester %d got %v, want 42", i, v)
		}
	}
	tel := c.telemetry()
	if len(tel) != 1 {
		t.Fatalf("telemetry stages = %d, want 1", len(tel))
	}
	st := tel[0]
	if st.Keys != 1 || st.Misses != 1 || st.Hits != requesters-1 {
		t.Fatalf("keys/misses/hits = %d/%d/%d, want 1/1/%d", st.Keys, st.Misses, st.Hits, requesters-1)
	}
}

// TestCacheDistinctKeys checks that distinct keys compute independently.
func TestCacheDistinctKeys(t *testing.T) {
	c := newCache(false, telemetry.New(), nil, nil)
	for _, k := range []string{"a", "b", "a", "b", "c"} {
		k := k
		v, err := c.do(StageCampaign, k, func(_ *telemetry.Span) (any, error) { return "v:" + k, nil })
		if err != nil {
			t.Fatal(err)
		}
		if v != "v:"+k {
			t.Fatalf("got %v for %q", v, k)
		}
	}
	st := c.telemetry()[0]
	if st.Keys != 3 || st.Misses != 3 || st.Hits != 2 {
		t.Fatalf("keys/misses/hits = %d/%d/%d, want 3/3/2", st.Keys, st.Misses, st.Hits)
	}
}

// TestCacheDisabled checks that a disabled cache recomputes every
// request while still counting telemetry.
func TestCacheDisabled(t *testing.T) {
	c := newCache(true, telemetry.New(), nil, nil)
	var computed atomic.Int64
	for i := 0; i < 5; i++ {
		if _, err := c.do(StageBuild, "k", func(_ *telemetry.Span) (any, error) {
			computed.Add(1)
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := computed.Load(); got != 5 {
		t.Fatalf("computed %d times with cache disabled, want 5", got)
	}
	st := c.telemetry()[0]
	if st.Keys != 1 || st.Misses != 5 || st.Hits != 0 {
		t.Fatalf("keys/misses/hits = %d/%d/%d, want 1/5/0", st.Keys, st.Misses, st.Hits)
	}
}

// TestCacheErrorCached checks that a failed computation is cached like a
// value: deterministic computations cannot succeed on retry.
func TestCacheErrorCached(t *testing.T) {
	c := newCache(false, telemetry.New(), nil, nil)
	boom := errors.New("boom")
	var computed atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := c.do(StageLower, "bad", func(_ *telemetry.Span) (any, error) {
			computed.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if got := computed.Load(); got != 1 {
		t.Fatalf("failed computation ran %d times, want 1", got)
	}
}

// TestTelemetryStageOrder checks stages render in pipeline order, not
// insertion order.
func TestTelemetryStageOrder(t *testing.T) {
	c := newCache(false, telemetry.New(), nil, nil)
	for _, s := range []string{StageCampaign, StageBuild, StageLower} {
		if _, err := c.do(s, "k", func(_ *telemetry.Span) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, st := range c.telemetry() {
		got = append(got, st.Stage)
	}
	want := []string{StageBuild, StageLower, StageCampaign}
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
}
