package pipeline

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachRunsEveryIndex checks every index runs exactly once.
func TestForEachRunsEveryIndex(t *testing.T) {
	const n = 100
	var counts [n]int32
	if err := ForEach(7, n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestForEachWidthBound checks concurrency never exceeds width.
func TestForEachWidthBound(t *testing.T) {
	const width = 3
	var inFlight, peak atomic.Int32
	err := ForEach(width, 50, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > width {
		t.Fatalf("observed %d concurrent calls, width %d", p, width)
	}
}

// TestForEachLowestIndexError checks the error choice is deterministic
// (lowest failing index) and that later indices still run.
func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("err-3")
	errB := errors.New("err-7")
	var ran atomic.Int32
	err := ForEach(4, 10, func(i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("%d indices ran after failure, want all 10", got)
	}
}

// TestForEachEmpty checks the degenerate sizes.
func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	if err := ForEach(0, 5, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("width 0 (GOMAXPROCS) ran %d of 5", ran.Load())
	}
}
