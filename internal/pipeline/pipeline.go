// Package pipeline is the memoized artifact graph behind the experiment
// stack. Every derived object of the study — built module, SDC profile,
// knapsack selection, duplicated module, Flowery module, lowered program,
// golden run, campaign statistics — is a node keyed by exactly the inputs
// that determine its content (benchmark, protection variant, profile
// seed/samples, backend config, campaign size/seed), so any number of
// experiments can request overlapping artifacts and each is computed at
// most once per process. A bounded-parallel scheduler (ForEach) fans
// independent requests out; the cache's singleflight semantics resolve
// shared dependencies without duplicated work.
//
// Reuse guarantees and the determinism argument are documented in
// DESIGN.md §9. The short form:
//
//   - Module-producing nodes (build, dup, flowery) finish by assigning
//     global addresses; after that the module is shared read-only.
//     Derivations that must mutate (dup.Apply, flowery.Apply,
//     backend.Lower) always operate on a private clone made inside the
//     node's own computation.
//   - Campaign keys omit the worker count and snapshot policy knobs that
//     only affect scheduling: campaign outcome statistics are a pure
//     function of (engine, runs, seed) — package campaign's contract —
//     so a cached result is bit-identical to any recomputation.
package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/bitmask"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/section"
	"flowery/internal/shard"
	"flowery/internal/sim"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// Config fixes the knobs that enter artifact keys (scale and seed) plus
// the scheduling knobs that do not (workers, parallel width).
type Config struct {
	// Runs is the default campaign size (CampaignOpts.Runs overrides).
	Runs int
	// ProfileSamples is the SDC-profiling injection count.
	ProfileSamples int
	// Seed drives profiling and campaign fault derivation.
	Seed int64
	// MaxSteps bounds each simulated run (0 = engine default).
	MaxSteps int64
	// CampaignWorkers is the per-campaign parallelism handed to
	// campaign.Run (0 = GOMAXPROCS). Excluded from artifact keys:
	// campaign outcomes are scheduling-independent.
	CampaignWorkers int
	// Shards partitions every full (non-pruned) campaign into this many
	// contiguous run ranges executed via campaign.RunSharded (0 =
	// unsharded campaign.Run). The shard count enters campaign keys
	// (`|shards=N`) so sharded and unsharded requests never coalesce
	// while the bit-identity gate compares them; pruned campaigns ignore
	// it (they stratify instead of sharding).
	Shards int
	// ShardProcs farms the shards out to this many worker processes
	// (internal/shard) instead of executing them in-process; values <= 1
	// keep execution in-process. Excluded from artifact keys: like
	// CampaignWorkers it only changes scheduling, never outcomes.
	ShardProcs int
	// ShardCommand overrides the worker argv (default: re-execute this
	// binary, relying on shard.MaybeServeWorker). Excluded from keys.
	ShardCommand []string
	// RemoteWorkers lists socket shard-worker addresses (host:port,
	// workers started with `flowery shard-worker -listen`) a sharded
	// campaign dials instead of spawning local worker processes
	// (shard.RemotePool). Requires Shards > 0. Excluded from artifact
	// keys: the transport moves execution, never outcomes — the merged
	// statistics are bit-identical to the local path by the dispatcher's
	// first-result-wins contract (DESIGN.md §17).
	RemoteWorkers []string
	// RemoteListen, when non-empty, has the coordinator listen on this
	// host:port for workers dialing in with `-connect`. Excluded from
	// keys.
	RemoteListen string
	// RemoteHub supplies workers pre-registered with a daemon's
	// -shard-listen hub (floweryd). Excluded from keys.
	RemoteHub *shard.Hub
	// RemoteHeartbeat, RemoteHeartbeatMiss, and RemoteRedials tune the
	// socket transport's liveness and reconnect policy (zero = the shard
	// package defaults). Excluded from keys.
	RemoteHeartbeat     time.Duration
	RemoteHeartbeatMiss int
	RemoteRedials       int
	// Parallel is the scheduler width users of ForEach should pass
	// (0 = GOMAXPROCS). Recorded here so studies and their sub-sweeps
	// agree on one budget.
	Parallel int
	// Disabled turns memoization off: every request recomputes its full
	// chain. Used to measure what the cache buys (cmd/experiments
	// -only pipebench) and to model the legacy per-artifact cost.
	Disabled bool
	// Reference pins every simulated run to the engines' reference
	// interpretation loop (campaign.Spec.Reference / sim.Options.
	// Reference). Outcomes are bit-identical either way; it enters
	// artifact keys anyway so equivalence gates comparing the two cores
	// never coalesce their campaigns.
	Reference bool
	// Artifacts, when non-nil, is the persistent artifact tier behind the
	// in-memory cache: campaign statistics (the expensive leaf artifacts)
	// are recalled from it before being computed and stored into it after
	// a computation, under exactly the in-memory cache's key strings.
	// Shared across pipelines — and, with store.Disk, across processes —
	// it is what lets cmd/floweryd serve a repeated spec without
	// re-running a single injection. Excluded from artifact keys: the
	// store never changes an artifact, only where it is recalled from
	// (gated by the memory-vs-disk bit-identity test in store_test.go).
	Artifacts store.Store
	// Telemetry, when non-nil, is the registry the pipeline reports into:
	// per-stage cache counters and wall histograms, per-miss stage spans,
	// and — forwarded through campaign.Spec and sim.Options — campaign
	// and engine metrics. When nil, the pipeline keeps its stage counters
	// in a private registry (so Telemetry() always works) but records no
	// spans and leaves campaigns and engines un-instrumented. Excluded
	// from artifact keys: observation never changes an artifact.
	Telemetry *telemetry.Registry
	// Span, when non-nil, parents every stage span (a study's root span).
	Span *telemetry.Span
}

// Pipeline owns the artifact cache. One Pipeline per study/process; all
// experiments share it so their artifact requests coalesce.
type Pipeline struct {
	cfg   Config
	reg   *telemetry.Registry // cfg.Telemetry, or private when nil
	cache *cache

	simulated *telemetry.Counter
	saved     *telemetry.Counter
	pilots    *telemetry.Counter

	storeHits   *telemetry.Counter
	storeMisses *telemetry.Counter
	storeErrors *telemetry.Counter
}

// New returns an empty pipeline.
func New(cfg Config) *Pipeline {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	return &Pipeline{
		cfg:         cfg,
		reg:         reg,
		cache:       newCache(cfg.Disabled, reg, cfg.Telemetry, cfg.Span),
		simulated:   reg.Counter("pipeline_instrs_simulated_total"),
		saved:       reg.Counter("pipeline_instrs_saved_total"),
		pilots:      reg.Counter("pipeline_pilot_runs_total"),
		storeHits:   reg.Counter("pipeline_store_hits_total"),
		storeMisses: reg.Counter("pipeline_store_misses_total"),
		storeErrors: reg.Counter("pipeline_store_errors_total"),
	}
}

// Registry returns the registry the pipeline reports into — the one
// from Config.Telemetry, or the private registry standing in for it.
func (p *Pipeline) Registry() *telemetry.Registry { return p.reg }

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Source names a module generator. Key must uniquely identify the
// generated content (two sources with equal keys are assumed to build
// identical modules); Build must return a fresh, independent module on
// every call.
type Source struct {
	Key   string
	Build func() *ir.Module
}

// BenchSource adapts a registered benchmark.
func BenchSource(bm bench.Benchmark) Source {
	return Source{Key: "bench:" + bm.Name, Build: bm.Build}
}

// VariantKind enumerates the protection configurations a module can be
// derived into.
type VariantKind uint8

const (
	// KindRaw is the unprotected program.
	KindRaw VariantKind = iota
	// KindID is profile-driven selective duplication at a level.
	KindID
	// KindFlowery is KindID plus a set of Flowery patches.
	KindFlowery
	// KindFullID duplicates every duplicable instruction (no profile).
	KindFullID
	// KindFullFlowery is KindFullID plus a set of Flowery patches.
	KindFullFlowery
)

// Variant is a protection configuration. Level is meaningful for
// KindID/KindFlowery; Opts for KindFlowery/KindFullFlowery.
type Variant struct {
	Kind  VariantKind
	Level dup.Level
	Opts  flowery.Options
}

// RawVariant is the unprotected program.
func RawVariant() Variant { return Variant{Kind: KindRaw} }

// IDVariant is selective instruction duplication at level l.
func IDVariant(l dup.Level) Variant { return Variant{Kind: KindID, Level: l} }

// FloweryVariant is IDVariant(l) plus the given Flowery patches.
func FloweryVariant(l dup.Level, o flowery.Options) Variant {
	return Variant{Kind: KindFlowery, Level: l, Opts: o}
}

// FullIDVariant duplicates every duplicable instruction.
func FullIDVariant() Variant { return Variant{Kind: KindFullID} }

// FullFloweryVariant is FullIDVariant plus the given Flowery patches.
func FullFloweryVariant(o flowery.Options) Variant {
	return Variant{Kind: KindFullFlowery, Opts: o}
}

// baseVariant returns the duplication-only variant a Flowery variant
// derives from.
func (v Variant) baseVariant() Variant {
	if v.Kind == KindFlowery {
		return IDVariant(v.Level)
	}
	return FullIDVariant()
}

func optsKey(o flowery.Options) string {
	var sb strings.Builder
	if o.EagerStore {
		sb.WriteByte('e')
	}
	if o.PostponedBranch {
		sb.WriteByte('b')
	}
	if o.AntiCmp {
		sb.WriteByte('c')
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}

// key renders the variant's content key. Profile-driven variants embed
// the profiling knobs because the knapsack selection (and therefore the
// module) depends on them.
func (v Variant) key(cfg Config) string {
	switch v.Kind {
	case KindRaw:
		return "raw"
	case KindID:
		return fmt.Sprintf("id@%g(seed=%d,samples=%d)", float64(v.Level), cfg.Seed, cfg.ProfileSamples)
	case KindFlowery:
		return fmt.Sprintf("fl@%g(seed=%d,samples=%d)+%s", float64(v.Level), cfg.Seed, cfg.ProfileSamples, optsKey(v.Opts))
	case KindFullID:
		return "full"
	case KindFullFlowery:
		return "fullfl+" + optsKey(v.Opts)
	default:
		return fmt.Sprintf("kind%d?", v.Kind)
	}
}

func (p *Pipeline) modKey(src Source, v Variant) string {
	return src.Key + "|" + v.key(p.cfg)
}

// Layer selects the execution layer of a golden run or campaign.
type Layer uint8

const (
	LayerIR Layer = iota
	LayerAsm
)

func (l Layer) String() string {
	if l == LayerIR {
		return "ir"
	}
	return "asm"
}

// Profile returns the per-instruction SDC profile of the unprotected
// program, computed once per (source, seed, samples).
func (p *Pipeline) Profile(src Source) (*dup.Profile, error) {
	key := fmt.Sprintf("profile|%s|seed=%d|samples=%d", src.Key, p.cfg.Seed, p.cfg.ProfileSamples)
	val, err := p.cache.do(StageProfile, key, func(_ *telemetry.Span) (any, error) {
		raw, err := p.Module(src, RawVariant())
		if err != nil {
			return nil, err
		}
		return dup.BuildProfile(raw, dup.ProfileOptions{
			Samples:  p.cfg.ProfileSamples,
			Seed:     p.cfg.Seed,
			MaxSteps: p.cfg.MaxSteps,
		})
	})
	if err != nil {
		return nil, err
	}
	return val.(*dup.Profile), nil
}

// Selection returns the knapsack selection for level l (indices into
// Module.EnumerateInstrs order, valid for any clone of the source).
func (p *Pipeline) Selection(src Source, l dup.Level) ([]int, error) {
	key := fmt.Sprintf("select|%s|level=%g|seed=%d|samples=%d", src.Key, float64(l), p.cfg.Seed, p.cfg.ProfileSamples)
	val, err := p.cache.do(StageSelect, key, func(_ *telemetry.Span) (any, error) {
		prof, err := p.Profile(src)
		if err != nil {
			return nil, err
		}
		return dup.Select(prof, l), nil
	})
	if err != nil {
		return nil, err
	}
	return val.([]int), nil
}

// floweryModule pairs a patched module with the transform's statistics.
type floweryModule struct {
	mod   *ir.Module
	stats flowery.Stats
}

// Module returns the pristine (pre-lowering) module for a variant. The
// returned module is shared: treat it as read-only. Passes that must
// mutate a module run inside the producing node on a private clone.
func (p *Pipeline) Module(src Source, v Variant) (*ir.Module, error) {
	switch v.Kind {
	case KindRaw:
		val, err := p.cache.do(StageBuild, "module|"+p.modKey(src, v), func(_ *telemetry.Span) (any, error) {
			m := src.Build()
			m.AssignAddresses()
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		return val.(*ir.Module), nil

	case KindID, KindFullID:
		val, err := p.cache.do(StageDup, "module|"+p.modKey(src, v), func(_ *telemetry.Span) (any, error) {
			raw, err := p.Module(src, RawVariant())
			if err != nil {
				return nil, err
			}
			m := ir.CloneModule(raw)
			if v.Kind == KindFullID {
				err = dup.ApplyFull(m)
			} else {
				var sel []int
				sel, err = p.Selection(src, v.Level)
				if err == nil {
					err = dup.Apply(m, sel)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("pipeline: dup %s: %w", p.modKey(src, v), err)
			}
			m.AssignAddresses()
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		return val.(*ir.Module), nil

	case KindFlowery, KindFullFlowery:
		fm, err := p.floweryNode(src, v)
		if err != nil {
			return nil, err
		}
		return fm.mod, nil

	default:
		return nil, fmt.Errorf("pipeline: unknown variant kind %d", v.Kind)
	}
}

func (p *Pipeline) floweryNode(src Source, v Variant) (*floweryModule, error) {
	val, err := p.cache.do(StageFlowery, "module|"+p.modKey(src, v), func(_ *telemetry.Span) (any, error) {
		base, err := p.Module(src, v.baseVariant())
		if err != nil {
			return nil, err
		}
		m := ir.CloneModule(base)
		st, err := flowery.Apply(m, v.Opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: flowery %s: %w", p.modKey(src, v), err)
		}
		m.AssignAddresses()
		return &floweryModule{mod: m, stats: st}, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*floweryModule), nil
}

// FloweryStats returns the transform statistics recorded when the
// variant's module was produced (v must be a Flowery variant).
func (p *Pipeline) FloweryStats(src Source, v Variant) (flowery.Stats, error) {
	if v.Kind != KindFlowery && v.Kind != KindFullFlowery {
		return flowery.Stats{}, fmt.Errorf("pipeline: %v is not a flowery variant", v.Kind)
	}
	fm, err := p.floweryNode(src, v)
	if err != nil {
		return flowery.Stats{}, err
	}
	return fm.stats, nil
}

// StaticInstrs returns the static instruction count of the variant's
// module (the size the Flowery transform scans, §7.3).
func (p *Pipeline) StaticInstrs(src Source, v Variant) (int, error) {
	m, err := p.Module(src, v)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n, nil
}

// Compiled pairs a lowered module with its program. Mod is the module
// instance Prog was lowered from (the backend may have appended a
// constant pool), with addresses assigned — the instance engines must be
// constructed against.
type Compiled struct {
	Mod  *ir.Module
	Prog *asm.Program
}

// Compiled lowers the variant's module under the given backend config,
// once per (module, config). The pristine module is cloned first, so one
// module artifact can be lowered under many configurations.
func (p *Pipeline) Compiled(src Source, v Variant, bcfg backend.Config) (*Compiled, error) {
	key := fmt.Sprintf("lower|%s|gpr=%d", p.modKey(src, v), bcfg.GPRScratch)
	val, err := p.cache.do(StageLower, key, func(_ *telemetry.Span) (any, error) {
		pm, err := p.Module(src, v)
		if err != nil {
			return nil, err
		}
		m := ir.CloneModule(pm)
		prog, err := backend.LowerCfg(m, bcfg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: lower %s: %w", key, err)
		}
		m.AssignAddresses()
		return &Compiled{Mod: m, Prog: prog}, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*Compiled), nil
}

// EngineFactory returns a campaign.EngineFactory for the compiled
// variant at the given layer.
func (p *Pipeline) EngineFactory(src Source, v Variant, layer Layer, bcfg backend.Config) (campaign.EngineFactory, error) {
	c, err := p.Compiled(src, v, bcfg)
	if err != nil {
		return nil, err
	}
	if layer == LayerIR {
		return func() (sim.Engine, error) { return interp.New(c.Mod), nil }, nil
	}
	return func() (sim.Engine, error) { return machine.New(c.Mod, c.Prog) }, nil
}

// Masks returns the bit-level static masking analysis (internal/
// bitmask) of the compiled variant at a layer, computed once per
// (module, backend config, layer). The analysis runs over exactly the
// module instance (IR) or program (asm) the layer's engines execute, so
// its static site indices line up with the campaign fault model. On a
// miss the per-layer telemetry counters bitmask_sites_total,
// bitmask_choices_masked_total, and bitmask_choices_total record what
// the analysis proved.
func (p *Pipeline) Masks(src Source, v Variant, layer Layer, bcfg backend.Config) (*bitmask.Analysis, error) {
	key := fmt.Sprintf("mask|%s|%s|gpr=%d", p.modKey(src, v), layer, bcfg.GPRScratch)
	val, err := p.cache.do(StageMask, key, func(_ *telemetry.Span) (any, error) {
		c, err := p.Compiled(src, v, bcfg)
		if err != nil {
			return nil, err
		}
		var a *bitmask.Analysis
		if layer == LayerIR {
			a = bitmask.AnalyzeIR(c.Mod)
		} else {
			a = bitmask.AnalyzeASM(c.Prog)
		}
		l := layer.String()
		p.reg.Counter(`bitmask_sites_total{layer="` + l + `"}`).Add(a.Sites)
		p.reg.Counter(`bitmask_choices_masked_total{layer="` + l + `"}`).Add(a.MaskedChoices)
		p.reg.Counter(`bitmask_choices_total{layer="` + l + `"}`).Add(a.TotalChoices)
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*bitmask.Analysis), nil
}

// Golden returns the fault-free run of the compiled variant at a layer.
func (p *Pipeline) Golden(src Source, v Variant, layer Layer, bcfg backend.Config) (sim.Result, error) {
	key := fmt.Sprintf("golden|%s|%s|gpr=%d|maxsteps=%d", p.modKey(src, v), layer, bcfg.GPRScratch, p.cfg.MaxSteps)
	val, err := p.cache.do(StageGolden, key, func(_ *telemetry.Span) (any, error) {
		factory, err := p.EngineFactory(src, v, layer, bcfg)
		if err != nil {
			return nil, err
		}
		eng, err := factory()
		if err != nil {
			return nil, err
		}
		res := eng.Run(sim.Fault{}, sim.Options{MaxSteps: p.cfg.MaxSteps, Reference: p.cfg.Reference, Metrics: p.cfg.Telemetry})
		if res.Status != sim.StatusOK {
			return nil, fmt.Errorf("pipeline: golden %s: %v (%v)", key, res.Status, res.Trap)
		}
		return res, nil
	})
	if err != nil {
		return sim.Result{}, err
	}
	return val.(sim.Result), nil
}

// CampaignOpts tunes one campaign request beyond the pipeline defaults.
type CampaignOpts struct {
	// Layer is the execution layer.
	Layer Layer
	// Runs overrides Config.Runs when positive.
	Runs int
	// Snapshots is campaign.Spec.Snapshots (0 auto, <0 off, >0 target).
	// Part of the key only because scratch-vs-snapshot benchmarks
	// intentionally measure both; outcomes are identical either way.
	Snapshots int
	// Backend selects the lowering configuration.
	Backend backend.Config
	// Pruning selects equivalence pruning (campaign.RunPruned). Pruned
	// campaigns are distinct artifacts from full ones — they estimate the
	// same statistics from different injections — so the mode and pilot
	// count enter the key.
	Pruning campaign.Pruning
	// PilotsPerClass is campaign.Spec.PilotsPerClass (pruned mode only).
	PilotsPerClass int
	// MaskStatic composes the bit-level static masking analysis (the
	// Masks node) into the pruned plan: statically proven-masked bit
	// choices become an exact zero-pilot stratum and the pilot budget
	// shrinks by the live fraction squared. Requires a pruned campaign
	// (campaign.Spec.Masks carries the same constraint); it changes
	// which injections run, so it enters the key (`|mask=1`).
	MaskStatic bool
	// Records, when non-nil, receives every run's Record (full campaigns
	// only; see campaign.Spec.Records). Observation only and excluded
	// from the key — a cache hit replays no records, so set it only on
	// requests known to miss (fresh-process CLIs like `flowery inject
	// -reclog`).
	Records func(campaign.Record)
	// ShardStream, when non-nil, receives each accepted shard's raw
	// reclog bytes as it completes (remote transport only; see
	// shard.RemoteOpts.Stream). floweryd spills the blobs into its
	// persistent store incrementally instead of buffering records in
	// memory. Observation only and excluded from the key; like Records
	// it bypasses store recall, since a recalled artifact streams
	// nothing.
	ShardStream func(rg campaign.ShardRange, reclog []byte)
}

// Campaign runs (or recalls) a fault-injection campaign for the variant.
// The key captures everything outcome-relevant: module identity, layer,
// backend config, run count, seed, step bound. Worker count is excluded —
// outcome statistics are scheduling-independent by the campaign package's
// contract — so one cached campaign serves callers with any parallelism.
func (p *Pipeline) Campaign(src Source, v Variant, opts CampaignOpts) (campaign.Stats, error) {
	runs := opts.Runs
	if runs <= 0 {
		runs = p.cfg.Runs
	}
	stage := StageCampaign
	key := fmt.Sprintf("campaign|%s|%s|gpr=%d|runs=%d|seed=%d|snap=%d|maxsteps=%d|ref=%t",
		p.modKey(src, v), opts.Layer, opts.Backend.GPRScratch, runs, p.cfg.Seed, opts.Snapshots, p.cfg.MaxSteps, p.cfg.Reference)
	sharded := p.cfg.Shards > 0 && opts.Pruning == campaign.PruneNone
	if sharded {
		key += fmt.Sprintf("|shards=%d", p.cfg.Shards)
	}
	if opts.Pruning != campaign.PruneNone {
		stage = StagePrune
		key += fmt.Sprintf("|prune=%s|k=%d", opts.Pruning, opts.PilotsPerClass)
	}
	if opts.MaskStatic {
		if opts.Pruning == campaign.PruneNone {
			return campaign.Stats{}, fmt.Errorf("pipeline: campaign %s: MaskStatic requires Pruning: classes", key)
		}
		key += "|mask=1"
	}
	val, err := p.cache.do(stage, key, func(sp *telemetry.Span) (any, error) {
		// The persistent artifact tier sits behind the in-memory miss:
		// a stats blob stored by an earlier pipeline (possibly an earlier
		// process) short-circuits the whole derivation chain. Requests
		// carrying a Records sink bypass recall — a recalled artifact
		// replays no records — but still persist what they compute.
		if recalled, ok := p.storeGet(key, opts.Records != nil || opts.ShardStream != nil); ok {
			if sp != nil {
				sp.SetAttr("store", "hit")
			}
			return recalled, nil
		}
		factory, err := p.EngineFactory(src, v, opts.Layer, opts.Backend)
		if err != nil {
			return nil, err
		}
		spec := campaign.Spec{
			Runs:           runs,
			Seed:           p.cfg.Seed,
			MaxSteps:       p.cfg.MaxSteps,
			Workers:        p.cfg.CampaignWorkers,
			Snapshots:      opts.Snapshots,
			Pruning:        opts.Pruning,
			PilotsPerClass: opts.PilotsPerClass,
			Reference:      p.cfg.Reference,
			Metrics:        p.cfg.Telemetry,
			TraceSpan:      sp,
			Records:        opts.Records,
		}
		if opts.MaskStatic {
			a, merr := p.Masks(src, v, opts.Layer, opts.Backend)
			if merr != nil {
				return nil, merr
			}
			spec.Masks = a.Masked
		}
		var st campaign.Stats
		if sharded {
			exec, eerr := p.shardExecutor(src, v, opts)
			if eerr != nil {
				return nil, eerr
			}
			st, err = campaign.RunSharded(factory, spec, campaign.ShardOpts{
				Shards: p.cfg.Shards,
				Exec:   exec,
			})
		} else {
			st, err = campaign.Run(factory, spec)
		}
		if err != nil {
			return nil, fmt.Errorf("pipeline: campaign %s: %w", key, err)
		}
		p.simulated.Add(st.SimulatedInstrs)
		p.saved.Add(st.SavedInstrs)
		if st.Pruned {
			p.pilots.Add(int64(st.PilotRuns))
		}
		p.storePut(key, st)
		return st, nil
	})
	if err != nil {
		return campaign.Stats{}, err
	}
	return val.(campaign.Stats), nil
}

// SectionTable builds the variant's section table at a layer
// (internal/section): the partition of the layer's static instruction
// space into content-hashed functions and loop sub-sections, computed
// once per (module, backend config, layer) over exactly the module
// instance or program the layer's engines execute.
func (p *Pipeline) SectionTable(src Source, v Variant, layer Layer, bcfg backend.Config) (*section.Table, error) {
	key := fmt.Sprintf("sections|%s|%s|gpr=%d", p.modKey(src, v), layer, bcfg.GPRScratch)
	val, err := p.cache.do(StageSectionTable, key, func(_ *telemetry.Span) (any, error) {
		c, err := p.Compiled(src, v, bcfg)
		if err != nil {
			return nil, err
		}
		if layer == LayerIR {
			return section.BuildIR(c.Mod), nil
		}
		return section.BuildASM(c.Prog), nil
	})
	if err != nil {
		return nil, err
	}
	return val.(*section.Table), nil
}

// CampaignSectioned runs (or recalls) a compositional per-section
// campaign (campaign.RunSectioned). The composed whole-program result
// is memoized in-process under a sectioned campaign key; the
// per-section summaries go to the persistent store under keys built
// from the section fingerprint (content hash + dynamic site count +
// plan shape) plus ambient identity (layer, backend config, seed, step
// bound, reference core) — and deliberately NOT the whole-program
// module key, so an edited program recalls every summary of its
// untouched sections across processes and floweryd requests.
func (p *Pipeline) CampaignSectioned(src Source, v Variant, opts CampaignOpts) (campaign.SectionedResult, error) {
	runs := opts.Runs
	if runs <= 0 {
		runs = p.cfg.Runs
	}
	key := fmt.Sprintf("section|%s|%s|gpr=%d|runs=%d|seed=%d|snap=%d|maxsteps=%d|ref=%t",
		p.modKey(src, v), opts.Layer, opts.Backend.GPRScratch, runs, p.cfg.Seed, opts.Snapshots, p.cfg.MaxSteps, p.cfg.Reference)
	if opts.Pruning != campaign.PruneNone {
		key += fmt.Sprintf("|prune=%s|k=%d", opts.Pruning, opts.PilotsPerClass)
	}
	if opts.MaskStatic {
		if opts.Pruning == campaign.PruneNone {
			return campaign.SectionedResult{}, fmt.Errorf("pipeline: campaign %s: MaskStatic requires Pruning: classes", key)
		}
		key += "|mask=1"
	}
	if opts.Records != nil {
		return campaign.SectionedResult{}, fmt.Errorf("pipeline: campaign %s: sectioned campaigns have no per-run records", key)
	}
	// Ambient identity prefix of per-section store keys: everything
	// outcome-relevant that the section fingerprint doesn't carry.
	secPrefix := fmt.Sprintf("secsum|%s|gpr=%d|seed=%d|maxsteps=%d|ref=%t|",
		opts.Layer, opts.Backend.GPRScratch, p.cfg.Seed, p.cfg.MaxSteps, p.cfg.Reference)
	val, err := p.cache.do(StageSection, key, func(sp *telemetry.Span) (any, error) {
		table, err := p.SectionTable(src, v, opts.Layer, opts.Backend)
		if err != nil {
			return nil, err
		}
		factory, err := p.EngineFactory(src, v, opts.Layer, opts.Backend)
		if err != nil {
			return nil, err
		}
		spec := campaign.Spec{
			Runs:           runs,
			Seed:           p.cfg.Seed,
			MaxSteps:       p.cfg.MaxSteps,
			Workers:        p.cfg.CampaignWorkers,
			Snapshots:      opts.Snapshots,
			Pruning:        opts.Pruning,
			PilotsPerClass: opts.PilotsPerClass,
			Reference:      p.cfg.Reference,
			Metrics:        p.cfg.Telemetry,
			TraceSpan:      sp,
		}
		if opts.MaskStatic {
			a, merr := p.Masks(src, v, opts.Layer, opts.Backend)
			if merr != nil {
				return nil, merr
			}
			spec.Masks = a.Masked
		}
		res, err := campaign.RunSectioned(factory, spec, campaign.SectionedOpts{
			Table:   table,
			Recall:  func(fp string) ([]byte, bool) { return p.blobGet(secPrefix + fp) },
			Persist: func(fp string, blob []byte) { p.blobPut(secPrefix+fp, blob) },
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: campaign %s: %w", key, err)
		}
		p.simulated.Add(res.Stats.SimulatedInstrs)
		p.saved.Add(res.Stats.SavedInstrs)
		p.pilots.Add(int64(res.Stats.PilotRuns))
		return &res, nil
	})
	if err != nil {
		return campaign.SectionedResult{}, err
	}
	return *val.(*campaign.SectionedResult), nil
}

// MaskedProbe validates the variant's masking analysis dynamically:
// it injects samples faults drawn from the statically proven-masked
// (site, bit) population at the given layer and reports the agreement
// rate (campaign.MaskedProbe). Probes are validation runs, not
// artifacts — they are never cached or persisted.
func (p *Pipeline) MaskedProbe(src Source, v Variant, opts CampaignOpts, samples int) (campaign.ProbeStats, error) {
	runs := opts.Runs
	if runs <= 0 {
		runs = p.cfg.Runs
	}
	factory, err := p.EngineFactory(src, v, opts.Layer, opts.Backend)
	if err != nil {
		return campaign.ProbeStats{}, err
	}
	a, err := p.Masks(src, v, opts.Layer, opts.Backend)
	if err != nil {
		return campaign.ProbeStats{}, err
	}
	spec := campaign.Spec{
		Runs:           runs,
		Seed:           p.cfg.Seed,
		MaxSteps:       p.cfg.MaxSteps,
		Workers:        p.cfg.CampaignWorkers,
		Pruning:        campaign.PruneClasses,
		PilotsPerClass: opts.PilotsPerClass,
		Reference:      p.cfg.Reference,
		Metrics:        p.cfg.Telemetry,
		Masks:          a.Masked,
	}
	if spec.PilotsPerClass < 1 {
		spec.PilotsPerClass = 1
	}
	return campaign.MaskedProbe(factory, spec, samples)
}

// storeGet recalls a campaign artifact from the persistent store.
// skip (a Records request) forces a miss without touching the store's
// hit/miss counters — the request is not answerable from storage.
// Undecodable blobs degrade to a recomputation that overwrites them.
func (p *Pipeline) storeGet(key string, skip bool) (campaign.Stats, bool) {
	if p.cfg.Artifacts == nil || skip {
		return campaign.Stats{}, false
	}
	blob, ok, err := p.cfg.Artifacts.Get(key)
	if err != nil {
		p.storeErrors.Inc()
		return campaign.Stats{}, false
	}
	if !ok {
		p.storeMisses.Inc()
		return campaign.Stats{}, false
	}
	var st campaign.Stats
	if err := json.Unmarshal(blob, &st); err != nil {
		p.storeErrors.Inc()
		p.storeMisses.Inc()
		return campaign.Stats{}, false
	}
	p.storeHits.Inc()
	return st, true
}

// storePut persists a freshly computed campaign artifact. Elapsed is
// zeroed first: it is the one wall-clock-derived Stats field, and the
// stored blob must be a deterministic function of the key so memory-
// and disk-backed runs stay bit-identical. Store failures only count —
// the computation already succeeded.
func (p *Pipeline) storePut(key string, st campaign.Stats) {
	if p.cfg.Artifacts == nil {
		return
	}
	st.Elapsed = 0
	blob, err := json.Marshal(st)
	if err != nil {
		p.storeErrors.Inc()
		return
	}
	if err := p.cfg.Artifacts.Put(key, blob); err != nil {
		p.storeErrors.Inc()
	}
}

// blobGet recalls an opaque artifact blob (a per-section campaign
// summary) from the persistent store, counting hits and misses on the
// same pipeline_store counters as campaign stats so incremental recall
// is observable from telemetry.
func (p *Pipeline) blobGet(key string) ([]byte, bool) {
	if p.cfg.Artifacts == nil {
		return nil, false
	}
	blob, ok, err := p.cfg.Artifacts.Get(key)
	if err != nil {
		p.storeErrors.Inc()
		return nil, false
	}
	if !ok {
		p.storeMisses.Inc()
		return nil, false
	}
	p.storeHits.Inc()
	return blob, true
}

// blobPut persists an opaque artifact blob. Store failures only count —
// the computation already succeeded.
func (p *Pipeline) blobPut(key string, blob []byte) {
	if p.cfg.Artifacts == nil {
		return
	}
	if err := p.cfg.Artifacts.Put(key, blob); err != nil {
		p.storeErrors.Inc()
	}
}

// ProtectionVariant maps the CLI-level protection knobs — a level in
// (0,1] and the Flowery toggle — to the pipeline variant every
// protection-aware entry point (cmd/flowery, the daemon's job service)
// derives modules under: full duplication at level 1, profile-driven
// selection below, plus all Flowery patches when requested.
func ProtectionVariant(level float64, fl bool) Variant {
	full := level >= 1
	switch {
	case full && fl:
		return FullFloweryVariant(flowery.All())
	case full:
		return FullIDVariant()
	case fl:
		return FloweryVariant(dup.Level(level), flowery.All())
	default:
		return IDVariant(dup.Level(level))
	}
}

// shardExecutor builds the executor for a sharded campaign: nil (the
// in-process executor through the engine factory) unless Config asks
// for worker processes — local children over pipes, or the socket
// transport when any remote source (dial list, listen address, hub) is
// configured. Either way the variant's pristine module rides to the
// workers as IR text and is re-derived there exactly the way Compiled
// derives it here. Pool telemetry (worker spawns, shards, steals,
// result bytes, remote connect/redial/re-deal counters) reports into
// Config.Telemetry.
func (p *Pipeline) shardExecutor(src Source, v Variant, opts CampaignOpts) (campaign.ShardExecutor, error) {
	remote := len(p.cfg.RemoteWorkers) > 0 || p.cfg.RemoteListen != "" || p.cfg.RemoteHub != nil
	if !remote && p.cfg.ShardProcs <= 1 && len(p.cfg.ShardCommand) == 0 {
		return nil, nil
	}
	pm, err := p.Module(src, v)
	if err != nil {
		return nil, err
	}
	job := shard.Job{
		Module:     pm.String(),
		Layer:      opts.Layer.String(),
		GPRScratch: opts.Backend.GPRScratch,
	}
	if remote {
		return shard.NewRemotePool(job, shard.RemoteOpts{
			Dial:          p.cfg.RemoteWorkers,
			Listen:        p.cfg.RemoteListen,
			Hub:           p.cfg.RemoteHub,
			Heartbeat:     p.cfg.RemoteHeartbeat,
			HeartbeatMiss: p.cfg.RemoteHeartbeatMiss,
			Redials:       p.cfg.RemoteRedials,
			Stream:        opts.ShardStream,
			Metrics:       p.cfg.Telemetry,
		}), nil
	}
	return shard.NewPool(job, shard.PoolOpts{
		Procs:   p.cfg.ShardProcs,
		Command: p.cfg.ShardCommand,
		Metrics: p.cfg.Telemetry,
	}), nil
}

// Telemetry is a snapshot of the pipeline's per-stage cache counters
// plus campaign instruction totals. It is a view over the pipeline's
// registry (see Config.Telemetry): the same counters appear, under
// their metric names, in a telemetry run report.
type Telemetry struct {
	Stages []StageTelemetry
	// SimulatedInstrs and SavedInstrs total the executed and
	// fast-forwarded instructions across every campaign miss.
	SimulatedInstrs int64
	SavedInstrs     int64
	// PilotRuns totals the injections executed by pruned campaigns.
	PilotRuns int64
}

// Telemetry returns the current counters.
func (p *Pipeline) Telemetry() Telemetry {
	return Telemetry{
		Stages:          p.cache.telemetry(),
		SimulatedInstrs: p.simulated.Value(),
		SavedInstrs:     p.saved.Value(),
		PilotRuns:       p.pilots.Value(),
	}
}

// CampaignsExecuted is the number of campaigns actually run (campaign
// stage misses).
func (t Telemetry) CampaignsExecuted() int64 {
	for _, s := range t.Stages {
		if s.Stage == StageCampaign {
			return s.Misses
		}
	}
	return 0
}

// CacheHits totals reuse across all stages.
func (t Telemetry) CacheHits() int64 {
	var n int64
	for _, s := range t.Stages {
		n += s.Hits
	}
	return n
}

// CacheMisses totals computations across all stages.
func (t Telemetry) CacheMisses() int64 {
	var n int64
	for _, s := range t.Stages {
		n += s.Misses
	}
	return n
}

// String renders the telemetry as the table cmd/experiments prints.
func (t Telemetry) String() string {
	var sb strings.Builder
	sb.WriteString("pipeline telemetry (per artifact stage):\n")
	fmt.Fprintf(&sb, "%-10s %6s %6s %8s %12s\n", "stage", "keys", "hits", "misses", "wall")
	for _, s := range t.Stages {
		fmt.Fprintf(&sb, "%-10s %6d %6d %8d %12s\n",
			s.Stage, s.Keys, s.Hits, s.Misses, s.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "campaigns executed: %d; instructions simulated: %d",
		t.CampaignsExecuted(), t.SimulatedInstrs)
	if total := t.SimulatedInstrs + t.SavedInstrs; total > 0 && t.SavedInstrs > 0 {
		fmt.Fprintf(&sb, " (%.1f%% fast-forwarded)", float64(t.SavedInstrs)/float64(total)*100)
	}
	sb.WriteString("\n")
	return sb.String()
}
