package pipeline

import (
	"os"
	"testing"

	"flowery/internal/campaign"
	"flowery/internal/shard"
)

// TestMain lets this test binary serve as the shard worker the
// process-executor test respawns.
func TestMain(m *testing.M) {
	shard.MaybeServeWorker()
	os.Exit(m.Run())
}

// TestShardedCampaignMatchesUnsharded: the pipeline's sharded path
// (in-process executor and worker processes alike) must reproduce the
// plain campaign node bit for bit, and the two must live under
// different cache keys so the comparison never degenerates into a
// cache hit.
func TestShardedCampaignMatchesUnsharded(t *testing.T) {
	src := testSource(t)
	plain := New(testCfg)
	want, err := plain.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm})
	if err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{0, 2} {
		cfg := testCfg
		cfg.Shards = 4
		cfg.ShardProcs = procs
		p := New(cfg)
		got, err := p.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got.Counts != want.Counts || got.SDCByOrigin != want.SDCByOrigin ||
			got.GoldenDyn != want.GoldenDyn || got.GoldenInjectable != want.GoldenInjectable {
			t.Fatalf("procs=%d: sharded campaign drifted:\n%+v\nvs\n%+v", procs, got, want)
		}
	}
}

// TestShardKeyInKey: shard count must be part of the campaign key, and
// scheduling knobs (ShardProcs) must not be.
func TestShardKeyInKey(t *testing.T) {
	src := testSource(t)
	cfg := testCfg
	cfg.Shards = 2
	p := New(cfg)
	if _, err := p.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm}); err != nil {
		t.Fatal(err)
	}
	if st := stageTel(t, p, StageCampaign); st.Misses != 1 {
		t.Fatalf("campaign misses = %d, want 1", st.Misses)
	}
	// Same campaign again: a hit, proving ShardProcs-independent keys
	// would have coalesced (procs isn't in Config mid-flight, but the
	// key must be stable for the same shard count).
	if _, err := p.Campaign(src, RawVariant(), CampaignOpts{Layer: LayerAsm}); err != nil {
		t.Fatal(err)
	}
	if st := stageTel(t, p, StageCampaign); st.Hits != 1 {
		t.Fatalf("campaign hits = %d, want 1", st.Hits)
	}
}

// TestShardedPrunedCampaignIgnoresShards: pruned campaigns stratify
// rather than shard; a pruned request under a sharded config must
// succeed via RunPruned, not be rejected by RunSharded.
func TestShardedPrunedCampaignIgnoresShards(t *testing.T) {
	src := testSource(t)
	cfg := testCfg
	cfg.Shards = 4
	p := New(cfg)
	st, err := p.Campaign(src, RawVariant(), CampaignOpts{
		Layer: LayerAsm, Pruning: campaign.PruneClasses, PilotsPerClass: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Pruned {
		t.Fatal("pruned campaign did not run pruned")
	}
}

// TestCampaignRecordsSink: the Records hook observes the campaign's
// per-run stream on a miss (both sharded and not).
func TestCampaignRecordsSink(t *testing.T) {
	src := testSource(t)
	for _, shards := range []int{0, 3} {
		cfg := testCfg
		cfg.Shards = shards
		p := New(cfg)
		var recs []campaign.Record
		st, err := p.Campaign(src, RawVariant(), CampaignOpts{
			Layer:   LayerAsm,
			Records: func(r campaign.Record) { recs = append(recs, r) },
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(recs) != st.Runs {
			t.Fatalf("shards=%d: %d records for %d runs", shards, len(recs), st.Runs)
		}
		for i, r := range recs {
			if r.Run != i {
				t.Fatalf("shards=%d: record %d out of order (%d)", shards, i, r.Run)
			}
		}
	}
}
