package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"flowery/internal/telemetry"
)

// Hub is floweryd's worker-registration listener (-shard-listen):
// long-lived socket workers dial in, introduce themselves with a hello,
// and park until a campaign claims them. While parked, a lightweight
// parker goroutine drains the worker's heartbeat pings and evicts
// connections that go silent; the claim handoff is frame-aligned and
// byte-exact — the parker reads the connection one byte at a time with
// no buffering of its own, so the claiming RemotePool can attach its
// buffered reader without losing bytes in transit. After a campaign
// quits a worker, the worker re-dials the hub and registers afresh.
type Hub struct {
	ln        net.Listener
	heartbeat time.Duration
	miss      int
	reg       *telemetry.Registry

	mu     sync.Mutex
	parked map[string]*parkedWorker
	closed bool
	wg     sync.WaitGroup

	// arrived pulses (buffered, best-effort) when a worker registers,
	// waking any RemotePool waiting to claim one.
	arrived chan struct{}
}

// HubOpts configures a Hub.
type HubOpts struct {
	// Heartbeat is the parker's read-deadline slice (0 =
	// DefaultHeartbeat); a parked worker silent for HeartbeatMiss
	// consecutive slices is evicted.
	Heartbeat     time.Duration
	HeartbeatMiss int
	// Metrics receives shard_remote_connects_total /
	// shard_remote_disconnects_total /
	// shard_remote_heartbeats_missed_total and the shard_hub_workers
	// gauge.
	Metrics *telemetry.Registry
}

type parkedWorker struct {
	name string
	conn net.Conn

	mu      sync.Mutex
	claimed bool
	dead    bool

	handoff     chan struct{} // closed once the parker stops reading
	handoffOnce sync.Once
}

func (pw *parkedWorker) isClaimed() bool {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.claimed
}

// claimedWorker is a parked worker handed to a RemotePool: hello
// already validated, no bytes in flight beyond whole ping frames.
type claimedWorker struct {
	name string
	conn net.Conn
}

// NewHub starts a hub on ln. Close stops it and hangs up every parked
// worker.
func NewHub(ln net.Listener, opts HubOpts) *Hub {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = DefaultHeartbeat
	}
	if opts.HeartbeatMiss <= 0 {
		opts.HeartbeatMiss = DefaultHeartbeatMiss
	}
	h := &Hub{
		ln:        ln,
		heartbeat: opts.Heartbeat,
		miss:      opts.HeartbeatMiss,
		reg:       opts.Metrics,
		parked:    make(map[string]*parkedWorker),
		arrived:   make(chan struct{}, 1),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h
}

// Addr is the hub's bound listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Workers returns how many workers are currently parked.
func (h *Hub) Workers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.parked)
}

// Close stops accepting, hangs up parked workers, and waits for the
// hub's goroutines to exit.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	conns := make([]net.Conn, 0, len(h.parked))
	for _, pw := range h.parked {
		conns = append(conns, pw.conn)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	h.wg.Wait()
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.register(conn)
		}()
	}
}

// register validates a dialing worker's hello and parks it, or refuses
// it with a one-line msgError.
func (h *Hub) register(conn net.Conn) {
	refuse := func(msg string) {
		sink := newFrameSink(&deadlineWriter{conn: conn, d: h.heartbeat * time.Duration(h.miss+1)})
		sink.send(msgError, []byte(msg))
		conn.Close()
	}
	conn.SetReadDeadline(time.Now().Add(h.heartbeat * time.Duration(h.miss+1)))
	typ, payload, err := readFrame(oneByteReader{conn})
	conn.SetReadDeadline(time.Time{})
	if err != nil || typ != msgHello {
		conn.Close()
		return
	}
	hl, err := decodeHello(payload)
	if err != nil {
		refuse(err.Error())
		return
	}
	if hl.Proto != ProtoVersion {
		refuse(fmt.Sprintf("worker speaks protocol %d, hub %d — version skew", hl.Proto, ProtoVersion))
		return
	}
	pw := &parkedWorker{name: hl.Name, conn: conn, handoff: make(chan struct{})}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		refuse("hub shutting down")
		return
	}
	if h.parked[hl.Name] != nil {
		h.mu.Unlock()
		refuse("duplicate worker name " + hl.Name)
		return
	}
	h.parked[hl.Name] = pw
	n := len(h.parked)
	h.mu.Unlock()
	h.reg.Counter("shard_remote_connects_total").Inc()
	h.reg.Gauge("shard_hub_workers").Set(float64(n))
	select {
	case h.arrived <- struct{}{}:
	default:
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.park(pw)
	}()
}

// errClaimed aborts a parker read between frames when the worker has
// been claimed.
var errClaimed = errors.New("shard: worker claimed")

// park drains the worker's heartbeat pings until the worker is claimed
// or goes silent/dead. Only whole ping frames (two bytes: type + zero
// length) are ever consumed, one byte at a time straight off the conn,
// so a claim always observes a frame-aligned stream: a claim landing
// mid-ping waits for the frame's second byte before the handoff.
func (h *Hub) park(pw *parkedWorker) {
	finish := func(dead bool) {
		if dead {
			h.mu.Lock()
			if h.parked[pw.name] == pw {
				delete(h.parked, pw.name)
			}
			n := len(h.parked)
			h.mu.Unlock()
			pw.conn.Close()
			pw.mu.Lock()
			pw.dead = true
			pw.mu.Unlock()
			h.reg.Counter("shard_remote_disconnects_total").Inc()
			h.reg.Gauge("shard_hub_workers").Set(float64(n))
		} else {
			pw.conn.SetReadDeadline(time.Time{})
		}
		pw.handoffOnce.Do(func() { close(pw.handoff) })
	}
	misses := 0
	var buf [1]byte
	readByte := func(midFrame bool) (byte, error) {
		for {
			pw.conn.SetReadDeadline(time.Now().Add(h.heartbeat))
			_, err := pw.conn.Read(buf[:])
			if err == nil {
				misses = 0
				return buf[0], nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if !midFrame && pw.isClaimed() {
					return 0, errClaimed
				}
				misses++
				h.reg.Counter("shard_remote_heartbeats_missed_total").Inc()
				if misses >= h.miss {
					return 0, err
				}
				continue
			}
			return 0, err
		}
	}
	for {
		if pw.isClaimed() {
			finish(false)
			return
		}
		typ, err := readByte(false)
		if err == errClaimed {
			finish(false)
			return
		}
		if err != nil || typ != msgPing {
			finish(true) // silent, hung up, or speaking out of turn
			return
		}
		size, err := readByte(true)
		if err != nil || size != 0 {
			finish(true)
			return
		}
	}
}

// take claims any parked worker: it removes it from the pool, stops its
// parker, and waits for the frame-aligned handoff. ok is false when no
// worker is parked.
func (h *Hub) take() (claimedWorker, bool) {
	for {
		h.mu.Lock()
		var pw *parkedWorker
		for name, cand := range h.parked {
			pw = cand
			delete(h.parked, name)
			break
		}
		n := len(h.parked)
		h.mu.Unlock()
		if pw == nil {
			return claimedWorker{}, false
		}
		h.reg.Gauge("shard_hub_workers").Set(float64(n))
		pw.mu.Lock()
		pw.claimed = true
		pw.mu.Unlock()
		// The parker notices within one heartbeat slice (its read
		// deadline) and closes the handoff without consuming another
		// frame.
		<-pw.handoff
		pw.mu.Lock()
		dead := pw.dead
		pw.mu.Unlock()
		if dead {
			continue // died during the handoff; try another
		}
		return claimedWorker{name: pw.name, conn: pw.conn}, true
	}
}

// oneByteReader adapts a conn to the frame reader without buffering:
// whatever readFrame does not consume stays in the kernel, so the
// stream can be handed to a different reader afterwards.
type oneByteReader struct{ c net.Conn }

func (r oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(r.c, b[:])
	return b[0], err
}

func (r oneByteReader) Read(p []byte) (int, error) { return r.c.Read(p) }
