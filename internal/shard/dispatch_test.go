package shard

import "testing"

func TestDispatcherDealsThenSteals(t *testing.T) {
	d := newDispatcher(3)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		idx, steal, ok := d.next()
		if !ok || steal {
			t.Fatalf("assignment %d: steal=%v ok=%v", i, steal, ok)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("pending phase dealt %v", seen)
	}
	// Queue drained, nothing complete: further requests are steals of
	// the oldest inflight shards, rotating across stragglers.
	a, steal, ok := d.next()
	if !ok || !steal {
		t.Fatalf("expected steal, got steal=%v ok=%v", steal, ok)
	}
	b, steal, _ := d.next()
	if !steal || b == a {
		t.Fatalf("consecutive steals hit the same straggler %d", a)
	}
	// First completion wins; the duplicate is reported as such.
	if !d.complete(a) {
		t.Fatal("first completion rejected")
	}
	if d.complete(a) {
		t.Fatal("duplicate completion accepted")
	}
	// Completed shards are skipped by the steal scan.
	for i := 0; i < 4; i++ {
		idx, _, ok := d.next()
		if !ok {
			t.Fatal("work left but dispatcher dry")
		}
		if idx == a {
			t.Fatal("stole a completed shard")
		}
	}
	d.complete(b)
	last, _, ok := d.next() // only the third shard is left to steal
	if !ok {
		t.Fatal("work left but dispatcher dry")
	}
	if last == a || last == b {
		t.Fatalf("stole completed shard %d", last)
	}
	d.complete(last)
	if _, _, ok := d.next(); ok {
		t.Fatal("dispatcher not dry after all completions")
	}
}

func TestDispatcherRequeue(t *testing.T) {
	d := newDispatcher(2)
	a, _, _ := d.next()
	b, _, _ := d.next()
	d.complete(b)
	d.requeue(a) // dead worker hands its assignment back
	idx, steal, ok := d.next()
	if !ok || steal || idx != a {
		t.Fatalf("requeued shard not re-dealt: idx=%d steal=%v ok=%v", idx, steal, ok)
	}
	d.complete(a)
	d.requeue(a) // requeue after completion is a no-op
	if _, _, ok := d.next(); ok {
		t.Fatal("completed shard re-dealt after requeue")
	}
}
