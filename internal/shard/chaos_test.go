package shard

import (
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"flowery/internal/campaign"
	"flowery/internal/telemetry"
)

// This file turns the fault-injection discipline on the fleet itself:
// scripted transport faults (drops, delays, mid-frame truncation) and a
// real SIGKILL'd worker process, each asserting the invariant the whole
// transport exists to uphold — merged Stats bit-identical to the
// single-process run, with lost shards visibly re-dealt.

// faultyConn wraps the worker side of a proxied connection and injects
// faults into the worker→coordinator byte stream: added latency per
// chunk, and a hard cut after `budget` bytes (mid-frame truncation —
// budgets are deliberately not frame-aligned).
type faultyConn struct {
	net.Conn
	delay  time.Duration
	budget int64 // bytes to pass before cutting; < 0 = unlimited
}

func (f *faultyConn) Read(p []byte) (int, error) {
	if f.budget == 0 {
		return 0, io.ErrClosedPipe // the cut
	}
	if f.budget > 0 && int64(len(p)) > f.budget {
		p = p[:f.budget] // truncate the final chunk exactly at the budget
	}
	n, err := f.Conn.Read(p)
	if f.budget > 0 {
		f.budget -= int64(n)
	}
	if f.delay > 0 && n > 0 {
		time.Sleep(f.delay)
	}
	return n, err
}

// chaosProxy fronts a real worker with a fault-injecting relay. Only
// the first connection suffers the scripted faults; redials get a clean
// path, so each test case models exactly one outage.
type chaosProxy struct {
	target string
	delay  time.Duration
	cut    int64 // worker→coordinator bytes before cutting; 0 = never
}

func (p *chaosProxy) start(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		for {
			coord, err := ln.Accept()
			if err != nil {
				return
			}
			worker, err := net.Dial("tcp", p.target)
			if err != nil {
				coord.Close()
				continue
			}
			faulty := first
			first = false
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.relay(coord, worker, faulty)
			}()
		}
	}()
	return ln.Addr().String()
}

func (p *chaosProxy) relay(coord, worker net.Conn, faulty bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // coordinator → worker, always clean
		defer wg.Done()
		io.Copy(worker, coord)
		worker.Close()
	}()
	var from io.Reader = worker
	if faulty {
		fc := &faultyConn{Conn: worker, delay: p.delay, budget: -1}
		if p.cut > 0 {
			fc.budget = p.cut
		}
		from = fc
	}
	io.Copy(coord, from)
	// A cut (or worker hangup) severs both directions at once, like a
	// crashed host: the campaign must notice via its read deadlines and
	// re-deal, not drain a half-dead relay.
	coord.Close()
	worker.Close()
	wg.Wait()
}

// TestChaosConnectionFaults drives one campaign per scripted fault
// through a single proxied worker and asserts the outcome invariant
// plus the expected re-deal/redial accounting.
func TestChaosConnectionFaults(t *testing.T) {
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 160, Seed: 11, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		cut        int64
		delay      time.Duration
		wantRedeal bool // a shard was in flight when the fault hit
		wantRedial bool
	}{
		// Cut mid-hello: the handshake dies before any assignment, so
		// the redial replays from scratch with nothing to re-deal.
		{name: "drop-during-handshake", cut: 20, wantRedial: true},
		// Cut mid-result: the in-flight shard must be re-dealt to the
		// redialed connection and the merged stats must not move.
		{name: "truncate-mid-result", cut: 600, wantRedeal: true, wantRedial: true},
		// Latency alone (a quarter heartbeat per chunk) is not a fault:
		// byte progress resets the miss count, so nothing is declared
		// dead and nothing is re-dealt.
		{name: "delay-only", delay: testHeartbeat / 4},
		{name: "delay-and-truncate", cut: 900, delay: testHeartbeat / 8, wantRedeal: true, wantRedial: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkGoroutines(t)
			proxy := &chaosProxy{
				target: startWorker(t, "chaos"),
				delay:  tc.delay,
				cut:    tc.cut,
			}
			reg := telemetry.New()
			opts := testRemoteOpts()
			opts.Dial = []string{proxy.start(t)}
			opts.Metrics = reg
			pool := remotePoolFor(t, pristine, LayerAsm, opts)
			st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 8, Exec: pool})
			if err != nil {
				t.Fatal(err)
			}
			sameOutcomes(t, tc.name, single, st)

			redealt := reg.Counter("shard_shards_redealt_total").Value()
			redials := reg.Counter("shard_remote_redials_total").Value()
			if tc.wantRedeal && redealt < 1 {
				t.Fatalf("fault hit mid-shard but nothing re-dealt (redealt=%d)", redealt)
			}
			if !tc.wantRedeal && redealt != 0 {
				t.Fatalf("unexpected re-deals: %d", redealt)
			}
			if tc.wantRedial && redials < 1 {
				t.Fatalf("connection cut but never redialed (redials=%d)", redials)
			}
			if !tc.wantRedial && redials != 0 {
				t.Fatalf("healthy connection redialed %d times", redials)
			}
		})
	}
}

// TestChaosWorkerSIGKILL kills a real worker process mid-campaign — no
// quit handshake, no connection teardown, exactly like a SIGKILL or a
// host crash — and asserts a surviving worker absorbs the re-dealt
// shards with the merged statistics unchanged.
func TestChaosWorkerSIGKILL(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 240, Seed: 5, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	reg := telemetry.New()
	opts := testRemoteOpts()
	// The doomed subprocess runs default 1s heartbeats; give the
	// coordinator a tolerance far beyond its engine-setup time so the
	// only death observed is the scripted one.
	opts.Heartbeat = 200 * time.Millisecond
	opts.HeartbeatMiss = 25
	opts.Listen = addr
	opts.Metrics = reg

	// The doomed worker: this test binary re-executed in connect mode
	// (MaybeServeWorker in TestMain), exiting abruptly after its first
	// result.
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	doomed := exec.Command(self)
	doomed.Env = append(os.Environ(),
		EnvWorkerConnect+"="+addr,
		EnvChaosExitAfter+"=1")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		doomed.Process.Kill()
		doomed.Wait()
	})

	// The survivor, in-process.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		RunWorker(WorkerOpts{
			Connect:     addr,
			Name:        "survivor",
			Heartbeat:   testHeartbeat,
			Redials:     50,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			Log:         io.Discard,
		})
	}()
	t.Cleanup(wg.Wait)

	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 8, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "sigkill chaos", single, st)
	if got := reg.Counter("shard_shards_redealt_total").Value(); got < 1 {
		t.Fatalf("worker killed mid-campaign but nothing re-dealt (redealt=%d)", got)
	}
	ps := pool.Stats()
	var survivor *WorkerStats
	for i := range ps.Workers {
		if ps.Workers[i].Name == "survivor" {
			survivor = &ps.Workers[i]
		}
	}
	if survivor == nil || survivor.Shards == 0 {
		t.Fatalf("survivor absorbed no shards: %+v", ps.Workers)
	}
}
