package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"

	"flowery/internal/campaign"
	"flowery/internal/telemetry"
)

// PoolOpts configures a worker pool.
type PoolOpts struct {
	// Procs is the number of worker processes (default 1; values above
	// the shard count are trimmed at Execute time).
	Procs int
	// Command is the worker argv. Default: re-execute this binary with
	// no arguments, relying on MaybeServeWorker + EnvWorker. cmd/flowery
	// passes [self, "shard-worker"] so the mode is visible in ps output.
	Command []string
	// Env is extra environment appended to the inherited one (EnvWorker
	// is always set on top).
	Env []string
	// Metrics, when non-nil, receives coordinator-side pool telemetry:
	// shard_workers_spawned_total, shard_shards_executed_total,
	// shard_steals_total, shard_duplicate_results_total,
	// shard_result_bytes_total. Workers themselves emit nothing — the
	// campaign counters are flushed once by campaign.RunSharded.
	Metrics *telemetry.Registry
}

// WorkerStats is one worker process's contribution to a campaign.
type WorkerStats struct {
	// Name identifies the worker on the socket transport (the name it
	// registered in its hello); empty for pipe-transport workers, which
	// are anonymous children indexed by slot.
	Name string
	// Shards counts results this worker reported that were accepted
	// (first completion of their range).
	Shards int
	// Duplicates counts results dropped because another worker finished
	// the (stolen) range first.
	Duplicates int
	// CPUNanos is the worker process's total CPU time across its
	// results, including its one-time setup (golden run, snapshots).
	CPUNanos int64
	// ResultBytes totals the msgResult payload bytes it sent.
	ResultBytes int64
	// Err records why the worker died, if it did.
	Err error
}

// PoolStats describes the last Execute call.
type PoolStats struct {
	Workers []WorkerStats
	// Steals counts straggler re-assignments issued.
	Steals int
}

// CriticalPathCPU is the bottleneck worker's CPU time: the makespan of
// the partition on a machine with at least len(Workers) free cores.
// On such hosts wall clock tracks it; on smaller hosts (CI containers)
// it is still a faithful measure of partition balance, which is why
// shardbench reports it alongside raw wall time.
func (s PoolStats) CriticalPathCPU() int64 {
	var max int64
	for _, w := range s.Workers {
		if w.CPUNanos > max {
			max = w.CPUNanos
		}
	}
	return max
}

// TotalResultBytes sums the result payload traffic of all workers.
func (s PoolStats) TotalResultBytes() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.ResultBytes
	}
	return n
}

// Pool is a campaign.ShardExecutor that farms shards to worker
// processes. Construct one per campaign with NewPool; Execute is not
// reentrant (it records per-run stats readable via Stats afterward).
type Pool struct {
	job  Job
	opts PoolOpts

	mu    sync.Mutex
	stats PoolStats
}

// NewPool builds a pool for one campaign job. The job's campaign knobs
// (Runs, Seed, ...) are overwritten from the Spec at Execute time; the
// module, layer, and backend config identify what the workers run.
func NewPool(job Job, opts PoolOpts) *Pool {
	if opts.Procs <= 0 {
		opts.Procs = 1
	}
	return &Pool{job: job, opts: opts}
}

// Stats returns the statistics of the last Execute call.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// dispatcher deals shard indices: pending ranges first, then — once the
// queue drains — it re-deals the oldest still-inflight range to idle
// workers (work stealing). Shards are deterministic and idempotent, so
// a range may safely execute in several workers at once; complete()
// accepts only the first result. Stolen ranges rotate to the back of
// the inflight list so consecutive steals target different stragglers.
type dispatcher struct {
	mu       sync.Mutex
	pending  []int
	inflight []int
	done     []bool
	steals   int
	// remaining counts incomplete shards; allDone closes when it hits
	// zero so transport-level waiters (the remote pool's accept loop,
	// backoff sleeps, deadline reads) can stop without polling.
	remaining int
	allDone   chan struct{}
}

func newDispatcher(n int) *dispatcher {
	d := &dispatcher{
		pending:   make([]int, n),
		done:      make([]bool, n),
		remaining: n,
		allDone:   make(chan struct{}),
	}
	for i := range d.pending {
		d.pending[i] = i
	}
	if n == 0 {
		close(d.allDone)
	}
	return d
}

// next returns a shard index to execute and whether this assignment is
// a steal; ok is false when every shard is complete.
func (d *dispatcher) next() (idx int, steal, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pending) > 0 {
		idx = d.pending[0]
		d.pending = d.pending[1:]
		d.inflight = append(d.inflight, idx)
		return idx, false, true
	}
	for len(d.inflight) > 0 {
		idx = d.inflight[0]
		d.inflight = d.inflight[1:]
		if d.done[idx] {
			continue
		}
		d.inflight = append(d.inflight, idx)
		d.steals++
		return idx, true, true
	}
	return 0, false, false
}

// requeue returns an assignment whose worker died so others pick it up
// even before the steal path kicks in; it reports whether the shard was
// actually still incomplete (the remote pool counts those as re-deals).
func (d *dispatcher) requeue(idx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done[idx] {
		return false
	}
	d.pending = append(d.pending, idx)
	return true
}

// complete marks a shard done; reports whether this was the first
// completion (later duplicates are dropped by the caller).
func (d *dispatcher) complete(idx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done[idx] {
		return false
	}
	d.done[idx] = true
	d.remaining--
	if d.remaining == 0 {
		close(d.allDone)
	}
	return true
}

// Execute implements campaign.ShardExecutor: spawn workers, ship the
// job, deal ranges until all are complete, quit the workers. A worker
// failure is tolerated as long as at least one worker survives to pick
// up its shards; emit is called exactly once per completed range (the
// campaign side also dedupes defensively).
func (p *Pool) Execute(spec campaign.Spec, ranges []campaign.ShardRange, emit func(campaign.ShardResult)) error {
	job := p.job
	job.Runs = spec.Runs
	job.Seed = spec.Seed
	job.MaxSteps = spec.MaxSteps
	job.Workers = spec.Workers
	job.Snapshots = spec.Snapshots
	job.Reference = spec.Reference
	payload, err := json.Marshal(job)
	if err != nil {
		return fmt.Errorf("shard: encoding job: %w", err)
	}
	wantHash := jobHash(payload)

	procs := p.opts.Procs
	if procs > len(ranges) {
		procs = len(ranges)
	}

	var reg *telemetry.Registry
	if p.opts.Metrics != nil {
		reg = p.opts.Metrics
		reg.Counter("shard_workers_spawned_total").Add(int64(procs))
	}

	d := newDispatcher(len(ranges))
	stats := PoolStats{Workers: make([]WorkerStats, procs)}
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.runWorker(payload, wantHash, d, ranges, func(idx int, res campaign.ShardResult, cpu int64, bytes int) {
				ws := &stats.Workers[w]
				ws.CPUNanos += cpu
				ws.ResultBytes += int64(bytes)
				if d.complete(idx) {
					ws.Shards++
					if reg != nil {
						reg.Counter("shard_shards_executed_total").Add(1)
						reg.Counter("shard_result_bytes_total").Add(int64(bytes))
					}
					emitMu.Lock()
					emit(res)
					emitMu.Unlock()
				} else {
					ws.Duplicates++
					if reg != nil {
						reg.Counter("shard_duplicate_results_total").Add(1)
					}
				}
			})
			if err != nil {
				stats.Workers[w].Err = err
			}
		}()
	}
	wg.Wait()
	d.mu.Lock()
	stats.Steals = d.steals
	d.mu.Unlock()
	if reg != nil {
		reg.Counter("shard_steals_total").Add(int64(stats.Steals))
	}
	p.mu.Lock()
	p.stats = stats
	p.mu.Unlock()

	var errs []string
	for w := range stats.Workers {
		if stats.Workers[w].Err != nil {
			errs = append(errs, fmt.Sprintf("worker %d: %v", w, stats.Workers[w].Err))
		}
	}
	for i := range ranges {
		if !d.done[i] {
			return fmt.Errorf("shard: ranges left unexecuted after worker failures: %s", strings.Join(errs, "; "))
		}
	}
	if len(errs) == len(stats.Workers) && len(errs) > 0 {
		return fmt.Errorf("shard: every worker failed: %s", strings.Join(errs, "; "))
	}
	return nil
}

// runWorker owns one worker process end to end: spawn, handshake, then
// a strict request/response loop until the dispatcher runs dry.
func (p *Pool) runWorker(jobPayload []byte, wantHash [32]byte, d *dispatcher, ranges []campaign.ShardRange,
	report func(idx int, res campaign.ShardResult, cpu int64, bytes int)) error {

	argv := p.opts.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("shard: resolving own binary: %w", err)
		}
		argv = []string{self}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(append(os.Environ(), p.opts.Env...), EnvWorker+"=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard: starting worker %q: %w", argv[0], err)
	}
	// Reap the process exactly once on every exit path; Kill on a
	// finished process is a no-op error we ignore. exec's copier
	// goroutine writes the stderr buffer until Wait returns, so anything
	// reading the buffer must reap first.
	var reapOnce sync.Once
	reap := func() {
		reapOnce.Do(func() {
			stdin.Close()
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	defer reap()
	fail := func(err error) error {
		reap()
		if stderr.Len() > 0 {
			return fmt.Errorf("%w (worker stderr: %s)", err, strings.TrimSpace(stderr.String()))
		}
		return err
	}

	bw := bufio.NewWriter(stdin)
	br := bufio.NewReaderSize(stdout, 1<<16)
	if err := writeFrame(bw, msgJob, jobPayload); err != nil {
		return fail(fmt.Errorf("shard: sending job: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		return fail(fmt.Errorf("shard: reading ready: %w", err))
	}
	switch typ {
	case msgError:
		return fmt.Errorf("shard: worker rejected job: %s", payload)
	case msgReady:
		if !bytes.Equal(payload, wantHash[:]) {
			return fmt.Errorf("shard: worker acknowledged a different job (hash mismatch — stale worker binary?)")
		}
	default:
		return fail(fmt.Errorf("shard: expected ready frame, got type %d", typ))
	}

	for {
		idx, _, ok := d.next()
		if !ok {
			writeFrame(bw, msgQuit, nil)
			bw.Flush()
			return nil
		}
		if err := writeFrame(bw, msgShard, encodeShard(ranges[idx])); err != nil {
			d.requeue(idx)
			return fail(fmt.Errorf("shard: assigning range %v: %w", ranges[idx], err))
		}
		if err := bw.Flush(); err != nil {
			d.requeue(idx)
			return fail(err)
		}
		typ, payload, err := readFrame(br)
		if err != nil {
			d.requeue(idx)
			return fail(fmt.Errorf("shard: reading result for %v: %w", ranges[idx], err))
		}
		switch typ {
		case msgResult:
			res, cpu, size, err := unmarshalResult(payload)
			if err != nil {
				d.requeue(idx)
				return fail(err)
			}
			if res.Range != ranges[idx] {
				d.requeue(idx)
				return fmt.Errorf("shard: worker answered range %v for assignment %v", res.Range, ranges[idx])
			}
			report(idx, res, cpu, size)
		case msgError:
			// A shard error is fatal for this worker; the range is
			// requeued for survivors. A deterministic failure therefore
			// surfaces as every worker dying with the same error (and the
			// unexecuted-ranges check firing) rather than a retry livelock.
			d.requeue(idx)
			return fmt.Errorf("shard: range %v failed in worker: %s", ranges[idx], payload)
		default:
			d.requeue(idx)
			return fail(fmt.Errorf("shard: unexpected frame type %d awaiting result", typ))
		}
	}
}
