// Package shard farms a fault-injection campaign's shards out to worker
// processes. The coordinator (Pool, a campaign.ShardExecutor) spawns
// workers running this same binary (see MaybeServeWorker), ships each
// one the campaign job — pristine module IR text plus the
// outcome-relevant spec knobs — over a length-framed stdin/stdout
// protocol, then deals shard ranges to whichever worker is idle,
// re-dealing straggler shards to idle workers near the end
// (work stealing; shards are deterministic, so the first completed
// result wins and duplicates are dropped). Per-run results travel back
// as a compact internal/reclog stream, and campaign.MergeShards
// reassembles exact Stats (DESIGN.md §13).
//
// The wire protocol is deliberately minimal: every message is one frame
//
//	[type: 1 byte][payload length: uvarint][payload]
//
// and the conversation is strictly coordinator-driven —
//
//	coordinator → worker:  job, then any number of shard assignments,
//	                       then quit
//	worker → coordinator:  ready (echoing the job hash), then exactly
//	                       one result or error per assignment
//
// so neither side ever needs to select between streams. Workers never
// touch campaign telemetry: counters for a sharded campaign are flushed
// once, by the coordinator, in campaign.RunSharded.
package shard

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"flowery/internal/campaign"
)

// Message types. The payload formats:
//
//	msgJob    JSON-encoded Job
//	msgReady  the 32-byte SHA-256 of the job payload, echoed back
//	msgShard  uvarint lo, uvarint hi (run range [lo, hi))
//	msgResult uvarint header length, JSON resultHeader, reclog stream
//	msgError  UTF-8 error text
//	msgQuit   empty
//	msgHello  JSON-encoded hello (socket transport only: proto + name)
//	msgPing   empty application-level heartbeat (socket transport only;
//	          either side may send one at any frame boundary, and every
//	          reader skips them)
const (
	msgJob byte = iota + 1
	msgReady
	msgShard
	msgResult
	msgError
	msgQuit
	msgHello
	msgPing
)

// ProtoVersion is the socket transport's handshake version. A worker
// whose hello carries a different version is rejected during the
// handshake with a one-line error instead of failing later with a
// frame-shape mismatch deep inside a campaign.
const ProtoVersion = 1

// maxFrame bounds a single frame's payload. Large enough for any
// module text or shard result this repo produces, small enough that a
// corrupted length prefix cannot trigger a giant allocation.
const maxFrame = 1 << 28

// allocChunk bounds how much readFrame allocates ahead of the bytes
// actually arriving, so a hostile or corrupt peer declaring a huge
// frame costs at most one chunk, not maxFrame, before the stream runs
// dry.
const allocChunk = 1 << 20

// Job is everything a worker needs to reproduce the coordinator's
// engines and execute shards of the campaign: the pristine
// (pre-lowering) module text plus the outcome-relevant campaign knobs.
// Scheduling-only and observation-only spec fields (Metrics, TraceSpan,
// Records) deliberately do not cross the process boundary.
type Job struct {
	// Module is the pristine module in IR text form (ir.Module.String).
	// The worker re-parses and re-derives engines exactly the way
	// pipeline.Compiled does, so outcomes are bit-identical; the
	// golden-run consensus check in campaign.MergeShards verifies that
	// on every merge.
	Module string
	// Layer is the execution layer: "ir" (interp on the module) or
	// "asm" (lower with GPRScratch, then machine).
	Layer string
	// GPRScratch is the backend register budget (asm layer only).
	GPRScratch int

	// Campaign spec, outcome-relevant subset plus in-process
	// parallelism.
	Runs      int
	Seed      int64
	MaxSteps  int64
	Workers   int
	Snapshots int
	Reference bool
}

// Spec renders the job's campaign spec (no telemetry, no record sink —
// records ship via the result stream).
func (j Job) Spec() campaign.Spec {
	return campaign.Spec{
		Runs:      j.Runs,
		Seed:      j.Seed,
		MaxSteps:  j.MaxSteps,
		Workers:   j.Workers,
		Snapshots: j.Snapshots,
		Reference: j.Reference,
	}
}

// LayerIR and LayerAsm are the Job.Layer values.
const (
	LayerIR  = "ir"
	LayerAsm = "asm"
)

// resultHeader is the JSON half of a msgResult payload; the per-run
// records follow as a reclog stream.
type resultHeader struct {
	Lo, Hi           int
	Counts           []int
	SDCByOrigin      []int
	GoldenDyn        int64
	GoldenInjectable int64
	SimulatedInstrs  int64
	SavedInstrs      int64
	SetupInstrs      int64
	// CPUNanos is the worker process's CPU time (user+system) consumed
	// since its previous result (the first result includes engine
	// construction, the golden run, and snapshot builds). Coordinators
	// use it for partition-balance accounting; it never affects
	// outcomes.
	CPUNanos int64
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.ByteReader) (typ byte, payload []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("shard: frame length after type %d: %w", typ, err)
	}
	if size > maxFrame {
		return 0, nil, fmt.Errorf("shard: frame of %d bytes exceeds limit", size)
	}
	br, ok := r.(io.Reader)
	if !ok {
		return 0, nil, fmt.Errorf("shard: frame source is not an io.Reader")
	}
	// Grow the buffer chunk by chunk as bytes actually arrive: a length
	// prefix the peer never backs with data cannot provoke a maxFrame
	// allocation.
	payload = make([]byte, 0, min64(size, allocChunk))
	for uint64(len(payload)) < size {
		chunk := min64(size-uint64(len(payload)), allocChunk)
		off := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, payload[off:]); err != nil {
			return 0, nil, fmt.Errorf("shard: frame body (%d of %d bytes): %w", off, size, err)
		}
	}
	return typ, payload, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// readFrameSkipPing reads the next non-heartbeat frame. Heartbeats may
// arrive at any frame boundary on the socket transport; every protocol
// reader treats them as pure liveness and moves on.
func readFrameSkipPing(r io.ByteReader) (byte, []byte, error) {
	for {
		typ, payload, err := readFrame(r)
		if err != nil || typ != msgPing {
			return typ, payload, err
		}
	}
}

func unmarshalJob(payload []byte, job *Job) error {
	if err := json.Unmarshal(payload, job); err != nil {
		return fmt.Errorf("shard: decoding job: %w", err)
	}
	return nil
}

// hello is the msgHello payload a socket worker sends as its first
// frame, regardless of which side dialed: the protocol version it
// speaks and the name it registers under (duplicate names are rejected
// so a fleet misconfiguration — two hosts launched with the same
// identity — surfaces at connect time).
type hello struct {
	Proto int
	Name  string
}

func encodeHello(h hello) []byte {
	b, err := json.Marshal(h)
	if err != nil {
		panic("shard: encoding hello: " + err.Error()) // two plain fields; cannot fail
	}
	return b
}

func decodeHello(payload []byte) (hello, error) {
	var h hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return hello{}, fmt.Errorf("shard: decoding hello: %w", err)
	}
	if h.Name == "" {
		return hello{}, fmt.Errorf("shard: hello carries no worker name")
	}
	return h, nil
}

// jobHash is the content hash both sides derive from the job payload;
// the worker echoes it in msgReady so the coordinator knows the worker
// parsed the same bytes it sent (guards against version skew between
// the coordinator binary and whatever Command launched).
func jobHash(payload []byte) [sha256.Size]byte {
	return sha256.Sum256(payload)
}

func encodeShard(rg campaign.ShardRange) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(rg.Lo))
	n += binary.PutUvarint(buf[n:], uint64(rg.Hi))
	return buf[:n]
}

func decodeShard(payload []byte) (campaign.ShardRange, error) {
	lo, n := binary.Uvarint(payload)
	if n <= 0 {
		return campaign.ShardRange{}, fmt.Errorf("shard: bad shard frame")
	}
	hi, m := binary.Uvarint(payload[n:])
	if m <= 0 || n+m != len(payload) {
		return campaign.ShardRange{}, fmt.Errorf("shard: bad shard frame")
	}
	return campaign.ShardRange{Lo: int(lo), Hi: int(hi)}, nil
}

// frameSink serializes whole frames onto one writer. The pipe transport
// has a single writer per direction and never contends; the socket
// transport shares the sink between the protocol loop and the heartbeat
// goroutine, and the mutex spans write+flush so a ping can never land
// inside another frame's bytes.
type frameSink struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func newFrameSink(w io.Writer) *frameSink {
	return &frameSink{bw: bufio.NewWriterSize(w, 1<<16)}
}

// send writes one frame and flushes it.
func (s *frameSink) send(typ byte, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFrame(s.bw, typ, payload); err != nil {
		return err
	}
	return s.bw.Flush()
}

func encodeResult(hdr resultHeader, reclogStream []byte) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(hj)))
	out := make([]byte, 0, n+len(hj)+len(reclogStream))
	out = append(out, lenBuf[:n]...)
	out = append(out, hj...)
	out = append(out, reclogStream...)
	return out, nil
}

func decodeResult(payload []byte) (resultHeader, []byte, error) {
	size, n := binary.Uvarint(payload)
	// The explicit maxFrame comparison keeps a 64-bit header length from
	// wrapping negative through the int cast and sailing past the bounds
	// check into a slice-bounds panic (found by FuzzShardFrame).
	if n <= 0 || size > maxFrame || int(size) > len(payload)-n {
		return resultHeader{}, nil, fmt.Errorf("shard: bad result frame")
	}
	var hdr resultHeader
	if err := json.Unmarshal(payload[n:n+int(size)], &hdr); err != nil {
		return resultHeader{}, nil, fmt.Errorf("shard: result header: %w", err)
	}
	return hdr, payload[n+int(size):], nil
}
