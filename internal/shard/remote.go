package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"flowery/internal/campaign"
	"flowery/internal/telemetry"
)

// This file is the socket transport: the same length-framed protocol
// the pipe Pool speaks over stdin/stdout, run over TCP between a
// coordinator (RemotePool) and workers on other machines (RunWorker,
// i.e. `flowery shard-worker -connect/-listen`), plus the robustness
// the pipe transport never needed — the pipe to a child process either
// works or EOFs, while a network peer can crash, hang, or go silent
// behind a partition. Concretely (DESIGN.md §17):
//
//   - hello handshake: the worker always speaks first (msgHello with
//     protocol version + registered name), so version skew and fleet
//     misconfiguration (duplicate names) surface as one-line errors at
//     connect time, before any campaign state exists;
//   - per-frame deadlines: every coordinator read carries a deadline
//     slice of the heartbeat interval, every write a bounded deadline;
//   - application-level heartbeats: workers ping while executing (and
//     while parked in a Hub), so a coordinator can tell "slow worker,
//     still alive" from "gone" — any byte of progress resets the miss
//     count, so a worker trickling a large result is never declared
//     dead while it is demonstrably streaming;
//   - bounded reconnect: dialed addresses are redialed with capped
//     exponential backoff plus deterministic jitter;
//   - automatic re-deal: shards assigned to a dead connection return to
//     the dispatcher queue. Shards are deterministic and the dispatcher
//     accepts only the first completion of a range, so re-execution —
//     whether from a steal, a redial, or a re-deal — is exact: merged
//     Stats are bit-identical to the single-process run no matter which
//     worker ran what, how often, or how it died.
//
// Faults in the fault-injection fleet itself are exercised the same way
// the fleet exercises target programs: chaos_test.go injects drops,
// delays, truncations, and SIGKILLs at scripted points and asserts the
// merged statistics never change.

// Remote transport defaults; every one is overridable via RemoteOpts /
// WorkerOpts (CLI: -heartbeat, -redials, and friends).
const (
	// DefaultHeartbeat is the worker ping interval and the coordinator's
	// per-read deadline slice.
	DefaultHeartbeat = 1 * time.Second
	// DefaultHeartbeatMiss is how many consecutive silent deadline
	// slices (no bytes, no ping) declare a connection dead.
	DefaultHeartbeatMiss = 3
	// DefaultRedials bounds reconnect attempts per address per outage.
	DefaultRedials = 5
	// DefaultBackoffBase and DefaultBackoffMax shape the reconnect
	// backoff schedule (see backoffDelay).
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// RemoteOpts configures a RemotePool. At least one worker source (Dial
// addresses, a Listen address, or a Hub) must be set.
type RemoteOpts struct {
	// Dial is the list of worker addresses (host:port) the coordinator
	// connects to — workers started with `flowery shard-worker -listen`.
	// Dialed addresses are redialed with backoff when the connection
	// dies, up to Redials attempts per outage.
	Dial []string
	// Listen, when non-empty, is a host:port (or host:0) the coordinator
	// listens on for workers dialing in with `-connect`. Accepted
	// workers are not redialed — the worker owns its reconnect loop.
	Listen string
	// Hub, when non-nil, supplies workers that pre-registered with a
	// daemon's worker listener (floweryd -shard-listen). The pool claims
	// parked workers as they become available and returns them to their
	// own reconnect loop (they re-register) when the job completes.
	Hub *Hub

	// Heartbeat is the liveness interval (0 = DefaultHeartbeat): the
	// coordinator reads in deadline slices of it, and declares a
	// connection dead after HeartbeatMiss consecutive slices without a
	// single byte of progress.
	Heartbeat time.Duration
	// HeartbeatMiss is the consecutive-silent-slice threshold
	// (0 = DefaultHeartbeatMiss).
	HeartbeatMiss int
	// Redials bounds reconnects per dialed address per outage
	// (0 = DefaultRedials; negative = no redials).
	Redials int
	// BackoffBase/BackoffMax shape the reconnect schedule
	// (0 = DefaultBackoffBase/DefaultBackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Stream, when non-nil, receives each accepted shard's raw reclog
	// bytes (exactly the stream the worker encoded) before the decoded
	// result is emitted. floweryd uses it to spill per-shard record
	// blobs into the persistent store incrementally instead of buffering
	// every record in memory; blobs are composed on merge
	// (service.composeReclog) into a byte stream identical to the
	// single-writer batch path.
	Stream func(rg campaign.ShardRange, reclog []byte)

	// Metrics, when non-nil, receives the transport counters
	// (shard_remote_connects_total, shard_remote_disconnects_total,
	// shard_remote_redials_total, shard_remote_heartbeats_missed_total,
	// shard_shards_redealt_total) plus the per-worker shard gauges and
	// the same pool counters the pipe transport emits.
	Metrics *telemetry.Registry

	// sleep, when non-nil, replaces the real backoff sleep (tests run a
	// fake clock through it). It returns false to abort the wait.
	sleep func(time.Duration) bool
	// dialTimeout overrides the connect timeout (tests).
	dialTimeout time.Duration
}

func (o RemoteOpts) withDefaults() RemoteOpts {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = DefaultHeartbeatMiss
	}
	if o.Redials == 0 {
		o.Redials = DefaultRedials
	}
	if o.Redials < 0 {
		o.Redials = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.dialTimeout <= 0 {
		o.dialTimeout = o.Heartbeat * time.Duration(o.HeartbeatMiss+1)
	}
	return o
}

// RemotePool is a campaign.ShardExecutor that farms shards to socket
// workers. Construct one per campaign with NewRemotePool; Execute is
// not reentrant.
type RemotePool struct {
	job  Job
	opts RemoteOpts

	mu    sync.Mutex
	stats PoolStats
}

// NewRemotePool builds a socket-transport pool for one campaign job
// (same Job contract as NewPool: campaign knobs are overwritten from
// the Spec at Execute time).
func NewRemotePool(job Job, opts RemoteOpts) *RemotePool {
	return &RemotePool{job: job, opts: opts.withDefaults()}
}

// Stats returns the statistics of the last Execute call, one
// WorkerStats per registered worker name (accumulated across that
// worker's reconnects), sorted by name.
func (p *RemotePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// errJobDone aborts a deadline-sliced read when the campaign completed
// while this connection was idle or awaiting a straggler duplicate; the
// serve loop treats it as a clean exit.
var errJobDone = errors.New("shard: job complete")

// errRejected marks a coordinator's one-line refusal of a worker
// (stale protocol, duplicate name, job complete).
var errRejected = errors.New("shard: coordinator rejected worker")

// terminalError marks a per-connection failure that redialing cannot
// fix (job rejected deterministically, hash mismatch, protocol skew);
// the dial loop gives the address up instead of burning its budget.
type terminalError struct{ err error }

func (t terminalError) Error() string { return t.err.Error() }
func (t terminalError) Unwrap() error { return t.err }

func terminal(err error) error  { return terminalError{err} }
func isTerminal(err error) bool { var t terminalError; return errors.As(err, &t) }

// remoteRun is the per-Execute state shared by every connection.
type remoteRun struct {
	pool    *RemotePool
	opts    RemoteOpts
	payload []byte
	hash    [32]byte
	d       *dispatcher
	ranges  []campaign.ShardRange
	emit    func(campaign.ShardResult)
	reg     *telemetry.Registry

	// stop closes at teardown (success or failure) so accept loops,
	// backoff sleeps, and hub claims unwind.
	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	names   map[string]bool         // currently connected worker names
	workers map[string]*WorkerStats // accumulated per name
	errs    []string                // terminal per-source failures
	emitMu  sync.Mutex
}

// Execute implements campaign.ShardExecutor over the socket transport.
func (p *RemotePool) Execute(spec campaign.Spec, ranges []campaign.ShardRange, emit func(campaign.ShardResult)) error {
	opts := p.opts
	if len(opts.Dial) == 0 && opts.Listen == "" && opts.Hub == nil {
		return fmt.Errorf("shard: remote pool has no worker source (dial list, listen address, or hub)")
	}
	job := p.job
	job.Runs = spec.Runs
	job.Seed = spec.Seed
	job.MaxSteps = spec.MaxSteps
	job.Workers = spec.Workers
	job.Snapshots = spec.Snapshots
	job.Reference = spec.Reference
	payload, err := json.Marshal(job)
	if err != nil {
		return fmt.Errorf("shard: encoding job: %w", err)
	}

	r := &remoteRun{
		pool:    p,
		opts:    opts,
		payload: payload,
		hash:    jobHash(payload),
		d:       newDispatcher(len(ranges)),
		ranges:  ranges,
		emit:    emit,
		reg:     opts.Metrics,
		stop:    make(chan struct{}),
		names:   make(map[string]bool),
		workers: make(map[string]*WorkerStats),
	}

	var connWG sync.WaitGroup // per-connection serve goroutines
	var srcWG sync.WaitGroup  // worker-source goroutines

	// mortal sources can run out (every dial budget exhausted); a
	// listener or hub is immortal — workers may always arrive later.
	mortalDone := make(chan struct{})
	immortal := opts.Listen != "" || opts.Hub != nil
	var mortals sync.WaitGroup
	for _, addr := range opts.Dial {
		addr := addr
		srcWG.Add(1)
		mortals.Add(1)
		go func() {
			defer srcWG.Done()
			defer mortals.Done()
			r.dialWorker(addr)
		}()
	}
	go func() {
		mortals.Wait()
		close(mortalDone)
	}()

	var ln net.Listener
	if opts.Listen != "" {
		ln, err = net.Listen("tcp", opts.Listen)
		if err != nil {
			r.shutdown()
			return fmt.Errorf("shard: remote listen: %w", err)
		}
		srcWG.Add(1)
		go func() {
			defer srcWG.Done()
			r.acceptWorkers(ln, &connWG)
		}()
	}
	if opts.Hub != nil {
		srcWG.Add(1)
		go func() {
			defer srcWG.Done()
			r.claimWorkers(opts.Hub, &connWG)
		}()
	}

	// Wait for completion, or for every mortal source to give up while
	// no immortal source can ever supply another worker.
	if immortal {
		<-r.d.allDone
	} else {
		select {
		case <-r.d.allDone:
		case <-mortalDone:
		}
	}
	r.shutdown()
	if ln != nil {
		ln.Close()
	}
	srcWG.Wait()
	connWG.Wait()

	stats := r.flushStats()
	p.mu.Lock()
	p.stats = stats
	p.mu.Unlock()

	r.d.mu.Lock()
	incomplete := r.d.remaining > 0
	r.d.mu.Unlock()
	if incomplete {
		return fmt.Errorf("shard: ranges left unexecuted after remote worker failures: %s",
			strings.Join(r.errs, "; "))
	}
	return nil
}

func (r *remoteRun) shutdown() { r.stopOnce.Do(func() { close(r.stop) }) }

func (r *remoteRun) done() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *remoteRun) recordErr(who string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errs = append(r.errs, fmt.Sprintf("%s: %v", who, err))
	if ws := r.workers[who]; ws != nil {
		ws.Err = err
	}
}

// addName registers a connected worker name; duplicates are refused so
// two hosts launched with the same identity surface at connect time.
func (r *remoteRun) addName(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		return false
	}
	r.names[name] = true
	if r.workers[name] == nil {
		r.workers[name] = &WorkerStats{Name: name}
	}
	return true
}

func (r *remoteRun) dropName(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.names, name)
}

func (r *remoteRun) flushStats() PoolStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.workers))
	for name := range r.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := PoolStats{Workers: make([]WorkerStats, 0, len(names))}
	for _, name := range names {
		stats.Workers = append(stats.Workers, *r.workers[name])
		r.reg.Gauge(workerGauge(name)).Set(float64(r.workers[name].Shards))
	}
	r.d.mu.Lock()
	stats.Steals = r.d.steals
	r.d.mu.Unlock()
	r.reg.Counter("shard_steals_total").Add(int64(stats.Steals))
	return stats
}

// workerGauge renders a per-worker metric name with a Prometheus label,
// which the registry's flat name→value rendering passes through as
// valid exposition text.
func workerGauge(name string) string {
	return fmt.Sprintf("shard_remote_worker_shards{worker=%q}", name)
}

// redeal requeues an assignment lost with its connection and counts it.
func (r *remoteRun) redeal(idx int) {
	if r.d.requeue(idx) {
		r.reg.Counter("shard_shards_redealt_total").Inc()
	}
}

// dialWorker owns one dialed address: connect, serve, and on connection
// death redial with capped exponential backoff until the job completes,
// the failure is terminal, or the redial budget runs out.
func (r *remoteRun) dialWorker(addr string) {
	redialsLeft := r.opts.Redials
	attempt := 0
	var lastErr error
	for {
		if r.done() {
			return
		}
		conn, err := net.DialTimeout("tcp", addr, r.opts.dialTimeout)
		if err == nil {
			r.reg.Counter("shard_remote_connects_total").Inc()
			name, serr := r.serveConn(conn, addr, "")
			if serr == nil {
				return // campaign complete (or refused post-completion)
			}
			r.reg.Counter("shard_remote_disconnects_total").Inc()
			who := addr
			if name != "" {
				who = name
			}
			if isTerminal(serr) {
				r.recordErr(who, serr)
				return
			}
			lastErr = serr
			// A completed handshake proves the address hosts a live,
			// version-matched worker: refresh the redial budget so the
			// bound applies per outage, not per campaign.
			if name != "" {
				redialsLeft = r.opts.Redials
			}
		} else {
			lastErr = err
		}
		if redialsLeft <= 0 {
			r.recordErr(addr, lastErr)
			return
		}
		redialsLeft--
		attempt++
		r.reg.Counter("shard_remote_redials_total").Inc()
		if !r.pause(backoffDelay(attempt, r.opts.BackoffBase, r.opts.BackoffMax, addr)) {
			return
		}
	}
}

// pause sleeps d, aborting early at teardown; reports whether the full
// wait elapsed.
func (r *remoteRun) pause(d time.Duration) bool {
	if r.opts.sleep != nil {
		return r.opts.sleep(d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stop:
		return false
	}
}

// acceptWorkers serves workers dialing in (-connect) until teardown
// closes the listener. Accepted workers are not redialed: reconnecting
// is the worker's job.
func (r *remoteRun) acceptWorkers(ln net.Listener, connWG *sync.WaitGroup) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed at teardown
		}
		r.reg.Counter("shard_remote_connects_total").Inc()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			name, serr := r.serveConn(conn, conn.RemoteAddr().String(), "")
			if serr != nil {
				r.reg.Counter("shard_remote_disconnects_total").Inc()
				who := conn.RemoteAddr().String()
				if name != "" {
					who = name
				}
				r.recordErr(who, serr)
			}
		}()
	}
}

// claimWorkers pulls registered workers from the hub as they become
// available until the campaign completes.
func (r *remoteRun) claimWorkers(hub *Hub, connWG *sync.WaitGroup) {
	for {
		w, ok := hub.take()
		if !ok {
			select {
			case <-r.stop:
				return
			case <-hub.arrived:
				continue
			case <-time.After(r.opts.Heartbeat):
				continue // poll fallback: arrivals can race the select
			}
		}
		r.reg.Counter("shard_remote_connects_total").Inc()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			name, serr := r.serveConn(w.conn, w.name, w.name)
			if serr != nil {
				r.reg.Counter("shard_remote_disconnects_total").Inc()
				who := w.name
				if name != "" {
					who = name
				}
				r.recordErr(who, serr)
			}
		}()
	}
}

// serveConn runs the coordinator half of the protocol on one socket:
// hello validation (unless the hub already performed it — helloName is
// then the pre-validated name), job + ready-hash handshake, then the
// same deal-until-dry loop as the pipe transport, with deadline-sliced
// reads and re-deal on death. Returns the worker's registered name (""
// if the connection died before hello) and nil on clean completion.
func (r *remoteRun) serveConn(conn net.Conn, src, helloName string) (string, error) {
	defer conn.Close()
	tc := &timedConn{
		conn:  conn,
		slice: r.opts.Heartbeat,
		limit: r.opts.HeartbeatMiss,
		done:  r.d.allDone,
		onMiss: func() {
			r.reg.Counter("shard_remote_heartbeats_missed_total").Inc()
		},
	}
	br := bufio.NewReaderSize(tc, 1<<16)
	sink := newFrameSink(&deadlineWriter{
		conn: conn,
		d:    r.opts.Heartbeat * time.Duration(r.opts.HeartbeatMiss+1),
	})

	name := helloName
	if name == "" {
		typ, payload, err := readFrameSkipPing(br)
		if err != nil {
			return "", fmt.Errorf("shard: reading hello from %s: %w", src, err)
		}
		if typ != msgHello {
			return "", terminal(fmt.Errorf("shard: %s sent frame type %d before hello", src, typ))
		}
		h, err := decodeHello(payload)
		if err != nil {
			sink.send(msgError, []byte(err.Error()))
			return "", terminal(err)
		}
		if h.Proto != ProtoVersion {
			msg := fmt.Sprintf("worker speaks protocol %d, coordinator %d — version skew", h.Proto, ProtoVersion)
			sink.send(msgError, []byte(msg))
			return "", terminal(fmt.Errorf("shard: %s: %s", src, msg))
		}
		name = h.Name
	}
	if !r.addName(name) {
		sink.send(msgError, []byte("duplicate worker name "+name))
		return "", terminal(fmt.Errorf("shard: duplicate worker name %q from %s", name, src))
	}
	defer r.dropName(name)

	if r.done() {
		// Worker connected after the campaign finished: one line, no
		// campaign state touched.
		sink.send(msgError, []byte("job complete"))
		return name, nil
	}

	if err := sink.send(msgJob, r.payload); err != nil {
		return name, fmt.Errorf("shard: sending job to %s: %w", name, err)
	}
	typ, payload, err := readFrameSkipPing(br)
	if err != nil {
		return name, fmt.Errorf("shard: reading ready from %s: %w", name, err)
	}
	switch typ {
	case msgError:
		return name, terminal(fmt.Errorf("shard: worker %s rejected job: %s", name, payload))
	case msgReady:
		if !bytes.Equal(payload, r.hash[:]) {
			return name, terminal(fmt.Errorf("shard: worker %s acknowledged a different job (hash mismatch — stale worker binary?)", name))
		}
	default:
		return name, fmt.Errorf("shard: expected ready frame from %s, got type %d", name, typ)
	}

	ws := func() *WorkerStats {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.workers[name]
	}()
	for {
		idx, _, ok := r.d.next()
		if !ok {
			sink.send(msgQuit, nil)
			return name, nil
		}
		if err := sink.send(msgShard, encodeShard(r.ranges[idx])); err != nil {
			r.redeal(idx)
			return name, fmt.Errorf("shard: assigning range %v to %s: %w", r.ranges[idx], name, err)
		}
		typ, payload, err := readFrameSkipPing(br)
		if err != nil {
			r.redeal(idx)
			if errors.Is(err, errJobDone) {
				// The range completed elsewhere while this straggler was
				// still executing it; let the worker go cleanly.
				return name, nil
			}
			return name, fmt.Errorf("shard: reading result for %v from %s: %w", r.ranges[idx], name, err)
		}
		switch typ {
		case msgResult:
			res, cpu, size, err := unmarshalResult(payload)
			if err != nil {
				r.redeal(idx)
				return name, err
			}
			if res.Range != r.ranges[idx] {
				r.redeal(idx)
				return name, fmt.Errorf("shard: worker %s answered range %v for assignment %v", name, res.Range, r.ranges[idx])
			}
			r.mu.Lock()
			ws.CPUNanos += cpu
			ws.ResultBytes += int64(size)
			r.mu.Unlock()
			if r.d.complete(idx) {
				r.mu.Lock()
				ws.Shards++
				r.mu.Unlock()
				r.reg.Counter("shard_shards_executed_total").Inc()
				r.reg.Counter("shard_result_bytes_total").Add(int64(size))
				if r.opts.Stream != nil {
					// Raw stream bytes, exactly as the worker encoded
					// them; the header re-decode is cheap next to the
					// stream itself.
					if _, stream, serr := decodeResult(payload); serr == nil {
						r.opts.Stream(res.Range, stream)
					}
				}
				r.emitMu.Lock()
				r.emit(res)
				r.emitMu.Unlock()
			} else {
				r.mu.Lock()
				ws.Duplicates++
				r.mu.Unlock()
				r.reg.Counter("shard_duplicate_results_total").Inc()
			}
		case msgError:
			// Same semantics as the pipe transport: a shard error is
			// fatal for this worker and not redialed — a deterministic
			// failure must not become a retry livelock.
			r.redeal(idx)
			return name, terminal(fmt.Errorf("shard: range %v failed in worker %s: %s", r.ranges[idx], name, payload))
		default:
			r.redeal(idx)
			return name, fmt.Errorf("shard: unexpected frame type %d from %s awaiting result", typ, name)
		}
	}
}

// timedConn slices every Read into heartbeat-interval deadlines. A
// slice that times out with zero bytes is a miss; `limit` consecutive
// misses declare the peer dead. Any byte of progress — a result
// trickling in, a heartbeat ping — resets the count, which is exactly
// what keeps a slow-but-alive worker streaming a large reclog result
// from being declared dead (regression-pinned in backoff_test.go).
type timedConn struct {
	conn   net.Conn
	slice  time.Duration
	limit  int
	misses int
	done   <-chan struct{} // campaign completion: reads abort cleanly
	onMiss func()
}

func (t *timedConn) Read(p []byte) (int, error) {
	for {
		if t.slice > 0 {
			t.conn.SetReadDeadline(time.Now().Add(t.slice))
		}
		n, err := t.conn.Read(p)
		if n > 0 {
			t.misses = 0
			return n, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if t.done != nil {
				select {
				case <-t.done:
					return 0, errJobDone
				default:
				}
			}
			t.misses++
			if t.onMiss != nil {
				t.onMiss()
			}
			if t.misses >= t.limit {
				return 0, fmt.Errorf("shard: peer silent for %d heartbeat intervals: %w", t.misses, err)
			}
			continue
		}
		if err == nil {
			err = io.ErrNoProgress
		}
		return 0, err
	}
}

// deadlineWriter bounds every write: a peer that stops draining its
// socket fails the send instead of wedging the sender forever.
type deadlineWriter struct {
	conn net.Conn
	d    time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.d))
	}
	return w.conn.Write(p)
}

// backoffDelay returns the pause before reconnect attempt n (1-based)
// to key: base·2^(n-1) plus deterministic jitter in [0, delay/2)
// derived from a splitmix64 of the key and attempt — reproducible
// (golden-pinned in backoff_test.go) yet decorrelated across
// addresses, so a fleet rebooting together does not redial in
// lockstep. The result is capped at max.
func backoffDelay(attempt int, base, max time.Duration, key string) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	var h uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	j := splitmix64(h ^ uint64(attempt))
	d += time.Duration(uint64(d/2) * (j >> 48) / (1 << 16))
	if d > max {
		d = max
	}
	return d
}

// splitmix64 is the standard finalizer (same constants campaign and
// section use for their derived seed streams).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WorkerOpts configures the worker side of the socket transport
// (`flowery shard-worker -connect/-listen`).
type WorkerOpts struct {
	// Connect is the coordinator (or floweryd -shard-listen hub) address
	// to dial. After each completed job the worker re-registers, so one
	// long-lived worker process serves many campaigns. Mutually
	// exclusive with Listen.
	Connect string
	// Listen is a host:port (or host:0) to serve coordinators on,
	// one connection at a time.
	Listen string
	// AddrFile, with Listen, receives the bound address once listening
	// (host:0 resolution for scripts — same contract as floweryd's
	// -addr-file).
	AddrFile string
	// Name is the identity registered in the hello (default
	// "<hostname>-<pid>"). Coordinators reject duplicate names.
	Name string
	// Heartbeat is the ping interval (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// Redials bounds reconnect attempts per outage in connect mode
	// (0 = DefaultRedials).
	Redials int
	// BackoffBase/BackoffMax shape the reconnect schedule.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Log receives one-line progress messages (nil = os.Stderr).
	Log io.Writer
}

func (o WorkerOpts) withDefaults() WorkerOpts {
	if o.Name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.Redials == 0 {
		o.Redials = DefaultRedials
	}
	if o.Redials < 0 {
		o.Redials = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}
	return o
}

// RunWorker runs a socket shard worker until its coordinator is done
// with it: in listen mode it serves connections until the process is
// killed; in connect mode it dials, serves, and re-registers after each
// job, exiting cleanly once it has served at least one job and the
// coordinator stops answering (or refuses it with "job complete").
func RunWorker(o WorkerOpts) error {
	o = o.withDefaults()
	switch {
	case o.Listen != "" && o.Connect != "":
		return fmt.Errorf("shard: worker cannot both listen and connect")
	case o.Listen != "":
		return listenWorker(o)
	case o.Connect != "":
		return connectWorker(o)
	default:
		return fmt.Errorf("shard: worker needs a -connect or -listen address")
	}
}

func listenWorker(o WorkerOpts) error {
	ln, err := net.Listen("tcp", o.Listen)
	if err != nil {
		return fmt.Errorf("shard: worker listen: %w", err)
	}
	defer ln.Close()
	if o.AddrFile != "" {
		if err := os.WriteFile(o.AddrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("shard: writing addr file: %w", err)
		}
	}
	fmt.Fprintf(o.Log, "shard worker %s listening on %s\n", o.Name, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := serveWorkerConn(conn, o.Name, o.Heartbeat); err != nil {
			fmt.Fprintf(o.Log, "shard worker %s: connection ended: %v\n", o.Name, err)
		}
	}
}

func connectWorker(o WorkerOpts) error {
	served := 0
	redialsLeft := o.Redials
	attempt := 0
	dialTimeout := o.Heartbeat * time.Duration(DefaultHeartbeatMiss+1)
	var lastErr error
	for {
		conn, err := net.DialTimeout("tcp", o.Connect, dialTimeout)
		if err == nil {
			redialsLeft = o.Redials // registered: budget is per outage
			attempt = 0
			err = serveWorkerConn(conn, o.Name, o.Heartbeat)
			if err == nil {
				served++
				continue // re-register for the next job
			}
			if errors.Is(err, errRejected) {
				if served > 0 {
					// "job complete" after a served campaign: normal exit.
					return nil
				}
				return err
			}
			lastErr = err
		} else {
			lastErr = err
		}
		if redialsLeft <= 0 {
			if served > 0 {
				return nil // coordinator gone after a served campaign
			}
			return fmt.Errorf("shard: worker %s giving up on %s: %w", o.Name, o.Connect, lastErr)
		}
		redialsLeft--
		attempt++
		time.Sleep(backoffDelay(attempt, o.BackoffBase, o.BackoffMax, o.Connect))
	}
}

// serveWorkerConn speaks the worker half on one socket: hello first,
// then the verbatim ServeWorker loop, with a heartbeat goroutine
// sharing the frame sink so the coordinator sees liveness while
// RunRange executes. A failed ping write closes the connection, which
// unblocks the serve loop's read — that is how a worker parked against
// a dead coordinator notices.
func serveWorkerConn(conn net.Conn, name string, heartbeat time.Duration) error {
	defer conn.Close()
	sink := newFrameSink(&deadlineWriter{
		conn: conn,
		d:    heartbeat * time.Duration(DefaultHeartbeatMiss+1),
	})
	if err := sink.send(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: name})); err != nil {
		return fmt.Errorf("shard: sending hello: %w", err)
	}
	stop := make(chan struct{})
	var pingWG sync.WaitGroup
	pingWG.Add(1)
	go func() {
		defer pingWG.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := sink.send(msgPing, nil); err != nil {
					conn.Close()
					return
				}
			}
		}
	}()
	err := serveFrames(bufio.NewReaderSize(conn, 1<<16), sink)
	close(stop)
	pingWG.Wait()
	return err
}
