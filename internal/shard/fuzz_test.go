package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"flowery/internal/campaign"
)

// FuzzShardFrame throws arbitrary bytes at every decoder on the wire
// path. Two properties must hold for any input: no decoder panics, and
// a frame reader never hands back more payload than the input actually
// carried — the chunked-allocation guard in readFrame, which keeps a
// lying length prefix from provoking a maxFrame allocation the peer
// never backs with data. The committed corpus under
// testdata/fuzz/FuzzShardFrame pins the historical crash vector: a
// result frame whose header-length uvarint decodes above maxFrame once
// wrapped negative through an int cast and panicked decodeResult with a
// slice bound.
func FuzzShardFrame(f *testing.F) {
	seed := func(typ byte, payload []byte) {
		var buf bytes.Buffer
		writeFrame(&buf, typ, payload)
		f.Add(buf.Bytes())
	}
	seed(msgJob, []byte(`{"Module":"module m","Layer":"ir","Runs":4}`))
	seed(msgShard, encodeShard(campaign.ShardRange{Lo: 3, Hi: 9}))
	seed(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: "w"}))
	if res, err := encodeResult(resultHeader{Lo: 0, Hi: 0}, nil); err == nil {
		seed(msgResult, res)
	}
	seed(msgPing, nil)
	// The crash vector: header length 1<<62 inside a result payload.
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], 1<<62)
	seed(msgResult, append(huge[:n:n], 0xff))
	// A frame declaring far more payload than follows.
	f.Add([]byte{msgResult, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			if len(payload) > len(data) {
				t.Fatalf("frame yielded %d payload bytes from %d input bytes", len(payload), len(data))
			}
			switch typ {
			case msgJob:
				var job Job
				unmarshalJob(payload, &job)
			case msgShard:
				decodeShard(payload)
			case msgHello:
				decodeHello(payload)
			case msgResult:
				unmarshalResult(payload)
			}
		}
		// The sub-decoders also see raw payloads (hub registration, the
		// worker's shard loop); they must reject garbage without
		// panicking regardless of framing.
		decodeResult(data)
		decodeShard(data)
		decodeHello(data)
	})
}
