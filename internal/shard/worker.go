package shard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"syscall"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/campaign"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/reclog"
	"flowery/internal/sim"
)

// EnvWorker marks a process as a shard worker. The coordinator sets it
// when spawning; MaybeServeWorker checks it at main() entry so any
// flowery binary can double as its own worker without argv gymnastics.
const EnvWorker = "FLOWERY_SHARD_WORKER"

// EnvWorkerConnect turns the process into a socket shard worker dialing
// the given coordinator address (the env-var twin of
// `flowery shard-worker -connect`). Chaos tests use it to spawn a real
// worker process they can SIGKILL mid-campaign.
const EnvWorkerConnect = "FLOWERY_SHARD_WORKER_CONNECT"

// EnvChaosExitAfter is a fault-injection hook for the fault-injection
// fleet itself: when set to n > 0, the worker process exits abruptly
// (no quit handshake, no conn teardown — SIGKILL semantics) right after
// sending its n-th result. The chaos CI smoke uses it to kill one
// worker mid-campaign deterministically and assert the coordinator
// re-deals its shards without perturbing the merged statistics.
const EnvChaosExitAfter = "FLOWERY_SHARD_CHAOS_EXIT_AFTER"

// MaybeServeWorker turns the current process into a shard worker when
// EnvWorker (pipe transport on stdin/stdout) or EnvWorkerConnect
// (socket transport, dialing a coordinator) is set, and exits when the
// coordinator hangs up; otherwise it returns immediately. Call it first
// thing in main() (and in TestMain for packages whose test binary
// doubles as the worker Command).
func MaybeServeWorker() {
	if addr := os.Getenv(EnvWorkerConnect); addr != "" {
		if err := RunWorker(WorkerOpts{Connect: addr}); err != nil {
			fmt.Fprintln(os.Stderr, "flowery shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv(EnvWorker) == "" {
		return
	}
	if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowery shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeWorker runs the worker half of the protocol: read one job, build
// the engines, then execute shard assignments until msgQuit or EOF.
// Errors while executing a shard are reported to the coordinator as
// msgError frames (the coordinator re-deals the shard elsewhere);
// protocol-level errors tear the worker down. The socket transport
// reuses this loop verbatim over a net.Conn (see RunWorker), with a
// heartbeat goroutine sharing the frame sink.
func ServeWorker(r io.Reader, w io.Writer) error {
	return serveFrames(bufio.NewReaderSize(r, 1<<16), newFrameSink(w))
}

func serveFrames(br *bufio.Reader, sink *frameSink) error {
	chaosAfter, _ := strconv.Atoi(os.Getenv(EnvChaosExitAfter))

	typ, payload, err := readFrameSkipPing(br)
	if err != nil {
		return fmt.Errorf("reading job: %w", err)
	}
	if typ == msgError {
		// Socket coordinators refuse a worker with one line (stale
		// protocol, duplicate name, job already complete) instead of a job.
		return fmt.Errorf("%w: %s", errRejected, payload)
	}
	if typ != msgJob {
		return fmt.Errorf("expected job frame, got type %d", typ)
	}
	hash := jobHash(payload)

	runner, err := buildRunner(payload)
	if err != nil {
		// Report the build failure instead of dying silently: the
		// coordinator surfaces it with context.
		sink.send(msgError, []byte(err.Error()))
		return err
	}
	defer runner.Close()

	if err := sink.send(msgReady, hash[:]); err != nil {
		return fmt.Errorf("sending ready: %w", err)
	}

	setupDone := false
	results := 0
	lastCPU := cpuNanos()
	for {
		typ, payload, err := readFrameSkipPing(br)
		if err == io.EOF {
			return nil // coordinator hung up; treat as quit
		}
		if err != nil {
			return fmt.Errorf("reading assignment: %w", err)
		}
		switch typ {
		case msgQuit:
			return nil
		case msgShard:
			rg, err := decodeShard(payload)
			if err != nil {
				return err
			}
			res, err := runner.RunRange(rg)
			if err != nil {
				if werr := sink.send(msgError, []byte(err.Error())); werr != nil {
					return werr
				}
				continue
			}
			if !setupDone {
				res.SetupInstrs = runner.SetupInstrs()
				setupDone = true
			}
			cpu := cpuNanos()
			frame, err := marshalResult(res, cpu-lastCPU)
			lastCPU = cpu
			if err != nil {
				return err
			}
			if err := sink.send(msgResult, frame); err != nil {
				return err
			}
			results++
			if chaosAfter > 0 && results >= chaosAfter {
				os.Exit(3) // scripted abrupt death; see EnvChaosExitAfter
			}
		default:
			return fmt.Errorf("unexpected frame type %d", typ)
		}
	}
}

// buildRunner reconstructs the coordinator's engines from the job: the
// same parse → (lower →) assign-addresses derivation pipeline.Compiled
// performs on its side of the fence, so run outcomes match bit for bit
// (ir print/parse round-trip stability is what makes the text form a
// faithful transport; MergeShards' golden consensus check guards it at
// every merge).
func buildRunner(payload []byte) (*campaign.ShardRunner, error) {
	var job Job
	if err := unmarshalJob(payload, &job); err != nil {
		return nil, err
	}
	m, err := ir.Parse(job.Module)
	if err != nil {
		return nil, fmt.Errorf("shard: parsing job module: %w", err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("shard: job module invalid: %w", err)
	}
	var factory campaign.EngineFactory
	switch job.Layer {
	case LayerIR:
		m.AssignAddresses()
		factory = func() (sim.Engine, error) { return interp.New(m), nil }
	case LayerAsm:
		prog, err := backend.LowerCfg(m, backend.Config{GPRScratch: job.GPRScratch})
		if err != nil {
			return nil, fmt.Errorf("shard: lowering job module: %w", err)
		}
		m.AssignAddresses()
		factory = func() (sim.Engine, error) { return machine.New(m, prog) }
	default:
		return nil, fmt.Errorf("shard: unknown layer %q", job.Layer)
	}
	return campaign.NewShardRunner(factory, job.Spec())
}

// marshalResult renders a ShardResult as a msgResult payload: JSON
// header plus the shard's records as a reclog stream.
func marshalResult(res campaign.ShardResult, cpu int64) ([]byte, error) {
	var stream bytes.Buffer
	rw := reclog.NewWriter(&stream)
	for _, rec := range res.Records {
		if err := rw.Write(reclog.Record{
			Run:     int64(rec.Run),
			Outcome: uint8(rec.Outcome),
			Origin:  uint8(rec.Origin),
			Target:  rec.Target,
			Bit:     rec.Bit,
		}); err != nil {
			return nil, fmt.Errorf("shard: encoding record for run %d: %w", rec.Run, err)
		}
	}
	if err := rw.Close(); err != nil {
		return nil, err
	}
	hdr := resultHeader{
		Lo:               res.Range.Lo,
		Hi:               res.Range.Hi,
		Counts:           res.Counts[:],
		SDCByOrigin:      res.SDCByOrigin[:],
		GoldenDyn:        res.GoldenDyn,
		GoldenInjectable: res.GoldenInjectable,
		SimulatedInstrs:  res.SimulatedInstrs,
		SavedInstrs:      res.SavedInstrs,
		SetupInstrs:      res.SetupInstrs,
		CPUNanos:         cpu,
	}
	return encodeResult(hdr, stream.Bytes())
}

// unmarshalResult is marshalResult's inverse, rebuilding the
// campaign.ShardResult the coordinator merges.
func unmarshalResult(payload []byte) (campaign.ShardResult, int64, int, error) {
	hdr, stream, err := decodeResult(payload)
	if err != nil {
		return campaign.ShardResult{}, 0, 0, err
	}
	res := campaign.ShardResult{
		Range:            campaign.ShardRange{Lo: hdr.Lo, Hi: hdr.Hi},
		GoldenDyn:        hdr.GoldenDyn,
		GoldenInjectable: hdr.GoldenInjectable,
		SimulatedInstrs:  hdr.SimulatedInstrs,
		SavedInstrs:      hdr.SavedInstrs,
		SetupInstrs:      hdr.SetupInstrs,
	}
	if len(hdr.Counts) != len(res.Counts) || len(hdr.SDCByOrigin) != len(res.SDCByOrigin) {
		return campaign.ShardResult{}, 0, 0, fmt.Errorf("shard: result header shape mismatch (worker version skew?)")
	}
	copy(res.Counts[:], hdr.Counts)
	copy(res.SDCByOrigin[:], hdr.SDCByOrigin)

	recs, err := reclog.ReadAll(bytes.NewReader(stream))
	if err != nil {
		return campaign.ShardResult{}, 0, 0, fmt.Errorf("shard: result record stream: %w", err)
	}
	if len(recs) != hdr.Hi-hdr.Lo {
		return campaign.ShardResult{}, 0, 0, fmt.Errorf("shard: result carries %d records for %d runs", len(recs), hdr.Hi-hdr.Lo)
	}
	res.Records = make([]campaign.Record, len(recs))
	for i, rec := range recs {
		if rec.Run != int64(hdr.Lo+i) {
			return campaign.ShardResult{}, 0, 0, fmt.Errorf("shard: record %d has run %d, want %d", i, rec.Run, hdr.Lo+i)
		}
		if int(rec.Outcome) >= int(campaign.NumOutcomes) || int(rec.Origin) >= asm.NumOrigins {
			return campaign.ShardResult{}, 0, 0, fmt.Errorf("shard: record %d has out-of-range outcome/origin (%d/%d)", i, rec.Outcome, rec.Origin)
		}
		res.Records[i] = campaign.Record{
			Run:     int(rec.Run),
			Outcome: campaign.Outcome(rec.Outcome),
			Origin:  asm.Origin(rec.Origin),
			Target:  rec.Target,
			Bit:     rec.Bit,
		}
	}
	return res, hdr.CPUNanos, len(payload), nil
}

// cpuNanos returns this process's consumed CPU time (user + system).
// It feeds the coordinator's partition-balance accounting only; it
// never influences outcomes.
func cpuNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
