package shard

import (
	"bytes"
	"os"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

// TestMain lets this test binary double as the worker process: the pool
// re-executes os.Executable() with EnvWorker set, and MaybeServeWorker
// diverts that invocation into the protocol loop before any test runs.
func TestMain(m *testing.M) {
	MaybeServeWorker()
	os.Exit(m.Run())
}

// testModule returns a real registered benchmark: exercising the pool
// against the same programs the experiments shard is what makes the
// print → parse → re-lower transport a tested path rather than a hope.
func testModule(t *testing.T, name string) *ir.Module {
	t.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("benchmark %q not registered", name)
	}
	m := bm.Build()
	m.AssignAddresses()
	return m
}

// asmFactory mirrors pipeline.Compiled: clone, lower, assign, machine.
func asmFactory(t *testing.T, pristine *ir.Module, gpr int) campaign.EngineFactory {
	t.Helper()
	m := ir.CloneModule(pristine)
	prog, err := backend.LowerCfg(m, backend.Config{GPRScratch: gpr})
	if err != nil {
		t.Fatal(err)
	}
	m.AssignAddresses()
	return func() (sim.Engine, error) { return machine.New(m, prog) }
}

func poolFor(t *testing.T, pristine *ir.Module, layer string, gpr, procs int, reg *telemetry.Registry) *Pool {
	t.Helper()
	return NewPool(Job{Module: pristine.String(), Layer: layer, GPRScratch: gpr},
		PoolOpts{Procs: procs, Metrics: reg})
}

func sameOutcomes(t *testing.T, tag string, a, b campaign.Stats) {
	t.Helper()
	if a.Runs != b.Runs || a.Counts != b.Counts || a.SDCByOrigin != b.SDCByOrigin ||
		a.GoldenDyn != b.GoldenDyn || a.GoldenInjectable != b.GoldenInjectable {
		t.Fatalf("%s: outcome drift:\n%+v\nvs\n%+v", tag, a, b)
	}
}

// TestPoolMatchesRunAsm is the core bit-identity gate: a campaign
// farmed to worker processes over the wire must reproduce single-process
// campaign.Run exactly, at the asm layer (module text → re-lower on the
// worker side) across several process/shard shapes.
func TestPoolMatchesRunAsm(t *testing.T) {
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 160, Seed: 42, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ procs, shards int }{{1, 1}, {1, 4}, {2, 4}, {3, 8}} {
		pool := poolFor(t, pristine, LayerAsm, 0, shape.procs, nil)
		st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: shape.shards, Exec: pool})
		if err != nil {
			t.Fatalf("procs=%d shards=%d: %v", shape.procs, shape.shards, err)
		}
		sameOutcomes(t, "asm pool", single, st)
		ps := pool.Stats()
		if got := len(ps.Workers); got != min(shape.procs, shape.shards) {
			t.Fatalf("procs=%d shards=%d: %d workers spawned", shape.procs, shape.shards, got)
		}
		if ps.CriticalPathCPU() <= 0 {
			t.Fatalf("procs=%d: no CPU accounting", shape.procs)
		}
	}
}

// TestPoolMatchesRunIR covers the interpreter layer and the record
// stream: every run's record must arrive once, in order, identical to
// the in-process stream.
func TestPoolMatchesRunIR(t *testing.T) {
	pristine := testModule(t, "susan")
	irFactory := func() (sim.Engine, error) { return interp.New(pristine), nil }

	var want []campaign.Record
	spec := campaign.Spec{Runs: 90, Seed: 9, Workers: 1}
	wantSpec := spec
	wantSpec.Records = func(r campaign.Record) { want = append(want, r) }
	single, err := campaign.Run(irFactory, wantSpec)
	if err != nil {
		t.Fatal(err)
	}

	var got []campaign.Record
	gotSpec := spec
	gotSpec.Records = func(r campaign.Record) { got = append(got, r) }
	pool := poolFor(t, pristine, LayerIR, 0, 2, nil)
	st, err := campaign.RunSharded(nil, gotSpec, campaign.ShardOpts{Shards: 5, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "ir pool", single, st)
	if len(got) != len(want) {
		t.Fatalf("records: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestPoolTelemetry pins the coordinator-side counters and — the
// satellite regression — that campaign counters are flushed exactly
// once even though workers executed the runs out of process.
func TestPoolTelemetry(t *testing.T) {
	pristine := testModule(t, "crc32")
	reg := telemetry.New()
	spec := campaign.Spec{Runs: 80, Seed: 4, Workers: 1, Metrics: reg}
	pool := poolFor(t, pristine, LayerAsm, 0, 2, reg)
	st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 4, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign_runs_total").Value(); got != int64(spec.Runs) {
		t.Fatalf("campaign_runs_total = %d, want %d", got, spec.Runs)
	}
	var merged int
	for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
		merged += st.Counts[o]
	}
	if merged != spec.Runs {
		t.Fatalf("merged counts tally %d of %d runs", merged, spec.Runs)
	}
	if got := reg.Counter("shard_shards_executed_total").Value(); got != 4 {
		t.Fatalf("shard_shards_executed_total = %d, want 4", got)
	}
	if reg.Counter("shard_workers_spawned_total").Value() != 2 {
		t.Fatal("worker spawn counter missing")
	}
	if reg.Counter("shard_result_bytes_total").Value() <= 0 {
		t.Fatal("result byte counter missing")
	}
	// WorkerStats count every result sent (including dropped duplicates
	// of stolen shards); the counter tallies accepted results only.
	if ps := pool.Stats(); ps.TotalResultBytes() < reg.Counter("shard_result_bytes_total").Value() {
		t.Fatalf("result byte accounting mismatch: %d < %d", ps.TotalResultBytes(), reg.Counter("shard_result_bytes_total").Value())
	}
}

// TestWorkerRejectsGarbage: a coordinator speaking nonsense must get a
// clean error, not a hung or crashed worker.
func TestWorkerRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	in := bytes.NewBuffer(nil)
	writeFrame(in, msgJob, []byte("{not json"))
	if err := ServeWorker(in, &out); err == nil {
		t.Fatal("garbage job accepted")
	}
	in.Reset()
	out.Reset()
	writeFrame(in, msgShard, encodeShard(campaign.ShardRange{Lo: 0, Hi: 1}))
	if err := ServeWorker(in, &out); err == nil {
		t.Fatal("shard before job accepted")
	}
}

// TestPoolBadCommand: a worker binary that isn't a flowery worker (here:
// /bin/false dies instantly) must surface as an error, not a hang.
func TestPoolBadCommand(t *testing.T) {
	pristine := testModule(t, "crc32")
	pool := NewPool(Job{Module: pristine.String(), Layer: LayerAsm},
		PoolOpts{Procs: 2, Command: []string{"/bin/false"}})
	_, err := campaign.RunSharded(nil, campaign.Spec{Runs: 20, Seed: 1}, campaign.ShardOpts{Shards: 2, Exec: pool})
	if err == nil {
		t.Fatal("dead worker command succeeded")
	}
}

// TestJobRoundTrip pins the wire encodings themselves.
func TestJobRoundTrip(t *testing.T) {
	rg, err := decodeShard(encodeShard(campaign.ShardRange{Lo: 7, Hi: 300}))
	if err != nil || rg != (campaign.ShardRange{Lo: 7, Hi: 300}) {
		t.Fatalf("shard round trip: %v %v", rg, err)
	}
	if _, err := decodeShard([]byte{0x80}); err == nil {
		t.Fatal("truncated shard frame accepted")
	}
	res := campaign.ShardResult{
		Range:            campaign.ShardRange{Lo: 2, Hi: 4},
		GoldenDyn:        10,
		GoldenInjectable: 8,
		Records: []campaign.Record{
			{Run: 2, Outcome: campaign.OutcomeBenign, Target: 3, Bit: 5},
			{Run: 3, Outcome: campaign.OutcomeSDC, Target: 7, Bit: 1},
		},
	}
	res.Counts[campaign.OutcomeBenign] = 1
	res.Counts[campaign.OutcomeSDC] = 1
	res.SDCByOrigin[0] = 1
	frame, err := marshalResult(res, 12345)
	if err != nil {
		t.Fatal(err)
	}
	back, cpu, size, err := unmarshalResult(frame)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != 12345 || size != len(frame) {
		t.Fatalf("cpu/size: %d %d", cpu, size)
	}
	if back.Range != res.Range || back.Counts != res.Counts || len(back.Records) != 2 ||
		back.Records[1] != res.Records[1] {
		t.Fatalf("result round trip: %+v", back)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
