package shard

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flowery/internal/campaign"
	"flowery/internal/interp"
	"flowery/internal/reclog"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

// testHeartbeat keeps transport liveness at millisecond scale so
// failure paths resolve quickly; the generous miss budget in
// testRemoteOpts is what keeps loaded CI machines from false-positive
// death verdicts.
const testHeartbeat = 50 * time.Millisecond

func testRemoteOpts() RemoteOpts {
	return RemoteOpts{
		Heartbeat:     testHeartbeat,
		HeartbeatMiss: 10,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
	}
}

// checkGoroutines pins teardown hygiene: every transport goroutine —
// serve loops, pingers, accept loops, hub parkers — must be gone
// shortly after the test body finishes. Register it before any other
// cleanup so it runs last.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// startWorker runs an in-process listen-mode worker: each accepted
// connection speaks the worker half exactly as
// `flowery shard-worker -listen` would. Returns the dial address.
func startWorker(t *testing.T, name string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveWorkerConn(conn, name, testHeartbeat)
			}()
		}
	}()
	return ln.Addr().String()
}

// fakeWorker runs fn on the first accepted connection — a scripted
// stand-in for a worker with one specific defect.
func fakeWorker(t *testing.T, fn func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	return ln.Addr().String()
}

// freeAddr reserves and releases an ephemeral port; the tiny window
// before the real listener binds it is acceptable in a test harness.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func remotePoolFor(t *testing.T, pristine fmt.Stringer, layer string, opts RemoteOpts) *RemotePool {
	t.Helper()
	return NewRemotePool(Job{Module: pristine.String(), Layer: layer}, opts)
}

// TestRemoteDialMatchesRun is the socket twin of TestPoolMatchesRunAsm:
// a campaign dealt to two TCP workers must merge to Stats bit-identical
// to single-process campaign.Run, with every shard accounted to a named
// worker and the transport counters consistent.
func TestRemoteDialMatchesRun(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 160, Seed: 42, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	opts := testRemoteOpts()
	opts.Dial = []string{startWorker(t, "alpha"), startWorker(t, "beta")}
	opts.Metrics = reg
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 8, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "remote dial", single, st)

	ps := pool.Stats()
	if len(ps.Workers) != 2 || ps.Workers[0].Name != "alpha" || ps.Workers[1].Name != "beta" {
		t.Fatalf("worker stats: %+v", ps.Workers)
	}
	shards := 0
	for _, w := range ps.Workers {
		shards += w.Shards
		if w.Err != nil {
			t.Fatalf("worker %s: %v", w.Name, w.Err)
		}
		if w.CPUNanos <= 0 {
			t.Fatalf("worker %s: no CPU accounting", w.Name)
		}
	}
	if shards != 8 {
		t.Fatalf("accepted shards %d, want 8", shards)
	}
	if got := reg.Counter("shard_remote_connects_total").Value(); got != 2 {
		t.Fatalf("shard_remote_connects_total = %d, want 2", got)
	}
	if got := reg.Counter("shard_shards_executed_total").Value(); got != 8 {
		t.Fatalf("shard_shards_executed_total = %d, want 8", got)
	}
	if got := reg.Counter("shard_shards_redealt_total").Value(); got != 0 {
		t.Fatalf("%d re-deals on a healthy run", got)
	}
	if got := reg.Gauge(workerGauge("alpha")).Value() + reg.Gauge(workerGauge("beta")).Value(); got != 8 {
		t.Fatalf("per-worker gauges tally %g shards, want 8", got)
	}
}

// TestRemoteRecordsAndStream covers the IR layer, the per-run record
// path, and the Stream hook: every accepted shard's raw reclog bytes
// must arrive exactly once and decode to that range's records.
func TestRemoteRecordsAndStream(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "susan")
	irFactory := func() (sim.Engine, error) { return interp.New(pristine), nil }

	var want []campaign.Record
	spec := campaign.Spec{Runs: 90, Seed: 9, Workers: 1}
	wantSpec := spec
	wantSpec.Records = func(r campaign.Record) { want = append(want, r) }
	single, err := campaign.Run(irFactory, wantSpec)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	blobs := map[campaign.ShardRange][]byte{}
	opts := testRemoteOpts()
	opts.Dial = []string{startWorker(t, "w1"), startWorker(t, "w2")}
	opts.Stream = func(rg campaign.ShardRange, stream []byte) {
		mu.Lock()
		blobs[rg] = append([]byte(nil), stream...)
		mu.Unlock()
	}
	var got []campaign.Record
	gotSpec := spec
	gotSpec.Records = func(r campaign.Record) { got = append(got, r) }
	pool := remotePoolFor(t, pristine, LayerIR, opts)
	st, err := campaign.RunSharded(nil, gotSpec, campaign.ShardOpts{Shards: 5, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "remote records", single, st)
	if len(got) != len(want) {
		t.Fatalf("records: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if len(blobs) != 5 {
		t.Fatalf("streamed %d shard blobs, want 5", len(blobs))
	}
	for rg, stream := range blobs {
		recs, err := reclog.ReadAll(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("blob %v: %v", rg, err)
		}
		if len(recs) != rg.Hi-rg.Lo || int(recs[0].Run) != rg.Lo {
			t.Fatalf("blob %v carries %d records starting at run %d", rg, len(recs), recs[0].Run)
		}
	}
}

// TestRemoteListenMode reverses the dial direction: the coordinator
// listens, two real RunWorker loops connect, and both must exit cleanly
// (nil error) once the campaign quits them and the listener goes away.
func TestRemoteListenMode(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 120, Seed: 7, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	opts := testRemoteOpts()
	opts.Listen = addr
	pool := remotePoolFor(t, pristine, LayerAsm, opts)

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerErrs[i] = RunWorker(WorkerOpts{
				Connect:     addr,
				Name:        fmt.Sprintf("conn-%d", i),
				Heartbeat:   testHeartbeat,
				Redials:     50,
				BackoffBase: time.Millisecond,
				BackoffMax:  5 * time.Millisecond,
				Log:         io.Discard,
			})
		}()
	}
	st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 6, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "remote listen", single, st)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d exited with %v", i, werr)
		}
	}
}

// TestRemoteHubMode runs the floweryd topology: workers pre-register
// with a Hub, the campaign claims them, and they re-register once quit
// so the next campaign finds them parked again.
func TestRemoteHubMode(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	spec := campaign.Spec{Runs: 120, Seed: 3, Workers: 1}
	single, err := campaign.Run(asmFactory(t, pristine, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(ln, HubOpts{Heartbeat: testHeartbeat, HeartbeatMiss: 10})
	var wg sync.WaitGroup
	t.Cleanup(func() { hub.Close(); wg.Wait() })
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunWorker(WorkerOpts{
				Connect:     hub.Addr().String(),
				Name:        fmt.Sprintf("hub-%d", i),
				Heartbeat:   testHeartbeat,
				Redials:     50,
				BackoffBase: time.Millisecond,
				BackoffMax:  5 * time.Millisecond,
				Log:         io.Discard,
			})
		}()
	}
	waitParked := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for hub.Workers() < n {
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d workers parked", hub.Workers(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitParked(2)

	opts := testRemoteOpts()
	opts.Hub = hub
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: 6, Exec: pool})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcomes(t, "remote hub", single, st)
	// Quit workers re-dial the hub and park for the next campaign.
	waitParked(2)
}

// TestRemoteRejectsWrongJobHash: a worker acknowledging a different job
// than the coordinator sent (version skew between binaries) must fail
// the handshake terminally — no redial burns the budget on it.
func TestRemoteRejectsWrongJobHash(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	reg := telemetry.New()
	opts := testRemoteOpts()
	opts.Metrics = reg
	opts.Dial = []string{fakeWorker(t, func(conn net.Conn) {
		sink := newFrameSink(conn)
		sink.send(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: "stale"}))
		br := bufio.NewReaderSize(conn, 1<<16)
		if typ, _, err := readFrameSkipPing(br); err != nil || typ != msgJob {
			return
		}
		var wrong [32]byte
		sink.send(msgReady, wrong[:])
	})}
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	_, err := campaign.RunSharded(nil, campaign.Spec{Runs: 20, Seed: 1}, campaign.ShardOpts{Shards: 2, Exec: pool})
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("err = %v, want hash mismatch", err)
	}
	if got := reg.Counter("shard_remote_redials_total").Value(); got != 0 {
		t.Fatalf("terminal handshake failure redialed %d times", got)
	}
}

// TestRemoteRejectsStaleProto: protocol version skew surfaces at
// connect time as a one-line terminal error on both ends.
func TestRemoteRejectsStaleProto(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	reg := telemetry.New()
	opts := testRemoteOpts()
	opts.Metrics = reg
	opts.Dial = []string{fakeWorker(t, func(conn net.Conn) {
		newFrameSink(conn).send(msgHello, encodeHello(hello{Proto: ProtoVersion + 1, Name: "future"}))
		// Read the refusal so the coordinator's send cannot block.
		readFrameSkipPing(bufio.NewReader(conn))
	})}
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	_, err := campaign.RunSharded(nil, campaign.Spec{Runs: 20, Seed: 1}, campaign.ShardOpts{Shards: 2, Exec: pool})
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("err = %v, want version skew", err)
	}
	if got := reg.Counter("shard_remote_redials_total").Value(); got != 0 {
		t.Fatalf("terminal handshake failure redialed %d times", got)
	}
}

// TestRemoteDuplicateNameRefused: two workers claiming the same
// identity is a fleet misconfiguration; the second must be turned away
// while the first is connected. Scripted for determinism: A holds its
// slot until B has been refused.
func TestRemoteDuplicateNameRefused(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	reg := telemetry.New()
	bGo := make(chan struct{})
	bRefused := make(chan struct{})

	opts := testRemoteOpts()
	opts.Metrics = reg
	opts.Dial = []string{
		fakeWorker(t, func(conn net.Conn) { // A: registers first, holds the name
			sink := newFrameSink(conn)
			sink.send(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: "twin"}))
			br := bufio.NewReaderSize(conn, 1<<16)
			typ, _, err := readFrameSkipPing(br)
			if err != nil || typ != msgJob {
				t.Errorf("worker A: expected job, got type %d err %v", typ, err)
				return
			}
			close(bGo) // the coordinator has registered "twin"
			<-bRefused // keep the slot until B was turned away
			sink.send(msgError, []byte("scripted failure"))
		}),
		fakeWorker(t, func(conn net.Conn) { // B: same name, must be refused
			<-bGo
			sink := newFrameSink(conn)
			sink.send(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: "twin"}))
			typ, payload, err := readFrameSkipPing(bufio.NewReader(conn))
			if err != nil || typ != msgError || !strings.Contains(string(payload), "duplicate worker name") {
				t.Errorf("worker B: got type %d payload %q err %v, want duplicate refusal", typ, payload, err)
			}
			close(bRefused)
		}),
	}
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	_, err := campaign.RunSharded(nil, campaign.Spec{Runs: 20, Seed: 1}, campaign.ShardOpts{Shards: 2, Exec: pool})
	if err == nil || !strings.Contains(err.Error(), "duplicate worker name") {
		t.Fatalf("err = %v, want duplicate worker name", err)
	}
}

// TestRemoteLateWorkerTurnedAway pins the post-completion path: a
// worker connecting after the last shard merged gets a one-line
// "job complete" refusal, no campaign state is touched, and serveConn
// reports a clean (nil) exit so no error noise is recorded.
func TestRemoteLateWorkerTurnedAway(t *testing.T) {
	checkGoroutines(t)
	r := &remoteRun{
		opts:    testRemoteOpts().withDefaults(),
		d:       newDispatcher(0), // zero shards: allDone from the start
		stop:    make(chan struct{}),
		names:   make(map[string]bool),
		workers: make(map[string]*WorkerStats),
	}
	r.shutdown()
	coord, worker := net.Pipe()
	defer worker.Close()
	done := make(chan error, 1)
	go func() {
		sink := newFrameSink(worker)
		if err := sink.send(msgHello, encodeHello(hello{Proto: ProtoVersion, Name: "late"})); err != nil {
			done <- err
			return
		}
		typ, payload, err := readFrameSkipPing(bufio.NewReader(worker))
		if err != nil {
			done <- err
			return
		}
		if typ != msgError || !strings.Contains(string(payload), "job complete") {
			done <- fmt.Errorf("late worker got frame %d %q, want job-complete refusal", typ, payload)
			return
		}
		done <- nil
	}()
	name, err := r.serveConn(coord, "pipe", "")
	if err != nil || name != "late" {
		t.Fatalf("serveConn: name %q err %v, want clean late-worker exit", name, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerRejectedBeforeServing pins the worker-side half of the
// refusal handshake: a refusal before any job was served is an error
// (errRejected), not a silent exit — a fleet misconfiguration must be
// visible in the worker's own exit status.
func TestWorkerRejectedBeforeServing(t *testing.T) {
	checkGoroutines(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() { // fake coordinator: read hello, refuse
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrameSkipPing(bufio.NewReaderSize(conn, 1<<16))
		newFrameSink(conn).send(msgError, []byte("job complete"))
	}()
	err = RunWorker(WorkerOpts{
		Connect:     ln.Addr().String(),
		Name:        "late",
		Heartbeat:   testHeartbeat,
		Redials:     -1,
		BackoffBase: time.Millisecond,
		BackoffMax:  time.Millisecond,
		Log:         io.Discard,
	})
	if err == nil || !errors.Is(err, errRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}
