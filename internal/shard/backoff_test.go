package shard

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flowery/internal/campaign"
	"flowery/internal/telemetry"
)

// TestBackoffScheduleGolden pins the exact reconnect schedule: capped
// exponential doubling plus deterministic per-address jitter. Any
// change to the constants or the jitter derivation must show up here as
// a deliberate golden update, not silent fleet-behavior drift.
func TestBackoffScheduleGolden(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	want := []time.Duration{
		101242065, 202723693, 485916137, 1118719482,
		1904943847, 4579956054, 5000000000, 5000000000,
	}
	for i, w := range want {
		if got := backoffDelay(i+1, base, max, "10.0.0.1:9000"); got != w {
			t.Errorf("attempt %d: %v, want %v", i+1, got, w)
		}
	}
	// A different address gets a different (but equally deterministic)
	// jitter stream, so a fleet rebooting together does not redial in
	// lockstep.
	want2 := []time.Duration{144704437, 219799804, 529000854}
	for i, w := range want2 {
		if got := backoffDelay(i+1, base, max, "10.0.0.2:9000"); got != w {
			t.Errorf("attempt %d (addr 2): %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffProperties bounds the schedule for arbitrary attempts:
// jitter only ever adds, never more than half the undithered delay, and
// the cap holds everywhere.
func TestBackoffProperties(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for n := 1; n <= 12; n++ {
		d := backoffDelay(n, base, max, "key")
		floor := base
		for i := 1; i < n && floor < max; i++ {
			floor *= 2
		}
		if floor > max {
			floor = max
		}
		ceil := floor + floor/2
		if ceil > max {
			ceil = max
		}
		if d < floor || d > ceil {
			t.Errorf("attempt %d: %v outside [%v, %v]", n, d, floor, ceil)
		}
		if again := backoffDelay(n, base, max, "key"); again != d {
			t.Errorf("attempt %d: nondeterministic (%v then %v)", n, d, again)
		}
	}
	if backoffDelay(0, base, max, "key") != backoffDelay(1, base, max, "key") {
		t.Error("attempt 0 not clamped to the first-attempt delay")
	}
}

// TestDialBackoffWithFakeClock replaces the backoff sleep with a fake
// clock and pins the exact waits a dead address produces: one
// backoffDelay per redial, then surrender with the address's error. No
// real time passes.
func TestDialBackoffWithFakeClock(t *testing.T) {
	checkGoroutines(t)
	pristine := testModule(t, "crc32")
	dead := freeAddr(t) // nothing listens here: every dial is refused
	var mu sync.Mutex
	var slept []time.Duration
	reg := telemetry.New()
	opts := testRemoteOpts()
	opts.Dial = []string{dead}
	opts.Redials = 3
	opts.BackoffBase = 100 * time.Millisecond
	opts.BackoffMax = 5 * time.Second
	opts.Metrics = reg
	opts.sleep = func(d time.Duration) bool {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return true
	}
	pool := remotePoolFor(t, pristine, LayerAsm, opts)
	_, err := campaign.RunSharded(nil, campaign.Spec{Runs: 20, Seed: 1}, campaign.ShardOpts{Shards: 2, Exec: pool})
	if err == nil {
		t.Fatal("campaign succeeded with no live worker")
	}
	want := []time.Duration{
		backoffDelay(1, opts.BackoffBase, opts.BackoffMax, dead),
		backoffDelay(2, opts.BackoffBase, opts.BackoffMax, dead),
		backoffDelay(3, opts.BackoffBase, opts.BackoffMax, dead),
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %d backoff waits", slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("wait %d: %v, want %v", i, slept[i], want[i])
		}
	}
	if got := reg.Counter("shard_remote_redials_total").Value(); got != 3 {
		t.Fatalf("shard_remote_redials_total = %d, want 3", got)
	}
}

// TestHeartbeatMissThreshold: a peer writing nothing for the full miss
// budget is declared dead, with every silent slice counted.
func TestHeartbeatMissThreshold(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	misses := 0
	tc := &timedConn{conn: a, slice: 5 * time.Millisecond, limit: 3, onMiss: func() { misses++ }}
	buf := make([]byte, 8)
	if _, err := tc.Read(buf); err == nil || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("err = %v, want silence verdict", err)
	}
	if misses != 3 {
		t.Fatalf("counted %d misses, want 3", misses)
	}
}

// TestSlowButAliveSurvives is the regression the miss-reset exists for:
// a worker trickling bytes slower than the death threshold's total span
// — but never a full budget of consecutive silent slices — must not be
// declared dead while it is demonstrably streaming.
func TestSlowButAliveSurvives(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	const slice = 50 * time.Millisecond
	const total = 8
	tc := &timedConn{conn: a, slice: slice, limit: 3} // death at 150ms of silence
	go func() {
		defer b.Close()
		for i := 0; i < total; i++ {
			if _, err := b.Write([]byte{byte(i)}); err != nil {
				return
			}
			time.Sleep(20 * time.Millisecond) // 160ms span > the 150ms threshold
		}
	}()
	got := 0
	buf := make([]byte, 4)
	for {
		n, err := tc.Read(buf)
		got += n
		if err != nil {
			if got < total {
				t.Fatalf("declared dead after %d of %d bytes: %v", got, total, err)
			}
			break
		}
	}
}

// TestTimedConnJobDone: once the campaign completes, a parked read
// resolves to errJobDone within one slice instead of waiting out the
// full miss budget.
func TestTimedConnJobDone(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan struct{})
	close(done)
	tc := &timedConn{conn: a, slice: 5 * time.Millisecond, limit: 1000, done: done}
	if _, err := tc.Read(make([]byte, 1)); !errors.Is(err, errJobDone) {
		t.Fatalf("err = %v, want errJobDone", err)
	}
}

// TestDeadlineWriterUnwedges: a peer that stops draining its socket
// fails the write within the deadline instead of wedging the sender.
func TestDeadlineWriterUnwedges(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	dw := &deadlineWriter{conn: a, d: 10 * time.Millisecond}
	start := time.Now()
	_, err := dw.Write(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want write timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("write deadline did not bound the stall")
	}
}
