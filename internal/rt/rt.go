// Package rt implements the runtime functions (printing and math
// intrinsics) shared by the IR interpreter and the assembly simulator.
// Keeping one implementation guarantees the two execution layers produce
// byte-identical output for fault-free runs, which the differential tests
// rely on and which makes cross-layer SDC comparison meaningful.
package rt

import (
	"math"
	"strconv"
)

// Func identifies a runtime function. The zero value means "not a
// runtime function".
type Func uint8

const (
	FuncNone Func = iota
	FuncPrintI64
	FuncPrintF64
	FuncPrintChar
	FuncCheckFail
	FuncSqrt
	FuncFabs
	FuncSin
	FuncCos
	FuncExp
	FuncLog
	FuncPow
	FuncFloor
)

// ByName maps runtime function names to their identifiers.
var ByName = map[string]Func{
	"print_i64":  FuncPrintI64,
	"print_f64":  FuncPrintF64,
	"print_char": FuncPrintChar,
	"check_fail": FuncCheckFail,
	"sqrt":       FuncSqrt,
	"fabs":       FuncFabs,
	"sin":        FuncSin,
	"cos":        FuncCos,
	"exp":        FuncExp,
	"log":        FuncLog,
	"pow":        FuncPow,
	"floor":      FuncFloor,
}

// IsPrint reports whether f writes to the program output.
func (f Func) IsPrint() bool {
	return f == FuncPrintI64 || f == FuncPrintF64 || f == FuncPrintChar
}

// Math1 evaluates a one-argument math intrinsic.
func Math1(f Func, x float64) float64 {
	switch f {
	case FuncSqrt:
		return math.Sqrt(x)
	case FuncFabs:
		return math.Abs(x)
	case FuncSin:
		return math.Sin(x)
	case FuncCos:
		return math.Cos(x)
	case FuncExp:
		return math.Exp(x)
	case FuncLog:
		return math.Log(x)
	case FuncFloor:
		return math.Floor(x)
	default:
		panic("rt: not a unary math function")
	}
}

// Math2 evaluates a two-argument math intrinsic.
func Math2(f Func, x, y float64) float64 {
	switch f {
	case FuncPow:
		return math.Pow(x, y)
	default:
		panic("rt: not a binary math function")
	}
}

// AppendI64 appends the decimal representation of v and a newline,
// the output format of print_i64.
func AppendI64(dst []byte, v int64) []byte {
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\n')
}

// AppendF64 appends the formatted representation of v and a newline,
// the output format of print_f64. Ten significant digits keeps the
// output sensitive to genuine data corruption while remaining stable
// across execution layers (both layers use exactly this function).
func AppendF64(dst []byte, v float64) []byte {
	dst = strconv.AppendFloat(dst, v, 'g', 10, 64)
	return append(dst, '\n')
}

// AppendChar appends the single byte of print_char.
func AppendChar(dst []byte, c byte) []byte {
	return append(dst, c)
}

// MaxOutput caps program output; exceeding it aborts the run as a DUE
// (a fault that sends a print loop wild would otherwise never terminate).
const MaxOutput = 1 << 20

// FpToSI converts a float to a signed integer of the given bit width with
// x86 cvttsd2si semantics: truncation toward zero; NaN and out-of-range
// inputs yield the "integer indefinite" value (the minimum integer of the
// width). Both execution layers use this single implementation so their
// results agree bit-for-bit.
func FpToSI(width int, f float64) int64 {
	var lo int64
	switch width {
	case 8:
		lo = math.MinInt8
	case 32:
		lo = math.MinInt32
	default:
		lo = math.MinInt64
	}
	// The exclusive upper bound 2^(width-1) is exactly representable.
	hi := math.Ldexp(1, width-1)
	if math.IsNaN(f) || f < float64(lo) || f >= hi {
		return lo
	}
	return int64(f)
}
