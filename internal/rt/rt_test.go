package rt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFpToSITruncation(t *testing.T) {
	cases := []struct {
		width int
		f     float64
		want  int64
	}{
		{64, 2.9, 2},
		{64, -2.9, -2},
		{64, 0, 0},
		{32, 2147483646.5, 2147483646},
		{32, 2147483648.0, math.MinInt32},  // overflow → indefinite
		{32, -2147483649.0, math.MinInt32}, // underflow → indefinite
		{64, math.NaN(), math.MinInt64},
		{64, math.Inf(1), math.MinInt64},
		{64, math.Inf(-1), math.MinInt64},
		{64, 9.3e18, math.MinInt64}, // just past MaxInt64
		{64, -9.223372036854775e18, -9223372036854774784},
		{8, 127, 127},
		{8, 128, math.MinInt8},
		{8, -129, math.MinInt8},
	}
	for _, c := range cases {
		if got := FpToSI(c.width, c.f); got != c.want {
			t.Errorf("FpToSI(%d, %v) = %d, want %d", c.width, c.f, got, c.want)
		}
	}
}

// Property: in-range conversions truncate toward zero, exactly like
// int64() on the same float.
func TestFpToSIInRangeProperty(t *testing.T) {
	check := func(f float64) bool {
		if math.IsNaN(f) || f < math.MinInt32 || f >= math.MaxInt32 {
			return true
		}
		return FpToSI(32, f) == int64(f) && FpToSI(64, f) == int64(f)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendFormats(t *testing.T) {
	if got := string(AppendI64(nil, -42)); got != "-42\n" {
		t.Errorf("AppendI64 = %q", got)
	}
	if got := string(AppendF64(nil, 0.5)); got != "0.5\n" {
		t.Errorf("AppendF64 = %q", got)
	}
	if got := string(AppendF64(nil, math.NaN())); got != "NaN\n" {
		t.Errorf("AppendF64(NaN) = %q", got)
	}
	if got := string(AppendChar(nil, 'x')); got != "x" {
		t.Errorf("AppendChar = %q", got)
	}
	// Ten significant digits, stable formatting.
	if got := string(AppendF64(nil, 1.0/3.0)); got != "0.3333333333\n" {
		t.Errorf("AppendF64(1/3) = %q", got)
	}
}

func TestMathDispatch(t *testing.T) {
	if Math1(FuncSqrt, 9) != 3 {
		t.Error("sqrt broken")
	}
	if Math1(FuncFabs, -2) != 2 {
		t.Error("fabs broken")
	}
	if Math1(FuncFloor, 2.7) != 2 {
		t.Error("floor broken")
	}
	if Math2(FuncPow, 2, 10) != 1024 {
		t.Error("pow broken")
	}
}

func TestByNameCoversDeclaredFunctions(t *testing.T) {
	for _, name := range []string{"print_i64", "print_f64", "print_char", "check_fail",
		"sqrt", "fabs", "sin", "cos", "exp", "log", "pow", "floor"} {
		if _, ok := ByName[name]; !ok {
			t.Errorf("runtime function %q missing from ByName", name)
		}
	}
	if _, ok := ByName["nonexistent"]; ok {
		t.Error("ByName contains junk")
	}
}

func TestIsPrint(t *testing.T) {
	if !FuncPrintI64.IsPrint() || !FuncPrintF64.IsPrint() || !FuncPrintChar.IsPrint() {
		t.Error("print functions misclassified")
	}
	if FuncSqrt.IsPrint() || FuncCheckFail.IsPrint() {
		t.Error("non-print functions misclassified")
	}
}
