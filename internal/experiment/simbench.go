// Engine-throughput benchmark: measures what the predecoded fast cores
// buy. For each benchmark × layer it measures raw golden-run throughput
// (instrs/sec) under the reference loop and under the fast core, then
// runs the same fault-injection campaign twice — reference (Reference:
// true) and fast — verifies the outcome statistics are bit-identical,
// and reports the wall-time speedup end to end.

package experiment

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// SimPerf is one reference-vs-fast-core measurement.
type SimPerf struct {
	Benchmark string `json:"benchmark"`
	Layer     string `json:"layer"` // "ir" or "asm"
	Runs      int    `json:"runs"`

	// Golden-run engine throughput, dynamic instructions per second.
	RefInstrsPerSec  float64 `json:"ref_instrs_per_sec"`
	FastInstrsPerSec float64 `json:"fast_instrs_per_sec"`
	// EngineSpeedup is FastInstrsPerSec / RefInstrsPerSec.
	EngineSpeedup float64 `json:"engine_speedup"`

	// End-to-end campaign wall time under each core (snapshots off, so
	// every injected run executes from scratch on the core under test).
	RefCampaignSec  float64 `json:"ref_campaign_sec"`
	FastCampaignSec float64 `json:"fast_campaign_sec"`
	// CampaignSpeedup is RefCampaignSec / FastCampaignSec.
	CampaignSpeedup float64 `json:"campaign_speedup"`
}

// simBenchReps is how many throughput samples each core takes; the
// median sample wins (see throughput).
const simBenchReps = 9

// simBenchSample is the minimum wall time of one throughput sample; a
// sample loops whole golden runs until it crosses this, so benchmarks
// with sub-millisecond runs still produce stable rates and each core
// reaches steady state within its sample.
const simBenchSample = 25 * time.Millisecond

// RunSimBench measures one benchmark at both layers. It fails if the two
// cores disagree on any campaign outcome count — the bit-identical
// contract the fast cores are built on, re-verified on the exact
// configurations being reported.
func RunSimBench(bm bench.Benchmark, cfg Config) ([]SimPerf, error) {
	cfg = cfg.withDefaults()
	m := bm.Build()
	prog, err := backend.Lower(m)
	if err != nil {
		return nil, err
	}
	layers := []struct {
		name    string
		factory campaign.EngineFactory
	}{
		{"ir", func() (sim.Engine, error) { return interp.New(m), nil }},
		{"asm", func() (sim.Engine, error) { return machine.New(m, prog) }},
	}
	var out []SimPerf
	for _, l := range layers {
		p, err := measureSimPerf(bm.Name, l.name, l.factory, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// throughput times golden runs under both cores and returns dynamic
// instructions per second for each. One untimed warmup run per core pays
// the one-time costs (the machine engine predecodes its micro-op array on
// the first fast run); the timed reps then alternate ref/fast so clock
// drift and thermal throttling hit both cores equally instead of
// whichever happened to be sampled second.
func throughput(eng sim.Engine) (ref, fast float64, err error) {
	refOpts := sim.Options{Reference: true}
	fastOpts := sim.Options{}
	warm := eng.Run(sim.Fault{}, refOpts)
	if warm.Status != sim.StatusOK {
		return 0, 0, fmt.Errorf("golden run failed: %v (%v)", warm.Status, warm.Trap)
	}
	eng.Run(sim.Fault{}, fastOpts)

	// sample loops whole golden runs until the sample is long enough to
	// time, and returns the observed rate.
	sample := func(opts sim.Options) float64 {
		start := time.Now()
		var instrs int64
		for time.Since(start) < simBenchSample {
			instrs += eng.Run(sim.Fault{}, opts).DynInstrs
		}
		if s := time.Since(start).Seconds(); s > 0 {
			return float64(instrs) / s
		}
		return 0
	}
	// Median sample wins: robust against samples perturbed by outside
	// interference (scheduler preemption, co-tenant load, boost-clock
	// windows) in either direction, and both cores get the same
	// treatment. Samples alternate ref/fast so slow drift cancels too.
	refSamples := make([]float64, 0, simBenchReps)
	fastSamples := make([]float64, 0, simBenchReps)
	for i := 0; i < simBenchReps; i++ {
		refSamples = append(refSamples, sample(refOpts))
		fastSamples = append(fastSamples, sample(fastOpts))
	}
	ref, fast = median(refSamples), median(fastSamples)
	if ref == 0 || fast == 0 {
		return 0, 0, fmt.Errorf("throughput sample too short to time")
	}
	return ref, fast, nil
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func measureSimPerf(name, layer string, f campaign.EngineFactory, cfg Config) (SimPerf, error) {
	eng, err := f()
	if err != nil {
		return SimPerf{}, err
	}
	refIPS, fastIPS, err := throughput(eng)
	if err != nil {
		return SimPerf{}, fmt.Errorf("simbench %s/%s: %w", name, layer, err)
	}

	// Campaigns with snapshots off so the cores run every injection from
	// scratch; Reference is the only difference between the two specs.
	base := campaign.Spec{
		Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers,
		Snapshots: campaign.SnapshotsOff,
	}
	refSpec := base
	refSpec.Reference = true
	refStats, err := campaign.Run(f, refSpec)
	if err != nil {
		return SimPerf{}, err
	}
	fastStats, err := campaign.Run(f, base)
	if err != nil {
		return SimPerf{}, err
	}
	if refStats.Counts != fastStats.Counts || refStats.SDCByOrigin != fastStats.SDCByOrigin ||
		refStats.GoldenDyn != fastStats.GoldenDyn || refStats.GoldenInjectable != fastStats.GoldenInjectable {
		return SimPerf{}, fmt.Errorf("simbench %s/%s: fast core perturbed outcomes: %v vs %v",
			name, layer, refStats.Counts, fastStats.Counts)
	}

	p := SimPerf{
		Benchmark:        name,
		Layer:            layer,
		Runs:             cfg.Runs,
		RefInstrsPerSec:  refIPS,
		FastInstrsPerSec: fastIPS,
		RefCampaignSec:   refStats.Elapsed.Seconds(),
		FastCampaignSec:  fastStats.Elapsed.Seconds(),
	}
	if refIPS > 0 {
		p.EngineSpeedup = fastIPS / refIPS
	}
	if p.FastCampaignSec > 0 {
		p.CampaignSpeedup = p.RefCampaignSec / p.FastCampaignSec
	}
	return p, nil
}

// SimBench renders the measurements as a table.
func SimBench(perfs []SimPerf) string {
	var sb strings.Builder
	sb.WriteString("Engine throughput: reference loop vs predecoded fast core\n")
	sb.WriteString(fmt.Sprintf("%-12s %-5s %8s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "layer", "runs", "ref MI/s", "fast MI/s", "speedup", "ref camp", "fast camp", "speedup"))
	for _, p := range perfs {
		sb.WriteString(fmt.Sprintf("%-12s %-5s %8d %12.1f %12.1f %7.2fx %9.2fs %9.2fs %7.2fx\n",
			p.Benchmark, p.Layer, p.Runs,
			p.RefInstrsPerSec/1e6, p.FastInstrsPerSec/1e6, p.EngineSpeedup,
			p.RefCampaignSec, p.FastCampaignSec, p.CampaignSpeedup))
	}
	return sb.String()
}

// SimBenchJSON marshals the measurements (the BENCH_4.json artifact).
func SimBenchJSON(perfs []SimPerf, cfg Config) ([]byte, error) {
	doc := struct {
		Runs    int       `json:"runs"`
		Seed    int64     `json:"seed"`
		Results []SimPerf `json:"results"`
	}{cfg.Runs, cfg.Seed, perfs}
	return json.MarshalIndent(doc, "", "  ")
}
