package experiment

import (
	"reflect"
	"strings"
	"testing"

	"flowery/internal/bench"
	"flowery/internal/pipeline"
)

func TestWithDefaultsPreservesExplicitFields(t *testing.T) {
	got := Config{Seed: 99, Workers: 3}.withDefaults()
	def := DefaultConfig()
	if got.Runs != def.Runs || got.ProfileSamples != def.ProfileSamples {
		t.Fatalf("scale fields not defaulted: %+v", got)
	}
	if got.Seed != 99 || got.Workers != 3 {
		t.Fatalf("explicit Seed/Workers discarded: %+v", got)
	}
	full := Config{Runs: 10, ProfileSamples: 20, Seed: 1, Workers: 2}
	if !reflect.DeepEqual(full.withDefaults(), full) {
		t.Fatalf("fully-specified config changed: %+v", full.withDefaults())
	}
}

// zeroElapsed clears the only wall-clock field a rendered artifact can
// contain (PassTime prints FloweryStats.Elapsed), so two runs of the
// same study render byte-identically.
func zeroElapsed(results []*BenchResult) {
	for _, r := range results {
		r.FloweryStats.Elapsed = 0
	}
}

// TestStudyMatchesSerialReference is the pipeline's equivalence
// guarantee end to end: with a fixed seed, every artifact rendered from
// Study results is byte-identical to the same artifact rendered from the
// serial pre-pipeline path.
func TestStudyMatchesSerialReference(t *testing.T) {
	names := []string{"fft2", "lud"}

	serial, err := RunAllSerial(names, smallCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	study := NewStudy(smallCfg)
	piped, err := study.Results(names, nil)
	if err != nil {
		t.Fatal(err)
	}
	zeroElapsed(serial)
	zeroElapsed(piped)

	for _, c := range []struct {
		name   string
		render func([]*BenchResult) string
	}{
		{"table1", Table1}, {"fig2", Figure2}, {"fig3", Figure3},
		{"fig17", Figure17}, {"overhead", Overhead}, {"passtime", PassTime},
	} {
		want := c.render(serial)
		got := c.render(piped)
		if got != want {
			t.Errorf("%s differs between serial and pipeline paths:\n--- serial\n%s\n--- pipeline\n%s",
				c.name, want, got)
		}
	}
}

// TestStudyAblationMatchesLegacy checks the ablation experiment renders
// identically through the pipeline.
func TestStudyAblationMatchesLegacy(t *testing.T) {
	bm, _ := bench.ByName("lud")
	legacy, err := RunAblation(bm, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := NewStudy(smallCfg).Ablation(bm)
	if err != nil {
		t.Fatal(err)
	}
	want := Ablation([]*AblationResult{legacy})
	got := Ablation([]*AblationResult{piped})
	if got != want {
		t.Fatalf("ablation differs:\n--- legacy\n%s\n--- pipeline\n%s", want, got)
	}
}

// TestStudyConvergenceMatchesLegacy checks the convergence sweep renders
// identically through the pipeline.
func TestStudyConvergenceMatchesLegacy(t *testing.T) {
	bm, _ := bench.ByName("fft2")
	legacy, err := RunConvergence(bm, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := NewStudy(smallCfg).Convergence(bm)
	if err != nil {
		t.Fatal(err)
	}
	want := Convergence([]*ConvergenceResult{legacy})
	got := Convergence([]*ConvergenceResult{piped})
	if got != want {
		t.Fatalf("convergence differs:\n--- legacy\n%s\n--- pipeline\n%s", want, got)
	}
}

// TestStudyPressureMatchesLegacy checks the register-pressure sweep
// renders identically through the pipeline.
func TestStudyPressureMatchesLegacy(t *testing.T) {
	bm, _ := bench.ByName("crc32")
	cfg := smallCfg
	cfg.Runs = 80 // 5-point sweep × 2 campaigns; keep it cheap
	legacy, err := RunPressure(bm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := NewStudy(cfg).Pressure(bm)
	if err != nil {
		t.Fatal(err)
	}
	want := Pressure([]*PressureResult{legacy})
	got := Pressure([]*PressureResult{piped})
	if got != want {
		t.Fatalf("pressure differs:\n--- legacy\n%s\n--- pipeline\n%s", want, got)
	}
}

// TestStudyRunsEachCampaignOnce is the exactly-once guarantee the issue
// asks for: after a full study plus a re-render plus the ablation that
// shares its artifacts, the campaign stage has executed one computation
// per distinct (benchmark, variant, level, layer) and every repeat was
// a cache hit.
func TestStudyRunsEachCampaignOnce(t *testing.T) {
	names := []string{"crc32"}
	study := NewStudy(smallCfg)
	if _, err := study.Results(names, nil); err != nil {
		t.Fatal(err)
	}

	// 9 variants (raw + 4 levels × {ID, Flowery}) × 2 layers.
	tel := study.Telemetry()
	if got := tel.CampaignsExecuted(); got != 18 {
		t.Fatalf("campaigns executed = %d, want 18", got)
	}
	campaignStage := func(tel pipeline.Telemetry) pipeline.StageTelemetry {
		for _, s := range tel.Stages {
			if s.Stage == pipeline.StageCampaign {
				return s
			}
		}
		t.Fatal("no campaign stage telemetry")
		return pipeline.StageTelemetry{}
	}
	if st := campaignStage(tel); int64(st.Keys) != st.Misses {
		t.Fatalf("campaign keys %d != misses %d: some campaign ran twice", st.Keys, st.Misses)
	}

	// Rendering more artifacts from the same study adds zero campaigns.
	if _, err := study.Results(names, nil); err != nil {
		t.Fatal(err)
	}
	bm, _ := bench.ByName("crc32")
	if _, err := study.Ablation(bm); err != nil {
		t.Fatal(err)
	}
	tel = study.Telemetry()
	// The ablation's raw baseline is shared with the main study (a hit);
	// its full-protection variants are new keys, each run exactly once.
	st := campaignStage(tel)
	if int64(st.Keys) != st.Misses {
		t.Fatalf("after re-render+ablation: campaign keys %d != misses %d", st.Keys, st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("no campaign cache hits despite overlapping requests")
	}
	if tel.CacheHits() == 0 {
		t.Fatal("no cache reuse recorded across the study")
	}
}

// TestStudyResultsDeterministicOrder checks results come back in input
// order regardless of scheduling.
func TestStudyResultsDeterministicOrder(t *testing.T) {
	names := []string{"lud", "crc32", "fft2"}
	cfg := smallCfg
	cfg.Workers = 4
	res, err := NewStudy(cfg).Results(names, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i, n := range names {
		if res[i].Name != n {
			t.Fatalf("result %d is %s, want %s", i, res[i].Name, n)
		}
	}
}

// TestStudyUnknownBenchmark mirrors the serial path's error behavior.
func TestStudyUnknownBenchmark(t *testing.T) {
	_, err := NewStudy(smallCfg).Results([]string{"nonexistent"}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("got %v", err)
	}
}
