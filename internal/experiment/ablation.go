package experiment

import (
	"fmt"
	"strings"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// AblationResult measures each Flowery patch in isolation at full
// protection: which penetration categories it removes and what coverage
// it alone buys. This is the design-choice evidence behind §6 of the
// paper (each patch targets exactly one root cause).
type AblationResult struct {
	Name string
	// Stats per configuration.
	Raw    campaign.Stats
	ID     campaign.Stats
	Eager  campaign.Stats
	Branch campaign.Stats
	Cmp    campaign.Stats
	All    campaign.Stats
}

// ablationConfigs enumerates the patch subsets.
var ablationConfigs = []struct {
	Label string
	Opts  flowery.Options
}{
	{"ID only", flowery.Options{}},
	{"+eager store", flowery.Options{EagerStore: true}},
	{"+postponed branch", flowery.Options{PostponedBranch: true}},
	{"+anti-cmp", flowery.Options{AntiCmp: true}},
	{"Flowery (all)", flowery.All()},
}

// RunAblation measures one benchmark under every patch subset.
func RunAblation(bm bench.Benchmark, cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationResult{Name: bm.Name}

	raw, err := asmCampaign(bm.Build(), cfg)
	if err != nil {
		return nil, err
	}
	res.Raw = raw

	stats := make([]campaign.Stats, len(ablationConfigs))
	for i, ac := range ablationConfigs {
		m := bm.Build()
		if err := dup.ApplyFull(m); err != nil {
			return nil, err
		}
		if ac.Opts != (flowery.Options{}) {
			if _, err := flowery.Apply(m, ac.Opts); err != nil {
				return nil, err
			}
		}
		st, err := asmCampaign(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", bm.Name, ac.Label, err)
		}
		stats[i] = st
	}
	res.ID, res.Eager, res.Branch, res.Cmp, res.All = stats[0], stats[1], stats[2], stats[3], stats[4]
	return res, nil
}

func asmCampaign(m *ir.Module, cfg Config) (campaign.Stats, error) {
	prog, err := backend.Lower(m)
	if err != nil {
		return campaign.Stats{}, err
	}
	return campaign.Run(func() (sim.Engine, error) { return machine.New(m, prog) },
		campaign.Spec{Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers, Reference: cfg.Reference})
}

// Ablation renders the per-patch coverage and residual-SDC-origin table.
func Ablation(results []*AblationResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation: assembly-level SDC coverage of each Flowery patch in isolation (full protection)\n")
	fmt.Fprintf(&sb, "%-14s %10s %12s %14s %12s %12s\n",
		"Benchmark", "ID only", "+eager", "+postponed-br", "+anti-cmp", "all")
	for _, r := range results {
		cov := func(s campaign.Stats) float64 { return campaign.Coverage(r.Raw, s) * 100 }
		fmt.Fprintf(&sb, "%-14s %9.1f%% %11.1f%% %13.1f%% %11.1f%% %11.1f%%\n",
			r.Name, cov(r.ID), cov(r.Eager), cov(r.Branch), cov(r.Cmp), cov(r.All))
	}
	sb.WriteString("\nresidual SDCs by origin (what each patch leaves behind):\n")
	fmt.Fprintf(&sb, "%-14s %-16s", "Benchmark", "config")
	for o := asm.Origin(0); int(o) < asm.NumOrigins; o++ {
		fmt.Fprintf(&sb, " %9s", o)
	}
	sb.WriteString("\n")
	for _, r := range results {
		for _, row := range []struct {
			label string
			st    campaign.Stats
		}{
			{"ID only", r.ID},
			{"+eager store", r.Eager},
			{"+postponed br", r.Branch},
			{"+anti-cmp", r.Cmp},
			{"all", r.All},
		} {
			fmt.Fprintf(&sb, "%-14s %-16s", r.Name, row.label)
			for o := 0; o < asm.NumOrigins; o++ {
				fmt.Fprintf(&sb, " %9d", row.st.SDCByOrigin[o])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
