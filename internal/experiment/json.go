package experiment

import (
	"encoding/json"

	"flowery/internal/campaign"
	"flowery/internal/dup"
)

// The JSON report is a flat, stable serialization of the evaluation for
// downstream tooling (plotting scripts, regression tracking). Protection
// levels become percentage strings so the schema is ordinary JSON maps.

// JSONReport is the top-level document.
type JSONReport struct {
	Runs       int               `json:"runs"`
	Seed       int64             `json:"seed"`
	Benchmarks []JSONBenchResult `json:"benchmarks"`
}

// JSONBenchResult is one benchmark's data.
type JSONBenchResult struct {
	Name         string                   `json:"name"`
	Suite        string                   `json:"suite"`
	Domain       string                   `json:"domain"`
	DynIR        int64                    `json:"dyn_ir"`
	DynAsm       int64                    `json:"dyn_asm"`
	RawSDCIR     float64                  `json:"raw_sdc_ir"`
	RawSDCAsm    float64                  `json:"raw_sdc_asm"`
	Levels       map[string]JSONLevelData `json:"levels"`
	StaticInstrs int                      `json:"static_instrs"`
	FloweryUS    int64                    `json:"flowery_transform_us"`
}

// JSONLevelData is one protection level's measurements.
type JSONLevelData struct {
	CoverageIR      float64        `json:"coverage_ir"`
	CoverageAsm     float64        `json:"coverage_asm"`
	CoverageFlowery float64        `json:"coverage_flowery"`
	CoverageAsmCI   [2]float64     `json:"coverage_asm_ci95"`
	IDDynAsm        int64          `json:"id_dyn_asm"`
	FloweryDynAsm   int64          `json:"flowery_dyn_asm"`
	SDCByOrigin     map[string]int `json:"sdc_by_origin"`
}

// ToJSON serializes results into the stable report schema.
func ToJSON(results []*BenchResult, cfg Config) ([]byte, error) {
	rep := JSONReport{Runs: cfg.Runs, Seed: cfg.Seed}
	for _, r := range results {
		jb := JSONBenchResult{
			Name:         r.Name,
			Suite:        r.Suite,
			Domain:       r.Domain,
			DynIR:        r.Raw.DynIR,
			DynAsm:       r.Raw.DynAsm,
			RawSDCIR:     r.Raw.IR.SDCRate(),
			RawSDCAsm:    r.Raw.Asm.SDCRate(),
			Levels:       make(map[string]JSONLevelData, len(Levels)),
			StaticInstrs: r.StaticInstrs,
			FloweryUS:    r.FloweryStats.Elapsed.Microseconds(),
		}
		for _, l := range Levels {
			key := levelKey(l)
			_, lo, hi := campaign.CoverageCI(r.Raw.Asm, r.ID[l].Asm)
			origins := r.ID[l].Asm.SDCOriginsByName()
			jb.Levels[key] = JSONLevelData{
				CoverageIR:      r.CoverageIR(l),
				CoverageAsm:     r.CoverageAsm(l),
				CoverageFlowery: r.CoverageFlowery(l),
				CoverageAsmCI:   [2]float64{lo, hi},
				IDDynAsm:        r.ID[l].DynAsm,
				FloweryDynAsm:   r.Flowery[l].DynAsm,
				SDCByOrigin:     origins,
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, jb)
	}
	return json.MarshalIndent(rep, "", "  ")
}

func levelKey(l dup.Level) string {
	switch l {
	case dup.Level30:
		return "30"
	case dup.Level50:
		return "50"
	case dup.Level70:
		return "70"
	default:
		return "100"
	}
}
