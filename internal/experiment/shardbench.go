// Sharded-campaign benchmark: measures what multi-process campaign
// execution buys end to end. For each benchmark it runs the same
// asm-layer campaign through worker-process pools of 1, 2, and 4
// processes over a fixed shard plan, verifies every pool's merged
// statistics are bit-identical to single-process campaign.Run, and
// reports two scaling signals:
//
//   - wall-clock per pool size, the raw end-to-end time on this host;
//   - critical-path CPU per pool size, the bottleneck worker's CPU
//     time (shard.PoolStats.CriticalPathCPU) — the makespan the
//     partition achieves on a host with at least that many free cores.
//
// On a multi-core host the two agree; on a single-core CI container
// wall clock cannot improve with process count (the report records
// host_cpus so readers can tell which regime produced it), while the
// critical path still measures exactly the partition-balance property
// sharding exists to deliver. Speedup figures therefore derive from
// the critical path, with wall clock reported alongside, unspun.
//
// The same experiment sizes the result transport: the per-run records
// of the campaign encoded as the internal/reclog binary stream vs the
// equivalent per-run JSON log, in bytes per run.

package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/reclog"
	"flowery/internal/shard"
	"flowery/internal/sim"
)

// ShardBenchShards is the fixed shard count of the scaling curve: the
// work decomposition is identical at every pool size, so only process
// parallelism varies between points.
const ShardBenchShards = 8

// ShardBenchProcs are the pool sizes measured.
var ShardBenchProcs = []int{1, 2, 4}

// ShardPoint is one (benchmark, pool size) measurement.
type ShardPoint struct {
	Benchmark string `json:"benchmark"`
	Procs     int    `json:"procs"`
	Shards    int    `json:"shards"`
	Runs      int    `json:"runs"`

	WallSec float64 `json:"wall_sec"`
	// WallSpeedup is wall(1 proc) / wall(this); on hosts with fewer
	// free cores than procs it sits near (or below) 1 by construction.
	WallSpeedup float64 `json:"wall_speedup"`

	CriticalPathCPUSec float64 `json:"critical_path_cpu_sec"`
	// CPUSpeedup is criticalPath(1 proc) / criticalPath(this): the
	// scaling the partition delivers when cores are available.
	CPUSpeedup float64 `json:"cpu_speedup"`

	Steals int `json:"steals"`
}

// ShardEncoding compares the result-log encodings for one benchmark's
// campaign records.
type ShardEncoding struct {
	Benchmark       string  `json:"benchmark"`
	Runs            int     `json:"runs"`
	ReclogBytes     int     `json:"reclog_bytes"`
	JSONBytes       int     `json:"json_bytes"`
	ReclogPerRun    float64 `json:"reclog_bytes_per_run"`
	JSONPerRun      float64 `json:"json_bytes_per_run"`
	ReclogJSONRatio float64 `json:"reclog_json_ratio"`
}

// ShardBenchResult is one benchmark's full shardbench measurement.
type ShardBenchResult struct {
	Benchmark string        `json:"benchmark"`
	Points    []ShardPoint  `json:"points"`
	Encoding  ShardEncoding `json:"encoding"`
}

// RunShardBench measures the named benchmarks (the caller supplies the
// default set). Every pool's merged stats are gated against
// single-process campaign.Run before any number is reported — a
// benchmark that drifts fails the experiment rather than producing a
// table.
func RunShardBench(names []string, cfg Config) ([]*ShardBenchResult, error) {
	cfg = cfg.withDefaults()
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}
	var out []*ShardBenchResult
	for _, bm := range bms {
		r, err := runShardBenchOne(bm, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runShardBenchOne(bm bench.Benchmark, cfg Config) (*ShardBenchResult, error) {
	pristine := bm.Build()
	pristine.AssignAddresses()

	// Single-process reference: the outcome gate and the record stream
	// the encoding comparison sizes.
	lowered := ir.CloneModule(pristine)
	prog, err := backend.Lower(lowered)
	if err != nil {
		return nil, err
	}
	lowered.AssignAddresses()
	factory := func() (sim.Engine, error) { return machine.New(lowered, prog) }

	var records []campaign.Record
	spec := campaign.Spec{Runs: cfg.Runs, Seed: cfg.Seed, Workers: 1, Reference: cfg.Reference}
	refSpec := spec
	refSpec.Records = func(r campaign.Record) { records = append(records, r) }
	ref, err := campaign.Run(factory, refSpec)
	if err != nil {
		return nil, fmt.Errorf("shardbench %s: reference campaign: %w", bm.Name, err)
	}

	res := &ShardBenchResult{Benchmark: bm.Name}
	var baseWall, baseCP float64
	for _, procs := range ShardBenchProcs {
		pool := shard.NewPool(
			shard.Job{Module: pristine.String(), Layer: shard.LayerAsm},
			shard.PoolOpts{Procs: procs},
		)
		start := time.Now()
		st, err := campaign.RunSharded(nil, spec, campaign.ShardOpts{Shards: ShardBenchShards, Exec: pool})
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("shardbench %s procs=%d: %w", bm.Name, procs, err)
		}
		if st.Counts != ref.Counts || st.SDCByOrigin != ref.SDCByOrigin ||
			st.GoldenDyn != ref.GoldenDyn || st.GoldenInjectable != ref.GoldenInjectable {
			return nil, fmt.Errorf("shardbench %s procs=%d: sharded outcomes drifted from campaign.Run: %v vs %v",
				bm.Name, procs, st.Counts, ref.Counts)
		}
		ps := pool.Stats()
		cp := float64(ps.CriticalPathCPU()) / 1e9
		pt := ShardPoint{
			Benchmark: bm.Name, Procs: procs, Shards: ShardBenchShards, Runs: cfg.Runs,
			WallSec: wall, CriticalPathCPUSec: cp, Steals: ps.Steals,
		}
		if procs == 1 {
			baseWall, baseCP = wall, cp
		}
		if wall > 0 {
			pt.WallSpeedup = baseWall / wall
		}
		if cp > 0 {
			pt.CPUSpeedup = baseCP / cp
		}
		res.Points = append(res.Points, pt)
	}

	res.Encoding, err = measureEncoding(bm.Name, records)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// measureEncoding sizes the campaign's record stream under both
// transports: the reclog binary framing the sharded executor ships,
// and the per-run JSON log it replaced (one object per run, named
// outcome/origin fields, newline-delimited — the format campaign
// results used before the binary log).
func measureEncoding(name string, records []campaign.Record) (ShardEncoding, error) {
	var bin bytes.Buffer
	w := reclog.NewWriter(&bin)
	for _, r := range records {
		if err := w.Write(reclog.Record{
			Run:     int64(r.Run),
			Outcome: uint8(r.Outcome),
			Origin:  uint8(r.Origin),
			Target:  r.Target,
			Bit:     r.Bit,
		}); err != nil {
			return ShardEncoding{}, err
		}
	}
	if err := w.Close(); err != nil {
		return ShardEncoding{}, err
	}

	var js bytes.Buffer
	enc := json.NewEncoder(&js)
	for _, r := range records {
		if err := enc.Encode(struct {
			Run     int    `json:"run"`
			Outcome string `json:"outcome"`
			Origin  string `json:"origin"`
			Target  int64  `json:"target"`
			Bit     uint8  `json:"bit"`
		}{r.Run, r.Outcome.String(), r.Origin.String(), r.Target, r.Bit}); err != nil {
			return ShardEncoding{}, err
		}
	}

	e := ShardEncoding{
		Benchmark:   name,
		Runs:        len(records),
		ReclogBytes: bin.Len(),
		JSONBytes:   js.Len(),
	}
	if e.Runs > 0 {
		e.ReclogPerRun = float64(e.ReclogBytes) / float64(e.Runs)
		e.JSONPerRun = float64(e.JSONBytes) / float64(e.Runs)
	}
	if e.JSONBytes > 0 {
		e.ReclogJSONRatio = float64(e.ReclogBytes) / float64(e.JSONBytes)
	}
	return e, nil
}

// ShardBench renders the measurements as a table.
func ShardBench(results []*ShardBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded multi-process campaigns: scaling over %d shards (host has %d CPUs)\n",
		ShardBenchShards, runtime.NumCPU())
	sb.WriteString("critical-path CPU = bottleneck worker's CPU time (= wall on a host with >= procs free cores)\n")
	fmt.Fprintf(&sb, "%-12s %6s %8s %10s %9s %12s %9s %7s\n",
		"benchmark", "procs", "runs", "wall", "wall-spd", "crit-path", "cpu-spd", "steals")
	for _, r := range results {
		for _, p := range r.Points {
			fmt.Fprintf(&sb, "%-12s %6d %8d %9.2fs %8.2fx %11.2fs %8.2fx %7d\n",
				p.Benchmark, p.Procs, p.Runs, p.WallSec, p.WallSpeedup,
				p.CriticalPathCPUSec, p.CPUSpeedup, p.Steals)
		}
	}
	sb.WriteString("\nresult-log encoding (per-run records):\n")
	fmt.Fprintf(&sb, "%-12s %8s %14s %14s %8s\n", "benchmark", "runs", "reclog B/run", "json B/run", "ratio")
	for _, r := range results {
		e := r.Encoding
		fmt.Fprintf(&sb, "%-12s %8d %14.2f %14.2f %7.1f%%\n",
			e.Benchmark, e.Runs, e.ReclogPerRun, e.JSONPerRun, e.ReclogJSONRatio*100)
	}
	return sb.String()
}

// ShardBenchJSON marshals the measurements (the BENCH_5.json artifact).
func ShardBenchJSON(results []*ShardBenchResult, cfg Config) ([]byte, error) {
	doc := struct {
		Runs     int                 `json:"runs"`
		Seed     int64               `json:"seed"`
		Shards   int                 `json:"shards"`
		HostCPUs int                 `json:"host_cpus"`
		Note     string              `json:"note"`
		Results  []*ShardBenchResult `json:"results"`
	}{
		Runs:     cfg.Runs,
		Seed:     cfg.Seed,
		Shards:   ShardBenchShards,
		HostCPUs: runtime.NumCPU(),
		Note: "speedup figures derive from critical-path CPU (bottleneck worker's CPU time, " +
			"the makespan on a host with >= procs free cores); wall_sec/wall_speedup report " +
			"raw wall clock on this host, which cannot improve with procs when host_cpus < procs",
		Results: results,
	}
	return json.MarshalIndent(doc, "", "  ")
}
