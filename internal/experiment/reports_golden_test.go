package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowery/internal/asm"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
)

var update = flag.Bool("update", false, "rewrite the report golden files")

// fixtureStats builds a deterministic campaign.Stats. The arguments are
// the outcome counts; origin counts attribute the SDCs.
func fixtureStats(runs, benign, sdc, due, detected int, origins [asm.NumOrigins]int) campaign.Stats {
	var st campaign.Stats
	st.Runs = runs
	st.Counts[campaign.OutcomeBenign] = benign
	st.Counts[campaign.OutcomeSDC] = sdc
	st.Counts[campaign.OutcomeDUE] = due
	st.Counts[campaign.OutcomeDetected] = detected
	st.SDCByOrigin = origins
	st.GoldenDyn = int64(runs) * 100
	st.GoldenInjectable = int64(runs) * 80
	return st
}

// fixtureResults is a frozen two-benchmark result set covering every
// field the renderers read. The numbers are synthetic but shaped like a
// real run (coverage improves with level; Flowery beats plain ID at the
// assembly layer; dynamic counts grow with protection).
func fixtureResults() []*BenchResult {
	mk := func(name, suite, domain string, bias int) *BenchResult {
		r := &BenchResult{
			Name:    name,
			Suite:   suite,
			Domain:  domain,
			ID:      make(map[dup.Level]LevelStats),
			Flowery: make(map[dup.Level]LevelStats),
			FloweryStats: flowery.Stats{
				StoresHoisted:   12 + bias,
				BranchesPatched: 7 + bias,
				CmpsIsolated:    5 + bias,
				Elapsed:         1500 * time.Microsecond,
			},
			StaticInstrs: 400 + 10*bias,
		}
		r.Raw = LevelStats{
			IR:     fixtureStats(600, 450, 90-bias, 40, 20, [asm.NumOrigins]int{}),
			Asm:    fixtureStats(600, 430, 110-bias, 40, 20, [asm.NumOrigins]int{}),
			DynIR:  60000,
			DynAsm: 150000,
		}
		for i, l := range Levels {
			step := i + 1
			irSDC := 70 - 15*step - bias
			asmSDC := 90 - 15*step - bias
			flSDC := 80 - 19*step - bias
			r.ID[l] = LevelStats{
				IR: fixtureStats(600, 500, irSDC, 30, 70-irSDC,
					[asm.NumOrigins]int{asm.OriginNone: irSDC}),
				Asm: fixtureStats(600, 460, asmSDC, 30, 110-asmSDC,
					[asm.NumOrigins]int{
						asm.OriginNone:        asmSDC - asmSDC/2 - asmSDC/4,
						asm.OriginStoreReload: asmSDC / 2,
						asm.OriginBranchTest:  asmSDC / 4,
					}),
				DynIR:  int64(60000 + 9000*step),
				DynAsm: int64(150000 + 30000*step),
			}
			r.Flowery[l] = LevelStats{
				IR: fixtureStats(600, 500, irSDC, 30, 70-irSDC,
					[asm.NumOrigins]int{asm.OriginNone: irSDC}),
				Asm: fixtureStats(600, 470, flSDC, 30, 100-flSDC,
					[asm.NumOrigins]int{asm.OriginNone: flSDC}),
				DynIR:  int64(60000 + 9000*step),
				DynAsm: int64(165000 + 33000*step),
			}
		}
		return r
	}
	return []*BenchResult{
		mk("alpha", "MiBench", "telecom", 0),
		mk("beta", "Rodinia", "linear algebra", 4),
	}
}

// TestReportGoldens locks each renderer's exact output over the fixture.
// Regenerate with `go test ./internal/experiment -run Golden -update`
// after an intentional format change, and review the diff.
func TestReportGoldens(t *testing.T) {
	results := fixtureResults()
	for _, c := range []struct {
		name   string
		render func([]*BenchResult) string
	}{
		{"table1", Table1},
		{"fig2", Figure2},
		{"fig3", Figure3},
		{"fig17", Figure17},
		{"overhead", Overhead},
		{"passtime", PassTime},
	} {
		t.Run(c.name, func(t *testing.T) {
			got := c.render(results)
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from %s:\n--- got\n%s\n--- want\n%s",
					c.name, path, got, want)
			}
		})
	}
}
