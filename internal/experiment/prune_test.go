package experiment

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"flowery/internal/campaign"
)

// keyPaths collects the set of object key paths in a decoded JSON value.
// It does not descend under sdc_by_origin: those map keys are data
// (which origins produced SDCs), not schema.
func keyPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := prefix + "." + k
			out[p] = true
			if k != "sdc_by_origin" {
				keyPaths(p, child, out)
			}
		}
	case []any:
		for _, child := range x {
			keyPaths(prefix+"[]", child, out)
		}
	}
}

func pathSet(t *testing.T, raw []byte) map[string]bool {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	out := make(map[string]bool)
	keyPaths("", v, out)
	return out
}

func diffPaths(a, b map[string]bool) []string {
	var d []string
	for p := range a {
		if !b[p] {
			d = append(d, p)
		}
	}
	sort.Strings(d)
	return d
}

// TestStudyPrunedSchemaEquivalence runs the same study full and pruned
// and checks the rendered reports are schema-identical: pruning changes
// how statistics are obtained, not what downstream consumers see.
func TestStudyPrunedSchemaEquivalence(t *testing.T) {
	base := Config{Runs: 60, ProfileSamples: 120, Seed: 11}
	pruned := base
	pruned.Pruning = campaign.PruneClasses
	pruned.PilotsPerClass = 1

	full, err := NewStudy(base).Results([]string{"fft2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewStudy(pruned).Results([]string{"fft2"}, nil)
	if err != nil {
		t.Fatal(err)
	}

	if full[0].Raw.IR.Pruned || full[0].Raw.Asm.Pruned {
		t.Fatal("full study produced pruned stats")
	}
	if !pr[0].Raw.IR.Pruned || !pr[0].Raw.Asm.Pruned {
		t.Fatal("pruned study produced full stats")
	}
	if pr[0].Raw.Asm.Runs != base.Runs {
		t.Fatalf("pruned stats scaled to %d runs, want %d", pr[0].Raw.Asm.Runs, base.Runs)
	}

	jf, err := ToJSON(full, base)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := ToJSON(pr, pruned)
	if err != nil {
		t.Fatal(err)
	}
	pf, pp := pathSet(t, jf), pathSet(t, jp)
	if d := diffPaths(pf, pp); len(d) > 0 {
		t.Fatalf("full report has paths the pruned one lacks: %v", d)
	}
	if d := diffPaths(pp, pf); len(d) > 0 {
		t.Fatalf("pruned report has paths the full one lacks: %v", d)
	}

	// The text renderers operate on the same BenchResult shape; spot-check
	// one figure renders the same rows either way.
	lf := strings.Split(Figure2(full), "\n")
	lp := strings.Split(Figure2(pr), "\n")
	if len(lf) != len(lp) {
		t.Fatalf("Figure2 row count differs: full %d, pruned %d", len(lf), len(lp))
	}
}

// TestPruneBench smoke-tests the cross-validation artifact at a small
// scale: rows for every benchmark × layer × budget, a coherent
// reduction ratio, and a table that carries the verdict column.
func TestPruneBench(t *testing.T) {
	cfg := Config{Runs: 1500, ProfileSamples: 120, Seed: 11}
	points, err := RunPruneBench([]string{"crc32"}, []int{2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2 (ir+asm): %+v", len(points), points)
	}
	for _, p := range points {
		if p.Benchmark != "crc32" || (p.Layer != "ir" && p.Layer != "asm") {
			t.Fatalf("bad row identity: %+v", p)
		}
		if p.Runs != cfg.Runs || p.PilotRuns <= 0 || p.Classes <= 0 || p.Population <= 0 {
			t.Fatalf("bad row sizes: %+v", p)
		}
		if want := float64(p.Runs) / float64(p.PilotRuns); p.Reduction != want {
			t.Fatalf("reduction = %v, want %v", p.Reduction, want)
		}
		if p.FullLo > p.FullSDC || p.FullSDC > p.FullHi {
			t.Fatalf("full CI does not bracket its estimate: %+v", p)
		}
		if p.InsideCI != (p.PrunedSDC >= p.FullLo && p.PrunedSDC <= p.FullHi) {
			t.Fatalf("inside_ci inconsistent with bounds: %+v", p)
		}
	}

	table := PruneBench(points)
	for _, want := range []string{"cross-validation", "inside", "crc32", "pruned SDC"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}

	raw, err := PruneBenchJSON(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs    int          `json:"runs"`
		Seed    int64        `json:"seed"`
		Results []PrunePoint `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_3 JSON does not round-trip: %v", err)
	}
	if doc.Runs != cfg.Runs || doc.Seed != cfg.Seed || len(doc.Results) != 2 {
		t.Fatalf("bad BENCH_3 document header: %+v", doc)
	}
}
