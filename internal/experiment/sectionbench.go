// Incremental-analysis benchmark: measures what compositional
// per-section campaigns (campaign.RunSectioned, DESIGN.md §16) buy when
// a program is edited and re-analysed. For each benchmark × layer it
// (1) runs a cold sectioned campaign that persists every section's
// error-propagation summary, (2) applies a one-function edit (a dead
// computation inserted at the function's entry, so program semantics
// are unchanged but the function's content hash moves), (3) re-analyses
// the edited program both ways — a full Monte-Carlo campaign and an
// incremental sectioned campaign that recalls every untouched section's
// summary — and reports the injection and wall-clock reduction, whether
// only the edited sections re-executed, and whether the composed
// estimate stays inside the full campaign's 95% interval. Each point
// also reports a knapsack-style budgeted protection placement over the
// per-section SDC masses (the section analogue of the paper's selective
// duplication).

package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"flowery/internal/campaign"
	"flowery/internal/ir"
	"flowery/internal/knapsack"
	"flowery/internal/pipeline"
	"flowery/internal/store"
)

// SectionBenchRuns is sectionbench's default full-campaign size
// (matching prunebench and maskbench: the comparison's sharpness comes
// from the full side).
const SectionBenchRuns = 20000

// sectionBenchDefault mirrors maskbench's benchmark pair.
var sectionBenchDefault = []string{"crc32", "patricia"}

// SectionPlacementBudget is the site budget of the reported placement,
// as a fraction of the program's dynamic injectable sites.
const SectionPlacementBudget = 0.5

// SectionPlacement is one section's row of the budgeted-placement
// table: protecting the section costs its dynamic site count and buys
// its share of the whole-program SDC rate.
type SectionPlacement struct {
	Name     string  `json:"name"`
	Sites    int64   `json:"sites"`
	SDC      float64 `json:"sdc"`
	SDCMass  float64 `json:"sdc_mass"`
	Selected bool    `json:"selected"`
}

// SectionPoint is one benchmark × layer incremental-analysis
// measurement.
type SectionPoint struct {
	Benchmark string `json:"benchmark"`
	Layer     string `json:"layer"` // "ir" or "asm"
	// EditedFunc is the function the one-function edit touched.
	EditedFunc string `json:"edited_func"`

	// Population is the edited program's injectable site count;
	// Sections its section count at this layer.
	Population int64 `json:"population"`
	Sections   int   `json:"sections"`

	// BasePilots is the cold sectioned campaign's injection count on
	// the original program (the cost of building every summary once).
	BasePilots int `json:"base_pilots"`

	// Runs is the full re-analysis campaign's injection count on the
	// edited program; IncrPilots is the incremental sectioned
	// re-analysis's. Reduction is their ratio — the incremental win.
	Runs       int     `json:"runs"`
	IncrPilots int     `json:"incr_pilots"`
	Reduction  float64 `json:"reduction"`

	// Recalled and Executed split the edited program's sections by how
	// the incremental run served them. OnlyDirty reports the
	// incrementality contract: a section re-executed if and only if its
	// content hash was not among the original program's sections.
	Recalled  int  `json:"recalled"`
	Executed  int  `json:"executed"`
	OnlyDirty bool `json:"only_dirty"`

	// FullWallMS and IncrWallMS are the two re-analyses' wall clocks;
	// WallRatio is full/incremental.
	FullWallMS float64 `json:"full_wall_ms"`
	IncrWallMS float64 `json:"incr_wall_ms"`
	WallRatio  float64 `json:"wall_ratio"`

	FullSDC float64 `json:"full_sdc"`
	FullLo  float64 `json:"full_sdc_lo"`
	FullHi  float64 `json:"full_sdc_hi"`
	SDC     float64 `json:"sdc"`
	Lo      float64 `json:"sdc_lo"`
	Hi      float64 `json:"sdc_hi"`
	// InsideCI reports whether the composed incremental estimate falls
	// inside the full campaign's 95% interval.
	InsideCI bool `json:"inside_ci"`

	// Budget is the placement's site budget (SectionPlacementBudget of
	// Population); CoveredMass the fraction of the whole-program SDC
	// mass the selected sections cover.
	Budget      int64              `json:"budget"`
	CoveredMass float64            `json:"covered_mass"`
	Placement   []SectionPlacement `json:"placement"`
}

// editedSource derives a pipeline source from a benchmark with a dead
// `add i64 1, 2` inserted at the entry of one function: the
// one-function edit sectionbench measures re-analysis under. The key
// names the edited function so edited and original modules are distinct
// pipeline artifacts.
func editedSource(src pipeline.Source, fn string) pipeline.Source {
	return pipeline.Source{
		Key: src.Key + "|edit1:" + fn,
		Build: func() *ir.Module {
			m := src.Build()
			for _, f := range m.Funcs {
				if f.Name != fn || f.External || len(f.Blocks) == 0 {
					continue
				}
				f.Blocks[0].InsertAt(0, &ir.Instr{
					Op:   ir.OpAdd,
					Ty:   ir.I64,
					Args: []ir.Value{ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2)},
				})
				return m
			}
			panic(fmt.Sprintf("sectionbench: function %q not found in %s", fn, src.Key))
		},
	}
}

// sectionFunc extracts the owning function name from a section's
// display name ("func" or "func/loop@header").
func sectionFunc(name string) string {
	fn, _, _ := strings.Cut(name, "/loop@")
	return fn
}

// editTarget picks the function sectionbench edits: the one owning the
// smallest executed section (ties to the lexicographically first name).
// Small is the interesting case — the incremental win is largest when
// the edit touches little of the program — and the pick is
// deterministic given the cold run's section reports.
func editTarget(sections []campaign.SectionReport) string {
	best := -1
	for i, r := range sections {
		if best < 0 || r.Sites < sections[best].Sites ||
			(r.Sites == sections[best].Sites && r.Name < sections[best].Name) {
			best = i
		}
	}
	return sectionFunc(sections[best].Name)
}

// RunSectionBench measures incremental re-analysis on the named
// benchmarks (crc32 and patricia when empty). cfg.Runs of 0 selects
// SectionBenchRuns. A memory-backed artifact store is supplied when the
// config carries none, so the cold run's summaries are recallable by
// the incremental run within the process; with a disk store the recall
// works across processes too.
func RunSectionBench(names []string, cfg Config) ([]SectionPoint, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = SectionBenchRuns
	}
	cfg.Pruning = campaign.PruneNone // both sides run explicitly below
	cfg.MaskStatic = false
	cfg.Sections = false
	cfg = cfg.withDefaults()
	if cfg.Artifacts == nil {
		cfg.Artifacts = store.NewMemory(nil)
	}
	if len(names) == 0 {
		names = sectionBenchDefault
	}
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}

	type unit struct {
		bench int
		layer pipeline.Layer
	}
	var units []unit
	for i := range bms {
		for _, l := range []pipeline.Layer{pipeline.LayerIR, pipeline.LayerAsm} {
			units = append(units, unit{bench: i, layer: l})
		}
	}

	study := NewStudy(cfg)
	points := make([]SectionPoint, len(units))
	err = pipeline.ForEach(study.Pipeline().Config().Parallel, len(units), func(i int) error {
		u := units[i]
		src := pipeline.BenchSource(bms[u.bench])
		opts := pipeline.CampaignOpts{Layer: u.layer}

		base, err := study.Pipeline().CampaignSectioned(src, pipeline.RawVariant(), opts)
		if err != nil {
			return err
		}
		target := editTarget(base.Sections)
		esrc := editedSource(src, target)
		full, err := study.Pipeline().Campaign(esrc, pipeline.RawVariant(), opts)
		if err != nil {
			return err
		}
		incr, err := study.Pipeline().CampaignSectioned(esrc, pipeline.RawVariant(), opts)
		if err != nil {
			return err
		}

		// Incrementality contract: re-executed ⟺ content hash is new.
		baseHash := make(map[string]bool, len(base.Sections))
		for _, r := range base.Sections {
			baseHash[r.Hash] = true
		}
		onlyDirty := true
		for _, r := range incr.Sections {
			if r.Recalled != baseHash[r.Hash] {
				onlyDirty = false
			}
		}

		// Budgeted protection placement over per-section SDC mass.
		items := make([]knapsack.Item, len(incr.Sections))
		var mass float64
		for j, r := range incr.Sections {
			items[j] = knapsack.Item{Benefit: r.SDCMass, Cost: r.Sites}
			mass += r.SDCMass
		}
		budget := int64(SectionPlacementBudget * float64(incr.Stats.GoldenInjectable))
		picked := knapsack.Greedy(items, budget)
		placement := make([]SectionPlacement, len(incr.Sections))
		for j, r := range incr.Sections {
			placement[j] = SectionPlacement{Name: r.Name, Sites: r.Sites, SDC: r.SDC, SDCMass: r.SDCMass}
		}
		for _, j := range picked {
			placement[j].Selected = true
		}
		covered := 0.0
		if mass > 0 {
			covered = knapsack.TotalBenefit(items, picked) / mass
		}

		fsdc, flo, fhi := full.SDCRateCI()
		sdc, lo, hi := incr.Stats.SDCRateCI()
		pilots := incr.Stats.PilotRuns
		reduction := float64(full.Runs)
		if pilots > 0 {
			reduction = float64(full.Runs) / float64(pilots)
		}
		wallRatio := 0.0
		if incr.Stats.Elapsed > 0 {
			wallRatio = float64(full.Elapsed) / float64(incr.Stats.Elapsed)
		}
		points[i] = SectionPoint{
			Benchmark:  bms[u.bench].Name,
			Layer:      layerName(u.layer),
			EditedFunc: target,
			Population: incr.Stats.GoldenInjectable,
			Sections:   incr.Stats.Sections,
			BasePilots: base.Stats.PilotRuns,
			Runs:       full.Runs,
			IncrPilots: pilots,
			Reduction:  reduction,
			Recalled:   incr.Stats.SectionsRecalled,
			Executed:   incr.Stats.SectionsExecuted,
			OnlyDirty:  onlyDirty,
			FullWallMS: float64(full.Elapsed.Microseconds()) / 1000,
			IncrWallMS: float64(incr.Stats.Elapsed.Microseconds()) / 1000,
			WallRatio:  wallRatio,
			FullSDC:    fsdc, FullLo: flo, FullHi: fhi,
			SDC: sdc, Lo: lo, Hi: hi,
			InsideCI:    sdc >= flo && sdc <= fhi,
			Budget:      budget,
			CoveredMass: covered,
			Placement:   placement,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// SectionBench renders the incremental re-analysis table plus each
// point's budgeted placement.
func SectionBench(points []SectionPoint) string {
	var sb strings.Builder
	sb.WriteString("Incremental sectioned re-analysis after a one-function edit: full re-run vs summary recall\n")
	sb.WriteString(fmt.Sprintf("%-12s %-5s %-14s %8s %4s %5s/%-4s %8s %8s %7s %9s %9s  %-24s %-8s %6s\n",
		"benchmark", "layer", "edited", "popul", "sec", "rec", "exec",
		"full", "incr", "reduct", "full ms", "incr ms", "full SDC [95% CI]", "incr", "inside"))
	for _, p := range points {
		verdict := "no"
		if p.InsideCI {
			verdict = "yes"
		}
		dirty := "!"
		if p.OnlyDirty {
			dirty = ""
		}
		sb.WriteString(fmt.Sprintf("%-12s %-5s %-14s %8d %4d %5d/%-4d %8d %8d %6.1fx %9.1f %9.1f  %.4f [%.4f, %.4f]  %.4f   %-6s%s\n",
			p.Benchmark, p.Layer, p.EditedFunc, p.Population, p.Sections,
			p.Recalled, p.Executed, p.Runs, p.IncrPilots, p.Reduction,
			p.FullWallMS, p.IncrWallMS,
			p.FullSDC, p.FullLo, p.FullHi, p.SDC, verdict, dirty))
	}
	sb.WriteString("\nBudgeted per-section protection placement (greedy knapsack, 50% site budget):\n")
	for _, p := range points {
		sb.WriteString(fmt.Sprintf("%s/%s: budget %d sites, covers %.1f%% of SDC mass\n",
			p.Benchmark, p.Layer, p.Budget, p.CoveredMass*100))
		for _, r := range p.Placement {
			mark := " "
			if r.Selected {
				mark = "*"
			}
			sb.WriteString(fmt.Sprintf("  %s %-32s %8d sites  sdc %.4f  mass %.5f\n",
				mark, r.Name, r.Sites, r.SDC, r.SDCMass))
		}
	}
	return sb.String()
}

// SectionBenchJSON marshals the measurements (the BENCH_7.json
// artifact).
func SectionBenchJSON(points []SectionPoint, cfg Config) ([]byte, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = SectionBenchRuns
	}
	doc := struct {
		Runs    int            `json:"runs"`
		Seed    int64          `json:"seed"`
		Results []SectionPoint `json:"results"`
	}{runs, cfg.Seed, points}
	return json.MarshalIndent(doc, "", "  ")
}
