// Pruned-campaign benchmark: cross-validates the equivalence pruning
// engine (internal/equiv, DESIGN.md §10) against ground truth. For each
// benchmark × layer × pilot budget it runs the same unprotected campaign
// twice — exhaustive Monte-Carlo and equivalence-pruned — and reports
// the injection-count reduction next to both SDC estimates, flagging
// whether the pruned estimate lands inside the full campaign's 95%
// confidence interval.

package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"flowery/internal/campaign"
	"flowery/internal/pipeline"
)

// PruneBenchRuns is prunebench's default full-campaign size. The
// comparison needs a much larger campaign than the other artifacts: the
// pruned estimator's cost is fixed by the partition (a few thousand
// pilots), so the reduction factor and the sharpness of the
// cross-validation both come from the full side.
const PruneBenchRuns = 20000

// PruneBenchPilots is the default grid of average per-class pilot
// budgets (campaign.Spec.PilotsPerClass) the cross-validation sweeps.
var PruneBenchPilots = []int{2, 3}

// pruneBenchDefault is the default benchmark subset: one control-heavy
// kernel and one data-heavy one, matching the scratch/snapshot
// benchmark's convention of measuring representatives rather than all
// 16 at this campaign scale.
var pruneBenchDefault = []string{"crc32", "susan"}

// PrunePoint is one full-vs-pruned campaign comparison.
type PrunePoint struct {
	Benchmark string `json:"benchmark"`
	Layer     string `json:"layer"` // "ir" or "asm"
	// PilotsPerClass is the pruned campaign's average per-class budget.
	PilotsPerClass int `json:"pilots_per_class"`

	// Population is the injectable fault-site count both campaigns
	// sample; Classes and DeadSites describe the partition.
	Population int64 `json:"population"`
	Classes    int   `json:"classes"`
	DeadSites  int64 `json:"dead_sites"`

	// Runs is the full campaign's injection count; PilotRuns is the
	// pruned campaign's; Reduction is their ratio.
	Runs      int     `json:"runs"`
	PilotRuns int     `json:"pilot_runs"`
	Reduction float64 `json:"reduction"`

	FullSDC   float64 `json:"full_sdc"`
	FullLo    float64 `json:"full_sdc_lo"`
	FullHi    float64 `json:"full_sdc_hi"`
	PrunedSDC float64 `json:"pruned_sdc"`
	PrunedLo  float64 `json:"pruned_sdc_lo"`
	PrunedHi  float64 `json:"pruned_sdc_hi"`

	// InsideCI reports whether the pruned estimate falls inside the full
	// campaign's 95% interval — the cross-validation verdict.
	InsideCI bool `json:"inside_ci"`
}

// RunPruneBench cross-validates pruned against full campaigns on the
// named benchmarks (crc32 and susan when empty) for every budget in
// pilots (PruneBenchPilots when nil). cfg.Runs of 0 selects the
// artifact's own default scale, PruneBenchRuns, rather than the general
// experiment default — at small scales the full campaign's interval is
// so wide the comparison says nothing.
//
// Both sides go through one artifact pipeline, so each full campaign is
// computed once and shared by every pilot budget it is compared against.
func RunPruneBench(names []string, pilots []int, cfg Config) ([]PrunePoint, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = PruneBenchRuns
	}
	cfg.Pruning = campaign.PruneNone // the study below runs both sides explicitly
	cfg = cfg.withDefaults()
	if len(names) == 0 {
		names = pruneBenchDefault
	}
	if len(pilots) == 0 {
		pilots = PruneBenchPilots
	}
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}

	type unit struct {
		bench int
		layer pipeline.Layer
		k     int
	}
	var units []unit
	for i := range bms {
		for _, l := range []pipeline.Layer{pipeline.LayerIR, pipeline.LayerAsm} {
			for _, k := range pilots {
				units = append(units, unit{bench: i, layer: l, k: k})
			}
		}
	}

	study := NewStudy(cfg)
	points := make([]PrunePoint, len(units))
	err = pipeline.ForEach(study.Pipeline().Config().Parallel, len(units), func(i int) error {
		u := units[i]
		src := pipeline.BenchSource(bms[u.bench])
		full, err := study.Pipeline().Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: u.layer})
		if err != nil {
			return err
		}
		pruned, err := study.Pipeline().Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: u.layer, Pruning: campaign.PruneClasses, PilotsPerClass: u.k})
		if err != nil {
			return err
		}
		fsdc, flo, fhi := full.SDCRateCI()
		psdc, plo, phi := pruned.SDCRateCI()
		points[i] = PrunePoint{
			Benchmark:      bms[u.bench].Name,
			Layer:          layerName(u.layer),
			PilotsPerClass: u.k,
			Population:     pruned.GoldenInjectable,
			Classes:        pruned.Classes,
			DeadSites:      pruned.DeadSites,
			Runs:           full.Runs,
			PilotRuns:      pruned.PilotRuns,
			Reduction:      float64(full.Runs) / float64(pruned.PilotRuns),
			FullSDC:        fsdc, FullLo: flo, FullHi: fhi,
			PrunedSDC: psdc, PrunedLo: plo, PrunedHi: phi,
			InsideCI: psdc >= flo && psdc <= fhi,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

func layerName(l pipeline.Layer) string {
	if l == pipeline.LayerIR {
		return "ir"
	}
	return "asm"
}

// PruneBench renders the cross-validation table.
func PruneBench(points []PrunePoint) string {
	var sb strings.Builder
	sb.WriteString("Equivalence pruning cross-validation: pruned vs full campaign SDC estimates\n")
	sb.WriteString(fmt.Sprintf("%-12s %-5s %2s %8s %8s %6s %8s %8s %7s  %-24s %-24s %s\n",
		"benchmark", "layer", "k", "popul", "classes", "dead%", "runs", "pilots", "reduct",
		"full SDC [95% CI]", "pruned SDC [95% CI]", "inside"))
	for _, p := range points {
		verdict := "no"
		if p.InsideCI {
			verdict = "yes"
		}
		sb.WriteString(fmt.Sprintf("%-12s %-5s %2d %8d %8d %5.1f%% %8d %8d %6.1fx  %.4f [%.4f, %.4f]  %.4f [%.4f, %.4f]  %s\n",
			p.Benchmark, p.Layer, p.PilotsPerClass, p.Population, p.Classes,
			float64(p.DeadSites)/float64(p.Population)*100,
			p.Runs, p.PilotRuns, p.Reduction,
			p.FullSDC, p.FullLo, p.FullHi,
			p.PrunedSDC, p.PrunedLo, p.PrunedHi, verdict))
	}
	return sb.String()
}

// PruneBenchJSON marshals the comparisons (the BENCH_3.json artifact).
func PruneBenchJSON(points []PrunePoint, cfg Config) ([]byte, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = PruneBenchRuns
	}
	doc := struct {
		Runs    int          `json:"runs"`
		Seed    int64        `json:"seed"`
		Results []PrunePoint `json:"results"`
	}{runs, cfg.Seed, points}
	return json.MarshalIndent(doc, "", "  ")
}
