package experiment

import (
	"fmt"
	"strings"

	"flowery/internal/asm"
	"flowery/internal/campaign"
	"flowery/internal/dup"
)

// Table1 renders the benchmark inventory with measured dynamic
// instruction counts (the paper's Table 1, with our scaled inputs; the
// count shown is IR dynamic instructions of the unprotected program).
func Table1(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Benchmarks (DI Count = dynamic IR instructions, unprotected)\n")
	fmt.Fprintf(&sb, "%-14s %-9s %-26s %12s %12s\n", "Benchmark", "Suite", "Domain", "DI Count", "DI (asm)")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s %-9s %-26s %12d %12d\n",
			r.Name, r.Suite, r.Domain, r.Raw.DynIR, r.Raw.DynAsm)
	}
	return sb.String()
}

// Figure2 renders the cross-layer SDC coverage of instruction
// duplication per benchmark and protection level (the paper's Figure 2),
// plus the average coverage gap (paper: 31.21% average, up to 82%).
func Figure2(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: SDC coverage of instruction duplication, IR vs assembly level\n")
	fmt.Fprintf(&sb, "%-14s", "Benchmark")
	for _, l := range Levels {
		fmt.Fprintf(&sb, "  IR@%-3.0f%% Asm@%-3.0f%%", float64(l)*100, float64(l)*100)
	}
	sb.WriteString("     gap@100%\n")

	var gapSum float64
	var gapMax float64
	gapBench := ""
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s", r.Name)
		for _, l := range Levels {
			fmt.Fprintf(&sb, "  %6.1f%% %6.1f%%", r.CoverageIR(l)*100, r.CoverageAsm(l)*100)
		}
		gap := r.CoverageIR(dup.Level100) - r.CoverageAsm(dup.Level100)
		fmt.Fprintf(&sb, "  %8.1f%%\n", gap*100)
		gapSum += gap
		if gap > gapMax {
			gapMax = gap
			gapBench = r.Name
		}
	}
	if len(results) > 0 {
		fmt.Fprintf(&sb, "average IR-vs-assembly coverage gap at full protection: %.2f%% (max %.2f%% in %s)\n",
			gapSum/float64(len(results))*100, gapMax*100, gapBench)
		// Report the statistical resolution of a single cell so readers
		// know which differences are meaningful.
		r := results[0]
		_, lo, hi := campaign.CoverageCI(r.Raw.Asm, r.ID[dup.Level100].Asm)
		fmt.Fprintf(&sb, "per-cell 95%% CI width at this campaign size: about ±%.1f points\n",
			(hi-lo)/2*100)
	}
	return sb.String()
}

// penetrationOrigins maps each asm origin to its Figure 3 category name.
var penetrationOrigins = []struct {
	origin asm.Origin
	label  string
}{
	{asm.OriginStoreReload, "store"},
	{asm.OriginBranchTest, "branch"},
	{asm.OriginCmpFolded, "comparison"},
	{asm.OriginCallArg, "call"},
	{asm.OriginFrame, "mapping"},
	{asm.OriginNone, "other"},
}

// Figure3 renders the distribution of deficiency root causes (the
// paper's Figure 3): assembly-level SDCs of the fully protected programs
// classified by the provenance of the corrupted instruction. Paper
// shares: store 39.1%, branch 35.7%, comparison 19.7%, call 3.1%,
// mapping 2.5%.
func Figure3(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: root causes of assembly-level protection deficiencies (full protection)\n")
	fmt.Fprintf(&sb, "%-14s %9s", "Benchmark", "cases")
	for _, p := range penetrationOrigins {
		fmt.Fprintf(&sb, " %10s", p.label)
	}
	sb.WriteString("\n")

	var totals [asm.NumOrigins]int
	grand := 0
	for _, r := range results {
		st := r.ID[dup.Level100].Asm
		total := 0
		for _, c := range st.SDCByOrigin {
			total += c
		}
		fmt.Fprintf(&sb, "%-14s %9d", r.Name, total)
		for _, p := range penetrationOrigins {
			pct := 0.0
			if total > 0 {
				pct = float64(st.SDCByOrigin[p.origin]) / float64(total) * 100
			}
			fmt.Fprintf(&sb, " %9.1f%%", pct)
			totals[p.origin] += st.SDCByOrigin[p.origin]
		}
		sb.WriteString("\n")
		grand += total
	}
	fmt.Fprintf(&sb, "%-14s %9d", "ALL", grand)
	for _, p := range penetrationOrigins {
		pct := 0.0
		if grand > 0 {
			pct = float64(totals[p.origin]) / float64(grand) * 100
		}
		fmt.Fprintf(&sb, " %9.1f%%", pct)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Figure17 renders ID-IR, ID-Assembly, and Flowery coverage per
// benchmark and level (the paper's Figure 17).
func Figure17(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 17: SDC coverage — ID at IR level, ID at assembly level, Flowery at assembly level\n")
	fmt.Fprintf(&sb, "%-14s %6s %9s %9s %9s\n", "Benchmark", "level", "ID-IR", "ID-Asm", "Flowery")
	var avgID, avgFL float64
	n := 0
	for _, r := range results {
		for _, l := range Levels {
			fmt.Fprintf(&sb, "%-14s %5.0f%% %8.1f%% %8.1f%% %8.1f%%\n",
				r.Name, float64(l)*100,
				r.CoverageIR(l)*100, r.CoverageAsm(l)*100, r.CoverageFlowery(l)*100)
		}
		avgID += r.CoverageAsm(dup.Level100)
		avgFL += r.CoverageFlowery(dup.Level100)
		n++
	}
	if n > 0 {
		fmt.Fprintf(&sb, "average at full protection: ID-Assembly %.2f%%, Flowery %.2f%%\n",
			avgID/float64(n)*100, avgFL/float64(n)*100)
	}
	return sb.String()
}

// Overhead renders the additional runtime overhead Flowery adds on top
// of plain instruction duplication, per protection level, measured as
// fault-free dynamic assembly instructions (§7.2; the paper reports
// 1.93/1.63/3.72/3.74% at 30/50/70/100%).
func Overhead(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Section 7.2: runtime overhead of Flowery on top of instruction duplication\n")
	fmt.Fprintf(&sb, "%-14s", "Benchmark")
	for _, l := range Levels {
		fmt.Fprintf(&sb, " %9.0f%%", float64(l)*100)
	}
	sb.WriteString("   (dup overhead vs raw at 100%)\n")

	avg := make([]float64, len(Levels))
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s", r.Name)
		for i, l := range Levels {
			id := float64(r.ID[l].DynAsm)
			fl := float64(r.Flowery[l].DynAsm)
			ov := (fl - id) / id * 100
			avg[i] += ov
			fmt.Fprintf(&sb, " %9.2f%%", ov)
		}
		dupOv := (float64(r.ID[dup.Level100].DynAsm)/float64(r.Raw.DynAsm) - 1) * 100
		fmt.Fprintf(&sb, "   %9.2f%%\n", dupOv)
	}
	if len(results) > 0 {
		fmt.Fprintf(&sb, "%-14s", "average")
		for i := range Levels {
			fmt.Fprintf(&sb, " %9.2f%%", avg[i]/float64(len(results)))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// PassTime renders the compile-time cost of the Flowery transform
// (§7.3; the paper reports an average of 0.12 s, correlated with static
// instruction count).
func PassTime(results []*BenchResult) string {
	var sb strings.Builder
	sb.WriteString("Section 7.3: Flowery transform time (full protection)\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %8s %8s %8s\n",
		"Benchmark", "static inst", "time", "stores", "branches", "cmps")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s %12d %12s %8d %8d %8d\n",
			r.Name, r.StaticInstrs, r.FloweryStats.Elapsed.Round(1000).String(),
			r.FloweryStats.StoresHoisted, r.FloweryStats.BranchesPatched, r.FloweryStats.CmpsIsolated)
	}
	return sb.String()
}
