// Telemetry overhead guard: engine metrics flush once per run (never
// per instruction), and a nil registry is the no-op sink, so golden-run
// throughput must be indistinguishable with telemetry disabled, and
// within noise of it when enabled. The benchmarks report both modes;
// TestTelemetryOverheadGuard (ci.sh tier 2) asserts they agree within
// 2%, which bounds the no-op sink's cost from above — the enabled path
// strictly supersets the disabled one's work.

package experiment

import (
	"fmt"
	"os"
	"testing"
	"time"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/machine"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

// overheadEngine builds the asm engine for the same benchmark simbench
// leads with, so the guard watches the throughput the evaluation reports.
func overheadEngine(tb testing.TB) sim.Engine {
	tb.Helper()
	bm, ok := bench.ByName("crc32")
	if !ok {
		tb.Fatal("crc32 benchmark missing")
	}
	m := bm.Build()
	prog, err := backend.Lower(m)
	if err != nil {
		tb.Fatalf("lower: %v", err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		tb.Fatalf("machine: %v", err)
	}
	return mc
}

func benchmarkGoldenRuns(b *testing.B, opts sim.Options) {
	eng := overheadEngine(b)
	if r := eng.Run(sim.Fault{}, opts); r.Status != sim.StatusOK { // warmup pays predecode
		b.Fatalf("golden run failed: %v", r.Status)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instrs += eng.Run(sim.Fault{}, opts).DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTelemetryDisabled is engine throughput on the no-op sink
// (nil registry) — the default every caller gets without -metrics/-trace.
func BenchmarkTelemetryDisabled(b *testing.B) {
	benchmarkGoldenRuns(b, sim.Options{})
}

// BenchmarkTelemetryEnabled is the same workload reporting into a live
// registry. Compare against BenchmarkTelemetryDisabled.
func BenchmarkTelemetryEnabled(b *testing.B) {
	benchmarkGoldenRuns(b, sim.Options{Metrics: telemetry.New()})
}

// overheadRate is one median-of-alternating-samples throughput figure,
// the same estimator simbench uses (throughput).
func overheadRate(eng sim.Engine, opts sim.Options) float64 {
	sample := func() float64 {
		start := time.Now()
		var instrs int64
		for time.Since(start) < simBenchSample {
			instrs += eng.Run(sim.Fault{}, opts).DynInstrs
		}
		return float64(instrs) / time.Since(start).Seconds()
	}
	samples := make([]float64, 0, simBenchReps)
	for i := 0; i < simBenchReps; i++ {
		samples = append(samples, sample())
	}
	return median(samples)
}

// TestTelemetryOverheadGuard fails if disabled- and enabled-telemetry
// throughput diverge by more than 2%. Timing-sensitive, so it only runs
// when TELEMETRY_OVERHEAD_GUARD=1 (ci.sh sets it in tier 2) and retries
// before declaring a regression.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 to run the timing guard")
	}
	eng := overheadEngine(t)
	disabled := sim.Options{}
	enabled := sim.Options{Metrics: telemetry.New()}
	eng.Run(sim.Fault{}, disabled)
	eng.Run(sim.Fault{}, enabled)

	const tolerance = 0.98
	const attempts = 3
	var verdicts []string
	for a := 1; a <= attempts; a++ {
		// Alternate the measurement order across attempts so a warmup or
		// drift bias cannot systematically favor one mode.
		var off, on float64
		if a%2 == 1 {
			off, on = overheadRate(eng, disabled), overheadRate(eng, enabled)
		} else {
			on, off = overheadRate(eng, enabled), overheadRate(eng, disabled)
		}
		lo, hi := off, on
		if lo > hi {
			lo, hi = hi, lo
		}
		verdict := fmt.Sprintf("attempt %d: disabled %.1f MI/s, enabled %.1f MI/s (ratio %.4f)",
			a, off/1e6, on/1e6, lo/hi)
		if lo >= tolerance*hi {
			t.Log(verdict)
			return
		}
		verdicts = append(verdicts, verdict)
	}
	t.Fatalf("telemetry overhead above 2%% in all %d attempts:\n%s",
		attempts, joinLines(verdicts))
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += s
	}
	return out
}
