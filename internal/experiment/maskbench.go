// Masked-campaign benchmark: cross-validates the bit-level static
// masking analysis (internal/bitmask, DESIGN.md §15) against ground
// truth. For each benchmark × layer it runs the same unprotected
// campaign three ways — exhaustive Monte-Carlo, equivalence-pruned
// (PR 3), and pruned with proven-masked bit choices scored statically —
// and reports the extra injection reduction masking buys on top of
// pruning, whether the masked estimate stays inside the full campaign's
// 95% interval, and the static-vs-dynamic agreement rate of a sample of
// proven-masked injections (every one must be benign, or the analysis
// is unsound).

package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"flowery/internal/campaign"
	"flowery/internal/pipeline"
)

// MaskBenchRuns is maskbench's default full-campaign size (matching
// prunebench: the reduction factor and the cross-validation sharpness
// both come from the full side).
const MaskBenchRuns = 20000

// MaskBenchPilots is the default per-class pilot budget of the pruned
// sides. One value rather than a grid: the masked-vs-pruned comparison
// is about the plan composition, and the ratio is nearly budget-
// independent.
var MaskBenchPilots = []int{4}

// MaskProbeSamples is the default size of the proven-masked validation
// sample each point injects.
const MaskProbeSamples = 1000

// maskBenchDefault pairs the CI gate's control-heavy kernel with the
// benchmark whose asm layer shows the strongest static masking (bit-
// manipulating trie traversal).
var maskBenchDefault = []string{"crc32", "patricia"}

// MaskPoint is one full vs pruned vs pruned+masked comparison.
type MaskPoint struct {
	Benchmark string `json:"benchmark"`
	Layer     string `json:"layer"` // "ir" or "asm"
	// PilotsPerClass is the pruned campaigns' average per-class budget.
	PilotsPerClass int `json:"pilots_per_class"`

	// Population is the injectable fault-site count all campaigns
	// sample; Classes and DeadSites describe the partition. MaskedSites
	// and MaskedBits are the statically proven-masked population among
	// live classes (sites with ≥1 masked choice, and masked (site, bit)
	// pairs out of TotalBits = 64 × Population).
	Population  int64 `json:"population"`
	Classes     int   `json:"classes"`
	DeadSites   int64 `json:"dead_sites"`
	MaskedSites int64 `json:"masked_sites"`
	MaskedBits  int64 `json:"masked_bits"`
	TotalBits   int64 `json:"total_bits"`

	// Runs is the full campaign's injection count; PrunedPilots and
	// MaskedPilots the two pruned campaigns'. Reduction is the masked
	// campaign's total factor over the full campaign; ReductionExtra is
	// the factor over pruning alone (the masking analysis's own
	// contribution).
	Runs           int     `json:"runs"`
	PrunedPilots   int     `json:"pruned_pilots"`
	MaskedPilots   int     `json:"masked_pilots"`
	Reduction      float64 `json:"reduction"`
	ReductionExtra float64 `json:"reduction_extra"`

	FullSDC   float64 `json:"full_sdc"`
	FullLo    float64 `json:"full_sdc_lo"`
	FullHi    float64 `json:"full_sdc_hi"`
	PrunedSDC float64 `json:"pruned_sdc"`
	MaskedSDC float64 `json:"masked_sdc"`
	MaskedLo  float64 `json:"masked_sdc_lo"`
	MaskedHi  float64 `json:"masked_sdc_hi"`

	// InsideCI reports whether the masked estimate falls inside the
	// full campaign's 95% interval — the cross-validation verdict.
	InsideCI bool `json:"inside_ci"`

	// ProbeSamples proven-masked (site, bit) faults were injected;
	// ProbeBenign came back benign. Agreement is their ratio and the
	// analysis is sound only at exactly 1.
	ProbeSamples int     `json:"probe_samples"`
	ProbeBenign  int     `json:"probe_benign"`
	Agreement    float64 `json:"agreement"`
}

// RunMaskBench cross-validates pruned+masked against pruned and full
// campaigns on the named benchmarks (crc32 and patricia when empty) for
// every budget in pilots (MaskBenchPilots when nil). cfg.Runs of 0
// selects MaskBenchRuns. All sides go through one artifact pipeline, so
// the full and pruned campaigns are shared with any other artifact that
// requested them.
func RunMaskBench(names []string, pilots []int, cfg Config) ([]MaskPoint, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = MaskBenchRuns
	}
	cfg.Pruning = campaign.PruneNone // the study below runs every side explicitly
	cfg.MaskStatic = false
	cfg = cfg.withDefaults()
	if len(names) == 0 {
		names = maskBenchDefault
	}
	if len(pilots) == 0 {
		pilots = MaskBenchPilots
	}
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}

	type unit struct {
		bench int
		layer pipeline.Layer
		k     int
	}
	var units []unit
	for i := range bms {
		for _, l := range []pipeline.Layer{pipeline.LayerIR, pipeline.LayerAsm} {
			for _, k := range pilots {
				units = append(units, unit{bench: i, layer: l, k: k})
			}
		}
	}

	study := NewStudy(cfg)
	points := make([]MaskPoint, len(units))
	err = pipeline.ForEach(study.Pipeline().Config().Parallel, len(units), func(i int) error {
		u := units[i]
		src := pipeline.BenchSource(bms[u.bench])
		full, err := study.Pipeline().Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: u.layer})
		if err != nil {
			return err
		}
		pruned, err := study.Pipeline().Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: u.layer, Pruning: campaign.PruneClasses, PilotsPerClass: u.k})
		if err != nil {
			return err
		}
		opts := pipeline.CampaignOpts{
			Layer: u.layer, Pruning: campaign.PruneClasses,
			PilotsPerClass: u.k, MaskStatic: true,
		}
		masked, err := study.Pipeline().Campaign(src, pipeline.RawVariant(), opts)
		if err != nil {
			return err
		}
		probe, err := study.Pipeline().MaskedProbe(src, pipeline.RawVariant(), opts, MaskProbeSamples)
		if err != nil {
			return err
		}
		fsdc, flo, fhi := full.SDCRateCI()
		msdc, mlo, mhi := masked.SDCRateCI()
		points[i] = MaskPoint{
			Benchmark:      bms[u.bench].Name,
			Layer:          layerName(u.layer),
			PilotsPerClass: u.k,
			Population:     masked.GoldenInjectable,
			Classes:        masked.Classes,
			DeadSites:      masked.DeadSites,
			MaskedSites:    masked.MaskedSites,
			MaskedBits:     masked.MaskedBits,
			TotalBits:      64 * masked.GoldenInjectable,
			Runs:           full.Runs,
			PrunedPilots:   pruned.PilotRuns,
			MaskedPilots:   masked.PilotRuns,
			Reduction:      float64(full.Runs) / float64(masked.PilotRuns),
			ReductionExtra: float64(pruned.PilotRuns) / float64(masked.PilotRuns),
			FullSDC:        fsdc, FullLo: flo, FullHi: fhi,
			PrunedSDC: pruned.EstRates[campaign.OutcomeSDC],
			MaskedSDC: msdc, MaskedLo: mlo, MaskedHi: mhi,
			InsideCI:     msdc >= flo && msdc <= fhi,
			ProbeSamples: probe.Samples,
			ProbeBenign:  probe.Benign,
			Agreement:    probe.Agreement(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// MaskBench renders the cross-validation table.
func MaskBench(points []MaskPoint) string {
	var sb strings.Builder
	sb.WriteString("Static bit-masking cross-validation: pruned+masked vs pruned vs full campaigns\n")
	sb.WriteString(fmt.Sprintf("%-12s %-5s %2s %8s %7s %8s %8s %6s %6s  %-24s %-8s %-8s %6s %6s\n",
		"benchmark", "layer", "k", "popul", "masked%", "pilots", "masked", "reduct", "extra",
		"full SDC [95% CI]", "pruned", "masked", "inside", "agree"))
	for _, p := range points {
		verdict := "no"
		if p.InsideCI {
			verdict = "yes"
		}
		sb.WriteString(fmt.Sprintf("%-12s %-5s %2d %8d %6.1f%% %8d %8d %5.1fx %5.2fx  %.4f [%.4f, %.4f]  %.4f   %.4f   %-6s %.3f\n",
			p.Benchmark, p.Layer, p.PilotsPerClass, p.Population,
			float64(p.MaskedBits)/float64(p.TotalBits)*100,
			p.PrunedPilots, p.MaskedPilots, p.Reduction, p.ReductionExtra,
			p.FullSDC, p.FullLo, p.FullHi, p.PrunedSDC, p.MaskedSDC, verdict, p.Agreement))
	}
	return sb.String()
}

// MaskBenchJSON marshals the comparisons (the BENCH_6.json artifact).
func MaskBenchJSON(points []MaskPoint, cfg Config) ([]byte, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = MaskBenchRuns
	}
	doc := struct {
		Runs    int         `json:"runs"`
		Seed    int64       `json:"seed"`
		Results []MaskPoint `json:"results"`
	}{runs, cfg.Seed, points}
	return json.MarshalIndent(doc, "", "  ")
}
