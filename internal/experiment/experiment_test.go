package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"flowery/internal/bench"
	"flowery/internal/dup"
)

// smallCfg keeps test campaigns cheap.
var smallCfg = Config{Runs: 150, ProfileSamples: 200, Seed: 11}

// runOne caches a single benchmark's pipeline for the formatter tests.
func runOne(t *testing.T) *BenchResult {
	t.Helper()
	bm, _ := bench.ByName("fft2")
	r, err := RunBenchmark(bm, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBenchmarkEndToEnd(t *testing.T) {
	r := runOne(t)
	if r.Name != "fft2" || r.Suite != "MiBench" {
		t.Fatalf("metadata lost: %+v", r)
	}
	if r.Raw.DynIR == 0 || r.Raw.DynAsm <= r.Raw.DynIR {
		t.Fatalf("raw dynamic counts implausible: %+v", r.Raw)
	}
	for _, l := range Levels {
		if _, ok := r.ID[l]; !ok {
			t.Fatalf("missing ID stats for level %v", l)
		}
		if _, ok := r.Flowery[l]; !ok {
			t.Fatalf("missing Flowery stats for level %v", l)
		}
		if r.ID[l].DynAsm <= r.Raw.DynAsm {
			t.Errorf("level %v: protection added no instructions", l)
		}
		if r.Flowery[l].DynAsm <= r.ID[l].DynAsm {
			t.Errorf("level %v: Flowery added no instructions", l)
		}
		// Coverage values must be valid proportions.
		for _, c := range []float64{r.CoverageIR(l), r.CoverageAsm(l), r.CoverageFlowery(l)} {
			if c < 0 || c > 1 {
				t.Fatalf("coverage out of range: %v", c)
			}
		}
	}
	if r.StaticInstrs == 0 {
		t.Error("static instruction count missing")
	}
	if r.FloweryStats.Elapsed <= 0 {
		t.Error("flowery timing missing")
	}

	// Headline shape on this benchmark: IR coverage ≥ asm coverage at
	// full protection, and Flowery ≥ plain ID at asm level.
	if r.CoverageIR(dup.Level100) < r.CoverageAsm(dup.Level100)-0.05 {
		t.Errorf("IR coverage (%v) below asm coverage (%v)",
			r.CoverageIR(dup.Level100), r.CoverageAsm(dup.Level100))
	}
	if r.CoverageFlowery(dup.Level100) < r.CoverageAsm(dup.Level100)-0.05 {
		t.Errorf("Flowery (%v) below plain ID (%v)",
			r.CoverageFlowery(dup.Level100), r.CoverageAsm(dup.Level100))
	}

	// All report formatters must render this result with its name and
	// the expected headline rows.
	results := []*BenchResult{r}
	for _, c := range []struct {
		name   string
		render func([]*BenchResult) string
		want   []string
	}{
		{"table1", Table1, []string{"fft2", "MiBench", "DI Count"}},
		{"fig2", Figure2, []string{"fft2", "coverage gap"}},
		{"fig3", Figure3, []string{"fft2", "store", "comparison", "ALL"}},
		{"fig17", Figure17, []string{"fft2", "ID-IR", "Flowery"}},
		{"overhead", Overhead, []string{"fft2", "average"}},
		{"passtime", PassTime, []string{"fft2", "static inst"}},
	} {
		out := c.render(results)
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", c.name, w, out)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := runOne(t)
	data, err := ToJSON([]*BenchResult{r}, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if rep.Runs != smallCfg.Runs || len(rep.Benchmarks) != 1 {
		t.Fatalf("header wrong: %+v", rep)
	}
	jb := rep.Benchmarks[0]
	if jb.Name != "fft2" || len(jb.Levels) != 4 {
		t.Fatalf("benchmark record wrong: %+v", jb)
	}
	for key, ld := range jb.Levels {
		if ld.CoverageAsmCI[0] > ld.CoverageAsm+1e-9 || ld.CoverageAsmCI[1] < ld.CoverageAsm-1e-9 {
			t.Errorf("level %s: point estimate outside its CI", key)
		}
	}
}

func TestRunAllFiltersAndErrors(t *testing.T) {
	if _, err := RunAll([]string{"nonexistent"}, smallCfg, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestConvergenceIntervalsTighten(t *testing.T) {
	bm, _ := bench.ByName("fft2")
	r, err := RunConvergence(bm, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(ConvergenceSizes) {
		t.Fatalf("expected %d points, got %d", len(ConvergenceSizes), len(r.Points))
	}
	first := r.Points[0]
	last := r.Points[len(r.Points)-1]
	if (last.RateHi - last.RateLo) >= (first.RateHi - first.RateLo) {
		t.Fatalf("SDC-rate interval did not tighten: %v -> %v",
			first.RateHi-first.RateLo, last.RateHi-last.RateLo)
	}
	for _, p := range r.Points {
		if p.SDCRate < p.RateLo-1e-9 || p.SDCRate > p.RateHi+1e-9 {
			t.Fatalf("rate outside CI at %d runs", p.Runs)
		}
	}
	out := Convergence([]*ConvergenceResult{r})
	if !strings.Contains(out, "3000") || !strings.Contains(out, "fft2") {
		t.Fatalf("convergence report malformed:\n%s", out)
	}
}

func TestAblationEndToEnd(t *testing.T) {
	bm, _ := bench.ByName("lud")
	r, err := RunAblation(bm, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The combined configuration dominates (within noise) every single
	// patch, and every configuration is a valid campaign.
	for _, st := range []struct {
		label string
		runs  int
	}{
		{"raw", r.Raw.Runs}, {"id", r.ID.Runs}, {"eager", r.Eager.Runs},
		{"branch", r.Branch.Runs}, {"cmp", r.Cmp.Runs}, {"all", r.All.Runs},
	} {
		if st.runs != smallCfg.Runs {
			t.Fatalf("%s campaign has %d runs", st.label, st.runs)
		}
	}
	out := Ablation([]*AblationResult{r})
	for _, w := range []string{"lud", "ID only", "+eager", "residual"} {
		if !strings.Contains(out, w) {
			t.Errorf("ablation output missing %q", w)
		}
	}
}
