package experiment

import (
	"runtime"
	"strings"
	"sync"
	"time"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/pipeline"
	"flowery/internal/telemetry"
)

// Study is the pipeline-backed experiment driver: every experiment
// (tables, figures, ablation, pressure, convergence) requests its
// artifacts from one shared memoized pipeline, so overlapping work —
// the same profile across levels, the same duplicated module under ID
// and Flowery, the same campaign under several figures — is computed
// exactly once per process. Experiments themselves become pure renderers
// over the cached artifacts.
//
// Work fans out over (benchmark × variant × level) items through the
// pipeline's bounded-parallel scheduler; results are assembled in input
// order, so output is deterministic regardless of scheduling.
type Study struct {
	cfg  Config
	p    *pipeline.Pipeline
	root *telemetry.Span // the study's root trace span (nil without telemetry)

	mu      sync.Mutex
	results map[string][]*BenchResult
}

// NewStudy builds a study over a fresh memoized pipeline.
func NewStudy(cfg Config) *Study { return newStudy(cfg, false) }

// newStudy optionally disables memoization (the pipebench baseline).
func newStudy(cfg Config, disabled bool) *Study {
	cfg = cfg.withDefaults()
	par := cfg.Workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	root := cfg.Telemetry.StartSpan(nil, "study")
	pcfg := pipeline.Config{
		Runs:           cfg.Runs,
		ProfileSamples: cfg.ProfileSamples,
		Seed:           cfg.Seed,
		Parallel:       par,
		// The scheduler supplies the breadth, so individual campaigns
		// run single-threaded; outcome statistics are identical either
		// way (campaign's scheduling-independence contract).
		CampaignWorkers: 1,
		Shards:          cfg.Shards,
		ShardProcs:      cfg.ShardWorkers,
		RemoteWorkers:   cfg.RemoteWorkers,
		Disabled:        disabled,
		Reference:       cfg.Reference,
		Artifacts:       cfg.Artifacts,
		Telemetry:       cfg.Telemetry,
		Span:            root,
	}
	if par == 1 {
		// No fan-out to feed — give the one campaign at a time the full
		// worker budget instead.
		pcfg.CampaignWorkers = cfg.Workers
	}
	return &Study{cfg: cfg, p: pipeline.New(pcfg), root: root, results: make(map[string][]*BenchResult)}
}

// Finish ends the study's root trace span. Call it once, after the last
// experiment and before rendering the telemetry report; it is a no-op
// without telemetry.
func (s *Study) Finish() { s.root.End() }

// Config returns the study's (defaults-filled) configuration.
func (s *Study) Config() Config { return s.cfg }

// Telemetry exposes the underlying pipeline's cache counters.
func (s *Study) Telemetry() pipeline.Telemetry { return s.p.Telemetry() }

// Pipeline exposes the underlying artifact pipeline.
func (s *Study) Pipeline() *pipeline.Pipeline { return s.p }

// levelStats assembles one variant's LevelStats from both layers'
// campaigns, equivalence-pruned when the study config asks for it.
func (s *Study) levelStats(src pipeline.Source, v pipeline.Variant) (LevelStats, error) {
	opts := pipeline.CampaignOpts{
		Pruning:        s.cfg.Pruning,
		PilotsPerClass: s.cfg.PilotsPerClass,
		MaskStatic:     s.cfg.MaskStatic,
	}
	run := func(opts pipeline.CampaignOpts) (campaign.Stats, error) {
		if s.cfg.Sections {
			res, err := s.p.CampaignSectioned(src, v, opts)
			return res.Stats, err
		}
		return s.p.Campaign(src, v, opts)
	}
	opts.Layer = pipeline.LayerIR
	irStats, err := run(opts)
	if err != nil {
		return LevelStats{}, err
	}
	opts.Layer = pipeline.LayerAsm
	asmStats, err := run(opts)
	if err != nil {
		return LevelStats{}, err
	}
	return LevelStats{
		IR:     irStats,
		Asm:    asmStats,
		DynIR:  irStats.GoldenDyn,
		DynAsm: asmStats.GoldenDyn,
	}, nil
}

// studyUnit is one (benchmark, variant) work item of Results.
type studyUnit struct {
	bench   int // index into the benchmark list
	variant pipeline.Variant
	isRaw   bool
	flowery bool
	level   dup.Level
}

// Results computes BenchResults for the named benchmarks (all 16 when
// empty) through the pipeline, fanning (benchmark × variant × level)
// items across the scheduler. Assembled results are memoized per name
// set; the underlying artifacts are shared across all name sets. report,
// when non-nil, receives each benchmark's name and the wall-clock span
// its work items covered (spans of different benchmarks overlap).
func (s *Study) Results(names []string, report func(string, time.Duration)) ([]*BenchResult, error) {
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}
	resolved := make([]string, len(bms))
	for i, bm := range bms {
		resolved[i] = bm.Name
	}
	memoKey := strings.Join(resolved, ",")
	s.mu.Lock()
	if cached, ok := s.results[memoKey]; ok {
		s.mu.Unlock()
		return cached, nil
	}
	s.mu.Unlock()

	var units []studyUnit
	for i := range bms {
		units = append(units, studyUnit{bench: i, variant: pipeline.RawVariant(), isRaw: true})
		for _, l := range Levels {
			units = append(units, studyUnit{bench: i, variant: pipeline.IDVariant(l), level: l})
			units = append(units, studyUnit{
				bench: i, variant: pipeline.FloweryVariant(l, flowery.All()),
				flowery: true, level: l,
			})
		}
	}

	// Per-benchmark wall spans for progress reporting.
	type span struct {
		start   time.Time
		pending int
	}
	spans := make([]span, len(bms))
	perBench := len(units) / len(bms)
	for i := range spans {
		spans[i].pending = perBench
	}
	var spanMu sync.Mutex

	slots := make([]LevelStats, len(units))
	err = pipeline.ForEach(s.p.Config().Parallel, len(units), func(i int) error {
		u := units[i]
		spanMu.Lock()
		if spans[u.bench].start.IsZero() {
			spans[u.bench].start = time.Now()
		}
		spanMu.Unlock()

		ls, err := s.levelStats(pipeline.BenchSource(bms[u.bench]), u.variant)
		slots[i] = ls

		spanMu.Lock()
		spans[u.bench].pending--
		done := spans[u.bench].pending == 0
		elapsed := time.Since(spans[u.bench].start)
		spanMu.Unlock()
		if done && err == nil && report != nil {
			report(bms[u.bench].Name, elapsed)
		}
		return err
	})
	if err != nil {
		return nil, err
	}

	out := make([]*BenchResult, len(bms))
	for i, bm := range bms {
		out[i] = &BenchResult{
			Name:    bm.Name,
			Suite:   bm.Suite,
			Domain:  bm.Domain,
			ID:      make(map[dup.Level]LevelStats),
			Flowery: make(map[dup.Level]LevelStats),
		}
	}
	for i, u := range units {
		switch {
		case u.isRaw:
			out[u.bench].Raw = slots[i]
		case u.flowery:
			out[u.bench].Flowery[u.level] = slots[i]
		default:
			out[u.bench].ID[u.level] = slots[i]
		}
	}
	// §7.3 metadata: static size of the fully-duplicated module and the
	// Flowery transform statistics at full protection. Cache hits — the
	// modules were produced for the campaigns above.
	for i, bm := range bms {
		src := pipeline.BenchSource(bm)
		n, err := s.p.StaticInstrs(src, pipeline.IDVariant(dup.Level100))
		if err != nil {
			return nil, err
		}
		out[i].StaticInstrs = n
		fst, err := s.p.FloweryStats(src, pipeline.FloweryVariant(dup.Level100, flowery.All()))
		if err != nil {
			return nil, err
		}
		out[i].FloweryStats = fst
	}

	s.mu.Lock()
	s.results[memoKey] = out
	s.mu.Unlock()
	return out, nil
}

// ablationVariants mirrors ablationConfigs as pipeline variants: full
// duplication, optionally patched. The zero Options config is plain
// full duplication (no Flowery node at all), matching the legacy path.
func ablationVariants() []pipeline.Variant {
	out := make([]pipeline.Variant, 0, len(ablationConfigs))
	for _, ac := range ablationConfigs {
		if ac.Opts == (flowery.Options{}) {
			out = append(out, pipeline.FullIDVariant())
		} else {
			out = append(out, pipeline.FullFloweryVariant(ac.Opts))
		}
	}
	return out
}

// Ablation measures one benchmark under every patch subset through the
// pipeline (the raw baseline and the "Flowery (all)" campaign are shared
// with any other experiment that needs them).
func (s *Study) Ablation(bm bench.Benchmark) (*AblationResult, error) {
	src := pipeline.BenchSource(bm)
	variants := append([]pipeline.Variant{pipeline.RawVariant()}, ablationVariants()...)
	stats := make([]campaign.Stats, len(variants))
	err := pipeline.ForEach(s.p.Config().Parallel, len(variants), func(i int) error {
		st, err := s.p.Campaign(src, variants[i], pipeline.CampaignOpts{Layer: pipeline.LayerAsm})
		stats[i] = st
		return err
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: bm.Name,
		Raw:  stats[0],
		ID:   stats[1], Eager: stats[2], Branch: stats[3], Cmp: stats[4], All: stats[5],
	}, nil
}

// Pressure sweeps the backend's scratch-register count for one fully
// protected benchmark through the pipeline (see RunPressure for what the
// sweep demonstrates). Each scratch value lowers the shared raw and
// fully-duplicated module artifacts under its own backend config.
func (s *Study) Pressure(bm bench.Benchmark) (*PressureResult, error) {
	src := pipeline.BenchSource(bm)
	var scratches []int
	for scratch := backend.MinGPRScratch; scratch <= 9; scratch++ {
		scratches = append(scratches, scratch)
	}
	points := make([]PressurePoint, len(scratches))
	err := pipeline.ForEach(s.p.Config().Parallel, len(scratches), func(i int) error {
		bcfg := backend.Config{GPRScratch: scratches[i]}
		rawStats, err := s.p.Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: pipeline.LayerAsm, Backend: bcfg})
		if err != nil {
			return err
		}
		stats, err := s.p.Campaign(src, pipeline.FullIDVariant(),
			pipeline.CampaignOpts{Layer: pipeline.LayerAsm, Backend: bcfg})
		if err != nil {
			return err
		}
		comp, err := s.p.Compiled(src, pipeline.FullIDVariant(), bcfg)
		if err != nil {
			return err
		}
		points[i] = PressurePoint{
			Scratch:          scratches[i],
			StaticStoreSites: comp.Prog.OriginCounts()[asm.OriginStoreReload],
			Stats:            stats,
			Coverage:         campaign.Coverage(rawStats, stats),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &PressureResult{Name: bm.Name, Points: points}, nil
}

// Convergence sweeps campaign sizes for one benchmark through the
// pipeline; the raw and fully-protected compiled modules are built once
// and shared by every campaign size (see RunConvergence).
func (s *Study) Convergence(bm bench.Benchmark) (*ConvergenceResult, error) {
	src := pipeline.BenchSource(bm)
	points := make([]ConvergencePoint, len(ConvergenceSizes))
	err := pipeline.ForEach(s.p.Config().Parallel, len(ConvergenceSizes), func(i int) error {
		runs := ConvergenceSizes[i]
		rawStats, err := s.p.Campaign(src, pipeline.RawVariant(),
			pipeline.CampaignOpts{Layer: pipeline.LayerAsm, Runs: runs})
		if err != nil {
			return err
		}
		protStats, err := s.p.Campaign(src, pipeline.FullIDVariant(),
			pipeline.CampaignOpts{Layer: pipeline.LayerAsm, Runs: runs})
		if err != nil {
			return err
		}
		rate, rlo, rhi := rawStats.SDCRateCI()
		cov, clo, chi := campaign.CoverageCI(rawStats, protStats)
		points[i] = ConvergencePoint{
			Runs: runs, SDCRate: rate, RateLo: rlo, RateHi: rhi,
			Coverage: cov, CovLo: clo, CovHi: chi,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ConvergenceResult{Name: bm.Name, Points: points}, nil
}
