// Package experiment reproduces every table and figure of the paper's
// evaluation: Table 1 (benchmark inventory), Figure 2 (cross-layer SDC
// coverage of instruction duplication), Figure 3 (root-cause distribution
// of protection deficiencies), Figure 17 (Flowery vs ID coverage), §7.2
// (runtime overhead) and §7.3 (transform time). See DESIGN.md §5 for the
// experiment index.
package experiment

import (
	"fmt"
	"time"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/bitmask"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// Levels are the protection levels evaluated throughout the paper.
var Levels = []dup.Level{dup.Level30, dup.Level50, dup.Level70, dup.Level100}

// Config tunes the evaluation scale. The paper uses 3000 injections per
// campaign; the default here is smaller because campaigns run on a
// simulator, and can be raised with cmd/experiments -runs.
type Config struct {
	// Runs is the number of fault injections per campaign.
	Runs int
	// ProfileSamples is the injection count for SDC profiling.
	ProfileSamples int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards partitions every full campaign into this many run ranges
	// (campaign.RunSharded; 0 = unsharded). Outcomes are bit-identical
	// either way — gated by scripts/ci.sh — so this is purely a
	// scheduling/scale knob. Wired from cmd/experiments -shards.
	Shards int
	// ShardWorkers farms shards to this many worker processes
	// (internal/shard; <= 1 executes shards in-process). Requires the
	// host binary to call shard.MaybeServeWorker at startup. Wired from
	// cmd/experiments -shard-workers.
	ShardWorkers int
	// RemoteWorkers dials these socket shard workers (`flowery
	// shard-worker -listen`) instead of local worker processes
	// (shard.RemotePool; transport-only, bit-identical per DESIGN.md
	// §17). Wired from cmd/experiments -remote-workers.
	RemoteWorkers []string
	// Pruning selects equivalence-pruned campaigns (campaign.PruneClasses)
	// for every per-level measurement, trading exhaustive injection for
	// extrapolated statistics (DESIGN.md §10). Experiments that study
	// campaign mechanics themselves (ablation, pressure, convergence,
	// campbench) always run full campaigns.
	Pruning campaign.Pruning
	// PilotsPerClass is the pruned campaigns' average per-class pilot
	// budget (0 = DefaultPilotsPerClass when Pruning is enabled).
	PilotsPerClass int
	// MaskStatic composes the bit-level static masking analysis
	// (internal/bitmask) into every pruned campaign: statically proven-
	// masked bit choices are scored benign without injection and the
	// pilot budget shrinks accordingly. Only meaningful with Pruning:
	// classes — validated up front by the CLIs and rejected by
	// campaign.Spec.Validate otherwise. Wired from -maskstatic.
	MaskStatic bool
	// Sections switches every per-level measurement to compositional
	// per-section campaigns (campaign.RunSectioned, DESIGN.md §16):
	// error-propagation summaries are computed per content-hashed
	// section and composed into whole-program estimates, with summaries
	// of unchanged sections recalled from the artifact store across
	// processes. Composes with Pruning and MaskStatic; statistics are
	// stratified estimates like pruned campaigns'. Wired from -sections.
	Sections bool
	// Reference pins every simulated run to the engines' reference
	// interpretation loop instead of their predecoded fast cores
	// (sim.Options.Reference). Results are bit-identical; only the wall
	// clock changes. Exposed as cmd/experiments -refcore for the ci.sh
	// core-equivalence gate.
	Reference bool
	// Telemetry, when non-nil, is the registry the whole study reports
	// into: pipeline stage counters and spans, campaign counters, engine
	// run metrics. Wired from cmd/experiments -metrics/-trace and
	// cmd/flowery; nil keeps every layer on the no-op sink.
	Telemetry *telemetry.Registry
	// Artifacts, when non-nil, is the persistent campaign-artifact store
	// threaded into the study's pipeline (pipeline.Config.Artifacts), so
	// a re-run study — or the daemon's study jobs — recall campaign
	// statistics computed by earlier processes instead of re-injecting.
	Artifacts store.Store
}

// DefaultPilotsPerClass is the pilot budget pruned campaigns use when
// Config.PilotsPerClass is unset.
const DefaultPilotsPerClass = 3

// DefaultConfig returns the scale used by cmd/experiments. On a typical
// single core the full 16-benchmark evaluation takes on the order of ten
// minutes at this scale; raise Runs toward the paper's 3000 for tighter
// confidence intervals.
func DefaultConfig() Config {
	return Config{Runs: 600, ProfileSamples: 800, Seed: 2023}
}

// withDefaults fills only the unset scale fields from DefaultConfig.
// Caller-supplied Seed and Workers are always preserved (a zero Runs
// used to replace the whole config, silently discarding them).
func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.Runs <= 0 {
		c.Runs = def.Runs
	}
	if c.ProfileSamples <= 0 {
		c.ProfileSamples = def.ProfileSamples
	}
	if c.Pruning == campaign.PruneClasses && c.PilotsPerClass <= 0 {
		c.PilotsPerClass = DefaultPilotsPerClass
	}
	return c
}

// LevelStats holds one protection variant's campaign results at both
// layers plus its fault-free dynamic instruction counts.
type LevelStats struct {
	IR     campaign.Stats
	Asm    campaign.Stats
	DynIR  int64
	DynAsm int64
}

// BenchResult aggregates everything measured for one benchmark.
type BenchResult struct {
	Name   string
	Suite  string
	Domain string

	// Raw (unprotected) campaigns at both layers.
	Raw LevelStats

	// ID is plain instruction duplication per protection level.
	ID map[dup.Level]LevelStats
	// Flowery is duplication plus all three patches per level.
	Flowery map[dup.Level]LevelStats

	// FloweryStats records what the Flowery transform did at full
	// protection, including its compile time (§7.3).
	FloweryStats flowery.Stats
	// StaticInstrs is the static IR instruction count of the
	// fully-duplicated module (the size Flowery scans).
	StaticInstrs int
}

// CoverageIR returns ID SDC coverage measured at IR level.
func (r *BenchResult) CoverageIR(l dup.Level) float64 {
	return campaign.Coverage(r.Raw.IR, r.ID[l].IR)
}

// CoverageAsm returns ID SDC coverage measured at assembly level.
func (r *BenchResult) CoverageAsm(l dup.Level) float64 {
	return campaign.Coverage(r.Raw.Asm, r.ID[l].Asm)
}

// CoverageFlowery returns Flowery SDC coverage at assembly level.
func (r *BenchResult) CoverageFlowery(l dup.Level) float64 {
	return campaign.Coverage(r.Raw.Asm, r.Flowery[l].Asm)
}

// RunBenchmark executes the full chain for one benchmark: build →
// profile → select → duplicate → flowery → lower → campaigns, serially
// and without memoization. It is the reference implementation the
// pipeline path (Study) is equivalence-tested against; new callers
// should prefer NewStudy(cfg).Results.
func RunBenchmark(bm bench.Benchmark, cfg Config) (*BenchResult, error) {
	cfg = cfg.withDefaults()
	res := &BenchResult{
		Name:    bm.Name,
		Suite:   bm.Suite,
		Domain:  bm.Domain,
		ID:      make(map[dup.Level]LevelStats),
		Flowery: make(map[dup.Level]LevelStats),
	}

	profile, err := dup.BuildProfile(bm.Build(), dup.ProfileOptions{
		Samples: cfg.ProfileSamples,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", bm.Name, err)
	}

	res.Raw, err = measure(bm.Build(), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: raw: %w", bm.Name, err)
	}

	for _, level := range Levels {
		sel := dup.Select(profile, level)

		idMod := bm.Build()
		if err := dup.Apply(idMod, sel); err != nil {
			return nil, fmt.Errorf("%s: dup@%v: %w", bm.Name, level, err)
		}
		idStats, err := measure(idMod, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: ID@%v: %w", bm.Name, level, err)
		}
		res.ID[level] = idStats

		flMod := bm.Build()
		if err := dup.Apply(flMod, sel); err != nil {
			return nil, fmt.Errorf("%s: dup@%v: %w", bm.Name, level, err)
		}
		if level == dup.Level100 {
			res.StaticInstrs = staticInstrs(flMod)
		}
		fst, err := flowery.Apply(flMod, flowery.All())
		if err != nil {
			return nil, fmt.Errorf("%s: flowery@%v: %w", bm.Name, level, err)
		}
		if level == dup.Level100 {
			res.FloweryStats = fst
		}
		flStats, err := measure(flMod, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: flowery@%v: %w", bm.Name, level, err)
		}
		res.Flowery[level] = flStats
	}
	return res, nil
}

// measure runs campaigns for one module at both layers, pruned when the
// config asks for it (campaign.Run forwards pruning specs to RunPruned).
func measure(m *ir.Module, cfg Config) (LevelStats, error) {
	var ls LevelStats

	prog, err := backend.Lower(m)
	if err != nil {
		return ls, err
	}
	spec := campaign.Spec{
		Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers,
		Pruning: cfg.Pruning, PilotsPerClass: cfg.PilotsPerClass,
		Reference: cfg.Reference,
		Metrics:   cfg.Telemetry,
	}

	// The masking analyses run over exactly the instances the engines
	// execute (m after lowering, prog), so static indices line up.
	if cfg.MaskStatic {
		spec.Masks = bitmask.AnalyzeIR(m).Masked
	}
	irStats, err := campaign.Run(func() (sim.Engine, error) {
		return interp.New(m), nil
	}, spec)
	if err != nil {
		return ls, err
	}

	if cfg.MaskStatic {
		spec.Masks = bitmask.AnalyzeASM(prog).Masked
	}
	asmStats, err := campaign.Run(func() (sim.Engine, error) {
		return machine.New(m, prog)
	}, spec)
	if err != nil {
		return ls, err
	}

	ls.IR = irStats
	ls.Asm = asmStats
	ls.DynIR = irStats.GoldenDyn
	ls.DynAsm = asmStats.GoldenDyn
	return ls, nil
}

func staticInstrs(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// resolveBenchmarks maps names to benchmarks (all 16 when empty),
// preserving order.
func resolveBenchmarks(names []string) ([]bench.Benchmark, error) {
	if len(names) == 0 {
		return bench.All(), nil
	}
	var sel []bench.Benchmark
	for _, n := range names {
		bm, ok := bench.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", n)
		}
		sel = append(sel, bm)
	}
	return sel, nil
}

// RunAll executes the study for the named benchmarks (all 16 if names is
// empty) through the memoized pipeline and its parallel scheduler,
// reporting per-benchmark progress through report (may be nil).
func RunAll(names []string, cfg Config, report func(string, time.Duration)) ([]*BenchResult, error) {
	return NewStudy(cfg).Results(names, report)
}

// RunAllSerial is the pre-pipeline reference path: RunBenchmark for each
// benchmark strictly in order, nothing shared or memoized. Kept so the
// pipeline's equivalence guarantee stays checkable end to end
// (cmd/experiments -pipeline=false, and the tier-2 CI diff).
func RunAllSerial(names []string, cfg Config, report func(string, time.Duration)) ([]*BenchResult, error) {
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}
	var out []*BenchResult
	for _, bm := range bms {
		start := time.Now()
		r, err := RunBenchmark(bm, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if report != nil {
			report(bm.Name, time.Since(start))
		}
	}
	return out, nil
}
