// Campaign-throughput benchmark: measures what the checkpoint/fast-forward
// engine buys end to end. For each benchmark × layer × protection level it
// runs the same campaign twice — scratch (Snapshots: -1) and fast-forward
// (Snapshots: 0) — verifies the outcome statistics are bit-identical, and
// reports runs/sec for both plus the fraction of instruction work skipped.

package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// CampaignPerf is one scratch-vs-snapshot throughput measurement.
type CampaignPerf struct {
	Benchmark string `json:"benchmark"`
	Layer     string `json:"layer"` // "ir" or "asm"
	Protected bool   `json:"protected"`
	Runs      int    `json:"runs"`

	ScratchRunsPerSec  float64 `json:"scratch_runs_per_sec"`
	SnapshotRunsPerSec float64 `json:"snapshot_runs_per_sec"`
	// Speedup is SnapshotRunsPerSec / ScratchRunsPerSec.
	Speedup float64 `json:"speedup"`
	// SavedInstrFrac is the fraction of the campaign's instruction work
	// the fast-forward runs skipped (campaign.Stats.SavedFrac).
	SavedInstrFrac float64 `json:"saved_instr_frac"`
}

// RunCampaignPerf measures one benchmark at both layers, raw and
// duplication-protected. It fails if snapshots perturb any outcome count —
// the same invariant the campaign test suite checks, re-verified here on
// the exact configurations being reported.
func RunCampaignPerf(bm bench.Benchmark, cfg Config) ([]CampaignPerf, error) {
	cfg = cfg.withDefaults()
	var out []CampaignPerf
	for _, protect := range []bool{false, true} {
		m := bm.Build()
		if protect {
			if err := dup.ApplyFull(m); err != nil {
				return nil, err
			}
		}
		prog, err := backend.Lower(m)
		if err != nil {
			return nil, err
		}
		layers := []struct {
			name    string
			factory campaign.EngineFactory
		}{
			{"ir", func() (sim.Engine, error) { return interp.New(m), nil }},
			{"asm", func() (sim.Engine, error) { return machine.New(m, prog) }},
		}
		for _, l := range layers {
			p, err := measureCampaignPerf(bm.Name, l.name, protect, l.factory, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func measureCampaignPerf(name, layer string, protect bool, f campaign.EngineFactory, cfg Config) (CampaignPerf, error) {
	base := campaign.Spec{Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers, Reference: cfg.Reference}

	scratchSpec := base
	scratchSpec.Snapshots = -1
	scratch, err := campaign.Run(f, scratchSpec)
	if err != nil {
		return CampaignPerf{}, err
	}
	snap, err := campaign.Run(f, base)
	if err != nil {
		return CampaignPerf{}, err
	}
	if scratch.Counts != snap.Counts || scratch.SDCByOrigin != snap.SDCByOrigin {
		return CampaignPerf{}, fmt.Errorf("campbench %s/%s: snapshots perturbed outcomes: %v vs %v",
			name, layer, scratch.Counts, snap.Counts)
	}

	p := CampaignPerf{
		Benchmark:          name,
		Layer:              layer,
		Protected:          protect,
		Runs:               cfg.Runs,
		ScratchRunsPerSec:  scratch.RunsPerSec(),
		SnapshotRunsPerSec: snap.RunsPerSec(),
		SavedInstrFrac:     snap.SavedFrac(),
	}
	if p.ScratchRunsPerSec > 0 {
		p.Speedup = p.SnapshotRunsPerSec / p.ScratchRunsPerSec
	}
	return p, nil
}

// CampaignBench renders the measurements as a table.
func CampaignBench(perfs []CampaignPerf) string {
	var sb strings.Builder
	sb.WriteString("Campaign throughput: scratch vs checkpoint fast-forward\n")
	sb.WriteString(fmt.Sprintf("%-12s %-5s %-9s %8s %12s %12s %8s %10s\n",
		"benchmark", "layer", "protect", "runs", "scratch r/s", "snap r/s", "speedup", "saved"))
	for _, p := range perfs {
		prot := "raw"
		if p.Protected {
			prot = "dup-full"
		}
		sb.WriteString(fmt.Sprintf("%-12s %-5s %-9s %8d %12.1f %12.1f %7.2fx %9.1f%%\n",
			p.Benchmark, p.Layer, prot, p.Runs,
			p.ScratchRunsPerSec, p.SnapshotRunsPerSec, p.Speedup, p.SavedInstrFrac*100))
	}
	return sb.String()
}

// FastForwardSummary aggregates the checkpoint/fast-forward telemetry of
// every campaign in results: total instructions skipped, total executed.
func FastForwardSummary(results []*BenchResult) (saved, simulated int64) {
	add := func(ls LevelStats) {
		saved += ls.IR.SavedInstrs + ls.Asm.SavedInstrs
		simulated += ls.IR.SimulatedInstrs + ls.Asm.SimulatedInstrs
	}
	for _, r := range results {
		add(r.Raw)
		for _, ls := range r.ID {
			add(ls)
		}
		for _, ls := range r.Flowery {
			add(ls)
		}
	}
	return saved, simulated
}

// CampaignBenchJSON marshals the measurements (the BENCH_1.json artifact).
func CampaignBenchJSON(perfs []CampaignPerf, cfg Config) ([]byte, error) {
	doc := struct {
		Runs    int            `json:"runs"`
		Seed    int64          `json:"seed"`
		Results []CampaignPerf `json:"results"`
	}{cfg.Runs, cfg.Seed, perfs}
	return json.MarshalIndent(doc, "", "  ")
}
