package experiment

import (
	"fmt"
	"strings"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/machine"
	"flowery/internal/sim"
	"flowery/internal/stats"
)

// ConvergencePoint is one campaign size's estimate.
type ConvergencePoint struct {
	Runs     int
	SDCRate  float64
	RateLo   float64
	RateHi   float64
	Coverage float64
	CovLo    float64
	CovHi    float64
}

// ConvergenceResult sweeps campaign sizes for one benchmark.
type ConvergenceResult struct {
	Name   string
	Points []ConvergencePoint
}

// ConvergenceSizes are the campaign sizes swept, ending at the paper's
// 3000 (§4.3: "3,000 campaigns ... to achieve statistical significance").
var ConvergenceSizes = []int{100, 300, 600, 1000, 3000}

// RunConvergence measures how the assembly-level SDC rate and coverage
// estimates tighten as the campaign grows, justifying the choice of
// campaign size statistically rather than by convention.
func RunConvergence(bm bench.Benchmark, cfg Config) (*ConvergenceResult, error) {
	cfg = cfg.withDefaults()
	res := &ConvergenceResult{Name: bm.Name}

	raw := bm.Build()
	rawProg, err := backend.Lower(raw)
	if err != nil {
		return nil, err
	}
	prot := bm.Build()
	if err := dup.ApplyFull(prot); err != nil {
		return nil, err
	}
	protProg, err := backend.Lower(prot)
	if err != nil {
		return nil, err
	}

	for _, runs := range ConvergenceSizes {
		spec := campaign.Spec{Runs: runs, Seed: cfg.Seed, Workers: cfg.Workers, Reference: cfg.Reference}
		rawStats, err := campaign.Run(func() (sim.Engine, error) { return machine.New(raw, rawProg) }, spec)
		if err != nil {
			return nil, err
		}
		protStats, err := campaign.Run(func() (sim.Engine, error) { return machine.New(prot, protProg) }, spec)
		if err != nil {
			return nil, err
		}
		rate, rlo, rhi := rawStats.SDCRateCI()
		cov, clo, chi := campaign.CoverageCI(rawStats, protStats)
		res.Points = append(res.Points, ConvergencePoint{
			Runs: runs, SDCRate: rate, RateLo: rlo, RateHi: rhi,
			Coverage: cov, CovLo: clo, CovHi: chi,
		})
	}
	return res, nil
}

// Convergence renders the sweep.
func Convergence(results []*ConvergenceResult) string {
	var sb strings.Builder
	sb.WriteString("Campaign-size convergence (paper §4.3: why 3000 injections):\n")
	sb.WriteString("assembly level, raw SDC rate and full-protection coverage with 95% CIs\n")
	fmt.Fprintf(&sb, "%-14s %6s %22s %26s\n", "Benchmark", "runs", "raw SDC rate [CI]", "coverage [CI]")
	for _, r := range results {
		for _, p := range r.Points {
			fmt.Fprintf(&sb, "%-14s %6d   %5.1f%% [%5.1f%%,%5.1f%%]    %5.1f%% [%5.1f%%,%5.1f%%]\n",
				r.Name, p.Runs,
				p.SDCRate*100, p.RateLo*100, p.RateHi*100,
				p.Coverage*100, p.CovLo*100, p.CovHi*100)
		}
	}
	// The headline: the half-width at the paper's campaign size.
	if len(results) > 0 && len(results[0].Points) > 0 {
		last := results[0].Points[len(results[0].Points)-1]
		fmt.Fprintf(&sb, "at %d runs the SDC-rate interval is ±%.1f points (stats.Wilson at 95%%)\n",
			last.Runs, (last.RateHi-last.RateLo)/2*100)
	}
	return sb.String()
}

// statsPkgUsed anchors the stats dependency for documentation purposes.
var _ = stats.Z95
