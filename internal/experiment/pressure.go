package experiment

import (
	"fmt"
	"strings"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// PressurePoint is one cell of the register-pressure sensitivity study.
type PressurePoint struct {
	Scratch int
	// StaticStoreSites counts OriginStoreReload instructions in the
	// lowered protected program.
	StaticStoreSites int
	// Stats is the assembly-level campaign on the protected program.
	Stats campaign.Stats
	// Coverage vs the same-pressure raw baseline.
	Coverage float64
}

// PressureResult is the sweep for one benchmark.
type PressureResult struct {
	Name   string
	Points []PressurePoint
}

// RunPressure sweeps the backend's scratch-register count for one fully
// protected benchmark, probing the §8 conjecture that register-poor ISAs
// suffer store penetration too.
//
// The measured result is a mechanism confirmation by *insensitivity*:
// static store-reload sites and coverage barely move across the sweep,
// because the reload is forced by the checker's block split (the cache
// is emptied at the boundary regardless of its capacity), not by running
// out of registers mid-block. That is precisely the paper's root-cause
// claim — "when a checker is added … the temporary value to be stored is
// not immediately used, it is prone to be spilled" — isolated from
// register-count effects. Any ISA with the same block-local allocation
// discipline inherits the penetration, which is the §8 conjecture.
func RunPressure(bm bench.Benchmark, cfg Config) (*PressureResult, error) {
	cfg = cfg.withDefaults()
	res := &PressureResult{Name: bm.Name}
	for scratch := backend.MinGPRScratch; scratch <= 9; scratch++ {
		bcfg := backend.Config{GPRScratch: scratch}

		raw := bm.Build()
		rawProg, err := backend.LowerCfg(raw, bcfg)
		if err != nil {
			return nil, err
		}
		rawStats, err := campaign.Run(func() (sim.Engine, error) { return machine.New(raw, rawProg) },
			campaign.Spec{Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers, Reference: cfg.Reference})
		if err != nil {
			return nil, err
		}

		prot := bm.Build()
		if err := dup.ApplyFull(prot); err != nil {
			return nil, err
		}
		prog, err := backend.LowerCfg(prot, bcfg)
		if err != nil {
			return nil, err
		}
		stats, err := campaign.Run(func() (sim.Engine, error) { return machine.New(prot, prog) },
			campaign.Spec{Runs: cfg.Runs, Seed: cfg.Seed, Workers: cfg.Workers, Reference: cfg.Reference})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, PressurePoint{
			Scratch:          scratch,
			StaticStoreSites: prog.OriginCounts()[asm.OriginStoreReload],
			Stats:            stats,
			Coverage:         campaign.Coverage(rawStats, stats),
		})
	}
	return res, nil
}

// Pressure renders the sensitivity table.
func Pressure(results []*PressureResult) string {
	var sb strings.Builder
	sb.WriteString("Register-pressure sensitivity (paper §8): scratch registers vs store penetration\n")
	sb.WriteString("(flat rows are the finding: the penetration is forced by the checker's block\n")
	sb.WriteString(" split, not by register scarcity — see internal/experiment/pressure.go)\n")
	fmt.Fprintf(&sb, "%-14s %8s %18s %14s %12s\n",
		"Benchmark", "scratch", "static store sites", "store SDCs", "coverage")
	for _, r := range results {
		for _, p := range r.Points {
			fmt.Fprintf(&sb, "%-14s %8d %18d %14d %11.1f%%\n",
				r.Name, p.Scratch, p.StaticStoreSites,
				p.Stats.SDCByOrigin[asm.OriginStoreReload], p.Coverage*100)
		}
	}
	return sb.String()
}
