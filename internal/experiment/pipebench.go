package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// pipeBenchArtifacts are the artifacts each side renders, in order. All
// of them draw on the same (benchmark × variant × level) campaigns plus
// one ablation sweep, which is exactly the overlap the memoized pipeline
// exploits and the legacy per-artifact path recomputes.
var pipeBenchArtifacts = []string{
	"table1", "fig2", "fig3", "fig17", "overhead", "passtime", "ablation",
}

// renderArtifact maps a main-study artifact name to its renderer.
func renderArtifact(name string, results []*BenchResult) string {
	switch name {
	case "table1":
		return Table1(results)
	case "fig2":
		return Figure2(results)
	case "fig3":
		return Figure3(results)
	case "fig17":
		return Figure17(results)
	case "overhead":
		return Overhead(results)
	case "passtime":
		return PassTime(results)
	}
	return ""
}

// PipeBenchSide is one side (memoization on or off) of the comparison.
type PipeBenchSide struct {
	WallSeconds       float64 `json:"wall_seconds"`
	CampaignsExecuted int64   `json:"campaigns_executed"`
	CacheHits         int64   `json:"cache_hits"`
	SimulatedInstrs   int64   `json:"simulated_instrs"`
}

// PipeBenchResult compares rendering every artifact through the shared
// memoized pipeline against the pre-refactor path that recomputes each
// artifact's study from scratch.
type PipeBenchResult struct {
	Benchmarks []string      `json:"benchmarks"`
	Runs       int           `json:"runs"`
	Seed       int64         `json:"seed"`
	Artifacts  []string      `json:"artifacts"`
	MemoOn     PipeBenchSide `json:"memo_on"`
	MemoOff    PipeBenchSide `json:"memo_off"`
	Speedup    float64       `json:"speedup"`
}

// RunPipeBench measures what the memoized pipeline buys: it renders the
// full artifact set twice — once through one shared Study (memoization
// on), once through the legacy serial path that recomputes every
// artifact's campaigns independently — and reports wall time and
// campaigns executed for both. Defaults to crc32 so the benchmark stays
// cheap; pass names/-bench to scale it up.
func RunPipeBench(names []string, cfg Config) (*PipeBenchResult, error) {
	cfg = cfg.withDefaults()
	if len(names) == 0 {
		names = []string{"crc32"}
	}
	bms, err := resolveBenchmarks(names)
	if err != nil {
		return nil, err
	}
	resolved := make([]string, len(bms))
	for i, bm := range bms {
		resolved[i] = bm.Name
	}
	res := &PipeBenchResult{
		Benchmarks: resolved,
		Runs:       cfg.Runs,
		Seed:       cfg.Seed,
		Artifacts:  pipeBenchArtifacts,
	}

	// Memoization on: one shared study serves every artifact; repeated
	// Results calls hit the assembled-result memo, ablation shares the
	// raw baselines and full-protection campaigns with the figures.
	study := NewStudy(cfg)
	start := time.Now()
	for _, art := range pipeBenchArtifacts {
		if art == "ablation" {
			for _, bm := range bms {
				if _, err := study.Ablation(bm); err != nil {
					return nil, err
				}
			}
			continue
		}
		results, err := study.Results(resolved, nil)
		if err != nil {
			return nil, err
		}
		renderArtifact(art, results)
	}
	onWall := time.Since(start)
	tel := study.Telemetry()
	res.MemoOn = PipeBenchSide{
		WallSeconds:       onWall.Seconds(),
		CampaignsExecuted: tel.CampaignsExecuted(),
		CacheHits:         tel.CacheHits(),
		SimulatedInstrs:   tel.SimulatedInstrs,
	}

	// Memoization off: the pre-refactor shape — each artifact reruns its
	// own serial study. RunBenchmark executes 9 variants × 2 layers = 18
	// campaigns per benchmark per artifact; RunAblation adds 6 assembly
	// campaigns per benchmark.
	start = time.Now()
	var offCampaigns int64
	for _, art := range pipeBenchArtifacts {
		if art == "ablation" {
			for _, bm := range bms {
				if _, err := RunAblation(bm, cfg); err != nil {
					return nil, err
				}
				offCampaigns += 6
			}
			continue
		}
		results, err := RunAllSerial(resolved, cfg, nil)
		if err != nil {
			return nil, err
		}
		renderArtifact(art, results)
		offCampaigns += int64(len(bms)) * 18
	}
	offWall := time.Since(start)
	res.MemoOff = PipeBenchSide{
		WallSeconds:       offWall.Seconds(),
		CampaignsExecuted: offCampaigns,
	}

	if onWall > 0 {
		res.Speedup = offWall.Seconds() / onWall.Seconds()
	}
	return res, nil
}

// PipeBench renders the comparison as text.
func PipeBench(r *PipeBenchResult) string {
	var sb strings.Builder
	sb.WriteString("Pipeline memoization benchmark: full artifact set, shared pipeline vs per-artifact recompute\n")
	fmt.Fprintf(&sb, "benchmarks: %s; runs/campaign: %d; artifacts: %s\n",
		strings.Join(r.Benchmarks, ","), r.Runs, strings.Join(r.Artifacts, ","))
	fmt.Fprintf(&sb, "%-10s %12s %20s %12s %18s\n", "mode", "wall", "campaigns executed", "cache hits", "instrs simulated")
	fmt.Fprintf(&sb, "%-10s %12.2fs %20d %12d %18d\n", "memo on",
		r.MemoOn.WallSeconds, r.MemoOn.CampaignsExecuted, r.MemoOn.CacheHits, r.MemoOn.SimulatedInstrs)
	fmt.Fprintf(&sb, "%-10s %12.2fs %20d %12s %18s\n", "memo off",
		r.MemoOff.WallSeconds, r.MemoOff.CampaignsExecuted, "-", "-")
	fmt.Fprintf(&sb, "speedup: %.2fx\n", r.Speedup)
	return sb.String()
}

// PipeBenchJSON renders the comparison as the BENCH_2.json document.
func PipeBenchJSON(r *PipeBenchResult) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
