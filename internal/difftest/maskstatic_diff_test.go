// Differential soundness check for the bit-level static masking
// analysis (internal/bitmask, DESIGN.md §15): any (site, bit) choice the
// analysis proves masked must be benign when actually injected — the
// faulty run's status, output, and return value must all equal the
// golden run's. The property is driven two ways: a table test over
// progen seeds at both layers, and a native fuzz target mutating
// (seed, target, bit, layer) tuples with a committed corpus under
// testdata/fuzz/FuzzMaskStaticSound/.
package difftest

import (
	"testing"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bitmask"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// irWidths maps each IR static index to its injectable width, mirroring
// the interpreter's enumeration (every instruction of non-external
// functions, in module/block order; only committed results inject).
func irWidths(m *ir.Module) map[int32]uint8 {
	w := make(map[int32]uint8)
	idx := int32(0)
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					w[idx] = uint8(in.Ty.Bits())
				}
				idx++
			}
		}
	}
	return w
}

// asmWidths maps each assembly static index to its injectable width,
// mirroring the machine's link-time flattening (labels are markers, not
// code; only instructions with destinations inject).
func asmWidths(p *asm.Program) map[int32]uint8 {
	w := make(map[int32]uint8)
	idx := int32(0)
	for _, f := range p.Funcs {
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if in.Op == asm.OpLabel {
				continue
			}
			if _, ok := in.HasDest(); ok {
				w[idx] = uint8(in.DestBits())
			}
			idx++
		}
	}
	return w
}

// maskLayer builds the engine, masking analysis, and width map for one
// layer of the generated module.
func maskLayer(t *testing.T, m *ir.Module, asmLayer bool) (sim.Engine, *bitmask.Analysis, map[int32]uint8) {
	t.Helper()
	if !asmLayer {
		return interp.New(m), bitmask.AnalyzeIR(m), irWidths(m)
	}
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return mc, bitmask.AnalyzeASM(prog), asmWidths(prog)
}

// maskStaticSound is the shared property body: fold target into the
// program's dynamic injectable range, discover which static site that
// dynamic index hits with a throwaway probe injection, and — when the
// analysis proves any choice masked there — inject one proven-masked
// choice (steered by bit) and require the outcome to be golden-identical.
// Reports whether a masked choice was actually exercised.
func maskStaticSound(t *testing.T, seed int64, target uint64, bit uint8, asmLayer bool) bool {
	t.Helper()
	m := progen.Generate(seed, progen.DefaultConfig())
	eng, a, widths := maskLayer(t, m, asmLayer)

	golden := eng.Run(sim.Fault{}, sim.Options{})
	if golden.Status != sim.StatusOK || golden.InjectableInstrs == 0 {
		return false // masked claims are validated against an OK golden run
	}

	dyn := 1 + int64(target%uint64(golden.InjectableInstrs))
	probe := eng.Run(sim.Fault{TargetIndex: dyn, Bit: int(bit % 64)}, sim.Options{})
	if !probe.Injected {
		t.Fatalf("seed %d: in-range fault at dyn %d did not fire", seed, dyn)
	}
	mask := a.Masked(probe.InjectedStatic, widths[probe.InjectedStatic])
	if mask == 0 {
		return false // nothing proven at the hit site: no claim to test
	}

	var choices []int
	for b := 0; b < 64; b++ {
		if mask&(1<<uint(b)) != 0 {
			choices = append(choices, b)
		}
	}
	fb := choices[int(bit)%len(choices)]
	r := eng.Run(sim.Fault{TargetIndex: dyn, Bit: fb}, sim.Options{})
	if !r.Injected || r.InjectedStatic != probe.InjectedStatic {
		t.Fatalf("seed %d: re-injection at dyn %d drifted (static %d vs %d)",
			seed, dyn, r.InjectedStatic, probe.InjectedStatic)
	}
	if r.Status != golden.Status || string(r.Output) != string(golden.Output) || r.RetVal != golden.RetVal {
		t.Fatalf("seed %d: proven-masked bit %d at static %d (dyn %d, width %d) is not benign:\ngolden: %v ret %d %q\nfaulty: %v(%v) ret %d %q",
			seed, fb, r.InjectedStatic, dyn, widths[r.InjectedStatic],
			golden.Status, golden.RetVal, golden.Output,
			r.Status, r.Trap, r.RetVal, r.Output)
	}
	return true
}

// TestMaskStaticSoundProgen sweeps the soundness property across progen
// seeds and both layers, spreading dynamic targets over each program so
// every run exercises several distinct static sites.
func TestMaskStaticSoundProgen(t *testing.T) {
	exercised := 0
	for seed := int64(0); seed < int64(seeds(t))/2; seed++ {
		for _, asmLayer := range []bool{false, true} {
			for i := uint64(0); i < 8; i++ {
				// Co-prime stride walks distinct dynamic indices; the bit
				// pick rotates through each site's masked choices.
				if maskStaticSound(t, seed, i*2654435761, uint8(seed+int64(i)), asmLayer) {
					exercised++
				}
			}
		}
	}
	if exercised == 0 {
		t.Fatal("no proven-masked choice was exercised across the whole sweep")
	}
}

// FuzzMaskStaticSound fuzzes the same property: the fuzzer explores
// (seed, target, bit, layer) tuples hunting for a statically proven
// masked choice whose injection is observably non-benign — which would
// be a soundness bug in internal/bitmask.
func FuzzMaskStaticSound(f *testing.F) {
	f.Add(int64(0), uint64(0), uint8(0), false)
	f.Add(int64(0), uint64(0), uint8(0), true)
	f.Add(int64(7), uint64(1<<33), uint8(17), true)
	f.Add(int64(19), uint64(5), uint8(63), false)
	f.Fuzz(func(t *testing.T, seed int64, target uint64, bit uint8, asmLayer bool) {
		maskStaticSound(t, seed, target, bit, asmLayer)
	})
}
