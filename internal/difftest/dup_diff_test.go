package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// TestDuplicationPreservesSemantics checks the core soundness property of
// the protection transform: fully duplicated programs are fault-free
// equivalent to the original at BOTH layers.
func TestDuplicationPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < int64(seeds(t)); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			orig := progen.Generate(seed, progen.DefaultConfig())
			ipOrig := interp.New(orig)
			base := ipOrig.Run(sim.Fault{}, sim.Options{})

			prot := progen.Generate(seed, progen.DefaultConfig())
			if err := dup.ApplyFull(prot); err != nil {
				t.Fatalf("apply: %v", err)
			}
			if err := prot.Verify(); err != nil {
				t.Fatalf("protected module does not verify: %v", err)
			}
			ri, rm := runBoth(t, prot)
			if ri.Status != base.Status || string(ri.Output) != string(base.Output) {
				t.Fatalf("IR-level protected run differs from baseline:\nbase: %v %q\nprot: %v %q",
					base.Status, base.Output, ri.Status, ri.Output)
			}
			assertEquivalent(t, seed, ri, rm)
			if ri.Status == sim.StatusOK && ri.DynInstrs <= base.DynInstrs {
				t.Errorf("protection added no dynamic instructions: %d <= %d", ri.DynInstrs, base.DynInstrs)
			}
		})
	}
}

// TestPartialDuplicationPreservesSemantics exercises knapsack-selected
// subsets at every protection level of the paper.
func TestPartialDuplicationPreservesSemantics(t *testing.T) {
	levels := []dup.Level{dup.Level30, dup.Level50, dup.Level70}
	for seed := int64(0); seed < 12; seed++ {
		orig := progen.Generate(seed, progen.DefaultConfig())
		ipOrig := interp.New(orig)
		base := ipOrig.Run(sim.Fault{}, sim.Options{})
		if base.Status != sim.StatusOK {
			continue // programs that trap are covered by the full test
		}
		profile, err := dup.BuildProfile(orig, dup.ProfileOptions{Samples: 200, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		for _, level := range levels {
			sel := dup.Select(profile, level)
			prot := progen.Generate(seed, progen.DefaultConfig())
			if err := dup.Apply(prot, sel); err != nil {
				t.Fatalf("seed %d level %v: %v", seed, level, err)
			}
			if err := prot.Verify(); err != nil {
				t.Fatalf("seed %d level %v: verify: %v", seed, level, err)
			}
			ri, rm := runBoth(t, prot)
			if string(ri.Output) != string(base.Output) {
				t.Fatalf("seed %d level %v: IR output changed", seed, level)
			}
			assertEquivalent(t, seed, ri, rm)
		}
	}
}

// TestFullProtectionDetectsMostIRFaults is the paper's Observation-3
// premise: at LLVM (IR) level, full duplication detects essentially all
// SDCs caused by faults in duplicated instructions.
func TestFullProtectionDetectsMostIRFaults(t *testing.T) {
	m := progen.Generate(3, progen.DefaultConfig())
	if err := dup.ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{})
	if golden.Status != sim.StatusOK {
		t.Skip("seed 3 baseline traps")
	}

	instrs := m.EnumerateInstrs()
	sdc, detected := 0, 0
	for i := int64(1); i <= golden.InjectableInstrs; i += 11 {
		res := ip.Run(sim.Fault{TargetIndex: i, Bit: int(i) % 64}, sim.Options{})
		switch {
		case res.Status == sim.StatusDetected:
			detected++
		case res.Status == sim.StatusOK && string(res.Output) != string(golden.Output):
			// SDCs must come only from unduplicable sites (allocas,
			// call results) — duplicated computation is covered.
			if res.InjectedStatic >= 0 {
				in := instrs[res.InjectedStatic]
				if dup.Duplicable(in) && in.Prot.Dup != nil {
					t.Errorf("SDC through a duplicated %s at static %d", in.Op, res.InjectedStatic)
				}
			}
			sdc++
		}
	}
	if detected == 0 {
		t.Fatal("no fault was ever detected; checkers are inert")
	}
	t.Logf("IR full protection: %d detected, %d SDC (unduplicable sites)", detected, sdc)
}
