package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/interp"
	"flowery/internal/opt"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// TestOptimizedProgramsCrossLayerEquivalent stresses the backend with
// mid-end-optimized IR: CSE and block merging produce longer blocks and
// cross-block value lifetimes that the -O0-shaped benchmarks never
// exhibit.
func TestOptimizedProgramsCrossLayerEquivalent(t *testing.T) {
	for seed := int64(0); seed < int64(seeds(t)); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := progen.Generate(seed, progen.DefaultConfig())
			base := interp.New(m).Run(sim.Fault{}, sim.Options{})

			m2 := progen.Generate(seed, progen.DefaultConfig())
			opt.Run(m2, opt.Standard())
			if err := m2.Verify(); err != nil {
				t.Fatalf("optimized module invalid: %v", err)
			}
			ri, rm := runBoth(t, m2)
			// Optimization preserves IR semantics...
			if ri.Status != base.Status || string(ri.Output) != string(base.Output) {
				t.Fatalf("optimizer changed IR behaviour")
			}
			// ...and the backend handles the optimized shape.
			assertEquivalent(t, seed, ri, rm)
		})
	}
}
