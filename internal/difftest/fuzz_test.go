// Native fuzz targets over the progen differential properties: the
// fuzzer mutates (seed, fault) tuples instead of raw bytes, so every
// input is a well-formed random program plus a fault specification. The
// committed corpus under testdata/fuzz/ replays deterministically in
// plain `go test ./...`; `go test -fuzz FuzzFastCoreDiff` (or FuzzDupDiff)
// explores beyond it.
package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// FuzzFastCoreDiff fuzzes the fast-core bit-identity contract: for any
// generated program and any fault, the predecoded fast cores of both
// engines must return results identical to their reference loops. target
// and bit are folded into the program's injectable range (plus one
// past-the-end slot, which must report Injected=false on both cores).
func FuzzFastCoreDiff(f *testing.F) {
	f.Add(int64(0), uint64(1), uint8(0))
	f.Add(int64(7), uint64(1<<40), uint8(63))
	f.Add(int64(23), uint64(3), uint8(31))
	f.Fuzz(func(t *testing.T, seed int64, target uint64, bit uint8) {
		m := progen.Generate(seed, progen.DefaultConfig())
		ip, mc := engines(t, m)
		for _, eng := range []struct {
			name string
			e    sim.Engine
		}{{"interp", ip}, {"machine", mc}} {
			ref := eng.e.Run(sim.Fault{}, sim.Options{Reference: true})
			fast := eng.e.Run(sim.Fault{}, sim.Options{})
			assertResultIdentical(t, fmt.Sprintf("seed %d %s golden", seed, eng.name), ref, fast)

			// Fold the fuzzed fault into [1, injectable+1]: every index is a
			// real site except the last, which must not fire on either core.
			fault := sim.Fault{
				TargetIndex: 1 + int64(target%uint64(ref.InjectableInstrs+1)),
				Bit:         int(bit % 64),
			}
			fr := eng.e.Run(fault, sim.Options{Reference: true})
			ff := eng.e.Run(fault, sim.Options{})
			assertResultIdentical(t,
				fmt.Sprintf("seed %d %s fault@%d bit %d", seed, eng.name, fault.TargetIndex, fault.Bit), fr, ff)
		}
	})
}

// dupFuzzLevels are the protection levels FuzzDupDiff cycles through;
// 1.0 takes the ApplyFull path, the rest go through profile + knapsack
// selection like the evaluation does.
var dupFuzzLevels = []dup.Level{dup.Level30, dup.Level50, dup.Level70, dup.Level100}

// FuzzDupDiff fuzzes the duplication soundness property: a protected
// program must be fault-free equivalent to the original at both layers,
// at any protection level.
func FuzzDupDiff(f *testing.F) {
	f.Add(int64(0), uint8(3))
	f.Add(int64(5), uint8(0))
	f.Add(int64(11), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, levelIdx uint8) {
		level := dupFuzzLevels[int(levelIdx)%len(dupFuzzLevels)]

		orig := progen.Generate(seed, progen.DefaultConfig())
		base := interp.New(orig).Run(sim.Fault{}, sim.Options{})

		prot := progen.Generate(seed, progen.DefaultConfig())
		if level >= dup.Level100 {
			if err := dup.ApplyFull(prot); err != nil {
				t.Fatalf("seed %d: apply full: %v", seed, err)
			}
		} else {
			if base.Status != sim.StatusOK {
				// Partial protection profiles the golden run; a trapping
				// baseline has nothing to profile. Full duplication above
				// still covers these seeds.
				t.Skip("baseline traps; partial protection needs a profile")
			}
			profile, err := dup.BuildProfile(orig, dup.ProfileOptions{Samples: 200, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: profile: %v", seed, err)
			}
			if err := dup.Apply(prot, dup.Select(profile, level)); err != nil {
				t.Fatalf("seed %d level %v: %v", seed, level, err)
			}
		}
		if err := prot.Verify(); err != nil {
			t.Fatalf("seed %d level %v: protected module does not verify: %v", seed, level, err)
		}

		ri, rm := runBoth(t, prot)
		if ri.Status != base.Status || string(ri.Output) != string(base.Output) {
			t.Fatalf("seed %d level %v: protected run differs from baseline:\nbase: %v %q\nprot: %v %q",
				seed, level, base.Status, base.Output, ri.Status, ri.Output)
		}
		assertEquivalent(t, seed, ri, rm)
	})
}
