package difftest

import (
	"testing"

	"flowery/internal/bench"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/sim"
)

// TestProtectedBenchmarksPreserveSemantics is the full-stack integration
// test: every benchmark, fully duplicated and Flowery-patched, must run
// fault-free to exactly its original output on BOTH layers.
func TestProtectedBenchmarksPreserveSemantics(t *testing.T) {
	for _, bm := range bench.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			base := interp.New(bm.Build()).Run(sim.Fault{}, sim.Options{})
			if base.Status != sim.StatusOK {
				t.Fatalf("baseline failed: %v", base.Status)
			}

			prot := bm.Build()
			if err := dup.ApplyFull(prot); err != nil {
				t.Fatal(err)
			}
			if _, err := flowery.Apply(prot, flowery.All()); err != nil {
				t.Fatal(err)
			}
			if err := prot.Verify(); err != nil {
				t.Fatalf("protected module invalid: %v", err)
			}
			ri, rm := runBoth(t, prot)
			if ri.Status != sim.StatusOK || string(ri.Output) != string(base.Output) {
				t.Fatalf("IR behaviour changed:\nbase %q\nprot %q", base.Output, ri.Output)
			}
			if rm.Status != sim.StatusOK || string(rm.Output) != string(base.Output) {
				t.Fatalf("asm behaviour changed:\nbase %q\nprot %q", base.Output, rm.Output)
			}
		})
	}
}

// TestSelectivelyProtectedBenchmarksPreserveSemantics covers the
// knapsack-selected partial levels on a few representative benchmarks.
func TestSelectivelyProtectedBenchmarksPreserveSemantics(t *testing.T) {
	for _, name := range []string{"bfs", "fft2", "quicksort", "crc32"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bm, _ := bench.ByName(name)
			base := interp.New(bm.Build()).Run(sim.Fault{}, sim.Options{})
			profile, err := dup.BuildProfile(bm.Build(), dup.ProfileOptions{Samples: 300, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for _, level := range []dup.Level{dup.Level30, dup.Level70} {
				prot := bm.Build()
				if err := dup.Apply(prot, dup.Select(profile, level)); err != nil {
					t.Fatal(err)
				}
				if _, err := flowery.Apply(prot, flowery.All()); err != nil {
					t.Fatal(err)
				}
				ri, rm := runBoth(t, prot)
				if string(ri.Output) != string(base.Output) || string(rm.Output) != string(base.Output) {
					t.Fatalf("level %v changed behaviour", level)
				}
			}
		})
	}
}
