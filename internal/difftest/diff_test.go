// Package difftest runs the repository's strongest correctness property:
// random programs from progen must behave identically on the IR
// interpreter and the assembly simulator, fault-free. Later stages extend
// the property across the duplication and Flowery passes.
package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// numSeeds is the default corpus size; go test -short halves it.
const numSeeds = 60

func seeds(t *testing.T) int {
	if testing.Short() {
		return numSeeds / 2
	}
	return numSeeds
}

// runBoth lowers m, runs it on both engines, and returns the results.
// Lower must run before either engine is constructed (it may extend the
// module's global section with a constant pool).
func runBoth(t *testing.T, m *ir.Module) (sim.Result, sim.Result) {
	t.Helper()
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	ip := interp.New(m)
	ri := ip.Run(sim.Fault{}, sim.Options{})
	rm := mc.Run(sim.Fault{}, sim.Options{})
	return ri, rm
}

func assertEquivalent(t *testing.T, seed int64, ri, rm sim.Result) {
	t.Helper()
	if ri.Status != rm.Status {
		t.Fatalf("seed %d: status interp=%v(%v) machine=%v(%v)",
			seed, ri.Status, ri.Trap, rm.Status, rm.Trap)
	}
	if string(ri.Output) != string(rm.Output) {
		t.Fatalf("seed %d: outputs differ\ninterp:  %q\nmachine: %q", seed, ri.Output, rm.Output)
	}
	if ri.Status == sim.StatusOK && ri.RetVal != rm.RetVal {
		t.Fatalf("seed %d: return values differ: %d vs %d", seed, ri.RetVal, rm.RetVal)
	}
}

func TestRandomProgramsCrossLayerEquivalent(t *testing.T) {
	for seed := int64(0); seed < int64(seeds(t)); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := progen.Generate(seed, progen.DefaultConfig())
			ri, rm := runBoth(t, m)
			assertEquivalent(t, seed, ri, rm)
		})
	}
}

func TestGeneratedProgramsVerifyAndPrint(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := progen.Generate(seed, progen.DefaultConfig())
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The printer must render every generated construct.
		if s := m.String(); len(s) == 0 {
			t.Fatalf("seed %d: empty printout", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := progen.Generate(42, progen.DefaultConfig()).String()
	b := progen.Generate(42, progen.DefaultConfig()).String()
	if a != b {
		t.Fatal("same seed produced different modules")
	}
}
