// Fast-core differential tests: the predecoded fast execution cores
// (machine micro-ops, interp specialized closures) must produce results
// bit-identical to the reference interpretation loops — on golden runs,
// under injected faults, and when restored from snapshots. Every field
// of sim.Result participates: the campaign statistics the evaluation
// reports are built from Status/Trap/Injected*/counts, so any drift here
// would silently corrupt the paper's numbers.
package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// assertResultIdentical demands full bit-identity between a reference-core
// and a fast-core result of the same engine.
func assertResultIdentical(t *testing.T, label string, ref, fast sim.Result) {
	t.Helper()
	if ref.Status != fast.Status || ref.Trap != fast.Trap {
		t.Fatalf("%s: status ref=%v(%v) fast=%v(%v)", label, ref.Status, ref.Trap, fast.Status, fast.Trap)
	}
	if string(ref.Output) != string(fast.Output) {
		t.Fatalf("%s: outputs differ\nref:  %q\nfast: %q", label, ref.Output, fast.Output)
	}
	if ref.RetVal != fast.RetVal {
		t.Fatalf("%s: return values differ: %d vs %d", label, ref.RetVal, fast.RetVal)
	}
	if ref.DynInstrs != fast.DynInstrs || ref.InjectableInstrs != fast.InjectableInstrs {
		t.Fatalf("%s: counters differ: dyn %d vs %d, injectable %d vs %d",
			label, ref.DynInstrs, fast.DynInstrs, ref.InjectableInstrs, fast.InjectableInstrs)
	}
	if ref.Injected != fast.Injected || ref.InjectedStatic != fast.InjectedStatic ||
		ref.InjectedOrigin != fast.InjectedOrigin || ref.InjectedChecker != fast.InjectedChecker {
		t.Fatalf("%s: injection metadata differs: (%v,%d,%v,%v) vs (%v,%d,%v,%v)",
			label, ref.Injected, ref.InjectedStatic, ref.InjectedOrigin, ref.InjectedChecker,
			fast.Injected, fast.InjectedStatic, fast.InjectedOrigin, fast.InjectedChecker)
	}
}

// engines lowers m and returns both engines. Lower must run before either
// engine is constructed (it may extend the module's global section).
func engines(t *testing.T, m *ir.Module) (*interp.Interp, *machine.Machine) {
	t.Helper()
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return interp.New(m), mc
}

// probeFaults spreads a handful of fault specifications across the run's
// injectable range, varying the flipped bit so low- and high-half flips,
// sign bits, and sub-width bits are all exercised.
func probeFaults(injectable int64) []sim.Fault {
	if injectable <= 0 {
		return nil
	}
	targets := []int64{1, injectable / 4, injectable / 2, (3 * injectable) / 4, injectable}
	bits := []int{0, 7, 31, 63, 15}
	var faults []sim.Fault
	seen := make(map[int64]bool)
	for i, tgt := range targets {
		if tgt < 1 || seen[tgt] {
			continue
		}
		seen[tgt] = true
		faults = append(faults, sim.Fault{TargetIndex: tgt, Bit: bits[i%len(bits)]})
	}
	return faults
}

// TestFastCoreGoldenAndFaultedEquivalent runs random programs on both
// engines under both cores: golden first, then probe faults spread over
// the injectable range, including one past-the-end fault (must not fire
// on either core).
func TestFastCoreGoldenAndFaultedEquivalent(t *testing.T) {
	for seed := int64(0); seed < int64(seeds(t)); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := progen.Generate(seed, progen.DefaultConfig())
			ip, mc := engines(t, m)
			for _, eng := range []struct {
				name string
				e    sim.Engine
			}{{"interp", ip}, {"machine", mc}} {
				ref := eng.e.Run(sim.Fault{}, sim.Options{Reference: true})
				fast := eng.e.Run(sim.Fault{}, sim.Options{})
				assertResultIdentical(t, fmt.Sprintf("seed %d %s golden", seed, eng.name), ref, fast)

				faults := probeFaults(ref.InjectableInstrs)
				// Past-the-end fault: must report Injected=false identically.
				faults = append(faults, sim.Fault{TargetIndex: ref.InjectableInstrs + 1, Bit: 3})
				for _, f := range faults {
					fr := eng.e.Run(f, sim.Options{Reference: true})
					ff := eng.e.Run(f, sim.Options{})
					assertResultIdentical(t,
						fmt.Sprintf("seed %d %s fault@%d bit %d", seed, eng.name, f.TargetIndex, f.Bit), fr, ff)
				}
			}
		})
	}
}

// TestFastCoreSnapshotRestoreEquivalent builds snapshots (always captured
// on the reference loop) and replays faulted runs from checkpoints under
// both cores. Each restored result must also match the from-scratch run,
// so the fast core composes with fast-forwarding without drift.
func TestFastCoreSnapshotRestoreEquivalent(t *testing.T) {
	n := seeds(t) / 2
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := progen.Generate(seed, progen.DefaultConfig())
			ip, mc := engines(t, m)
			for _, eng := range []struct {
				name string
				e    sim.SnapshotEngine
			}{{"interp", ip}, {"machine", mc}} {
				golden := eng.e.BuildSnapshots(64, sim.Options{})
				if golden.Status != sim.StatusOK {
					continue // no snapshots kept; nothing to restore from
				}
				for _, f := range probeFaults(golden.InjectableInstrs) {
					label := fmt.Sprintf("seed %d %s restore@%d bit %d", seed, eng.name, f.TargetIndex, f.Bit)
					rr, _ := eng.e.RunFrom(f, sim.Options{Reference: true})
					rf, _ := eng.e.RunFrom(f, sim.Options{})
					assertResultIdentical(t, label, rr, rf)
					scratch := eng.e.Run(f, sim.Options{})
					assertResultIdentical(t, label+" vs scratch", scratch, rf)
				}
				eng.e.DropSnapshots()
			}
		})
	}
}
