package difftest

import (
	"fmt"
	"testing"

	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

// TestFloweryPreservesSemantics: duplication + all three Flowery patches
// must leave fault-free behaviour unchanged at both layers.
func TestFloweryPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < int64(seeds(t)); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			orig := progen.Generate(seed, progen.DefaultConfig())
			base := interp.New(orig).Run(sim.Fault{}, sim.Options{})

			prot := progen.Generate(seed, progen.DefaultConfig())
			if err := dup.ApplyFull(prot); err != nil {
				t.Fatalf("dup: %v", err)
			}
			st, err := flowery.Apply(prot, flowery.All())
			if err != nil {
				t.Fatalf("flowery: %v", err)
			}
			if st.StoresHoisted+st.BranchesPatched+st.CmpsIsolated == 0 {
				t.Fatalf("flowery changed nothing on a fully protected program")
			}
			ri, rm := runBoth(t, prot)
			if ri.Status != base.Status || string(ri.Output) != string(base.Output) {
				t.Fatalf("flowery changed IR semantics:\nbase: %v %q\ngot:  %v %q",
					base.Status, base.Output, ri.Status, ri.Output)
			}
			assertEquivalent(t, seed, ri, rm)
		})
	}
}

// TestFloweryIndividualPatchesPreserveSemantics runs each patch alone —
// a patch interaction must never be load-bearing for correctness.
func TestFloweryIndividualPatchesPreserveSemantics(t *testing.T) {
	configs := []struct {
		name string
		opts flowery.Options
	}{
		{"eager-store", flowery.Options{EagerStore: true}},
		{"postponed-branch", flowery.Options{PostponedBranch: true}},
		{"anti-cmp", flowery.Options{AntiCmp: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 20; seed++ {
				orig := progen.Generate(seed, progen.DefaultConfig())
				base := interp.New(orig).Run(sim.Fault{}, sim.Options{})

				prot := progen.Generate(seed, progen.DefaultConfig())
				if err := dup.ApplyFull(prot); err != nil {
					t.Fatalf("dup: %v", err)
				}
				if _, err := flowery.Apply(prot, cfg.opts); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				ri, rm := runBoth(t, prot)
				if ri.Status != base.Status || string(ri.Output) != string(base.Output) {
					t.Fatalf("seed %d: IR semantics changed", seed)
				}
				assertEquivalent(t, seed, ri, rm)
			}
		})
	}
}
