package sim

import "testing"

func TestStatusStrings(t *testing.T) {
	if StatusOK.String() != "ok" || StatusDetected.String() != "detected" || StatusTrap.String() != "trap" {
		t.Error("status strings wrong")
	}
	if Status(99).String() != "unknown" {
		t.Error("unknown status not handled")
	}
}

func TestTrapStrings(t *testing.T) {
	wants := map[Trap]string{
		TrapNone: "none", TrapBadAddress: "bad-address", TrapDivide: "divide",
		TrapStackOverflow: "stack-overflow", TrapTimeout: "timeout",
		TrapCallDepth: "call-depth", TrapOutputOverflow: "output-overflow",
		TrapBadJump: "bad-jump",
	}
	for tr, want := range wants {
		if tr.String() != want {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), want)
		}
	}
	if Trap(99).String() != "unknown" {
		t.Error("unknown trap not handled")
	}
}

func TestFaultActive(t *testing.T) {
	if (Fault{}).Active() {
		t.Error("zero fault active")
	}
	if !(Fault{TargetIndex: 1}).Active() {
		t.Error("real fault inactive")
	}
}
