// Package sim defines the execution-outcome types shared by the two
// fault-injection engines: the IR interpreter (package interp) and the
// assembly simulator (package machine). The campaign layer drives both
// through the Engine interface, which is what makes the cross-layer
// comparison of the paper possible with one harness.
package sim

import (
	"flowery/internal/asm"
	"flowery/internal/telemetry"
)

// Status classifies how a run ended.
type Status uint8

const (
	// StatusOK means the program ran to completion and returned.
	StatusOK Status = iota
	// StatusDetected means a duplication checker fired (check_fail was
	// called): the fault was caught before it could corrupt output.
	StatusDetected
	// StatusTrap means the run aborted with a hardware-visible error
	// (the DUE category of the paper).
	StatusTrap
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDetected:
		return "detected"
	case StatusTrap:
		return "trap"
	default:
		return "unknown"
	}
}

// Trap enumerates DUE causes.
type Trap uint8

const (
	TrapNone Trap = iota
	// TrapBadAddress is a load/store to an unmapped address.
	TrapBadAddress
	// TrapDivide is a division by zero or quotient overflow (x86 #DE).
	TrapDivide
	// TrapStackOverflow is frame allocation crossing StackLimit.
	TrapStackOverflow
	// TrapTimeout is exceeding the dynamic instruction budget.
	TrapTimeout
	// TrapCallDepth is exceeding the call depth limit (IR level only;
	// at assembly level runaway recursion hits the stack guard).
	TrapCallDepth
	// TrapOutputOverflow is exceeding the output size cap.
	TrapOutputOverflow
	// TrapBadJump is a return to a corrupted address (assembly level).
	TrapBadJump
)

func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapBadAddress:
		return "bad-address"
	case TrapDivide:
		return "divide"
	case TrapStackOverflow:
		return "stack-overflow"
	case TrapTimeout:
		return "timeout"
	case TrapCallDepth:
		return "call-depth"
	case TrapOutputOverflow:
		return "output-overflow"
	case TrapBadJump:
		return "bad-jump"
	default:
		return "unknown"
	}
}

// Fault describes a single-bit flip to inject. The zero value injects
// nothing (golden run). The same fault specification drives both layers;
// only the site population differs (IR instructions with results vs
// assembly instructions with destination registers).
type Fault struct {
	// TargetIndex is the 1-based index of the dynamic instruction to
	// corrupt, counted over instructions that have a destination.
	TargetIndex int64
	// Bit selects the bit to flip; it is reduced modulo the destination
	// width at injection time (all widths divide 64, so the choice stays
	// uniform).
	Bit int
}

// Active reports whether the fault will inject.
func (f Fault) Active() bool { return f.TargetIndex > 0 }

// Options tunes one run.
type Options struct {
	// MaxSteps bounds executed instructions; 0 means DefaultMaxSteps.
	MaxSteps int64
	// Profile enables per-static-instruction execution counts where the
	// engine supports them.
	Profile bool
	// Reference forces the engine's reference interpretation loop even
	// when its predecoded fast core could serve the run. Results are
	// bit-identical either way; the knob exists so equivalence gates can
	// measure one core against the other.
	Reference bool
	// Metrics, when non-nil, receives per-run engine telemetry: run and
	// instruction counters per core, run-duration histograms, and the
	// fast core's slow-step fallback tally. Engines flush once per run —
	// never per instruction — so a nil registry costs one pointer test
	// per run (see telemetry package doc).
	Metrics *telemetry.Registry
}

// DefaultMaxSteps is the per-run dynamic instruction budget. Golden runs
// of the benchmarks are far below it; a faulty run that exceeds it is a
// hang, classified as a DUE.
const DefaultMaxSteps = 64 << 20

// Result reports the outcome of one execution.
type Result struct {
	Status Status
	Trap   Trap
	// Output is the bytes printed by the program. Owned by the caller.
	Output []byte
	// RetVal is main's return value (when StatusOK).
	RetVal int64
	// DynInstrs counts every executed instruction.
	DynInstrs int64
	// InjectableInstrs counts executed instructions with destinations;
	// fault TargetIndex ranges over [1, InjectableInstrs].
	InjectableInstrs int64
	// Injected reports whether the requested fault actually fired (a
	// fault past the end of a shorter-than-expected run does not).
	Injected bool
	// InjectedStatic is the static index of the corrupted instruction
	// (position in the engine's canonical instruction enumeration), or
	// -1 when no fault fired. The profiling stage uses it to attribute
	// outcomes to static instructions.
	InjectedStatic int32
	// InjectedOrigin is the provenance tag of the corrupted instruction
	// (assembly level only); it drives root-cause classification.
	InjectedOrigin asm.Origin
	// InjectedChecker reports whether the corrupted instruction belongs
	// to a duplication checker.
	InjectedChecker bool
}

// Engine is a deterministic fault-injection execution engine. Engines
// are not safe for concurrent use; campaign workers each own one.
type Engine interface {
	// Run executes the program once, optionally injecting a fault.
	Run(f Fault, o Options) Result
}

// UseKind classifies how a traced value is consumed. The kinds are the
// def-use facts the equivalence partitioner folds into a fault site's
// signature (package equiv): two sites whose values reach the same
// static consumers through the same kinds of uses are candidates for
// the same class.
type UseKind uint8

const (
	// UseArith: an arithmetic/logic/move operand.
	UseArith UseKind = iota
	// UseAddr: the value forms part of a memory address.
	UseAddr
	// UseStoreVal: the value is written to memory.
	UseStoreVal
	// UseBranch: the value decides a control-flow transfer.
	UseBranch
	// UseCmp: the value is an operand of a comparison. Kept distinct
	// from UseArith because compare operands gate branches
	// value-dependently, which matters for class sensitivity.
	UseCmp
	// UseCallArg: the value is passed to a callee.
	UseCallArg
	// UseRet: the value is returned to a caller.
	UseRet
	// UseDiv: the value is a divisor or dividend (can raise #DE).
	UseDiv
	// UseOutput: the value is printed (directly observable).
	UseOutput

	NumUseKinds = 9
)

func (k UseKind) String() string {
	switch k {
	case UseArith:
		return "arith"
	case UseAddr:
		return "addr"
	case UseStoreVal:
		return "store"
	case UseBranch:
		return "branch"
	case UseCmp:
		return "cmp"
	case UseCallArg:
		return "callarg"
	case UseRet:
		return "ret"
	case UseDiv:
		return "div"
	case UseOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Tracer receives the def-use stream of a golden run. Engines call Def
// exactly once per injectable destination, in the same order their
// injection counter enumerates fault sites — the tracer numbers defs
// itself, so def i corresponds to Fault.TargetIndex i+1. This ordering
// contract is what lets a trace consumer map equivalence classes back
// to injectable fault targets.
//
// The returned handle stays valid until Kill; a location overwritten by
// a non-injectable ("anonymous") write whose result is data-dependent
// on the old value keeps the old handle, so downstream influence keeps
// accruing to the site that would feel a flip.
type Tracer interface {
	// Def records an injectable definition by static instruction
	// static, of width bits, producing value. sensitive marks defs
	// whose concrete value must partition classes regardless of use
	// kinds (flags, return addresses).
	Def(static int32, width uint8, value uint64, sensitive bool) (handle int64)
	// Use records that the live value of a def flows into consumer
	// (a static instruction index) through kind.
	Use(handle int64, consumer int32, kind UseKind)
	// Retain adds a reference to a def whose value was copied into a
	// second live location (a call argument); each Retain needs a
	// matching Kill.
	Retain(handle int64)
	// Kill releases one reference; the def's liveness window ends when
	// the last reference is released.
	Kill(handle int64)
}

// TraceEngine is the optional golden-run instrumentation capability
// behind equivalence pruning. RunTraced must execute exactly like
// Run(Fault{}, o) — same Result, same injectable enumeration — while
// streaming def-use events to t. Callers type-assert; engines without
// the capability simply cannot be pruned.
type TraceEngine interface {
	Engine
	RunTraced(o Options, t Tracer) Result
}

// SnapshotEngine is the optional checkpoint/fast-forward capability: an
// engine that can capture periodic snapshots of the golden run and start
// a faulty run from the densest checkpoint below its injection point.
// Execution before the injection point is bit-identical to the golden
// run, so a restored run's Result must equal a from-scratch Run's bit
// for bit; the campaign layer relies on that to keep outcomes invariant
// under fast-forwarding. Engines without the capability are driven
// through plain Run — callers type-assert and degrade gracefully.
type SnapshotEngine interface {
	Engine
	// BuildSnapshots executes the golden run once, capturing a checkpoint
	// roughly every interval injectable instructions, and returns the
	// golden Result. Snapshots are kept only if the run completed with
	// StatusOK.
	BuildSnapshots(interval int64, o Options) Result
	// RunFrom is Run accelerated by checkpoint restore. skipped reports
	// how many dynamic instructions were fast-forwarded over (0 when the
	// run fell back to a from-scratch execution).
	RunFrom(f Fault, o Options) (res Result, skipped int64)
	// DropSnapshots releases checkpoint storage.
	DropSnapshots()
}
