package machine

import (
	"flowery/internal/asm"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// Checkpoint/fast-forward support, mirroring the IR interpreter's (see
// internal/interp/snapshot.go for the determinism argument). The machine
// state is already explicit — registers, pc, output, counters — so a
// snapshot is that state plus the dirty memory regions: the stack above
// the minTouch low-water mark and the dirty range of the data segment.

var _ sim.SnapshotEngine = (*Machine)(nil)

// mSnapshot is one checkpoint of a golden run.
type mSnapshot struct {
	index    int64 // injectable-instruction counter at capture
	steps    int64 // dynamic instructions executed up to here
	outLen   int   // golden output bytes emitted so far
	pc       int32
	minTouch int64
	dataLo   int64
	dataHi   int64
	regs     [asm.NumRegs]uint64
	stack    []byte // mem[minTouch:StackTop]
	data     []byte // mem[dataLo:dataHi]
}

// BuildSnapshots runs the golden execution once, capturing a checkpoint
// roughly every interval injectable instructions. It returns the golden
// result; snapshots are only kept if the run completed normally. It
// implements sim.SnapshotEngine.
func (mc *Machine) BuildSnapshots(interval int64, opts sim.Options) sim.Result {
	mc.DropSnapshots()
	if interval <= 0 {
		interval = 1
	}
	mc.snapInterval = interval
	mc.snapCapture = true
	res := mc.Run(sim.Fault{}, opts)
	mc.snapCapture = false
	if res.Status != sim.StatusOK {
		mc.DropSnapshots()
		return res
	}
	mc.goldenOut = append([]byte(nil), res.Output...)
	return res
}

// DropSnapshots releases all checkpoint storage.
func (mc *Machine) DropSnapshots() {
	mc.snaps = nil
	mc.goldenOut = nil
}

// RunFrom is Run accelerated by checkpoint restore: it fast-forwards to
// the densest snapshot below the fault's injection point and executes
// from there. The returned result is bit-identical to Run's; skipped
// reports how many dynamic instructions the restore avoided re-executing.
func (mc *Machine) RunFrom(fault sim.Fault, opts sim.Options) (res sim.Result, skipped int64) {
	s := mc.bestSnapshot(fault.TargetIndex)
	if s == nil {
		return mc.Run(fault, opts), 0
	}
	mc.restore(s)
	mc.maxSteps = opts.MaxSteps
	if mc.maxSteps <= 0 {
		mc.maxSteps = sim.DefaultMaxSteps
	}
	mc.injectAt = fault.TargetIndex
	mc.injectBit = fault.Bit
	mc.refCore = opts.Reference
	mc.setMetrics(opts.Metrics)
	return mc.finish(), s.steps
}

// bestSnapshot returns the snapshot with the largest index strictly below
// target (the fault fires when the injectable counter reaches target), or
// nil.
func (mc *Machine) bestSnapshot(target int64) *mSnapshot {
	if target <= 0 {
		return nil
	}
	lo, hi := 0, len(mc.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if mc.snaps[mid].index < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &mc.snaps[lo-1]
}

// captureSnapshot records the current state; called from the exec loop at
// an instruction boundary during BuildSnapshots' golden run.
func (mc *Machine) captureSnapshot() {
	s := mSnapshot{
		index:    mc.inject,
		steps:    mc.steps,
		outLen:   len(mc.out),
		pc:       mc.pc,
		minTouch: mc.minTouch,
		dataLo:   mc.dataLo,
		dataHi:   mc.dataHi,
		regs:     mc.regs,
		stack:    append([]byte(nil), mc.mem[mc.minTouch:ir.StackTop]...),
	}
	if s.dataLo < s.dataHi {
		s.data = append([]byte(nil), mc.mem[s.dataLo:s.dataHi]...)
	}
	mc.snaps = append(mc.snaps, s)
	mc.nextSnapAt = mc.inject + mc.snapInterval
}

// restore rebuilds the state captured in s, replacing whatever the
// previous run left behind. Untouched memory is zero in both the golden
// run (fresh reset) and here (explicitly re-zeroed), so states match bit
// for bit.
func (mc *Machine) restore(s *mSnapshot) {
	// Data segment: rebuild the initial image, overlay the dirty bytes.
	zero(mc.mem[ir.GlobalBase:mc.dataEnd])
	for _, g := range mc.mod.Globals {
		copy(mc.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	if s.dataLo < s.dataHi {
		copy(mc.mem[s.dataLo:s.dataHi], s.data)
	}
	// Stack: zero the previous run's dirt, then lay down the snapshot.
	if mc.minTouch < ir.StackTop {
		zero(mc.mem[mc.minTouch:ir.StackTop])
	}
	copy(mc.mem[s.minTouch:ir.StackTop], s.stack)
	mc.minTouch = s.minTouch

	mc.regs = s.regs
	mc.pc = s.pc
	mc.out = append(mc.out[:0], mc.goldenOut[:s.outLen]...)
	mc.steps = s.steps
	mc.inject = s.index
	mc.injected = false
	mc.injStatic = -1
	mc.injOrigin = asm.OriginNone
	mc.injCheck = false
	// Snapshots are captured on the reference loop, where regs[RFLAGS] is
	// always architectural — the restored flag state is concrete.
	mc.flagKind = flagsConcrete
}
