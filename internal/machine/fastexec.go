package machine

import (
	"encoding/binary"
	"math"

	"flowery/internal/asm"
	"flowery/internal/ir"
	"flowery/internal/rt"
	"flowery/internal/sim"
)

// The fast execution core. execFast runs the predecoded micro-op array
// with lazy RFLAGS: cmp/test record their operands instead of computing
// the flags word, and the state is either consumed directly by a
// condition (Cond.EvalSub/EvalTest) or materialized into regs[RFLAGS]
// when architectural flags are unavoidable — before a fault injection
// targeting RFLAGS, and in the generic fallback. Instrumented runs
// (def-use tracing, pc ring, snapshot capture) and opts.Reference runs
// take the reference loop in exec.go instead, which is the semantic
// spec this core must match bit for bit.

type flagKind uint8

const (
	// flagsConcrete: regs[RFLAGS] holds the architectural flags (the only
	// state the reference core ever has).
	flagsConcrete flagKind = iota
	// flagsLazySub: the last flag write was cmp flagA, flagB at flagSize.
	flagsLazySub
	// flagsLazyTest: the last flag write was test, with flagA holding the
	// (unmasked) AND result at flagSize.
	flagsLazyTest
)

// fastOK reports whether this run may use the predecoded core. Any
// instrumentation pins the run to the reference loop, which is also how
// snapshot boundaries and trace hooks always observe materialized flags.
func (mc *Machine) fastOK() bool {
	return !mc.refCore && !mc.snapCapture && mc.traceRing == nil && mc.tr == nil
}

// materializeFlags folds pending lazy flag state into regs[RFLAGS].
// No-op when the state is already concrete.
func (mc *Machine) materializeFlags() {
	switch mc.flagKind {
	case flagsLazySub:
		mc.regs[asm.RFLAGS] = setSubFlags(mc.flagA, mc.flagB, mc.flagSize)
	case flagsLazyTest:
		mc.regs[asm.RFLAGS] = setLogicFlags(mc.flagA, mc.flagSize)
	}
	mc.flagKind = flagsConcrete
}

// evalCond decides a condition against the live flag state without
// materializing it.
func (mc *Machine) evalCond(c asm.Cond) bool {
	switch mc.flagKind {
	case flagsLazySub:
		return c.EvalSub(mc.flagA, mc.flagB, mc.flagSize)
	case flagsLazyTest:
		return c.EvalTest(mc.flagA, mc.flagSize)
	default:
		return c.Eval(mc.regs[asm.RFLAGS])
	}
}

// fastLoad/fastStore are loadMem/storeMem with the byte loop replaced by
// little-endian word access; mapped() bounds the slice so the accesses
// cannot overrun. fastStore keeps the minTouch low-water mark (reset
// correctness) but not the snapshot dirty range — snapCapture runs never
// use this core.
func (mc *Machine) fastLoad(addr int64, size uint8) uint64 {
	if !mc.mapped(addr, int64(size)) {
		mc.trap(sim.TrapBadAddress)
	}
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(mc.mem[addr:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(mc.mem[addr:]))
	default:
		return uint64(mc.mem[addr])
	}
}

func (mc *Machine) fastStore(addr int64, size uint8, v uint64) {
	if !mc.mapped(addr, int64(size)) {
		mc.trap(sim.TrapBadAddress)
	}
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(mc.mem[addr:], v)
	case 4:
		binary.LittleEndian.PutUint32(mc.mem[addr:], uint32(v))
	default:
		mc.mem[addr] = byte(v)
	}
	if addr >= ir.StackLimit && addr < mc.minTouch {
		mc.minTouch = addr
	}
}

func (mc *Machine) fastPush(v uint64) {
	sp := int64(mc.regs[asm.RSP]) - 8
	mc.regs[asm.RSP] = uint64(sp)
	mc.fastStore(sp, 8, v)
}

func (mc *Machine) fastPop() uint64 {
	sp := int64(mc.regs[asm.RSP])
	v := mc.fastLoad(sp, 8)
	mc.regs[asm.RSP] = uint64(sp + 8)
	return v
}

// execFast runs from the current pc until the sentinel return or a trap.
// It must be observably identical to exec: same Result fields, same trap
// points, same pc/steps/inject values on every panic path — which is why
// the counters live in Machine fields rather than locals.
//
// Operand truncation follows the reference but elides masks proven
// redundant: writeReg re-masks results at widths 1 and 4, and the
// specialized ALU ops (add/sub/imul/and/or/xor) are mask-stable, so
// reading registers unmasked produces the same stored bits. Right shifts
// and zero-extends genuinely consume high bits and keep their explicit
// truncVal.
func (mc *Machine) execFast() {
	uops := mc.uops
	n := int32(len(uops))
	for {
		if mc.pc < 0 || mc.pc >= n {
			mc.trap(sim.TrapBadJump)
		}
		u := &uops[mc.pc]
		mc.steps++
		if mc.steps > mc.maxSteps {
			mc.trap(sim.TrapTimeout)
		}

		switch u.kind {
		case uMovRR:
			mc.writeReg(u.dst, u.size, mc.regs[u.src])
		case uMovRI:
			mc.writeReg(u.dst, u.size, uint64(u.imm))
		case uMovLoad:
			mc.writeReg(u.dst, u.size, mc.fastLoad(mc.ea(u), u.size))
		case uMovStR:
			mc.fastStore(mc.ea(u), u.size, mc.regs[u.src])
		case uMovStI:
			mc.fastStore(mc.ea(u), u.size, uint64(u.imm))

		case uMovSXR:
			mc.writeReg(u.dst, 8, uint64(signExtend(mc.regs[u.src], u.size)))
		case uMovSXLoad:
			mc.writeReg(u.dst, 8, uint64(signExtend(mc.fastLoad(mc.ea(u), u.size), u.size)))
		case uMovZXR:
			mc.writeReg(u.dst, 8, truncVal(mc.regs[u.src], u.size))
		case uMovZXLoad:
			mc.writeReg(u.dst, 8, mc.fastLoad(mc.ea(u), u.size))
		case uLea:
			mc.writeReg(u.dst, 8, uint64(mc.ea(u)))

		case uAluRR, uAluRI, uAluLoad:
			a := mc.regs[u.dst]
			var b uint64
			switch u.kind {
			case uAluRR:
				b = mc.regs[u.src]
			case uAluRI:
				b = uint64(u.imm)
			default:
				b = mc.fastLoad(mc.ea(u), u.size)
			}
			var r uint64
			switch u.op {
			case asm.OpAdd:
				r = a + b
			case asm.OpSub:
				r = a - b
			case asm.OpIMul:
				r = a * b
			case asm.OpAnd:
				r = a & b
			case asm.OpOr:
				r = a | b
			default:
				r = a ^ b
			}
			mc.writeReg(u.dst, u.size, r)

		case uShiftRI, uShiftRR:
			a := mc.regs[u.dst]
			var c uint64
			if u.kind == uShiftRI {
				c = uint64(u.imm)
			} else {
				c = mc.regs[u.src]
			}
			if u.size == 8 {
				c &= 63
			} else {
				c &= 31
			}
			var r uint64
			switch u.op {
			case asm.OpShl:
				r = a << c
			case asm.OpSar:
				r = uint64(signExtend(a, u.size) >> c)
			default:
				r = truncVal(a, u.size) >> c
			}
			mc.writeReg(u.dst, u.size, r)

		case uNeg:
			mc.writeReg(u.dst, u.size, -mc.regs[u.dst])

		case uCqo:
			if u.size == 4 {
				mc.writeReg(asm.RDX, 4, uint64(int64(int32(mc.regs[asm.RAX]))>>31))
			} else {
				mc.writeReg(asm.RDX, 8, uint64(int64(mc.regs[asm.RAX])>>63))
			}

		case uIDiv:
			mc.idiv(u.in)

		case uCmpRR, uCmpRI, uCmpLoad:
			mc.flagKind = flagsLazySub
			mc.flagA = mc.regs[u.dst]
			switch u.kind {
			case uCmpRR:
				mc.flagB = mc.regs[u.src]
			case uCmpRI:
				mc.flagB = uint64(u.imm)
			default:
				mc.flagB = mc.fastLoad(mc.ea(u), u.size)
			}
			mc.flagSize = u.size

		case uTestRR:
			mc.flagKind = flagsLazyTest
			mc.flagA = mc.regs[u.dst] & mc.regs[u.src]
			mc.flagSize = u.size
		case uTestRI:
			mc.flagKind = flagsLazyTest
			mc.flagA = mc.regs[u.dst] & uint64(u.imm)
			mc.flagSize = u.size

		case uFuseCmpRR, uFuseCmpRI, uFuseTestRR, uFuseTestRI:
			// Superinstruction: the compare half executes at this pc, the
			// branch half replays the reference jcc at pc+1 (its own
			// steps++, timeout check, and pc) so counters and trap points
			// match an unfused execution exactly.
			switch u.kind {
			case uFuseCmpRR:
				mc.flagKind = flagsLazySub
				mc.flagA = mc.regs[u.dst]
				mc.flagB = mc.regs[u.src]
			case uFuseCmpRI:
				mc.flagKind = flagsLazySub
				mc.flagA = mc.regs[u.dst]
				mc.flagB = uint64(u.imm)
			case uFuseTestRR:
				mc.flagKind = flagsLazyTest
				mc.flagA = mc.regs[u.dst] & mc.regs[u.src]
			default:
				mc.flagKind = flagsLazyTest
				mc.flagA = mc.regs[u.dst] & uint64(u.imm)
			}
			mc.flagSize = u.size
			mc.maybeInject(u.in)
			mc.pc++
			mc.steps++
			if mc.steps > mc.maxSteps {
				mc.trap(sim.TrapTimeout)
			}
			if mc.evalCond(u.cond) {
				mc.pc = u.target
			} else {
				mc.pc++
			}
			continue

		case uSet:
			var v uint64
			if mc.evalCond(u.cond) {
				v = 1
			}
			mc.writeReg(u.dst, 1, v)

		case uSSERR, uSSELoad:
			a := math.Float64frombits(mc.regs[u.dst])
			var bb uint64
			if u.kind == uSSERR {
				bb = mc.regs[u.src]
			} else {
				bb = mc.fastLoad(mc.ea(u), 8)
			}
			b := math.Float64frombits(bb)
			var r float64
			switch u.op {
			case asm.OpAddSD:
				r = a + b
			case asm.OpSubSD:
				r = a - b
			case asm.OpMulSD:
				r = a * b
			default:
				r = a / b
			}
			mc.regs[u.dst] = math.Float64bits(r)

		case uUComiRR, uUComiLoad:
			a := math.Float64frombits(mc.regs[u.dst])
			var bb uint64
			if u.kind == uUComiRR {
				bb = mc.regs[u.src]
			} else {
				bb = mc.fastLoad(mc.ea(u), 8)
			}
			// ucomisd flags stay concrete: only three flag patterns, not
			// worth a lazy kind.
			mc.regs[asm.RFLAGS] = ucomisdFlags(a, math.Float64frombits(bb))
			mc.flagKind = flagsConcrete

		case uJmp:
			mc.pc = u.target
			continue

		case uJcc:
			if mc.evalCond(u.cond) {
				mc.pc = u.target
				continue
			}

		case uCall:
			mc.fastPush(uint64(CodeBase + instrSlot*int64(mc.pc+1)))
			mc.maybeInject(u.in) // destination: RSP
			mc.pc = u.target
			continue

		case uCallExt:
			mc.callRuntime(u.ext)
			mc.maybeInject(u.in) // destination: RSP
			mc.pc++
			continue

		case uRet:
			addr := mc.fastPop()
			// ret's injectable destination is RIP: the fault lands on the
			// popped return address (mirrors exec's inline handling).
			mc.inject++
			if mc.inject == mc.injectAt {
				mc.injected = true
				mc.injStatic = mc.pc
				mc.injOrigin = u.in.origin
				mc.injCheck = u.in.checker
				addr ^= 1 << (mc.injectBit % 64)
			}
			if addr == mc.sentinelRA() {
				return
			}
			if addr < CodeBase || (addr-CodeBase)%instrSlot != 0 {
				mc.trap(sim.TrapBadJump)
			}
			idx := int32((addr - CodeBase) / instrSlot)
			if idx < 0 || idx >= n {
				mc.trap(sim.TrapBadJump)
			}
			mc.pc = idx
			continue

		case uPushR:
			mc.fastPush(mc.regs[u.src])
		case uPushI:
			mc.fastPush(uint64(u.imm))
		case uPop:
			mc.writeReg(u.dst, 8, mc.fastPop())

		default:
			mc.slowStep(u.in)
		}

		if u.in.hasDest {
			mc.maybeInject(u.in)
		}
		mc.pc++
	}
}

// slowStep executes one non-control-flow instruction through the
// reference operand path (readOp/writeDst). It handles every operand
// shape the predecoder leaves generic — memory-destination ALU ops, the
// cvt ops, push/pop with memory operands. Flag writers must leave
// concrete state, since the caller bypassed the lazy recording.
func (mc *Machine) slowStep(in *minstr) {
	mc.slowSteps++
	switch in.op {
	case asm.OpMov:
		mc.writeDst(&in.dst, in.size, mc.readOp(&in.src, in.size))

	case asm.OpMovSX:
		v := mc.readOp(&in.src, in.size)
		mc.writeReg(in.dst.reg, 8, uint64(signExtend(v, in.size)))

	case asm.OpMovZX:
		mc.writeReg(in.dst.reg, 8, mc.readOp(&in.src, in.size))

	case asm.OpAdd, asm.OpSub, asm.OpIMul, asm.OpAnd, asm.OpOr, asm.OpXor:
		a := mc.readOp(&in.dst, in.size)
		b := mc.readOp(&in.src, in.size)
		var r uint64
		switch in.op {
		case asm.OpAdd:
			r = a + b
		case asm.OpSub:
			r = a - b
		case asm.OpIMul:
			r = a * b
		case asm.OpAnd:
			r = a & b
		case asm.OpOr:
			r = a | b
		default:
			r = a ^ b
		}
		mc.writeDst(&in.dst, in.size, r)

	case asm.OpShl, asm.OpSar, asm.OpShr:
		a := mc.readOp(&in.dst, in.size)
		c := mc.readOp(&in.src, 8)
		if in.size == 8 {
			c &= 63
		} else {
			c &= 31
		}
		var r uint64
		switch in.op {
		case asm.OpShl:
			r = a << c
		case asm.OpSar:
			r = uint64(signExtend(a, in.size) >> c)
		default:
			r = a >> c
		}
		mc.writeDst(&in.dst, in.size, r)

	case asm.OpNeg:
		mc.writeDst(&in.dst, in.size, -mc.readOp(&in.dst, in.size))

	case asm.OpCmp:
		a := mc.readOp(&in.dst, in.size)
		b := mc.readOp(&in.src, in.size)
		mc.regs[asm.RFLAGS] = setSubFlags(a, b, in.size)
		mc.flagKind = flagsConcrete

	case asm.OpTest:
		a := mc.readOp(&in.dst, in.size)
		b := mc.readOp(&in.src, in.size)
		mc.regs[asm.RFLAGS] = setLogicFlags(a&b, in.size)
		mc.flagKind = flagsConcrete

	case asm.OpMovSD:
		mc.writeDst(&in.dst, 8, mc.readOp(&in.src, 8))

	case asm.OpAddSD, asm.OpSubSD, asm.OpMulSD, asm.OpDivSD:
		a := math.Float64frombits(mc.regs[in.dst.reg])
		b := math.Float64frombits(mc.readOp(&in.src, 8))
		var r float64
		switch in.op {
		case asm.OpAddSD:
			r = a + b
		case asm.OpSubSD:
			r = a - b
		case asm.OpMulSD:
			r = a * b
		default:
			r = a / b
		}
		mc.regs[in.dst.reg] = math.Float64bits(r)

	case asm.OpUComiSD:
		a := math.Float64frombits(mc.regs[in.dst.reg])
		b := math.Float64frombits(mc.readOp(&in.src, 8))
		mc.regs[asm.RFLAGS] = ucomisdFlags(a, b)
		mc.flagKind = flagsConcrete

	case asm.OpCvtSI2SD:
		v := signExtend(mc.readOp(&in.src, in.size), in.size)
		mc.regs[in.dst.reg] = math.Float64bits(float64(v))

	case asm.OpCvtSD2SI:
		f := math.Float64frombits(mc.readOp(&in.src, 8))
		mc.writeReg(in.dst.reg, in.size, uint64(rt.FpToSI(int(in.size)*8, f)))

	case asm.OpPush:
		mc.push(mc.readOp(&in.src, 8))

	case asm.OpPop:
		mc.writeReg(in.dst.reg, 8, mc.pop())

	default:
		panic("machine: unknown opcode " + in.op.String())
	}
}
