package machine

import (
	"flowery/internal/asm"
	"flowery/internal/rt"
)

// Predecoding for the fast execution core (DESIGN.md §11). The linked
// code array is translated once into a parallel micro-op array: uops[i]
// executes code[i], so every jump target, return address, and snapshot
// pc remains a valid entry point. Each micro-op carries its operand form
// resolved into a kind (reg-reg, reg-imm, reg-mem, ...) so the hot loop
// indexes registers directly instead of re-dispatching on operand kind,
// and adjacent cmp/test + jcc pairs additionally get a fused
// superinstruction at the compare's slot (the jcc keeps its own plain
// micro-op at its original index, so jumping into the middle of a fused
// pair still works).

type uopKind uint8

const (
	// uGeneric executes code[pc] with reference operand dispatch
	// (readOp/writeDst); the catch-all for rare operand shapes.
	uGeneric uopKind = iota

	uMovRR   // reg ← reg
	uMovRI   // reg ← imm
	uMovLoad // reg ← [ea]
	uMovStR  // [ea] ← reg
	uMovStI  // [ea] ← imm

	uMovSXR
	uMovSXLoad
	uMovZXR
	uMovZXLoad
	uLea

	uAluRR   // dst reg ←op← src reg
	uAluRI   // dst reg ←op← imm
	uAluLoad // dst reg ←op← [ea]
	uShiftRI
	uShiftRR
	uNeg
	uCqo
	uIDiv

	uCmpRR // lazy flag record
	uCmpRI
	uCmpLoad
	uTestRR
	uTestRI
	uFuseCmpRR // cmp/test + jcc superinstructions
	uFuseCmpRI
	uFuseTestRR
	uFuseTestRI

	uSet
	uJmp
	uJcc
	uCall
	uCallExt
	uRet
	uPushR
	uPushI
	uPop

	uSSERR   // addsd/subsd/mulsd/divsd, xmm src
	uSSELoad // same, memory src
	uUComiRR
	uUComiLoad
)

// uop is one predecoded micro-op. base/index/scale/disp describe the
// single memory operand a specialized kind may have (source or
// destination, depending on the kind); in points back to the linked
// instruction for injection metadata and the generic path.
type uop struct {
	kind   uopKind
	op     asm.Op
	size   uint8
	cond   asm.Cond
	dst    asm.Reg
	src    asm.Reg
	base   asm.Reg
	index  asm.Reg
	scale  int64
	disp   int64
	imm    int64
	target int32
	ext    rt.Func
	in     *minstr
}

// ea computes a micro-op's effective address. regs[RegNone] is always
// zero (reset zeroes it and no instruction can write it), so absent
// base/index registers contribute nothing without a branch.
func (mc *Machine) ea(u *uop) int64 {
	return u.disp + int64(mc.regs[u.base]) + int64(mc.regs[u.index])*u.scale
}

// memFields copies an operand's effective-address shape into the uop.
func (u *uop) memFields(o *mop) {
	u.base = o.reg
	u.index = o.index
	u.scale = o.scale
	u.disp = o.imm
}

// predecode builds the micro-op array. It never fails: shapes without a
// specialized kind fall back to uGeneric, which executes the linked
// instruction through the reference operand path.
func (mc *Machine) predecode() {
	uops := make([]uop, len(mc.code))
	for i := range mc.code {
		in := &mc.code[i]
		u := &uops[i]
		u.op = in.op
		u.size = in.size
		u.cond = in.cond
		u.target = in.target
		u.ext = in.ext
		u.in = in

		dk, sk := in.dst.kind, in.src.kind
		switch in.op {
		case asm.OpMov, asm.OpMovSD:
			// movsd is mov at size 8 between xmm registers and memory.
			if in.op == asm.OpMovSD {
				u.size = 8
			}
			switch {
			case dk == asm.OperandReg && sk == asm.OperandReg:
				u.kind, u.dst, u.src = uMovRR, in.dst.reg, in.src.reg
			case dk == asm.OperandReg && sk == asm.OperandImm:
				u.kind, u.dst, u.imm = uMovRI, in.dst.reg, in.src.imm
			case dk == asm.OperandReg && sk == asm.OperandMem:
				u.kind, u.dst = uMovLoad, in.dst.reg
				u.memFields(&in.src)
			case dk == asm.OperandMem && sk == asm.OperandReg:
				u.kind, u.src = uMovStR, in.src.reg
				u.memFields(&in.dst)
			case dk == asm.OperandMem && sk == asm.OperandImm:
				u.kind, u.imm = uMovStI, in.src.imm
				u.memFields(&in.dst)
			}

		case asm.OpMovSX, asm.OpMovZX:
			r, l := uMovSXR, uMovSXLoad
			if in.op == asm.OpMovZX {
				r, l = uMovZXR, uMovZXLoad
			}
			switch sk {
			case asm.OperandReg:
				u.kind, u.dst, u.src = r, in.dst.reg, in.src.reg
			case asm.OperandMem:
				u.kind, u.dst = l, in.dst.reg
				u.memFields(&in.src)
			}

		case asm.OpLea:
			u.kind, u.dst = uLea, in.dst.reg
			u.memFields(&in.src)

		case asm.OpAdd, asm.OpSub, asm.OpIMul, asm.OpAnd, asm.OpOr, asm.OpXor:
			if dk != asm.OperandReg {
				break // memory destination: generic
			}
			switch sk {
			case asm.OperandReg:
				u.kind, u.dst, u.src = uAluRR, in.dst.reg, in.src.reg
			case asm.OperandImm:
				u.kind, u.dst, u.imm = uAluRI, in.dst.reg, in.src.imm
			case asm.OperandMem:
				u.kind, u.dst = uAluLoad, in.dst.reg
				u.memFields(&in.src)
			}

		case asm.OpShl, asm.OpSar, asm.OpShr:
			if dk != asm.OperandReg {
				break
			}
			switch sk {
			case asm.OperandImm:
				u.kind, u.dst, u.imm = uShiftRI, in.dst.reg, in.src.imm
			case asm.OperandReg:
				u.kind, u.dst, u.src = uShiftRR, in.dst.reg, in.src.reg
			}

		case asm.OpNeg:
			if dk == asm.OperandReg {
				u.kind, u.dst = uNeg, in.dst.reg
			}

		case asm.OpCqo:
			u.kind = uCqo
		case asm.OpIDiv:
			u.kind = uIDiv // operand read stays generic inside idiv

		case asm.OpCmp:
			switch {
			case dk == asm.OperandReg && sk == asm.OperandReg:
				u.kind, u.dst, u.src = uCmpRR, in.dst.reg, in.src.reg
			case dk == asm.OperandReg && sk == asm.OperandImm:
				u.kind, u.dst, u.imm = uCmpRI, in.dst.reg, in.src.imm
			case dk == asm.OperandReg && sk == asm.OperandMem:
				u.kind, u.dst = uCmpLoad, in.dst.reg
				u.memFields(&in.src)
			}

		case asm.OpTest:
			switch {
			case dk == asm.OperandReg && sk == asm.OperandReg:
				u.kind, u.dst, u.src = uTestRR, in.dst.reg, in.src.reg
			case dk == asm.OperandReg && sk == asm.OperandImm:
				u.kind, u.dst, u.imm = uTestRI, in.dst.reg, in.src.imm
			}

		case asm.OpSet:
			u.kind, u.dst = uSet, in.dst.reg

		case asm.OpAddSD, asm.OpSubSD, asm.OpMulSD, asm.OpDivSD:
			switch sk {
			case asm.OperandReg:
				u.kind, u.dst, u.src = uSSERR, in.dst.reg, in.src.reg
			case asm.OperandMem:
				u.kind, u.dst = uSSELoad, in.dst.reg
				u.memFields(&in.src)
			}

		case asm.OpUComiSD:
			switch sk {
			case asm.OperandReg:
				u.kind, u.dst, u.src = uUComiRR, in.dst.reg, in.src.reg
			case asm.OperandMem:
				u.kind, u.dst = uUComiLoad, in.dst.reg
				u.memFields(&in.src)
			}

		case asm.OpJmp:
			u.kind = uJmp
		case asm.OpJcc:
			u.kind = uJcc
		case asm.OpCall:
			if in.ext != rt.FuncNone {
				u.kind = uCallExt
			} else {
				u.kind = uCall
			}
		case asm.OpRet:
			u.kind = uRet
		case asm.OpPush:
			switch sk {
			case asm.OperandReg:
				u.kind, u.src = uPushR, in.src.reg
			case asm.OperandImm:
				u.kind, u.imm = uPushI, in.src.imm
			}
		case asm.OpPop:
			if dk == asm.OperandReg {
				u.kind, u.dst = uPop, in.dst.reg
			}
		}
	}

	// Fusion pass: a lazily-evaluable cmp/test immediately followed by a
	// jcc becomes a branch superinstruction at the compare's slot. The
	// jcc's own micro-op is untouched — control flow entering at i+1
	// (jump targets, snapshot restores, corrupted returns) executes it
	// standalone against whatever flag state is live.
	for i := 0; i+1 < len(uops); i++ {
		if !mc.code[i].op.WritesFlags() || mc.code[i+1].op != asm.OpJcc {
			continue
		}
		var fused uopKind
		switch uops[i].kind {
		case uCmpRR:
			fused = uFuseCmpRR
		case uCmpRI:
			fused = uFuseCmpRI
		case uTestRR:
			fused = uFuseTestRR
		case uTestRI:
			fused = uFuseTestRI
		default:
			continue
		}
		uops[i].kind = fused
		uops[i].cond = mc.code[i+1].cond
		uops[i].target = mc.code[i+1].target
	}
	mc.uops = uops
}
