package machine

import (
	"strings"
	"testing"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// buildCallProgram: main calls a helper so ret/call paths execute.
func buildCallProgram(t *testing.T) (*ir.Module, *Machine) {
	t.Helper()
	m := ir.NewModule("call")
	h := m.NewFunction("twice", ir.I64, ir.I64)
	bh := ir.NewBuilder(h)
	bh.Ret(bh.Add(h.Params[0], h.Params[0]))
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Call(h, ir.ConstInt(ir.I64, 21))
	b.PrintI64(v)
	b.Ret(v)
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	return m, mc
}

func TestCallAndReturn(t *testing.T) {
	_, mc := buildCallProgram(t)
	res := mc.Run(sim.Fault{}, sim.Options{})
	if res.Status != sim.StatusOK || string(res.Output) != "42\n" || res.RetVal != 42 {
		t.Fatalf("res = %+v", res)
	}
}

// TestRetCorruptionTraps: flipping a high bit of the return address must
// produce a bad-jump DUE (mapping penetration behaviour).
func TestRetCorruptionTraps(t *testing.T) {
	_, mc := buildCallProgram(t)
	golden := mc.Run(sim.Fault{}, sim.Options{})

	// Find the dynamic index of the helper's ret: scan all sites and
	// look for a bad-jump producing injection with a high bit.
	sawBadJump := false
	for i := int64(1); i <= golden.InjectableInstrs; i++ {
		res := mc.Run(sim.Fault{TargetIndex: i, Bit: 40}, sim.Options{})
		if res.Status == sim.StatusTrap && res.Trap == sim.TrapBadJump {
			sawBadJump = true
			break
		}
	}
	if !sawBadJump {
		t.Fatal("no injection produced a bad-jump trap; ret corruption path untested")
	}
}

func TestMainlessProgramRejected(t *testing.T) {
	// The backend validates the lowered program, which requires main;
	// a mainless module must be rejected before it ever reaches a
	// machine.
	m := ir.NewModule("empty")
	f := m.NewFunction("notmain", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(ir.ConstInt(ir.I64, 0))
	if _, err := backend.Lower(m); err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("missing main not rejected: %v", err)
	}
}

func TestGlobalRelocation(t *testing.T) {
	// A program addressing a global through a Sym operand must read the
	// initialized data.
	m := ir.NewModule("reloc")
	g := m.NewGlobalI64("answer", []int64{4242})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Load(ir.I64, g)
	b.Ret(v)
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res := mc.Run(sim.Fault{}, sim.Options{}); res.RetVal != 4242 {
		t.Fatalf("relocated load returned %d", res.RetVal)
	}
}

func TestFloatConstantPool(t *testing.T) {
	m := ir.NewModule("fpool")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.FAdd(ir.ConstFloat(1.25), ir.ConstFloat(2.5))
	b.PrintF64(x)
	b.Ret(ir.ConstInt(ir.I64, 0))
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Global(backend.FconstPoolName) == nil {
		t.Fatal("constant pool not created")
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res := mc.Run(sim.Fault{}, sim.Options{}); string(res.Output) != "3.75\n" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestInjectionIntoFlagsChangesBranch(t *testing.T) {
	// A protected-style test+jcc: flipping ZF must divert the branch.
	m := ir.NewModule("flags")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	g := m.NewGlobalI64("g", []int64{1})
	cond := b.ICmp(ir.PredEQ, b.Load(ir.I64, g), ir.ConstInt(ir.I64, 1))
	// Force the non-fused path by storing the condition first (extra use).
	slot := b.AllocVar(ir.I1)
	b.Store(cond, slot)
	c2 := b.Load(ir.I1, slot)
	b.If(c2, func() { b.PrintI64(ir.ConstInt(ir.I64, 111)) }, func() { b.PrintI64(ir.ConstInt(ir.I64, 222)) })
	b.Ret(ir.ConstInt(ir.I64, 0))
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})
	if string(golden.Output) != "111\n" {
		t.Fatalf("golden output %q", golden.Output)
	}
	flipped := false
	for i := int64(1); i <= golden.InjectableInstrs; i++ {
		res := mc.Run(sim.Fault{TargetIndex: i, Bit: 2}, sim.Options{})
		if res.Status == sim.StatusOK && string(res.Output) == "222\n" &&
			res.InjectedOrigin == asm.OriginBranchTest {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no RFLAGS injection at the branch test diverted the branch")
	}
}

func TestTraceRing(t *testing.T) {
	_, mc := buildCallProgram(t)
	mc.EnableTrace(16)
	mc.Run(sim.Fault{}, sim.Options{})
	tr := mc.DumpTrace()
	if len(tr) == 0 {
		t.Fatal("trace empty")
	}
	last := tr[len(tr)-1]
	if !strings.Contains(last, "retq") {
		t.Fatalf("final traced instruction is %q; expected main's ret", last)
	}
}

// TestMachineAgreesWithInterpOnBenignFaultSubset: for faults that leave
// the program healthy at IR level, the machine must at minimum remain
// deterministic and classify cleanly (no panics, no stuck states).
func TestMachineFaultSweepRobust(t *testing.T) {
	m, mc := buildCallProgram(t)
	_ = m
	golden := mc.Run(sim.Fault{}, sim.Options{})
	for i := int64(1); i <= golden.InjectableInstrs; i++ {
		for _, bit := range []int{0, 31, 63} {
			r1 := mc.Run(sim.Fault{TargetIndex: i, Bit: bit}, sim.Options{})
			r2 := mc.Run(sim.Fault{TargetIndex: i, Bit: bit}, sim.Options{})
			if r1.Status != r2.Status || string(r1.Output) != string(r2.Output) {
				t.Fatalf("fault (%d,%d) nondeterministic", i, bit)
			}
		}
	}
}

var _ = interp.New // keep interp linked for future cross-checks in this file
