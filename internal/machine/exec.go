package machine

import (
	"math"

	"flowery/internal/asm"
	"flowery/internal/rt"
	"flowery/internal/sim"
)

// exec runs from the current pc until the sentinel return or a trap.
func (mc *Machine) exec() {
	code := mc.code
	n := int32(len(code))
	for {
		if mc.snapCapture && mc.inject >= mc.nextSnapAt {
			// Instruction boundary: pc, registers, memory, output and
			// the step/inject counters are all settled — checkpoint.
			mc.captureSnapshot()
		}
		if mc.pc < 0 || mc.pc >= n {
			mc.trap(sim.TrapBadJump)
		}
		in := &code[mc.pc]
		mc.steps++
		if mc.steps > mc.maxSteps {
			mc.trap(sim.TrapTimeout)
		}
		if mc.traceRing != nil {
			mc.traceRing[mc.traceHead] = mc.pc
			mc.traceHead = (mc.traceHead + 1) % len(mc.traceRing)
		}
		if mc.tr != nil {
			mc.traceUses(in)
		}

		switch in.op {
		case asm.OpMov:
			v := mc.readOp(&in.src, in.size)
			mc.writeDst(&in.dst, in.size, v)

		case asm.OpMovSX:
			v := mc.readOp(&in.src, in.size)
			mc.writeReg(in.dst.reg, 8, uint64(signExtend(v, in.size)))

		case asm.OpMovZX:
			v := mc.readOp(&in.src, in.size)
			mc.writeReg(in.dst.reg, 8, v)

		case asm.OpLea:
			mc.writeReg(in.dst.reg, 8, uint64(mc.effAddr(&in.src)))

		case asm.OpAdd, asm.OpSub, asm.OpIMul, asm.OpAnd, asm.OpOr, asm.OpXor:
			a := mc.readOp(&in.dst, in.size)
			b := mc.readOp(&in.src, in.size)
			var r uint64
			switch in.op {
			case asm.OpAdd:
				r = a + b
			case asm.OpSub:
				r = a - b
			case asm.OpIMul:
				r = a * b
			case asm.OpAnd:
				r = a & b
			case asm.OpOr:
				r = a | b
			case asm.OpXor:
				r = a ^ b
			}
			mc.writeDst(&in.dst, in.size, r)

		case asm.OpShl, asm.OpSar, asm.OpShr:
			a := mc.readOp(&in.dst, in.size)
			c := mc.readOp(&in.src, 8)
			if in.size == 8 {
				c &= 63
			} else {
				c &= 31
			}
			var r uint64
			switch in.op {
			case asm.OpShl:
				r = a << c
			case asm.OpSar:
				r = uint64(signExtend(a, in.size) >> c)
			case asm.OpShr:
				r = a >> c
			}
			mc.writeDst(&in.dst, in.size, r)

		case asm.OpNeg:
			a := mc.readOp(&in.dst, in.size)
			mc.writeDst(&in.dst, in.size, -a)

		case asm.OpCqo:
			if in.size == 4 {
				mc.writeReg(asm.RDX, 4, uint64(int64(int32(mc.regs[asm.RAX]))>>31))
			} else {
				mc.writeReg(asm.RDX, 8, uint64(int64(mc.regs[asm.RAX])>>63))
			}

		case asm.OpIDiv:
			mc.idiv(in)

		case asm.OpCmp:
			a := mc.readOp(&in.dst, in.size)
			b := mc.readOp(&in.src, in.size)
			mc.regs[asm.RFLAGS] = setSubFlags(a, b, in.size)

		case asm.OpTest:
			a := mc.readOp(&in.dst, in.size)
			b := mc.readOp(&in.src, in.size)
			mc.regs[asm.RFLAGS] = setLogicFlags(a&b, in.size)

		case asm.OpSet:
			var v uint64
			if in.cond.Eval(mc.regs[asm.RFLAGS]) {
				v = 1
			}
			mc.writeReg(in.dst.reg, 1, v)

		case asm.OpMovSD:
			v := mc.readOp(&in.src, 8)
			mc.writeDst(&in.dst, 8, v)

		case asm.OpAddSD, asm.OpSubSD, asm.OpMulSD, asm.OpDivSD:
			a := math.Float64frombits(mc.regs[in.dst.reg])
			b := math.Float64frombits(mc.readOp(&in.src, 8))
			var r float64
			switch in.op {
			case asm.OpAddSD:
				r = a + b
			case asm.OpSubSD:
				r = a - b
			case asm.OpMulSD:
				r = a * b
			default:
				r = a / b
			}
			mc.regs[in.dst.reg] = math.Float64bits(r)

		case asm.OpUComiSD:
			a := math.Float64frombits(mc.regs[in.dst.reg])
			b := math.Float64frombits(mc.readOp(&in.src, 8))
			mc.regs[asm.RFLAGS] = ucomisdFlags(a, b)

		case asm.OpCvtSI2SD:
			v := signExtend(mc.readOp(&in.src, in.size), in.size)
			mc.regs[in.dst.reg] = math.Float64bits(float64(v))

		case asm.OpCvtSD2SI:
			f := math.Float64frombits(mc.readOp(&in.src, 8))
			v := rt.FpToSI(int(in.size)*8, f)
			mc.writeReg(in.dst.reg, in.size, uint64(v))

		case asm.OpJmp:
			mc.pc = in.target
			continue

		case asm.OpJcc:
			if in.cond.Eval(mc.regs[asm.RFLAGS]) {
				mc.pc = in.target
				continue
			}

		case asm.OpCall:
			if in.ext != rt.FuncNone {
				mc.callRuntime(in.ext)
				mc.maybeInject(in) // destination: RSP
				mc.pc++
				continue
			}
			mc.push(uint64(CodeBase + instrSlot*int64(mc.pc+1)))
			mc.maybeInject(in) // destination: RSP
			mc.pc = in.target
			continue

		case asm.OpRet:
			addr := mc.pop()
			// ret's injectable destination is RIP: the fault lands on
			// the popped return address.
			mc.inject++
			if mc.tr != nil {
				mc.traceRetDef(addr)
			}
			if mc.inject == mc.injectAt {
				mc.injected = true
				mc.injStatic = mc.pc
				mc.injOrigin = in.origin
				mc.injCheck = in.checker
				addr ^= 1 << (mc.injectBit % 64)
			}
			if addr == mc.sentinelRA() {
				return
			}
			if addr < CodeBase || (addr-CodeBase)%instrSlot != 0 {
				mc.trap(sim.TrapBadJump)
			}
			idx := int32((addr - CodeBase) / instrSlot)
			if idx < 0 || idx >= n {
				mc.trap(sim.TrapBadJump)
			}
			mc.pc = idx
			continue

		case asm.OpPush:
			mc.push(mc.readOp(&in.src, 8))

		case asm.OpPop:
			mc.writeReg(in.dst.reg, 8, mc.pop())

		default:
			panic("machine: unknown opcode " + in.op.String())
		}

		if in.hasDest {
			mc.maybeInject(in)
		}
		mc.pc++
	}
}

// idiv implements 32- and 64-bit signed division with x86 #DE semantics.
func (mc *Machine) idiv(in *minstr) {
	if in.size == 4 {
		d := signExtend(mc.readOp(&in.src, 4), 4)
		if d == 0 {
			mc.trap(sim.TrapDivide)
		}
		dividend := int64(mc.regs[asm.RDX]&0xffff_ffff)<<32 | int64(mc.regs[asm.RAX]&0xffff_ffff)
		q := dividend / d
		if q > math.MaxInt32 || q < math.MinInt32 {
			mc.trap(sim.TrapDivide)
		}
		mc.writeReg(asm.RAX, 4, uint64(q))
		mc.writeReg(asm.RDX, 4, uint64(dividend%d))
		return
	}
	d := int64(mc.readOp(&in.src, 8))
	if d == 0 {
		mc.trap(sim.TrapDivide)
	}
	x := int64(mc.regs[asm.RAX])
	// Without 128-bit arithmetic, a dividend whose high half is not the
	// sign extension of RAX always overflows the quotient (as does
	// INT_MIN / -1); both raise #DE on real hardware.
	if int64(mc.regs[asm.RDX]) != x>>63 {
		mc.trap(sim.TrapDivide)
	}
	if d == -1 && x == math.MinInt64 {
		mc.trap(sim.TrapDivide)
	}
	mc.regs[asm.RAX] = uint64(x / d)
	mc.regs[asm.RDX] = uint64(x % d)
}

func (mc *Machine) callRuntime(f rt.Func) {
	switch f {
	case rt.FuncPrintI64:
		mc.out = rt.AppendI64(mc.out, int64(mc.regs[asm.RDI]))
	case rt.FuncPrintF64:
		mc.out = rt.AppendF64(mc.out, math.Float64frombits(mc.regs[asm.XMM0]))
	case rt.FuncPrintChar:
		mc.out = rt.AppendChar(mc.out, byte(mc.regs[asm.RDI]))
	case rt.FuncCheckFail:
		panic(detectedPanic{})
	case rt.FuncPow:
		r := rt.Math2(f, math.Float64frombits(mc.regs[asm.XMM0]), math.Float64frombits(mc.regs[asm.XMM1]))
		mc.regs[asm.XMM0] = math.Float64bits(r)
	default:
		r := rt.Math1(f, math.Float64frombits(mc.regs[asm.XMM0]))
		mc.regs[asm.XMM0] = math.Float64bits(r)
	}
	if len(mc.out) > rt.MaxOutput {
		mc.trap(sim.TrapOutputOverflow)
	}
}
