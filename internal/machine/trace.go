package machine

import (
	"flowery/internal/asm"
	"flowery/internal/rt"
	"flowery/internal/sim"
)

// Register def tracking for RunTraced. Each architectural register
// holds at most two layered defs: the primary def (the last injectable
// write) and, after a byte-sized write merged into a wider value, the
// under-def whose high bits are still live beneath it (sizes are 1, 4
// or 8, and 4-byte writes zero-extend, so two layers suffice).
//
// Non-injectable register writes whose result is data-dependent on the
// old value (idiv's RDX remainder, pop/ret advancing RSP, a runtime
// call's XMM0 result) keep the existing handle: a flip in the old def
// persists through the rewrite, so continued influence should accrue
// to the old site.

// RunTraced implements sim.TraceEngine: a golden run that streams
// def-use events to t, with Def order matching the injection counter.
func (mc *Machine) RunTraced(opts sim.Options, t sim.Tracer) sim.Result {
	mc.reset()
	mc.maxSteps = opts.MaxSteps
	if mc.maxSteps <= 0 {
		mc.maxSteps = sim.DefaultMaxSteps
	}
	mc.injectAt = 0
	mc.injectBit = 0
	for r := range mc.regDef {
		mc.regDef[r] = -1
		mc.regDefBits[r] = 0
		mc.regUnder[r] = -1
	}
	mc.tr = t
	defer func() { mc.tr = nil }()
	mc.setMetrics(opts.Metrics)
	return mc.finish()
}

// traceDef records the injectable definition maybeInject just counted.
func (mc *Machine) traceDef(in *minstr) {
	r := in.destReg
	bits := in.bits
	if bits <= 0 {
		bits = 64
	}
	val := mc.regs[r]
	if bits < 64 {
		val &= 1<<uint(bits) - 1
	}
	// Flags gate branches and the stack/instruction pointers address
	// memory and code: their concrete values must partition classes.
	sens := r == asm.RFLAGS || r == asm.RSP || r == asm.RIP
	mc.traceDefReg(mc.pc, r, bits, val, sens)
}

// traceDefReg opens a def for a register write, retiring what it
// overwrites. Only 8-bit defs merge (x86 byte writes): a wider def
// underneath stays live as the under-layer.
func (mc *Machine) traceDefReg(static int32, r asm.Reg, bits int, val uint64, sens bool) {
	if bits == 8 && mc.regDef[r] >= 0 && mc.regDefBits[r] > 8 {
		mc.tr.Kill(mc.regUnder[r])
		mc.regUnder[r] = mc.regDef[r]
	} else {
		mc.tr.Kill(mc.regDef[r])
		if bits != 8 {
			mc.tr.Kill(mc.regUnder[r])
			mc.regUnder[r] = -1
		}
	}
	mc.regDef[r] = mc.tr.Def(static, uint8(bits), val, sens)
	mc.regDefBits[r] = uint8(bits)
}

// traceRetDef records ret's injectable RIP def: the popped return
// address, consumed immediately by the jump.
func (mc *Machine) traceRetDef(addr uint64) {
	h := mc.tr.Def(mc.pc, 64, addr, true)
	mc.tr.Use(h, mc.pc, sim.UseBranch)
	mc.tr.Kill(h)
}

// useReg records a read of r's live def(s). Reads wider than a byte
// also touch the under-layer's high bits.
func (mc *Machine) useReg(r asm.Reg, size uint8, c int32, k sim.UseKind) {
	if h := mc.regDef[r]; h >= 0 {
		mc.tr.Use(h, c, k)
	}
	if size > 1 {
		if h := mc.regUnder[r]; h >= 0 {
			mc.tr.Use(h, c, k)
		}
	}
}

// useMemAddr records the address-forming register reads of a memory
// operand.
func (mc *Machine) useMemAddr(o *mop, c int32) {
	if o.kind != asm.OperandMem {
		return
	}
	if o.reg != asm.RegNone {
		mc.useReg(o.reg, 8, c, sim.UseAddr)
	}
	if o.index != asm.RegNone {
		mc.useReg(o.index, 8, c, sim.UseAddr)
	}
}

// useOp records the reads a source operand performs: the register's
// value, or the address registers of a memory access (loaded memory
// itself is untracked).
func (mc *Machine) useOp(o *mop, size uint8, c int32, k sim.UseKind) {
	switch o.kind {
	case asm.OperandReg:
		mc.useReg(o.reg, size, c, k)
	case asm.OperandMem:
		mc.useMemAddr(o, c)
	}
}

// traceUses records the register reads of the instruction about to
// execute (its defs are recorded after execution, by maybeInject).
func (mc *Machine) traceUses(in *minstr) {
	c := mc.pc
	switch in.op {
	case asm.OpMov, asm.OpMovSD:
		k := sim.UseArith
		if in.dst.kind == asm.OperandMem {
			k = sim.UseStoreVal
		}
		mc.useOp(&in.src, in.size, c, k)
		mc.useMemAddr(&in.dst, c)

	case asm.OpMovSX, asm.OpMovZX, asm.OpCvtSI2SD:
		mc.useOp(&in.src, in.size, c, sim.UseArith)

	case asm.OpCvtSD2SI:
		mc.useOp(&in.src, 8, c, sim.UseArith)

	case asm.OpLea:
		// lea is address arithmetic, not an access: operands are
		// ordinary data inputs.
		if in.src.reg != asm.RegNone {
			mc.useReg(in.src.reg, 8, c, sim.UseArith)
		}
		if in.src.index != asm.RegNone {
			mc.useReg(in.src.index, 8, c, sim.UseArith)
		}

	case asm.OpAdd, asm.OpSub, asm.OpIMul, asm.OpAnd, asm.OpOr, asm.OpXor, asm.OpNeg:
		mc.useOp(&in.dst, in.size, c, sim.UseArith)
		if in.op != asm.OpNeg {
			mc.useOp(&in.src, in.size, c, sim.UseArith)
		}

	case asm.OpShl, asm.OpSar, asm.OpShr:
		mc.useOp(&in.dst, in.size, c, sim.UseArith)
		mc.useOp(&in.src, 8, c, sim.UseArith)

	case asm.OpCqo:
		mc.useReg(asm.RAX, in.size, c, sim.UseArith)

	case asm.OpIDiv:
		mc.useReg(asm.RAX, in.size, c, sim.UseDiv)
		mc.useReg(asm.RDX, in.size, c, sim.UseDiv)
		mc.useOp(&in.src, in.size, c, sim.UseDiv)

	case asm.OpCmp, asm.OpTest:
		mc.useOp(&in.dst, in.size, c, sim.UseCmp)
		mc.useOp(&in.src, in.size, c, sim.UseCmp)

	case asm.OpAddSD, asm.OpSubSD, asm.OpMulSD, asm.OpDivSD:
		mc.useReg(in.dst.reg, 8, c, sim.UseArith)
		mc.useOp(&in.src, 8, c, sim.UseArith)

	case asm.OpUComiSD:
		mc.useReg(in.dst.reg, 8, c, sim.UseCmp)
		mc.useOp(&in.src, 8, c, sim.UseCmp)

	case asm.OpSet, asm.OpJcc:
		mc.useReg(asm.RFLAGS, 1, c, sim.UseBranch)

	case asm.OpPush:
		mc.useOp(&in.src, 8, c, sim.UseStoreVal)
		mc.useReg(asm.RSP, 8, c, sim.UseAddr)

	case asm.OpPop, asm.OpRet:
		mc.useReg(asm.RSP, 8, c, sim.UseAddr)

	case asm.OpCall:
		if in.ext != rt.FuncNone {
			// An external call's injectable destination is RSP, but the
			// call never actually writes it: the "new" RSP def is the old
			// value passing through. Record that identity read, or the old
			// def looks dead while its faults persist to a later pop/ret.
			mc.useReg(asm.RSP, 8, c, sim.UseArith)
			mc.traceRuntimeArgs(in.ext, c)
			return
		}
		mc.useReg(asm.RSP, 8, c, sim.UseAddr)
	}
}

// traceRuntimeArgs records the argument-register reads of a runtime
// call (the x86-ish calling convention the backend emits).
func (mc *Machine) traceRuntimeArgs(f rt.Func, c int32) {
	switch f {
	case rt.FuncPrintI64, rt.FuncPrintChar:
		mc.useReg(asm.RDI, 8, c, sim.UseOutput)
	case rt.FuncPrintF64:
		mc.useReg(asm.XMM0, 8, c, sim.UseOutput)
	case rt.FuncCheckFail:
	case rt.FuncPow:
		mc.useReg(asm.XMM0, 8, c, sim.UseCallArg)
		mc.useReg(asm.XMM1, 8, c, sim.UseCallArg)
	default:
		mc.useReg(asm.XMM0, 8, c, sim.UseCallArg)
	}
}
