// Package machine is the architectural simulator for the assembly of
// package asm, and the assembly-level fault injector of the study (the
// counterpart of PIN-based injection in the paper). It executes the
// lowered program against the same memory layout as the IR interpreter,
// so fault-free runs of the two layers produce identical output.
package machine

import (
	"fmt"

	"flowery/internal/asm"
	"flowery/internal/ir"
	"flowery/internal/rt"
)

// Code addresses: instruction i lives at CodeBase + 4*i. The region is
// far outside the data address space, so data accesses to code addresses
// trap, and corrupted return addresses are detectable.
const (
	CodeBase  = 0x4000_0000
	instrSlot = 4
)

// mop is a pre-resolved operand (global symbols folded into imm).
type mop struct {
	kind  asm.OperandKind
	reg   asm.Reg
	imm   int64
	index asm.Reg
	scale int64
}

// minstr is a linked instruction.
type minstr struct {
	op      asm.Op
	size    uint8
	cond    asm.Cond
	dst     mop
	src     mop
	target  int32   // jump target / call entry (code index)
	ext     rt.Func // non-zero for calls to runtime functions
	origin  asm.Origin
	checker bool
	hasDest bool
	destReg asm.Reg
	bits    int // injectable width
}

// link flattens the program into one code array with resolved labels,
// call targets, and global addresses. The returned srcInfo maps each code
// index to a human-readable "func: instr" string for diagnostics.
func link(m *ir.Module, prog *asm.Program) ([]minstr, map[string]int32, []string, error) {
	if err := prog.Validate(); err != nil {
		return nil, nil, nil, err
	}
	// First pass: compute code index of every function entry and label.
	entry := make(map[string]int32)
	type labelKey struct {
		fn    string
		label string
	}
	labels := make(map[labelKey]int32)
	idx := int32(0)
	for _, f := range prog.Funcs {
		entry[f.Name] = idx
		for _, in := range f.Instrs {
			if in.Op == asm.OpLabel {
				labels[labelKey{f.Name, in.Label}] = idx
				continue
			}
			idx++
		}
	}
	codeLen := idx

	resolveOp := func(o asm.Operand) (mop, error) {
		r := mop{kind: o.Kind, reg: o.Reg, imm: o.Imm, index: o.Index, scale: o.Scale}
		if o.Sym != "" {
			g := m.Global(o.Sym)
			if g == nil {
				return r, fmt.Errorf("machine: unknown global %q", o.Sym)
			}
			if g.Addr == 0 {
				return r, fmt.Errorf("machine: global %q has no address", o.Sym)
			}
			r.imm += g.Addr
		}
		return r, nil
	}

	code := make([]minstr, 0, codeLen)
	srcInfo := make([]string, 0, codeLen)
	for _, f := range prog.Funcs {
		for _, in := range f.Instrs {
			if in.Op == asm.OpLabel {
				continue
			}
			srcInfo = append(srcInfo, f.Name+": "+in.String())
			mi := minstr{
				op:      in.Op,
				size:    in.Size,
				cond:    in.Cond,
				origin:  in.Origin,
				checker: in.Checker,
				bits:    in.DestBits(),
			}
			mi.destReg, mi.hasDest = in.HasDest()
			var err error
			if mi.dst, err = resolveOp(in.Dst); err != nil {
				return nil, nil, nil, err
			}
			if mi.src, err = resolveOp(in.Src); err != nil {
				return nil, nil, nil, err
			}
			switch in.Op {
			case asm.OpJmp, asm.OpJcc:
				li, ok := f.LabelIndex(in.Target)
				if !ok {
					return nil, nil, nil, fmt.Errorf("machine: %s: unresolved label %q", f.Name, in.Target)
				}
				// LabelIndex gives the instruction-list position; we need
				// the code index, which the labels map has.
				_ = li
				mi.target = labels[labelKey{f.Name, in.Target}]
			case asm.OpCall:
				if prog.Externals[in.Target] {
					ext, ok := rt.ByName[in.Target]
					if !ok {
						return nil, nil, nil, fmt.Errorf("machine: external %q is not a runtime function", in.Target)
					}
					mi.ext = ext
				} else {
					mi.target = entry[in.Target]
				}
			}
			code = append(code, mi)
		}
	}
	return code, entry, srcInfo, nil
}
