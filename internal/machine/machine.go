package machine

import (
	"fmt"
	"math"
	"time"

	"flowery/internal/asm"
	"flowery/internal/ir"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

// Machine executes one linked program. Like the IR interpreter, a
// Machine is cheap to Run repeatedly (incremental memory reset) and not
// safe for concurrent use.
type Machine struct {
	mod     *ir.Module
	code    []minstr
	entry   map[string]int32
	srcInfo []string
	mem     []byte
	dataEnd int64

	// Run state.
	regs      [asm.NumRegs]uint64
	pc        int32
	out       []byte
	steps     int64
	maxSteps  int64
	inject    int64
	injectAt  int64
	injectBit int
	injected  bool
	injStatic int32
	injOrigin asm.Origin
	injCheck  bool
	minTouch  int64

	// Snapshot state (see snapshot.go). snapCapture is only set during
	// BuildSnapshots' golden run; dataLo/dataHi track the dirty region of
	// the data segment during that run so checkpoints copy kilobytes, not
	// the full memory image.
	snapCapture  bool
	snapInterval int64
	nextSnapAt   int64
	dataLo       int64
	dataHi       int64
	snaps        []mSnapshot
	goldenOut    []byte

	// Optional execution trace: a ring buffer of recent pcs.
	traceRing []int32
	traceHead int

	// Def-use tracing (see trace.go). tr is only set during RunTraced;
	// regDef/regUnder/regDefBits track the live def handles layered in
	// each register.
	tr         sim.Tracer
	regDef     [asm.NumRegs]int64
	regUnder   [asm.NumRegs]int64
	regDefBits [asm.NumRegs]uint8

	// Predecoded fast core (see predecode.go / fastexec.go). uops is the
	// micro-op array parallel to code, built on the first uninstrumented
	// run; refCore pins a run to the reference loop. flagKind and the
	// flag operands are the lazy RFLAGS state — regs[RFLAGS] is stale
	// while flagKind is lazy and materializeFlags rebuilds it on demand.
	uops     []uop
	refCore  bool
	flagKind flagKind
	flagA    uint64
	flagB    uint64
	flagSize uint8

	// Run-boundary telemetry (see telemetry.EngineMetrics). met is the
	// cached handle bundle for metReg; slowSteps counts fast-core
	// instructions that fell back to the generic slowStep this run.
	met       *telemetry.EngineMetrics
	metReg    *telemetry.Registry
	slowSteps int64
}

// setMetrics rebinds the run-boundary flush target. Handles are
// resolved only when the registry changes, so steady-state runs pay a
// single pointer compare here.
func (mc *Machine) setMetrics(r *telemetry.Registry) {
	if r != mc.metReg {
		mc.metReg = r
		mc.met = telemetry.NewEngineMetrics(r, "asm")
	}
}

// EnableTrace records the last n executed instruction indices; DumpTrace
// renders them. Tracing slows execution and is meant for debugging.
func (mc *Machine) EnableTrace(n int) {
	mc.traceRing = make([]int32, n)
	for i := range mc.traceRing {
		mc.traceRing[i] = -1
	}
}

// DumpTrace returns the most recent executed instructions, oldest first.
func (mc *Machine) DumpTrace() []string {
	if mc.traceRing == nil {
		return nil
	}
	var out []string
	n := len(mc.traceRing)
	for i := 0; i < n; i++ {
		pc := mc.traceRing[(mc.traceHead+i)%n]
		if pc >= 0 {
			out = append(out, fmt.Sprintf("%5d  %s", pc, mc.PCInfo(pc)))
		}
	}
	return out
}

type trapPanic struct{ trap sim.Trap }

type detectedPanic struct{}

// New links the program against the module's memory image. The module
// must be the one the program was lowered from (the backend may have
// added a constant pool to it). Global addresses are assigned here if
// they have not been already.
func New(m *ir.Module, prog *asm.Program) (*Machine, error) {
	end := m.AssignAddresses()
	if end > ir.StackLimit {
		return nil, fmt.Errorf("machine: globals overflow the data segment")
	}
	code, entry, srcInfo, err := link(m, prog)
	if err != nil {
		return nil, err
	}
	if _, ok := entry["main"]; !ok {
		return nil, fmt.Errorf("machine: program has no main")
	}
	return &Machine{
		mod:      m,
		code:     code,
		entry:    entry,
		srcInfo:  srcInfo,
		mem:      make([]byte, ir.MemSize),
		dataEnd:  end,
		minTouch: ir.StackTop,
	}, nil
}

// PCInfo describes the instruction at a code index (for diagnostics and
// the root-cause demo tooling).
func (mc *Machine) PCInfo(pc int32) string {
	if pc < 0 || int(pc) >= len(mc.srcInfo) {
		return fmt.Sprintf("pc %d out of range", pc)
	}
	return mc.srcInfo[pc]
}

// LastPC returns the program counter after the most recent Run (the trap
// location for runs that trapped).
func (mc *Machine) LastPC() int32 { return mc.pc }

// sentinelRA is the return address pushed below main; returning to it
// halts the program.
func (mc *Machine) sentinelRA() uint64 {
	return uint64(CodeBase + instrSlot*int64(len(mc.code)))
}

// Run executes main once, optionally injecting a fault. It implements
// sim.Engine.
func (mc *Machine) Run(fault sim.Fault, opts sim.Options) sim.Result {
	mc.reset()
	mc.maxSteps = opts.MaxSteps
	if mc.maxSteps <= 0 {
		mc.maxSteps = sim.DefaultMaxSteps
	}
	mc.injectAt = fault.TargetIndex
	mc.injectBit = fault.Bit
	mc.refCore = opts.Reference
	mc.setMetrics(opts.Metrics)
	return mc.finish()
}

// finish executes from the current machine state to completion and
// packages the outcome (shared by Run and the snapshot-restored RunFrom).
func (mc *Machine) finish() sim.Result {
	var t0 time.Time
	if mc.met != nil {
		t0 = time.Now()
	}
	startSteps := mc.steps
	mc.slowSteps = 0
	usedFast := false
	res := sim.Result{Status: sim.StatusOK}
	func() {
		defer func() {
			switch p := recover().(type) {
			case nil:
			case trapPanic:
				res.Status = sim.StatusTrap
				res.Trap = p.trap
			case detectedPanic:
				res.Status = sim.StatusDetected
			default:
				panic(p)
			}
		}()
		if mc.fastOK() {
			usedFast = true
			if mc.uops == nil {
				mc.predecode()
			}
			mc.execFast()
		} else {
			mc.exec()
		}
	}()

	res.Output = append([]byte(nil), mc.out...)
	res.RetVal = int64(mc.regs[asm.RAX])
	res.DynInstrs = mc.steps
	res.InjectableInstrs = mc.inject
	res.Injected = mc.injected
	res.InjectedStatic = mc.injStatic
	res.InjectedOrigin = mc.injOrigin
	res.InjectedChecker = mc.injCheck
	if mc.met != nil {
		mc.met.FlushRun(usedFast, mc.steps-startSteps, mc.slowSteps, time.Since(t0))
	}
	return res
}

func (mc *Machine) reset() {
	zero(mc.mem[ir.GlobalBase:mc.dataEnd])
	for _, g := range mc.mod.Globals {
		copy(mc.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	if mc.minTouch < ir.StackTop {
		zero(mc.mem[mc.minTouch:ir.StackTop])
	}
	mc.minTouch = ir.StackTop
	for i := range mc.regs {
		mc.regs[i] = 0
	}
	mc.out = mc.out[:0]
	mc.steps = 0
	mc.inject = 0
	mc.injected = false
	mc.injStatic = -1
	mc.injOrigin = asm.OriginNone
	mc.injCheck = false
	mc.flagKind = flagsConcrete
	if mc.snapCapture {
		mc.snaps = mc.snaps[:0]
		mc.nextSnapAt = mc.snapInterval
		mc.dataLo, mc.dataHi = mc.dataEnd, ir.GlobalBase
	}

	// Set up the initial stack: rsp just below the sentinel return
	// address.
	mc.regs[asm.RSP] = uint64(ir.StackTop)
	mc.push(mc.sentinelRA())
	mc.pc = mc.entry["main"]
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func (mc *Machine) trap(t sim.Trap) { panic(trapPanic{t}) }

func (mc *Machine) mapped(addr, size int64) bool {
	if addr >= ir.GlobalBase && addr+size <= mc.dataEnd {
		return true
	}
	return addr >= ir.StackLimit && addr+size <= ir.StackTop
}

func (mc *Machine) loadMem(addr int64, size uint8) uint64 {
	if !mc.mapped(addr, int64(size)) {
		mc.trap(sim.TrapBadAddress)
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(mc.mem[addr+int64(i)]) << (8 * i)
	}
	return v
}

func (mc *Machine) storeMem(addr int64, size uint8, v uint64) {
	if !mc.mapped(addr, int64(size)) {
		mc.trap(sim.TrapBadAddress)
	}
	for i := uint8(0); i < size; i++ {
		mc.mem[addr+int64(i)] = byte(v >> (8 * i))
	}
	if addr >= ir.StackLimit {
		if addr < mc.minTouch {
			mc.minTouch = addr
		}
	} else if mc.snapCapture {
		// Data-segment dirty range, tracked only while building
		// checkpoints (the segment below StackLimit is globals only).
		if addr < mc.dataLo {
			mc.dataLo = addr
		}
		if end := addr + int64(size); end > mc.dataHi {
			mc.dataHi = end
		}
	}
}

func (mc *Machine) push(v uint64) {
	sp := int64(mc.regs[asm.RSP]) - 8
	mc.regs[asm.RSP] = uint64(sp)
	mc.storeMem(sp, 8, v)
}

func (mc *Machine) pop() uint64 {
	sp := int64(mc.regs[asm.RSP])
	v := mc.loadMem(sp, 8)
	mc.regs[asm.RSP] = uint64(sp + 8)
	return v
}

// effAddr computes the effective address of a memory operand.
func (mc *Machine) effAddr(o *mop) int64 {
	addr := o.imm
	if o.reg != asm.RegNone {
		addr += int64(mc.regs[o.reg])
	}
	if o.index != asm.RegNone {
		addr += int64(mc.regs[o.index]) * o.scale
	}
	return addr
}

// readOp reads a source operand at the given width (zero-extended into
// the return value; callers sign-extend as needed).
func (mc *Machine) readOp(o *mop, size uint8) uint64 {
	switch o.kind {
	case asm.OperandReg:
		return truncVal(mc.regs[o.reg], size)
	case asm.OperandImm:
		return truncVal(uint64(o.imm), size)
	case asm.OperandMem:
		return mc.loadMem(mc.effAddr(o), size)
	default:
		panic("machine: bad operand")
	}
}

func truncVal(v uint64, size uint8) uint64 {
	switch size {
	case 1:
		return v & 0xff
	case 4:
		return v & 0xffff_ffff
	default:
		return v
	}
}

// writeReg writes v into r with x86 width semantics: 64-bit writes
// replace, 32-bit writes zero-extend, 8-bit writes merge the low byte.
func (mc *Machine) writeReg(r asm.Reg, size uint8, v uint64) {
	switch size {
	case 8:
		mc.regs[r] = v
	case 4:
		mc.regs[r] = v & 0xffff_ffff
	default:
		mc.regs[r] = (mc.regs[r] &^ 0xff) | (v & 0xff)
	}
}

// writeDst writes to a register or memory destination.
func (mc *Machine) writeDst(o *mop, size uint8, v uint64) {
	if o.kind == asm.OperandReg {
		mc.writeReg(o.reg, size, v)
		return
	}
	mc.storeMem(mc.effAddr(o), size, v)
}

func signExtend(v uint64, size uint8) int64 {
	switch size {
	case 1:
		return int64(int8(v))
	case 4:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// setSubFlags computes RFLAGS after a-b at the given width.
func setSubFlags(a, b uint64, size uint8) uint64 {
	w := uint(size) * 8
	mask := ^uint64(0) >> (64 - w)
	a &= mask
	b &= mask
	r := (a - b) & mask
	sign := uint64(1) << (w - 1)
	var f uint64
	if r == 0 {
		f |= asm.FlagZF
	}
	if r&sign != 0 {
		f |= asm.FlagSF
	}
	if ((a^b)&(a^r))&sign != 0 {
		f |= asm.FlagOF
	}
	if a < b {
		f |= asm.FlagCF
	}
	f |= asm.PFTable[uint8(r)]
	return f
}

// setLogicFlags computes RFLAGS after a logic op (test): OF=CF=0.
func setLogicFlags(r uint64, size uint8) uint64 {
	w := uint(size) * 8
	mask := ^uint64(0) >> (64 - w)
	r &= mask
	sign := uint64(1) << (w - 1)
	var f uint64
	if r == 0 {
		f |= asm.FlagZF
	}
	if r&sign != 0 {
		f |= asm.FlagSF
	}
	f |= asm.PFTable[uint8(r)]
	return f
}

// ucomisdFlags computes RFLAGS for an unordered double compare.
func ucomisdFlags(a, b float64) uint64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return asm.FlagZF | asm.FlagPF | asm.FlagCF
	case a > b:
		return 0
	case a < b:
		return asm.FlagCF
	default:
		return asm.FlagZF
	}
}

// maybeInject applies the pending fault to the instruction's destination
// register after it executed. Returns for ret-specials are handled
// inline in exec.
func (mc *Machine) maybeInject(in *minstr) {
	mc.inject++
	if mc.tr != nil {
		mc.traceDef(in)
	}
	if mc.inject != mc.injectAt {
		return
	}
	mc.injected = true
	mc.injStatic = mc.pc
	mc.injOrigin = in.origin
	mc.injCheck = in.checker
	r := in.destReg
	if r == asm.RFLAGS {
		// Under the fast core the flag state may still be lazy; the flip
		// must land on architectural flags, so materialize first (a no-op
		// on the reference core, where flags are always concrete).
		mc.materializeFlags()
		flag := asm.DefinedFlags[mc.injectBit%len(asm.DefinedFlags)]
		mc.regs[asm.RFLAGS] ^= flag
		return
	}
	w := in.bits
	if w <= 0 {
		w = 64
	}
	mc.regs[r] ^= 1 << (mc.injectBit % w)
}
