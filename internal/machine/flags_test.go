package machine

import (
	"math"
	"testing"
	"testing/quick"

	"flowery/internal/asm"
)

// TestSetSubFlagsAgainstReference checks the cmp flag computation against
// a direct Go reference over random operand pairs at every width.
func TestSetSubFlagsAgainstReference(t *testing.T) {
	check := func(a, b uint64) bool {
		for _, size := range []uint8{1, 4, 8} {
			f := setSubFlags(a, b, size)
			var zf, sf, cf, of bool
			switch size {
			case 1:
				x, y := int8(a), int8(b)
				r := x - y
				zf = r == 0
				sf = r < 0
				of = (x >= 0 && y < 0 && r < 0) || (x < 0 && y >= 0 && r >= 0)
				cf = uint8(a) < uint8(b)
			case 4:
				x, y := int32(a), int32(b)
				r := x - y
				zf = r == 0
				sf = r < 0
				of = (x >= 0 && y < 0 && r < 0) || (x < 0 && y >= 0 && r >= 0)
				cf = uint32(a) < uint32(b)
			case 8:
				x, y := int64(a), int64(b)
				r := x - y
				zf = r == 0
				sf = r < 0
				of = (x >= 0 && y < 0 && r < 0) || (x < 0 && y >= 0 && r >= 0)
				cf = a < b
			}
			if (f&asm.FlagZF != 0) != zf || (f&asm.FlagSF != 0) != sf ||
				(f&asm.FlagCF != 0) != cf || (f&asm.FlagOF != 0) != of {
				t.Logf("size %d: a=%#x b=%#x flags=%#x want zf=%v sf=%v cf=%v of=%v",
					size, a, b, f, zf, sf, cf, of)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Signed condition codes after cmp must order operands exactly like Go's
// comparison operators — the property the fused compare-branch relies on.
func TestCondAfterCmpMatchesComparison(t *testing.T) {
	check := func(a, b int64) bool {
		f := setSubFlags(uint64(a), uint64(b), 8)
		return asm.CondL.Eval(f) == (a < b) &&
			asm.CondLE.Eval(f) == (a <= b) &&
			asm.CondG.Eval(f) == (a > b) &&
			asm.CondGE.Eval(f) == (a >= b) &&
			asm.CondE.Eval(f) == (a == b) &&
			asm.CondNE.Eval(f) == (a != b) &&
			asm.CondB.Eval(f) == (uint64(a) < uint64(b)) &&
			asm.CondAE.Eval(f) == (uint64(a) >= uint64(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUcomisdFlags(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b       float64
		zf, pf, cf bool
	}{
		{1, 2, false, false, true},
		{2, 1, false, false, false},
		{1, 1, true, false, false},
		{nan, 1, true, true, true},
		{1, nan, true, true, true},
		{nan, nan, true, true, true},
		{math.Inf(1), 1, false, false, false},
		{math.Inf(-1), 1, false, false, true},
	}
	for _, c := range cases {
		f := ucomisdFlags(c.a, c.b)
		if (f&asm.FlagZF != 0) != c.zf || (f&asm.FlagPF != 0) != c.pf || (f&asm.FlagCF != 0) != c.cf {
			t.Errorf("ucomisd(%v, %v) = %#x, want zf=%v pf=%v cf=%v", c.a, c.b, f, c.zf, c.pf, c.cf)
		}
	}
}

func TestLogicFlags(t *testing.T) {
	// test al, al with zero → ZF, even parity.
	f := setLogicFlags(0, 1)
	if f&asm.FlagZF == 0 || f&asm.FlagPF == 0 || f&asm.FlagCF != 0 || f&asm.FlagOF != 0 {
		t.Errorf("logic flags of 0: %#x", f)
	}
	// 0b1000_0000 at width 1 → SF, single bit (odd parity → PF clear).
	f = setLogicFlags(0x80, 1)
	if f&asm.FlagSF == 0 || f&asm.FlagPF != 0 {
		t.Errorf("logic flags of 0x80: %#x", f)
	}
}
