package machine

import (
	"bytes"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/dup"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// buildMachines links n machines against one lowering of m (Lower may
// only run once per module).
func buildMachines(t *testing.T, m *ir.Module, n int) []*Machine {
	t.Helper()
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Machine, n)
	for i := range out {
		mc, err := New(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = mc
	}
	return out
}

func sameResult(t *testing.T, tag string, want, got sim.Result) {
	t.Helper()
	if want.Status != got.Status || want.Trap != got.Trap ||
		want.RetVal != got.RetVal ||
		want.DynInstrs != got.DynInstrs ||
		want.InjectableInstrs != got.InjectableInstrs ||
		want.Injected != got.Injected ||
		want.InjectedStatic != got.InjectedStatic ||
		want.InjectedOrigin != got.InjectedOrigin ||
		want.InjectedChecker != got.InjectedChecker {
		t.Fatalf("%s: result diverged:\nscratch %+v\nrestore %+v", tag, want, got)
	}
	if !bytes.Equal(want.Output, got.Output) {
		t.Fatalf("%s: output diverged:\nscratch %q\nrestore %q", tag, want.Output, got.Output)
	}
}

// TestSnapshotEquivalence: for faults sampled across the injectable
// range, a snapshot-restored run must be bit-identical to a from-scratch
// run — on raw and on duplication-protected programs (the latter
// exercises the detected path).
func TestSnapshotEquivalence(t *testing.T) {
	for _, name := range []string{"bfs", "quicksort", "fft2"} {
		for _, protect := range []bool{false, true} {
			bm, ok := bench.ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %q", name)
			}
			m := bm.Build()
			if protect {
				if err := dup.ApplyFull(m); err != nil {
					t.Fatal(err)
				}
			}
			ms := buildMachines(t, m, 2)
			scratch, snap := ms[0], ms[1]

			golden := snap.BuildSnapshots(977, sim.Options{})
			if golden.Status != sim.StatusOK {
				t.Fatalf("%s: golden failed: %v", name, golden.Status)
			}
			if len(snap.snaps) == 0 {
				t.Fatalf("%s: no snapshots captured", name)
			}

			inj := golden.InjectableInstrs
			var restoredSome bool
			for i := int64(0); i < 60; i++ {
				fault := sim.Fault{TargetIndex: 1 + i*inj/60, Bit: int(i * 7 % 64)}
				want := scratch.Run(fault, sim.Options{})
				got, skipped := snap.RunFrom(fault, sim.Options{})
				sameResult(t, name, want, got)
				if skipped > 0 {
					restoredSome = true
					if skipped >= want.DynInstrs {
						t.Fatalf("%s: skipped %d of a %d-instr run", name, skipped, want.DynInstrs)
					}
				}
			}
			if !restoredSome {
				t.Fatalf("%s: no run used a snapshot", name)
			}
		}
	}
}

// TestSnapshotFallbacks: golden faults and targets before the first
// checkpoint run from scratch and still agree with Run.
func TestSnapshotFallbacks(t *testing.T) {
	bm, _ := bench.ByName("bfs")
	m := bm.Build()
	ms := buildMachines(t, m, 2)
	scratch, snap := ms[0], ms[1]
	golden := snap.BuildSnapshots(2048, sim.Options{})

	res, skipped := snap.RunFrom(sim.Fault{}, sim.Options{})
	if skipped != 0 {
		t.Fatalf("golden RunFrom used a snapshot (skipped %d)", skipped)
	}
	sameResult(t, "golden", golden, res)

	early := sim.Fault{TargetIndex: 1, Bit: 3}
	want := scratch.Run(early, sim.Options{})
	got, skipped := snap.RunFrom(early, sim.Options{})
	if skipped != 0 {
		t.Fatalf("target before first checkpoint used a snapshot")
	}
	sameResult(t, "early", want, got)

	// Without snapshots RunFrom degrades to Run entirely.
	snap.DropSnapshots()
	late := sim.Fault{TargetIndex: golden.InjectableInstrs - 1, Bit: 5}
	want = scratch.Run(late, sim.Options{})
	got, skipped = snap.RunFrom(late, sim.Options{})
	if skipped != 0 {
		t.Fatalf("dropped snapshots still used")
	}
	sameResult(t, "late", want, got)
}
