package machine

import (
	"testing"
	"testing/quick"

	"flowery/internal/asm"
)

// TestWriteRegWidthSemantics pins the x86 register-write rules: 64-bit
// replaces, 32-bit zero-extends, 8-bit merges the low byte.
func TestWriteRegWidthSemantics(t *testing.T) {
	var mc Machine
	check := func(old, v uint64) bool {
		mc.regs[asm.RAX] = old
		mc.writeReg(asm.RAX, 8, v)
		if mc.regs[asm.RAX] != v {
			return false
		}
		mc.regs[asm.RAX] = old
		mc.writeReg(asm.RAX, 4, v)
		if mc.regs[asm.RAX] != v&0xffff_ffff {
			return false
		}
		mc.regs[asm.RAX] = old
		mc.writeReg(asm.RAX, 1, v)
		return mc.regs[asm.RAX] == (old&^uint64(0xff))|(v&0xff)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncSignExtendRoundTrip: sign-extending a truncated value must
// preserve the low bits and produce a canonical two's-complement value.
func TestTruncSignExtendRoundTrip(t *testing.T) {
	check := func(v uint64) bool {
		for _, size := range []uint8{1, 4, 8} {
			tr := truncVal(v, size)
			se := signExtend(tr, size)
			// Low bits preserved.
			if truncVal(uint64(se), size) != tr {
				return false
			}
			// Sign-extension is canonical: re-extending is a no-op.
			if signExtend(uint64(se), size) != se {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
