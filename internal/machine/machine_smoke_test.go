package machine

import (
	"testing"

	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// buildMixedModule exercises loops, calls, floats, comparisons, and
// memory in one program whose output both layers must reproduce.
func buildMixedModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("mixed")
	data := m.NewGlobalI64("data", []int64{5, 3, 8, 1, 9, 2, 7, 4})

	// square(x) = x*x
	sq := m.NewFunction("square", ir.I64, ir.I64)
	{
		b := ir.NewBuilder(sq)
		x := sq.Params[0]
		b.Ret(b.Mul(x, x))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	sum := b.AllocVar(ir.I64)
	fsum := b.AllocVar(ir.F64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.Store(ir.ConstFloat(0), fsum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 8), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		v := b.LoadElem(ir.I64, data, i)
		sv := b.Call(sq, v)
		big := b.ICmp(ir.PredSGT, sv, ir.ConstInt(ir.I64, 20))
		b.If(big, func() {
			cur := b.Load(ir.I64, sum)
			b.Store(b.Add(cur, sv), sum)
		}, func() {
			cur := b.Load(ir.I64, sum)
			b.Store(b.Sub(cur, sv), sum)
		})
		fv := b.SIToFP(v)
		r := b.CallNamed("sqrt", fv)
		cf := b.Load(ir.F64, fsum)
		b.Store(b.FAdd(cf, r), fsum)
	})
	s := b.Load(ir.I64, sum)
	b.PrintI64(s)
	fs := b.Load(ir.F64, fsum)
	b.PrintF64(fs)
	b.Ret(s)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestMachineMatchesInterp(t *testing.T) {
	m := buildMixedModule(t)
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	ip := interp.New(m)

	ri := ip.Run(sim.Fault{}, sim.Options{})
	rm := mc.Run(sim.Fault{}, sim.Options{})
	if ri.Status != sim.StatusOK {
		t.Fatalf("interp status %v (%v)", ri.Status, ri.Trap)
	}
	if rm.Status != sim.StatusOK {
		t.Fatalf("machine status %v (%v)", rm.Status, rm.Trap)
	}
	if string(ri.Output) != string(rm.Output) {
		t.Fatalf("outputs differ:\ninterp:  %q\nmachine: %q", ri.Output, rm.Output)
	}
	if ri.RetVal != rm.RetVal {
		t.Fatalf("return values differ: %d vs %d", ri.RetVal, rm.RetVal)
	}
	if rm.DynInstrs <= ri.DynInstrs {
		t.Errorf("assembly should execute more instructions than IR: asm %d vs ir %d", rm.DynInstrs, ri.DynInstrs)
	}
}

func TestMachineDeterministic(t *testing.T) {
	m := buildMixedModule(t)
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	r1 := mc.Run(sim.Fault{}, sim.Options{})
	r2 := mc.Run(sim.Fault{}, sim.Options{})
	if string(r1.Output) != string(r2.Output) || r1.DynInstrs != r2.DynInstrs {
		t.Fatalf("runs differ: %+v vs %+v", r1, r2)
	}
}

func TestMachineInjectionFires(t *testing.T) {
	m := buildMixedModule(t)
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	mc, err := New(m, prog)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})

	changed := 0
	for idx := int64(1); idx <= golden.InjectableInstrs; idx += 7 {
		res := mc.Run(sim.Fault{TargetIndex: idx, Bit: int(idx) % 64}, sim.Options{})
		if !res.Injected {
			t.Fatalf("fault at %d did not fire", idx)
		}
		if res.Status != sim.StatusOK || string(res.Output) != string(golden.Output) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no machine-level injection produced a visible change")
	}
}
