package reclog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// genRecords builds a deterministic, strictly-increasing record stream.
func genRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	run := int64(-1)
	for i := range recs {
		run += 1 + int64(rng.Intn(5))
		recs[i] = Record{
			Run:     run,
			Outcome: uint8(rng.Intn(4)),
			Origin:  uint8(rng.Intn(6)),
			Target:  int64(rng.Intn(1 << 20)),
			Bit:     uint8(rng.Intn(64)),
		}
	}
	return recs
}

func encode(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write(%+v): %v", r, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultBlockRecords, DefaultBlockRecords + 1, 5000} {
		recs := genRecords(n, int64(n)+1)
		got, err := ReadAll(bytes.NewReader(encode(t, recs)))
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("n=%d: got %d records", n, len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("n=%d: record %d: got %+v want %+v", n, i, got[i], recs[i])
			}
		}
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Record{Run: -1}); err == nil {
		t.Fatal("negative run accepted")
	}
	if err := w.Write(Record{Run: 3, Target: -2}); err == nil {
		t.Fatal("negative target accepted")
	}
	if err := w.Write(Record{Run: 3}); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if err := w.Write(Record{Run: 3}); err == nil {
		t.Fatal("non-increasing run accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	enc := encode(t, nil)
	if string(enc) != Magic {
		t.Fatalf("empty stream = %q, want bare magic", enc)
	}
	recs, err := ReadAll(bytes.NewReader(enc))
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadAll(empty) = %v, %v", recs, err)
	}
}

func TestTruncationErrors(t *testing.T) {
	enc := encode(t, genRecords(2000, 42))
	// Every proper prefix must either decode a prefix of the records
	// cleanly (only at block boundaries) or report corruption — never
	// panic, never invent records.
	for cut := 0; cut < len(enc); cut += 13 {
		recs, err := ReadAll(bytes.NewReader(enc[:cut]))
		if err == nil && cut < len(enc) {
			// A clean decode of a strict prefix is only legal at a block
			// boundary; verify the records are a true prefix.
			full, _ := ReadAll(bytes.NewReader(enc))
			for i := range recs {
				if recs[i] != full[i] {
					t.Fatalf("cut=%d: record %d diverged", cut, i)
				}
			}
			continue
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	recs := genRecords(300, 7)
	enc := encode(t, recs)
	flips := 0
	for pos := 4; pos < len(enc); pos += 7 {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0x40
		got, err := ReadAll(bytes.NewReader(mut))
		if err == nil {
			// A flip the CRC caught would error; a flip in a varint byte
			// can only survive if the whole block still checks out, which
			// the CRC makes impossible — so surviving means the flip was
			// a no-op only if the decode equals the original.
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("pos=%d: silent misparse at record %d", pos, i)
				}
			}
			continue
		}
		flips++
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("pos=%d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
	if flips == 0 {
		t.Fatal("no corruption ever detected")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ReadAll(bytes.NewReader([]byte("FR"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short magic: %v", err)
	}
}

// TestCompactness pins the encoding's headline property: a realistic
// record costs single-digit bytes.
func TestCompactness(t *testing.T) {
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{Run: int64(i), Outcome: uint8(i % 4), Origin: uint8(i % 6), Target: int64(i%100000 + 1), Bit: uint8(i % 64)}
	}
	enc := encode(t, recs)
	perRun := float64(len(enc)) / float64(len(recs))
	if perRun > 8 {
		t.Fatalf("%.2f bytes/record, want <= 8", perRun)
	}
}

// blockBoundaries walks the frame structure — magic, then per block a
// marker byte, two uvarints (count, payload size), the payload, and a
// 4-byte CRC — returning every offset at which a stream may cleanly end.
func blockBoundaries(t *testing.T, enc []byte) []int {
	t.Helper()
	off := len(Magic)
	bounds := []int{off}
	for off < len(enc) {
		if enc[off] != blockMarker {
			t.Fatalf("no block marker at offset %d", off)
		}
		off++
		for i := 0; i < 2; i++ { // count, size uvarints
			v, n := binary.Uvarint(enc[off:])
			if n <= 0 {
				t.Fatalf("bad frame uvarint at offset %d", off)
			}
			off += n
			if i == 1 {
				off += int(v) // payload
			}
		}
		off += 4 // crc
		if off > len(enc) {
			t.Fatalf("frame overruns the stream (offset %d of %d)", off, len(enc))
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestTruncatedFinalBlock pins the reader's end-of-stream contract
// byte by byte: a stream cut exactly at a block boundary decodes its
// complete blocks and ends with a clean io.EOF, while a cut anywhere
// inside the final (partial) block reports ErrCorrupt — after first
// yielding every record of the preceding complete blocks intact. The
// distinction is what lets consumers of an interrupted campaign log
// trust everything before the tear.
func TestTruncatedFinalBlock(t *testing.T) {
	recs := genRecords(2*DefaultBlockRecords+17, 99)
	enc := encode(t, recs)
	bounds := blockBoundaries(t, enc)
	if len(bounds) < 4 { // magic boundary + 3 blocks
		t.Fatalf("need >= 3 blocks, got boundaries %v", bounds)
	}

	// Records per complete-block prefix, for cross-checking.
	perBoundary := make([][]Record, len(bounds))
	for i, b := range bounds {
		got, err := ReadAll(bytes.NewReader(enc[:b]))
		if err != nil {
			t.Fatalf("cut at block boundary %d (offset %d): %v — want clean EOF", i, b, err)
		}
		perBoundary[i] = got
	}
	if n := len(perBoundary[len(bounds)-1]); n != len(recs) {
		t.Fatalf("full stream decoded %d records, want %d", n, len(recs))
	}
	if n := len(perBoundary[0]); n != 0 {
		t.Fatalf("magic-only stream decoded %d records, want 0", n)
	}

	// Every cut strictly inside the final block: ErrCorrupt, with the
	// complete blocks' records intact.
	last, end := bounds[len(bounds)-2], bounds[len(bounds)-1]
	want := perBoundary[len(bounds)-2]
	for cut := last + 1; cut < end; cut++ {
		got, err := ReadAll(bytes.NewReader(enc[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d (inside final block %d..%d): err=%v, want ErrCorrupt", cut, last, end, err)
		}
		if len(got) != len(want) {
			t.Fatalf("cut=%d: decoded %d records before the tear, want %d", cut, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut=%d: record %d diverged after truncation", cut, i)
			}
		}
	}

	// Streaming form of the same contract: Next yields the complete
	// blocks then exactly one ErrCorrupt, never io.EOF, on a torn tail.
	r := NewReader(bytes.NewReader(enc[:last+3]))
	for i := 0; i < len(want); i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d before the tear: %v", i, err)
		}
	}
	if _, err := r.Next(); errors.Is(err, io.EOF) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail yielded %v, want ErrCorrupt (not EOF)", err)
	}
}
