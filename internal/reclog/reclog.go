// Package reclog is a compact framed binary log for per-run campaign
// records, in the spirit of zed's ZNG encoding: fixed-size facts are
// varint-packed into blocks, every block carries a CRC over its payload,
// and both ends stream — the writer never buffers more than one block,
// the reader never more than one block, so a multi-million-run campaign
// costs O(block) memory to encode, ship, and aggregate.
//
// The format is the sharded campaign executor's wire representation
// (internal/shard ships one stream per shard result) and the on-disk
// campaign artifact behind `flowery inject -reclog`. It replaces per-run
// JSON, which at campaign scale dominates the byte budget: a record is
// ~6 bytes here versus ~70 as a JSON object (see the shardbench rows of
// BENCH_5.json).
//
// Layout:
//
//	stream := magic block*
//	magic  := "FRL1" (4 bytes)
//	block  := 0x01 uvarint(count) uvarint(len(payload)) payload crc32c(payload)[4, LE]
//	payload:= record*
//	record := uvarint(runDelta) byte(outcome) byte(origin) uvarint(target) byte(bit)
//
// Run indices are delta-coded against the previous record in the block;
// the first record of a block is delta-coded against the block header's
// base run (uvarint, first field of the payload). Records must therefore
// be appended in strictly increasing run order, which is the order every
// campaign path produces them in. Blocks are self-delimiting and
// self-checking: a reader can detect truncation (unexpected EOF inside a
// block), corruption (CRC mismatch, malformed varints, trailing payload
// bytes), and framing drift (unknown block marker) without trusting any
// earlier byte.
package reclog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record is one classified injection run. The fields mirror
// campaign.Record but stay dependency-free so the log can be read
// without the campaign layer (and fuzzed in isolation).
type Record struct {
	// Run is the run index within the campaign (>= 0, strictly
	// increasing within a stream).
	Run int64
	// Outcome is the campaign.Outcome value.
	Outcome uint8
	// Origin is the asm.Origin provenance tag of the injected
	// instruction.
	Origin uint8
	// Target is the injected fault's dynamic target index (>= 0).
	Target int64
	// Bit is the flipped bit choice.
	Bit uint8
}

// Magic starts every stream.
const Magic = "FRL1"

// blockMarker introduces every block.
const blockMarker = 0x01

// DefaultBlockRecords is the writer's records-per-block target. Blocks
// this size keep the CRC and header overhead under 1% while bounding
// the damage radius of a corrupt block to a few KiB.
const DefaultBlockRecords = 1024

// maxBlockBytes bounds a block a reader will buffer; a declared payload
// beyond it is treated as corruption, not an allocation request.
const maxBlockBytes = 1 << 24

// ErrCorrupt reports a structurally damaged stream (bad magic, CRC
// mismatch, truncated or malformed block). It is wrapped with detail;
// test with errors.Is.
var ErrCorrupt = errors.New("reclog: corrupt stream")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer encodes records into a stream. Not safe for concurrent use.
type Writer struct {
	w        *bufio.Writer
	buf      []byte // current block payload
	count    int    // records in the current block
	base     int64  // base run of the current block (first record's run)
	last     int64  // last appended run (-1 before the first)
	wrote    bool   // magic written
	perBlock int
	scratch  [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), last: -1, perBlock: DefaultBlockRecords}
}

func (w *Writer) putUvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.buf = append(w.buf, w.scratch[:n]...)
}

// Write appends one record. Records must arrive in strictly increasing
// Run order with nonnegative Run and Target.
func (w *Writer) Write(r Record) error {
	if r.Run < 0 || r.Target < 0 {
		return fmt.Errorf("reclog: negative run (%d) or target (%d)", r.Run, r.Target)
	}
	if r.Run <= w.last {
		return fmt.Errorf("reclog: run %d not after previous run %d", r.Run, w.last)
	}
	if !w.wrote {
		if _, err := w.w.WriteString(Magic); err != nil {
			return err
		}
		w.wrote = true
	}
	if w.count == 0 {
		w.base = r.Run
		w.putUvarint(uint64(r.Run)) // block base
		w.putUvarint(0)             // first record: delta from base
	} else {
		w.putUvarint(uint64(r.Run - w.last))
	}
	w.buf = append(w.buf, r.Outcome, r.Origin)
	w.putUvarint(uint64(r.Target))
	w.buf = append(w.buf, r.Bit)
	w.last = r.Run
	w.count++
	if w.count >= w.perBlock {
		return w.flushBlock()
	}
	return nil
}

// flushBlock emits the buffered block (no-op when empty).
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	if err := w.w.WriteByte(blockMarker); err != nil {
		return err
	}
	n := binary.PutUvarint(w.scratch[:], uint64(w.count))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(w.scratch[:], uint64(len(w.buf)))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(w.buf, crcTable))
	if _, err := w.w.Write(crc[:]); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.count = 0
	return nil
}

// Close flushes the final block and the underlying buffer. The Writer
// must not be used afterwards. Close writes the magic even for an empty
// stream, so "no records" and "no stream" stay distinguishable.
func (w *Writer) Close() error {
	if !w.wrote {
		if _, err := w.w.WriteString(Magic); err != nil {
			return err
		}
		w.wrote = true
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes a stream. Not safe for concurrent use.
type Reader struct {
	r       *bufio.Reader
	payload []byte // current block payload
	off     int    // read offset into payload
	left    int    // records left in the current block
	run     int64  // previous run (block base before the first record)
	started bool   // magic consumed
	lastRun int64  // last run returned across blocks (-1 initially)
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), lastRun: -1}
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Next returns the next record, io.EOF at a clean end of stream, or an
// error wrapping ErrCorrupt for damaged input. It never panics on any
// input.
func (r *Reader) Next() (Record, error) {
	if !r.started {
		var magic [4]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, corrupt("short magic")
			}
			return Record{}, err
		}
		if string(magic[:]) != Magic {
			return Record{}, corrupt("bad magic %q", magic[:])
		}
		r.started = true
	}
	for r.left == 0 {
		if err := r.nextBlock(); err != nil {
			return Record{}, err
		}
	}
	delta, err := r.payloadUvarint()
	if err != nil {
		return Record{}, err
	}
	if r.off+2 > len(r.payload) {
		return Record{}, corrupt("truncated record")
	}
	outcome, origin := r.payload[r.off], r.payload[r.off+1]
	r.off += 2
	target, err := r.payloadUvarint()
	if err != nil {
		return Record{}, err
	}
	if r.off >= len(r.payload) {
		return Record{}, corrupt("truncated record")
	}
	bit := r.payload[r.off]
	r.off++
	r.left--
	if r.left == 0 && r.off != len(r.payload) {
		return Record{}, corrupt("%d trailing payload bytes", len(r.payload)-r.off)
	}
	run := r.run + int64(delta)
	if run < 0 || int64(target) < 0 {
		return Record{}, corrupt("run or target overflow")
	}
	if run <= r.lastRun {
		return Record{}, corrupt("run %d not increasing past %d", run, r.lastRun)
	}
	r.run, r.lastRun = run, run
	return Record{Run: run, Outcome: outcome, Origin: origin, Target: int64(target), Bit: bit}, nil
}

// nextBlock loads and CRC-checks the next block. io.EOF only at a clean
// block boundary.
func (r *Reader) nextBlock() error {
	marker, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF // clean end
		}
		return err
	}
	if marker != blockMarker {
		return corrupt("bad block marker 0x%02x", marker)
	}
	count, err := binary.ReadUvarint(r.r)
	if err != nil {
		return corruptEOF(err, "block count")
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		return corruptEOF(err, "block size")
	}
	if count == 0 || size == 0 || size > maxBlockBytes || count > size {
		return corrupt("implausible block: %d records in %d bytes", count, size)
	}
	if cap(r.payload) < int(size) {
		r.payload = make([]byte, size)
	}
	r.payload = r.payload[:size]
	if _, err := io.ReadFull(r.r, r.payload); err != nil {
		return corruptEOF(err, "block payload")
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.r, crc[:]); err != nil {
		return corruptEOF(err, "block crc")
	}
	if got, want := crc32.Checksum(r.payload, crcTable), binary.LittleEndian.Uint32(crc[:]); got != want {
		return corrupt("crc mismatch: computed %08x, stored %08x", got, want)
	}
	r.off = 0
	r.left = int(count)
	base, err := r.payloadUvarint()
	if err != nil {
		return err
	}
	// The base need only keep the first record (delta 0 from it) past
	// lastRun; that is checked per record in Next.
	r.run = int64(base)
	if r.run < 0 {
		return corrupt("block base overflow")
	}
	return nil
}

func corruptEOF(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return corrupt("truncated %s", what)
	}
	return err
}

// payloadUvarint decodes a uvarint from the current block payload.
func (r *Reader) payloadUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.payload[r.off:])
	if n <= 0 {
		return 0, corrupt("malformed varint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// ReadAll decodes every record of the stream (convenience for tests and
// small artifacts; large consumers should stream with Next).
func ReadAll(src io.Reader) ([]Record, error) {
	r := NewReader(src)
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
