package reclog

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReclogRoundTrip feeds arbitrary bytes to the stream reader: it
// must classify every input as a clean stream, a clean prefix, or
// ErrCorrupt — never panic, never mint a record that a re-encode cannot
// reproduce. Inputs that decode cleanly are re-encoded and re-decoded,
// and the records must survive the second trip bit for bit (the
// round-trip closure that keeps coordinator-side aggregation honest
// about worker-side encodings).
func FuzzReclogRoundTrip(f *testing.F) {
	// Seeds: an empty stream, small and multi-block streams, a truncated
	// block, and flipped payload/header bytes (the corpus under
	// testdata/fuzz pins the same shapes for non-fuzz runs).
	var empty bytes.Buffer
	w := NewWriter(&empty)
	w.Close()
	f.Add(empty.Bytes())

	small := encodeRecords(genRecords(5, 1))
	f.Add(small)
	multi := encodeRecords(genRecords(3*DefaultBlockRecords+17, 2))
	f.Add(multi)
	f.Add(multi[:len(multi)-3])
	flipped := append([]byte(nil), small...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("FRL1"))
	f.Add([]byte("FRL2\x01\x05"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error from in-memory decode: %v", err)
			}
			// Even on error, whatever decoded before the damage must be
			// well-formed: nonnegative, strictly increasing runs.
			checkWellFormed(t, recs)
			return
		}
		checkWellFormed(t, recs)
		reenc := encodeRecords(recs)
		again, err := ReadAll(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-decode lost records: %d vs %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i] != recs[i] {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, again[i], recs[i])
			}
		}
	})
}

func checkWellFormed(t *testing.T, recs []Record) {
	t.Helper()
	last := int64(-1)
	for i, r := range recs {
		if r.Run <= last || r.Run < 0 || r.Target < 0 {
			t.Fatalf("decoded ill-formed record %d: %+v after run %d", i, r, last)
		}
		last = r.Run
	}
}

// encodeRecords is the test-side encoder (panics on writer misuse,
// which the fuzz target treats as a failure by crashing).
func encodeRecords(recs []Record) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
