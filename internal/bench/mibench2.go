package bench

import "flowery/internal/ir"

func init() {
	register(Benchmark{Name: "susan", Suite: "MiBench", Domain: "Image Recognition", Build: buildSusan})
	register(Benchmark{Name: "crc32", Suite: "MiBench", Domain: "Error Detection", Build: buildCRC32})
	register(Benchmark{Name: "stringsearch", Suite: "MiBench", Domain: "Comparison Algorithm", Build: buildStringsearch})
	register(Benchmark{Name: "patricia", Suite: "MiBench", Domain: "Data Structure", Build: buildPatricia})
}

// buildSusan is a small-kernel version of the SUSAN image-processing
// benchmark: brightness-similarity smoothing over a 3×3 window followed
// by a corner-response count, on a synthetic grayscale image.
func buildSusan() *ir.Module {
	const (
		w      = 20
		h      = 20
		thresh = 20
	)
	m := ir.NewModule("susan")
	r := newLCG(127)

	img := make([]byte, w*h)
	for i := range img {
		img[i] = byte(r.intn(256))
	}
	gImg := m.NewGlobalData("img", img)
	gOut := m.NewGlobalData("out", make([]byte, w*h))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	corners := b.AllocVar(ir.I64)
	b.Store(c64(0), corners)

	b.ForLoop("y", c64(1), c64(h-1), c64(1), func(y ir.Value) {
		b.ForLoop("x", c64(1), c64(w-1), c64(1), func(x ir.Value) {
			cIdx := b.Add(b.Mul(y, c64(w)), x)
			cPix := b.ZExt(ir.I64, b.LoadElem(ir.I8, gImg, cIdx))
			cPix = b.And(cPix, c64(0xff))
			acc := b.AllocVar(ir.I64)
			cnt := b.AllocVar(ir.I64)
			b.Store(c64(0), acc)
			b.Store(c64(0), cnt)
			b.ForLoop("dy", c64(-1), c64(2), c64(1), func(dy ir.Value) {
				b.ForLoop("dx", c64(-1), c64(2), c64(1), func(dx ir.Value) {
					nIdx := b.Add(b.Mul(b.Add(y, dy), c64(w)), b.Add(x, dx))
					p := b.And(b.ZExt(ir.I64, b.LoadElem(ir.I8, gImg, nIdx)), c64(0xff))
					diff := b.Sub(p, cPix)
					neg := b.ICmp(ir.PredSLT, diff, c64(0))
					ad := b.AllocVar(ir.I64)
					b.If(neg, func() { b.Store(b.Sub(c64(0), diff), ad) }, func() { b.Store(diff, ad) })
					similar := b.ICmp(ir.PredSLT, b.Load(ir.I64, ad), c64(thresh))
					b.If(similar, func() {
						b.Store(b.Add(b.Load(ir.I64, acc), p), acc)
						b.Store(b.Add(b.Load(ir.I64, cnt), c64(1)), cnt)
					}, nil)
				})
			})
			avg := b.SDiv(b.Load(ir.I64, acc), b.Load(ir.I64, cnt))
			b.StoreElem(ir.I8, gOut, cIdx, b.Trunc(ir.I8, avg))
			// USAN principle: few similar neighbours → corner response.
			isCorner := b.ICmp(ir.PredSLE, b.Load(ir.I64, cnt), c64(3))
			b.If(isCorner, func() {
				b.Store(b.Add(b.Load(ir.I64, corners), c64(1)), corners)
			}, nil)
		})
	})

	// Digest: smoothed-image checksum and corner count.
	sum := b.AllocVar(ir.I64)
	b.Store(c64(0), sum)
	b.ForLoop("ck", c64(0), c64(w*h), c64(1), func(i ir.Value) {
		p := b.And(b.ZExt(ir.I64, b.LoadElem(ir.I8, gOut, i)), c64(0xff))
		b.Store(b.Add(b.Mul(b.Load(ir.I64, sum), c64(3)), p), sum)
	})
	b.PrintI64(b.Load(ir.I64, sum))
	b.PrintI64(b.Load(ir.I64, corners))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildCRC32 computes the table-driven CRC-32 of a message, building the
// 256-entry table in-program first (the MiBench CRC32 benchmark).
func buildCRC32() *ir.Module {
	const msgLen = 256
	m := ir.NewModule("crc32")
	r := newLCG(131)

	msg := make([]byte, msgLen)
	for i := range msg {
		msg[i] = byte(r.intn(256))
	}
	gMsg := m.NewGlobalData("msg", msg)
	gTab := m.NewGlobalI64("table", make([]int64, 256))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	// Build the reflected CRC-32 table (polynomial 0xEDB88320).
	b.ForLoop("tab", c64(0), c64(256), c64(1), func(n ir.Value) {
		c := b.AllocVar(ir.I64)
		b.Store(n, c)
		b.ForLoop("k", c64(0), c64(8), c64(1), func(_ ir.Value) {
			cv := b.Load(ir.I64, c)
			odd := b.ICmp(ir.PredEQ, b.And(cv, c64(1)), c64(1))
			b.If(odd, func() {
				b.Store(b.Xor(c64(0xEDB88320), b.LShr(cv, c64(1))), c)
			}, func() {
				b.Store(b.LShr(cv, c64(1)), c)
			})
		})
		b.StoreElem(ir.I64, gTab, n, b.Load(ir.I64, c))
	})

	// CRC over the message.
	crc := b.AllocVar(ir.I64)
	b.Store(c64(0xFFFFFFFF), crc)
	b.ForLoop("msg", c64(0), c64(msgLen), c64(1), func(i ir.Value) {
		byteV := b.And(b.ZExt(ir.I64, b.LoadElem(ir.I8, gMsg, i)), c64(0xff))
		cv := b.Load(ir.I64, crc)
		idx := b.And(b.Xor(cv, byteV), c64(0xff))
		t := b.LoadElem(ir.I64, gTab, idx)
		b.Store(b.Xor(t, b.LShr(cv, c64(8))), crc)
	})
	final := b.Xor(b.Load(ir.I64, crc), c64(0xFFFFFFFF))
	b.PrintI64(b.And(final, c64(0xFFFFFFFF)))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildStringsearch is Boyer–Moore–Horspool substring search of several
// patterns over a text (the MiBench stringsearch benchmark). Search is a
// function called per pattern, giving the benchmark the call-heavy
// profile the paper reports for it.
func buildStringsearch() *ir.Module {
	text := "it was the best of times it was the worst of times " +
		"it was the age of wisdom it was the age of foolishness " +
		"it was the epoch of belief it was the epoch of incredulity " +
		"it was the season of light it was the season of darkness"
	patterns := []string{"season", "wisdom", "epoch of belief", "zzzz", "times it"}

	m := ir.NewModule("stringsearch")
	gText := m.NewGlobalData("text", []byte(text))
	// All patterns in one blob with (offset, length) pairs.
	var blob []byte
	offs := make([]int64, 0, len(patterns)*2)
	for _, p := range patterns {
		offs = append(offs, int64(len(blob)), int64(len(p)))
		blob = append(blob, p...)
	}
	gPats := m.NewGlobalData("pats", blob)
	gOffs := m.NewGlobalI64("offs", offs)
	gSkip := m.NewGlobalI64("skip", make([]int64, 256))

	// search(patOff, patLen) -> first match index or -1, BMH algorithm.
	search := m.NewFunction("search", ir.I64, ir.I64, ir.I64)
	{
		b := ir.NewBuilder(search)
		patOff, patLen := search.Params[0], search.Params[1]
		// Build the skip table.
		b.ForLoop("init", c64(0), c64(256), c64(1), func(i ir.Value) {
			b.StoreElem(ir.I64, gSkip, i, patLen)
		})
		b.ForLoop("fill", c64(0), b.Sub(patLen, c64(1)), c64(1), func(i ir.Value) {
			ch := b.And(b.ZExt(ir.I64, b.LoadElem(ir.I8, gPats, b.Add(patOff, i))), c64(0xff))
			b.StoreElem(ir.I64, gSkip, ch, b.Sub(b.Sub(patLen, c64(1)), i))
		})
		pos := b.AllocVar(ir.I64)
		found := b.AllocVar(ir.I64)
		b.Store(c64(0), pos)
		b.Store(c64(-1), found)
		limit := b.Sub(c64(int64(len(text))), patLen)
		b.While("scan", func() ir.Value {
			notFound := b.ICmp(ir.PredSLT, b.Load(ir.I64, found), c64(0))
			inRange := b.ICmp(ir.PredSLE, b.Load(ir.I64, pos), limit)
			return b.And(notFound, inRange)
		}, func() {
			p := b.Load(ir.I64, pos)
			// Compare backwards from the last pattern byte.
			j := b.AllocVar(ir.I64)
			ok := b.AllocVar(ir.I1)
			b.Store(b.Sub(patLen, c64(1)), j)
			b.Store(cb(true), ok)
			b.While("cmp", func() ir.Value {
				okv := b.Load(ir.I1, ok)
				jge := b.ICmp(ir.PredSGE, b.Load(ir.I64, j), c64(0))
				return b.And(okv, jge)
			}, func() {
				jv := b.Load(ir.I64, j)
				tc := b.LoadElem(ir.I8, gText, b.Add(p, jv))
				pc := b.LoadElem(ir.I8, gPats, b.Add(patOff, jv))
				eq := b.ICmp(ir.PredEQ, tc, pc)
				b.If(eq, func() {
					b.Store(b.Sub(jv, c64(1)), j)
				}, func() {
					b.Store(cb(false), ok)
				})
			})
			b.If(b.Load(ir.I1, ok), func() {
				b.Store(p, found)
			}, func() {
				lastIdx := b.Add(p, b.Sub(patLen, c64(1)))
				lastCh := b.And(b.ZExt(ir.I64, b.LoadElem(ir.I8, gText, lastIdx)), c64(0xff))
				b.Store(b.Add(p, b.LoadElem(ir.I64, gSkip, lastCh)), pos)
			})
		})
		b.Ret(b.Load(ir.I64, found))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	total := b.AllocVar(ir.I64)
	b.Store(c64(0), total)
	b.ForLoop("pat", c64(0), c64(int64(len(patterns))), c64(1), func(i ir.Value) {
		off := b.LoadElem(ir.I64, gOffs, b.Mul(i, c64(2)))
		ln := b.LoadElem(ir.I64, gOffs, b.Add(b.Mul(i, c64(2)), c64(1)))
		res := b.Call(search, off, ln)
		b.PrintI64(res)
		b.Store(b.Add(b.Load(ir.I64, total), res), total)
	})
	b.PrintI64(b.Load(ir.I64, total))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildPatricia is a binary (PATRICIA-style) trie over 16-bit keys
// stored in index arrays: insertions followed by lookups, with the
// routing decisions taken bit by bit. Insert and lookup are separate
// functions, matching the benchmark's call-heavy nature.
func buildPatricia() *ir.Module {
	const (
		bits    = 16
		inserts = 48
		lookups = 64
		// Worst case: every insert allocates a fresh node per bit.
		maxNodes = inserts*bits + 2
	)
	m := ir.NewModule("patricia")
	r := newLCG(139)

	ins := make([]int64, inserts)
	for i := range ins {
		ins[i] = r.intn(1 << bits)
	}
	look := make([]int64, lookups)
	for i := range look {
		if i%2 == 0 {
			look[i] = ins[int(r.intn(inserts))] // guaranteed hits
		} else {
			look[i] = r.intn(1 << bits)
		}
	}
	gIns := m.NewGlobalI64("ins", ins)
	gLook := m.NewGlobalI64("look", look)
	gLeft := m.NewGlobalI64("left", make([]int64, maxNodes))
	gRight := m.NewGlobalI64("right", make([]int64, maxNodes))
	gKey := m.NewGlobalI64("key", make([]int64, maxNodes))
	gHasKey := m.NewGlobalI64("haskey", make([]int64, maxNodes))
	gNext := m.NewGlobalI64("next", []int64{1}) // node 0 is the root

	// insert(key): walk the bits, allocating nodes as needed.
	insert := m.NewFunction("insert", ir.Void, ir.I64)
	{
		b := ir.NewBuilder(insert)
		key := insert.Params[0]
		node := b.AllocVar(ir.I64)
		b.Store(c64(0), node)
		b.ForLoop("bit", c64(0), c64(bits), c64(1), func(i ir.Value) {
			bit := b.And(b.LShr(key, b.Sub(c64(bits-1), i)), c64(1))
			cur := b.Load(ir.I64, node)
			goRight := b.ICmp(ir.PredEQ, bit, c64(1))
			child := b.AllocVar(ir.I64)
			b.If(goRight, func() {
				b.Store(b.LoadElem(ir.I64, gRight, cur), child)
			}, func() {
				b.Store(b.LoadElem(ir.I64, gLeft, cur), child)
			})
			missing := b.ICmp(ir.PredEQ, b.Load(ir.I64, child), c64(0))
			b.If(missing, func() {
				n := b.LoadElem(ir.I64, gNext, c64(0))
				b.StoreElem(ir.I64, gNext, c64(0), b.Add(n, c64(1)))
				b.If(goRight, func() {
					b.StoreElem(ir.I64, gRight, cur, n)
				}, func() {
					b.StoreElem(ir.I64, gLeft, cur, n)
				})
				b.Store(n, child)
			}, nil)
			b.Store(b.Load(ir.I64, child), node)
		})
		leaf := b.Load(ir.I64, node)
		b.StoreElem(ir.I64, gKey, leaf, key)
		b.StoreElem(ir.I64, gHasKey, leaf, c64(1))
		b.Ret(nil)
	}

	// lookup(key) -> 1 if present.
	lookup := m.NewFunction("lookup", ir.I64, ir.I64)
	{
		b := ir.NewBuilder(lookup)
		key := lookup.Params[0]
		node := b.AllocVar(ir.I64)
		dead := b.AllocVar(ir.I1)
		b.Store(c64(0), node)
		b.Store(cb(false), dead)
		b.ForLoop("bit", c64(0), c64(bits), c64(1), func(i ir.Value) {
			isDead := b.Load(ir.I1, dead)
			b.If(isDead, nil, func() {
				bit := b.And(b.LShr(key, b.Sub(c64(bits-1), i)), c64(1))
				cur := b.Load(ir.I64, node)
				goRight := b.ICmp(ir.PredEQ, bit, c64(1))
				child := b.AllocVar(ir.I64)
				b.If(goRight, func() {
					b.Store(b.LoadElem(ir.I64, gRight, cur), child)
				}, func() {
					b.Store(b.LoadElem(ir.I64, gLeft, cur), child)
				})
				miss := b.ICmp(ir.PredEQ, b.Load(ir.I64, child), c64(0))
				b.If(miss, func() {
					b.Store(cb(true), dead)
				}, func() {
					b.Store(b.Load(ir.I64, child), node)
				})
			})
		})
		res := b.AllocVar(ir.I64)
		b.Store(c64(0), res)
		b.If(b.Load(ir.I1, dead), nil, func() {
			leaf := b.Load(ir.I64, node)
			has := b.ICmp(ir.PredEQ, b.LoadElem(ir.I64, gHasKey, leaf), c64(1))
			match := b.ICmp(ir.PredEQ, b.LoadElem(ir.I64, gKey, leaf), key)
			hit := b.And(has, match)
			b.If(hit, func() { b.Store(c64(1), res) }, nil)
		})
		b.Ret(b.Load(ir.I64, res))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	b.ForLoop("ins", c64(0), c64(inserts), c64(1), func(i ir.Value) {
		b.Call(insert, b.LoadElem(ir.I64, gIns, i))
	})
	hits := b.AllocVar(ir.I64)
	b.Store(c64(0), hits)
	b.ForLoop("look", c64(0), c64(lookups), c64(1), func(i ir.Value) {
		h := b.Call(lookup, b.LoadElem(ir.I64, gLook, i))
		b.Store(b.Add(b.Load(ir.I64, hits), h), hits)
	})
	b.PrintI64(b.Load(ir.I64, hits))
	b.PrintI64(b.LoadElem(ir.I64, gNext, c64(0)))
	b.Ret(c64(0))
	return mustVerify(m)
}
