package bench

import "flowery/internal/ir"

func init() {
	register(Benchmark{Name: "backprop", Suite: "Rodinia", Domain: "Machine Learning", Build: buildBackprop})
	register(Benchmark{Name: "bfs", Suite: "Rodinia", Domain: "Graph Algorithm", Build: buildBFS})
	register(Benchmark{Name: "pathfinder", Suite: "Rodinia", Domain: "Dynamic Programming", Build: buildPathfinder})
}

// buildBackprop is a two-layer perceptron trained with backpropagation
// (the Rodinia backprop kernel): forward pass, output/hidden deltas, and
// weight updates over several epochs.
func buildBackprop() *ir.Module {
	const (
		nIn     = 8
		nHid    = 4
		samples = 12
		epochs  = 3
	)
	m := ir.NewModule("backprop")
	r := newLCG(11)

	data := make([]float64, samples*nIn)
	for i := range data {
		data[i] = r.f64()*2 - 1
	}
	targets := make([]float64, samples)
	for i := range targets {
		targets[i] = r.f64()
	}
	w1 := make([]float64, nIn*nHid)
	for i := range w1 {
		w1[i] = r.f64()*0.5 - 0.25
	}
	w2 := make([]float64, nHid)
	for i := range w2 {
		w2[i] = r.f64()*0.5 - 0.25
	}
	gData := m.NewGlobalF64("data", data)
	gTgt := m.NewGlobalF64("targets", targets)
	gW1 := m.NewGlobalF64("w1", w1)
	gW2 := m.NewGlobalF64("w2", w2)

	// sigmoid(x) = 1 / (1 + exp(-x))
	sig := m.NewFunction("sigmoid", ir.F64, ir.F64)
	{
		b := ir.NewBuilder(sig)
		x := sig.Params[0]
		nx := b.FSub(cf(0), x)
		e := b.CallNamed("exp", nx)
		b.Ret(b.FDiv(cf(1), b.FAdd(cf(1), e)))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	hid := b.Alloca(nHid * 8)  // hidden activations
	dhid := b.Alloca(nHid * 8) // hidden deltas
	errS := b.AllocVar(ir.F64) // accumulated squared error
	outS := b.AllocVar(ir.F64) // network output
	lr := cf(0.3)

	b.Store(cf(0), errS)
	b.ForLoop("epoch", c64(0), c64(epochs), c64(1), func(ep ir.Value) {
		b.ForLoop("sample", c64(0), c64(samples), c64(1), func(s ir.Value) {
			base := b.Mul(s, c64(nIn))
			// Forward: hidden layer.
			b.ForLoop("fh", c64(0), c64(nHid), c64(1), func(j ir.Value) {
				acc := b.AllocVar(ir.F64)
				b.Store(cf(0), acc)
				b.ForLoop("fi", c64(0), c64(nIn), c64(1), func(i ir.Value) {
					x := b.LoadElem(ir.F64, gData, b.Add(base, i))
					wIdx := b.Add(b.Mul(i, c64(nHid)), j)
					w := b.LoadElem(ir.F64, gW1, wIdx)
					cur := b.Load(ir.F64, acc)
					b.Store(b.FAdd(cur, b.FMul(x, w)), acc)
				})
				h := b.Call(sig, b.Load(ir.F64, acc))
				b.StoreElem(ir.F64, hid, j, h)
			})
			// Forward: output neuron.
			oacc := b.AllocVar(ir.F64)
			b.Store(cf(0), oacc)
			b.ForLoop("fo", c64(0), c64(nHid), c64(1), func(j ir.Value) {
				h := b.LoadElem(ir.F64, hid, j)
				w := b.LoadElem(ir.F64, gW2, j)
				cur := b.Load(ir.F64, oacc)
				b.Store(b.FAdd(cur, b.FMul(h, w)), oacc)
			})
			out := b.Call(sig, b.Load(ir.F64, oacc))
			b.Store(out, outS)

			// Output delta and error.
			tgt := b.LoadElem(ir.F64, gTgt, s)
			diff := b.FSub(out, tgt)
			e := b.Load(ir.F64, errS)
			b.Store(b.FAdd(e, b.FMul(diff, diff)), errS)
			one := cf(1)
			dOut := b.FMul(diff, b.FMul(out, b.FSub(one, out)))

			// Hidden deltas and w2 update.
			b.ForLoop("bh", c64(0), c64(nHid), c64(1), func(j ir.Value) {
				h := b.LoadElem(ir.F64, hid, j)
				w := b.LoadElem(ir.F64, gW2, j)
				dh := b.FMul(b.FMul(dOut, w), b.FMul(h, b.FSub(one, h)))
				b.StoreElem(ir.F64, dhid, j, dh)
				nw := b.FSub(w, b.FMul(lr, b.FMul(dOut, h)))
				b.StoreElem(ir.F64, gW2, j, nw)
			})
			// w1 update.
			b.ForLoop("bi", c64(0), c64(nIn), c64(1), func(i ir.Value) {
				x := b.LoadElem(ir.F64, gData, b.Add(base, i))
				b.ForLoop("bj", c64(0), c64(nHid), c64(1), func(j ir.Value) {
					wIdx := b.Add(b.Mul(i, c64(nHid)), j)
					w := b.LoadElem(ir.F64, gW1, wIdx)
					dh := b.LoadElem(ir.F64, dhid, j)
					b.StoreElem(ir.F64, gW1, wIdx, b.FSub(w, b.FMul(lr, b.FMul(dh, x))))
				})
			})
		})
	})

	// Output digest: error, final output, weight checksums.
	b.PrintF64(b.Load(ir.F64, errS))
	b.PrintF64(b.Load(ir.F64, outS))
	sum := b.AllocVar(ir.F64)
	b.Store(cf(0), sum)
	b.ForLoop("ck1", c64(0), c64(nIn*nHid), c64(1), func(i ir.Value) {
		w := b.LoadElem(ir.F64, gW1, i)
		b.Store(b.FAdd(b.Load(ir.F64, sum), w), sum)
	})
	b.ForLoop("ck2", c64(0), c64(nHid), c64(1), func(i ir.Value) {
		w := b.LoadElem(ir.F64, gW2, i)
		b.Store(b.FAdd(b.Load(ir.F64, sum), w), sum)
	})
	b.PrintF64(b.Load(ir.F64, sum))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildBFS is breadth-first search over a CSR graph (the Rodinia BFS
// kernel): frontier-queue traversal computing hop distances.
func buildBFS() *ir.Module {
	const (
		nodes     = 96
		degree    = 4
		edgeCount = nodes * degree
	)
	m := ir.NewModule("bfs")
	r := newLCG(23)

	// CSR: rowStart[nodes+1], edges[edgeCount]; random regular-ish graph.
	rowStart := make([]int64, nodes+1)
	edges := make([]int64, 0, edgeCount)
	for v := 0; v < nodes; v++ {
		rowStart[v] = int64(len(edges))
		for d := 0; d < degree; d++ {
			// Bias edges forward so most nodes are reachable from 0.
			tgt := (int64(v) + 1 + r.intn(nodes/4)) % nodes
			edges = append(edges, tgt)
		}
	}
	rowStart[nodes] = int64(len(edges))
	gRow := m.NewGlobalI64("rowstart", rowStart)
	gEdge := m.NewGlobalI64("edges", edges)
	gDist := m.NewGlobalI64("dist", make([]int64, nodes))
	gQueue := m.NewGlobalI64("queue", make([]int64, nodes+8))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	// dist[v] = -1 for all v; dist[0] = 0; queue = [0].
	b.ForLoop("init", c64(0), c64(nodes), c64(1), func(v ir.Value) {
		b.StoreElem(ir.I64, gDist, v, c64(-1))
	})
	b.StoreElem(ir.I64, gDist, c64(0), c64(0))
	b.StoreElem(ir.I64, gQueue, c64(0), c64(0))
	head := b.AllocVar(ir.I64)
	tail := b.AllocVar(ir.I64)
	b.Store(c64(0), head)
	b.Store(c64(1), tail)

	b.While("bfs", func() ir.Value {
		return b.ICmp(ir.PredSLT, b.Load(ir.I64, head), b.Load(ir.I64, tail))
	}, func() {
		h := b.Load(ir.I64, head)
		v := b.LoadElem(ir.I64, gQueue, h)
		b.Store(b.Add(h, c64(1)), head)
		dv := b.LoadElem(ir.I64, gDist, v)
		lo := b.LoadElem(ir.I64, gRow, v)
		hi := b.LoadElem(ir.I64, gRow, b.Add(v, c64(1)))
		eSlot := b.AllocVar(ir.I64)
		b.Store(lo, eSlot)
		b.While("scan", func() ir.Value {
			return b.ICmp(ir.PredSLT, b.Load(ir.I64, eSlot), hi)
		}, func() {
			e := b.Load(ir.I64, eSlot)
			w := b.LoadElem(ir.I64, gEdge, e)
			dw := b.LoadElem(ir.I64, gDist, w)
			unseen := b.ICmp(ir.PredSLT, dw, c64(0))
			b.If(unseen, func() {
				b.StoreElem(ir.I64, gDist, w, b.Add(dv, c64(1)))
				t := b.Load(ir.I64, tail)
				b.StoreElem(ir.I64, gQueue, t, w)
				b.Store(b.Add(t, c64(1)), tail)
			}, nil)
			b.Store(b.Add(e, c64(1)), eSlot)
		})
	})

	// Digest: weighted distance checksum plus a few samples.
	sum := b.AllocVar(ir.I64)
	b.Store(c64(0), sum)
	b.ForLoop("ck", c64(0), c64(nodes), c64(1), func(v ir.Value) {
		d := b.LoadElem(ir.I64, gDist, v)
		cur := b.Load(ir.I64, sum)
		b.Store(b.Add(b.Mul(cur, c64(3)), d), sum)
	})
	b.PrintI64(b.Load(ir.I64, sum))
	b.PrintI64(b.LoadElem(ir.I64, gDist, c64(nodes-1)))
	b.PrintI64(b.Load(ir.I64, tail))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildPathfinder is the Rodinia pathfinder kernel: row-by-row dynamic
// programming over a weight grid, each cell extending the cheapest of
// the three predecessors above it.
func buildPathfinder() *ir.Module {
	const (
		rows = 20
		cols = 32
	)
	m := ir.NewModule("pathfinder")
	r := newLCG(37)

	grid := make([]int64, rows*cols)
	for i := range grid {
		grid[i] = r.intn(10)
	}
	gGrid := m.NewGlobalI64("grid", grid)
	gPrev := m.NewGlobalI64("prev", make([]int64, cols))
	gCur := m.NewGlobalI64("cur", make([]int64, cols))

	// min2(a, b)
	min2 := m.NewFunction("min2", ir.I64, ir.I64, ir.I64)
	{
		b := ir.NewBuilder(min2)
		x, y := min2.Params[0], min2.Params[1]
		res := b.AllocVar(ir.I64)
		lt := b.ICmp(ir.PredSLT, x, y)
		b.If(lt, func() { b.Store(x, res) }, func() { b.Store(y, res) })
		b.Ret(b.Load(ir.I64, res))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	// First row initializes prev.
	b.ForLoop("init", c64(0), c64(cols), c64(1), func(j ir.Value) {
		b.StoreElem(ir.I64, gPrev, j, b.LoadElem(ir.I64, gGrid, j))
	})
	b.ForLoop("row", c64(1), c64(rows), c64(1), func(i ir.Value) {
		base := b.Mul(i, c64(cols))
		b.ForLoop("col", c64(0), c64(cols), c64(1), func(j ir.Value) {
			best := b.AllocVar(ir.I64)
			b.Store(b.LoadElem(ir.I64, gPrev, j), best)
			// Left neighbour.
			hasL := b.ICmp(ir.PredSGT, j, c64(0))
			b.If(hasL, func() {
				l := b.LoadElem(ir.I64, gPrev, b.Sub(j, c64(1)))
				b.Store(b.Call(min2, b.Load(ir.I64, best), l), best)
			}, nil)
			// Right neighbour.
			hasR := b.ICmp(ir.PredSLT, j, c64(cols-1))
			b.If(hasR, func() {
				rv := b.LoadElem(ir.I64, gPrev, b.Add(j, c64(1)))
				b.Store(b.Call(min2, b.Load(ir.I64, best), rv), best)
			}, nil)
			w := b.LoadElem(ir.I64, gGrid, b.Add(base, j))
			b.StoreElem(ir.I64, gCur, j, b.Add(w, b.Load(ir.I64, best)))
		})
		b.ForLoop("swap", c64(0), c64(cols), c64(1), func(j ir.Value) {
			b.StoreElem(ir.I64, gPrev, j, b.LoadElem(ir.I64, gCur, j))
		})
	})

	// Digest: checksum of the final row and its minimum.
	sum := b.AllocVar(ir.I64)
	best := b.AllocVar(ir.I64)
	b.Store(c64(0), sum)
	b.Store(b.LoadElem(ir.I64, gPrev, c64(0)), best)
	b.ForLoop("ck", c64(0), c64(cols), c64(1), func(j ir.Value) {
		v := b.LoadElem(ir.I64, gPrev, j)
		b.Store(b.Add(b.Mul(b.Load(ir.I64, sum), c64(7)), v), sum)
		b.Store(b.Call(min2, b.Load(ir.I64, best), v), best)
	})
	b.PrintI64(b.Load(ir.I64, sum))
	b.PrintI64(b.Load(ir.I64, best))
	b.Ret(c64(0))
	return mustVerify(m)
}
