package bench

import "flowery/internal/ir"

func init() {
	register(Benchmark{Name: "ep", Suite: "NPB", Domain: "Parallel Computing", Build: buildEP})
	register(Benchmark{Name: "cg", Suite: "NPB", Domain: "Gradient Algorithm", Build: buildCG})
	register(Benchmark{Name: "is", Suite: "NPB", Domain: "Sort Algorithm", Build: buildIS})
}

// buildEP is the NAS "embarrassingly parallel" kernel: generate uniform
// pseudo-random pairs, map them through the Marsaglia polar method to
// Gaussian deviates, and tally them into concentric square annuli.
func buildEP() *ir.Module {
	const (
		pairs   = 320
		annuli  = 10
		lcgA    = 1103515245
		lcgC    = 12345
		lcgMask = 1<<31 - 1
	)
	m := ir.NewModule("ep")
	gQ := m.NewGlobalI64("q", make([]int64, annuli))

	// lcgNext(state) -> new state (31-bit linear congruential step).
	lcgNext := m.NewFunction("lcg_next", ir.I64, ir.I64)
	{
		b := ir.NewBuilder(lcgNext)
		x := lcgNext.Params[0]
		nx := b.And(b.Add(b.Mul(x, c64(lcgA)), c64(lcgC)), c64(lcgMask))
		b.Ret(nx)
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	state := b.AllocVar(ir.I64)
	sx := b.AllocVar(ir.F64)
	sy := b.AllocVar(ir.F64)
	accepted := b.AllocVar(ir.I64)
	b.Store(c64(271828183), state)
	b.Store(cf(0), sx)
	b.Store(cf(0), sy)
	b.Store(c64(0), accepted)

	u01 := func() ir.Value {
		s := b.Call(lcgNext, b.Load(ir.I64, state))
		b.Store(s, state)
		return b.FDiv(b.SIToFP(s), cf(float64(lcgMask)+1))
	}

	b.ForLoop("pair", c64(0), c64(pairs), c64(1), func(_ ir.Value) {
		x := b.FSub(b.FMul(u01(), cf(2)), cf(1))
		y := b.FSub(b.FMul(u01(), cf(2)), cf(1))
		t := b.FAdd(b.FMul(x, x), b.FMul(y, y))
		ok := b.FCmp(ir.PredOLE, t, cf(1))
		nz := b.FCmp(ir.PredOGT, t, cf(0))
		use := b.And(ok, nz)
		b.If(use, func() {
			// g = sqrt(-2 ln t / t)
			lt := b.CallNamed("log", t)
			g := b.CallNamed("sqrt", b.FDiv(b.FMul(cf(-2), lt), t))
			gx := b.FMul(x, g)
			gy := b.FMul(y, g)
			b.Store(b.FAdd(b.Load(ir.F64, sx), gx), sx)
			b.Store(b.FAdd(b.Load(ir.F64, sy), gy), sy)
			b.Store(b.Add(b.Load(ir.I64, accepted), c64(1)), accepted)
			// annulus index: floor(max(|gx|, |gy|))
			ax := b.CallNamed("fabs", gx)
			ay := b.CallNamed("fabs", gy)
			mx := b.AllocVar(ir.F64)
			gt := b.FCmp(ir.PredOGT, ax, ay)
			b.If(gt, func() { b.Store(ax, mx) }, func() { b.Store(ay, mx) })
			l := b.FPToSI(ir.I64, b.CallNamed("floor", b.Load(ir.F64, mx)))
			inRange := b.ICmp(ir.PredSLT, l, c64(annuli))
			b.If(inRange, func() {
				old := b.LoadElem(ir.I64, gQ, l)
				b.StoreElem(ir.I64, gQ, l, b.Add(old, c64(1)))
			}, nil)
		}, nil)
	})

	b.PrintI64(b.Load(ir.I64, accepted))
	b.PrintF64(b.Load(ir.F64, sx))
	b.PrintF64(b.Load(ir.F64, sy))
	b.ForLoop("dump", c64(0), c64(annuli), c64(1), func(l ir.Value) {
		b.PrintI64(b.LoadElem(ir.I64, gQ, l))
	})
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildCG is a compact conjugate-gradient solve (the NAS CG kernel's
// core): a sparse symmetric positive-definite system — here the 1-D
// Laplacian — iterated to a small residual.
func buildCG() *ir.Module {
	const (
		n     = 48
		iters = 8
	)
	m := ir.NewModule("cg")
	r := newLCG(79)

	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.f64()*2 - 1
	}
	gB := m.NewGlobalF64("rhs", rhs)
	gX := m.NewGlobalF64("x", make([]float64, n))
	gR := m.NewGlobalF64("r", make([]float64, n))
	gP := m.NewGlobalF64("p", make([]float64, n))
	gAp := m.NewGlobalF64("ap", make([]float64, n))

	// spmv: Ap = A·p for the tridiagonal Laplacian (2 on the diagonal,
	// -1 off diagonal).
	spmv := m.NewFunction("spmv", ir.Void)
	{
		b := ir.NewBuilder(spmv)
		b.ForLoop("row", c64(0), c64(n), c64(1), func(i ir.Value) {
			acc := b.AllocVar(ir.F64)
			b.Store(b.FMul(cf(2), b.LoadElem(ir.F64, gP, i)), acc)
			hasL := b.ICmp(ir.PredSGT, i, c64(0))
			b.If(hasL, func() {
				l := b.LoadElem(ir.F64, gP, b.Sub(i, c64(1)))
				b.Store(b.FSub(b.Load(ir.F64, acc), l), acc)
			}, nil)
			hasR := b.ICmp(ir.PredSLT, i, c64(n-1))
			b.If(hasR, func() {
				rv := b.LoadElem(ir.F64, gP, b.Add(i, c64(1)))
				b.Store(b.FSub(b.Load(ir.F64, acc), rv), acc)
			}, nil)
			b.StoreElem(ir.F64, gAp, i, b.Load(ir.F64, acc))
		})
		b.Ret(nil)
	}

	// dot(a, b) over the fixed-size vectors, selected by integer tag to
	// keep the signature simple: 0=r·r, 1=p·Ap.
	dot := m.NewFunction("dot", ir.F64, ir.I64)
	{
		b := ir.NewBuilder(dot)
		which := dot.Params[0]
		acc := b.AllocVar(ir.F64)
		b.Store(cf(0), acc)
		isRR := b.ICmp(ir.PredEQ, which, c64(0))
		b.If(isRR, func() {
			b.ForLoop("rr", c64(0), c64(n), c64(1), func(i ir.Value) {
				v := b.LoadElem(ir.F64, gR, i)
				b.Store(b.FAdd(b.Load(ir.F64, acc), b.FMul(v, v)), acc)
			})
		}, func() {
			b.ForLoop("pap", c64(0), c64(n), c64(1), func(i ir.Value) {
				p := b.LoadElem(ir.F64, gP, i)
				ap := b.LoadElem(ir.F64, gAp, i)
				b.Store(b.FAdd(b.Load(ir.F64, acc), b.FMul(p, ap)), acc)
			})
		})
		b.Ret(b.Load(ir.F64, acc))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	// x = 0, r = p = rhs.
	b.ForLoop("init", c64(0), c64(n), c64(1), func(i ir.Value) {
		v := b.LoadElem(ir.F64, gB, i)
		b.StoreElem(ir.F64, gX, i, cf(0))
		b.StoreElem(ir.F64, gR, i, v)
		b.StoreElem(ir.F64, gP, i, v)
	})
	rsOld := b.AllocVar(ir.F64)
	b.Store(b.Call(dot, c64(0)), rsOld)

	b.ForLoop("iter", c64(0), c64(iters), c64(1), func(_ ir.Value) {
		b.Call(spmv)
		pap := b.Call(dot, c64(1))
		alpha := b.FDiv(b.Load(ir.F64, rsOld), pap)
		b.ForLoop("upd", c64(0), c64(n), c64(1), func(i ir.Value) {
			x := b.LoadElem(ir.F64, gX, i)
			p := b.LoadElem(ir.F64, gP, i)
			b.StoreElem(ir.F64, gX, i, b.FAdd(x, b.FMul(alpha, p)))
			rv := b.LoadElem(ir.F64, gR, i)
			ap := b.LoadElem(ir.F64, gAp, i)
			b.StoreElem(ir.F64, gR, i, b.FSub(rv, b.FMul(alpha, ap)))
		})
		rsNew := b.Call(dot, c64(0))
		beta := b.FDiv(rsNew, b.Load(ir.F64, rsOld))
		b.ForLoop("dir", c64(0), c64(n), c64(1), func(i ir.Value) {
			rv := b.LoadElem(ir.F64, gR, i)
			p := b.LoadElem(ir.F64, gP, i)
			b.StoreElem(ir.F64, gP, i, b.FAdd(rv, b.FMul(beta, p)))
		})
		b.Store(rsNew, rsOld)
	})

	b.PrintF64(b.CallNamed("sqrt", b.Load(ir.F64, rsOld)))
	sum := b.AllocVar(ir.F64)
	b.Store(cf(0), sum)
	b.ForLoop("ck", c64(0), c64(n), c64(1), func(i ir.Value) {
		b.Store(b.FAdd(b.Load(ir.F64, sum), b.LoadElem(ir.F64, gX, i)), sum)
	})
	b.PrintF64(b.Load(ir.F64, sum))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildIS is the NAS integer sort kernel: bucketed counting sort of
// LCG-generated keys with a ranking verification pass.
func buildIS() *ir.Module {
	const (
		keys    = 768
		buckets = 128
	)
	m := ir.NewModule("is")
	r := newLCG(97)

	ks := make([]int64, keys)
	for i := range ks {
		ks[i] = r.intn(buckets)
	}
	gK := m.NewGlobalI64("keys", ks)
	gC := m.NewGlobalI64("count", make([]int64, buckets))
	gS := m.NewGlobalI64("sorted", make([]int64, keys))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	// Histogram.
	b.ForLoop("hist", c64(0), c64(keys), c64(1), func(i ir.Value) {
		k := b.LoadElem(ir.I64, gK, i)
		c := b.LoadElem(ir.I64, gC, k)
		b.StoreElem(ir.I64, gC, k, b.Add(c, c64(1)))
	})
	// Exclusive prefix sum.
	acc := b.AllocVar(ir.I64)
	b.Store(c64(0), acc)
	b.ForLoop("scan", c64(0), c64(buckets), c64(1), func(bk ir.Value) {
		c := b.LoadElem(ir.I64, gC, bk)
		b.StoreElem(ir.I64, gC, bk, b.Load(ir.I64, acc))
		b.Store(b.Add(b.Load(ir.I64, acc), c), acc)
	})
	// Scatter.
	b.ForLoop("scat", c64(0), c64(keys), c64(1), func(i ir.Value) {
		k := b.LoadElem(ir.I64, gK, i)
		pos := b.LoadElem(ir.I64, gC, k)
		b.StoreElem(ir.I64, gS, pos, k)
		b.StoreElem(ir.I64, gC, k, b.Add(pos, c64(1)))
	})
	// Verify ranking and digest.
	bad := b.AllocVar(ir.I64)
	sum := b.AllocVar(ir.I64)
	b.Store(c64(0), bad)
	b.Store(c64(0), sum)
	b.ForLoop("ver", c64(1), c64(keys), c64(1), func(i ir.Value) {
		prev := b.LoadElem(ir.I64, gS, b.Sub(i, c64(1)))
		cur := b.LoadElem(ir.I64, gS, i)
		oo := b.ICmp(ir.PredSGT, prev, cur)
		b.If(oo, func() {
			b.Store(b.Add(b.Load(ir.I64, bad), c64(1)), bad)
		}, nil)
		b.Store(b.Add(b.Mul(b.Load(ir.I64, sum), c64(3)), cur), sum)
	})
	b.PrintI64(b.Load(ir.I64, bad))
	b.PrintI64(b.Load(ir.I64, sum))
	b.PrintI64(b.LoadElem(ir.I64, gS, c64(keys/2)))
	b.Ret(c64(0))
	return mustVerify(m)
}
