package bench

import (
	"testing"

	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("expected the paper's 16 benchmarks, have %d", len(all))
	}
	want := []string{
		"backprop", "bfs", "pathfinder", "lud", "needle", "knn",
		"ep", "cg", "is", "fft2", "quicksort", "basicmath",
		"susan", "crc32", "stringsearch", "patricia",
	}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("position %d: got %s, want %s (Table 1 order)", i, b.Name, want[i])
		}
		if b.Suite == "" || b.Domain == "" {
			t.Errorf("%s: missing suite/domain metadata", b.Name)
		}
	}
}

func TestBenchmarksRunCleanBothLayers(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			m := bm.Build()
			if err := m.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			prog, err := backend.Lower(m)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			mc, err := machine.New(m, prog)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}
			ip := interp.New(m)
			ri := ip.Run(sim.Fault{}, sim.Options{})
			rm := mc.Run(sim.Fault{}, sim.Options{})
			if ri.Status != sim.StatusOK {
				t.Fatalf("IR run: %v (%v)", ri.Status, ri.Trap)
			}
			if rm.Status != sim.StatusOK {
				t.Fatalf("asm run: %v (%v) at %s", rm.Status, rm.Trap, mc.PCInfo(mc.LastPC()))
			}
			if string(ri.Output) != string(rm.Output) {
				t.Fatalf("cross-layer outputs differ:\nIR:  %q\nasm: %q", ri.Output, rm.Output)
			}
			if len(ri.Output) == 0 {
				t.Fatal("benchmark prints nothing; SDCs would be unobservable")
			}
			if ri.DynInstrs < 5_000 {
				t.Errorf("only %d dynamic instructions; too small for meaningful fault injection", ri.DynInstrs)
			}
			if ri.DynInstrs > 3_000_000 {
				t.Errorf("%d dynamic instructions; campaigns would be too slow", ri.DynInstrs)
			}
			t.Logf("%s: %d IR dyn instrs, %d asm dyn instrs, %d output bytes",
				bm.Name, ri.DynInstrs, rm.DynInstrs, len(ri.Output))
		})
	}
}

func TestBenchmarksDeterministicAcrossBuilds(t *testing.T) {
	for _, bm := range All() {
		m1 := bm.Build()
		m2 := bm.Build()
		r1 := interp.New(m1).Run(sim.Fault{}, sim.Options{})
		r2 := interp.New(m2).Run(sim.Fault{}, sim.Options{})
		if string(r1.Output) != string(r2.Output) || r1.DynInstrs != r2.DynInstrs {
			t.Errorf("%s: two builds disagree", bm.Name)
		}
	}
}
