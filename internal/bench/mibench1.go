package bench

import (
	"math"

	"flowery/internal/ir"
)

func init() {
	register(Benchmark{Name: "fft2", Suite: "MiBench", Domain: "Signal Processing", Build: buildFFT2})
	register(Benchmark{Name: "quicksort", Suite: "MiBench", Domain: "Sort Algorithm", Build: buildQuicksort})
	register(Benchmark{Name: "basicmath", Suite: "MiBench", Domain: "Mathematical Calculations", Build: buildBasicmath})
}

// buildFFT2 is an iterative radix-2 Cooley–Tukey FFT over a synthetic
// waveform (the MiBench fft benchmark), reporting spectral magnitudes.
func buildFFT2() *ir.Module {
	const (
		n    = 32
		logN = 5
	)
	m := ir.NewModule("fft2")

	// Input: superposition of two tones, baked at build time.
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / n
		re[i] = math.Sin(2*math.Pi*3*t) + 0.5*math.Cos(2*math.Pi*7*t)
	}
	gRe := m.NewGlobalF64("re", re)
	gIm := m.NewGlobalF64("im", im)

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	// Bit-reversal permutation.
	b.ForLoop("rev", c64(0), c64(n), c64(1), func(i ir.Value) {
		// Reverse logN bits of i.
		rev := b.AllocVar(ir.I64)
		tmp := b.AllocVar(ir.I64)
		b.Store(c64(0), rev)
		b.Store(i, tmp)
		b.ForLoop("bit", c64(0), c64(logN), c64(1), func(_ ir.Value) {
			rv := b.Load(ir.I64, rev)
			tv := b.Load(ir.I64, tmp)
			b.Store(b.Or(b.Shl(rv, c64(1)), b.And(tv, c64(1))), rev)
			b.Store(b.AShr(tv, c64(1)), tmp)
		})
		j := b.Load(ir.I64, rev)
		lt := b.ICmp(ir.PredSLT, i, j)
		b.If(lt, func() {
			ri := b.LoadElem(ir.F64, gRe, i)
			rj := b.LoadElem(ir.F64, gRe, j)
			b.StoreElem(ir.F64, gRe, i, rj)
			b.StoreElem(ir.F64, gRe, j, ri)
			ii := b.LoadElem(ir.F64, gIm, i)
			ij := b.LoadElem(ir.F64, gIm, j)
			b.StoreElem(ir.F64, gIm, i, ij)
			b.StoreElem(ir.F64, gIm, j, ii)
		}, nil)
	})

	// Butterfly stages.
	lenSlot := b.AllocVar(ir.I64)
	b.Store(c64(2), lenSlot)
	b.While("stage", func() ir.Value {
		return b.ICmp(ir.PredSLE, b.Load(ir.I64, lenSlot), c64(n))
	}, func() {
		l := b.Load(ir.I64, lenSlot)
		half := b.SDiv(l, c64(2))
		ang := b.FDiv(cf(-2*math.Pi), b.SIToFP(l))
		start := b.AllocVar(ir.I64)
		b.Store(c64(0), start)
		b.While("group", func() ir.Value {
			return b.ICmp(ir.PredSLT, b.Load(ir.I64, start), c64(n))
		}, func() {
			s := b.Load(ir.I64, start)
			b.ForLoop("bfly", c64(0), half, c64(1), func(k ir.Value) {
				theta := b.FMul(ang, b.SIToFP(k))
				wr := b.CallNamed("cos", theta)
				wi := b.CallNamed("sin", theta)
				i0 := b.Add(s, k)
				i1 := b.Add(i0, half)
				ar := b.LoadElem(ir.F64, gRe, i0)
				ai := b.LoadElem(ir.F64, gIm, i0)
				br2 := b.LoadElem(ir.F64, gRe, i1)
				bi2 := b.LoadElem(ir.F64, gIm, i1)
				tr := b.FSub(b.FMul(wr, br2), b.FMul(wi, bi2))
				ti := b.FAdd(b.FMul(wr, bi2), b.FMul(wi, br2))
				b.StoreElem(ir.F64, gRe, i0, b.FAdd(ar, tr))
				b.StoreElem(ir.F64, gIm, i0, b.FAdd(ai, ti))
				b.StoreElem(ir.F64, gRe, i1, b.FSub(ar, tr))
				b.StoreElem(ir.F64, gIm, i1, b.FSub(ai, ti))
			})
			b.Store(b.Add(b.Load(ir.I64, start), l), start)
		})
		b.Store(b.Mul(l, c64(2)), lenSlot)
	})

	// Digest: magnitudes of the first half of the spectrum.
	b.ForLoop("mag", c64(0), c64(n/2), c64(1), func(i ir.Value) {
		rv := b.LoadElem(ir.F64, gRe, i)
		iv := b.LoadElem(ir.F64, gIm, i)
		b.PrintF64(b.CallNamed("sqrt", b.FAdd(b.FMul(rv, rv), b.FMul(iv, iv))))
	})
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildQuicksort is recursive quicksort with Lomuto partitioning (the
// MiBench qsort benchmark). The recursion exercises the calling
// convention and frame management heavily — at assembly level that is
// where call and mapping penetrations concentrate.
func buildQuicksort() *ir.Module {
	const n = 160
	m := ir.NewModule("quicksort")
	r := newLCG(101)

	arr := make([]int64, n)
	for i := range arr {
		arr[i] = r.intn(100000)
	}
	gA := m.NewGlobalI64("arr", arr)

	// qsort(lo, hi): sort gA[lo..hi] inclusive.
	qs := m.NewFunction("qsort", ir.Void, ir.I64, ir.I64)
	{
		b := ir.NewBuilder(qs)
		lo, hi := qs.Params[0], qs.Params[1]
		done := b.ICmp(ir.PredSGE, lo, hi)
		exit := b.NewBlock("exit")
		body := b.NewBlock("body")
		b.CondBr(done, exit, body)

		b.SetBlock(exit)
		b.Ret(nil)

		b.SetBlock(body)
		pivot := b.LoadElem(ir.I64, gA, hi)
		iSlot := b.AllocVar(ir.I64)
		b.Store(b.Sub(lo, c64(1)), iSlot)
		jSlot := b.AllocVar(ir.I64)
		b.Store(lo, jSlot)
		b.While("part", func() ir.Value {
			return b.ICmp(ir.PredSLT, b.Load(ir.I64, jSlot), hi)
		}, func() {
			j := b.Load(ir.I64, jSlot)
			aj := b.LoadElem(ir.I64, gA, j)
			le := b.ICmp(ir.PredSLE, aj, pivot)
			b.If(le, func() {
				i := b.Add(b.Load(ir.I64, iSlot), c64(1))
				b.Store(i, iSlot)
				ai := b.LoadElem(ir.I64, gA, i)
				b.StoreElem(ir.I64, gA, i, aj)
				b.StoreElem(ir.I64, gA, j, ai)
			}, nil)
			b.Store(b.Add(j, c64(1)), jSlot)
		})
		p := b.Add(b.Load(ir.I64, iSlot), c64(1))
		ap := b.LoadElem(ir.I64, gA, p)
		ah := b.LoadElem(ir.I64, gA, hi)
		b.StoreElem(ir.I64, gA, p, ah)
		b.StoreElem(ir.I64, gA, hi, ap)
		b.Call(qs, lo, b.Sub(p, c64(1)))
		b.Call(qs, b.Add(p, c64(1)), hi)
		b.Ret(nil)
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Call(qs, c64(0), c64(n-1))

	// Digest: order violations (must be 0), rolling checksum, median.
	bad := b.AllocVar(ir.I64)
	sum := b.AllocVar(ir.I64)
	b.Store(c64(0), bad)
	b.Store(c64(0), sum)
	b.ForLoop("ck", c64(1), c64(n), c64(1), func(i ir.Value) {
		prev := b.LoadElem(ir.I64, gA, b.Sub(i, c64(1)))
		cur := b.LoadElem(ir.I64, gA, i)
		gt := b.ICmp(ir.PredSGT, prev, cur)
		b.If(gt, func() { b.Store(b.Add(b.Load(ir.I64, bad), c64(1)), bad) }, nil)
		b.Store(b.Add(b.Mul(b.Load(ir.I64, sum), c64(3)), cur), sum)
	})
	b.PrintI64(b.Load(ir.I64, bad))
	b.PrintI64(b.Load(ir.I64, sum))
	b.PrintI64(b.LoadElem(ir.I64, gA, c64(n/2)))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildBasicmath reproduces the MiBench basicmath kernels: cube roots by
// Newton iteration, integer square roots by the bitwise method, and
// angle conversions.
func buildBasicmath() *ir.Module {
	const vals = 24
	m := ir.NewModule("basicmath")
	r := newLCG(113)

	xs := make([]float64, vals)
	for i := range xs {
		xs[i] = r.f64()*2000 + 1
	}
	ints := make([]int64, vals)
	for i := range ints {
		ints[i] = r.intn(1 << 30)
	}
	gX := m.NewGlobalF64("xs", xs)
	gI := m.NewGlobalI64("ints", ints)

	// cbrt(x) by Newton iteration.
	cbrt := m.NewFunction("cbrt", ir.F64, ir.F64)
	{
		b := ir.NewBuilder(cbrt)
		x := cbrt.Params[0]
		y := b.AllocVar(ir.F64)
		b.Store(b.FDiv(x, cf(3)), y)
		b.ForLoop("newton", c64(0), c64(12), c64(1), func(_ ir.Value) {
			yv := b.Load(ir.F64, y)
			y2 := b.FMul(yv, yv)
			// y' = (2y + x/y²) / 3
			b.Store(b.FDiv(b.FAdd(b.FMul(cf(2), yv), b.FDiv(x, y2)), cf(3)), y)
		})
		b.Ret(b.Load(ir.F64, y))
	}

	// isqrt(v) by the classic bitwise method.
	isqrt := m.NewFunction("isqrt", ir.I64, ir.I64)
	{
		b := ir.NewBuilder(isqrt)
		v := isqrt.Params[0]
		rem := b.AllocVar(ir.I64)
		root := b.AllocVar(ir.I64)
		place := b.AllocVar(ir.I64)
		b.Store(v, rem)
		b.Store(c64(0), root)
		b.Store(c64(1<<30), place)
		b.While("fit", func() ir.Value {
			return b.ICmp(ir.PredSGT, b.Load(ir.I64, place), v)
		}, func() {
			b.Store(b.AShr(b.Load(ir.I64, place), c64(2)), place)
		})
		b.While("iter", func() ir.Value {
			return b.ICmp(ir.PredSGT, b.Load(ir.I64, place), c64(0))
		}, func() {
			rv := b.Load(ir.I64, rem)
			rt := b.Load(ir.I64, root)
			pl := b.Load(ir.I64, place)
			sum := b.Add(rt, pl)
			ge := b.ICmp(ir.PredSGE, rv, sum)
			b.If(ge, func() {
				b.Store(b.Sub(rv, sum), rem)
				b.Store(b.Add(rt, b.Mul(pl, c64(2))), root)
			}, nil)
			b.Store(b.AShr(b.Load(ir.I64, root), c64(1)), root)
			b.Store(b.AShr(b.Load(ir.I64, place), c64(2)), place)
		})
		b.Ret(b.Load(ir.I64, root))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	fsum := b.AllocVar(ir.F64)
	isum := b.AllocVar(ir.I64)
	b.Store(cf(0), fsum)
	b.Store(c64(0), isum)
	b.ForLoop("cb", c64(0), c64(vals), c64(1), func(i ir.Value) {
		x := b.LoadElem(ir.F64, gX, i)
		b.Store(b.FAdd(b.Load(ir.F64, fsum), b.Call(cbrt, x)), fsum)
	})
	b.ForLoop("is", c64(0), c64(vals), c64(1), func(i ir.Value) {
		v := b.LoadElem(ir.I64, gI, i)
		b.Store(b.Add(b.Load(ir.I64, isum), b.Call(isqrt, v)), isum)
	})
	// Degree/radian round trips.
	dsum := b.AllocVar(ir.F64)
	b.Store(cf(0), dsum)
	b.ForLoop("deg", c64(0), c64(360), c64(30), func(d ir.Value) {
		rad := b.FMul(b.SIToFP(d), cf(math.Pi/180))
		back := b.FMul(rad, cf(180/math.Pi))
		b.Store(b.FAdd(b.Load(ir.F64, dsum), b.FAdd(b.CallNamed("sin", rad), back)), dsum)
	})
	b.PrintF64(b.Load(ir.F64, fsum))
	b.PrintI64(b.Load(ir.I64, isum))
	b.PrintF64(b.Load(ir.F64, dsum))
	b.Ret(c64(0))
	return mustVerify(m)
}
