package bench

import (
	"fmt"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"flowery/internal/interp"
	"flowery/internal/sim"
)

// These tests validate the benchmark implementations against independent
// Go reference computations: the IR program and the reference must agree
// on the printed results.

func runBenchmark(t *testing.T, name string) []string {
	t.Helper()
	bm, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	res := interp.New(bm.Build()).Run(sim.Fault{}, sim.Options{})
	if res.Status != sim.StatusOK {
		t.Fatalf("%s: %v (%v)", name, res.Status, res.Trap)
	}
	return strings.Fields(string(res.Output))
}

func TestCRC32AgainstStdlib(t *testing.T) {
	// Rebuild the exact message bytes the benchmark bakes in.
	r := newLCG(131)
	msg := make([]byte, 256)
	for i := range msg {
		msg[i] = byte(r.intn(256))
	}
	want := crc32.ChecksumIEEE(msg)
	out := runBenchmark(t, "crc32")
	if len(out) != 1 {
		t.Fatalf("unexpected output shape: %v", out)
	}
	if got := fmt.Sprint(want); out[0] != got {
		t.Fatalf("IR CRC32 = %s, stdlib = %s", out[0], got)
	}
}

func TestNeedleAgainstReference(t *testing.T) {
	// Reference Needleman–Wunsch with the same parameters.
	r := newLCG(53)
	const lenA, lenB, gap = 28, 28, -2
	seqA := make([]int64, lenA)
	seqB := make([]int64, lenB)
	for i := range seqA {
		seqA[i] = r.intn(4)
	}
	for i := range seqB {
		seqB[i] = r.intn(4)
	}
	dp := make([][]int64, lenA+1)
	for i := range dp {
		dp[i] = make([]int64, lenB+1)
	}
	for i := 0; i <= lenA; i++ {
		dp[i][0] = int64(i) * gap
	}
	for j := 0; j <= lenB; j++ {
		dp[0][j] = int64(j) * gap
	}
	max := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	for i := 1; i <= lenA; i++ {
		for j := 1; j <= lenB; j++ {
			score := int64(-1)
			if seqA[i-1] == seqB[j-1] {
				score = 3
			}
			dp[i][j] = max(dp[i-1][j-1]+score, max(dp[i-1][j]+gap, dp[i][j-1]+gap))
		}
	}
	out := runBenchmark(t, "needle")
	if out[0] != fmt.Sprint(dp[lenA][lenB]) {
		t.Fatalf("IR alignment score %s, reference %d", out[0], dp[lenA][lenB])
	}
}

func TestStringsearchAgainstReference(t *testing.T) {
	text := "it was the best of times it was the worst of times " +
		"it was the age of wisdom it was the age of foolishness " +
		"it was the epoch of belief it was the epoch of incredulity " +
		"it was the season of light it was the season of darkness"
	patterns := []string{"season", "wisdom", "epoch of belief", "zzzz", "times it"}
	out := runBenchmark(t, "stringsearch")
	if len(out) != len(patterns)+1 {
		t.Fatalf("unexpected output shape: %v", out)
	}
	for i, p := range patterns {
		want := strings.Index(text, p)
		if out[i] != fmt.Sprint(want) {
			t.Errorf("pattern %q: IR found %s, strings.Index found %d", p, out[i], want)
		}
	}
}

func TestQuicksortSortsCorrectly(t *testing.T) {
	out := runBenchmark(t, "quicksort")
	// First printed value is the count of order violations.
	if out[0] != "0" {
		t.Fatalf("quicksort left %s order violations", out[0])
	}
}

func TestISSortsCorrectly(t *testing.T) {
	out := runBenchmark(t, "is")
	if out[0] != "0" {
		t.Fatalf("integer sort left %s order violations", out[0])
	}
}

func TestBFSReachability(t *testing.T) {
	out := runBenchmark(t, "bfs")
	// Second printed value is the distance of the last node; the graph
	// generator biases edges forward so it must be reachable (≥ 0).
	if strings.HasPrefix(out[1], "-") {
		t.Fatalf("last node unreachable: distance %s", out[1])
	}
}

func TestPatriciaHitCount(t *testing.T) {
	// Half the lookups are guaranteed hits by construction.
	out := runBenchmark(t, "patricia")
	var hits int
	fmt.Sscan(out[0], &hits)
	if hits < 32 {
		t.Fatalf("only %d hits; inserted keys not found", hits)
	}
}

func TestKNNDistancesSorted(t *testing.T) {
	out := runBenchmark(t, "knn")
	// Output alternates index, distance × 5 rounds; distances ascend.
	var prev float64 = -1
	for i := 1; i < len(out); i += 2 {
		var d float64
		if _, err := fmt.Sscan(out[i], &d); err != nil {
			t.Fatalf("bad distance %q", out[i])
		}
		if d < prev {
			t.Fatalf("kNN distances not ascending: %v then %v", prev, d)
		}
		prev = d
	}
}

func TestLUDDeterminantPositive(t *testing.T) {
	// The matrix is diagonally dominant with positive diagonal, so the
	// determinant (product of U's diagonal) must be positive.
	out := runBenchmark(t, "lud")
	var det float64
	if _, err := fmt.Sscan(out[1], &det); err != nil {
		t.Fatalf("bad determinant %q", out[1])
	}
	if det <= 0 {
		t.Fatalf("determinant %v not positive", det)
	}
}

func TestCGResidualShrinks(t *testing.T) {
	// Compute the initial residual norm ‖rhs‖ from the same baked data;
	// eight CG iterations on the 1-D Laplacian (condition number ~n²)
	// will not converge fully but must shrink it substantially.
	r := newLCG(79)
	initial := 0.0
	for i := 0; i < 48; i++ {
		v := r.f64()*2 - 1
		initial += v * v
	}
	initial = math.Sqrt(initial)
	out := runBenchmark(t, "cg")
	var resid float64
	if _, err := fmt.Sscan(out[0], &resid); err != nil {
		t.Fatalf("bad residual %q", out[0])
	}
	if resid < 0 || resid > initial/2 {
		t.Fatalf("CG residual %v did not shrink from initial %v", resid, initial)
	}
}

func TestEPAcceptanceRate(t *testing.T) {
	// Marsaglia polar accepts with probability π/4 ≈ 0.785.
	out := runBenchmark(t, "ep")
	var accepted int
	fmt.Sscan(out[0], &accepted)
	rate := float64(accepted) / 320
	if rate < 0.68 || rate > 0.88 {
		t.Fatalf("acceptance rate %.2f implausible for π/4", rate)
	}
}

func TestFFT2PeaksAtInputTones(t *testing.T) {
	// The input is sin(2π·3t) + 0.5·cos(2π·7t): bins 3 and 7 must carry
	// far more energy than every other bin of the half-spectrum.
	out := runBenchmark(t, "fft2")
	mags := make([]float64, len(out))
	for i, s := range out {
		fmt.Sscan(s, &mags[i])
	}
	for i, m := range mags {
		if i == 3 || i == 7 {
			if m < 4 {
				t.Fatalf("bin %d magnitude %v too small for a tone", i, m)
			}
			continue
		}
		if m > 1 {
			t.Fatalf("bin %d magnitude %v too large (spectral leakage?)", i, m)
		}
	}
}
