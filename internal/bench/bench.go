// Package bench re-implements the paper's 16 benchmarks (Table 1) as IR
// programs: six Rodinia kernels, three NAS Parallel Benchmarks kernels,
// and seven MiBench programs. Each benchmark builds a self-contained
// module with deterministic inputs baked into globals and a printed
// output digest, so silent data corruption anywhere in its state is
// observable.
//
// Input sizes are scaled down from the paper's (which run up to 4.9
// billion dynamic instructions) to keep simulator-based Monte-Carlo
// campaigns tractable; SDC probabilities and coverages are per-dynamic-
// instruction ratios, so the scaling preserves the quantities under
// study. See DESIGN.md §1.
package bench

import (
	"fmt"
	"sort"

	"flowery/internal/ir"
)

// Benchmark describes one program of the suite.
type Benchmark struct {
	Name   string
	Suite  string
	Domain string
	// Build constructs a fresh module. Each call returns an independent
	// module (passes mutate modules in place).
	Build func() *ir.Module
}

var registry []Benchmark

func register(b Benchmark) {
	registry = append(registry, b)
}

// All returns the benchmarks in the paper's Table 1 order.
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		return tableOrder[out[i].Name] < tableOrder[out[j].Name]
	})
	return out
}

// tableOrder mirrors Table 1 of the paper.
var tableOrder = map[string]int{
	"backprop": 0, "bfs": 1, "pathfinder": 2, "lud": 3,
	"needle": 4, "knn": 5, "ep": 6, "cg": 7, "is": 8,
	"fft2": 9, "quicksort": 10, "basicmath": 11, "susan": 12,
	"crc32": 13, "stringsearch": 14, "patricia": 15,
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists benchmark names in table order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// lcg is the deterministic generator used to bake input data into
// globals (a 48-bit LCG, the classic drand48 parameters).
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed} }

func (l *lcg) next() uint64 {
	l.state = (l.state*0x5DEECE66D + 0xB) & ((1 << 48) - 1)
	return l.state
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int64) int64 { return int64(l.next() % uint64(n)) }

// f64 returns a value in [0, 1).
func (l *lcg) f64() float64 { return float64(l.next()) / float64(1<<48) }

// mustVerify panics if the constructed module is malformed — benchmark
// construction bugs should fail fast and loudly.
func mustVerify(m *ir.Module) *ir.Module {
	if err := m.Verify(); err != nil {
		panic(fmt.Sprintf("bench %s: %v", m.Name, err))
	}
	return m
}

// Builder shorthands used across the benchmark files.

func c64(v int64) *ir.Const  { return ir.ConstInt(ir.I64, v) }
func c32(v int64) *ir.Const  { return ir.ConstInt(ir.I32, v) }
func cf(v float64) *ir.Const { return ir.ConstFloat(v) }
func cb(v bool) *ir.Const    { return ir.ConstBool(v) }
