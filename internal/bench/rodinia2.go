package bench

import "flowery/internal/ir"

func init() {
	register(Benchmark{Name: "lud", Suite: "Rodinia", Domain: "Linear Algebra", Build: buildLUD})
	register(Benchmark{Name: "needle", Suite: "Rodinia", Domain: "Dynamic Programming", Build: buildNeedle})
	register(Benchmark{Name: "knn", Suite: "Rodinia", Domain: "Machine Learning", Build: buildKNN})
}

// buildLUD is in-place LU decomposition without pivoting (the Rodinia
// lud kernel) on a diagonally dominant matrix, followed by a
// reconstruction check of one matrix entry.
func buildLUD() *ir.Module {
	const n = 10
	m := ir.NewModule("lud")
	r := newLCG(41)

	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := r.f64()*2 - 1
				a[i*n+j] = v
				if v < 0 {
					rowSum -= v
				} else {
					rowSum += v
				}
			}
		}
		a[i*n+i] = rowSum + 1 + r.f64() // diagonally dominant
	}
	gA := m.NewGlobalF64("a", a)

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	idx := func(i, j ir.Value) ir.Value { return b.Add(b.Mul(i, c64(n)), j) }

	b.ForLoop("k", c64(0), c64(n), c64(1), func(k ir.Value) {
		piv := b.LoadElem(ir.F64, gA, idx(k, k))
		b.ForLoop("i", b.Add(k, c64(1)), c64(n), c64(1), func(i ir.Value) {
			lik := b.FDiv(b.LoadElem(ir.F64, gA, idx(i, k)), piv)
			b.StoreElem(ir.F64, gA, idx(i, k), lik)
			b.ForLoop("j", b.Add(k, c64(1)), c64(n), c64(1), func(j ir.Value) {
				aij := b.LoadElem(ir.F64, gA, idx(i, j))
				akj := b.LoadElem(ir.F64, gA, idx(k, j))
				b.StoreElem(ir.F64, gA, idx(i, j), b.FSub(aij, b.FMul(lik, akj)))
			})
		})
	})

	// Digest: checksum of the factorized matrix and the diagonal product
	// (the determinant).
	sum := b.AllocVar(ir.F64)
	det := b.AllocVar(ir.F64)
	b.Store(cf(0), sum)
	b.Store(cf(1), det)
	b.ForLoop("ck", c64(0), c64(n*n), c64(1), func(i ir.Value) {
		v := b.LoadElem(ir.F64, gA, i)
		b.Store(b.FAdd(b.Load(ir.F64, sum), b.CallNamed("fabs", v)), sum)
	})
	b.ForLoop("dg", c64(0), c64(n), c64(1), func(i ir.Value) {
		v := b.LoadElem(ir.F64, gA, idx(i, i))
		b.Store(b.FMul(b.Load(ir.F64, det), v), det)
	})
	b.PrintF64(b.Load(ir.F64, sum))
	b.PrintF64(b.Load(ir.F64, det))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildNeedle is Needleman–Wunsch sequence alignment (the Rodinia
// needle kernel): full DP matrix with substitution scores and a gap
// penalty, reporting the alignment score.
func buildNeedle() *ir.Module {
	const (
		lenA = 28
		lenB = 28
		gap  = -2
	)
	m := ir.NewModule("needle")
	r := newLCG(53)

	seqA := make([]int64, lenA)
	seqB := make([]int64, lenB)
	for i := range seqA {
		seqA[i] = r.intn(4)
	}
	for i := range seqB {
		seqB[i] = r.intn(4)
	}
	gA := m.NewGlobalI64("seqa", seqA)
	gB := m.NewGlobalI64("seqb", seqB)
	gM := m.NewGlobalI64("dp", make([]int64, (lenA+1)*(lenB+1)))

	max2 := m.NewFunction("max2", ir.I64, ir.I64, ir.I64)
	{
		b := ir.NewBuilder(max2)
		x, y := max2.Params[0], max2.Params[1]
		res := b.AllocVar(ir.I64)
		gt := b.ICmp(ir.PredSGT, x, y)
		b.If(gt, func() { b.Store(x, res) }, func() { b.Store(y, res) })
		b.Ret(b.Load(ir.I64, res))
	}

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	idx := func(i, j ir.Value) ir.Value { return b.Add(b.Mul(i, c64(lenB+1)), j) }

	b.ForLoop("bi", c64(0), c64(lenA+1), c64(1), func(i ir.Value) {
		b.StoreElem(ir.I64, gM, idx(i, c64(0)), b.Mul(i, c64(gap)))
	})
	b.ForLoop("bj", c64(0), c64(lenB+1), c64(1), func(j ir.Value) {
		b.StoreElem(ir.I64, gM, idx(c64(0), j), b.Mul(j, c64(gap)))
	})
	b.ForLoop("i", c64(1), c64(lenA+1), c64(1), func(i ir.Value) {
		ca := b.LoadElem(ir.I64, gA, b.Sub(i, c64(1)))
		b.ForLoop("j", c64(1), c64(lenB+1), c64(1), func(j ir.Value) {
			cbv := b.LoadElem(ir.I64, gB, b.Sub(j, c64(1)))
			scr := b.AllocVar(ir.I64)
			eq := b.ICmp(ir.PredEQ, ca, cbv)
			b.If(eq, func() { b.Store(c64(3), scr) }, func() { b.Store(c64(-1), scr) })
			diag := b.Add(b.LoadElem(ir.I64, gM, idx(b.Sub(i, c64(1)), b.Sub(j, c64(1)))), b.Load(ir.I64, scr))
			up := b.Add(b.LoadElem(ir.I64, gM, idx(b.Sub(i, c64(1)), j)), c64(gap))
			left := b.Add(b.LoadElem(ir.I64, gM, idx(i, b.Sub(j, c64(1)))), c64(gap))
			best := b.Call(max2, diag, b.Call(max2, up, left))
			b.StoreElem(ir.I64, gM, idx(i, j), best)
		})
	})

	// Digest: score plus a diagonal checksum.
	b.PrintI64(b.LoadElem(ir.I64, gM, idx(c64(lenA), c64(lenB))))
	sum := b.AllocVar(ir.I64)
	b.Store(c64(0), sum)
	b.ForLoop("ck", c64(0), c64(lenB+1), c64(1), func(j ir.Value) {
		v := b.LoadElem(ir.I64, gM, idx(c64(lenA), j))
		b.Store(b.Add(b.Mul(b.Load(ir.I64, sum), c64(5)), v), sum)
	})
	b.PrintI64(b.Load(ir.I64, sum))
	b.Ret(c64(0))
	return mustVerify(m)
}

// buildKNN computes k-nearest-neighbours (the Rodinia nn kernel):
// Euclidean distances from a query to a point cloud, then k rounds of
// selection to report the closest hurricanes, er, points.
func buildKNN() *ir.Module {
	const (
		points = 128
		k      = 5
	)
	m := ir.NewModule("knn")
	r := newLCG(67)

	xs := make([]float64, points)
	ys := make([]float64, points)
	for i := range xs {
		xs[i] = r.f64() * 100
		ys[i] = r.f64() * 100
	}
	gX := m.NewGlobalF64("xs", xs)
	gY := m.NewGlobalF64("ys", ys)
	gD := m.NewGlobalF64("dist", make([]float64, points))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	qx, qy := cf(42.5), cf(17.25)

	b.ForLoop("dist", c64(0), c64(points), c64(1), func(i ir.Value) {
		dx := b.FSub(b.LoadElem(ir.F64, gX, i), qx)
		dy := b.FSub(b.LoadElem(ir.F64, gY, i), qy)
		d2 := b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy))
		b.StoreElem(ir.F64, gD, i, b.CallNamed("sqrt", d2))
	})

	// k selection rounds: find the minimum, report it, erase it.
	b.ForLoop("round", c64(0), c64(k), c64(1), func(_ ir.Value) {
		bestI := b.AllocVar(ir.I64)
		bestD := b.AllocVar(ir.F64)
		b.Store(c64(0), bestI)
		b.Store(b.LoadElem(ir.F64, gD, c64(0)), bestD)
		b.ForLoop("scan", c64(1), c64(points), c64(1), func(i ir.Value) {
			d := b.LoadElem(ir.F64, gD, i)
			lt := b.FCmp(ir.PredOLT, d, b.Load(ir.F64, bestD))
			b.If(lt, func() {
				b.Store(d, bestD)
				b.Store(i, bestI)
			}, nil)
		})
		b.PrintI64(b.Load(ir.I64, bestI))
		b.PrintF64(b.Load(ir.F64, bestD))
		b.StoreElem(ir.F64, gD, b.Load(ir.I64, bestI), cf(1e18))
	})
	b.Ret(c64(0))
	return mustVerify(m)
}
