package flowery

import "flowery/internal/ir"

// postponedBranch implements the postponed branch condition check
// (paper §6.2, Figure 14).
//
// A conditional branch whose compare cannot fuse (because a checker
// separated them) lowers to mov+test+jcc; a fault in the test's RFLAGS
// result silently takes the wrong edge (branch penetration). The branch
// itself cannot be duplicated, so the patch validates it after the fact:
// the condition value is saved to a global right before the branch, and
// a checker on each outgoing edge verifies that the taken destination
// matches the saved condition, branching to the error handler otherwise.
func postponedBranch(f *ir.Function) int {
	errBB := findErrBlock(f)
	if errBB == nil {
		return 0 // function has no protected values at all
	}
	g := boolGlobal(f.Module, BranchGlobal, 0)
	patched := 0
	for _, b := range snapshot(f.Blocks) {
		term := b.Terminator()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		if term.Prot.IsChecker || term.Prot.IsFlowery {
			continue
		}
		cond, ok := term.Args[0].(*ir.Instr)
		if !ok || cond.Prot.Dup == nil {
			continue // unprotected branch: no patch at this level
		}

		// Save the condition right before the branch.
		save := &ir.Instr{
			Op: ir.OpStore, Ty: ir.Void,
			Args: []ir.Value{cond, g},
			Prot: ir.ProtMeta{IsFlowery: true},
		}
		b.InsertAt(len(b.Instrs)-1, save)

		// Verify the taken edge at both destinations.
		term.Blocks[0] = edgeCheck(f, g, errBB, term.Blocks[0], true)
		term.Blocks[1] = edgeCheck(f, g, errBB, term.Blocks[1], false)
		term.Prot.IsFlowery = true
		patched++
	}
	return patched
}

// edgeCheck builds the per-edge verification block: load the saved
// condition and require it to match the edge's polarity.
func edgeCheck(f *ir.Function, g *ir.Global, errBB, dest *ir.Block, expectTrue bool) *ir.Block {
	name := "fl.brF"
	if expectTrue {
		name = "fl.brT"
	}
	cb := f.NewBlock(name)
	ld := &ir.Instr{
		Op: ir.OpLoad, Ty: ir.I1,
		Args: []ir.Value{g},
		Prot: ir.ProtMeta{IsFlowery: true},
	}
	cb.Append(ld)
	br := &ir.Instr{
		Op: ir.OpCondBr, Ty: ir.Void,
		Args: []ir.Value{ld},
		Prot: ir.ProtMeta{IsFlowery: true},
	}
	if expectTrue {
		br.Blocks = []*ir.Block{dest, errBB}
	} else {
		br.Blocks = []*ir.Block{errBB, dest}
	}
	cb.Append(br)
	return cb
}

// findErrBlock locates the duplication pass's error handler.
func findErrBlock(f *ir.Function) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name == "dup.err" {
			return b
		}
	}
	return nil
}

func snapshot(blocks []*ir.Block) []*ir.Block {
	return append([]*ir.Block(nil), blocks...)
}
