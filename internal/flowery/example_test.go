package flowery_test

import (
	"fmt"

	"flowery/internal/backend"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// Example shows the full protection pipeline: duplicate, patch, lower,
// and observe a fault being detected at assembly level.
func Example() {
	// A toy program: out = a + b, printed.
	m := ir.NewModule("pipeline")
	ga := m.NewGlobalI64("a", []int64{40})
	gb := m.NewGlobalI64("b", []int64{2})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Add(b.Load(ir.I64, ga), b.Load(ir.I64, gb))
	b.PrintI64(v)
	b.Ret(v)

	// Protect: full duplication, then the three Flowery patches.
	if err := dup.ApplyFull(m); err != nil {
		panic(err)
	}
	if _, err := flowery.Apply(m, flowery.All()); err != nil {
		panic(err)
	}

	// Lower and execute on the assembly simulator.
	prog, err := backend.Lower(m)
	if err != nil {
		panic(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		panic(err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})
	fmt.Printf("golden: %s", golden.Output)

	// Corrupt the destination of the very first executed instruction.
	faulty := mc.Run(sim.Fault{TargetIndex: 4, Bit: 3}, sim.Options{})
	fmt.Printf("fault at site 4: %v\n", faulty.Status)
	// Output:
	// golden: 42
	// fault at site 4: detected
}
