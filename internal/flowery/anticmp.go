package flowery

import "flowery/internal/ir"

// antiCmp implements the anti-comparison duplication optimization
// (paper §6.3, Figure 15).
//
// A duplicated compare and the icmp-eq check validating it sit in one
// basic block, where the backend's block-local value numbering (modeling
// SelectionDAG CSE at -O0) proves the two compares congruent, folds the
// check to constant true, and deletes the redundant compare — leaving a
// single unprotected setcc (comparison penetration).
//
// The patch moves the duplicate compare and its check into a fresh block
// reached through an opaque guard (a load of a global the compiler
// cannot constant-fold), so the compares no longer share a block and the
// folding cannot establish congruence. Both compares then materialize,
// and the check really runs.
func antiCmp(f *ir.Function) int {
	errBB := findErrBlock(f)
	if errBB == nil {
		return 0
	}
	opq := boolGlobal(f.Module, OpaqueGlobal, 1)
	isolated := 0
	uses := useCounts(f)
	for _, b := range snapshot(f.Blocks) {
		term := b.Terminator()
		if term == nil {
			continue
		}
		chk, dup, ok := cmpCheckPattern(b, term)
		if !ok {
			continue
		}
		// The duplicate may feed further duplicated consumers; it can
		// only move if the check is its sole user.
		if uses[dup] != 1 {
			continue
		}
		// Detach dup, chk, and the checker branch from b.
		if i := b.Index(dup); i >= 0 {
			b.Remove(i)
		}
		b.Remove(b.Index(chk))
		b.Remove(b.Index(term))

		// New block holding the isolated duplicate compare and check.
		iso := f.NewBlock("fl.cmp")
		iso.Append(dup)
		iso.Append(chk)
		iso.Append(term)
		chk.Prot.IsFlowery = true

		// Opaque guard: load a global that always holds 1; the backend
		// cannot see through memory, so the edge survives and the block
		// boundary blocks the fold.
		ld := &ir.Instr{
			Op: ir.OpLoad, Ty: ir.I1,
			Args: []ir.Value{opq},
			Prot: ir.ProtMeta{IsFlowery: true},
		}
		b.Append(ld)
		guard := &ir.Instr{
			Op: ir.OpCondBr, Ty: ir.Void,
			Args:   []ir.Value{ld},
			Blocks: []*ir.Block{iso, errBB},
			Prot:   ir.ProtMeta{IsFlowery: true},
		}
		b.Append(guard)
		isolated++
	}
	return isolated
}

// useCounts tallies how many times each instruction result is consumed.
func useCounts(f *ir.Function) map[*ir.Instr]int {
	uses := make(map[*ir.Instr]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					uses[ai]++
				}
			}
		}
	}
	return uses
}

// cmpCheckPattern matches the comparison-validation tail of a block:
//
//	...
//	%dup = icmp/fcmp ...        (duplicate of an earlier compare)
//	...
//	%chk = icmp eq i1 %orig, %dup   (checker)
//	condbr %chk, cont, err          (checker)
//
// returning the check and the duplicate compare. Only integer eq checks
// over two compares are candidates — exactly the foldable pattern.
func cmpCheckPattern(b *ir.Block, term *ir.Instr) (chk, dup *ir.Instr, ok bool) {
	if term.Op != ir.OpCondBr || !term.Prot.IsChecker || term.Prot.IsFlowery {
		return nil, nil, false
	}
	chk, okc := term.Args[0].(*ir.Instr)
	if !okc || !chk.Prot.IsChecker || chk.Prot.IsFlowery {
		return nil, nil, false
	}
	if chk.Op != ir.OpICmp || chk.Pred != ir.PredEQ {
		return nil, nil, false
	}
	if chk.Parent != b || b.Index(chk) != len(b.Instrs)-2 {
		return nil, nil, false
	}
	x, okx := chk.Args[0].(*ir.Instr)
	y, oky := chk.Args[1].(*ir.Instr)
	if !okx || !oky {
		return nil, nil, false
	}
	isCmp := func(v *ir.Instr) bool { return v.Op == ir.OpICmp || v.Op == ir.OpFCmp }
	if !isCmp(x) || !isCmp(y) {
		return nil, nil, false
	}
	// Identify the duplicate copy; it must live in this block for the
	// isolation to be needed (and legal: we only move within-block).
	switch {
	case y.Prot.IsDup && y.Parent == b:
		return chk, y, true
	case x.Prot.IsDup && x.Parent == b:
		return chk, x, true
	}
	return nil, nil, false
}
