package flowery

import "flowery/internal/ir"

// eagerStore implements the eager mode of store (paper §6.1, Figure 13).
//
// After duplication, a protected store sits at the head of a
// continuation block, behind the checkers that validate its operands.
// The block boundary flushes the backend's local register cache, so the
// store must reload its value from a stack slot — an unprotected
// injection site executing after the check (store penetration).
//
// The patch repeatedly hoists such a store above the checker chain that
// guards it, until it rejoins the block that computes its operands. The
// store then executes before its own checkers ("store before being
// checked"); if the stored data was corrupted, the checker still fires
// immediately afterwards and the program halts, so no corrupted output
// escapes.
func eagerStore(f *ir.Function) int {
	hoisted := 0
	moved := make(map[*ir.Instr]bool)
	for {
		changed := false
		preds := predecessors(f)
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				continue
			}
			store := b.Instrs[0]
			if store.Op != ir.OpStore || store.Prot.IsFlowery {
				continue
			}
			if !storeIsProtected(store) {
				continue
			}
			// Hoist only through the unique checker predecessor.
			ps := preds[b]
			if len(ps) != 1 {
				continue
			}
			pred := ps[0]
			term := pred.Terminator()
			cont, ok := isCheckerCondBr(term)
			if !ok || cont != b {
				continue
			}
			// The checker compare sits immediately before the condbr;
			// place the store in front of it.
			pos := len(pred.Instrs) - 2
			if pos < 0 {
				continue
			}
			if cmp, okc := term.Args[0].(*ir.Instr); !okc || pred.Index(cmp) != pos {
				continue
			}
			b.Remove(0)
			pred.InsertAt(pos, store)
			if !moved[store] {
				moved[store] = true
				hoisted++
			}
			changed = true
		}
		if !changed {
			return hoisted
		}
	}
}

// storeIsProtected reports whether the store consumes any duplicated
// value (and therefore has checkers guarding it).
func storeIsProtected(store *ir.Instr) bool {
	for _, a := range store.Args {
		if ai, ok := a.(*ir.Instr); ok && ai.Prot.Dup != nil {
			return true
		}
	}
	return false
}

// predecessors computes the predecessor map of f.
func predecessors(f *ir.Function) map[*ir.Block][]*ir.Block {
	preds := make(map[*ir.Block][]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}
