// Package flowery implements the paper's mitigation technique (§6): a
// set of compiler patches applied after instruction duplication that
// repair the cross-layer protection deficiencies observed at assembly
// level:
//
//   - Eager mode of store (§6.1) hoists protected stores above their
//     checkers so the stored value is still register-resident when the
//     store lowers — eliminating the store-penetration reload.
//   - Postponed branch condition check (§6.2) records the branch
//     condition in a global before the branch and validates, at each
//     destination, that the taken edge matches — catching RFLAGS faults
//     in the un-fusable test+jcc sequence (branch penetration).
//   - Anti-comparison duplication optimization (§6.3) moves each
//     duplicated compare and its check into a separate basic block
//     behind an opaque guard, defeating the block-local folding that
//     silently deletes comparison checks (comparison penetration).
//
// Call Apply after dup.Apply and before backend.Lower. All three patches
// are driven by the protection metadata the duplication pass left on the
// instructions, so partial protection levels are patched consistently.
package flowery

import (
	"fmt"
	"time"

	"flowery/internal/ir"
)

// Names of the module globals the passes communicate through.
const (
	// BranchGlobal holds the most recent protected branch condition.
	BranchGlobal = "__flowery_br"
	// OpaqueGlobal always holds 1; the anti-cmp guard loads it to build
	// a predicate the backend cannot fold.
	OpaqueGlobal = "__flowery_opaque"
)

// Options selects which patches run; the zero value runs none. Use All
// for the full technique; partial configurations drive the ablation
// benchmarks.
type Options struct {
	EagerStore      bool
	PostponedBranch bool
	AntiCmp         bool
}

// All enables every patch.
func All() Options {
	return Options{EagerStore: true, PostponedBranch: true, AntiCmp: true}
}

// Stats reports what Apply changed, and how long it took (§7.3 of the
// paper reports the transform's compile-time cost).
type Stats struct {
	StoresHoisted   int
	BranchesPatched int
	CmpsIsolated    int
	Elapsed         time.Duration
}

// Apply runs the selected patches over the module in place.
func Apply(m *ir.Module, opts Options) (Stats, error) {
	start := time.Now()
	var st Stats
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		if opts.EagerStore {
			st.StoresHoisted += eagerStore(f)
		}
		if opts.AntiCmp {
			st.CmpsIsolated += antiCmp(f)
		}
		if opts.PostponedBranch {
			st.BranchesPatched += postponedBranch(f)
		}
	}
	st.Elapsed = time.Since(start)
	if err := m.Verify(); err != nil {
		return st, fmt.Errorf("flowery: transformed module does not verify: %w", err)
	}
	return st, nil
}

// boolGlobal returns the named 1-byte global, creating it with the given
// initial value on first use.
func boolGlobal(m *ir.Module, name string, init byte) *ir.Global {
	if g := m.Global(name); g != nil {
		return g
	}
	return m.NewGlobalData(name, []byte{init})
}

// isCheckerCondBr reports whether in is a compare-and-branch checker
// terminator, returning its success target (the continuation block).
func isCheckerCondBr(in *ir.Instr) (*ir.Block, bool) {
	if in.Op != ir.OpCondBr || !in.Prot.IsChecker {
		return nil, false
	}
	cond, ok := in.Args[0].(*ir.Instr)
	if !ok || !cond.Prot.IsChecker {
		return nil, false
	}
	// Integer checkers branch to the continuation on true (icmp eq);
	// float checkers on false (fcmp one).
	if cond.Op == ir.OpFCmp {
		return in.Blocks[1], true
	}
	return in.Blocks[0], true
}
