package flowery

import (
	"testing"

	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// buildProtected returns a duplicated program exhibiting all three
// patchable patterns: a protected store, a protected branch, and a
// comparison check.
func buildProtected(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("p")
	ga := m.NewGlobalI64("a", []int64{3})
	gout := m.NewGlobalI64("out", []int64{0})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, ga)
	y := b.Add(x, ir.ConstInt(ir.I64, 4))
	b.Store(y, gout)
	c := b.ICmp(ir.PredSLT, y, ir.ConstInt(ir.I64, 100))
	b.If(c, func() { b.PrintI64(y) }, func() { b.PrintI64(ir.ConstInt(ir.I64, -1)) })
	b.Ret(ir.ConstInt(ir.I64, 0))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := dup.ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplyAllReportsWork(t *testing.T) {
	m := buildProtected(t)
	st, err := Apply(m, All())
	if err != nil {
		t.Fatal(err)
	}
	if st.StoresHoisted == 0 {
		t.Error("no store hoisted")
	}
	if st.BranchesPatched == 0 {
		t.Error("no branch patched")
	}
	if st.CmpsIsolated == 0 {
		t.Error("no compare isolated")
	}
	if st.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("patched module invalid: %v", err)
	}
}

func TestApplyZeroOptionsIsNoop(t *testing.T) {
	m := buildProtected(t)
	before := m.String()
	st, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.StoresHoisted+st.BranchesPatched+st.CmpsIsolated != 0 {
		t.Fatal("zero options changed something")
	}
	if m.String() != before {
		t.Fatal("module mutated by no-op apply")
	}
}

func TestEagerStoreHoistsToDefiningBlock(t *testing.T) {
	m := buildProtected(t)
	f := m.Func("main")
	// Find the protected store (value has a dup) before the patch.
	var store *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && storeIsProtected(in) && !in.Prot.IsFlowery {
				store = in
			}
		}
	}
	if store == nil {
		t.Fatal("no protected store found")
	}
	if _, err := Apply(m, Options{EagerStore: true}); err != nil {
		t.Fatal(err)
	}
	// After the patch, the store must sit in the same block as the
	// definition of its value operand.
	val := store.Args[0].(*ir.Instr)
	if store.Parent != val.Parent {
		t.Fatalf("store in %s but value defined in %s", store.Parent.Name, val.Parent.Name)
	}
	// And the value must be defined before the store.
	if store.Parent.Index(val) >= store.Parent.Index(store) {
		t.Fatal("store precedes its value definition")
	}
}

func TestPostponedBranchStructure(t *testing.T) {
	m := buildProtected(t)
	if _, err := Apply(m, Options{PostponedBranch: true}); err != nil {
		t.Fatal(err)
	}
	if m.Global(BranchGlobal) == nil {
		t.Fatal("branch global not created")
	}
	f := m.Func("main")
	var edgeChecks int
	for _, b := range f.Blocks {
		if len(b.Instrs) == 2 && b.Instrs[0].Op == ir.OpLoad && b.Instrs[0].Prot.IsFlowery {
			term := b.Instrs[1]
			if term.Op == ir.OpCondBr && term.Prot.IsFlowery {
				edgeChecks++
				// One of the two targets must be the error block.
				if term.Blocks[0].Name != dup.ErrBlockName && term.Blocks[1].Name != dup.ErrBlockName {
					t.Error("edge check does not route to the error handler")
				}
			}
		}
	}
	if edgeChecks != 2 {
		t.Fatalf("expected 2 edge-check blocks (one per destination), found %d", edgeChecks)
	}
}

func TestAntiCmpIsolatesDuplicate(t *testing.T) {
	m := buildProtected(t)
	if _, err := Apply(m, Options{AntiCmp: true}); err != nil {
		t.Fatal(err)
	}
	if m.Global(OpaqueGlobal) == nil {
		t.Fatal("opaque global not created")
	}
	f := m.Func("main")
	// Every dup compare whose check was isolated must now live in a
	// different block from its original.
	isolated := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Prot.IsDup && (in.Op == ir.OpICmp || in.Op == ir.OpFCmp) {
				if in.Parent != in.Prot.Orig.Parent {
					isolated++
				}
			}
		}
	}
	if isolated == 0 {
		t.Fatal("no duplicate compare isolated")
	}
}

func TestApplyIdempotentOnSecondRun(t *testing.T) {
	m := buildProtected(t)
	if _, err := Apply(m, All()); err != nil {
		t.Fatal(err)
	}
	st2, err := Apply(m, All())
	if err != nil {
		t.Fatal(err)
	}
	// The markers must prevent double-patching branches and compares.
	if st2.BranchesPatched != 0 || st2.CmpsIsolated != 0 {
		t.Fatalf("second apply re-patched: %+v", st2)
	}
}

func TestPatchedProgramStillDetectsFaults(t *testing.T) {
	m := buildProtected(t)
	if _, err := Apply(m, All()); err != nil {
		t.Fatal(err)
	}
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{})
	if golden.Status != sim.StatusOK {
		t.Fatalf("golden: %v", golden.Status)
	}
	detected := 0
	for i := int64(1); i <= golden.InjectableInstrs; i++ {
		if res := ip.Run(sim.Fault{TargetIndex: i, Bit: 2}, sim.Options{}); res.Status == sim.StatusDetected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("patched program never detects")
	}
}

func TestUnprotectedProgramUntouched(t *testing.T) {
	// Flowery on a program without duplication metadata must change
	// nothing (no dup.err handler, nothing to patch).
	m := ir.NewModule("plain")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	c := b.ICmp(ir.PredSLT, ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2))
	b.If(c, func() { b.PrintI64(ir.ConstInt(ir.I64, 1)) }, nil)
	b.Ret(ir.ConstInt(ir.I64, 0))
	before := m.String()
	st, err := Apply(m, All())
	if err != nil {
		t.Fatal(err)
	}
	if st.StoresHoisted+st.BranchesPatched+st.CmpsIsolated != 0 || m.String() != before {
		t.Fatal("unprotected program was modified")
	}
}
