// Package dup implements the selective instruction duplication technique
// the paper studies (§3): per-instruction SDC profiling by IR-level fault
// injection, knapsack-based selection under a protection level, and the
// SWIFT-style duplication transform with checkers before synchronization
// points.
package dup

import (
	"fmt"
	"math/rand"

	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/knapsack"
	"flowery/internal/sim"
)

// Profile holds per-static-instruction measurements from an IR-level
// fault-injection campaign on the unprotected program. Indices refer to
// Module.EnumerateInstrs order, so a Profile computed on one module
// applies to clones of it.
type Profile struct {
	// DynCount is the execution count of each static instruction.
	DynCount []int64
	// SDCProb is the estimated probability that a fault in the
	// instruction's result causes an SDC.
	SDCProb []float64
	// Duplicable marks instructions the transform can protect.
	Duplicable []bool
	// Samples counts fault-injection samples attributed per instruction.
	Samples []int64
	// SDCHits counts samples that ended in SDC.
	SDCHits []int64
	// TotalDyn is the golden run's dynamic instruction count.
	TotalDyn int64
	// TotalInjectable is the golden run's injectable-site count.
	TotalInjectable int64
	// GoldenOutput is the fault-free output.
	GoldenOutput []byte
	// BaseSDC is the measured raw SDC probability of the unprotected
	// program (fraction of samples that were SDCs).
	BaseSDC float64
}

// ProfileOptions tunes BuildProfile.
type ProfileOptions struct {
	// Samples is the number of fault injections (default 1500).
	Samples int
	// Seed drives the random site selection.
	Seed int64
	// MaxSteps bounds each run.
	MaxSteps int64
}

// Duplicable reports whether the transform can duplicate an instruction.
// Allocas are excluded (duplicating one creates a *different* address),
// calls are excluded (side effects), and void instructions have nothing
// to duplicate.
func Duplicable(in *ir.Instr) bool {
	if !in.HasResult() {
		return false
	}
	switch in.Op {
	case ir.OpAlloca, ir.OpCall:
		return false
	}
	return true
}

// BuildProfile measures per-instruction dynamic counts and SDC
// probabilities by running an IR-level fault-injection campaign on m.
// m is not modified.
func BuildProfile(m *ir.Module, opts ProfileOptions) (*Profile, error) {
	if opts.Samples <= 0 {
		opts.Samples = 1500
	}
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{Profile: true, MaxSteps: opts.MaxSteps})
	if golden.Status != sim.StatusOK {
		return nil, fmt.Errorf("dup: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	counts := ip.ProfileCounts()
	instrs := m.EnumerateInstrs()
	if len(counts) != len(instrs) {
		return nil, fmt.Errorf("dup: profile size %d != instruction count %d", len(counts), len(instrs))
	}

	p := &Profile{
		DynCount:        counts,
		SDCProb:         make([]float64, len(instrs)),
		Duplicable:      make([]bool, len(instrs)),
		Samples:         make([]int64, len(instrs)),
		SDCHits:         make([]int64, len(instrs)),
		TotalDyn:        golden.DynInstrs,
		TotalInjectable: golden.InjectableInstrs,
		GoldenOutput:    golden.Output,
	}
	for i, in := range instrs {
		p.Duplicable[i] = Duplicable(in)
	}

	// Bound faulty runs relative to the golden length so hang-inducing
	// faults classify quickly.
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 50*golden.DynInstrs + 100_000
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sdcTotal := 0
	for s := 0; s < opts.Samples; s++ {
		f := sim.Fault{
			TargetIndex: 1 + rng.Int63n(golden.InjectableInstrs),
			Bit:         rng.Intn(64),
		}
		res := ip.Run(f, sim.Options{MaxSteps: maxSteps})
		if !res.Injected || res.InjectedStatic < 0 {
			continue
		}
		idx := int(res.InjectedStatic)
		p.Samples[idx]++
		if res.Status == sim.StatusOK && string(res.Output) != string(p.GoldenOutput) {
			p.SDCHits[idx]++
			sdcTotal++
		}
	}
	p.BaseSDC = float64(sdcTotal) / float64(opts.Samples)

	// Laplace-smoothed per-instruction SDC probability; unsampled
	// instructions inherit the global average so rarely executed code is
	// neither ignored nor overweighted.
	for i := range instrs {
		if p.Samples[i] > 0 {
			p.SDCProb[i] = (float64(p.SDCHits[i]) + 0.5) / (float64(p.Samples[i]) + 1)
		} else {
			p.SDCProb[i] = p.BaseSDC
		}
	}
	return p, nil
}

// Level is a protection level: the fraction of the duplicable dynamic
// instruction stream whose duplication overhead the selection may spend.
type Level float64

// The protection levels evaluated throughout the paper.
const (
	Level30  Level = 0.30
	Level50  Level = 0.50
	Level70  Level = 0.70
	Level100 Level = 1.00
)

// Select solves the knapsack instance: benefit is the instruction's
// estimated SDC contribution (probability × execution count), cost is
// the added dynamic instructions (≈ execution count), and the budget is
// level × total duplicable dynamic instructions. It returns selected
// indices into Module.EnumerateInstrs order.
func Select(p *Profile, level Level) []int {
	if level >= 1 {
		var all []int
		for i, d := range p.Duplicable {
			if d && p.DynCount[i] > 0 {
				all = append(all, i)
			}
		}
		return all
	}
	var items []knapsack.Item
	var idxs []int
	var totalCost int64
	for i, d := range p.Duplicable {
		if !d || p.DynCount[i] == 0 {
			continue
		}
		items = append(items, knapsack.Item{
			Benefit: p.SDCProb[i] * float64(p.DynCount[i]),
			Cost:    p.DynCount[i],
		})
		idxs = append(idxs, i)
		totalCost += p.DynCount[i]
	}
	budget := int64(float64(totalCost) * float64(level))
	picked := knapsack.Greedy(items, budget)
	out := make([]int, len(picked))
	for i, pi := range picked {
		out[i] = idxs[pi]
	}
	return out
}
