package dup

import (
	"fmt"

	"flowery/internal/ir"
)

// ErrBlockName is the name of the per-function error handler block that
// checkers branch to on mismatch.
const ErrBlockName = "dup.err"

// Apply duplicates the selected instructions (indices into
// Module.EnumerateInstrs order) in place and inserts checkers before
// every synchronization point (store, conditional branch, call, return)
// that consumes a duplicated value, following the design of §3 and
// Figure 1 of the paper. The transformed module verifies and is
// semantically identical to the original in fault-free runs.
func Apply(m *ir.Module, selected []int) error {
	instrs := m.EnumerateInstrs()
	selSet := make(map[*ir.Instr]bool, len(selected))
	for _, idx := range selected {
		if idx < 0 || idx >= len(instrs) {
			return fmt.Errorf("dup: selection index %d out of range", idx)
		}
		in := instrs[idx]
		if !Duplicable(in) {
			return fmt.Errorf("dup: instruction %d (%s) is not duplicable", idx, in.Op)
		}
		selSet[in] = true
	}

	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		applyFunc(f, selSet)
	}
	return nil
}

// ApplyFull duplicates every duplicable instruction (100% protection).
func ApplyFull(m *ir.Module) error {
	var sel []int
	for i, in := range m.EnumerateInstrs() {
		if Duplicable(in) {
			sel = append(sel, i)
		}
	}
	return Apply(m, sel)
}

func applyFunc(f *ir.Function, selected map[*ir.Instr]bool) {
	dupOf := insertClones(f, selected)
	if len(dupOf) == 0 {
		return
	}
	insertCheckers(f, dupOf)
}

// insertClones places a redundant copy immediately after each selected
// instruction. Clone operands refer to the duplicated versions of their
// producers when those exist, building an independent computation chain
// (Figure 1b of the paper).
func insertClones(f *ir.Function, selected map[*ir.Instr]bool) map[*ir.Instr]*ir.Instr {
	dupOf := make(map[*ir.Instr]*ir.Instr)
	for _, b := range f.Blocks {
		old := b.Instrs
		out := make([]*ir.Instr, 0, len(old)*2)
		for _, in := range old {
			out = append(out, in)
			if !selected[in] {
				continue
			}
			clone := &ir.Instr{
				Op:     in.Op,
				Ty:     in.Ty,
				Pred:   in.Pred,
				Aux:    in.Aux,
				Callee: in.Callee,
				Parent: b,
				ID:     -1,
			}
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					if d, ok := dupOf[ai]; ok {
						clone.Args = append(clone.Args, d)
						continue
					}
				}
				clone.Args = append(clone.Args, a)
			}
			clone.Prot = ir.ProtMeta{IsDup: true, Orig: in}
			in.Prot.Dup = clone
			dupOf[in] = clone
			out = append(out, clone)
		}
		b.Instrs = out
	}
	return dupOf
}

// insertCheckers walks every synchronization point and, for each operand
// that has a duplicate, inserts compare-and-branch validation before it.
// Each checker ends its block, so the synchronization point moves into a
// fresh continuation block — the block split whose assembly-level
// consequences (store and branch penetration) the paper analyzes.
func insertCheckers(f *ir.Function, dupOf map[*ir.Instr]*ir.Instr) {
	errBB := makeErrBlock(f)

	// f.Blocks grows while we split; index iteration covers new blocks.
	// Each sync point is handled once: after a split it reappears at the
	// head of its continuation block, already guarded.
	guarded := make(map[*ir.Instr]bool)
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		if b == errBB {
			continue
		}
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Prot.IsChecker || guarded[in] {
				continue
			}
			if !isSyncPoint(in.Op) {
				continue
			}
			ops := checkableOperands(in, dupOf)
			if len(ops) == 0 {
				continue
			}
			guarded[in] = true
			splitAndCheck(f, b, i, ops, dupOf, errBB)
			// The remainder of this block moved to the continuation
			// block; the outer loop will reach it through f.Blocks.
			break
		}
	}
}

func isSyncPoint(op ir.Op) bool {
	return op == ir.OpStore || op == ir.OpCondBr || op == ir.OpCall || op == ir.OpRet
}

// checkableOperands returns the distinct duplicated operands of in.
func checkableOperands(in *ir.Instr, dupOf map[*ir.Instr]*ir.Instr) []*ir.Instr {
	var ops []*ir.Instr
	seen := make(map[*ir.Instr]bool)
	for _, a := range in.Args {
		ai, ok := a.(*ir.Instr)
		if !ok || seen[ai] {
			continue
		}
		if _, hasDup := dupOf[ai]; hasDup {
			ops = append(ops, ai)
			seen[ai] = true
		}
	}
	return ops
}

// splitAndCheck moves b.Instrs[k:] into a continuation block and emits a
// checker chain in front of it, one compare-and-branch per operand.
func splitAndCheck(f *ir.Function, b *ir.Block, k int, ops []*ir.Instr, dupOf map[*ir.Instr]*ir.Instr, errBB *ir.Block) {
	cont := f.NewBlock(b.Name + ".cont")
	cont.Instrs = append(cont.Instrs, b.Instrs[k:]...)
	for _, in := range cont.Instrs {
		in.Parent = cont
	}
	b.Instrs = b.Instrs[:k]

	cur := b
	for i, v := range ops {
		next := cont
		if i < len(ops)-1 {
			next = f.NewBlock(b.Name + ".chk")
		}
		emitChecker(cur, v, dupOf[v], next, errBB)
		cur = next
	}
}

// emitChecker appends "compare v with its duplicate, branch to errBB on
// mismatch" to block b, continuing to next on success. Integer and
// pointer values use icmp eq (the pattern of Figure 8, which the backend
// may fold — comparison penetration); floats use fcmp one with inverted
// targets so NaN values do not raise false alarms.
func emitChecker(b *ir.Block, v, dup *ir.Instr, next, errBB *ir.Block) {
	if v.Ty == ir.F64 {
		c := &ir.Instr{
			Op: ir.OpFCmp, Ty: ir.I1, Pred: ir.PredONE,
			Args: []ir.Value{v, dup},
			Prot: ir.ProtMeta{IsChecker: true},
		}
		br := &ir.Instr{
			Op: ir.OpCondBr, Ty: ir.Void,
			Args:   []ir.Value{c},
			Blocks: []*ir.Block{errBB, next},
			Prot:   ir.ProtMeta{IsChecker: true},
		}
		b.Append(c)
		b.Append(br)
		return
	}
	c := &ir.Instr{
		Op: ir.OpICmp, Ty: ir.I1, Pred: ir.PredEQ,
		Args: []ir.Value{v, dup},
		Prot: ir.ProtMeta{IsChecker: true},
	}
	br := &ir.Instr{
		Op: ir.OpCondBr, Ty: ir.Void,
		Args:   []ir.Value{c},
		Blocks: []*ir.Block{next, errBB},
		Prot:   ir.ProtMeta{IsChecker: true},
	}
	b.Append(c)
	b.Append(br)
}

// makeErrBlock creates (or finds) the error handler: call check_fail,
// then return a zero value. check_fail never returns in either execution
// engine, so the return is unreachable structure to satisfy the verifier.
func makeErrBlock(f *ir.Function) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name == ErrBlockName {
			return b
		}
	}
	errBB := f.NewBlock(ErrBlockName)
	checkFail := f.Module.Func("check_fail")
	call := &ir.Instr{
		Op: ir.OpCall, Ty: ir.Void, Callee: checkFail,
		Prot: ir.ProtMeta{IsChecker: true},
	}
	errBB.Append(call)
	var ret *ir.Instr
	switch f.RetType {
	case ir.Void:
		ret = &ir.Instr{Op: ir.OpRet, Ty: ir.Void}
	case ir.F64:
		ret = &ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{ir.ConstFloat(0)}}
	default:
		ret = &ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{ir.ConstInt(f.RetType, 0)}}
	}
	ret.Prot.IsChecker = true
	errBB.Append(ret)
	return errBB
}
