package dup

import (
	"testing"

	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// buildSample: a loop summing squares, with a store and branch so every
// sync-point kind appears.
func buildSample() *ir.Module {
	m := ir.NewModule("sample")
	g := m.NewGlobalI64("out", []int64{0})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	sum := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 6), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		sq := b.Mul(i, i)
		cur := b.Load(ir.I64, sum)
		b.Store(b.Add(cur, sq), sum)
	})
	v := b.Load(ir.I64, sum)
	b.Store(v, g)
	b.PrintI64(v)
	b.Ret(v)
	return m
}

func TestDuplicableClassification(t *testing.T) {
	m := buildSample()
	var haveAlloca, haveCall, haveStore, haveLoad bool
	for _, in := range m.EnumerateInstrs() {
		switch in.Op {
		case ir.OpAlloca:
			haveAlloca = true
			if Duplicable(in) {
				t.Error("alloca must not be duplicable (address identity)")
			}
		case ir.OpCall:
			haveCall = true
			if Duplicable(in) {
				t.Error("call must not be duplicable (side effects)")
			}
		case ir.OpStore:
			haveStore = true
			if Duplicable(in) {
				t.Error("store has no result to duplicate")
			}
		case ir.OpLoad:
			haveLoad = true
			if !Duplicable(in) {
				t.Error("load must be duplicable")
			}
		}
	}
	if !haveAlloca || !haveCall || !haveStore || !haveLoad {
		t.Fatal("sample program lacks an opcode the test depends on")
	}
}

func TestApplyFullStructure(t *testing.T) {
	m := buildSample()
	before := len(m.EnumerateInstrs())
	if err := ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("protected module invalid: %v", err)
	}
	after := len(m.EnumerateInstrs())
	if after <= before+before/2 {
		t.Fatalf("expected substantial growth, %d -> %d", before, after)
	}

	f := m.Func("main")
	var dups, checkers, errCalls int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Prot.IsDup {
				dups++
				if in.Prot.Orig == nil || in.Prot.Orig.Prot.Dup != in {
					t.Fatal("dup back-link broken")
				}
				if in.Op != in.Prot.Orig.Op {
					t.Fatal("dup has different opcode than original")
				}
			}
			if in.Prot.IsChecker && in.Op == ir.OpICmp {
				checkers++
			}
			if in.Op == ir.OpCall && in.Callee.Name == "check_fail" {
				errCalls++
			}
		}
	}
	if dups == 0 || checkers == 0 {
		t.Fatalf("dups=%d checkers=%d; transform inert", dups, checkers)
	}
	if errCalls != 1 {
		t.Fatalf("expected exactly one error block, found %d check_fail calls", errCalls)
	}
}

func TestApplyRejectsBadSelection(t *testing.T) {
	m := buildSample()
	if err := Apply(m, []int{99999}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	m2 := buildSample()
	// Find an alloca index.
	for i, in := range m2.EnumerateInstrs() {
		if in.Op == ir.OpAlloca {
			if err := Apply(m2, []int{i}); err == nil {
				t.Fatal("unduplicable selection accepted")
			}
			return
		}
	}
}

func TestBuildProfileBasics(t *testing.T) {
	m := buildSample()
	p, err := BuildProfile(m, ProfileOptions{Samples: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	instrs := m.EnumerateInstrs()
	if len(p.DynCount) != len(instrs) || len(p.SDCProb) != len(instrs) {
		t.Fatal("profile arrays mis-sized")
	}
	var sampled int64
	for i := range instrs {
		sampled += p.Samples[i]
		if p.SDCProb[i] < 0 || p.SDCProb[i] > 1 {
			t.Fatalf("probability out of range: %v", p.SDCProb[i])
		}
		if p.Samples[i] > 0 && !instrs[i].HasResult() {
			t.Fatalf("void instruction %v sampled", instrs[i].Op)
		}
	}
	if sampled == 0 {
		t.Fatal("no samples attributed")
	}
	if p.TotalDyn <= 0 || p.TotalInjectable <= 0 || p.TotalInjectable >= p.TotalDyn {
		t.Fatalf("bad totals: %+v", p)
	}
	if len(p.GoldenOutput) == 0 {
		t.Fatal("no golden output")
	}
}

func TestSelectBudgetsAndMonotonicity(t *testing.T) {
	m := buildSample()
	p, err := BuildProfile(m, ProfileOptions{Samples: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var dupCost int64
	for i, d := range p.Duplicable {
		if d {
			dupCost += p.DynCount[i]
		}
	}
	var prevCost int64 = -1
	for _, level := range []Level{Level30, Level50, Level70, Level100} {
		sel := Select(p, level)
		var cost int64
		for _, idx := range sel {
			if !p.Duplicable[idx] {
				t.Fatalf("level %v selected unduplicable instruction", level)
			}
			cost += p.DynCount[idx]
		}
		budget := int64(float64(dupCost) * float64(level))
		if level < 1 && cost > budget {
			t.Fatalf("level %v: cost %d exceeds budget %d", level, cost, budget)
		}
		if cost < prevCost {
			t.Fatalf("selection cost not monotone in level: %d then %d", prevCost, cost)
		}
		prevCost = cost
	}
	// Full protection selects every executed duplicable instruction.
	full := Select(p, Level100)
	for i, d := range p.Duplicable {
		if d && p.DynCount[i] > 0 {
			found := false
			for _, idx := range full {
				if idx == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("full protection missed instruction %d", i)
			}
		}
	}
}

func TestCheckerFiresOnMismatch(t *testing.T) {
	// Corrupt one copy at runtime via fault injection and verify the
	// protected program detects rather than silently corrupting.
	m := buildSample()
	if err := ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{})
	if golden.Status != sim.StatusOK {
		t.Fatalf("golden run: %v", golden.Status)
	}
	detected := 0
	for i := int64(1); i <= golden.InjectableInstrs; i += 5 {
		res := ip.Run(sim.Fault{TargetIndex: i, Bit: 1}, sim.Options{})
		if res.Status == sim.StatusDetected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no fault detected; checkers inert")
	}
}

func TestSelectionAppliesAcrossClones(t *testing.T) {
	// A selection computed on one build must be valid for an
	// independently built (identical) module — the property the
	// experiment pipeline relies on.
	m1 := buildSample()
	p, err := BuildProfile(m1, ProfileOptions{Samples: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(p, Level50)
	m2 := buildSample()
	if err := Apply(m2, sel); err != nil {
		t.Fatalf("selection did not transfer: %v", err)
	}
	if err := m2.Verify(); err != nil {
		t.Fatal(err)
	}
}
