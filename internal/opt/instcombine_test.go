package opt

import (
	"testing"

	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// TestInstCombineIdentities checks each identity on values loaded from
// memory (so constprop cannot claim the fold).
func TestInstCombineIdentities(t *testing.T) {
	m := ir.NewModule("ic")
	g := m.NewGlobalI64("g", []int64{37})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, g)
	z := ir.ConstInt(ir.I64, 0)
	one := ir.ConstInt(ir.I64, 1)
	allOnes := ir.ConstInt(ir.I64, -1)

	exprs := []*ir.Instr{
		b.Add(x, z),       // x
		b.Add(z, x),       // x
		b.Sub(x, z),       // x
		b.Sub(x, x),       // 0
		b.Mul(x, one),     // x
		b.Mul(z, x),       // 0
		b.And(x, allOnes), // x
		b.And(x, z),       // 0
		b.And(x, x),       // x
		b.Or(x, z),        // x
		b.Xor(x, z),       // x
		b.Xor(x, x),       // 0
		b.Shl(x, z),       // x
		b.AShr(x, z),      // x
		b.SDiv(x, one),    // x
	}
	var acc ir.Value = z
	for _, e := range exprs {
		acc = b.Add(acc, e)
	}
	eq := b.ICmp(ir.PredEQ, x, x)  // true
	ne := b.ICmp(ir.PredSLT, x, x) // false
	acc = b.Add(acc, b.ZExt(ir.I64, eq))
	acc = b.Add(acc, b.ZExt(ir.I64, ne))
	b.Ret(acc)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	before := interp.New(ir.CloneModule(m)).Run(sim.Fault{}, sim.Options{})
	if !(InstCombine{}).Run(f) {
		t.Fatal("instcombine found nothing")
	}
	// After instcombine + DCE, the surviving expression instructions
	// should be mostly the accumulator adds.
	(DCE{}).Run(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("after instcombine: %v", err)
	}
	after := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if before.RetVal != after.RetVal {
		t.Fatalf("instcombine changed result: %d -> %d", before.RetVal, after.RetVal)
	}
	// 11 identities return x (=37), 4 return 0, eq contributes 1:
	// expected 11*37 + 1 = 408.
	if after.RetVal != 11*37+1 {
		t.Fatalf("unexpected result %d", after.RetVal)
	}
	remaining := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op.IsBinOp() && in.Op != ir.OpAdd {
				remaining++
			}
		}
	}
	if remaining != 0 {
		t.Fatalf("%d non-add binops survived the identities:\n%s", remaining, m.String())
	}
}

// TestInstCombineLeavesFloatsAlone: float identities are inexact (x+0.0
// changes -0.0) and must not fire.
func TestInstCombineLeavesFloatsAlone(t *testing.T) {
	m := ir.NewModule("icf")
	g := m.NewGlobalF64("g", []float64{1.5})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.F64, g)
	y := b.FAdd(x, ir.ConstFloat(0))
	b.PrintF64(y)
	b.Ret(ir.ConstInt(ir.I64, 0))
	if (InstCombine{}).Run(f) {
		t.Fatal("instcombine rewrote float arithmetic")
	}
}
