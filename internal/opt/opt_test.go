package opt

import (
	"fmt"
	"testing"

	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

func TestConstPropFolds(t *testing.T) {
	m := ir.NewModule("cp")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Add(ir.ConstInt(ir.I64, 2), ir.ConstInt(ir.I64, 3))
	y := b.Mul(x, ir.ConstInt(ir.I64, 4))
	c := b.ICmp(ir.PredSLT, y, ir.ConstInt(ir.I64, 100))
	z := b.ZExt(ir.I64, c)
	b.PrintI64(b.Add(y, z))
	b.Ret(ir.ConstInt(ir.I64, 0))

	before := interp.New(ir.CloneModule(m)).Run(sim.Fault{}, sim.Options{})
	n := Run(m, Standard())
	if n == 0 {
		t.Fatal("nothing optimized")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("optimized module invalid: %v", err)
	}
	after := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if string(before.Output) != string(after.Output) {
		t.Fatalf("optimization changed output: %q vs %q", before.Output, after.Output)
	}
	if after.DynInstrs >= before.DynInstrs {
		t.Fatalf("optimization did not shrink execution: %d -> %d", before.DynInstrs, after.DynInstrs)
	}
	// The whole computation is constant: only the print call chain and
	// the ret should survive DCE + constprop + simplifycfg.
	if got := m.Func("main").NumInstrs(); got > 3 {
		t.Errorf("expected near-total folding, %d instructions remain:\n%s", got, m.String())
	}
}

func TestConstPropNeverFoldsTrappingDivision(t *testing.T) {
	m := ir.NewModule("div0")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	q := b.SDiv(ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 0))
	b.Ret(q)
	Run(m, Standard())
	res := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if res.Trap != sim.TrapDivide {
		t.Fatalf("division by zero optimized away: %v", res.Trap)
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	m := ir.NewModule("dce")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	g := m.NewGlobalI64("g", []int64{1})
	live := b.Load(ir.I64, g)
	b.Load(ir.I64, g) // dead load
	b.Add(live, live) // dead add
	b.Ret(live)
	before := f.NumInstrs()
	if !(DCE{}).Run(f) {
		t.Fatal("DCE found nothing")
	}
	if f.NumInstrs() != before-2 {
		t.Fatalf("DCE removed %d, want 2", before-f.NumInstrs())
	}
}

func TestDCERemovesUnreachableBlocks(t *testing.T) {
	m := ir.NewModule("unreach")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(ir.ConstInt(ir.I64, 0))
	orphan := f.NewBlock("orphan")
	orphan.Append(&ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{ir.ConstInt(ir.I64, 1)}})
	if !(DCE{}).Run(f) {
		t.Fatal("unreachable block not removed")
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("%d blocks remain", len(f.Blocks))
	}
}

func TestLocalCSE(t *testing.T) {
	m := ir.NewModule("cse")
	g := m.NewGlobalI64("g", []int64{7})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x1 := b.Load(ir.I64, g)
	x2 := b.Load(ir.I64, g) // same address, no store between: CSE
	s := b.Add(x1, x2)
	b.Store(s, g)
	x3 := b.Load(ir.I64, g) // after a store: must NOT merge with x1
	b.Ret(b.Add(s, x3))
	if !(LocalCSE{}).Run(f) {
		t.Fatal("CSE found nothing")
	}
	loads := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpLoad {
				loads++
			}
		}
	}
	if loads != 2 {
		t.Fatalf("CSE left %d loads, want 2 (one merged, one kept past the store)", loads)
	}
	_ = x3
	// Semantics: 7+7=14 stored; ret 14+14=28.
	res := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if res.RetVal != 28 {
		t.Fatalf("CSE broke semantics: ret %d", res.RetVal)
	}
}

func TestSimplifyCFGFoldsConstantBranch(t *testing.T) {
	m := ir.NewModule("scfg")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	b.CondBr(ir.ConstBool(true), thenB, elseB)
	b.SetBlock(thenB)
	b.Ret(ir.ConstInt(ir.I64, 1))
	b.SetBlock(elseB)
	b.Ret(ir.ConstInt(ir.I64, 2))

	changed := Run(m, Standard())
	if changed == 0 {
		t.Fatal("nothing simplified")
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("%d blocks remain after folding a constant branch:\n%s", len(f.Blocks), m.String())
	}
	res := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if res.RetVal != 1 {
		t.Fatalf("constant branch folded to the wrong side: ret %d", res.RetVal)
	}
}

// TestOptimizerPreservesSemantics is the property test: optimizing any
// random program must not change its behaviour.
func TestOptimizerPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			m := progen.Generate(seed, progen.DefaultConfig())
			base := interp.New(ir.CloneModule(m)).Run(sim.Fault{}, sim.Options{})
			Run(m, Standard())
			if err := m.Verify(); err != nil {
				t.Fatalf("optimized module invalid: %v", err)
			}
			got := interp.New(m).Run(sim.Fault{}, sim.Options{})
			if base.Status != got.Status || string(base.Output) != string(got.Output) {
				t.Fatalf("optimization changed behaviour:\nbase %v %q\ngot  %v %q",
					base.Status, base.Output, got.Status, got.Output)
			}
		})
	}
}

// TestOptimizerNullifiesDuplication demonstrates (at IR level) the
// paper's ordering lesson: optimization passes run AFTER instruction
// duplication legally delete the redundant copies and fold the checkers
// — protection must be the final transform. This is the IR-level twin of
// the backend's comparison-penetration folding.
func TestOptimizerNullifiesDuplication(t *testing.T) {
	m := progen.Generate(1, progen.DefaultConfig())
	if err := dup.ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	protected := interp.New(ir.CloneModule(m)).Run(sim.Fault{}, sim.Options{})

	Run(m, Standard())
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	optimized := interp.New(m).Run(sim.Fault{}, sim.Options{})
	if string(protected.Output) != string(optimized.Output) || protected.Status != optimized.Status {
		t.Fatal("optimizer changed fault-free behaviour")
	}
	// The redundant copies are gone: dynamic count shrinks sharply.
	if optimized.DynInstrs >= protected.DynInstrs*4/5 {
		t.Fatalf("optimizer removed almost no redundancy: %d -> %d",
			protected.DynInstrs, optimized.DynInstrs)
	}
}
