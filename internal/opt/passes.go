package opt

import "flowery/internal/ir"

// DCE removes unreachable blocks and pure instructions with no uses.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(f *ir.Function) bool {
	changed := removeUnreachable(f)

	// Iterate: removing one dead instruction can orphan its operands.
	for {
		uses := make(map[*ir.Instr]int)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					if ai, ok := a.(*ir.Instr); ok {
						uses[ai]++
					}
				}
			}
		}
		removed := false
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if !in.HasResult() || uses[in] > 0 {
					continue
				}
				// Loads are removable too: a dead load has no observable
				// effect (our loads cannot trap on valid programs, and
				// removing a would-trap load only narrows behaviour the
				// same way LLVM treats it as UB).
				if in.Op.IsPure() || in.Op == ir.OpLoad || in.Op == ir.OpAlloca {
					b.Remove(i)
					removed = true
				}
			}
		}
		changed = changed || removed
		if !removed {
			return changed
		}
	}
}

func removeUnreachable(f *ir.Function) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	reach := make(map[*ir.Block]bool)
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(f.Blocks[0])
	if len(reach) == len(f.Blocks) {
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	return true
}

// LocalCSE eliminates redundant pure instructions and repeated loads
// within each basic block (available-expression analysis at block
// scope, with the load epoch advancing at stores and calls — the same
// congruence model the backend's comparison folding uses, applied here
// as an actual IR rewrite).
type LocalCSE struct{}

// Name implements Pass.
func (LocalCSE) Name() string { return "cse" }

// cseKey identifies an expression for value numbering.
type cseKey struct {
	op    ir.Op
	ty    ir.Type
	pred  ir.Pred
	aux   int64
	epoch int // loads only
	a0    ir.Value
	a1    ir.Value
}

// Run implements Pass.
func (LocalCSE) Run(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[cseKey]*ir.Instr)
		epoch := 0
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op == ir.OpStore || in.Op == ir.OpCall {
				epoch++
				continue
			}
			if !(in.Op.IsPure() || in.Op == ir.OpLoad) {
				continue
			}
			key := cseKey{op: in.Op, ty: in.Ty, pred: in.Pred, aux: in.Aux}
			if in.Op == ir.OpLoad {
				key.epoch = epoch
			}
			if len(in.Args) > 0 {
				key.a0 = in.Args[0]
			}
			if len(in.Args) > 1 {
				key.a1 = in.Args[1]
			}
			if rep, ok := avail[key]; ok {
				replaceUses(f, in, rep)
				b.Remove(i)
				i--
				changed = true
				continue
			}
			avail[key] = in
		}
	}
	return changed
}

// SimplifyCFG folds conditional branches on constants and merges blocks
// into their unique unconditional predecessor.
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (SimplifyCFG) Run(f *ir.Function) bool {
	changed := false

	// condbr const → br.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c, ok := t.Args[0].(*ir.Const)
		if !ok {
			continue
		}
		target := t.Blocks[1]
		if c.Bits&1 == 1 {
			target = t.Blocks[0]
		}
		t.Op = ir.OpBr
		t.Args = nil
		t.Blocks = []*ir.Block{target}
		changed = true
	}

	// Merge b → succ when b ends in an unconditional branch to a block
	// whose only predecessor is b (and which is not the entry).
	for {
		preds := make(map[*ir.Block][]*ir.Block)
		for _, b := range f.Blocks {
			for _, s := range b.Succs() {
				preds[s] = append(preds[s], b)
			}
		}
		merged := false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			succ := t.Blocks[0]
			if succ == f.Blocks[0] || succ == b || len(preds[succ]) != 1 {
				continue
			}
			// Splice succ's instructions in place of the branch.
			b.Remove(len(b.Instrs) - 1)
			for _, in := range succ.Instrs {
				b.Append(in)
			}
			succ.Instrs = nil
			removeEmptyBlock(f, succ)
			merged = true
			changed = true
			break
		}
		if !merged {
			return changed
		}
	}
}

func removeEmptyBlock(f *ir.Function, dead *ir.Block) {
	for i, b := range f.Blocks {
		if b == dead {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}
