package opt

import (
	"math"

	"flowery/internal/ir"
	"flowery/internal/rt"
)

// ConstProp folds instructions whose operands are all constants. The
// folding semantics are bit-identical to the interpreter's (both defer
// to the same normalization and conversion helpers), so the pass can
// never change observable behaviour.
type ConstProp struct{}

// Name implements Pass.
func (ConstProp) Name() string { return "constprop" }

// Run implements Pass.
func (ConstProp) Run(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			c, ok := foldConst(in)
			if !ok {
				continue
			}
			replaceUses(f, in, c)
			changed = true
		}
	}
	return changed
}

// foldConst evaluates in if all operands are constants. Division is
// never folded when it would trap (the trap must happen at runtime).
func foldConst(in *ir.Instr) (*ir.Const, bool) {
	if !in.HasResult() || in.Op == ir.OpAlloca || in.Op == ir.OpCall || in.Op == ir.OpLoad || in.Op == ir.OpGEP {
		return nil, false
	}
	args := make([]*ir.Const, len(in.Args))
	for i, a := range in.Args {
		c, ok := a.(*ir.Const)
		if !ok {
			return nil, false
		}
		args[i] = c
	}
	switch {
	case in.Op.IsBinOp() && in.Ty == ir.F64:
		x, y := args[0].Float(), args[1].Float()
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = x + y
		case ir.OpFSub:
			r = x - y
		case ir.OpFMul:
			r = x * y
		case ir.OpFDiv:
			r = x / y
		default:
			return nil, false
		}
		return ir.ConstFloat(r), true

	case in.Op.IsBinOp():
		return foldIntBin(in.Op, in.Ty, args[0], args[1])

	case in.Op == ir.OpICmp:
		return ir.ConstBool(evalICmp(in.Pred, args[0], args[1])), true

	case in.Op == ir.OpFCmp:
		return ir.ConstBool(evalFCmp(in.Pred, args[0].Float(), args[1].Float())), true

	case in.Op == ir.OpTrunc:
		return &ir.Const{Ty: in.Ty, Bits: ir.NormalizeInt(in.Ty, args[0].Bits)}, true
	case in.Op == ir.OpZExt:
		return &ir.Const{Ty: in.Ty, Bits: zext(args[0])}, true
	case in.Op == ir.OpSExt:
		return &ir.Const{Ty: in.Ty, Bits: args[0].Bits}, true
	case in.Op == ir.OpSIToFP:
		return ir.ConstFloat(float64(args[0].Int())), true
	case in.Op == ir.OpFPToSI:
		w := in.Ty.Bits()
		if w < 32 {
			w = 32
		}
		return &ir.Const{Ty: in.Ty, Bits: ir.NormalizeInt(in.Ty, uint64(rt.FpToSI(w, args[0].Float())))}, true
	}
	return nil, false
}

func foldIntBin(op ir.Op, ty ir.Type, xc, yc *ir.Const) (*ir.Const, bool) {
	x, y := xc.Bits, yc.Bits
	var r uint64
	switch op {
	case ir.OpAdd:
		r = x + y
	case ir.OpSub:
		r = x - y
	case ir.OpMul:
		r = x * y
	case ir.OpAnd:
		r = x & y
	case ir.OpOr:
		r = x | y
	case ir.OpXor:
		r = x ^ y
	case ir.OpShl:
		r = x << shiftCount(ty, y)
	case ir.OpAShr:
		r = uint64(int64(x) >> shiftCount(ty, y))
	case ir.OpLShr:
		r = zextBits(ty, x) >> shiftCount(ty, y)
	case ir.OpSDiv, ir.OpSRem:
		yi := int64(y)
		xi := int64(x)
		if yi == 0 {
			return nil, false // must trap at runtime
		}
		if yi == -1 && (ty == ir.I32 || ty == ir.I64) && xi == minInt(ty) {
			return nil, false
		}
		if op == ir.OpSDiv {
			r = uint64(xi / yi)
		} else {
			r = uint64(xi % yi)
		}
	default:
		return nil, false
	}
	return &ir.Const{Ty: ty, Bits: ir.NormalizeInt(ty, r)}, true
}

func shiftCount(ty ir.Type, y uint64) uint64 {
	if ty.Bits() >= 64 {
		return y & 63
	}
	return y & 31
}

func zext(c *ir.Const) uint64 { return zextBits(c.Ty, c.Bits) }

func zextBits(ty ir.Type, v uint64) uint64 {
	switch ty {
	case ir.I1:
		return v & 1
	case ir.I8:
		return v & 0xff
	case ir.I32:
		return v & 0xffff_ffff
	default:
		return v
	}
}

func minInt(ty ir.Type) int64 {
	switch ty {
	case ir.I32:
		return math.MinInt32
	default:
		return math.MinInt64
	}
}

func evalICmp(p ir.Pred, xc, yc *ir.Const) bool {
	xs, ys := xc.Int(), yc.Int()
	xu, yu := zext(xc), zext(yc)
	if xc.Ty == ir.Ptr {
		xu, yu = xc.Bits, yc.Bits
	}
	switch p {
	case ir.PredEQ:
		return xc.Bits == yc.Bits
	case ir.PredNE:
		return xc.Bits != yc.Bits
	case ir.PredSLT:
		return xs < ys
	case ir.PredSLE:
		return xs <= ys
	case ir.PredSGT:
		return xs > ys
	case ir.PredSGE:
		return xs >= ys
	case ir.PredULT:
		return xu < yu
	case ir.PredULE:
		return xu <= yu
	case ir.PredUGT:
		return xu > yu
	case ir.PredUGE:
		return xu >= yu
	default:
		return false
	}
}

func evalFCmp(p ir.Pred, x, y float64) bool {
	switch p {
	case ir.PredOEQ:
		return x == y
	case ir.PredONE:
		return x != y && !math.IsNaN(x) && !math.IsNaN(y)
	case ir.PredOLT:
		return x < y
	case ir.PredOLE:
		return x <= y
	case ir.PredOGT:
		return x > y
	case ir.PredOGE:
		return x >= y
	default:
		return false
	}
}
