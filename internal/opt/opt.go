// Package opt implements the mid-end optimization passes the paper's
// comparison-penetration analysis refers to (§5.2: constant propagation,
// dead-code elimination, common-subexpression elimination, CFG
// simplification). The passes run to fixpoint over each function.
//
// The passes also demonstrate, at IR level, why protection must be the
// LAST transform in a pipeline: running them over a duplicated program
// legally removes the redundant copies and constant-folds the checkers —
// the same nullification the backend's block-local folding performs on
// comparison checks (see TestOptimizerNullifiesDuplication).
package opt

import "flowery/internal/ir"

// Pass is one rewrite over a single function. Run reports whether it
// changed anything.
type Pass interface {
	Name() string
	Run(f *ir.Function) bool
}

// Standard returns the default pipeline in the order LLVM's -O1-ish
// pipelines apply them.
func Standard() []Pass {
	return []Pass{ConstProp{}, InstCombine{}, LocalCSE{}, SimplifyCFG{}, DCE{}}
}

// Run applies the passes to every function to fixpoint (bounded to keep
// pathological inputs from looping) and returns the number of
// pass-applications that changed something.
func Run(m *ir.Module, passes []Pass) int {
	changed := 0
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for iter := 0; iter < 10; iter++ {
			any := false
			for _, p := range passes {
				if p.Run(f) {
					changed++
					any = true
				}
			}
			if !any {
				break
			}
		}
		f.Renumber()
	}
	return changed
}

// replaceUses rewrites every use of old to new within f.
func replaceUses(f *ir.Function, old *ir.Instr, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}
