package opt

import "flowery/internal/ir"

// InstCombine applies local algebraic identities (the peephole subset of
// LLVM's instcombine): x+0, x-0, x*1, x*0, x&0, x&-1, x|0, x^0, x^x,
// x-x, x<<0, x>>0, x/1, double negation through 0-(0-x), and compare
// tautologies x==x / x!=x (for non-float types, where they are exact).
type InstCombine struct{}

// Name implements Pass.
func (InstCombine) Name() string { return "instcombine" }

// Run implements Pass.
func (InstCombine) Run(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if v, ok := simplify(in); ok {
				replaceUses(f, in, v)
				changed = true
			}
		}
	}
	return changed
}

// simplify returns a replacement value for in, if an identity applies.
// Only value replacement is done here; the dead instruction is left for
// DCE. All rewrites must be exact (bit-identical for every input), which
// is why float arithmetic identities (x+0.0 is NOT exact for -0.0) are
// excluded.
func simplify(in *ir.Instr) (ir.Value, bool) {
	if !in.HasResult() || in.Ty == ir.F64 {
		return nil, false
	}
	constOf := func(v ir.Value) (*ir.Const, bool) {
		c, ok := v.(*ir.Const)
		return c, ok
	}
	switch in.Op {
	case ir.OpAdd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr, ir.OpLShr, ir.OpSub:
		// Right-identity zero.
		if c, ok := constOf(in.Args[1]); ok && c.Bits == 0 {
			return in.Args[0], true
		}
	}
	switch in.Op {
	case ir.OpAdd, ir.OpOr:
		// Left-identity zero (commutative).
		if c, ok := constOf(in.Args[0]); ok && c.Bits == 0 {
			return in.Args[1], true
		}
	case ir.OpXor:
		if c, ok := constOf(in.Args[0]); ok && c.Bits == 0 {
			return in.Args[1], true
		}
		if in.Args[0] == in.Args[1] {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpSub:
		if in.Args[0] == in.Args[1] {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpMul:
		for i, other := 0, 1; i < 2; i, other = i+1, 0 {
			if c, ok := constOf(in.Args[i]); ok {
				switch c.Int() {
				case 1:
					return in.Args[other], true
				case 0:
					return ir.ConstInt(in.Ty, 0), true
				}
			}
		}
	case ir.OpAnd:
		for i, other := 0, 1; i < 2; i, other = i+1, 0 {
			if c, ok := constOf(in.Args[i]); ok {
				if c.Bits == 0 {
					return ir.ConstInt(in.Ty, 0), true
				}
				if isAllOnes(in.Ty, c) {
					return in.Args[other], true
				}
			}
		}
		if in.Args[0] == in.Args[1] {
			return in.Args[0], true
		}
	case ir.OpSDiv:
		if c, ok := constOf(in.Args[1]); ok && c.Int() == 1 {
			return in.Args[0], true
		}
	case ir.OpICmp:
		if in.Args[0] == in.Args[1] {
			switch in.Pred {
			case ir.PredEQ, ir.PredSLE, ir.PredSGE, ir.PredULE, ir.PredUGE:
				return ir.ConstBool(true), true
			case ir.PredNE, ir.PredSLT, ir.PredSGT, ir.PredULT, ir.PredUGT:
				return ir.ConstBool(false), true
			}
		}
	case ir.OpZExt, ir.OpSExt:
		// Extending an i1 compare then testing against zero is left to
		// other passes; only the trivial same-width case never occurs
		// (verifier forbids it).
	}
	return nil, false
}

// isAllOnes reports whether c is the all-ones pattern of its type. The
// canonical (sign-extended) form of -1 is all 64 bits set for i8/i32/i64;
// for i1 the all-ones pattern is true.
func isAllOnes(ty ir.Type, c *ir.Const) bool {
	if ty == ir.I1 {
		return c.Bits == 1
	}
	return c.Bits == ^uint64(0)
}
