package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a floweryd daemon. The zero HTTPClient falls back to
// a default with no overall timeout — result streams are long-lived by
// design (a submitted campaign may run for minutes).
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the transport (nil = a default client).
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{}
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// decodeError turns a non-2xx response into a readable error, favoring
// the JSON error envelope.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	var e Error
	if json.Unmarshal(body, &e) == nil && e.Err != "" {
		return fmt.Errorf("daemon: %s (HTTP %d)", e.Err, resp.StatusCode)
	}
	return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a spec and returns the acknowledgment. The spec is
// normalized client-side first so malformed combinations fail before
// any network traffic.
func (c *Client) Submit(spec JobSpec) (SubmitResponse, error) {
	if err := spec.Normalize(); err != nil {
		return SubmitResponse{}, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, err
	}
	resp, err := c.http().Post(c.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return SubmitResponse{}, decodeError(resp)
	}
	var sr SubmitResponse
	return sr, json.NewDecoder(resp.Body).Decode(&sr)
}

// Job fetches one job's current state.
func (c *Client) Job(id string) (JobInfo, error) {
	var ji JobInfo
	err := c.getJSON("/jobs/"+id, &ji)
	return ji, err
}

// Jobs lists every job the daemon knows, newest first.
func (c *Client) Jobs() ([]JobInfo, error) {
	var js []JobInfo
	err := c.getJSON("/jobs", &js)
	return js, err
}

// Cancel cancels a queued job and returns its resulting state.
func (c *Client) Cancel(id string) (JobInfo, error) {
	req, err := http.NewRequest(http.MethodDelete, c.url("/jobs/"+id), nil)
	if err != nil {
		return JobInfo{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return JobInfo{}, decodeError(resp)
	}
	var ji JobInfo
	return ji, json.NewDecoder(resp.Body).Decode(&ji)
}

// Health fetches /healthz.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.getJSON("/healthz", &h)
	return h, err
}

// Metrics fetches a Prometheus text page: the daemon's at path
// "/metrics", a job's at "/jobs/{id}/metrics".
func (c *Client) Metrics(path string) ([]byte, error) {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Reclog downloads a job's raw binary record log (blocks until the job
// finishes).
func (c *Client) Reclog(id string) ([]byte, error) {
	resp, err := c.http().Get(c.url("/jobs/" + id + "/reclog"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// ResultStream iterates the NDJSON result stream of one job.
type ResultStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Results opens the job's result stream. The stream blocks server-side
// until results exist; Next returns lines as they arrive.
func (c *Client) Results(id string) (*ResultStream, error) {
	resp, err := c.http().Get(c.url("/jobs/" + id + "/results"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	return &ResultStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next line, or io.EOF at end of stream.
func (s *ResultStream) Next() (ResultLine, error) {
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rl ResultLine
		if err := json.Unmarshal(line, &rl); err != nil {
			return ResultLine{}, fmt.Errorf("daemon: malformed result line: %w", err)
		}
		return rl, nil
	}
	if err := s.sc.Err(); err != nil {
		return ResultLine{}, err
	}
	return ResultLine{}, io.EOF
}

// Close releases the stream.
func (s *ResultStream) Close() error { return s.body.Close() }

// WaitHealthy polls /healthz until the daemon answers or the deadline
// passes — the startup handshake scripts and tests use.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		h, err := c.Health()
		if err == nil && h.Status == "ok" {
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("status %q", h.Status)
			}
			return fmt.Errorf("daemon at %s not healthy after %v: %w", c.Base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
