// Package api defines the request/response types of the floweryd HTTP
// service, shared by the server (internal/service), the daemon binary
// (cmd/floweryd), and the client (`flowery remote`). The split follows
// brimdata/zed's layering: api holds the wire vocabulary and nothing
// else, the service layer owns execution, and both ends of the wire
// compile against one set of types so they cannot drift.
//
// Endpoints (all JSON unless noted):
//
//	POST   /jobs               submit a JobSpec        → SubmitResponse
//	GET    /jobs               list jobs               → []JobInfo
//	GET    /jobs/{id}          one job                 → JobInfo
//	DELETE /jobs/{id}          cancel a queued job     → JobInfo
//	GET    /jobs/{id}/results  stream results          → NDJSON ResultLine per line
//	GET    /jobs/{id}/reclog   raw record log          → binary (internal/reclog)
//	GET    /jobs/{id}/metrics  per-job telemetry       → Prometheus text
//	GET    /metrics            daemon telemetry        → Prometheus text
//	GET    /healthz            liveness + buildinfo    → Health
package api

import (
	"encoding/json"
	"fmt"
	"time"

	"flowery/internal/campaign"
)

// Job states. A job moves queued → running → one of done/failed;
// cancellation is only observable from queued (the service never
// interrupts a running campaign mid-injection).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job kinds.
const (
	// KindCampaign is one fault-injection campaign — the daemon form of
	// `flowery inject`.
	KindCampaign = "campaign"
	// KindStudy is a full per-benchmark evaluation — the daemon form of
	// `experiments -json` — returning the experiment JSON document.
	KindStudy = "study"
)

// JobSpec is a submission: the same knobs the batch CLIs consume,
// with the same validation, so a spec that runs under `flowery inject`
// runs under the daemon and vice versa.
type JobSpec struct {
	// Kind selects campaign (default) or study.
	Kind string `json:"kind,omitempty"`

	// Benchmark names a built-in benchmark; IR carries inline textual IR
	// (as printed by `flowery ir`). Campaign jobs take exactly one of
	// the two; study jobs instead take Benchmarks (empty = all).
	Benchmark  string   `json:"benchmark,omitempty"`
	IR         string   `json:"ir,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Campaign shape (campaign jobs; Runs/Samples/Seed also scale study
	// jobs). Zero values take the server's defaults.
	Layer    string `json:"layer,omitempty"` // "ir" | "asm" (default "asm")
	Runs     int    `json:"runs,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Samples  int    `json:"samples,omitempty"`
	MaxSteps int64  `json:"max_steps,omitempty"`

	// Protection knobs (campaign jobs), mirroring `flowery inject`.
	Protect bool    `json:"protect,omitempty"`
	Level   float64 `json:"level,omitempty"` // (0,1]; 0 = 1.0
	Flowery bool    `json:"flowery,omitempty"`

	// Campaign strategy knobs.
	Prune      bool `json:"prune,omitempty"`
	Pilots     int  `json:"pilots,omitempty"`      // with Prune; 0 = server default
	MaskStatic bool `json:"mask_static,omitempty"` // with Prune; score proven-masked bits statically
	// Sections runs the campaign compositionally: one sub-campaign per
	// program section, composed into whole-program statistics, with
	// unchanged sections recalled from the artifact store.
	Sections bool `json:"sections,omitempty"`

	// Scheduling knobs (never outcome-relevant).
	Workers      int `json:"workers,omitempty"`
	Shards       int `json:"shards,omitempty"`
	ShardWorkers int `json:"shard_workers,omitempty"`
	// RemoteWorkers fans the shards out to socket workers registered
	// with the daemon's -shard-listen hub instead of local worker
	// processes. Requires Shards > 0; the merged statistics are
	// bit-identical to local execution (DESIGN.md §17).
	RemoteWorkers bool `json:"remote_workers,omitempty"`

	// Records asks for per-run records: it enables the NDJSON record
	// stream and the raw reclog download, and forces execution (a
	// record-bearing job is never served from the artifact store).
	Records bool `json:"records,omitempty"`
}

// Defaults the server applies to zero-valued fields.
const (
	DefaultRuns    = 1000
	DefaultSamples = 800
	DefaultSeed    = 2023
	DefaultLevel   = 1.0
)

// maxPilots mirrors campaign.MaxPilotsPerClass without forcing clients
// through the campaign package's documentation.
const maxPilots = campaign.MaxPilotsPerClass

// Normalize fills defaults and validates the spec, returning a one-line
// error naming the offending combination. It is the single validation
// path: `flowery inject` calls it before running locally, `flowery
// remote` before submitting, and the service before queueing — so an
// inconsistent flag combination fails identically everywhere, up front,
// instead of deep inside a run.
func (s *JobSpec) Normalize() error {
	switch s.Kind {
	case "":
		s.Kind = KindCampaign
	case KindCampaign, KindStudy:
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", s.Kind, KindCampaign, KindStudy)
	}
	if s.Runs == 0 {
		s.Runs = DefaultRuns
	}
	if s.Samples == 0 {
		s.Samples = DefaultSamples
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Level == 0 {
		s.Level = DefaultLevel
	}
	if s.Layer == "" {
		s.Layer = "asm"
	}

	if s.Runs < 0 {
		return fmt.Errorf("-runs must be positive (got %d)", s.Runs)
	}
	if s.Samples < 0 {
		return fmt.Errorf("-samples must be positive (got %d)", s.Samples)
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("max steps must be >= 0 (got %d)", s.MaxSteps)
	}
	if s.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d; 0 means GOMAXPROCS)", s.Workers)
	}
	if s.Shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d; 0 means unsharded)", s.Shards)
	}
	if s.ShardWorkers < 0 {
		return fmt.Errorf("-shard-workers must be >= 0 (got %d)", s.ShardWorkers)
	}
	if s.ShardWorkers > 1 && s.Shards <= 0 {
		return fmt.Errorf("-shard-workers %d needs -shards (worker processes execute shard ranges)", s.ShardWorkers)
	}
	if s.RemoteWorkers && s.Shards <= 0 {
		return fmt.Errorf("-remote-workers needs -shards (remote workers execute shard ranges)")
	}
	if s.RemoteWorkers && s.ShardWorkers > 1 {
		return fmt.Errorf("-remote-workers and -shard-workers conflict: pick the socket fleet or local worker processes")
	}
	if s.Level <= 0 || s.Level > 1 {
		return fmt.Errorf("-level must be in (0,1] (got %g)", s.Level)
	}

	if s.Kind == KindStudy {
		if s.Benchmark != "" || s.IR != "" {
			return fmt.Errorf("study jobs take -bench lists, not a single benchmark or inline IR")
		}
		if s.Prune || s.MaskStatic || s.Records {
			return fmt.Errorf("study jobs support neither -prune/-maskstatic nor per-run records")
		}
		if s.Sections {
			return fmt.Errorf("study jobs do not take -sections (submit sectioned campaigns per program)")
		}
		if s.RemoteWorkers {
			return fmt.Errorf("study jobs do not take -remote-workers (submit sharded campaigns per program)")
		}
		return nil
	}

	if (s.Benchmark == "") == (s.IR == "") {
		return fmt.Errorf("campaign jobs need exactly one program: a benchmark name or inline IR")
	}
	if len(s.Benchmarks) > 0 {
		return fmt.Errorf("benchmark lists are for study jobs; campaign jobs name one program")
	}
	if s.Layer != "ir" && s.Layer != "asm" {
		return fmt.Errorf("-layer must be ir or asm (got %q)", s.Layer)
	}
	if s.Prune {
		if s.Pilots == 0 {
			s.Pilots = 3
		}
		if s.Pilots < 1 || s.Pilots > maxPilots {
			return fmt.Errorf("-pilots must be in [1,%d] with -prune (got %d)", maxPilots, s.Pilots)
		}
		if s.Records {
			return fmt.Errorf("-prune and -reclog/records conflict: pruned campaigns have no per-run population sample to record")
		}
		if s.Shards > 0 {
			return fmt.Errorf("-prune and -shards conflict: pruned campaigns stratify instead of sharding")
		}
	} else {
		if s.Pilots != 0 {
			return fmt.Errorf("-pilots is only meaningful with -prune (got %d)", s.Pilots)
		}
		if s.MaskStatic {
			return fmt.Errorf("-maskstatic needs -prune (static bit masking composes into pruned campaigns)")
		}
	}
	if s.Sections {
		if s.Records {
			return fmt.Errorf("-sections and -reclog/records conflict: sectioned campaigns compose summaries and keep no per-run records")
		}
		if s.Shards > 0 {
			return fmt.Errorf("-sections and -shards conflict: sectioned campaigns partition by program section instead of run range")
		}
	}
	return nil
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// JobInfo is the public view of one job.
type JobInfo struct {
	ID    string  `json:"id"`
	Kind  string  `json:"kind"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	Error string  `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Stats carries a done campaign job's statistics.
	Stats *campaign.Stats `json:"stats,omitempty"`
	// Records is the number of per-run records captured.
	Records int `json:"records,omitempty"`
}

// Record is the NDJSON form of one per-run record, with outcome and
// origin as names (matching campaign's JSON conventions) rather than
// enum ordinals.
type Record struct {
	Run     int64  `json:"run"`
	Outcome string `json:"outcome"`
	Origin  string `json:"origin,omitempty"`
	Target  int64  `json:"target"`
	Bit     uint8  `json:"bit"`
}

// ResultLine is one line of the /jobs/{id}/results NDJSON stream:
// record lines (when the job captured records) in run order, then
// exactly one terminal line — stats for campaign jobs, study for study
// jobs, or error.
type ResultLine struct {
	Record *Record         `json:"record,omitempty"`
	Stats  *campaign.Stats `json:"stats,omitempty"`
	Study  json.RawMessage `json:"study,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Health is the /healthz document.
type Health struct {
	Status  string         `json:"status"`
	Version string         `json:"version"`
	Jobs    map[string]int `json:"jobs"` // state → count
}

// Error is the JSON error envelope non-2xx responses carry.
type Error struct {
	Err string `json:"error"`
}
