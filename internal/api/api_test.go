package api

import (
	"fmt"
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	s := JobSpec{Benchmark: "crc32"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindCampaign || s.Runs != DefaultRuns || s.Samples != DefaultSamples ||
		s.Seed != DefaultSeed || s.Level != DefaultLevel || s.Layer != "asm" {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Normalizing twice is a no-op.
	before := fmt.Sprintf("%+v", s)
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if after := fmt.Sprintf("%+v", s); after != before {
		t.Fatalf("second Normalize changed the spec:\nbefore %s\nafter  %s", before, after)
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := map[string]struct {
		spec JobSpec
		want string // substring of the one-line error
	}{
		"no program":         {JobSpec{}, "exactly one program"},
		"two programs":       {JobSpec{Benchmark: "crc32", IR: "func main() {}"}, "exactly one program"},
		"unknown kind":       {JobSpec{Kind: "bake", Benchmark: "crc32"}, "unknown job kind"},
		"bad layer":          {JobSpec{Benchmark: "crc32", Layer: "microcode"}, "-layer"},
		"negative runs":      {JobSpec{Benchmark: "crc32", Runs: -5}, "-runs"},
		"negative samples":   {JobSpec{Benchmark: "crc32", Samples: -1}, "-samples"},
		"negative steps":     {JobSpec{Benchmark: "crc32", MaxSteps: -1}, "max steps"},
		"negative workers":   {JobSpec{Benchmark: "crc32", Workers: -1}, "-workers"},
		"level too high":     {JobSpec{Benchmark: "crc32", Level: 1.5}, "-level"},
		"level negative":     {JobSpec{Benchmark: "crc32", Level: -0.25}, "-level"},
		"workers w/o shards": {JobSpec{Benchmark: "crc32", ShardWorkers: 4}, "needs -shards"},
		"prune+records":      {JobSpec{Benchmark: "crc32", Prune: true, Records: true}, "conflict"},
		"prune+shards":       {JobSpec{Benchmark: "crc32", Prune: true, Shards: 4}, "conflict"},
		"pilots w/o prune":   {JobSpec{Benchmark: "crc32", Pilots: 3}, "-pilots"},
		"pilots too many":    {JobSpec{Benchmark: "crc32", Prune: true, Pilots: maxPilots + 1}, "-pilots"},
		"study w/ benchmark": {JobSpec{Kind: KindStudy, Benchmark: "crc32"}, "study jobs"},
		"study w/ prune":     {JobSpec{Kind: KindStudy, Prune: true}, "study jobs"},
		"study w/ records":   {JobSpec{Kind: KindStudy, Records: true}, "study jobs"},
		"study w/ sections":  {JobSpec{Kind: KindStudy, Sections: true}, "-sections"},
		"campaign w/ list":   {JobSpec{Benchmark: "crc32", Benchmarks: []string{"qsort"}}, "study jobs"},
		"sections+records":   {JobSpec{Benchmark: "crc32", Sections: true, Records: true}, "conflict"},
		"sections+shards":    {JobSpec{Benchmark: "crc32", Sections: true, Shards: 4}, "conflict"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) succeeded, want error mentioning %q", tc.spec, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if strings.ContainsAny(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

func TestNormalizeAcceptsValidCombos(t *testing.T) {
	for name, spec := range map[string]JobSpec{
		"pruned":      {Benchmark: "crc32", Prune: true, Pilots: 5},
		"sectioned":   {Benchmark: "crc32", Sections: true},
		"sec+pruned":  {Benchmark: "crc32", Sections: true, Prune: true, MaskStatic: true},
		"sharded":     {Benchmark: "crc32", Shards: 4, ShardWorkers: 2},
		"ir layer":    {IR: "func main() {}", Layer: "ir", Records: true},
		"study":       {Kind: KindStudy, Benchmarks: []string{"crc32", "qsort"}},
		"study all":   {Kind: KindStudy},
		"protected":   {Benchmark: "crc32", Protect: true, Level: 0.5, Flowery: true},
		"max pilots":  {Benchmark: "crc32", Prune: true, Pilots: maxPilots},
		"bounded run": {Benchmark: "crc32", MaxSteps: 1 << 20, Workers: 2},
	} {
		t.Run(name, func(t *testing.T) {
			if err := spec.Normalize(); err != nil {
				t.Fatalf("Normalize rejected a valid spec: %v", err)
			}
		})
	}
}
