// Package progen generates random, well-formed, terminating IR programs
// for differential testing. Every generated program must (a) verify,
// (b) produce identical output on the IR interpreter and the assembly
// simulator, and (c) keep doing so after the duplication and Flowery
// passes — the strongest correctness property the repository tests.
package progen

import (
	"fmt"
	"math/rand"

	"flowery/internal/ir"
)

// Config bounds the generated program.
type Config struct {
	// MaxStmts bounds statements per block sequence.
	MaxStmts int
	// MaxDepth bounds nesting of control flow.
	MaxDepth int
	// MaxExprDepth bounds expression tree depth.
	MaxExprDepth int
	// Helpers is the number of auxiliary functions.
	Helpers int
}

// DefaultConfig returns the bounds used by the repository's tests.
func DefaultConfig() Config {
	return Config{MaxStmts: 6, MaxDepth: 3, MaxExprDepth: 4, Helpers: 2}
}

// Generate builds a random module from the seed. Equal seeds yield equal
// modules.
func Generate(seed int64, cfg Config) *ir.Module {
	g := &gen{
		r:   rand.New(rand.NewSource(seed)),
		cfg: cfg,
		m:   ir.NewModule(fmt.Sprintf("progen%d", seed)),
	}
	g.buildGlobals()
	g.buildHelpers()
	g.buildMain()
	if err := g.m.Verify(); err != nil {
		panic(fmt.Sprintf("progen: generated invalid module (seed %d): %v", seed, err))
	}
	return g.m
}

type gen struct {
	r   *rand.Rand
	cfg Config
	m   *ir.Module

	i64Arr *ir.Global
	f64Arr *ir.Global
	i8Arr  *ir.Global

	helpers []*ir.Function

	// Per-function state.
	b      *ir.Builder
	locals map[ir.Type][]*ir.Instr // alloca slots per stored type
	params []*ir.Param
}

const (
	i64ArrLen = 16
	f64ArrLen = 8
	i8ArrLen  = 32
)

func (g *gen) buildGlobals() {
	ints := make([]int64, i64ArrLen)
	for i := range ints {
		ints[i] = g.r.Int63n(2000) - 1000
	}
	g.i64Arr = g.m.NewGlobalI64("gi64", ints)

	floats := make([]float64, f64ArrLen)
	for i := range floats {
		floats[i] = float64(g.r.Intn(4000)-2000) / 8
	}
	g.f64Arr = g.m.NewGlobalF64("gf64", floats)

	bytes := make([]byte, i8ArrLen)
	g.r.Read(bytes)
	g.i8Arr = g.m.NewGlobalData("gi8", bytes)
}

func (g *gen) buildHelpers() {
	for i := 0; i < g.cfg.Helpers; i++ {
		var f *ir.Function
		if i%2 == 0 {
			f = g.m.NewFunction(fmt.Sprintf("helper%d", i), ir.I64, ir.I64, ir.I64)
		} else {
			f = g.m.NewFunction(fmt.Sprintf("helper%d", i), ir.F64, ir.F64)
		}
		g.helpers = append(g.helpers, f)
		g.beginFunc(f)
		g.stmts(g.cfg.MaxDepth - 1)
		if f.RetType == ir.F64 {
			g.b.Ret(g.expr(ir.F64, g.cfg.MaxExprDepth))
		} else {
			g.b.Ret(g.expr(ir.I64, g.cfg.MaxExprDepth))
		}
	}
}

func (g *gen) buildMain() {
	f := g.m.NewFunction("main", ir.I64)
	g.beginFunc(f)
	g.stmts(g.cfg.MaxDepth)
	// Print a digest of all state so silent corruption is observable.
	for _, ty := range []ir.Type{ir.I64, ir.I32, ir.I8, ir.I1} {
		for _, slot := range g.locals[ty] {
			v := g.b.Load(ty, slot)
			g.b.PrintI64(g.widen(v))
		}
	}
	for _, slot := range g.locals[ir.F64] {
		g.b.PrintF64(g.b.Load(ir.F64, slot))
	}
	g.b.ForLoop("dump", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, i64ArrLen), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		g.b.PrintI64(g.b.LoadElem(ir.I64, g.i64Arr, i))
	})
	g.b.Ret(ir.ConstInt(ir.I64, 0))
}

// beginFunc sets up builder state: a handful of initialized locals of
// each type.
func (g *gen) beginFunc(f *ir.Function) {
	g.b = ir.NewBuilder(f)
	g.params = f.Params
	g.locals = make(map[ir.Type][]*ir.Instr)
	for _, ty := range []ir.Type{ir.I64, ir.I32, ir.I8, ir.I1, ir.F64} {
		n := 1 + g.r.Intn(3)
		for i := 0; i < n; i++ {
			slot := g.b.AllocVar(ty)
			g.locals[ty] = append(g.locals[ty], slot)
			g.b.Store(g.constOf(ty), slot)
		}
	}
}

// widen converts any integer value to i64 for printing.
func (g *gen) widen(v ir.Value) ir.Value {
	switch v.Type() {
	case ir.I64:
		return v
	case ir.I1:
		return g.b.ZExt(ir.I64, v)
	default:
		return g.b.SExt(ir.I64, v)
	}
}

func (g *gen) constOf(ty ir.Type) *ir.Const {
	switch ty {
	case ir.F64:
		return ir.ConstFloat(float64(g.r.Intn(2000)-1000) / 16)
	case ir.I1:
		return ir.ConstBool(g.r.Intn(2) == 0)
	case ir.I8:
		return ir.ConstInt(ir.I8, int64(g.r.Intn(256)-128))
	case ir.I32:
		return ir.ConstInt(ir.I32, int64(g.r.Int31())-1<<30)
	default:
		return ir.ConstInt(ir.I64, g.r.Int63n(1<<32)-1<<31)
	}
}

// stmts emits a random statement sequence.
func (g *gen) stmts(depth int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	choice := g.r.Intn(10)
	switch {
	case choice < 4: // assignment to a local
		ty := g.anyType()
		slot := g.pick(g.locals[ty])
		g.b.Store(g.expr(ty, g.cfg.MaxExprDepth), slot)

	case choice < 6 && depth > 0: // if / if-else
		cond := g.boolExpr()
		if g.r.Intn(2) == 0 {
			g.b.If(cond, func() { g.stmts(depth - 1) }, nil)
		} else {
			g.b.If(cond, func() { g.stmts(depth - 1) }, func() { g.stmts(depth - 1) })
		}

	case choice < 7 && depth > 0: // bounded loop
		trip := int64(2 + g.r.Intn(5))
		name := fmt.Sprintf("l%d_%d", depth, g.r.Intn(1000))
		g.b.ForLoop(name, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, trip), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
			g.stmts(depth - 1)
			// Touch the global array so loops have observable effects.
			idx := g.b.And(i, ir.ConstInt(ir.I64, i64ArrLen-1))
			old := g.b.LoadElem(ir.I64, g.i64Arr, idx)
			g.b.StoreElem(ir.I64, g.i64Arr, idx, g.b.Add(old, g.expr(ir.I64, 1)))
		})

	case choice < 8: // store to a global array
		g.arrayStore()

	default: // print something
		if g.r.Intn(2) == 0 {
			g.b.PrintI64(g.expr(ir.I64, 2))
		} else {
			g.b.PrintF64(g.expr(ir.F64, 2))
		}
	}
}

func (g *gen) arrayStore() {
	switch g.r.Intn(3) {
	case 0:
		idx := g.b.And(g.expr(ir.I64, 2), ir.ConstInt(ir.I64, i64ArrLen-1))
		g.b.StoreElem(ir.I64, g.i64Arr, idx, g.expr(ir.I64, 2))
	case 1:
		idx := g.b.And(g.expr(ir.I64, 2), ir.ConstInt(ir.I64, f64ArrLen-1))
		g.b.StoreElem(ir.F64, g.f64Arr, idx, g.expr(ir.F64, 2))
	default:
		idx := g.b.And(g.expr(ir.I64, 2), ir.ConstInt(ir.I64, i8ArrLen-1))
		g.b.StoreElem(ir.I8, g.i8Arr, idx, g.expr(ir.I8, 2))
	}
}

func (g *gen) anyType() ir.Type {
	types := []ir.Type{ir.I64, ir.I64, ir.I32, ir.I8, ir.I1, ir.F64}
	return types[g.r.Intn(len(types))]
}

func (g *gen) pick(slots []*ir.Instr) *ir.Instr {
	return slots[g.r.Intn(len(slots))]
}

// boolExpr produces an i1.
func (g *gen) boolExpr() ir.Value {
	if g.r.Intn(4) == 0 && len(g.locals[ir.I1]) > 0 {
		return g.b.Load(ir.I1, g.pick(g.locals[ir.I1]))
	}
	if g.r.Intn(3) == 0 {
		preds := []ir.Pred{ir.PredOEQ, ir.PredONE, ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE}
		return g.b.FCmp(preds[g.r.Intn(len(preds))], g.expr(ir.F64, 2), g.expr(ir.F64, 2))
	}
	preds := []ir.Pred{ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE, ir.PredULT, ir.PredUGE}
	ty := ir.I64
	if g.r.Intn(2) == 0 {
		ty = ir.I32
	}
	return g.b.ICmp(preds[g.r.Intn(len(preds))], g.expr(ty, 2), g.expr(ty, 2))
}

// expr produces a value of the requested type.
func (g *gen) expr(ty ir.Type, depth int) ir.Value {
	if depth <= 0 || g.r.Intn(5) == 0 {
		return g.leaf(ty)
	}
	if ty == ir.F64 {
		return g.floatExpr(depth)
	}
	if ty == ir.I1 {
		return g.boolExpr()
	}
	switch g.r.Intn(8) {
	case 0: // cast from another width
		return g.castTo(ty, depth)
	case 1: // comparison widened
		c := g.boolExpr()
		if ty == ir.I1 {
			return c
		}
		return g.b.ZExt(ty, c)
	case 2: // division (may legitimately trap on both layers)
		x := g.expr(ty, depth-1)
		y := g.expr(ty, depth-1)
		if g.r.Intn(2) == 0 {
			return g.b.SDiv(x, y)
		}
		return g.b.SRem(x, y)
	case 3: // shift
		x := g.expr(ty, depth-1)
		amt := g.b.And(g.expr(ty, 1), ir.ConstInt(ty, 7))
		ops := []func(a, b ir.Value) *ir.Instr{g.b.Shl, g.b.AShr, g.b.LShr}
		return ops[g.r.Intn(3)](x, amt)
	case 4: // array load
		if ty == ir.I64 {
			idx := g.b.And(g.expr(ir.I64, 1), ir.ConstInt(ir.I64, i64ArrLen-1))
			return g.b.LoadElem(ir.I64, g.i64Arr, idx)
		}
		if ty == ir.I8 {
			idx := g.b.And(g.expr(ir.I64, 1), ir.ConstInt(ir.I64, i8ArrLen-1))
			return g.b.LoadElem(ir.I8, g.i8Arr, idx)
		}
		fallthrough
	case 5: // helper call (main and later helpers only, to avoid recursion)
		if ty == ir.I64 && len(g.helpers) > 0 && g.b.Func.Name == "main" {
			h := g.helpers[0]
			return g.b.Call(h, g.expr(ir.I64, 1), g.expr(ir.I64, 1))
		}
		fallthrough
	default:
		x := g.expr(ty, depth-1)
		y := g.expr(ty, depth-1)
		ops := []func(a, b ir.Value) *ir.Instr{g.b.Add, g.b.Sub, g.b.Mul, g.b.And, g.b.Or, g.b.Xor}
		return ops[g.r.Intn(len(ops))](x, y)
	}
}

func (g *gen) castTo(ty ir.Type, depth int) ir.Value {
	switch ty {
	case ir.I64:
		switch g.r.Intn(3) {
		case 0:
			return g.b.SExt(ir.I64, g.expr(ir.I32, depth-1))
		case 1:
			return g.b.ZExt(ir.I64, g.expr(ir.I8, depth-1))
		default:
			return g.b.FPToSI(ir.I64, g.safeFloat(depth-1))
		}
	case ir.I32:
		switch g.r.Intn(3) {
		case 0:
			return g.b.Trunc(ir.I32, g.expr(ir.I64, depth-1))
		case 1:
			return g.b.SExt(ir.I32, g.expr(ir.I8, depth-1))
		default:
			return g.b.FPToSI(ir.I32, g.safeFloat(depth-1))
		}
	case ir.I8:
		return g.b.Trunc(ir.I8, g.expr(ir.I64, depth-1))
	default:
		return g.leaf(ty)
	}
}

// safeFloat produces a float expression (any value: FpToSI semantics are
// total and identical on both layers).
func (g *gen) safeFloat(depth int) ir.Value { return g.expr(ir.F64, depth) }

func (g *gen) floatExpr(depth int) ir.Value {
	switch g.r.Intn(7) {
	case 0:
		return g.b.SIToFP(g.expr(ir.I64, depth-1))
	case 1:
		idx := g.b.And(g.expr(ir.I64, 1), ir.ConstInt(ir.I64, f64ArrLen-1))
		return g.b.LoadElem(ir.F64, g.f64Arr, idx)
	case 2:
		fns := []string{"sqrt", "fabs", "sin", "cos", "floor"}
		fn := fns[g.r.Intn(len(fns))]
		arg := g.expr(ir.F64, depth-1)
		if fn == "sqrt" {
			arg = g.b.CallNamed("fabs", arg)
		}
		return g.b.CallNamed(fn, arg)
	case 3:
		if len(g.helpers) > 1 && g.b.Func.Name == "main" {
			return g.b.Call(g.helpers[1], g.expr(ir.F64, 1))
		}
		fallthrough
	default:
		x := g.expr(ir.F64, depth-1)
		y := g.expr(ir.F64, depth-1)
		ops := []func(a, b ir.Value) *ir.Instr{g.b.FAdd, g.b.FSub, g.b.FMul, g.b.FDiv}
		return ops[g.r.Intn(len(ops))](x, y)
	}
}

func (g *gen) leaf(ty ir.Type) ir.Value {
	// Prefer locals and params so values flow through the program.
	if len(g.params) > 0 && g.r.Intn(3) == 0 {
		for _, p := range g.params {
			if p.Ty == ty {
				return p
			}
		}
	}
	if g.r.Intn(4) != 0 && len(g.locals[ty]) > 0 {
		return g.b.Load(ty, g.pick(g.locals[ty]))
	}
	return g.constOf(ty)
}
