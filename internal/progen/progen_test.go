package progen

import (
	"testing"

	"flowery/internal/ir"
)

func TestGenerateVerifies(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := Generate(seed, DefaultConfig())
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateCoversConstructs(t *testing.T) {
	// Across a modest corpus, every opcode class the differential tests
	// rely on must appear.
	seen := make(map[ir.Op]bool)
	for seed := int64(0); seed < 30; seed++ {
		m := Generate(seed, DefaultConfig())
		for _, in := range m.EnumerateInstrs() {
			seen[in.Op] = true
		}
	}
	for _, op := range []ir.Op{
		ir.OpAlloca, ir.OpLoad, ir.OpStore, ir.OpAdd, ir.OpMul, ir.OpSDiv,
		ir.OpShl, ir.OpICmp, ir.OpFCmp, ir.OpGEP, ir.OpTrunc, ir.OpZExt,
		ir.OpSExt, ir.OpSIToFP, ir.OpFPToSI, ir.OpCall, ir.OpBr, ir.OpCondBr,
		ir.OpFAdd, ir.OpFDiv,
	} {
		if !seen[op] {
			t.Errorf("corpus never generates %v", op)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	small := Config{MaxStmts: 2, MaxDepth: 1, MaxExprDepth: 2, Helpers: 0}
	big := DefaultConfig()
	var smallN, bigN int
	for seed := int64(0); seed < 10; seed++ {
		smallN += len(Generate(seed, small).EnumerateInstrs())
		bigN += len(Generate(seed, big).EnumerateInstrs())
	}
	if smallN >= bigN {
		t.Fatalf("config scaling inert: small=%d big=%d", smallN, bigN)
	}
}
