package section

import (
	"fmt"
	"strings"

	"flowery/internal/ir"
)

// canonIR renders a set of blocks (one section of a function) in a
// canonical, position-independent form: values defined inside the
// section are numbered in definition order ("%s0", "%s1", …), values
// defined elsewhere in the function are numbered in first-use order
// ("%x0", "%x1", …), parameters by index, and block labels likewise
// ("b0" inside, "t0" outside). Nothing in the rendering depends on
// where the section sits in the function, so inserting or editing
// instructions in *other* sections of the same function leaves this
// section's text — and hence its content hash — unchanged. That is the
// property that lets a loop sub-section's campaign summary survive an
// edit to the surrounding function body.
func canonIR(blocks []*ir.Block) string {
	in := make(map[*ir.Block]bool, len(blocks))
	for _, b := range blocks {
		in[b] = true
	}
	defs := make(map[*ir.Instr]int) // section-local defs, definition order
	exts := make(map[*ir.Instr]int) // external defs, first-use order
	blk := make(map[*ir.Block]int)  // section blocks, layout order
	tgts := make(map[*ir.Block]int) // external branch targets, first-use order
	for i, b := range blocks {
		blk[b] = i
		for _, instr := range b.Instrs {
			if instr.HasResult() {
				defs[instr] = len(defs)
			}
		}
	}
	operand := func(v ir.Value) string {
		switch x := v.(type) {
		case *ir.Instr:
			if id, ok := defs[x]; ok {
				return fmt.Sprintf("%%s%d", id)
			}
			id, ok := exts[x]
			if !ok {
				id = len(exts)
				exts[x] = id
			}
			return fmt.Sprintf("%%x%d", id)
		case *ir.Param:
			return fmt.Sprintf("%%p%d", x.Index)
		default:
			// Constants and globals render position-independently already.
			return v.OperandString()
		}
	}
	label := func(b *ir.Block) string {
		if id, ok := blk[b]; ok {
			return fmt.Sprintf("b%d", id)
		}
		id, ok := tgts[b]
		if !ok {
			id = len(tgts)
			tgts[b] = id
		}
		return fmt.Sprintf("t%d", id)
	}

	var sb strings.Builder
	for _, b := range blocks {
		fmt.Fprintf(&sb, "b%d:\n", blk[b])
		for _, instr := range b.Instrs {
			sb.WriteString("  ")
			if instr.HasResult() {
				fmt.Fprintf(&sb, "%s = ", operand(instr))
			}
			fmt.Fprintf(&sb, "%s %s", instr.Op, instr.Ty)
			if instr.Pred != 0 {
				fmt.Fprintf(&sb, " %s", instr.Pred)
			}
			if instr.Aux != 0 {
				fmt.Fprintf(&sb, " aux=%d", instr.Aux)
			}
			if instr.Callee != nil {
				fmt.Fprintf(&sb, " @%s", instr.Callee.Name)
			}
			for _, a := range instr.Args {
				fmt.Fprintf(&sb, " %s", operand(a))
			}
			for _, t := range instr.Blocks {
				fmt.Fprintf(&sb, " %%%s", label(t))
			}
			if instr.Prot.IsDup || instr.Prot.IsChecker || instr.Prot.IsFlowery {
				fmt.Fprintf(&sb, " ; prot=%t%t%t", instr.Prot.IsDup, instr.Prot.IsChecker, instr.Prot.IsFlowery)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
