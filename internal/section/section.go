// Package section splits a compiled program into sections — functions,
// with large loop nests broken out as sub-sections at IR level — and
// gives each one a content hash that is stable under edits elsewhere in
// the program. Sections are the unit of incremental fault-injection
// analysis (FastFlip, arXiv:2403.13989): a per-section campaign summary
// keyed by the section's content hash survives edits to other
// functions, so re-analysing an edited program only re-injects the
// sections whose hash (or dynamic footprint) changed.
//
// The section table lives at the static-instruction level of one
// execution layer and uses exactly that layer's static index space:
//
//   - IR: the interpreter's flat module-wide instruction index
//     (function declaration order × block order × instruction order —
//     the same enumeration ir.Module.EnumerateInstrs and
//     bitmask.AnalyzeIR use).
//   - asm: the machine's flat code index over asm.Program.Funcs with
//     label markers excluded, matching machine's link().
//
// Content hashes are position-independent. At IR level each section —
// a loop sub-section or the function remainder — hashes a canonical
// rendering of exactly its own blocks (see canonIR): values and branch
// targets are numbered section-locally, so editing one section of a
// function leaves every other section's hash unchanged, within the
// same function and across functions. At asm level sections are whole
// functions hashed over asm.Func.String(), which names labels and
// operands function-locally; asm sections stay function-granular
// because lowering (notably register allocation) mixes the whole
// function, so a sub-function edit legitimately rewrites the
// function's entire assembly — a cross-layer asymmetry DESIGN.md §16
// discusses.
package section

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"flowery/internal/asm"
	"flowery/internal/equiv"
	"flowery/internal/ir"
)

// Sub-sectioning thresholds: a function is split around its outermost
// natural loops only when it is big enough for the split to matter and
// the loop body is a substantial proper subset of it.
const (
	// loopFuncMin is the minimum static instruction count of a function
	// before loop sub-sections are considered.
	loopFuncMin = 48
	// loopBodyMin is the minimum static instruction count of a loop
	// body to become its own sub-section.
	loopBodyMin = 16
)

// Section is one unit of incremental analysis.
type Section struct {
	// ID indexes Table.Sections.
	ID int
	// Func is the containing function's name.
	Func string
	// Name is the display name: the function name, or
	// "func/loop@header" for a loop sub-section.
	Name string
	// Hash is the hex sha256 content hash of the section. It depends
	// only on the containing function's own text (plus the loop header
	// name for sub-sections), never on the rest of the program.
	Hash string
	// Static is the number of static instructions the section covers.
	Static int
}

// Table maps one layer's static instruction index space onto sections.
type Table struct {
	// Layer is "ir" or "asm".
	Layer string
	// Sections lists the sections in static index order of their first
	// instruction.
	Sections []Section

	secOf []int32 // static index → section ID
}

// NumStatic is the size of the static index space the table covers.
func (t *Table) NumStatic() int { return len(t.secOf) }

// SectionOf returns the section ID owning a static instruction index,
// or -1 when the index is out of range.
func (t *Table) SectionOf(static int32) int {
	if static < 0 || int(static) >= len(t.secOf) {
		return -1
	}
	return int(t.secOf[static])
}

// hashText returns the hex sha256 of the concatenated parts, separated
// by NUL so distinct part lists cannot collide by concatenation.
func hashText(parts ...string) string {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildIR builds the section table of a module at the IR layer:
// one section per non-external function, with each sufficiently large
// outermost natural loop split out as a sub-section. Static indices
// follow the interpreter's module-wide enumeration.
func BuildIR(m *ir.Module) *Table {
	t := &Table{Layer: "ir"}
	for _, f := range m.Funcs {
		if f.External || len(f.Blocks) == 0 {
			continue
		}
		loops := outerLoops(f)

		// Gather each section's blocks in layout order; the hash covers
		// only those blocks, canonically renumbered, so a section's hash
		// survives edits to the function's other sections.
		var remainder []*ir.Block
		loopBlocks := make(map[*ir.Block][]*ir.Block) // header → blocks
		for _, b := range f.Blocks {
			if h := loops[b]; h != nil {
				loopBlocks[h] = append(loopBlocks[h], b)
			} else {
				remainder = append(remainder, b)
			}
		}

		// Section per accepted loop (keyed by header block), plus the
		// function remainder. IDs are assigned on first instruction. The
		// function name enters the hash so structurally identical code in
		// different functions keeps distinct summaries (their calling
		// context differs); the loop header's name disambiguates multiple
		// identical loops within one function.
		loopSec := make(map[*ir.Block]int) // header → section ID
		funcSec := -1
		secID := func(header *ir.Block) int {
			if header != nil {
				id, ok := loopSec[header]
				if !ok {
					id = len(t.Sections)
					t.Sections = append(t.Sections, Section{
						ID:   id,
						Func: f.Name,
						Name: f.Name + "/loop@" + header.Name,
						Hash: hashText("func:"+f.Name, "loop@"+header.Name, canonIR(loopBlocks[header])),
					})
					loopSec[header] = id
				}
				return id
			}
			if funcSec < 0 {
				funcSec = len(t.Sections)
				t.Sections = append(t.Sections, Section{
					ID:   funcSec,
					Func: f.Name,
					Name: f.Name,
					Hash: hashText("func:"+f.Name, canonIR(remainder)),
				})
			}
			return funcSec
		}
		for _, b := range f.Blocks {
			header := loops[b]
			for range b.Instrs {
				id := secID(header)
				t.secOf = append(t.secOf, int32(id))
				t.Sections[id].Static++
			}
		}
	}
	return t
}

// outerLoops finds the outermost natural loops of a function large
// enough to sub-section (see loopFuncMin/loopBodyMin) and returns a
// block → loop-header map for the blocks they own (nil-safe lookups:
// blocks outside any accepted loop are absent).
func outerLoops(f *ir.Function) map[*ir.Block]*ir.Block {
	if f.NumInstrs() < loopFuncMin {
		return nil
	}
	pos := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		pos[b] = i
	}
	preds := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	dom := dominators(f, preds)

	// Natural loop per back edge u→h (h dominates u), merged by header.
	bodies := make(map[*ir.Block]map[*ir.Block]bool) // header → body set
	for _, u := range f.Blocks {
		for _, h := range u.Succs() {
			if !dom[u][pos[h]] {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[*ir.Block]bool{h: true}
				bodies[h] = body
			}
			// Backward reachability from the latch, stopping at the header.
			stack := []*ir.Block{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				stack = append(stack, preds[b]...)
			}
		}
	}

	// Accept loops largest-first so nested loops fold into their
	// outermost enclosing loop; require the body to be a substantial
	// proper subset of the function.
	type loop struct {
		header *ir.Block
		body   map[*ir.Block]bool
		instrs int
	}
	var loops []loop
	for h, body := range bodies {
		n := 0
		for b := range body {
			n += len(b.Instrs)
		}
		if n >= loopBodyMin && n < f.NumInstrs() {
			loops = append(loops, loop{h, body, n})
		}
	}
	// Deterministic order: size descending, header layout position
	// ascending as the tie-break.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0; j-- {
			a, b := &loops[j-1], &loops[j]
			if b.instrs > a.instrs || (b.instrs == a.instrs && pos[b.header] < pos[a.header]) {
				*a, *b = *b, *a
			} else {
				break
			}
		}
	}
	owner := make(map[*ir.Block]*ir.Block)
	for _, l := range loops {
		claimed := false
		for b := range l.body {
			if owner[b] != nil {
				claimed = true
				break
			}
		}
		if claimed {
			continue
		}
		for b := range l.body {
			owner[b] = l.header
		}
	}
	if len(owner) == 0 {
		return nil
	}
	return owner
}

// dominators computes the dominator sets of a function's blocks with
// the classic iterative dataflow: dom[b] is a bitset over block layout
// positions, dom[b][i] true when block i dominates b. Functions here
// are small (at most a few hundred blocks), so the quadratic bitset
// algorithm is plenty.
func dominators(f *ir.Function, preds map[*ir.Block][]*ir.Block) map[*ir.Block][]bool {
	n := len(f.Blocks)
	pos := make(map[*ir.Block]int, n)
	for i, b := range f.Blocks {
		pos[b] = i
	}
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	dom := make(map[*ir.Block][]bool, n)
	for i, b := range f.Blocks {
		d := make([]bool, n)
		if i == 0 {
			d[0] = true
		} else {
			copy(d, all)
		}
		dom[b] = d
	}
	for changed := true; changed; {
		changed = false
		for i, b := range f.Blocks {
			if i == 0 {
				continue
			}
			d := make([]bool, n)
			first := true
			for _, p := range preds[b] {
				pd := dom[p]
				if first {
					copy(d, pd)
					first = false
				} else {
					for j := range d {
						d[j] = d[j] && pd[j]
					}
				}
			}
			if first {
				// Unreachable block: dominated by everything by convention.
				copy(d, all)
			}
			d[i] = true
			cur := dom[b]
			for j := range d {
				if d[j] != cur[j] {
					dom[b] = d
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// BuildASM builds the section table of an assembly program: one section
// per function, indexed by the machine's flat label-free code index.
// Function text (asm.Func.String) uses function-local labels and
// symbolic operands, so it is position-independent like the IR side;
// loop sub-sectioning happens at IR level only.
func BuildASM(p *asm.Program) *Table {
	t := &Table{Layer: "asm"}
	for _, f := range p.Funcs {
		n := 0
		for _, in := range f.Instrs {
			if in.Op != asm.OpLabel {
				n++
			}
		}
		if n == 0 {
			continue
		}
		id := len(t.Sections)
		t.Sections = append(t.Sections, Section{
			ID:     id,
			Func:   f.Name,
			Name:   f.Name,
			Hash:   hashText(f.String()),
			Static: n,
		})
		for i := 0; i < n; i++ {
			t.secOf = append(t.secOf, int32(id))
		}
	}
	return t
}

// Sub is one section's slice of an equivalence partition: the classes
// whose defining static instruction falls in the section, with the
// population and dead-site totals restricted to them. Pilot faults
// drawn from a Sub's class samples are valid whole-program faults (the
// samples carry absolute dynamic target indices).
type Sub struct {
	// ID is the owning section (indexes Table.Sections).
	ID int
	// Part is the restricted partition: Population is the section's
	// dynamic injectable site count.
	Part equiv.Partition
}

// Split partitions an equivalence partition by section. Every class
// belongs to exactly one section (a class is keyed by one static
// instruction), so the sub-populations sum to part.Population exactly.
// Sections that never executed (no classes) are omitted. An error is
// returned if a class's static index is outside the table — the
// partition and table were built from different programs.
func (t *Table) Split(part equiv.Partition) ([]Sub, error) {
	idx := make(map[int]int) // section ID → subs index
	var subs []Sub
	for _, cl := range part.Classes {
		id := t.SectionOf(cl.Static)
		if id < 0 {
			return nil, fmt.Errorf("section: class static index %d outside the %s table (%d static instrs)",
				cl.Static, t.Layer, t.NumStatic())
		}
		si, ok := idx[id]
		if !ok {
			si = len(subs)
			subs = append(subs, Sub{ID: id})
			idx[id] = si
		}
		sub := &subs[si]
		sub.Part.Classes = append(sub.Part.Classes, cl)
		sub.Part.Population += cl.Size
		if cl.Dead {
			sub.Part.DeadSites += cl.Size
		}
	}
	return subs, nil
}
