package section

import (
	"strings"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/ir"
	"flowery/internal/progen"
)

// editFunc inserts a dead `add i64 1, 2` at the top of the named
// function's entry block: a semantics-preserving one-function edit that
// must change only that function's sections.
func editFunc(m *ir.Module, name string) {
	for _, f := range m.Funcs {
		if f.Name != name || f.External || len(f.Blocks) == 0 {
			continue
		}
		f.Blocks[0].InsertAt(0, &ir.Instr{
			Op:   ir.OpAdd,
			Ty:   ir.I64,
			Args: []ir.Value{ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2)},
		})
		return
	}
	panic("section_test: function not found: " + name)
}

func TestBuildIRCoversModule(t *testing.T) {
	m := progen.Generate(19, progen.DefaultConfig())
	tab := BuildIR(m)
	want := 0
	for _, f := range m.Funcs {
		want += f.NumInstrs()
	}
	if tab.NumStatic() != want {
		t.Fatalf("table covers %d static instrs, module has %d", tab.NumStatic(), want)
	}
	sum := 0
	for _, s := range tab.Sections {
		if s.Static == 0 {
			t.Fatalf("empty section %q", s.Name)
		}
		sum += s.Static
	}
	if sum != want {
		t.Fatalf("section sizes sum to %d, want %d", sum, want)
	}
	for i := 0; i < tab.NumStatic(); i++ {
		if id := tab.SectionOf(int32(i)); id < 0 || id >= len(tab.Sections) {
			t.Fatalf("static %d maps to section %d", i, id)
		}
	}
	if tab.SectionOf(-1) != -1 || tab.SectionOf(int32(tab.NumStatic())) != -1 {
		t.Fatal("out-of-range static index not rejected")
	}
}

// TestHashStableUnderEdit is the load-bearing incrementality property:
// a one-function edit changes that function's section hashes and no
// others.
func TestHashStableUnderEdit(t *testing.T) {
	base := progen.Generate(19, progen.DefaultConfig())
	edited := progen.Generate(19, progen.DefaultConfig())
	var target string
	for _, f := range edited.Funcs {
		if !f.External && len(f.Blocks) > 0 {
			target = f.Name
			break
		}
	}
	editFunc(edited, target)

	bt := BuildIR(base)
	et := BuildIR(edited)
	if et.NumStatic() != bt.NumStatic()+1 {
		t.Fatalf("edit added %d static instrs, want 1", et.NumStatic()-bt.NumStatic())
	}
	baseHash := map[string]string{}
	for _, s := range bt.Sections {
		baseHash[s.Name] = s.Hash
	}
	changed := 0
	for _, s := range et.Sections {
		old, ok := baseHash[s.Name]
		if s.Func == target {
			// The entry-block edit must change the remainder section;
			// loop sub-sections of the same function hash only their own
			// blocks and may legitimately survive.
			if s.Name == target {
				if ok && old == s.Hash {
					t.Errorf("edited function section %q kept hash %s", s.Name, s.Hash)
				}
				changed++
			}
			continue
		}
		if !ok {
			t.Errorf("section %q appeared without an edit", s.Name)
		} else if old != s.Hash {
			t.Errorf("untouched section %q changed hash", s.Name)
		}
	}
	if changed == 0 {
		t.Fatal("edited function produced no sections")
	}
}

// TestLoopHashSurvivesRemainderEdit pins the within-function
// incrementality property: an edit outside a loop sub-section leaves
// the loop's hash unchanged (its canonical rendering covers only its
// own blocks), while the remainder section's hash moves.
func TestLoopHashSurvivesRemainderEdit(t *testing.T) {
	bm, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 benchmark not registered")
	}
	base := bm.Build()
	edited := bm.Build()
	editFunc(edited, "main")

	bt := BuildIR(base)
	et := BuildIR(edited)
	baseHash := map[string]string{}
	loops := 0
	for _, s := range bt.Sections {
		baseHash[s.Name] = s.Hash
		if strings.Contains(s.Name, "/loop@") {
			loops++
		}
	}
	if loops == 0 {
		t.Fatal("crc32 produced no loop sub-sections")
	}
	for _, s := range et.Sections {
		old, ok := baseHash[s.Name]
		if !ok {
			t.Fatalf("section %q appeared after edit", s.Name)
		}
		if strings.Contains(s.Name, "/loop@") {
			if old != s.Hash {
				t.Errorf("loop section %q changed hash under an entry-block edit", s.Name)
			}
		} else if old == s.Hash {
			t.Errorf("remainder section %q kept hash under an entry-block edit", s.Name)
		}
	}
}

func TestLoopSubSections(t *testing.T) {
	m := ir.NewModule("loops")
	g := m.NewGlobalI64("data", make([]int64, 64))
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	acc := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), acc)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 64), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		v := b.LoadElem(ir.I64, g, i)
		x := b.Add(v, i)
		x = b.Mul(x, ir.ConstInt(ir.I64, 3))
		x = b.Add(x, b.Mul(v, v))
		x = b.Sub(x, b.Mul(i, i))
		x = b.Add(x, b.Load(ir.I64, acc))
		b.Store(x, acc)
	})
	// Pad the function body so it clears loopFuncMin outside the loop.
	v := b.Load(ir.I64, acc)
	for k := 0; k < 30; k++ {
		v = b.Add(v, ir.ConstInt(ir.I64, int64(k)))
	}
	b.PrintI64(v)
	b.Ret(ir.ConstInt(ir.I64, 0))

	tab := BuildIR(m)
	var loop, plain int
	for _, s := range tab.Sections {
		if s.Func != "main" {
			continue
		}
		if strings.Contains(s.Name, "/loop@") {
			loop++
		} else {
			plain++
		}
	}
	if loop == 0 || plain == 0 {
		t.Fatalf("want loop sub-section plus remainder, got sections %+v", tab.Sections)
	}
}

// TestBuildASMStable checks the asm table's position independence: the
// same one-function edit leaves every other function's asm hash intact
// even though the edit shifts all downstream code indices.
func TestBuildASMStable(t *testing.T) {
	base := progen.Generate(19, progen.DefaultConfig())
	edited := progen.Generate(19, progen.DefaultConfig())
	var target string
	for _, f := range edited.Funcs {
		if !f.External && len(f.Blocks) > 0 {
			target = f.Name
			break
		}
	}
	editFunc(edited, target)
	bp, err := backend.Lower(base)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := backend.Lower(edited)
	if err != nil {
		t.Fatal(err)
	}
	bt := BuildASM(bp)
	et := BuildASM(ep)
	if bt.Layer != "asm" || bt.NumStatic() == 0 {
		t.Fatalf("bad asm table: %+v", bt)
	}
	baseHash := map[string]string{}
	for _, s := range bt.Sections {
		baseHash[s.Name] = s.Hash
	}
	for _, s := range et.Sections {
		if s.Func == target {
			continue
		}
		if old, ok := baseHash[s.Name]; !ok || old != s.Hash {
			t.Errorf("untouched asm section %q changed hash (have %v, had %v)", s.Name, s.Hash, old)
		}
	}
}
