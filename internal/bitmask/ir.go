package bitmask

import (
	"math/bits"

	"flowery/internal/ir"
)

// AnalyzeIR runs the backward demanded-bits fixpoint over a module and
// returns the per-site masked-choice verdicts for the IR fault model.
// Static indices follow the interpreter's enumeration: all instructions
// of non-external functions in module/block order, with only
// result-producing instructions recorded as sites (the only ones the
// interpreter injects into).
//
// Demand is a 64-bit mask over the canonical representation every IR
// integer value lives in (ir.NormalizeInt: I1 zero-extended, I8/I32
// sign-extended). Bit j set means "changing canonical bit j of this
// value may change observable behavior"; transfer functions only ever
// grow demand, so the fixpoint is the least sound over-approximation
// the transfer precision allows.
type irState struct {
	dem     map[*ir.Instr]uint64    // canonical demand on instruction results
	pdem    map[*ir.Param]uint64    // canonical demand on formal parameters
	retDem  map[*ir.Function]uint64 // canonical demand on return values
	slotDem map[*ir.Instr]uint64    // raw demand on tracked alloca slots
	tracked map[*ir.Instr]bool      // allocas used only as direct load/store targets
	changed bool
}

// AnalyzeIR analyzes m; the module is only read, never mutated, so a
// pipeline-shared module can back concurrent analyses.
func AnalyzeIR(m *ir.Module) *Analysis {
	st := &irState{
		dem:     make(map[*ir.Instr]uint64),
		pdem:    make(map[*ir.Param]uint64),
		retDem:  make(map[*ir.Function]uint64),
		slotDem: make(map[*ir.Instr]uint64),
		tracked: make(map[*ir.Instr]bool),
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		findTrackedAllocas(f, st.tracked)
	}
	// Seed: the exit status, and everything main returns, is observed by
	// the harness (sim.Result.RetVal), so the whole return value is
	// demanded. Program output and traps are seeded inside the transfer
	// functions (external calls, division, memory addresses).
	if main := m.Func("main"); main != nil {
		st.retDem[main] = ^uint64(0)
	}
	for {
		st.changed = false
		for _, f := range m.Funcs {
			if f.External {
				continue
			}
			// Backward sweeps converge faster: visit blocks and
			// instructions in reverse so demand flows def-ward within
			// one pass.
			for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
				b := f.Blocks[bi]
				for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
					st.transfer(b.Instrs[ii])
				}
			}
		}
		if !st.changed {
			break
		}
	}

	a := newAnalysis()
	idx := int32(0)
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					a.record(idx, uint8(in.Ty.Bits()), irSiteMask(in.Ty, st.dem[in]))
				}
				idx++
			}
		}
	}
	return a
}

// findTrackedAllocas marks allocas whose pointer is used exclusively as
// the direct address of loads and stores (never stored as a value,
// never offset through a GEP, never passed to a call). Only those slots
// get flow-insensitive per-bit demand; every other memory access is
// treated as fully demanded.
//
// Soundness of the per-slot demand additionally relies on untracked
// stores not aliasing tracked frame slots. Golden executions of progen
// programs satisfy this by construction — every generated array index
// is masked in-bounds of a global — and masked-bit injections replay
// the golden address stream exactly because addresses are always fully
// demanded; the maskbench agreement probe and the maskstatic fuzz
// target check the end-to-end conclusion dynamically.
func findTrackedAllocas(f *ir.Function, tracked map[*ir.Instr]bool) {
	var allocas []*ir.Instr
	bad := make(map[*ir.Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				allocas = append(allocas, in)
			}
			for ai, arg := range in.Args {
				a, ok := arg.(*ir.Instr)
				if !ok || a.Op != ir.OpAlloca {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && ai == 0:
				case in.Op == ir.OpStore && ai == 1:
				default:
					bad[a] = true
				}
			}
		}
	}
	for _, a := range allocas {
		if !bad[a] {
			tracked[a] = true
		}
	}
}

// add grows the demand on an operand value. Constants and globals have
// no demand (they are not fault sites and cannot change).
func (st *irState) add(v ir.Value, d uint64) {
	if d == 0 {
		return
	}
	switch x := v.(type) {
	case *ir.Instr:
		if st.dem[x]|d != st.dem[x] {
			st.dem[x] |= d
			st.changed = true
		}
	case *ir.Param:
		if st.pdem[x]|d != st.pdem[x] {
			st.pdem[x] |= d
			st.changed = true
		}
	}
}

func (st *irState) addRet(f *ir.Function, d uint64) {
	if d != 0 && st.retDem[f]|d != st.retDem[f] {
		st.retDem[f] |= d
		st.changed = true
	}
}

func (st *irState) addSlot(a *ir.Instr, d uint64) {
	if d != 0 && st.slotDem[a]|d != st.slotDem[a] {
		st.slotDem[a] |= d
		st.changed = true
	}
}

// trackedAlloca resolves a pointer operand to its alloca when that
// alloca's slot is bit-tracked.
func (st *irState) trackedAlloca(v ir.Value) (*ir.Instr, bool) {
	a, ok := v.(*ir.Instr)
	if ok && a.Op == ir.OpAlloca && st.tracked[a] {
		return a, true
	}
	return nil, false
}

// rawDemand converts a canonical demand mask into demand on the raw low
// ty.Bits() bits — the bits an injection actually flips. For
// sign-extended types, demand on any canonical copy of the sign bit
// folds onto raw bit w-1; for I1 (zero-extended) the high canonical
// bits are constant zero, so demand there is unreachable and dropped.
func rawDemand(ty ir.Type, d uint64) uint64 {
	w := ty.Bits()
	switch {
	case w <= 1:
		return d & 1
	case w >= 64:
		return d
	default:
		e := d & lowMask(w-1)
		if d>>(uint(w)-1) != 0 {
			e |= 1 << (uint(w) - 1)
		}
		return e
	}
}

// shiftMaskBits mirrors the interpreter's shift-count masking: counts
// are taken mod 64 at width 64 and mod 32 below it.
func shiftMaskBits(w int) uint64 {
	if w >= 64 {
		return 63
	}
	return 31
}

// transfer applies one instruction's backward transfer function,
// growing operand demand from result demand.
func (st *irState) transfer(in *ir.Instr) {
	d := st.dem[in]
	e := rawDemand(in.Ty, d) // demand on the raw result bits
	w := in.Ty.Bits()

	switch in.Op {
	case ir.OpAlloca:
		// No operands. The pointer's own demand accrues from its uses.

	case ir.OpLoad:
		// A flipped address bit can fault or read unrelated memory:
		// addresses are always fully demanded.
		st.add(in.Args[0], ^uint64(0))
		if a, ok := st.trackedAlloca(in.Args[0]); ok {
			st.addSlot(a, rawDemand(in.Ty, d))
		}

	case ir.OpStore:
		st.add(in.Args[1], ^uint64(0))
		src := in.Args[0]
		var need uint64
		if a, ok := st.trackedAlloca(in.Args[1]); ok {
			need = st.slotDem[a] & lowMask(8*int(src.Type().Size()))
		} else {
			need = lowMask(8 * int(src.Type().Size()))
		}
		st.add(src, need)

	case ir.OpAdd, ir.OpSub, ir.OpMul:
		// Carries ripple upward only: result bits e need operand bits
		// at or below e's most significant demanded bit.
		st.add(in.Args[0], upToMSB(e))
		st.add(in.Args[1], upToMSB(e))

	case ir.OpSDiv, ir.OpSRem:
		// Divide-by-zero and INT_MIN/-1 trap on any operand change, and
		// every operand bit can reach every result bit.
		st.add(in.Args[0], ^uint64(0))
		st.add(in.Args[1], ^uint64(0))

	case ir.OpAnd:
		st.add(in.Args[0], maskedBitwiseDemand(e, in.Args[1], true))
		st.add(in.Args[1], maskedBitwiseDemand(e, in.Args[0], true))
	case ir.OpOr:
		st.add(in.Args[0], maskedBitwiseDemand(e, in.Args[1], false))
		st.add(in.Args[1], maskedBitwiseDemand(e, in.Args[0], false))
	case ir.OpXor:
		st.add(in.Args[0], e)
		st.add(in.Args[1], e)

	case ir.OpShl:
		if c, ok := in.Args[1].(*ir.Const); ok {
			s := uint(c.Bits & shiftMaskBits(w))
			st.add(in.Args[0], e>>s)
		} else {
			if e != 0 {
				st.add(in.Args[1], shiftMaskBits(w))
				st.add(in.Args[0], upToMSB(e))
			}
		}
	case ir.OpLShr:
		// Operates on the zero-extended raw bits: result raw bit j is
		// value raw bit j+s.
		if c, ok := in.Args[1].(*ir.Const); ok {
			s := uint(c.Bits & shiftMaskBits(w))
			st.add(in.Args[0], (e<<s)&lowMask(w))
		} else {
			if e != 0 {
				st.add(in.Args[1], shiftMaskBits(w))
				st.add(in.Args[0], lowMask(w)&^lowMask(bits.TrailingZeros64(e)))
			}
		}
	case ir.OpAShr:
		// Operates on the canonical (sign-extended) value: result raw
		// bit j is canonical bit j+s, saturating at the sign bit.
		if c, ok := in.Args[1].(*ir.Const); ok {
			s := uint(c.Bits & shiftMaskBits(w))
			dem := e << s
			if s > 0 && e>>(64-s) != 0 {
				dem |= 1 << 63
			}
			st.add(in.Args[0], dem)
		} else {
			if e != 0 {
				st.add(in.Args[1], shiftMaskBits(w))
				st.add(in.Args[0], ^lowMask(bits.TrailingZeros64(e)))
			}
		}

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		// No per-bit structure is tracked through float arithmetic.
		if d != 0 {
			st.add(in.Args[0], ^uint64(0))
			st.add(in.Args[1], ^uint64(0))
		}

	case ir.OpICmp:
		if d&1 == 0 {
			return
		}
		st.add(in.Args[0], icmpLHSDemand(in))
		if _, isConst := in.Args[1].(*ir.Const); !isConst {
			st.add(in.Args[1], ^uint64(0))
		}
	case ir.OpFCmp:
		if d&1 != 0 {
			st.add(in.Args[0], ^uint64(0))
			st.add(in.Args[1], ^uint64(0))
		}

	case ir.OpGEP:
		// base + index*Aux; like add, only upward carries.
		st.add(in.Args[0], upToMSB(d))
		shift := 0
		if in.Aux > 0 {
			shift = bits.TrailingZeros64(uint64(in.Aux))
		}
		st.add(in.Args[1], upToMSB(d)>>uint(shift))

	case ir.OpTrunc:
		// Result raw bits are the operand's low raw bits.
		st.add(in.Args[0], e)
	case ir.OpZExt:
		ws := in.Args[0].Type().Bits()
		st.add(in.Args[0], e&lowMask(ws))
	case ir.OpSExt:
		// Sign extension is the identity on canonical values.
		st.add(in.Args[0], d)
	case ir.OpSIToFP:
		if d != 0 {
			st.add(in.Args[0], ^uint64(0))
		}
	case ir.OpFPToSI:
		if e != 0 {
			st.add(in.Args[0], ^uint64(0))
		}

	case ir.OpCall:
		if in.Callee != nil && in.Callee.External {
			// Externals observe their arguments (print_* writes them to
			// program output; check_fail changes the exit status).
			for _, a := range in.Args {
				st.add(a, ^uint64(0))
			}
			return
		}
		if in.Callee != nil {
			for i, a := range in.Args {
				if i < len(in.Callee.Params) {
					st.add(a, st.pdem[in.Callee.Params[i]])
				}
			}
			st.addRet(in.Callee, d)
		}

	case ir.OpBr:
		// No operands.
	case ir.OpCondBr:
		st.add(in.Args[0], 1)
	case ir.OpRet:
		if len(in.Args) > 0 && in.Parent != nil && in.Parent.Func != nil {
			st.add(in.Args[0], st.retDem[in.Parent.Func])
		}
	}
}

// maskedBitwiseDemand refines per-bit demand through and/or when the
// other operand is a constant: bits the constant forces (to 0 for and,
// to 1 for or) cannot reach the result, which is the single biggest
// source of provably-masked bits in index-masking code.
func maskedBitwiseDemand(e uint64, other ir.Value, isAnd bool) uint64 {
	if c, ok := other.(*ir.Const); ok {
		if isAnd {
			return e & c.Bits
		}
		return e &^ c.Bits
	}
	return e
}

// icmpLHSDemand returns the canonical demand an icmp puts on its left
// operand when its boolean result is demanded. The default is full
// demand; two constant-RHS shapes have exploitable slack:
//
//   - signed comparison against 0 in the {<, >=} family depends only on
//     the sign, i.e. canonical bit 63;
//   - unsigned comparison against a power of two 2^k in the {<, >=}
//     family depends only on whether any raw bit at or above k is set.
func icmpLHSDemand(in *ir.Instr) uint64 {
	c, ok := in.Args[1].(*ir.Const)
	if !ok {
		return ^uint64(0)
	}
	switch in.Pred {
	case ir.PredSLT, ir.PredSGE:
		if c.Bits == 0 {
			return 1 << 63
		}
	case ir.PredULT, ir.PredUGE:
		// Unsigned compares consume the zero-extended raw bits.
		w := in.Args[0].Type().Bits()
		raw := c.Bits
		if w < 64 {
			raw &= lowMask(w)
		}
		if raw != 0 && raw&(raw-1) == 0 {
			k := bits.TrailingZeros64(raw)
			if w >= 64 {
				return ^lowMask(k)
			}
			return lowMask(w) &^ lowMask(k)
		}
	}
	return ^uint64(0)
}

// irSiteMask converts a site's canonical result demand into the 64-bit
// masked-choice verdict. Choice b flips raw bit b%w and renormalizes,
// so the canonical bits it changes are:
//
//   - I1: bit 0 only (zero-extended canonical form);
//   - I8/I32 non-sign bits: that bit;
//   - I8/I32 sign bit: the sign bit and every canonical copy above it;
//   - 64-bit types: the bit itself.
//
// The choice is proven masked exactly when none of the changed
// canonical bits are demanded.
func irSiteMask(ty ir.Type, dem uint64) uint64 {
	w := ty.Bits()
	var mask uint64
	for b := 0; b < 64; b++ {
		p := uint(b % w)
		var changed uint64
		switch {
		case w == 1:
			changed = 1
		case w < 64 && p == uint(w-1):
			changed = ^uint64(0) << p
		default:
			changed = 1 << p
		}
		if dem&changed == 0 {
			mask |= 1 << uint(b)
		}
	}
	return mask
}
