package bitmask

import (
	"testing"

	"flowery/internal/ir"
)

// irMasks analyzes m and returns a lookup from instruction to its
// masked-choice bitmap, resolving static indices by the interpreter's
// enumeration (all instructions of non-external functions in order).
func irMasks(t *testing.T, m *ir.Module) func(*ir.Instr) uint64 {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("module: %v", err)
	}
	a := AnalyzeIR(m)
	static := make(map[*ir.Instr]int32)
	idx := int32(0)
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				static[in] = idx
				idx++
			}
		}
	}
	return func(in *ir.Instr) uint64 {
		si, ok := static[in]
		if !ok {
			t.Fatalf("instruction not in module")
		}
		return a.Masked(si, uint8(in.Ty.Bits()))
	}
}

// opaque returns an I64-producing instruction with no structure the
// analysis could see through, so tests measure exactly the transfer
// function between it and the observation point.
func opaque(b *ir.Builder) *ir.Instr {
	return b.Add(ir.ConstInt(ir.I64, 12345), ir.ConstInt(ir.I64, 678))
}

// TestIRTransferTable drives one transfer function per case: build a
// tiny main, observe a value through one instruction shape, and check
// the producer's proven-masked choice bitmap exactly.
func TestIRTransferTable(t *testing.T) {
	cases := []struct {
		name string
		// build wires opaque x into the shape under test and returns
		// the instruction whose mask is checked plus the expected mask.
		build func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64)
	}{
		{"and-const", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Only the low byte passes the mask: choices 8..63 are proven.
			b.PrintI64(b.And(x, ir.ConstInt(ir.I64, 0xff)))
			return x, ^uint64(0xff)
		}},
		{"or-const", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// The low byte is forced to 1s: choices 0..7 are proven.
			b.PrintI64(b.Or(x, ir.ConstInt(ir.I64, 0xff)))
			return x, 0xff
		}},
		{"xor-transparent", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			b.PrintI64(b.Xor(x, ir.ConstInt(ir.I64, 0xff)))
			return x, 0
		}},
		{"add-upward-carries", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Result demand 0..7; carries into them come only from bits
			// <= 7, so 8..63 are proven masked despite the add.
			s := b.Add(x, ir.ConstInt(ir.I64, 99))
			b.PrintI64(b.And(s, ir.ConstInt(ir.I64, 0xff)))
			return x, ^uint64(0xff)
		}},
		{"mul-upward-carries", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			p := b.Mul(x, x)
			b.PrintI64(b.And(p, ir.ConstInt(ir.I64, 1)))
			return x, ^uint64(1)
		}},
		{"shl-const", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// x<<8 discards x's top byte.
			b.PrintI64(b.Shl(x, ir.ConstInt(ir.I64, 8)))
			return x, 0xff00000000000000
		}},
		{"lshr-const", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// x>>8 discards x's low byte.
			b.PrintI64(b.LShr(x, ir.ConstInt(ir.I64, 8)))
			return x, 0xff
		}},
		{"ashr-const", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			b.PrintI64(b.AShr(x, ir.ConstInt(ir.I64, 8)))
			return x, 0xff
		}},
		{"sdiv-traps", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// The quotient is unused, but a flipped divisor bit can trap:
			// nothing is proven.
			b.SDiv(ir.ConstInt(ir.I64, 100), x)
			return x, 0
		}},
		{"dead-result", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			y := b.Add(x, ir.ConstInt(ir.I64, 1))
			_ = y // never observed: every choice is proven masked
			return y, ^uint64(0)
		}},
		{"trunc", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Only x's low 32 raw bits survive the truncation.
			tr := b.Trunc(ir.I32, x)
			b.PrintI64(b.SExt(ir.I64, tr))
			return x, 0xffffffff00000000
		}},
		{"zext-from-i1", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Signed x<0 against a constant zero depends only on the sign
			// bit (canonical bit 63).
			c := b.ICmp(ir.PredSLT, x, ir.ConstInt(ir.I64, 0))
			b.PrintI64(b.ZExt(ir.I64, c))
			return x, ^uint64(0) >> 1
		}},
		{"icmp-ult-power-of-two", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Unsigned x<256 ignores x's low byte.
			c := b.ICmp(ir.PredULT, x, ir.ConstInt(ir.I64, 256))
			b.PrintI64(b.ZExt(ir.I64, c))
			return x, 0xff
		}},
		{"icmp-general-rhs", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// Non-power-of-two constant: every bit can flip the verdict.
			c := b.ICmp(ir.PredULT, x, ir.ConstInt(ir.I64, 257))
			b.PrintI64(b.ZExt(ir.I64, c))
			return x, 0
		}},
		{"condbr-demands-bit0", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			c := b.ICmp(ir.PredEQ, x, ir.ConstInt(ir.I64, 7))
			thn := b.NewBlock("thn")
			els := b.NewBlock("els")
			b.CondBr(c, thn, els)
			b.SetBlock(thn)
			b.PrintI64(ir.ConstInt(ir.I64, 1))
			b.Ret(ir.ConstInt(ir.I64, 0))
			b.SetBlock(els)
			// c is I1: demand on bit 0 leaves no masked choice (every
			// choice b flips canonical bit 0 after normalization).
			return c, 0
		}},
		{"gep-index-scaled", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// base + index*8: the index's top 3 bits cannot reach any
			// address bit. (The load makes the address fully demanded.)
			g := b.Func.Module.NewGlobalI64("tab", []int64{1, 2, 3, 4})
			b.PrintI64(b.Load(ir.I64, b.GEP(g, x, 8)))
			return x, 0xe000000000000000
		}},
		{"tracked-slot-roundtrip", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// A store/load through a tracked alloca carries per-bit
			// demand: only bit 0 of x is live.
			slot := b.AllocVar(ir.I64)
			b.Store(x, slot)
			v := b.Load(ir.I64, slot)
			b.PrintI64(b.And(v, ir.ConstInt(ir.I64, 1)))
			return x, ^uint64(1)
		}},
		{"untracked-slot-full-width", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			// The same shape through a GEP'd (escaped) alloca falls back
			// to full-width store demand.
			slot := b.Alloca(8)
			p := b.GEP(slot, ir.ConstInt(ir.I64, 0), 1)
			b.Store(x, p)
			v := b.Load(ir.I64, slot)
			b.PrintI64(b.And(v, ir.ConstInt(ir.I64, 1)))
			return x, 0
		}},
		{"external-call-observes-args", func(b *ir.Builder, x *ir.Instr) (*ir.Instr, uint64) {
			b.PrintI64(x)
			return x, 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.NewModule(tc.name)
			f := m.NewFunction("main", ir.I64)
			b := ir.NewBuilder(f)
			x := opaque(b)
			target, want := tc.build(b, x)
			if b.Block().Terminator() == nil {
				b.Ret(ir.ConstInt(ir.I64, 0))
			}
			if got := irMasks(t, m)(target); got != want {
				t.Errorf("mask = %#016x, want %#016x", got, want)
			}
		})
	}
}

// TestIRInterproceduralDemand checks that demand flows through calls in
// both directions: parameter demand back to arguments, and return-value
// demand back through ret.
func TestIRInterproceduralDemand(t *testing.T) {
	m := ir.NewModule("calls")
	callee := m.NewFunction("low8", ir.I64, ir.I64)
	cb := ir.NewBuilder(callee)
	// Returns arg&0xff, so only the caller's low byte is demanded.
	cb.Ret(cb.And(callee.Params[0], ir.ConstInt(ir.I64, 0xff)))

	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := opaque(b)
	y := b.Call(callee, x)
	b.Ret(y)

	masks := irMasks(t, m)
	if got := masks(x); got != ^uint64(0xff) {
		t.Errorf("argument mask = %#016x, want %#016x", got, ^uint64(0xff))
	}
	// main's return value is the exit status: y is fully demanded.
	if got := masks(y); got != 0 {
		t.Errorf("call result mask = %#016x, want 0", got)
	}
}

// TestIRSiteMaskWidths pins the raw-choice → canonical-bit conversion at
// the sub-64-bit widths the interpreter renormalizes.
func TestIRSiteMaskWidths(t *testing.T) {
	// I32 sign-bit choices: demand on canonical bit 40 (a sign copy) makes
	// every choice b with b%32 == 31 live, everything else masked.
	if got, want := irSiteMask(ir.I32, uint64(1)<<40), func() uint64 {
		var m uint64
		for b := 0; b < 64; b++ {
			if b%32 != 31 {
				m |= 1 << uint(b)
			}
		}
		return m
	}(); got != want {
		t.Errorf("i32 sign-copy demand: mask = %#016x, want %#016x", got, want)
	}
	// I1: any demand on bit 0 leaves nothing masked; no demand masks all.
	if got := irSiteMask(ir.I1, 1); got != 0 {
		t.Errorf("i1 demanded: mask = %#016x, want 0", got)
	}
	if got := irSiteMask(ir.I1, 0); got != ^uint64(0) {
		t.Errorf("i1 undemanded: mask = %#016x, want all ones", got)
	}
	// I8 non-sign choice: demand on bit 2 keeps choices {2, 10, ...} live.
	got := irSiteMask(ir.I8, 1<<2)
	for b := 0; b < 64; b++ {
		wantLive := b%8 == 2
		if gotLive := got&(1<<uint(b)) == 0; gotLive != wantLive {
			t.Errorf("i8 choice %d: live = %v, want %v", b, gotLive, wantLive)
		}
	}
}
