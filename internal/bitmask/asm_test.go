package bitmask

import (
	"testing"

	"flowery/internal/asm"
)

// asmMasks wraps instrs into a single-function program, analyzes it, and
// returns the masked-choice bitmap per instruction index (label pseudo-
// ops shift later indices, matching the machine's static enumeration).
func asmMasks(t *testing.T, instrs ...asm.Instr) func(int) uint64 {
	t.Helper()
	f := asm.NewFunc("f")
	for _, in := range instrs {
		if in.Op == asm.OpLabel {
			f.EmitLabel(in.Label)
		} else {
			f.Emit(in)
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("func: %v", err)
	}
	prog := asm.NewProgram()
	prog.AddFunc(f)
	a := AnalyzeASM(prog)
	return func(i int) uint64 {
		in := &f.Instrs[i]
		static := int32(0)
		for j := 0; j < i; j++ {
			if f.Instrs[j].Op != asm.OpLabel {
				static++
			}
		}
		r, ok := in.HasDest()
		if !ok {
			t.Fatalf("instr %d (%v) is not an injection site", i, in.Op)
		}
		_ = r
		return a.Masked(static, uint8(in.DestBits()))
	}
}

// flagChoices returns the 64-choice mask whose live choices are exactly
// the flags in live (an RFLAGS site has width 5: choice b flips
// DefinedFlags[b%5]).
func flagChoices(live uint64) uint64 {
	var mask uint64
	for b := 0; b < 64; b++ {
		if live&asm.DefinedFlags[b%5] == 0 {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

func mov(dst, src asm.Operand, size uint8) asm.Instr {
	return asm.Instr{Op: asm.OpMov, Size: size, Dst: dst, Src: src}
}

// TestASMTransferTable checks one machine transfer function per case:
// a short straight-line body ending in ret, with the mask of one site
// pinned exactly. Function exits demand RAX (the return register), so
// each case routes the observation through it.
func TestASMTransferTable(t *testing.T) {
	rax := asm.RegOp(asm.RAX)
	rbx := asm.RegOp(asm.RBX)
	rcx := asm.RegOp(asm.RCX)
	rdx := asm.RegOp(asm.RDX)
	ret := asm.Instr{Op: asm.OpRet}

	cases := []struct {
		name   string
		instrs []asm.Instr
		site   int
		want   uint64
	}{
		{"and-imm", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(0xff)},
			ret,
		}, 0, ^uint64(0xff)},
		{"or-imm", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpOr, Size: 8, Dst: rax, Src: asm.ImmOp(0xff)},
			ret,
		}, 0, 0xff},
		{"add-upward-carries", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpAdd, Size: 8, Dst: rax, Src: rbx},
			{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(0xff)},
			ret,
		}, 0, ^uint64(0xff)},
		{"shl-imm", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpShl, Size: 8, Dst: rax, Src: asm.ImmOp(8)},
			ret,
		}, 0, 0xff00000000000000},
		{"shr-imm", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpShr, Size: 8, Dst: rax, Src: asm.ImmOp(8)},
			ret,
		}, 0, 0xff},
		// sar at size 4 saturates demand at raw bit 31; the mov site is
		// 32 bits wide, so choices repeat mod 32 and only 0..3 (and
		// their copies 32..35) are proven.
		{"sar-imm-size4", []asm.Instr{
			mov(rax, rcx, 4),
			{Op: asm.OpSar, Size: 4, Dst: rax, Src: asm.ImmOp(4)},
			ret,
		}, 0, 0x0000000f0000000f},
		{"xor-zero-idiom", []asm.Instr{
			mov(rax, rcx, 8),
			{Op: asm.OpXor, Size: 8, Dst: rax, Src: rax},
			ret,
		}, 0, ^uint64(0)},
		// A later 1-byte write merges into the low byte: only those 8
		// bits of the earlier full-width write die.
		{"partial-register-kill-size1", []asm.Instr{
			mov(rax, rcx, 8),
			mov(rax, rdx, 1),
			ret,
		}, 0, 0xff},
		// A later 4-byte write zero-extends, killing all 64 bits.
		{"partial-register-kill-size4", []asm.Instr{
			mov(rax, rcx, 8),
			mov(rax, rdx, 4),
			ret,
		}, 0, ^uint64(0)},
		{"movzx-size1", []asm.Instr{
			mov(rcx, rdx, 8),
			{Op: asm.OpMovZX, Size: 1, Dst: rax, Src: rcx},
			ret,
		}, 0, ^uint64(0xff)},
		// Only the sign byte's top bit feeds the demanded high bits of
		// the sign extension.
		{"movsx-sign-bit-only", []asm.Instr{
			mov(rcx, rdx, 8),
			{Op: asm.OpMovSX, Size: 1, Dst: rax, Src: rcx},
			{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(0xff00)},
			ret,
		}, 0, ^uint64(0x80)},
		{"cqo-depends-on-top-bit", []asm.Instr{
			mov(rax, rbx, 8),
			{Op: asm.OpCqo, Size: 8},
			mov(rax, rdx, 8),
			ret,
		}, 0, ^(uint64(1) << 63)},
		{"idiv-demands-everything", []asm.Instr{
			mov(rcx, rbx, 8),
			{Op: asm.OpCqo, Size: 8},
			{Op: asm.OpIDiv, Size: 8, Src: rcx},
			ret,
		}, 0, 0},
		{"lea-scaled-index", []asm.Instr{
			mov(rcx, rdx, 8),
			{Op: asm.OpLea, Dst: rax, Src: asm.MemIdxOp(asm.RBX, 0, asm.RCX, 8)},
			{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(0xff)},
			ret,
		}, 0, ^uint64(0x1f)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := asmMasks(t, tc.instrs...)(tc.site); got != tc.want {
				t.Errorf("mask = %#016x, want %#016x", got, tc.want)
			}
		})
	}
}

// TestASMFlagSlack checks the flag-consumer slack rules: a flag producer
// is only demanded on the bits its consumers read, and the trailing cmp
// kills stale flag demand from the exit state.
func TestASMFlagSlack(t *testing.T) {
	rax := asm.RegOp(asm.RAX)
	rbx := asm.RegOp(asm.RBX)
	rcx := asm.RegOp(asm.RCX)
	ret := asm.Instr{Op: asm.OpRet}
	// Every flag a later producer redefines before any consumer is
	// slack; je reads ZF only.
	t.Run("jcc-e-reads-zf", func(t *testing.T) {
		masks := asmMasks(t,
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rcx},
			asm.Instr{Op: asm.OpJcc, Cond: asm.CondE, Target: "out"},
			asm.Instr{Op: asm.OpLabel, Label: "out"},
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rcx},
			ret,
		)
		if got, want := masks(0), flagChoices(asm.FlagZF); got != want {
			t.Errorf("cmp mask = %#016x, want %#016x", got, want)
		}
	})
	// ucomisd zeroes OF and SF, so a following jb (CF) leaves ZF/PF/OF/
	// SF of an earlier producer slack.
	t.Run("jcc-b-reads-cf", func(t *testing.T) {
		masks := asmMasks(t,
			asm.Instr{Op: asm.OpUComiSD, Size: 8, Dst: asm.RegOp(asm.XMM0), Src: asm.RegOp(asm.XMM1)},
			asm.Instr{Op: asm.OpJcc, Cond: asm.CondB, Target: "out"},
			asm.Instr{Op: asm.OpLabel, Label: "out"},
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rcx},
			ret,
		)
		if got, want := masks(0), flagChoices(asm.FlagCF); got != want {
			t.Errorf("ucomisd mask = %#016x, want %#016x", got, want)
		}
	})
	// setcc writes 0 or 1: if only bit 1 of its destination is ever
	// used, the flags (and hence the producer) are completely slack.
	t.Run("set-bit0-slack", func(t *testing.T) {
		masks := asmMasks(t,
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rcx},
			asm.Instr{Op: asm.OpSet, Cond: asm.CondE, Dst: rax},
			asm.Instr{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(2)},
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rcx},
			ret,
		)
		if got := masks(0); got != ^uint64(0) {
			t.Errorf("cmp mask = %#016x, want all ones", got)
		}
	})
	// test sets OF=CF=0, so a jb consuming only CF puts no demand on
	// the tested register.
	t.Run("test-of-cf-constant", func(t *testing.T) {
		masks := asmMasks(t,
			mov(rcx, asm.RegOp(asm.RDX), 8),
			asm.Instr{Op: asm.OpTest, Size: 8, Dst: rcx, Src: rcx},
			asm.Instr{Op: asm.OpJcc, Cond: asm.CondB, Target: "out"},
			asm.Instr{Op: asm.OpLabel, Label: "out"},
			asm.Instr{Op: asm.OpCmp, Size: 8, Dst: rbx, Src: rbx},
			ret,
		)
		if got := masks(0); got != ^uint64(0) {
			t.Errorf("mov mask = %#016x, want all ones", got)
		}
	})
}

// TestASMSlotTracking checks the frame-slot demand channel: plain
// [RBP+disp] spill traffic carries per-bit demand, lea'd (escaped) disps
// fall back to full width, and calls preserve slot demand.
func TestASMSlotTracking(t *testing.T) {
	rax := asm.RegOp(asm.RAX)
	rbx := asm.RegOp(asm.RBX)
	rcx := asm.RegOp(asm.RCX)
	rdx := asm.RegOp(asm.RDX)
	slot := asm.MemOp(asm.RBP, -8)
	ret := asm.Instr{Op: asm.OpRet}

	t.Run("tracked-roundtrip", func(t *testing.T) {
		masks := asmMasks(t,
			mov(rcx, rdx, 8),
			mov(slot, rcx, 8),
			mov(rax, slot, 8),
			asm.Instr{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(1)},
			ret,
		)
		if got := masks(0); got != ^uint64(1) {
			t.Errorf("producer mask = %#016x, want %#016x", got, ^uint64(1))
		}
		if got := masks(2); got != ^uint64(1) {
			t.Errorf("load mask = %#016x, want %#016x", got, ^uint64(1))
		}
	})
	t.Run("escaped-disp-untracked", func(t *testing.T) {
		masks := asmMasks(t,
			asm.Instr{Op: asm.OpLea, Dst: rbx, Src: slot},
			mov(rcx, rdx, 8),
			mov(slot, rcx, 8),
			mov(rax, slot, 8),
			asm.Instr{Op: asm.OpAnd, Size: 8, Dst: rax, Src: asm.ImmOp(1)},
			ret,
		)
		// The lea publishes the slot's address: stores to it must assume
		// full-width observation.
		if got := masks(1); got != 0 {
			t.Errorf("producer mask = %#016x, want 0", got)
		}
	})
	t.Run("store-kills-narrower-width", func(t *testing.T) {
		// A 4-byte store kills only the slot's low 4 bytes of demand;
		// an 8-byte load above it still demands the high half from the
		// earlier full store.
		masks := asmMasks(t,
			mov(rcx, rdx, 8),
			mov(slot, rcx, 8),
			mov(slot, rbx, 4),
			mov(rax, slot, 8),
			ret,
		)
		if got, want := masks(0), uint64(0xffffffff); got != want {
			t.Errorf("first producer mask = %#016x, want %#016x", got, want)
		}
	})
}

// TestASMHavocAndBarriers unit-tests the states transfer cannot express
// through a site mask: unknown ops havoc slot knowledge, and the RSP/
// RBP/RIP pins survive everything.
func TestASMHavocAndBarriers(t *testing.T) {
	ctx := &funcCtx{escaped: map[int64]bool{}}
	var st asmState
	st.addSlot(-8, 1)
	st.transfer(ctx, &asm.Instr{Op: asm.OpInvalid})
	if !st.havoc {
		t.Fatal("unknown op did not havoc")
	}
	if got := st.slotDemand(-16); got != ^uint64(0) {
		t.Fatalf("havoc slot demand = %#x, want all ones", got)
	}

	st = asmState{}
	st.addSlot(-8, 1)
	st.transfer(ctx, &asm.Instr{Op: asm.OpCall, Target: "g"})
	if st.havoc {
		t.Fatal("call must not havoc slots")
	}
	if got := st.slotDemand(-8); got != 1 {
		t.Fatalf("slot demand across call = %#x, want 1", got)
	}
	for _, r := range []asm.Reg{asm.RSP, asm.RBP, asm.RIP} {
		if st.regs[r] != ^uint64(0) {
			t.Fatalf("%v not pinned after call", r)
		}
	}
}
