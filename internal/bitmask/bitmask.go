// Package bitmask is the bit-level static masking analysis (DESIGN.md
// §15): a backward demanded-bits dataflow that, for every static fault
// site at both layers, partitions the 64 fault-bit choices into
// proven-masked and live strata. A choice is proven masked when the bit
// it flips cannot reach program output, the return value, control flow,
// a memory address, or a trap condition — so injecting it is benign by
// construction and a pruned campaign can score it without executing
// anything (in the spirit of BEC, arXiv:2401.05753).
//
// The analysis is deliberately one-sided: a bit reported masked must be
// benign (soundness, checked by the maskstatic differential fuzz target
// and the maskbench agreement probe), while a live verdict promises
// nothing. Demand is tracked over canonical 64-bit values — the form
// both engines keep integers in — and mapped to injected-bit choices
// per site width at the end, so the verdicts compose directly with
// equiv's per-class choice alphabet.
package bitmask

import "math/bits"

// siteMask is the verdict for one static fault site.
type siteMask struct {
	// width is the injectable width the engines report for the site
	// (ir.Type.Bits at IR level, asm.Instr.DestBits at assembly level).
	width uint8
	// mask has choice bit b set when fault choice b (of the 64-choice
	// alphabet Fault.Bit is drawn from) is proven masked.
	mask uint64
}

// Analysis holds one layer's per-site masked-choice bitmaps, keyed by
// the layer's canonical static instruction index (the same enumeration
// sim.Result.InjectedStatic and equiv.Class.Static use).
type Analysis struct {
	masks map[int32]siteMask

	// Sites counts the static injectable sites analyzed.
	Sites int64
	// MaskedChoices sums proven-masked choices over sites, out of
	// TotalChoices (64 per site) — the static coverage telemetry.
	MaskedChoices int64
	TotalChoices  int64
}

func newAnalysis() *Analysis {
	return &Analysis{masks: make(map[int32]siteMask)}
}

// record stores one site verdict and folds it into the totals.
func (a *Analysis) record(static int32, width uint8, mask uint64) {
	a.masks[static] = siteMask{width: width, mask: mask}
	a.Sites++
	a.MaskedChoices += int64(bits.OnesCount64(mask))
	a.TotalChoices += 64
}

// Masked returns the proven-masked choice bitmap for the site at the
// given static index: bit b set means injecting Fault.Bit == b at any
// dynamic instance of the site is provably benign. The width must match
// the width the analysis derived for the site (the engines' injectable
// width); a disagreement returns 0 — no proof — rather than guessing.
// A nil receiver reports nothing masked.
func (a *Analysis) Masked(static int32, width uint8) uint64 {
	if a == nil {
		return 0
	}
	s, ok := a.masks[static]
	if !ok || s.width != width {
		return 0
	}
	return s.mask
}

// lowMask returns the mask of the low n bits (n in [0, 64]).
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// upToMSB widens a demand mask down to bit 0: arithmetic carries only
// propagate upward, so demanding result bit j demands operand bits ≤ j.
func upToMSB(e uint64) uint64 {
	return lowMask(bits.Len64(e))
}
