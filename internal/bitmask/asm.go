package bitmask

import (
	"math/bits"

	"flowery/internal/asm"
)

// allFlags is the full modeled RFLAGS demand (CF, PF, ZF, SF, OF).
const allFlags = asm.FlagCF | asm.FlagPF | asm.FlagZF | asm.FlagSF | asm.FlagOF

// asmState is the backward dataflow fact at one program point: per
// 64-bit register demand, demand on the modeled RFLAGS bits, and demand
// on the tracked frame slots of the enclosing function. RSP, RBP, and
// RIP are pinned fully demanded — a flipped stack pointer, frame
// pointer, or return address redirects execution, so no injection into
// them is ever proven masked.
//
// Slot tracking is what lets demand cross instructions at this layer:
// the backend is a load-store machine that homes every value in a
// [RBP+disp] slot, so without it every spill store would demand its
// full operation width and the analysis would only see masking inside
// single register-cache windows. A slot is tracked when every access to
// it is a plain [RBP+disp] operand — disps whose address is taken
// (lea of a frame slot, i.e. allocas) are excluded by funcCtx.escaped
// and keep the conservative full-width treatment, since a computed
// pointer (or a callee it was passed to) may reach them. Computed
// addresses reaching a *tracked* slot would require an out-of-bounds
// index into a distinct frame object; like the tracked-alloca rule in
// the IR analysis this is assumed away and validated dynamically
// (MaskedProbe, FuzzMaskStaticSound).
type asmState struct {
	regs  [asm.NumRegs]uint64
	flags uint64
	// slots maps a tracked frame disp to the demand on its content.
	// Missing key = no demand; zero-valued entries are never stored, so
	// eq can compare maps structurally.
	slots map[int64]uint64
	// havoc makes every slot read return full demand (the unknown-
	// instruction fallback, where enumerating keys is impossible).
	havoc bool
}

func (s *asmState) force() {
	s.regs[asm.RSP] = ^uint64(0)
	s.regs[asm.RBP] = ^uint64(0)
	s.regs[asm.RIP] = ^uint64(0)
}

func (s *asmState) union(o *asmState) {
	for i := range s.regs {
		s.regs[i] |= o.regs[i]
	}
	s.flags |= o.flags
	if o.havoc {
		s.havoc = true
	}
	if s.havoc {
		s.slots = nil
		return
	}
	for k, v := range o.slots {
		s.addSlot(k, v)
	}
}

// eq reports state equality (the fixpoint termination test). Demand
// only grows under transfer and union, so equality means convergence.
func (s *asmState) eq(o *asmState) bool {
	if s.regs != o.regs || s.flags != o.flags || s.havoc != o.havoc {
		return false
	}
	if len(s.slots) != len(o.slots) {
		return false
	}
	for k, v := range s.slots {
		if o.slots[k] != v {
			return false
		}
	}
	return true
}

func (s *asmState) slotDemand(d int64) uint64 {
	if s.havoc {
		return ^uint64(0)
	}
	return s.slots[d]
}

func (s *asmState) addSlot(d int64, dem uint64) {
	if s.havoc || dem == 0 {
		return
	}
	if s.slots == nil {
		s.slots = make(map[int64]uint64)
	}
	s.slots[d] |= dem
}

// killSlot retires the low size bytes of a slot's demand at a store
// (backward: the store defines them, so older content no longer feeds
// that range).
func (s *asmState) killSlot(d int64, size uint8) {
	if s.havoc {
		return
	}
	if v, ok := s.slots[d]; ok {
		v &^= wmask(size)
		if v == 0 {
			delete(s.slots, d)
		} else {
			s.slots[d] = v
		}
	}
}

// funcCtx is the per-function analysis context: the set of frame disps
// whose address escapes via lea (alloca materialization), which must
// not be slot-tracked.
type funcCtx struct {
	escaped map[int64]bool
}

// slot reports whether an operand is a tracked frame slot and returns
// its disp. Only plain [RBP+disp] accesses qualify; indexed, symbolic,
// and escaped-disp operands fall back to the untracked memory model.
func (c *funcCtx) slot(o *asm.Operand) (int64, bool) {
	if o.Kind != asm.OperandMem || o.Reg != asm.RBP ||
		o.Index != asm.RegNone || o.Sym != "" {
		return 0, false
	}
	if c.escaped[o.Imm] {
		return 0, false
	}
	return o.Imm, true
}

// escapedSlots scans a function for frame disps whose address is
// materialized (lea [RBP+disp]): every alloca whose pointer is used
// arithmetically or passed along. Spill slots are never lea'd.
func escapedSlots(f *asm.Func) map[int64]bool {
	esc := make(map[int64]bool)
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Op == asm.OpLea && in.Src.Kind == asm.OperandMem &&
			in.Src.Reg == asm.RBP && in.Src.Sym == "" {
			esc[in.Src.Imm] = true
		}
	}
	return esc
}

// retState is the demand at every function exit. The backend's register
// discipline (internal/backend: values are homed in stack slots at
// definition, the scratch pool holds caller-saved registers only, and
// the register cache is flushed at block boundaries and calls) means
// the caller observes only the return registers, its own frame, and the
// untouched callee-saved registers — never a scratch register this
// function wrote. The frame itself dies at ret, so slot demand is
// empty. Flags are conservatively all-demanded; they are short-lived
// anyway (every producer overwrites all five).
func retState() asmState {
	var s asmState
	s.regs[asm.RAX] = ^uint64(0)
	s.regs[asm.XMM0] = ^uint64(0)
	s.flags = allFlags
	s.force()
	return s
}

// callBarrier is the register demand just before a call: the callee (or
// runtime external) may read any register, so everything before a call
// is fully demanded. Tracked slots survive calls — arguments pass in
// registers and the callee can reach caller memory only through
// escaped pointers (untracked disps) and globals, never a private
// spill slot.
func callBarrier() asmState {
	var s asmState
	for i := range s.regs {
		s.regs[i] = ^uint64(0)
	}
	s.flags = allFlags
	return s
}

// AnalyzeASM runs the backward demanded-bits dataflow over a lowered
// program and returns masked-choice verdicts for the machine fault
// model. Static indices follow the machine's code enumeration: all
// instructions across prog.Funcs in order with OpLabel pseudo-ops
// skipped. Because injection happens after an instruction commits, a
// site's verdict is taken from the demand immediately AFTER it.
func AnalyzeASM(prog *asm.Program) *Analysis {
	a := newAnalysis()
	idx := int32(0)
	for _, f := range prog.Funcs {
		outs := analyzeFunc(f)
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if in.Op == asm.OpLabel {
				continue
			}
			if r, ok := in.HasDest(); ok {
				w := uint8(in.DestBits())
				a.record(idx, w, asmSiteMask(&outs[i], r, w))
			}
			idx++
		}
	}
	return a
}

// asmBlock is one basic block of a function's instruction list:
// [start, end) with successor block indices (nil for exit blocks).
type asmBlock struct {
	start, end int
	succs      []int
	isRet      bool
}

// buildBlocks splits f.Instrs at labels, jumps, and returns.
func buildBlocks(f *asm.Func) []asmBlock {
	n := len(f.Instrs)
	leader := make([]bool, n+1)
	leader[0] = true
	for i, in := range f.Instrs {
		switch in.Op {
		case asm.OpLabel:
			leader[i] = true
		case asm.OpJmp, asm.OpJcc, asm.OpRet:
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	blockAt := make(map[int]int) // start index → block index
	var blks []asmBlock
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		blockAt[i] = len(blks)
		blks = append(blks, asmBlock{start: i, end: j})
		i = j
	}
	for bi := range blks {
		b := &blks[bi]
		last := f.Instrs[b.end-1]
		switch last.Op {
		case asm.OpRet:
			b.isRet = true
		case asm.OpJmp:
			if t, ok := f.LabelIndex(last.Target); ok {
				b.succs = append(b.succs, blockAt[t])
			}
		case asm.OpJcc:
			if t, ok := f.LabelIndex(last.Target); ok {
				b.succs = append(b.succs, blockAt[t])
			}
			if b.end < n {
				b.succs = append(b.succs, blockAt[b.end])
			}
		default:
			if b.end < n {
				b.succs = append(b.succs, blockAt[b.end])
			}
		}
	}
	return blks
}

// analyzeFunc runs the per-function fixpoint and returns the post-
// instruction (OUT) demand state for every instruction index.
func analyzeFunc(f *asm.Func) []asmState {
	ctx := &funcCtx{escaped: escapedSlots(f)}
	blks := buildBlocks(f)
	ins := make([]asmState, len(blks)) // IN (demand at block entry)
	for {
		changed := false
		for bi := len(blks) - 1; bi >= 0; bi-- {
			b := &blks[bi]
			st := blockOut(blks, ins, b)
			for i := b.end - 1; i >= b.start; i-- {
				st.transfer(ctx, &f.Instrs[i])
			}
			if !st.eq(&ins[bi]) {
				ins[bi] = st
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final pass: record OUT states. Only register and flag demand is
	// read from these (asmSiteMask), so sharing the slot map with the
	// in-flight state is harmless.
	outs := make([]asmState, len(f.Instrs))
	for bi := range blks {
		b := &blks[bi]
		st := blockOut(blks, ins, b)
		for i := b.end - 1; i >= b.start; i-- {
			outs[i] = st
			st.transfer(ctx, &f.Instrs[i])
		}
	}
	return outs
}

// blockOut is the demand at block exit: the union of successor entries,
// or the function-exit state for ret (and degenerate fallthrough-off-
// the-end) blocks.
func blockOut(blks []asmBlock, ins []asmState, b *asmBlock) asmState {
	if b.isRet || len(b.succs) == 0 {
		return retState()
	}
	var st asmState
	for _, s := range b.succs {
		st.union(&ins[s])
	}
	st.force()
	return st
}

// asmSiteMask converts a site's post-instruction demand into the
// 64-choice masked verdict. Choice b flips raw bit b%w of the
// destination register; for RFLAGS (w = 5) it flips the modeled flag
// DefinedFlags[b%5].
func asmSiteMask(st *asmState, r asm.Reg, w uint8) uint64 {
	var mask uint64
	for b := 0; b < 64; b++ {
		var live bool
		if r == asm.RFLAGS {
			live = st.flags&asm.DefinedFlags[b%int(w)] != 0
		} else {
			live = st.regs[r]&(1<<uint(b%int(w))) != 0
		}
		if !live {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// wmask is the value mask for an operation width in bytes.
func wmask(size uint8) uint64 { return lowMask(8 * int(size)) }

// truncImm mirrors the machine's immediate read: the operand value
// truncated to the operation width.
func truncImm(v int64, size uint8) uint64 { return uint64(v) & wmask(size) }

// demandMem fully demands a memory operand's address registers: a
// flipped base or index bit moves the access, which can trap or touch
// unrelated memory. Values read through untracked memory lose their
// demand here (stores to untracked memory compensate by demanding
// everything stored).
func (s *asmState) demandMem(o *asm.Operand) {
	if o.Kind != asm.OperandMem {
		return
	}
	if o.Reg != asm.RegNone {
		s.regs[o.Reg] = ^uint64(0)
	}
	if o.Index != asm.RegNone {
		s.regs[o.Index] = ^uint64(0)
	}
}

// readValue adds demand dem to a source operand: a register gets it
// directly, a tracked frame slot accumulates it for the store that
// defines the slot, and untracked memory demands its address registers.
func (s *asmState) readValue(c *funcCtx, o *asm.Operand, dem uint64) {
	switch o.Kind {
	case asm.OperandReg:
		s.regs[o.Reg] |= dem
	case asm.OperandMem:
		if d, ok := c.slot(o); ok {
			// The address is RBP+disp; RBP is pinned demanded already.
			s.addSlot(d, dem)
			return
		}
		s.demandMem(o)
	}
}

// destDemand returns the demand on the bits a Size-wide register write
// defines and kills the destination per machine.writeReg semantics:
// 8- and 4-byte writes define the whole 64-bit register (4-byte writes
// zero-extend), 1-byte writes merge into the low byte.
func (s *asmState) destDemand(r asm.Reg, size uint8) uint64 {
	d := s.regs[r]
	switch size {
	case 1:
		d &= 0xff
		s.regs[r] &^= 0xff
	case 4:
		d &= lowMask(32)
		s.regs[r] = 0
	default:
		s.regs[r] = 0
	}
	return d
}

// destDemand64 is destDemand for instructions that always define all
// 64 bits regardless of Size (movsx/movzx/lea/pop/cvtsi2sd).
func (s *asmState) destDemand64(r asm.Reg) uint64 {
	d := s.regs[r]
	s.regs[r] = 0
	return d
}

// shiftDemand maps demanded result bits d of a const-count shift at
// width ws back to demanded input bits (sar saturates at the sign bit).
func shiftDemand(op asm.Op, d uint64, s uint, ws int) uint64 {
	switch op {
	case asm.OpShl:
		return d >> s
	case asm.OpShr:
		return (d << s) & lowMask(ws)
	default: // OpSar
		if ws >= 64 {
			dem := d << s
			if s > 0 && d>>(64-s) != 0 {
				dem |= 1 << 63
			}
			return dem
		}
		wide := d << s
		dem := wide & lowMask(ws)
		if wide&^lowMask(ws) != 0 {
			dem |= 1 << uint(ws-1)
		}
		return dem
	}
}

// transfer applies one instruction's backward transfer: given the
// demand after the instruction (the receiver), it computes the demand
// before it, in place.
func (st *asmState) transfer(c *funcCtx, in *asm.Instr) {
	switch in.Op {
	case asm.OpLabel, asm.OpJmp, asm.OpRet:
		// Label and jmp touch nothing; ret's stack read goes through
		// the always-demanded RSP.

	case asm.OpMov:
		if in.Dst.Kind == asm.OperandReg {
			d := st.destDemand(in.Dst.Reg, in.Size)
			st.readValue(c, &in.Src, d)
		} else if sd, ok := c.slot(&in.Dst); ok {
			// Store to a tracked slot: the value is demanded exactly as
			// far as later loads of the slot demand it.
			dem := st.slotDemand(sd) & wmask(in.Size)
			st.killSlot(sd, in.Size)
			st.readValue(c, &in.Src, dem)
		} else {
			st.demandMem(&in.Dst)
			st.readValue(c, &in.Src, wmask(in.Size))
		}

	case asm.OpMovSD:
		if in.Dst.Kind == asm.OperandReg {
			d := st.destDemand(in.Dst.Reg, 8)
			st.readValue(c, &in.Src, d)
		} else if sd, ok := c.slot(&in.Dst); ok {
			dem := st.slotDemand(sd)
			st.killSlot(sd, 8)
			st.readValue(c, &in.Src, dem)
		} else {
			st.demandMem(&in.Dst)
			st.readValue(c, &in.Src, ^uint64(0))
		}

	case asm.OpMovSX:
		d := st.destDemand64(in.Dst.Reg)
		ws := 8 * uint(in.Size)
		var src uint64
		if ws >= 64 {
			src = d
		} else {
			src = d & lowMask(int(ws)-1)
			if d>>(ws-1) != 0 {
				src |= 1 << (ws - 1)
			}
		}
		st.readValue(c, &in.Src, src)

	case asm.OpMovZX:
		d := st.destDemand64(in.Dst.Reg)
		st.readValue(c, &in.Src, d&wmask(in.Size))

	case asm.OpLea:
		d := st.destDemand64(in.Dst.Reg)
		if in.Src.Reg != asm.RegNone {
			st.regs[in.Src.Reg] |= upToMSB(d)
		}
		if in.Src.Index != asm.RegNone {
			sh := 0
			if in.Src.Scale > 0 {
				sh = bits.TrailingZeros64(uint64(in.Src.Scale))
			}
			st.regs[in.Src.Index] |= upToMSB(d) >> uint(sh)
		}

	case asm.OpAdd, asm.OpSub, asm.OpIMul, asm.OpAnd, asm.OpOr, asm.OpXor,
		asm.OpShl, asm.OpSar, asm.OpShr, asm.OpNeg:
		st.alu(c, in)

	case asm.OpCqo:
		d := st.destDemand(asm.RDX, in.Size)
		if d != 0 {
			if in.Size == 4 {
				st.regs[asm.RAX] |= 1 << 31
			} else {
				st.regs[asm.RAX] |= 1 << 63
			}
		}

	case asm.OpIDiv:
		// #DE on zero or overflow makes every input bit demanded.
		st.regs[asm.RAX] = wmask(in.Size)
		st.regs[asm.RDX] = wmask(in.Size)
		st.readValue(c, &in.Src, wmask(in.Size))

	case asm.OpCmp:
		f := st.flags
		st.flags = 0
		if f != 0 {
			st.readValue(c, &in.Dst, wmask(in.Size))
			st.readValue(c, &in.Src, wmask(in.Size))
		} else {
			st.demandMem(&in.Dst)
			st.demandMem(&in.Src)
		}

	case asm.OpTest:
		// test sets OF=CF=0 unconditionally, so demand on those two
		// flags carries no operand demand — only ZF/SF/PF do.
		f := st.flags
		st.flags = 0
		if f&(asm.FlagZF|asm.FlagSF|asm.FlagPF) != 0 {
			st.readValue(c, &in.Dst, wmask(in.Size))
			st.readValue(c, &in.Src, wmask(in.Size))
		} else {
			st.demandMem(&in.Dst)
			st.demandMem(&in.Src)
		}

	case asm.OpUComiSD:
		// ucomisd sets OF=SF=0; only ZF/PF/CF reflect the compare.
		f := st.flags
		st.flags = 0
		var dem uint64
		if f&(asm.FlagZF|asm.FlagPF|asm.FlagCF) != 0 {
			dem = ^uint64(0)
		}
		st.regs[in.Dst.Reg] |= dem
		st.readValue(c, &in.Src, dem)

	case asm.OpSet:
		// setcc writes 0 or 1: bits 1..7 of the byte are constant, so
		// only demand on bit 0 reaches the flags.
		d := st.destDemand(in.Dst.Reg, 1)
		if d&1 != 0 {
			st.flags |= in.Cond.FlagsRead()
		}

	case asm.OpAddSD, asm.OpSubSD, asm.OpMulSD, asm.OpDivSD:
		d := st.destDemand64(in.Dst.Reg)
		var dem uint64
		if d != 0 {
			dem = ^uint64(0)
		}
		st.regs[in.Dst.Reg] |= dem
		st.readValue(c, &in.Src, dem)

	case asm.OpCvtSI2SD:
		d := st.destDemand64(in.Dst.Reg)
		var dem uint64
		if d != 0 {
			dem = wmask(in.Size)
		}
		st.readValue(c, &in.Src, dem)

	case asm.OpCvtSD2SI:
		d := st.destDemand(in.Dst.Reg, in.Size)
		var dem uint64
		if d != 0 {
			dem = ^uint64(0)
		}
		st.readValue(c, &in.Src, dem)

	case asm.OpJcc:
		// The branch direction is always observable (instruction
		// counts, downstream effects), so the read flags are demanded
		// regardless of what follows.
		st.flags |= in.Cond.FlagsRead()

	case asm.OpCall:
		slots, havoc := st.slots, st.havoc
		*st = callBarrier()
		st.slots, st.havoc = slots, havoc

	case asm.OpPush:
		st.readValue(c, &in.Src, ^uint64(0))

	case asm.OpPop:
		st.destDemand64(in.Dst.Reg)

	default:
		// Unknown op: assume the worst, including all slot content.
		*st = callBarrier()
		st.havoc = true
	}
	st.force()
}

// alu handles the two-operand integer group plus neg and shifts.
func (st *asmState) alu(c *funcCtx, in *asm.Instr) {
	if in.Dst.Kind != asm.OperandReg {
		// Read-modify-write on memory: address demanded, source value
		// conservatively demanded at width. A tracked slot keeps its
		// demand (the old content feeds the new), which is sound and
		// matches the untracked treatment of the stored value.
		st.demandMem(&in.Dst)
		st.readValue(c, &in.Src, wmask(in.Size))
		return
	}
	r := in.Dst.Reg
	d := st.destDemand(r, in.Size)
	ws := 8 * int(in.Size)

	switch in.Op {
	case asm.OpAdd, asm.OpSub, asm.OpIMul:
		// Carries ripple upward only.
		st.regs[r] |= upToMSB(d)
		st.readValue(c, &in.Src, upToMSB(d))

	case asm.OpNeg:
		st.regs[r] |= upToMSB(d)

	case asm.OpAnd:
		if in.Src.Kind == asm.OperandImm && in.Src.Sym == "" {
			st.regs[r] |= d & truncImm(in.Src.Imm, in.Size)
		} else {
			st.regs[r] |= d
			st.readValue(c, &in.Src, d)
		}

	case asm.OpOr:
		if in.Src.Kind == asm.OperandImm && in.Src.Sym == "" {
			st.regs[r] |= d &^ truncImm(in.Src.Imm, in.Size)
		} else {
			st.regs[r] |= d
			st.readValue(c, &in.Src, d)
		}

	case asm.OpXor:
		if in.Src.Kind == asm.OperandReg && in.Src.Reg == r {
			// xor r,r zeroing idiom: the result is constant.
			return
		}
		st.regs[r] |= d
		st.readValue(c, &in.Src, d)

	case asm.OpShl, asm.OpSar, asm.OpShr:
		cmask := uint64(31)
		if in.Size == 8 {
			cmask = 63
		}
		if in.Src.Kind == asm.OperandImm && in.Src.Sym == "" {
			s := uint(uint64(in.Src.Imm) & cmask)
			st.regs[r] |= shiftDemand(in.Op, d, s, ws)
		} else if d != 0 {
			st.readValue(c, &in.Src, cmask)
			switch in.Op {
			case asm.OpShl:
				st.regs[r] |= upToMSB(d)
			default: // shr/sar: input bits below the lowest demanded
				// result bit can never reach it.
				st.regs[r] |= lowMask(ws) &^ lowMask(bits.TrailingZeros64(d))
			}
		}
	}
}
