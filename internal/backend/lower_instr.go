package backend

import (
	"fmt"

	"flowery/internal/asm"
	"flowery/internal/ir"
)

// lowerInstr emits code for one IR instruction (fused compares, aliased
// duplicates, and folded checks are filtered out by the caller).
func (fl *funcLowerer) lowerInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.OpAlloca:
		// Frame storage was laid out statically; the address is
		// materialized lazily at each use.
		return nil

	case ir.OpLoad:
		return fl.lowerLoad(in)
	case ir.OpStore:
		return fl.lowerStore(in)
	case ir.OpICmp, ir.OpFCmp:
		return fl.lowerCmp(in)
	case ir.OpGEP:
		return fl.lowerGEP(in)
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpSIToFP, ir.OpFPToSI:
		return fl.lowerCast(in)
	case ir.OpCall:
		return fl.lowerCall(in)
	case ir.OpBr:
		fl.emit(asm.Instr{Op: asm.OpJmp, Target: in.Blocks[0].Name})
		return nil
	case ir.OpCondBr:
		return fl.lowerCondBr(in)
	case ir.OpRet:
		if len(in.Args) == 1 {
			v := in.Args[0]
			if v.Type() == ir.F64 {
				fl.cache.dropReg(asm.XMM0)
				fl.materializeInto(asm.XMM0, v, asm.OriginCallArg)
			} else {
				fl.cache.dropReg(asm.RAX)
				fl.materializeInto(asm.RAX, v, asm.OriginCallArg)
			}
		}
		fl.emitEpilogue()
		return nil
	default:
		if in.Op.IsBinOp() {
			return fl.lowerBin(in)
		}
		return fmt.Errorf("unsupported opcode %s", in.Op)
	}
}

func (fl *funcLowerer) lowerLoad(in *ir.Instr) error {
	mem := fl.addrOperand(in.Args[0], asm.OriginNone)
	var rd asm.Reg
	if in.Ty == ir.F64 {
		rd = fl.freshXMM()
	} else {
		rd = fl.freshGPR(mem.Reg, mem.Index)
	}
	fl.loadSlotInto(rd, in.Ty, mem, asm.OriginNone)
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

// lowerStore is where store penetration lives: if the stored value (or a
// computed address) is no longer in the block-local cache — which is
// exactly what happens when a duplication checker split the block — the
// value must be re-fetched from its slot, and that reload executes after
// the checker already approved the value.
func (fl *funcLowerer) lowerStore(in *ir.Instr) error {
	v, p := in.Args[0], in.Args[1]
	size := storeSize(v.Type())
	mem := fl.addrOperand(p, asm.OriginStoreReload)

	if c, ok := fl.resolve(v).(*ir.Const); ok && c.Ty != ir.F64 && fitsInt32(c.Int()) {
		// mov $imm, mem: no register destination, no injection site.
		fl.emit(asm.Instr{Op: asm.OpMov, Size: size, Dst: mem, Src: asm.ImmOp(c.Int())})
		return nil
	}
	if v.Type() == ir.F64 {
		rv := fl.getXMM(v, asm.OriginStoreReload)
		fl.emit(asm.Instr{Op: asm.OpMovSD, Size: 8, Dst: mem, Src: asm.RegOp(rv)})
		return nil
	}
	rv := fl.getGPR(v, asm.OriginStoreReload)
	fl.emit(asm.Instr{Op: asm.OpMov, Size: size, Dst: mem, Src: asm.RegOp(rv)})
	return nil
}

func (fl *funcLowerer) lowerBin(in *ir.Instr) error {
	if in.Ty == ir.F64 {
		return fl.lowerFBin(in)
	}
	x, y := in.Args[0], in.Args[1]
	w := opSize(in.Ty)

	switch in.Op {
	case ir.OpSDiv, ir.OpSRem:
		return fl.lowerDiv(in)
	case ir.OpShl, ir.OpAShr, ir.OpLShr:
		return fl.lowerShift(in)
	}

	yOp := fl.operandRM(y, asm.OriginNone)
	rd := fl.freshGPR(yOp.Reg, yOp.Index, fl.peekReg(x))
	fl.materializeInto(rd, x, asm.OriginNone)

	var op asm.Op
	switch in.Op {
	case ir.OpAdd:
		op = asm.OpAdd
	case ir.OpSub:
		op = asm.OpSub
	case ir.OpMul:
		op = asm.OpIMul
	case ir.OpAnd:
		op = asm.OpAnd
	case ir.OpOr:
		op = asm.OpOr
	case ir.OpXor:
		op = asm.OpXor
	default:
		return fmt.Errorf("unsupported integer binop %s", in.Op)
	}
	// 8-bit imul does not exist in two-operand form; and the 1-byte
	// immediate encodings are irrelevant to the simulator, so plain
	// width-w ALU ops suffice.
	if op == asm.OpIMul && w == 1 {
		fl.emit(asm.Instr{Op: op, Size: 4, Dst: asm.RegOp(rd), Src: yOp})
	} else {
		fl.emit(asm.Instr{Op: op, Size: w, Dst: asm.RegOp(rd), Src: yOp})
	}
	if in.Ty == ir.I8 {
		// Re-canonicalize: i8 values are kept sign-extended in registers.
		fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
	}
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

// peekReg returns the register caching v without touching LRU state, or
// RegNone.
func (fl *funcLowerer) peekReg(v ir.Value) asm.Reg {
	v = fl.resolve(v)
	if r, ok := fl.cache.vals[v]; ok {
		return r
	}
	return asm.RegNone
}

func (fl *funcLowerer) lowerFBin(in *ir.Instr) error {
	x, y := in.Args[0], in.Args[1]
	yOp := fl.operandRM(y, asm.OriginNone)
	rd := fl.freshXMM(yOp.Reg, fl.peekReg(x))
	fl.materializeInto(rd, x, asm.OriginNone)
	var op asm.Op
	switch in.Op {
	case ir.OpFAdd:
		op = asm.OpAddSD
	case ir.OpFSub:
		op = asm.OpSubSD
	case ir.OpFMul:
		op = asm.OpMulSD
	default:
		op = asm.OpDivSD
	}
	fl.emit(asm.Instr{Op: op, Size: 8, Dst: asm.RegOp(rd), Src: yOp})
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

func (fl *funcLowerer) lowerDiv(in *ir.Instr) error {
	x, y := in.Args[0], in.Args[1]
	// i8 division is promoted to 32 bits (as clang promotes to int);
	// 32-bit idiv of byte-range operands can never overflow.
	w := opSize(in.Ty)
	if w == 1 {
		w = 4
	}
	fl.cache.dropReg(asm.RAX)
	fl.cache.dropReg(asm.RDX)
	fl.materializeInto(asm.RAX, x, asm.OriginNone)
	// Divisor must be a register or memory operand. i8 divisors must
	// come via a register: their 1-byte slots cannot be read at the
	// promoted 32-bit width.
	yOp := fl.operandRM(y, asm.OriginNone)
	if yOp.Kind == asm.OperandImm || (in.Ty == ir.I8 && yOp.Kind == asm.OperandMem) {
		rt := fl.freshGPR(asm.RAX, asm.RDX)
		fl.materializeInto(rt, y, asm.OriginNone)
		yOp = asm.RegOp(rt)
	}
	fl.emit(asm.Instr{Op: asm.OpCqo, Size: w})
	fl.emit(asm.Instr{Op: asm.OpIDiv, Size: w, Src: yOp})
	rd := asm.RAX
	if in.Op == ir.OpSRem {
		rd = asm.RDX
	}
	if in.Ty == ir.I8 {
		fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
	}
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

func (fl *funcLowerer) lowerShift(in *ir.Instr) error {
	x, y := in.Args[0], in.Args[1]
	w := opSize(in.Ty)
	var op asm.Op
	switch in.Op {
	case ir.OpShl:
		op = asm.OpShl
	case ir.OpAShr:
		op = asm.OpSar
	default:
		op = asm.OpShr
	}
	var src asm.Operand
	if c, ok := fl.resolve(y).(*ir.Const); ok {
		src = asm.ImmOp(c.Int())
	} else {
		fl.cache.dropReg(asm.RCX)
		fl.materializeInto(asm.RCX, y, asm.OriginNone)
		src = asm.RegOp(asm.RCX)
	}
	rd := fl.freshGPR(asm.RCX, fl.peekReg(x))
	fl.materializeInto(rd, x, asm.OriginNone)
	// lshr on i8/i32 must shift the zero-extended pattern; i8 values are
	// kept sign-extended, so clear the high bits first.
	if in.Op == ir.OpLShr && in.Ty == ir.I8 {
		fl.emit(asm.Instr{Op: asm.OpMovZX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
	}
	fl.emit(asm.Instr{Op: op, Size: w, Dst: asm.RegOp(rd), Src: src})
	if in.Ty == ir.I8 {
		fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
	}
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

// condFor maps an integer comparison predicate to a condition code.
func condFor(p ir.Pred) asm.Cond {
	switch p {
	case ir.PredEQ:
		return asm.CondE
	case ir.PredNE:
		return asm.CondNE
	case ir.PredSLT:
		return asm.CondL
	case ir.PredSLE:
		return asm.CondLE
	case ir.PredSGT:
		return asm.CondG
	case ir.PredSGE:
		return asm.CondGE
	case ir.PredULT:
		return asm.CondB
	case ir.PredULE:
		return asm.CondBE
	case ir.PredUGT:
		return asm.CondA
	case ir.PredUGE:
		return asm.CondAE
	default:
		return asm.CondNone
	}
}

func (fl *funcLowerer) lowerCmp(in *ir.Instr) error {
	origin := asm.OriginNone
	if fl.fold.unprotected[in] {
		// This compare's duplicate was folded away: its materialization
		// is the comparison-penetration site.
		origin = asm.OriginCmpFolded
	}
	if in.Op == ir.OpICmp {
		w := opSize(in.Args[0].Type())
		yOp := fl.operandRM(in.Args[1], asm.OriginNone)
		rx := fl.getGPR(in.Args[0], asm.OriginNone)
		fl.emit(asm.Instr{Op: asm.OpCmp, Size: w, Dst: asm.RegOp(rx), Src: yOp, Origin: origin})
		rd := fl.freshGPR(rx, yOp.Reg, yOp.Index)
		fl.emit(asm.Instr{Op: asm.OpSet, Cond: condFor(in.Pred), Dst: asm.RegOp(rd), Origin: origin})
		fl.emit(asm.Instr{Op: asm.OpMovZX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd), Origin: origin})
		fl.cache.bind(in, rd)
		fl.storeBack(in, rd)
		return nil
	}
	// fcmp: ucomisd sets CF/ZF/PF like an unsigned compare; olt/ole are
	// handled by swapping operands so the NaN-safe above/above-equal
	// conditions apply.
	a, b := in.Args[0], in.Args[1]
	var cc asm.Cond
	switch in.Pred {
	case ir.PredOGT:
		cc = asm.CondA
	case ir.PredOGE:
		cc = asm.CondAE
	case ir.PredOLT:
		a, b = b, a
		cc = asm.CondA
	case ir.PredOLE:
		a, b = b, a
		cc = asm.CondAE
	case ir.PredOEQ:
		cc = asm.CondE
	case ir.PredONE:
		cc = asm.CondNE
	default:
		return fmt.Errorf("unsupported fcmp predicate %s", in.Pred)
	}
	yOp := fl.operandRM(b, asm.OriginNone)
	rx := fl.getXMM(a, asm.OriginNone)
	fl.emit(asm.Instr{Op: asm.OpUComiSD, Size: 8, Dst: asm.RegOp(rx), Src: yOp, Origin: origin})
	rd := fl.freshGPR()
	if in.Pred == ir.PredOEQ || in.Pred == ir.PredONE {
		// Ordered (not-)equal needs the parity flag: ucomisd reports
		// "unordered" as ZF=PF=CF=1, so both predicates require NP
		// (ordered) AND the base condition.
		rt := fl.freshGPR(rd)
		fl.emit(asm.Instr{Op: asm.OpSet, Cond: cc, Dst: asm.RegOp(rd), Origin: origin})
		fl.emit(asm.Instr{Op: asm.OpSet, Cond: asm.CondNP, Dst: asm.RegOp(rt), Origin: origin})
		fl.emit(asm.Instr{Op: asm.OpAnd, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rt)})
	} else {
		fl.emit(asm.Instr{Op: asm.OpSet, Cond: cc, Dst: asm.RegOp(rd), Origin: origin})
	}
	fl.emit(asm.Instr{Op: asm.OpMovZX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd), Origin: origin})
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

func (fl *funcLowerer) lowerGEP(in *ir.Instr) error {
	base, idx := in.Args[0], in.Args[1]
	elem := in.Aux

	if c, ok := fl.resolve(idx).(*ir.Const); ok {
		rd := fl.freshGPR(fl.peekReg(base))
		fl.materializeInto(rd, base, asm.OriginNone)
		disp := c.Int() * elem
		if disp != 0 {
			if !fitsInt32(disp) {
				return fmt.Errorf("gep displacement %d out of range", disp)
			}
			fl.emit(asm.Instr{Op: asm.OpAdd, Size: 8, Dst: asm.RegOp(rd), Src: asm.ImmOp(disp)})
		}
		fl.cache.bind(in, rd)
		fl.storeBack(in, rd)
		return nil
	}

	ri := fl.getGPR(idx, asm.OriginNone)
	rd := fl.freshGPR(ri, fl.peekReg(base))
	fl.materializeInto(rd, base, asm.OriginNone)
	switch elem {
	case 1, 2, 4, 8:
		fl.emit(asm.Instr{Op: asm.OpLea, Size: 8, Dst: asm.RegOp(rd), Src: asm.MemIdxOp(rd, 0, ri, elem)})
	default:
		rt := fl.freshGPR(rd, ri)
		fl.emit(asm.Instr{Op: asm.OpMov, Size: 8, Dst: asm.RegOp(rt), Src: asm.RegOp(ri)})
		fl.emit(asm.Instr{Op: asm.OpIMul, Size: 8, Dst: asm.RegOp(rt), Src: asm.ImmOp(elem)})
		fl.emit(asm.Instr{Op: asm.OpAdd, Size: 8, Dst: asm.RegOp(rd), Src: asm.RegOp(rt)})
	}
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

func (fl *funcLowerer) lowerCast(in *ir.Instr) error {
	x := in.Args[0]
	from := x.Type()

	switch in.Op {
	case ir.OpSIToFP:
		w := uint8(8)
		if from == ir.I32 {
			w = 4
		}
		src := fl.operandRM(x, asm.OriginNone)
		// Immediates are not valid cvtsi2sd sources, and i8/i1 slots are
		// narrower than the 64-bit conversion width.
		if src.Kind == asm.OperandImm ||
			(src.Kind == asm.OperandMem && (from == ir.I8 || from == ir.I1)) {
			rt := fl.freshGPR()
			fl.materializeInto(rt, x, asm.OriginNone)
			src = asm.RegOp(rt)
		}
		rd := fl.freshXMM()
		fl.emit(asm.Instr{Op: asm.OpCvtSI2SD, Size: w, Dst: asm.RegOp(rd), Src: src})
		fl.cache.bind(in, rd)
		fl.storeBack(in, rd)
		return nil

	case ir.OpFPToSI:
		w := uint8(8)
		if in.Ty != ir.I64 {
			w = 4 // cvttsd2si exists only at 32/64 bits
		}
		src := fl.operandRM(x, asm.OriginNone)
		rd := fl.freshGPR(src.Reg)
		fl.emit(asm.Instr{Op: asm.OpCvtSD2SI, Size: w, Dst: asm.RegOp(rd), Src: src})
		switch in.Ty {
		case ir.I8:
			fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		case ir.I1:
			fl.emit(asm.Instr{Op: asm.OpAnd, Size: 4, Dst: asm.RegOp(rd), Src: asm.ImmOp(1)})
		}
		fl.cache.bind(in, rd)
		fl.storeBack(in, rd)
		return nil
	}

	rd := fl.freshGPR(fl.peekReg(x))
	fl.materializeInto(rd, x, asm.OriginNone)
	switch in.Op {
	case ir.OpTrunc:
		switch in.Ty {
		case ir.I32:
			fl.emit(asm.Instr{Op: asm.OpMov, Size: 4, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		case ir.I8:
			fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		case ir.I1:
			fl.emit(asm.Instr{Op: asm.OpAnd, Size: 4, Dst: asm.RegOp(rd), Src: asm.ImmOp(1)})
		}
	case ir.OpZExt:
		switch from {
		case ir.I8:
			fl.emit(asm.Instr{Op: asm.OpMovZX, Size: 1, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		case ir.I1, ir.I32:
			// Already zero-extended in-register; the copy suffices.
		}
	case ir.OpSExt:
		switch {
		case from == ir.I1:
			fl.emit(asm.Instr{Op: asm.OpNeg, Size: opSize(in.Ty), Dst: asm.RegOp(rd)})
		case from == ir.I8 && in.Ty == ir.I32:
			fl.emit(asm.Instr{Op: asm.OpMov, Size: 4, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		case from == ir.I8 && in.Ty == ir.I64:
			// Already sign-extended canonically.
		case from == ir.I32:
			fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 4, Dst: asm.RegOp(rd), Src: asm.RegOp(rd)})
		}
	}
	fl.cache.bind(in, rd)
	fl.storeBack(in, rd)
	return nil
}

// lowerCall is where call penetration lives: the System V convention
// moves every argument into its register right before the call — after
// any duplication checker already validated the values.
func (fl *funcLowerer) lowerCall(in *ir.Instr) error {
	// Everything caller-saved dies across the call, and the argument
	// registers overlap the scratch pool: flush the cache first so the
	// argument moves read from slots (exactly what clang -O0 emits).
	fl.cache.dropAll()

	intIdx, fpIdx := 0, 0
	for _, a := range in.Args {
		if a.Type() == ir.F64 {
			if fpIdx >= len(asm.FloatArgRegs) {
				return fmt.Errorf("call @%s: too many float args", in.Callee.Name)
			}
			fl.materializeInto(asm.FloatArgRegs[fpIdx], a, asm.OriginCallArg)
			fpIdx++
			continue
		}
		if intIdx >= len(asm.IntArgRegs) {
			return fmt.Errorf("call @%s: too many integer args", in.Callee.Name)
		}
		fl.materializeInto(asm.IntArgRegs[intIdx], a, asm.OriginCallArg)
		intIdx++
	}
	fl.emit(asm.Instr{Op: asm.OpCall, Target: in.Callee.Name, Origin: asm.OriginFrame})
	fl.cache.dropAll()
	if !in.HasResult() {
		return nil
	}
	if in.Ty == ir.F64 {
		fl.cache.bind(in, asm.XMM0)
		fl.storeBack(in, asm.XMM0)
		return nil
	}
	fl.cache.bind(in, asm.RAX)
	fl.storeBack(in, asm.RAX)
	return nil
}

func (fl *funcLowerer) lowerCondBr(in *ir.Instr) error {
	cond := in.Args[0]
	trueL, falseL := in.Blocks[0].Name, in.Blocks[1].Name

	if ci, ok := cond.(*ir.Instr); ok {
		if fl.fold.foldedTrue[ci] {
			// The duplicated comparison check folded to constant true
			// (paper Fig. 9): the branch degenerates to mov $1 / test.
			rd := fl.freshGPR()
			fl.emit(asm.Instr{Op: asm.OpMov, Size: 1, Dst: asm.RegOp(rd), Src: asm.ImmOp(1), Origin: asm.OriginCmpFolded})
			fl.emit(asm.Instr{Op: asm.OpTest, Size: 1, Dst: asm.RegOp(rd), Src: asm.ImmOp(1), Origin: asm.OriginCmpFolded})
			fl.emit(asm.Instr{Op: asm.OpJcc, Cond: asm.CondNE, Target: trueL})
			fl.emit(asm.Instr{Op: asm.OpJmp, Target: falseL})
			return nil
		}
		if fl.fused[ci] {
			return fl.lowerFusedCmpBr(ci, trueL, falseL)
		}
	}

	// General case (paper Fig. 7): the condition is re-tested, creating
	// the branch-penetration RFLAGS site.
	rc := fl.getGPR(cond, asm.OriginBranchTest)
	fl.emit(asm.Instr{Op: asm.OpTest, Size: 1, Dst: asm.RegOp(rc), Src: asm.ImmOp(1), Origin: asm.OriginBranchTest})
	fl.emit(asm.Instr{Op: asm.OpJcc, Cond: asm.CondNE, Target: trueL})
	fl.emit(asm.Instr{Op: asm.OpJmp, Target: falseL})
	return nil
}

// lowerFusedCmpBr emits cmp/jcc (or ucomisd/jcc) for a compare that
// immediately precedes its only consumer, a conditional branch.
func (fl *funcLowerer) lowerFusedCmpBr(cmp *ir.Instr, trueL, falseL string) error {
	fl.curChecker = fl.curChecker || cmp.Prot.IsChecker
	if cmp.Op == ir.OpICmp {
		w := opSize(cmp.Args[0].Type())
		yOp := fl.operandRM(cmp.Args[1], asm.OriginNone)
		rx := fl.getGPR(cmp.Args[0], asm.OriginNone)
		fl.emit(asm.Instr{Op: asm.OpCmp, Size: w, Dst: asm.RegOp(rx), Src: yOp})
		fl.emit(asm.Instr{Op: asm.OpJcc, Cond: condFor(cmp.Pred), Target: trueL})
		fl.emit(asm.Instr{Op: asm.OpJmp, Target: falseL})
		return nil
	}
	a, b := cmp.Args[0], cmp.Args[1]
	var cc asm.Cond
	switch cmp.Pred {
	case ir.PredOGT:
		cc = asm.CondA
	case ir.PredOGE:
		cc = asm.CondAE
	case ir.PredOLT:
		a, b = b, a
		cc = asm.CondA
	case ir.PredOLE:
		a, b = b, a
		cc = asm.CondAE
	default:
		return fmt.Errorf("unfusible fcmp predicate %s", cmp.Pred)
	}
	yOp := fl.operandRM(b, asm.OriginNone)
	rx := fl.getXMM(a, asm.OriginNone)
	fl.emit(asm.Instr{Op: asm.OpUComiSD, Size: 8, Dst: asm.RegOp(rx), Src: yOp})
	fl.emit(asm.Instr{Op: asm.OpJcc, Cond: cc, Target: trueL})
	fl.emit(asm.Instr{Op: asm.OpJmp, Target: falseL})
	return nil
}
