package backend

import "flowery/internal/ir"

// foldInfo records, per function, the results of the block-local
// comparison-check folding that models SelectionDAG CSE + constant
// folding at -O0.
//
// Background (paper §5.2, "comparison penetration"): FastISel lowers
// straight-line integer code linearly without CSE, which is why
// duplicated arithmetic survives to assembly. But validating a
// comparison result produces an `icmp eq i1 %5, %6` chain; i1 logic goes
// through SelectionDAG, which value-numbers nodes within one block. Two
// duplicated icmps whose operands are loads from the same addresses unify
// there, the `icmp eq x, x` check folds to constant true, and the
// duplicate compare disappears — leaving a single unprotected setcc.
//
// We reproduce exactly that scope: only `icmp eq` checks over i1 operands
// participate, and congruence is established only within a single basic
// block (which is why Flowery's anti-comparison patch — moving the
// duplicate compare into another block — defeats it).
type foldInfo struct {
	// foldedTrue holds checks (icmp eq i1 x,y) that fold to constant 1.
	foldedTrue map[*ir.Instr]bool
	// alias maps an eliminated duplicate compare to its representative.
	alias map[*ir.Instr]*ir.Instr
	// unprotected marks representative compares whose duplicate was
	// eliminated: their materialization is the comparison-penetration
	// injection site.
	unprotected map[*ir.Instr]bool
	// tainted marks instructions whose every use feeds (transitively)
	// into a folded check's compares: a fault anywhere in that backward
	// slice escapes detection for the same reason the compare itself
	// does, so their emitted code carries the comparison-penetration
	// tag too.
	tainted map[*ir.Instr]bool
}

// maxCongruenceDepth bounds the recursive congruence walk, mirroring the
// bounded lookback a DAG over one block provides.
const maxCongruenceDepth = 8

func analyzeFolds(f *ir.Function) *foldInfo {
	fi := &foldInfo{
		foldedTrue:  make(map[*ir.Instr]bool),
		alias:       make(map[*ir.Instr]*ir.Instr),
		unprotected: make(map[*ir.Instr]bool),
		tainted:     make(map[*ir.Instr]bool),
	}
	for _, b := range f.Blocks {
		analyzeBlock(fi, b)
	}
	fi.taintBackwardSlices(f)
	return fi
}

// taintBackwardSlices marks instructions all of whose uses lead into
// folded comparison checks. A fault in such an instruction corrupts a
// value that only the (deleted) check could have validated.
func (fi *foldInfo) taintBackwardSlices(f *ir.Function) {
	if len(fi.foldedTrue) == 0 {
		return
	}
	users := make(map[*ir.Instr][]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					users[ai] = append(users[ai], in)
				}
			}
		}
	}
	// A user "absorbs" a fault silently if it is a folded check, an
	// eliminated duplicate, an unprotected representative compare, or
	// itself tainted.
	absorbed := func(u *ir.Instr) bool {
		if fi.foldedTrue[u] || fi.unprotected[u] || fi.tainted[u] {
			return true
		}
		_, aliased := fi.alias[u]
		return aliased
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if fi.tainted[in] || in.Prot.IsChecker || !in.HasResult() {
					continue
				}
				us := users[in]
				if len(us) == 0 {
					continue
				}
				all := true
				for _, u := range us {
					if !absorbed(u) {
						all = false
						break
					}
				}
				if all {
					fi.tainted[in] = true
					changed = true
				}
			}
		}
	}
}

func analyzeBlock(fi *foldInfo, b *ir.Block) {
	// epoch[i] counts the stores/calls before instruction i; two loads
	// agree only if no store or call separates them.
	epoch := make(map[*ir.Instr]int, len(b.Instrs))
	pos := make(map[*ir.Instr]int, len(b.Instrs))
	e := 0
	for i, in := range b.Instrs {
		epoch[in] = e
		pos[in] = i
		if in.Op == ir.OpStore || in.Op == ir.OpCall {
			e++
		}
	}

	var congruent func(a, b ir.Value, depth int) bool
	congruent = func(x, y ir.Value, depth int) bool {
		if x == y {
			return true
		}
		if depth <= 0 {
			return false
		}
		switch xv := x.(type) {
		case *ir.Const:
			yv, ok := y.(*ir.Const)
			return ok && xv.Ty == yv.Ty && xv.Bits == yv.Bits
		case *ir.Instr:
			yv, ok := y.(*ir.Instr)
			if !ok {
				return false
			}
			// Both must be in this block: the DAG sees one block.
			if _, inB := pos[xv]; !inB {
				return false
			}
			if _, inB := pos[yv]; !inB {
				return false
			}
			if xv.Op != yv.Op || xv.Pred != yv.Pred || xv.Aux != yv.Aux || xv.Ty != yv.Ty {
				return false
			}
			switch {
			case xv.Op == ir.OpLoad:
				if epoch[xv] != epoch[yv] {
					return false
				}
			case xv.Op.IsPure():
				// fall through to operand comparison
			default:
				return false
			}
			if len(xv.Args) != len(yv.Args) {
				return false
			}
			for i := range xv.Args {
				if !congruent(xv.Args[i], yv.Args[i], depth-1) {
					return false
				}
			}
			return true
		default:
			// Params and globals are congruent only by identity, which
			// the x == y fast path already covered.
			return false
		}
	}

	for _, in := range b.Instrs {
		if in.Op != ir.OpICmp || in.Pred != ir.PredEQ {
			continue
		}
		xi, okX := in.Args[0].(*ir.Instr)
		yi, okY := in.Args[1].(*ir.Instr)
		if !okX || !okY {
			continue
		}
		// Only comparison-result validation: both operands are compares
		// producing i1.
		if xi.Ty != ir.I1 || yi.Ty != ir.I1 {
			continue
		}
		isCmp := func(v *ir.Instr) bool { return v.Op == ir.OpICmp || v.Op == ir.OpFCmp }
		if !isCmp(xi) || !isCmp(yi) {
			continue
		}
		if !congruent(xi, yi, maxCongruenceDepth) {
			continue
		}
		// Alias the later compare to the earlier one; the check becomes
		// constant true and the surviving compare loses its protection.
		rep, dup := xi, yi
		if pos[dup] < pos[rep] {
			rep, dup = dup, rep
		}
		fi.foldedTrue[in] = true
		if rep != dup {
			fi.alias[dup] = rep
		}
		fi.unprotected[rep] = true
	}
}

// resolveAlias follows alias chains to the representative.
func (fi *foldInfo) resolveAlias(in *ir.Instr) *ir.Instr {
	for {
		rep, ok := fi.alias[in]
		if !ok {
			return in
		}
		in = rep
	}
}
