package backend

import (
	"flowery/internal/asm"
	"flowery/internal/ir"
)

// regCache is the block-local value↔register map, the moral equivalent of
// FastISel's local value map. Values are homed in stack slots at
// definition (store-back-at-def), so eviction never needs a writeback.
//
// The cache is cleared at every block boundary and at calls. This is the
// mechanism behind store penetration: a duplication checker splits the
// block before a store, the stored value falls out of the cache, and the
// store must reload it from its slot — creating an unprotected injection
// site after the check already ran.
type regCache struct {
	vals  map[ir.Value]asm.Reg
	owner [asm.NumRegs]ir.Value
	// stamp implements LRU: higher = more recently used.
	stamp [asm.NumRegs]int64
	clock int64
}

// gprPool are the caller-saved scratch registers the lowering uses for
// integer values, in allocation preference order. RBP/RSP frame the
// function; callee-saved registers are untouched (as at -O0).
var gprPool = []asm.Reg{asm.RAX, asm.RCX, asm.RDX, asm.RSI, asm.RDI, asm.R8, asm.R9, asm.R10, asm.R11}

// xmmPool are the SSE scratch registers for f64 values.
var xmmPool = []asm.Reg{asm.XMM0, asm.XMM1, asm.XMM2, asm.XMM3, asm.XMM4, asm.XMM5, asm.XMM6, asm.XMM7}

func newRegCache() *regCache {
	return &regCache{vals: make(map[ir.Value]asm.Reg)}
}

// lookup returns the register caching v, if any, and refreshes its LRU
// stamp.
func (c *regCache) lookup(v ir.Value) (asm.Reg, bool) {
	r, ok := c.vals[v]
	if ok {
		c.clock++
		c.stamp[r] = c.clock
	}
	return r, ok
}

// bind records that r now holds v, evicting r's previous occupant.
func (c *regCache) bind(v ir.Value, r asm.Reg) {
	c.dropReg(r)
	if old, ok := c.vals[v]; ok {
		c.owner[old] = nil
	}
	c.vals[v] = r
	c.owner[r] = v
	c.clock++
	c.stamp[r] = c.clock
}

// alloc picks a register from pool, preferring free ones, else evicting
// the least recently used.
func (c *regCache) alloc(pool []asm.Reg) asm.Reg {
	var best asm.Reg
	bestStamp := int64(1<<62 - 1)
	for _, r := range pool {
		if c.owner[r] == nil {
			return r
		}
		if c.stamp[r] < bestStamp {
			bestStamp = c.stamp[r]
			best = r
		}
	}
	c.dropReg(best)
	return best
}

// dropReg evicts whatever value r holds.
func (c *regCache) dropReg(r asm.Reg) {
	if v := c.owner[r]; v != nil {
		delete(c.vals, v)
		c.owner[r] = nil
	}
}

// dropAll clears the cache (block boundaries, calls).
func (c *regCache) dropAll() {
	for r := range c.owner {
		c.owner[r] = nil
	}
	clear(c.vals)
}
