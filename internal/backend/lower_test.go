package backend

import (
	"strings"
	"testing"

	"flowery/internal/asm"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
)

// mustLower lowers and validates.
func mustLower(t *testing.T, m *ir.Module) *asm.Program {
	t.Helper()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	prog, err := Lower(m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// countOrigins tallies static instruction origins in one function.
func countOrigins(f *asm.Func) map[asm.Origin]int {
	c := make(map[asm.Origin]int)
	for _, in := range f.Instrs {
		if in.Op != asm.OpLabel {
			c[in.Origin]++
		}
	}
	return c
}

// buildStoreChain builds: v = a+b (from globals); store v to a global.
func buildStoreChain() *ir.Module {
	m := ir.NewModule("store")
	ga := m.NewGlobalI64("a", []int64{1})
	gb := m.NewGlobalI64("b", []int64{2})
	gout := m.NewGlobalI64("out", []int64{0})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, ga)
	y := b.Load(ir.I64, gb)
	v := b.Add(x, y)
	b.Store(v, gout)
	b.Ret(ir.ConstInt(ir.I64, 0))
	return m
}

// TestStorePenetrationEmergesFromCheckerSplit is the core mechanism test:
// without protection the store finds its value in the block-local cache
// (no reload); after duplication the checker splits the block and the
// reload appears, tagged OriginStoreReload.
func TestStorePenetrationEmergesFromCheckerSplit(t *testing.T) {
	plain := mustLower(t, buildStoreChain())
	if n := countOrigins(plain.Func("main"))[asm.OriginStoreReload]; n != 0 {
		t.Fatalf("unprotected program has %d store-reload sites; want 0", n)
	}

	prot := buildStoreChain()
	if err := dup.ApplyFull(prot); err != nil {
		t.Fatal(err)
	}
	lowered := mustLower(t, prot)
	if n := countOrigins(lowered.Func("main"))[asm.OriginStoreReload]; n == 0 {
		t.Fatal("protected program has no store-reload site; store penetration did not emerge")
	}
}

// TestEagerStoreRemovesReload: the Flowery patch must eliminate the
// reload the duplication introduced.
func TestEagerStoreRemovesReload(t *testing.T) {
	m := buildStoreChain()
	if err := dup.ApplyFull(m); err != nil {
		t.Fatal(err)
	}
	st, err := flowery.Apply(m, flowery.Options{EagerStore: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.StoresHoisted == 0 {
		t.Fatal("eager store hoisted nothing")
	}
	lowered := mustLower(t, m)
	if n := countOrigins(lowered.Func("main"))[asm.OriginStoreReload]; n != 0 {
		t.Fatalf("eager store left %d reload sites", n)
	}
}

// buildBranchChain builds: c = (a < b); if c print 1 else print 2.
func buildBranchChain() *ir.Module {
	m := ir.NewModule("branch")
	ga := m.NewGlobalI64("a", []int64{1})
	gb := m.NewGlobalI64("b", []int64{2})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, ga)
	y := b.Load(ir.I64, gb)
	c := b.ICmp(ir.PredSLT, x, y)
	b.If(c, func() { b.PrintI64(ir.ConstInt(ir.I64, 1)) }, func() { b.PrintI64(ir.ConstInt(ir.I64, 2)) })
	b.Ret(ir.ConstInt(ir.I64, 0))
	return m
}

// TestBranchFusionAndPenetration: unprotected, the compare fuses with
// the branch (no test instruction); after duplication the checker breaks
// fusion and the OriginBranchTest site appears.
func TestBranchFusionAndPenetration(t *testing.T) {
	plain := mustLower(t, buildBranchChain())
	if n := countOrigins(plain.Func("main"))[asm.OriginBranchTest]; n != 0 {
		t.Fatalf("unprotected program has %d branch-test sites; fusion failed", n)
	}
	// And the fused form has a conditional jump right after a cmp.
	text := plain.Func("main").String()
	if !strings.Contains(text, "cmp") {
		t.Fatalf("no cmp in lowered branch program:\n%s", text)
	}

	prot := buildBranchChain()
	if err := dup.ApplyFull(prot); err != nil {
		t.Fatal(err)
	}
	lowered := mustLower(t, prot)
	if n := countOrigins(lowered.Func("main"))[asm.OriginBranchTest]; n == 0 {
		t.Fatal("protected program has no branch-test site; branch penetration did not emerge")
	}
}

// TestComparisonFolding: the duplicated compare check folds to a
// constant (paper Fig. 9) and the surviving compare is tagged; Flowery's
// anti-cmp patch prevents the fold.
func TestComparisonFolding(t *testing.T) {
	prot := buildBranchChain()
	if err := dup.ApplyFull(prot); err != nil {
		t.Fatal(err)
	}
	lowered := mustLower(t, prot)
	counts := countOrigins(lowered.Func("main"))
	if counts[asm.OriginCmpFolded] == 0 {
		t.Fatal("no folded-comparison site; comparison penetration did not emerge")
	}

	fixed := buildBranchChain()
	if err := dup.ApplyFull(fixed); err != nil {
		t.Fatal(err)
	}
	st, err := flowery.Apply(fixed, flowery.Options{AntiCmp: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.CmpsIsolated == 0 {
		t.Fatal("anti-cmp isolated nothing")
	}
	lowered2 := mustLower(t, fixed)
	if n := countOrigins(lowered2.Func("main"))[asm.OriginCmpFolded]; n != 0 {
		t.Fatalf("anti-cmp left %d folded sites", n)
	}
}

// TestCallArgAndFrameSites: calls produce OriginCallArg argument moves;
// every function has OriginFrame prologue/epilogue.
func TestCallArgAndFrameSites(t *testing.T) {
	m := ir.NewModule("call")
	callee := m.NewFunction("callee", ir.I64, ir.I64, ir.I64)
	cb := ir.NewBuilder(callee)
	cb.Ret(cb.Add(callee.Params[0], callee.Params[1]))
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Call(callee, ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2))
	b.Ret(v)
	prog := mustLower(t, m)

	mainCounts := countOrigins(prog.Func("main"))
	if mainCounts[asm.OriginCallArg] < 2 {
		t.Fatalf("expected ≥2 call-arg sites in main, got %d", mainCounts[asm.OriginCallArg])
	}
	for _, fn := range prog.Funcs {
		if countOrigins(fn)[asm.OriginFrame] < 4 {
			t.Errorf("%s: expected prologue+epilogue frame sites", fn.Name)
		}
	}
}

// TestFoldCongruence exercises the congruence analysis directly.
func TestFoldCongruence(t *testing.T) {
	m := ir.NewModule("fold")
	g := m.NewGlobalI64("g", []int64{5})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	// Two loads of the same address, two identical compares, eq-check:
	// the textbook foldable pattern.
	x1 := b.Load(ir.I64, g)
	x2 := b.Load(ir.I64, g)
	c1 := b.ICmp(ir.PredSLT, x1, ir.ConstInt(ir.I64, 10))
	c2 := b.ICmp(ir.PredSLT, x2, ir.ConstInt(ir.I64, 10))
	chk := b.ICmp(ir.PredEQ, c1, c2)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	b.CondBr(chk, thenB, elseB)
	b.SetBlock(thenB)
	b.Ret(ir.ConstInt(ir.I64, 1))
	b.SetBlock(elseB)
	b.Ret(ir.ConstInt(ir.I64, 0))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	fi := analyzeFolds(m.Func("main"))
	if !fi.foldedTrue[chk] {
		t.Fatal("foldable check not folded")
	}
	if fi.resolveAlias(c2) != c1 {
		t.Fatal("duplicate compare not aliased to representative")
	}
	if !fi.unprotected[c1] {
		t.Fatal("representative compare not marked unprotected")
	}
	// Loads feeding only the folded compares are tainted.
	if !fi.tainted[x2] {
		t.Fatal("backward slice not tainted")
	}
}

// TestFoldBlockedByInterveningStore: a store between the loads advances
// the memory epoch, so the loads are not congruent and nothing folds.
func TestFoldBlockedByInterveningStore(t *testing.T) {
	m := ir.NewModule("fold2")
	g := m.NewGlobalI64("g", []int64{5})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x1 := b.Load(ir.I64, g)
	b.Store(ir.ConstInt(ir.I64, 9), g) // epoch advance
	x2 := b.Load(ir.I64, g)
	c1 := b.ICmp(ir.PredSLT, x1, ir.ConstInt(ir.I64, 10))
	c2 := b.ICmp(ir.PredSLT, x2, ir.ConstInt(ir.I64, 10))
	chk := b.ICmp(ir.PredEQ, c1, c2)
	b.Ret(b.ZExt(ir.I64, chk))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	fi := analyzeFolds(m.Func("main"))
	if fi.foldedTrue[chk] {
		t.Fatal("check folded across a store")
	}
}

// TestFoldBlockedAcrossBlocks: congruence is block-local, which is
// exactly what the anti-cmp patch exploits.
func TestFoldBlockedAcrossBlocks(t *testing.T) {
	m := ir.NewModule("fold3")
	g := m.NewGlobalI64("g", []int64{5})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x1 := b.Load(ir.I64, g)
	c1 := b.ICmp(ir.PredSLT, x1, ir.ConstInt(ir.I64, 10))
	next := b.NewBlock("next")
	b.Br(next)
	b.SetBlock(next)
	x2 := b.Load(ir.I64, g)
	c2 := b.ICmp(ir.PredSLT, x2, ir.ConstInt(ir.I64, 10))
	chk := b.ICmp(ir.PredEQ, c1, c2)
	b.Ret(b.ZExt(ir.I64, chk))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	fi := analyzeFolds(m.Func("main"))
	if fi.foldedTrue[chk] {
		t.Fatal("check folded across a block boundary")
	}
}

// TestFoldIgnoresWideChecks: an eq-check over non-i1 operands (the value
// checks of ordinary duplicated arithmetic) must never fold — otherwise
// duplication would be nullified wholesale.
func TestFoldIgnoresWideChecks(t *testing.T) {
	m := ir.NewModule("fold4")
	g := m.NewGlobalI64("g", []int64{5})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x1 := b.Load(ir.I64, g)
	x2 := b.Load(ir.I64, g)
	a1 := b.Add(x1, ir.ConstInt(ir.I64, 3))
	a2 := b.Add(x2, ir.ConstInt(ir.I64, 3))
	chk := b.ICmp(ir.PredEQ, a1, a2) // i64 operands: FastISel territory
	b.Ret(b.ZExt(ir.I64, chk))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	fi := analyzeFolds(m.Func("main"))
	if fi.foldedTrue[chk] {
		t.Fatal("wide (i64) value check folded; duplication would be nullified")
	}
}

// TestFrameLayout sanity: distinct slots, 16-byte aligned frame.
func TestFrameLayout(t *testing.T) {
	m := buildStoreChain()
	prog := mustLower(t, m)
	f := prog.Func("main")
	if f.FrameSize%16 != 0 {
		t.Errorf("frame size %d not 16-byte aligned", f.FrameSize)
	}
	if f.FrameSize == 0 {
		t.Error("frame size zero despite values needing slots")
	}
}

// TestDoubleLowerRejected: Lower may only run once per module (it adds
// the constant pool).
func TestDoubleLowerRejected(t *testing.T) {
	m := buildStoreChain()
	if _, err := Lower(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(m); err == nil {
		t.Fatal("second Lower on the same module not rejected")
	}
}
