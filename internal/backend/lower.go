// Package backend lowers IR to the x86-64-like assembly of package asm.
// The lowering mirrors clang -O0 / FastISel behaviour: every value is
// homed in an rbp-relative stack slot at definition, a block-local
// register cache forwards recently computed values, compares fuse with an
// immediately following conditional branch, and duplicated comparison
// checks fold away within a block (see fold.go). Those four behaviours
// are, respectively, what makes store, branch, and comparison penetration
// emerge at this layer, exactly as the paper describes.
package backend

import (
	"fmt"

	"flowery/internal/asm"
	"flowery/internal/ir"
)

// FconstPoolName is the module global that holds f64 constants the
// backend materializes (the moral equivalent of .rodata constant pools).
const FconstPoolName = "__fconst"

// Config tunes the lowering. The zero value means defaults.
type Config struct {
	// GPRScratch is the number of general-purpose scratch registers the
	// block-local cache may use (clamped to [MinGPRScratch, 9], default
	// 9 — the caller-saved x86-64 set). Smaller values model
	// register-poor targets: values fall out of the cache sooner, so
	// more operand reloads — and more store-penetration sites — appear,
	// the sensitivity the paper's §8 predicts for other ISAs.
	GPRScratch int
}

// MinGPRScratch is the smallest usable scratch set: division and shifts
// pin RAX/RDX/RCX, and some lowerings exclude up to three registers when
// allocating, so five is the floor.
const MinGPRScratch = 5

func (c Config) scratch() int {
	n := c.GPRScratch
	if n == 0 {
		n = len(gprPool)
	}
	if n < MinGPRScratch {
		n = MinGPRScratch
	}
	if n > len(gprPool) {
		n = len(gprPool)
	}
	return n
}

// Lower compiles the module to assembly with default configuration. It
// may append a constant-pool global to the module, so call Lower before
// creating execution engines for m (both engines lay out globals
// identically afterwards).
func Lower(m *ir.Module) (*asm.Program, error) {
	return LowerCfg(m, Config{})
}

// LowerCfg compiles the module with an explicit configuration.
func LowerCfg(m *ir.Module, cfg Config) (*asm.Program, error) {
	if m.Global(FconstPoolName) != nil {
		return nil, fmt.Errorf("backend: module already lowered (constant pool exists)")
	}
	prog := asm.NewProgram()
	pool := &fconstPool{index: make(map[uint64]int64)}
	for _, f := range m.Funcs {
		if f.External {
			prog.Externals[f.Name] = true
			continue
		}
		fl := &funcLowerer{
			mod:     m,
			f:       f,
			af:      asm.NewFunc(f.Name),
			cache:   newRegCache(),
			fold:    analyzeFolds(f),
			pool:    pool,
			scratch: cfg.scratch(),
		}
		if err := fl.lower(); err != nil {
			return nil, fmt.Errorf("backend: @%s: %w", f.Name, err)
		}
		prog.AddFunc(fl.af)
	}
	// Materialize the constant pool, even if empty, so double lowering is
	// detected and layouts are stable.
	m.NewGlobalData(FconstPoolName, pool.bytes)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// fconstPool interns f64 constants into one data blob.
type fconstPool struct {
	index map[uint64]int64
	bytes []byte
}

func (p *fconstPool) offsetOf(bits uint64) int64 {
	if off, ok := p.index[bits]; ok {
		return off
	}
	off := int64(len(p.bytes))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
	p.bytes = append(p.bytes, b[:]...)
	p.index[bits] = off
	return off
}

type funcLowerer struct {
	mod   *ir.Module
	f     *ir.Function
	af    *asm.Func
	cache *regCache
	fold  *foldInfo
	pool  *fconstPool

	slotOf   map[ir.Value]int64 // rbp-relative (negative) slot offsets
	allocaOf map[*ir.Instr]int64
	frame    int64
	useCount map[*ir.Instr]int
	fused    map[*ir.Instr]bool // compares fused into their condbr
	scratch  int                // usable GPR scratch count (see Config)

	curChecker bool
	curOrigin  asm.Origin // default origin for the instruction being lowered
}

// gprScratch returns the configured slice of the scratch pool.
func (fl *funcLowerer) gprScratch() []asm.Reg {
	if fl.scratch <= 0 || fl.scratch > len(gprPool) {
		return gprPool
	}
	return gprPool[:fl.scratch]
}

func (fl *funcLowerer) lower() error {
	f := fl.f
	f.Renumber()
	fl.assignSlots()
	fl.computeFusion()

	fl.emitPrologue()
	for _, b := range f.Blocks {
		fl.cache.dropAll()
		fl.af.EmitLabel(b.Name)
		for _, in := range b.Instrs {
			if fl.fused[in] || fl.fold.alias[in] != nil || fl.fold.foldedTrue[in] {
				continue
			}
			fl.curChecker = in.Prot.IsChecker
			fl.curOrigin = asm.OriginNone
			if fl.fold.tainted[in] {
				fl.curOrigin = asm.OriginCmpFolded
			}
			if err := fl.lowerInstr(in); err != nil {
				return err
			}
		}
	}
	fl.af.FrameSize = fl.frame
	return nil
}

// assignSlots lays out the frame: parameters first, then allocas, then a
// slot for every value-producing instruction (the -O0 "everything has a
// home" discipline).
func (fl *funcLowerer) assignSlots() {
	fl.slotOf = make(map[ir.Value]int64)
	fl.allocaOf = make(map[*ir.Instr]int64)
	off := int64(0)
	take := func(sz int64) int64 {
		off += (sz + 7) &^ 7
		return -off
	}
	for _, p := range fl.f.Params {
		fl.slotOf[p] = take(8)
	}
	for _, b := range fl.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				fl.allocaOf[in] = take(in.Aux)
			}
			if in.HasResult() {
				fl.slotOf[in] = take(8)
			}
		}
	}
	fl.frame = (off + 15) &^ 15
}

// computeFusion finds compare+condbr pairs that lower to cmp/jcc without
// materializing the i1 (FastISel does this whenever the compare directly
// precedes the branch in the same block and has no other use — which is
// precisely the property a duplication checker inserted between them
// destroys, creating branch penetration).
func (fl *funcLowerer) computeFusion() {
	fl.useCount = make(map[*ir.Instr]int)
	for _, b := range fl.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if d, ok := a.(*ir.Instr); ok {
					fl.useCount[d]++
				}
			}
		}
	}
	fl.fused = make(map[*ir.Instr]bool)
	for _, b := range fl.f.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			cmp, br := b.Instrs[i], b.Instrs[i+1]
			if br.Op != ir.OpCondBr || br.Args[0] != cmp {
				continue
			}
			if fl.useCount[cmp] != 1 {
				continue
			}
			switch cmp.Op {
			case ir.OpICmp:
				if fl.fold.unprotected[cmp] {
					continue // must materialize: duplicate was folded away
				}
				fl.fused[cmp] = true
			case ir.OpFCmp:
				// oeq/one need a parity check and cannot fuse to one jcc.
				switch cmp.Pred {
				case ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE:
					fl.fused[cmp] = true
				}
			}
		}
	}
}

// emit appends an instruction, applying the checker flag and default
// origin of the IR instruction currently being lowered.
func (fl *funcLowerer) emit(in asm.Instr) {
	in.Checker = in.Checker || fl.curChecker
	if in.Origin == asm.OriginNone {
		in.Origin = fl.curOrigin
	}
	fl.af.Emit(in)
}

func (fl *funcLowerer) emitPrologue() {
	fl.emit(asm.Instr{Op: asm.OpPush, Src: asm.RegOp(asm.RBP), Origin: asm.OriginFrame})
	fl.emit(asm.Instr{Op: asm.OpMov, Size: 8, Dst: asm.RegOp(asm.RBP), Src: asm.RegOp(asm.RSP), Origin: asm.OriginFrame})
	if fl.frame > 0 {
		fl.emit(asm.Instr{Op: asm.OpSub, Size: 8, Dst: asm.RegOp(asm.RSP), Src: asm.ImmOp(fl.frame), Origin: asm.OriginFrame})
	}
	// Spill parameters to their slots (clang -O0 does exactly this;
	// memory-destination moves are not injection sites).
	intIdx, fpIdx := 0, 0
	for _, p := range fl.f.Params {
		slot := asm.MemOp(asm.RBP, fl.slotOf[p])
		if p.Ty == ir.F64 {
			fl.emit(asm.Instr{Op: asm.OpMovSD, Size: 8, Dst: slot, Src: asm.RegOp(asm.FloatArgRegs[fpIdx])})
			fpIdx++
			continue
		}
		fl.emit(asm.Instr{Op: asm.OpMov, Size: storeSize(p.Ty), Dst: slot, Src: asm.RegOp(asm.IntArgRegs[intIdx])})
		intIdx++
	}
}

func (fl *funcLowerer) emitEpilogue() {
	if fl.frame > 0 {
		fl.emit(asm.Instr{Op: asm.OpAdd, Size: 8, Dst: asm.RegOp(asm.RSP), Src: asm.ImmOp(fl.frame), Origin: asm.OriginFrame})
	}
	fl.emit(asm.Instr{Op: asm.OpPop, Dst: asm.RegOp(asm.RBP), Origin: asm.OriginFrame})
	fl.emit(asm.Instr{Op: asm.OpRet, Origin: asm.OriginFrame})
}

// storeSize returns the memory width of a type for mov purposes.
func storeSize(ty ir.Type) uint8 {
	switch ty {
	case ir.I1, ir.I8:
		return 1
	case ir.I32:
		return 4
	default:
		return 8
	}
}

// opSize returns the ALU operation width for an integer type.
func opSize(ty ir.Type) uint8 {
	switch ty {
	case ir.I1, ir.I8:
		return 1
	case ir.I32:
		return 4
	default:
		return 8
	}
}

// resolve follows comparison-CSE aliases.
func (fl *funcLowerer) resolve(v ir.Value) ir.Value {
	if in, ok := v.(*ir.Instr); ok {
		return fl.fold.resolveAlias(in)
	}
	return v
}

// slotMem returns the home-slot operand of a value.
func (fl *funcLowerer) slotMem(v ir.Value) asm.Operand {
	off, ok := fl.slotOf[v]
	if !ok {
		panic(fmt.Sprintf("backend: value %s has no slot", v.OperandString()))
	}
	return asm.MemOp(asm.RBP, off)
}

// materializeInto emits code placing v into the specific register rd,
// preserving the in-register representation invariants (i64/ptr: full
// width; i32: zero-extended; i8: sign-extended; i1: 0/1; f64: xmm).
func (fl *funcLowerer) materializeInto(rd asm.Reg, v ir.Value, origin asm.Origin) {
	v = fl.resolve(v)
	if r, ok := fl.cache.lookup(v); ok {
		if r != rd {
			op := asm.OpMov
			if rd.IsXMM() {
				op = asm.OpMovSD
			}
			fl.emit(asm.Instr{Op: op, Size: 8, Dst: asm.RegOp(rd), Src: asm.RegOp(r), Origin: origin})
		}
		return
	}
	switch x := v.(type) {
	case *ir.Const:
		if x.Ty == ir.F64 {
			off := fl.pool.offsetOf(x.Bits)
			fl.emit(asm.Instr{Op: asm.OpMovSD, Size: 8, Dst: asm.RegOp(rd), Src: asm.SymMemOp(FconstPoolName, off), Origin: origin})
			return
		}
		size := uint8(8)
		if x.Ty == ir.I32 {
			size = 4 // 32-bit immediate move zero-extends
		}
		fl.emit(asm.Instr{Op: asm.OpMov, Size: size, Dst: asm.RegOp(rd), Src: asm.ImmOp(x.Int()), Origin: origin})
	case *ir.Global:
		fl.emit(asm.Instr{Op: asm.OpMov, Size: 8, Dst: asm.RegOp(rd), Src: asm.SymImmOp(x.Name, 0), Origin: origin})
	case *ir.Param:
		fl.loadSlotInto(rd, x.Ty, fl.slotMem(x), origin)
	case *ir.Instr:
		if x.Op == ir.OpAlloca {
			fl.emit(asm.Instr{Op: asm.OpLea, Size: 8, Dst: asm.RegOp(rd), Src: asm.MemOp(asm.RBP, fl.allocaOf[x]), Origin: origin})
			return
		}
		fl.loadSlotInto(rd, x.Ty, fl.slotMem(x), origin)
	default:
		panic(fmt.Sprintf("backend: cannot materialize %T", v))
	}
}

// loadSlotInto emits the representation-correct load of a typed value
// from memory into rd.
func (fl *funcLowerer) loadSlotInto(rd asm.Reg, ty ir.Type, mem asm.Operand, origin asm.Origin) {
	switch ty {
	case ir.F64:
		fl.emit(asm.Instr{Op: asm.OpMovSD, Size: 8, Dst: asm.RegOp(rd), Src: mem, Origin: origin})
	case ir.I64, ir.Ptr:
		fl.emit(asm.Instr{Op: asm.OpMov, Size: 8, Dst: asm.RegOp(rd), Src: mem, Origin: origin})
	case ir.I32:
		fl.emit(asm.Instr{Op: asm.OpMov, Size: 4, Dst: asm.RegOp(rd), Src: mem, Origin: origin})
	case ir.I8:
		fl.emit(asm.Instr{Op: asm.OpMovSX, Size: 1, Dst: asm.RegOp(rd), Src: mem, Origin: origin})
	case ir.I1:
		fl.emit(asm.Instr{Op: asm.OpMovZX, Size: 1, Dst: asm.RegOp(rd), Src: mem, Origin: origin})
	default:
		panic("backend: load of void")
	}
}

// getGPR returns a general-purpose register holding v.
func (fl *funcLowerer) getGPR(v ir.Value, origin asm.Origin) asm.Reg {
	v = fl.resolve(v)
	if r, ok := fl.cache.lookup(v); ok {
		return r
	}
	rd := fl.cache.alloc(fl.gprScratch())
	fl.materializeInto(rd, v, origin)
	fl.cache.bind(v, rd)
	return rd
}

// getXMM returns an SSE register holding the f64 value v.
func (fl *funcLowerer) getXMM(v ir.Value, origin asm.Origin) asm.Reg {
	v = fl.resolve(v)
	if r, ok := fl.cache.lookup(v); ok {
		return r
	}
	rd := fl.cache.alloc(xmmPool)
	fl.materializeInto(rd, v, origin)
	fl.cache.bind(v, rd)
	return rd
}

// freshGPR allocates a scratch register not equal to any of the given
// registers and not holding a live cached value we are about to read.
func (fl *funcLowerer) freshGPR(avoid ...asm.Reg) asm.Reg {
	return fl.allocAvoid(fl.gprScratch(), avoid)
}

func (fl *funcLowerer) freshXMM(avoid ...asm.Reg) asm.Reg {
	return fl.allocAvoid(xmmPool, avoid)
}

func (fl *funcLowerer) allocAvoid(pool []asm.Reg, avoid []asm.Reg) asm.Reg {
	sub := make([]asm.Reg, 0, len(pool))
	for _, r := range pool {
		skip := false
		for _, a := range avoid {
			if r == a {
				skip = true
				break
			}
		}
		if !skip {
			sub = append(sub, r)
		}
	}
	return fl.cache.alloc(sub)
}

// operandRM returns a source operand for v: a register if cached, an
// immediate if it is a small constant, or its home slot in memory.
// Reading from the slot costs no extra instruction and no injection site,
// matching x86 reg/mem source operands.
func (fl *funcLowerer) operandRM(v ir.Value, origin asm.Origin) asm.Operand {
	v = fl.resolve(v)
	if r, ok := fl.cache.lookup(v); ok {
		return asm.RegOp(r)
	}
	switch x := v.(type) {
	case *ir.Const:
		if x.Ty != ir.F64 && fitsInt32(x.Int()) {
			return asm.ImmOp(x.Int())
		}
		if x.Ty == ir.F64 {
			return asm.SymMemOp(FconstPoolName, fl.pool.offsetOf(x.Bits))
		}
		return asm.RegOp(fl.getGPR(v, origin))
	case *ir.Param:
		return fl.slotMem(x)
	case *ir.Instr:
		if x.Op == ir.OpAlloca {
			return asm.RegOp(fl.getGPR(v, origin))
		}
		return fl.slotMem(x)
	case *ir.Global:
		return asm.RegOp(fl.getGPR(v, origin))
	default:
		panic(fmt.Sprintf("backend: bad operand %T", v))
	}
}

func fitsInt32(v int64) bool { return v >= -1<<31 && v < 1<<31 }

// storeBack homes the freshly computed value of in (held in rd) to its
// slot. Memory-destination moves are not injection sites.
func (fl *funcLowerer) storeBack(in *ir.Instr, rd asm.Reg) {
	slot := fl.slotMem(in)
	if in.Ty == ir.F64 {
		fl.emit(asm.Instr{Op: asm.OpMovSD, Size: 8, Dst: slot, Src: asm.RegOp(rd)})
		return
	}
	fl.emit(asm.Instr{Op: asm.OpMov, Size: storeSize(in.Ty), Dst: slot, Src: asm.RegOp(rd)})
}

// addrOperand returns the memory operand for a load/store address. An
// alloca folds into rbp-relative addressing (as clang does); anything
// else is materialized into a register.
func (fl *funcLowerer) addrOperand(p ir.Value, origin asm.Origin) asm.Operand {
	p = fl.resolve(p)
	if a, ok := p.(*ir.Instr); ok && a.Op == ir.OpAlloca {
		return asm.MemOp(asm.RBP, fl.allocaOf[a])
	}
	if g, ok := p.(*ir.Global); ok {
		return asm.SymMemOp(g.Name, 0)
	}
	r := fl.getGPR(p, origin)
	return asm.MemOp(r, 0)
}
