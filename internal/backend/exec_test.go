package backend

import (
	"fmt"
	"math"
	"testing"

	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// execMain lowers m and runs it on the machine, returning the result.
func execMain(t *testing.T, m *ir.Module) sim.Result {
	t.Helper()
	prog := mustLower(t, m)
	mc, err := machine.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Run(sim.Fault{}, sim.Options{})
	if res.Status == sim.StatusTrap {
		t.Fatalf("trapped: %v at %s", res.Trap, mc.PCInfo(mc.LastPC()))
	}
	return res
}

// TestLoweredArithmetic drives every integer binop and width through the
// machine via globals (so nothing constant-folds away).
func TestLoweredArithmetic(t *testing.T) {
	type tc struct {
		op   ir.Op
		ty   ir.Type
		x, y int64
		want int64
	}
	cases := []tc{
		{ir.OpAdd, ir.I64, 1 << 40, 3, 1<<40 + 3},
		{ir.OpAdd, ir.I32, math.MaxInt32, 1, math.MinInt32},
		{ir.OpAdd, ir.I8, 127, 1, -128},
		{ir.OpSub, ir.I32, -5, 7, -12},
		{ir.OpMul, ir.I64, -7, 6, -42},
		{ir.OpMul, ir.I8, 16, 16, 0},
		{ir.OpSDiv, ir.I64, -100, 7, -14},
		{ir.OpSDiv, ir.I32, 100, -7, -14},
		{ir.OpSDiv, ir.I8, -128, -1, 128 - 256}, // promoted; wraps to -128
		{ir.OpSRem, ir.I64, -100, 7, -2},
		{ir.OpSRem, ir.I8, 100, 9, 1},
		{ir.OpAnd, ir.I8, -1, 0x0f, 0x0f},
		{ir.OpOr, ir.I32, 0x0f0f, 0x00ff, 0x0fff},
		{ir.OpXor, ir.I64, -1, 0xff, ^int64(0xff)},
		{ir.OpShl, ir.I64, 1, 62, 1 << 62},
		{ir.OpShl, ir.I32, 3, 30, -1 << 30},
		{ir.OpShl, ir.I8, 1, 7, -128},
		{ir.OpAShr, ir.I64, math.MinInt64, 63, -1},
		{ir.OpAShr, ir.I32, -64, 3, -8},
		{ir.OpAShr, ir.I8, -64, 3, -8},
		{ir.OpLShr, ir.I64, -1, 1, math.MaxInt64},
		{ir.OpLShr, ir.I32, -1, 28, 15},
		{ir.OpLShr, ir.I8, -128, 7, 1},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v_%v_%d_%d", c.op, c.ty, c.x, c.y), func(t *testing.T) {
			m := ir.NewModule("arith")
			var gx, gy *ir.Global
			switch c.ty {
			case ir.I8:
				gx = m.NewGlobalData("x", []byte{byte(c.x)})
				gy = m.NewGlobalData("y", []byte{byte(c.y)})
			case ir.I32:
				gx = m.NewGlobalI32("x", []int32{int32(c.x)})
				gy = m.NewGlobalI32("y", []int32{int32(c.y)})
			default:
				gx = m.NewGlobalI64("x", []int64{c.x})
				gy = m.NewGlobalI64("y", []int64{c.y})
			}
			f := m.NewFunction("main", ir.I64)
			b := ir.NewBuilder(f)
			x := b.Load(c.ty, gx)
			y := b.Load(c.ty, gy)
			v := b.Bin(c.op, x, y)
			var w ir.Value = v
			if c.ty != ir.I64 {
				w = b.SExt(ir.I64, v)
			}
			b.Ret(w)
			res := execMain(t, m)
			want := c.want
			if c.ty == ir.I8 {
				want = int64(int8(want))
			}
			if res.RetVal != want {
				t.Fatalf("got %d, want %d", res.RetVal, want)
			}
		})
	}
}

// TestLoweredCasts drives every cast through memory-sourced values.
func TestLoweredCasts(t *testing.T) {
	m := ir.NewModule("casts")
	g8 := m.NewGlobalData("b", []byte{0x80})           // -128 as i8
	g32 := m.NewGlobalI32("w", []int32{-2})            // i32
	g64 := m.NewGlobalI64("q", []int64{1 << 40})       // i64
	gf := m.NewGlobalF64("f", []float64{-3.75, 1e300}) // f64
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	v8 := b.Load(ir.I8, g8)
	v32 := b.Load(ir.I32, g32)
	v64 := b.Load(ir.I64, g64)
	vf := b.Load(ir.F64, gf)

	b.PrintI64(b.SExt(ir.I64, v8))                                                               // -128
	b.PrintI64(b.ZExt(ir.I64, v8))                                                               // 128
	b.PrintI64(b.SExt(ir.I64, b.SExt(ir.I32, v8)))                                               // -128 via i32
	b.PrintI64(b.ZExt(ir.I64, b.ZExt(ir.I32, v8)))                                               // 128 via i32
	b.PrintI64(b.SExt(ir.I64, v32))                                                              // -2
	b.PrintI64(b.ZExt(ir.I64, v32))                                                              // 2^32-2
	b.PrintI64(b.SExt(ir.I64, b.Trunc(ir.I32, v64)))                                             // 0
	b.PrintI64(b.SExt(ir.I64, b.Trunc(ir.I8, b.Load(ir.I32, g32))))                              // -2
	b.PrintI64(b.ZExt(ir.I64, b.Trunc(ir.I1, b.Load(ir.I64, g64))))                              // 0 (bit 0 of 2^40)
	b.PrintF64(b.SIToFP(v8))                                                                     // -128
	b.PrintF64(b.SIToFP(v32))                                                                    // -2
	b.PrintF64(b.SIToFP(b.Trunc(ir.I1, ir.ConstInt(ir.I64, 3))))                                 // 1
	b.PrintI64(b.FPToSI(ir.I64, vf))                                                             // -3
	b.PrintI64(b.SExt(ir.I64, b.FPToSI(ir.I32, b.LoadElem(ir.F64, gf, ir.ConstInt(ir.I64, 1))))) // indefinite
	b.PrintI64(b.SExt(ir.I64, b.FPToSI(ir.I8, vf)))                                              // -3
	b.PrintI64(b.ZExt(ir.I64, b.FPToSI(ir.I1, vf)))                                              // -3 & 1 = 1
	// sext i1.
	one := b.ICmp(ir.PredEQ, v32, ir.ConstInt(ir.I32, -2))
	b.PrintI64(b.SExt(ir.I64, one)) // -1
	b.Ret(ir.ConstInt(ir.I64, 0))

	res := execMain(t, m)
	want := "-128\n128\n-128\n128\n-2\n4294967294\n0\n-2\n0\n-128\n-2\n1\n-3\n-2147483648\n-3\n1\n-1\n"
	if string(res.Output) != want {
		t.Fatalf("output:\n%q\nwant:\n%q", res.Output, want)
	}
}

// TestLoweredFCmpAllPredicates covers every float predicate incl. the
// NaN-sensitive oeq/one set/parity paths.
func TestLoweredFCmpAllPredicates(t *testing.T) {
	m := ir.NewModule("fcmp")
	gf := m.NewGlobalF64("f", []float64{1.5, 2.5, math.NaN()})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	a := b.LoadElem(ir.F64, gf, ir.ConstInt(ir.I64, 0))
	c := b.LoadElem(ir.F64, gf, ir.ConstInt(ir.I64, 1))
	n := b.LoadElem(ir.F64, gf, ir.ConstInt(ir.I64, 2))
	for _, p := range []ir.Pred{ir.PredOEQ, ir.PredONE, ir.PredOLT, ir.PredOLE, ir.PredOGT, ir.PredOGE} {
		b.PrintI64(b.ZExt(ir.I64, b.FCmp(p, a, c))) // 1.5 vs 2.5
		b.PrintI64(b.ZExt(ir.I64, b.FCmp(p, a, a))) // equal
		b.PrintI64(b.ZExt(ir.I64, b.FCmp(p, a, n))) // vs NaN: always 0
	}
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := execMain(t, m)
	want := "0\n1\n0\n" + // oeq
		"1\n0\n0\n" + // one
		"1\n0\n0\n" + // olt
		"1\n1\n0\n" + // ole
		"0\n0\n0\n" + // ogt
		"0\n1\n0\n" // oge
	if string(res.Output) != want {
		t.Fatalf("fcmp outputs:\n%q\nwant:\n%q", res.Output, want)
	}
}

// TestLoweredGEPVariants covers constant indices, scaled indices, and
// non-power-of-two element sizes.
func TestLoweredGEPVariants(t *testing.T) {
	m := ir.NewModule("gep")
	g := m.NewGlobalData("bytes", []byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	gi := m.NewGlobalI64("idx", []int64{2})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	idx := b.Load(ir.I64, gi)
	// elem size 1 (byte), variable index
	b.PrintI64(b.ZExt(ir.I64, b.Load(ir.I8, b.GEP(g, idx, 1)))) // 30
	// elem size 3 (non-power-of-two), variable index: offset 6
	b.PrintI64(b.ZExt(ir.I64, b.Load(ir.I8, b.GEP(g, idx, 3)))) // 70
	// constant index, elem 4: offset 8
	b.PrintI64(b.ZExt(ir.I64, b.Load(ir.I8, b.GEP(g, ir.ConstInt(ir.I64, 2), 4)))) // 90
	// zero constant index
	b.PrintI64(b.ZExt(ir.I64, b.Load(ir.I8, b.GEP(g, ir.ConstInt(ir.I64, 0), 8)))) // 10
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := execMain(t, m)
	if string(res.Output) != "30\n70\n90\n10\n" {
		t.Fatalf("gep outputs %q", res.Output)
	}
}

// TestLoweredShiftByRegister forces the CL path (variable shift counts).
func TestLoweredShiftByRegister(t *testing.T) {
	m := ir.NewModule("shift")
	g := m.NewGlobalI64("n", []int64{5, 3})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	x := b.LoadElem(ir.I64, g, ir.ConstInt(ir.I64, 0))
	n := b.LoadElem(ir.I64, g, ir.ConstInt(ir.I64, 1))
	b.PrintI64(b.Shl(x, n))                                 // 40
	b.PrintI64(b.AShr(b.Sub(ir.ConstInt(ir.I64, 0), x), n)) // -1
	b.PrintI64(b.LShr(x, n))                                // 0
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := execMain(t, m)
	if string(res.Output) != "40\n-1\n0\n" {
		t.Fatalf("shift outputs %q", res.Output)
	}
}

// TestLowerCfgScratchClamping checks configuration clamping and that a
// minimal-pressure lowering still runs correctly.
func TestLowerCfgScratchClamping(t *testing.T) {
	for _, req := range []int{-3, 0, 1, MinGPRScratch, 7, 99} {
		cfg := Config{GPRScratch: req}
		got := cfg.scratch()
		if got < MinGPRScratch || got > len(gprPool) {
			t.Fatalf("scratch(%d) = %d out of range", req, got)
		}
	}
	m := buildStoreChain()
	prog, err := LowerCfg(m, Config{GPRScratch: MinGPRScratch})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res := mc.Run(sim.Fault{}, sim.Options{}); res.Status != sim.StatusOK {
		t.Fatalf("minimal-pressure program failed: %v", res.Trap)
	}
}

// TestFloatParamsAndReturns exercises the xmm calling convention.
func TestFloatParamsAndReturns(t *testing.T) {
	m := ir.NewModule("fargs")
	h := m.NewFunction("mix", ir.F64, ir.F64, ir.I64, ir.F64)
	bh := ir.NewBuilder(h)
	s := bh.FAdd(h.Params[0], h.Params[2])
	bh.Ret(bh.FMul(s, bh.SIToFP(h.Params[1])))
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	v := b.Call(h, ir.ConstFloat(1.5), ir.ConstInt(ir.I64, 4), ir.ConstFloat(0.5))
	b.PrintF64(v) // (1.5+0.5)*4 = 8
	b.Ret(ir.ConstInt(ir.I64, 0))
	res := execMain(t, m)
	if string(res.Output) != "8\n" {
		t.Fatalf("output %q", res.Output)
	}
}
