// Package service is the execution layer of the floweryd daemon: a job
// manager that accepts api.JobSpec submissions into a bounded queue,
// executes them on a fixed worker pool through the same artifact
// pipeline the batch CLIs use, and exposes their lifecycle (queued →
// running → done/failed, or cancelled while queued) plus incremental
// results for streaming. The HTTP surface lives in server.go; the wire
// vocabulary in internal/api; persistence in internal/store.
//
// Determinism contract: a job's campaign statistics are the same the
// batch `flowery inject` would print for the same spec, because both
// paths run the identical pipeline derivation chain — and a repeated
// spec is served from the shared artifact store without executing a
// single injection (Config.Artifacts).
package service

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"flowery/internal/api"
	"flowery/internal/asm"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/experiment"
	"flowery/internal/ir"
	"flowery/internal/pipeline"
	"flowery/internal/reclog"
	"flowery/internal/shard"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// Config tunes the manager.
type Config struct {
	// Artifacts is the shared persistent store behind every job's
	// pipeline (nil = no persistence; each job still memoizes within
	// itself).
	Artifacts store.Store
	// Workers is the number of jobs executing concurrently (0 = 1).
	// Each job additionally parallelizes internally per its spec.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (0 = 64). Submissions beyond it are rejected, not blocked.
	QueueDepth int
	// Telemetry is the daemon-level registry: job lifecycle counters
	// report here, and the /metrics endpoint renders it. Per-job
	// pipeline telemetry goes to each job's own child registry instead
	// (served at /jobs/{id}/metrics). Nil keeps a private registry.
	Telemetry *telemetry.Registry
	// Hub is the daemon's worker-registration listener (floweryd
	// -shard-listen): jobs submitted with RemoteWorkers fan their shards
	// out to the socket workers parked here. Nil rejects such jobs at
	// submission.
	Hub *shard.Hub
}

// Manager owns the job table, the queue, and the worker pool.
type Manager struct {
	cfg   Config
	reg   *telemetry.Registry
	queue chan *job

	submitted *telemetry.Counter
	started   *telemetry.Counter
	finished  *telemetry.Counter
	failed    *telemetry.Counter
	cancelled *telemetry.Counter

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order
	nextID int
	closed bool

	wg sync.WaitGroup
}

// job is the internal mutable state of one submission. Fields past mu
// are guarded by it; cond broadcasts every append/state change so any
// number of streaming readers can follow along.
type job struct {
	id   string
	spec api.JobSpec

	mu   sync.Mutex
	cond *sync.Cond

	state       string
	err         string
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	records []api.Record
	stats   *campaign.Stats
	study   []byte // experiment JSON document (study jobs)
	rec     []byte // finalized binary record log
	reg     *telemetry.Registry
}

// New starts a manager and its worker pool.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	m := &Manager{
		cfg:       cfg,
		reg:       reg,
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      make(map[string]*job),
		submitted: reg.Counter("service_jobs_submitted_total"),
		started:   reg.Counter("service_jobs_started_total"),
		finished:  reg.Counter("service_jobs_done_total"),
		failed:    reg.Counter("service_jobs_failed_total"),
		cancelled: reg.Counter("service_jobs_cancelled_total"),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Close stops accepting submissions and waits for running jobs to
// finish. Jobs still queued are marked cancelled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

// Registry returns the daemon-level registry /metrics renders.
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// Submit validates and enqueues a spec.
func (m *Manager) Submit(spec api.JobSpec) (api.JobInfo, error) {
	if err := spec.Normalize(); err != nil {
		return api.JobInfo{}, err
	}
	if spec.RemoteWorkers && m.cfg.Hub == nil {
		return api.JobInfo{}, fmt.Errorf("daemon has no worker hub (start floweryd with -shard-listen)")
	}
	// Resolve the program now so a typo'd benchmark name fails at
	// submission, not minutes later inside a worker.
	if spec.Kind == api.KindCampaign && spec.Benchmark != "" {
		if _, ok := bench.ByName(spec.Benchmark); !ok {
			return api.JobInfo{}, fmt.Errorf("unknown benchmark %q", spec.Benchmark)
		}
	}
	if spec.Kind == api.KindCampaign && spec.IR != "" {
		mod, err := ir.Parse(spec.IR)
		if err != nil {
			return api.JobInfo{}, fmt.Errorf("inline IR: %w", err)
		}
		if err := mod.Verify(); err != nil {
			return api.JobInfo{}, fmt.Errorf("inline IR: %w", err)
		}
	}
	if spec.Kind == api.KindStudy {
		for _, name := range spec.Benchmarks {
			if _, ok := bench.ByName(name); !ok {
				return api.JobInfo{}, fmt.Errorf("unknown benchmark %q", name)
			}
		}
	}

	j := &job{
		spec:        spec,
		state:       api.StateQueued,
		submittedAt: time.Now(),
		reg:         telemetry.New(),
	}
	j.cond = sync.NewCond(&j.mu)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return api.JobInfo{}, fmt.Errorf("service shutting down")
	}
	m.nextID++
	j.id = fmt.Sprintf("j%04d", m.nextID)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return api.JobInfo{}, fmt.Errorf("queue full (%d jobs pending)", m.cfg.QueueDepth)
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()

	m.submitted.Inc()
	return j.info(), nil
}

// lookup returns the job or nil.
func (m *Manager) lookup(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Job returns one job's public view.
func (m *Manager) Job(id string) (api.JobInfo, bool) {
	j := m.lookup(id)
	if j == nil {
		return api.JobInfo{}, false
	}
	return j.info(), true
}

// Jobs lists every job, newest first.
func (m *Manager) Jobs() []api.JobInfo {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]api.JobInfo, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j := m.lookup(ids[i]); j != nil {
			out = append(out, j.info())
		}
	}
	return out
}

// States counts jobs per state (the /healthz document).
func (m *Manager) States() map[string]int {
	counts := make(map[string]int)
	for _, ji := range m.Jobs() {
		counts[ji.State]++
	}
	// Every state appears, so the health document's shape is stable.
	for _, s := range []string{api.StateQueued, api.StateRunning, api.StateDone, api.StateFailed, api.StateCancelled} {
		counts[s] += 0
	}
	return counts
}

// Cancel cancels a queued job. Running jobs are not interrupted (the
// campaign engine has no safe preemption point): cancelling one returns
// ErrNotCancellable.
var ErrNotCancellable = fmt.Errorf("job is not queued (running jobs cannot be cancelled)")

func (m *Manager) Cancel(id string) (api.JobInfo, error) {
	j := m.lookup(id)
	if j == nil {
		return api.JobInfo{}, fmt.Errorf("no such job %q", id)
	}
	j.mu.Lock()
	if j.state != api.StateQueued {
		j.mu.Unlock()
		return j.info(), ErrNotCancellable
	}
	j.state = api.StateCancelled
	j.finishedAt = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()
	m.cancelled.Inc()
	return j.info(), nil
}

// info snapshots the public view.
func (j *job) info() api.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	ji := api.JobInfo{
		ID:          j.id,
		Kind:        j.spec.Kind,
		State:       j.state,
		Spec:        j.spec,
		Error:       j.err,
		SubmittedAt: j.submittedAt,
		Records:     len(j.records),
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		ji.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		ji.FinishedAt = &t
	}
	if j.stats != nil {
		st := *j.stats
		ji.Stats = &st
	}
	return ji
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		j.mu.Lock()
		if j.state != api.StateQueued { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		j.state = api.StateRunning
		j.startedAt = time.Now()
		j.cond.Broadcast()
		j.mu.Unlock()
		m.started.Inc()

		err := m.run(j)

		j.mu.Lock()
		j.finishedAt = time.Now()
		if err != nil {
			j.state = api.StateFailed
			j.err = err.Error()
		} else {
			j.state = api.StateDone
		}
		j.cond.Broadcast()
		j.mu.Unlock()
		if err != nil {
			m.failed.Inc()
		} else {
			m.finished.Inc()
		}
	}
}

// run executes one job. Any panic in the derivation chain becomes a
// failed job, not a dead worker.
func (m *Manager) run(j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	if j.spec.Kind == api.KindStudy {
		return m.runStudy(j)
	}
	return m.runCampaign(j)
}

// source resolves the job's program to a pipeline source. Inline IR is
// keyed by content hash — the same convention `flowery inject` uses for
// file programs — so identical texts share artifacts across jobs and
// across the persistent store.
func source(spec api.JobSpec) (pipeline.Source, error) {
	if spec.Benchmark != "" {
		bm, ok := bench.ByName(spec.Benchmark)
		if !ok {
			return pipeline.Source{}, fmt.Errorf("unknown benchmark %q", spec.Benchmark)
		}
		return pipeline.BenchSource(bm), nil
	}
	text := spec.IR
	if _, err := ir.Parse(text); err != nil {
		return pipeline.Source{}, fmt.Errorf("inline IR: %w", err)
	}
	sum := sha256.Sum256([]byte(text))
	return pipeline.Source{
		Key: fmt.Sprintf("ir:#%x", sum[:8]),
		Build: func() *ir.Module {
			mod, err := ir.Parse(text)
			if err != nil {
				panic(fmt.Sprintf("service: reparse inline IR: %v", err))
			}
			return mod
		},
	}, nil
}

// pipelineConfig maps a normalized spec to the pipeline configuration —
// the same mapping cmd/flowery's inject performs, plus the shared
// artifact store and the job's child registry.
func (m *Manager) pipelineConfig(j *job) pipeline.Config {
	spec := j.spec
	cfg := pipeline.Config{
		Runs:            spec.Runs,
		ProfileSamples:  spec.Samples,
		Seed:            spec.Seed,
		MaxSteps:        spec.MaxSteps,
		CampaignWorkers: spec.Workers,
		Shards:          spec.Shards,
		Artifacts:       m.cfg.Artifacts,
		Telemetry:       j.reg,
	}
	if spec.ShardWorkers > 1 {
		cfg.ShardProcs = spec.ShardWorkers
		// Default worker argv: re-execute this binary; floweryd calls
		// shard.MaybeServeWorker at startup exactly like flowery does.
		if self, err := os.Executable(); err == nil {
			cfg.ShardCommand = []string{self, "shard-worker"}
		}
	}
	if spec.RemoteWorkers {
		cfg.RemoteHub = m.cfg.Hub
	}
	return cfg
}

func variant(spec api.JobSpec) pipeline.Variant {
	if !spec.Protect {
		return pipeline.RawVariant()
	}
	return pipeline.ProtectionVariant(spec.Level, spec.Flowery)
}

func layer(spec api.JobSpec) pipeline.Layer {
	if spec.Layer == "ir" {
		return pipeline.LayerIR
	}
	return pipeline.LayerAsm
}

// runCampaign executes (or recalls) one campaign and publishes its
// records incrementally and its stats terminally.
func (m *Manager) runCampaign(j *job) error {
	src, err := source(j.spec)
	if err != nil {
		return err
	}
	pl := pipeline.New(m.pipelineConfig(j))
	opts := pipeline.CampaignOpts{Layer: layer(j.spec)}
	if j.spec.Prune {
		opts.Pruning = campaign.PruneClasses
		opts.PilotsPerClass = j.spec.Pilots
		opts.MaskStatic = j.spec.MaskStatic
	}

	var buf bytes.Buffer
	var logW *reclog.Writer
	var recErr error
	var shards *shardBlobs
	if j.spec.Records {
		if j.spec.RemoteWorkers {
			// Remote jobs spill each shard's reclog bytes into the
			// persistent store as they arrive (per-shard blobs) instead of
			// funneling every record through one in-memory writer; the
			// final log is composed from the blobs after the merge
			// (composeReclog), byte-identical to the single-writer path.
			shards = &shardBlobs{m: m, job: j.id}
			opts.ShardStream = shards.put
		} else {
			logW = reclog.NewWriter(&buf)
		}
		opts.Records = func(r campaign.Record) {
			if logW != nil && recErr == nil {
				recErr = logW.Write(reclog.Record{
					Run:     int64(r.Run),
					Outcome: uint8(r.Outcome),
					Origin:  uint8(r.Origin),
					Target:  r.Target,
					Bit:     r.Bit,
				})
			}
			j.appendRecord(api.Record{
				Run:     int64(r.Run),
				Outcome: r.Outcome.String(),
				Origin:  originName(r.Origin),
				Target:  r.Target,
				Bit:     r.Bit,
			})
		}
	}

	var st campaign.Stats
	if j.spec.Sections {
		// Sectioned campaigns compose per-section summaries; unchanged
		// sections are recalled from the shared artifact store, so a
		// re-submitted spec after a one-function edit re-injects only the
		// sections that changed.
		res, serr := pl.CampaignSectioned(src, variant(j.spec), opts)
		if serr != nil {
			return serr
		}
		st = res.Stats
	} else {
		st, err = pl.Campaign(src, variant(j.spec), opts)
		if err != nil {
			return err
		}
	}
	if logW != nil {
		if recErr != nil {
			return fmt.Errorf("record log: %w", recErr)
		}
		if err := logW.Close(); err != nil {
			return fmt.Errorf("record log: %w", err)
		}
	}
	var rec []byte
	if logW != nil {
		rec = buf.Bytes()
	}
	if shards != nil {
		rec, err = shards.compose()
		if err != nil {
			return fmt.Errorf("record log: %w", err)
		}
	}

	j.mu.Lock()
	j.stats = &st
	j.rec = rec
	j.cond.Broadcast()
	j.mu.Unlock()
	return nil
}

// shardBlobs tracks the per-shard reclog blobs a remote campaign spills
// into the persistent store as each shard completes (falling back to
// memory when the daemon runs storeless). compose reassembles the
// single record log after the merge: decoding each shard's stream in
// range order and re-encoding through one writer reproduces the batch
// path's bytes exactly, because reclog block boundaries are a function
// of record count alone.
type shardBlobs struct {
	m   *Manager
	job string

	mu    sync.Mutex
	blobs []shardBlob
}

type shardBlob struct {
	lo, hi int
	key    string
	data   []byte // storeless fallback
}

func (s *shardBlobs) put(rg campaign.ShardRange, stream []byte) {
	b := shardBlob{lo: rg.Lo, hi: rg.Hi}
	if s.m.cfg.Artifacts != nil {
		b.key = fmt.Sprintf("remoterec|%s|%d-%d", s.job, rg.Lo, rg.Hi)
		if err := s.m.cfg.Artifacts.Put(b.key, stream); err != nil {
			b.key, b.data = "", append([]byte(nil), stream...)
		}
	} else {
		b.data = append([]byte(nil), stream...)
	}
	s.mu.Lock()
	s.blobs = append(s.blobs, b)
	s.mu.Unlock()
}

func (s *shardBlobs) compose() ([]byte, error) {
	s.mu.Lock()
	blobs := append([]shardBlob(nil), s.blobs...)
	s.mu.Unlock()
	sort.Slice(blobs, func(i, k int) bool { return blobs[i].lo < blobs[k].lo })
	var out bytes.Buffer
	w := reclog.NewWriter(&out)
	next := 0
	for _, b := range blobs {
		if b.lo != next {
			return nil, fmt.Errorf("shard blob gap: have [%d,%d), want lo %d", b.lo, b.hi, next)
		}
		next = b.hi
		data := b.data
		if b.key != "" {
			stored, ok, err := s.m.cfg.Artifacts.Get(b.key)
			if err != nil || !ok {
				return nil, fmt.Errorf("shard blob %s not recallable: %v", b.key, err)
			}
			data = stored
		}
		recs, err := reclog.ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("shard blob [%d,%d): %w", b.lo, b.hi, err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// originName renders an origin like the campaign JSON codec: empty for
// OriginNone (omitted from the record line), the asm name otherwise.
func originName(o asm.Origin) string {
	if o == asm.OriginNone {
		return ""
	}
	return o.String()
}

// runStudy executes a full experiment study and stores its JSON
// document.
func (m *Manager) runStudy(j *job) error {
	spec := j.spec
	cfg := experiment.Config{
		Runs:           spec.Runs,
		ProfileSamples: spec.Samples,
		Seed:           spec.Seed,
		Workers:        spec.Workers,
		Shards:         spec.Shards,
		ShardWorkers:   spec.ShardWorkers,
		Telemetry:      j.reg,
		Artifacts:      m.cfg.Artifacts,
	}
	study := experiment.NewStudy(cfg)
	results, err := study.Results(spec.Benchmarks, nil)
	if err != nil {
		return err
	}
	study.Finish()
	doc, err := experiment.ToJSON(results, study.Config())
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.study = doc
	j.cond.Broadcast()
	j.mu.Unlock()
	return nil
}

// appendRecord publishes one record to streaming readers.
func (j *job) appendRecord(r api.Record) {
	j.mu.Lock()
	j.records = append(j.records, r)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// stream delivers the job's results: records in run order as they
// arrive (when the job captures records), then exactly one terminal
// line. emit is called without j.mu held; a false return stops the
// stream (client went away).
func (j *job) stream(emit func(api.ResultLine) bool) {
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.records) && !terminal(j.state) {
			j.cond.Wait()
		}
		batch := append([]api.Record(nil), j.records[next:]...)
		next += len(batch)
		state, errMsg := j.state, j.err
		stats, study := j.stats, j.study
		j.mu.Unlock()

		for i := range batch {
			if !emit(api.ResultLine{Record: &batch[i]}) {
				return
			}
		}
		if !terminal(state) {
			continue
		}
		// Drain any records appended between snapshot and now.
		j.mu.Lock()
		tail := append([]api.Record(nil), j.records[next:]...)
		j.mu.Unlock()
		for i := range tail {
			if !emit(api.ResultLine{Record: &tail[i]}) {
				return
			}
		}
		switch {
		case state == api.StateFailed:
			emit(api.ResultLine{Error: errMsg})
		case state == api.StateCancelled:
			emit(api.ResultLine{Error: "job cancelled"})
		case study != nil:
			emit(api.ResultLine{Study: study})
		case stats != nil:
			st := *stats
			emit(api.ResultLine{Stats: &st})
		default:
			emit(api.ResultLine{Error: "job finished without results"})
		}
		return
	}
}

func terminal(state string) bool {
	switch state {
	case api.StateDone, api.StateFailed, api.StateCancelled:
		return true
	}
	return false
}

// reclogBytes blocks until the job finishes, then returns the binary
// record log (nil when the job captured none).
func (j *job) reclogBytes() ([]byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !terminal(j.state) {
		j.cond.Wait()
	}
	return j.rec, j.state
}
