package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"flowery/internal/api"
	"flowery/internal/version"
)

// Server is the HTTP surface over a Manager — the api package's
// endpoint table made concrete. It is an http.Handler; cmd/floweryd
// mounts it on a listener, tests on httptest.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the endpoint table.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.job)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /jobs/{id}/results", s.results)
	s.mux.HandleFunc("GET /jobs/{id}/reclog", s.reclog)
	s.mux.HandleFunc("GET /jobs/{id}/metrics", s.jobMetrics)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Err: fmt.Sprintf(format, args...)})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	ji, err := s.m.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: ji.ID, State: ji.State})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Jobs())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) {
	ji, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ji)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	ji, err := s.m.Cancel(r.PathValue("id"))
	switch {
	case err == ErrNotCancellable:
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusNotFound, "%v", err)
	default:
		writeJSON(w, http.StatusOK, ji)
	}
}

// results streams NDJSON api.ResultLine, flushing per line so clients
// follow a running job live.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	j := s.m.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	ctx := r.Context()
	j.stream(func(line api.ResultLine) bool {
		if ctx.Err() != nil {
			return false
		}
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
}

func (s *Server) reclog(w http.ResponseWriter, r *http.Request) {
	j := s.m.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	blob, state := j.reclogBytes()
	if state != api.StateDone {
		writeError(w, http.StatusConflict, "job %s %s — no record log", j.id, state)
		return
	}
	if blob == nil {
		writeError(w, http.StatusNotFound, "job %s captured no records (submit with records:true)", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *Server) jobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.m.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(j.reg.Snapshot().Prometheus())
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(s.m.reg.Snapshot().Prometheus())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{
		Status:  "ok",
		Version: version.String(),
		Jobs:    s.m.States(),
	})
}
