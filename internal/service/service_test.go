package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowery/internal/api"
	"flowery/internal/campaign"
	"flowery/internal/pipeline"
	"flowery/internal/reclog"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// testSpec is a tiny campaign that finishes in well under a second.
func testSpec() api.JobSpec {
	return api.JobSpec{
		Benchmark: "crc32",
		Runs:      40,
		Samples:   100,
		Seed:      7,
		Workers:   1,
	}
}

// newTestServer stands up a manager + HTTP server + client.
func newTestServer(t *testing.T, cfg Config) (*Manager, *api.Client) {
	t.Helper()
	m := New(cfg)
	t.Cleanup(m.Close)
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(srv.Close)
	return m, &api.Client{Base: srv.URL}
}

func waitDone(t *testing.T, c *api.Client, id string) api.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ji, err := c.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		switch ji.State {
		case api.StateDone:
			return ji
		case api.StateFailed:
			t.Fatalf("job %s failed: %s", id, ji.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, ji.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCampaignRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})

	sr, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID == "" || sr.State != api.StateQueued {
		t.Fatalf("submit = %+v", sr)
	}
	ji := waitDone(t, c, sr.ID)
	if ji.Stats == nil {
		t.Fatal("done job has no stats")
	}
	if ji.Stats.Runs != 40 {
		t.Fatalf("stats.Runs = %d, want 40", ji.Stats.Runs)
	}
	if ji.StartedAt == nil || ji.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", ji)
	}

	// The result stream of a record-free campaign is exactly one stats
	// line, bit-identical to the JobInfo stats.
	rs, err := c.Results(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	line, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Stats == nil {
		t.Fatalf("first line is not stats: %+v", line)
	}
	a, _ := json.Marshal(line.Stats)
	b, _ := json.Marshal(ji.Stats)
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed stats diverge from job stats:\nstream %s\njob    %s", a, b)
	}
	if _, err := rs.Next(); err != io.EOF {
		t.Fatalf("stream has extra lines (err=%v)", err)
	}
}

// TestDeterminismMatchesDirectRun pins the daemon's core promise: a
// job's statistics equal a direct pipeline run of the same spec.
func TestDeterminismMatchesDirectRun(t *testing.T) {
	_, c := newTestServer(t, Config{})
	spec := testSpec()
	sr, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ji := waitDone(t, c, sr.ID)

	want, err := directStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := *ji.Stats
	got.Elapsed, want.Elapsed = 0, 0
	if got != want {
		t.Fatalf("daemon stats diverge from direct run:\ndaemon %+v\ndirect %+v", got, want)
	}
}

// directStats runs the spec the way `flowery inject` would: a fresh
// pipeline with the same knob mapping, no service in between.
func directStats(spec api.JobSpec) (campaign.Stats, error) {
	if err := spec.Normalize(); err != nil {
		return campaign.Stats{}, err
	}
	src, err := source(spec)
	if err != nil {
		return campaign.Stats{}, err
	}
	pl := pipeline.New(pipeline.Config{
		Runs:            spec.Runs,
		ProfileSamples:  spec.Samples,
		Seed:            spec.Seed,
		MaxSteps:        spec.MaxSteps,
		CampaignWorkers: spec.Workers,
	})
	return pl.Campaign(src, variant(spec), pipeline.CampaignOpts{Layer: layer(spec)})
}

func TestRecordsStreamAndReclog(t *testing.T) {
	_, c := newTestServer(t, Config{})
	spec := testSpec()
	spec.Records = true
	sr, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Open the stream before the job finishes: records must arrive
	// followed by the terminal stats line.
	rs, err := c.Results(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var records []api.Record
	var stats *campaign.Stats
	for {
		line, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case line.Record != nil:
			records = append(records, *line.Record)
		case line.Stats != nil:
			stats = line.Stats
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if stats == nil {
		t.Fatal("stream ended without a stats line")
	}
	if len(records) != stats.Runs {
		t.Fatalf("streamed %d records for %d runs", len(records), stats.Runs)
	}
	for i, r := range records {
		if r.Run != int64(i) {
			t.Fatalf("record %d out of order: run=%d", i, r.Run)
		}
		if r.Outcome == "" {
			t.Fatalf("record %d has no outcome name", i)
		}
	}

	// The raw reclog decodes to the same sequence.
	blob, err := c.Reclog(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	rd := reclog.NewReader(bytes.NewReader(blob))
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Run != records[n].Run {
			t.Fatalf("reclog record %d run=%d, stream says %d", n, rec.Run, records[n].Run)
		}
		n++
	}
	if n != len(records) {
		t.Fatalf("reclog has %d records, stream had %d", n, len(records))
	}
}

// TestRepeatedSpecServedFromStore is the daemon's cache story: the
// second submission of an identical spec is answered from the shared
// artifact store without executing a single engine run.
func TestRepeatedSpecServedFromStore(t *testing.T) {
	reg := telemetry.New()
	st := store.NewMemory(reg)
	m, c := newTestServer(t, Config{Artifacts: st, Telemetry: reg})

	sr1, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, c, sr1.ID)

	sr2, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	second := waitDone(t, c, sr2.ID)

	// The recalled stats match bit-for-bit except Elapsed — the one
	// wall-clock field, which the store zeroes.
	fs, ss := *first.Stats, *second.Stats
	if ss.Elapsed != 0 {
		t.Fatalf("recalled stats carry a wall clock: %v", ss.Elapsed)
	}
	fs.Elapsed = 0
	a, _ := json.Marshal(fs)
	b, _ := json.Marshal(ss)
	if !bytes.Equal(a, b) {
		t.Fatalf("recalled stats diverge:\nfirst  %s\nsecond %s", a, b)
	}
	if hits := reg.Counter("store_hits_total").Value(); hits < 1 {
		t.Fatalf("store_hits_total = %d after a repeated spec, want >= 1", hits)
	}
	// The recalled job executed nothing: its child registry never saw an
	// engine run.
	j2 := m.lookup(sr2.ID)
	if j2 == nil {
		t.Fatalf("manager lost job %s", sr2.ID)
	}
	if runs := j2.reg.Counter("engine_runs_total").Value(); runs != 0 {
		t.Fatalf("second job executed %d engine runs, want 0 (store recall)", runs)
	}
}

// TestSectionedJobRecallsSections submits the same sectioned campaign
// twice against a shared artifact store: the composed statistics are
// never stored whole, so the second job re-composes — but every
// per-section summary is recalled, so it injects zero faults.
func TestSectionedJobRecallsSections(t *testing.T) {
	reg := telemetry.New()
	st := store.NewMemory(reg)
	m, c := newTestServer(t, Config{Artifacts: st, Telemetry: reg})

	spec := testSpec()
	spec.Sections = true
	spec.Layer = "ir"
	sr1, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, c, sr1.ID)
	if !first.Stats.Sectioned || first.Stats.Sections == 0 {
		t.Fatalf("job stats not sectioned: %+v", first.Stats)
	}
	if first.Stats.SectionsExecuted != first.Stats.Sections || first.Stats.SectionsRecalled != 0 {
		t.Fatalf("cold job recalled sections: %+v", first.Stats)
	}

	sr2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	second := waitDone(t, c, sr2.ID)
	if second.Stats.SectionsRecalled != second.Stats.Sections || second.Stats.SectionsExecuted != 0 {
		t.Fatalf("warm job executed sections: %+v", second.Stats)
	}
	if second.Stats.PilotRuns != 0 {
		t.Fatalf("warm job injected %d faults, want 0", second.Stats.PilotRuns)
	}
	if second.Stats.EstRates != first.Stats.EstRates || second.Stats.Counts != first.Stats.Counts {
		t.Fatalf("recalled composition diverges:\nfirst  %+v\nsecond %+v", first.Stats, second.Stats)
	}
	// The recall is observable on the second job's own registry.
	j2 := m.lookup(sr2.ID)
	if j2 == nil {
		t.Fatalf("manager lost job %s", sr2.ID)
	}
	if hits := j2.reg.Counter("pipeline_store_hits_total").Value(); hits < int64(second.Stats.Sections) {
		t.Fatalf("pipeline_store_hits_total = %d, want >= %d (one per section)", hits, second.Stats.Sections)
	}
}

func TestValidationFailsAtSubmit(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for name, spec := range map[string]api.JobSpec{
		"no program":    {},
		"bad benchmark": {Benchmark: "nonesuch"},
		"bad ir":        {IR: "not ir at all"},
		"prune+records": {Benchmark: "crc32", Prune: true, Records: true},
	} {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("%s: submit succeeded, want error", name)
		}
	}
	// Server-side validation too: a syntactically valid JSON body with a
	// bad combination is rejected with 400 even if a client skips
	// Normalize.
	if _, err := c.Submit(api.JobSpec{Benchmark: "nonesuch", Runs: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown benchmark error missing: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// One worker busy with a slow job keeps the second queued.
	_, c := newTestServer(t, Config{Workers: 1})
	// Long enough to still be running while we submit and cancel the
	// second job (milliseconds), short enough that Close drains fast.
	slow := testSpec()
	slow.Runs = 400
	if _, err := c.Submit(slow); err != nil {
		t.Fatal(err)
	}
	sr, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ji, err := c.Cancel(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ji.State != api.StateCancelled {
		t.Fatalf("cancelled job state = %s", ji.State)
	}
	// Its result stream terminates with an error line.
	rs, err := c.Results(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	line, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Error == "" {
		t.Fatalf("cancelled job streamed %+v, want error line", line)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sr, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, sr.ID)

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" {
		t.Fatalf("health = %+v", h)
	}
	if h.Jobs[api.StateDone] != 1 {
		t.Fatalf("health jobs = %v, want one done", h.Jobs)
	}

	page, err := c.Metrics("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(page, []byte("service_jobs_done_total 1")) {
		t.Fatalf("daemon metrics missing job counter:\n%s", page)
	}
	jm, err := c.Metrics("/jobs/" + sr.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jm, []byte("engine_runs_total")) {
		t.Fatalf("per-job metrics missing engine counters:\n%s", jm)
	}
}

func TestStudyJob(t *testing.T) {
	if testing.Short() {
		t.Skip("study job runs full campaigns")
	}
	_, c := newTestServer(t, Config{})
	sr, err := c.Submit(api.JobSpec{
		Kind:       api.KindStudy,
		Benchmarks: []string{"crc32"},
		Runs:       40,
		Samples:    100,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, sr.ID)
	rs, err := c.Results(sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	line, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if line.Study == nil {
		t.Fatalf("study job streamed %+v, want study document", line)
	}
	var doc struct {
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(line.Study, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "crc32" {
		t.Fatalf("study document = %s", line.Study)
	}
}

func TestListNewestFirst(t *testing.T) {
	m, c := newTestServer(t, Config{})
	var ids []string
	for i := 0; i < 3; i++ {
		sr, err := c.Submit(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.ID)
		waitDone(t, c, sr.ID)
	}
	_ = m
	list, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list))
	}
	for i, ji := range list {
		if want := ids[len(ids)-1-i]; ji.ID != want {
			t.Fatalf("list[%d] = %s, want %s (newest first)", i, ji.ID, want)
		}
	}
}
