package service

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flowery/internal/campaign"
	"flowery/internal/reclog"
	"flowery/internal/shard"
	"flowery/internal/store"
	"flowery/internal/telemetry"
)

// startHub stands up a worker hub with n in-process connect workers
// parked on it, mirroring `floweryd -shard-listen` plus a fleet of
// `flowery shard-worker -connect` processes.
func startHub(t *testing.T, n int, reg *telemetry.Registry) *shard.Hub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const heartbeat = 50 * time.Millisecond
	hub := shard.NewHub(ln, shard.HubOpts{Heartbeat: heartbeat, HeartbeatMiss: 10, Metrics: reg})
	var wg sync.WaitGroup
	t.Cleanup(func() { hub.Close(); wg.Wait() })
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard.RunWorker(shard.WorkerOpts{
				Connect:     hub.Addr().String(),
				Name:        fmt.Sprintf("svc-%d", i),
				Heartbeat:   heartbeat,
				Redials:     50,
				BackoffBase: time.Millisecond,
				BackoffMax:  5 * time.Millisecond,
				Log:         io.Discard,
			})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.Workers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers parked", hub.Workers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return hub
}

// TestRemoteWorkersJobViaHub runs a remote_workers campaign end to end
// through the daemon's hub — socket workers execute the shards, each
// shard's reclog bytes spill into the artifact store, and the composed
// log plus the merged stats must be byte-identical to the same job run
// locally.
func TestRemoteWorkersJobViaHub(t *testing.T) {
	reg := telemetry.New()
	st := store.NewMemory(reg)
	hub := startHub(t, 2, reg)
	_, c := newTestServer(t, Config{Artifacts: st, Telemetry: reg, Hub: hub})

	spec := testSpec()
	spec.Shards = 4
	spec.Records = true

	remote := spec
	remote.RemoteWorkers = true
	rr, err := c.Submit(remote)
	if err != nil {
		t.Fatal(err)
	}
	rji := waitDone(t, c, rr.ID)

	lr, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	lji := waitDone(t, c, lr.ID)

	got, want := *rji.Stats, *lji.Stats
	// Perf fields describe the actual execution: two socket workers pay
	// two setup costs (golden run, snapshots) where the local path pays
	// one. Everything else — outcomes, golden counts, pruning tallies —
	// must match bit for bit.
	got.Elapsed, want.Elapsed = 0, 0
	got.SimulatedInstrs, want.SimulatedInstrs = 0, 0
	if got != want {
		t.Fatalf("remote stats diverge from local:\nremote %+v\nlocal  %+v", got, want)
	}

	remoteLog, err := c.Reclog(rr.ID)
	if err != nil {
		t.Fatal(err)
	}
	localLog, err := c.Reclog(lr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteLog, localLog) {
		t.Fatalf("composed remote reclog (%d bytes) differs from local single-writer log (%d bytes)",
			len(remoteLog), len(localLog))
	}
	// The shard counters live on the job's own registry; prove the
	// shards actually rode the socket transport rather than a silent
	// local fallback.
	page, err := c.Metrics("/jobs/" + rr.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("shard_shards_executed_total %d", spec.Shards),
		"shard_remote_connects_total 2",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("job metrics missing %q:\n%s", want, page)
		}
	}
}

// TestRemoteWorkersRejectedWithoutHub: a remote_workers submission to a
// daemon started without -shard-listen must fail at submit time with a
// line naming the missing flag, not queue and then die.
func TestRemoteWorkersRejectedWithoutHub(t *testing.T) {
	_, c := newTestServer(t, Config{})
	spec := testSpec()
	spec.Shards = 4
	spec.RemoteWorkers = true
	if _, err := c.Submit(spec); err == nil || !strings.Contains(err.Error(), "-shard-listen") {
		t.Fatalf("err = %v, want missing-hub rejection", err)
	}
}

// TestComposeMatchesBatch pins the shardBlobs invariant directly:
// decoding per-shard streams in range order and re-encoding through one
// writer must reproduce the batch single-writer byte stream exactly,
// regardless of blob arrival order or whether blobs rode through the
// store.
func TestComposeMatchesBatch(t *testing.T) {
	recs := make([]reclog.Record, 40)
	for i := range recs {
		recs[i] = reclog.Record{Run: int64(i), Outcome: uint8(i % 5), Origin: uint8(i % 3), Target: int64(i * 7), Bit: uint8(i % 64)}
	}
	encode := func(rs []reclog.Record) []byte {
		var buf bytes.Buffer
		w := reclog.NewWriter(&buf)
		for _, r := range rs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := encode(recs)

	ranges := []campaign.ShardRange{{Lo: 13, Hi: 40}, {Lo: 0, Hi: 7}, {Lo: 7, Hi: 13}}
	for _, artifacts := range []store.Store{nil, store.NewMemory(nil)} {
		s := &shardBlobs{m: &Manager{cfg: Config{Artifacts: artifacts}}, job: "t"}
		for _, rg := range ranges { // deliberately out of range order
			s.put(rg, encode(recs[rg.Lo:rg.Hi]))
		}
		got, err := s.compose()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("store=%v: composed log (%d bytes) differs from batch log (%d bytes)",
				artifacts != nil, len(got), len(want))
		}
	}

	// A missing shard is a gap, not a silently short log.
	s := &shardBlobs{m: &Manager{}, job: "t"}
	s.put(campaign.ShardRange{Lo: 0, Hi: 7}, encode(recs[0:7]))
	s.put(campaign.ShardRange{Lo: 13, Hi: 40}, encode(recs[13:40]))
	if _, err := s.compose(); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("err = %v, want gap detection", err)
	}
}
