// Package campaign orchestrates Monte-Carlo fault-injection campaigns
// (paper §4.3): for each run, a uniformly random dynamic instruction with
// a destination is chosen, a uniformly random bit of that destination is
// flipped, and the outcome is classified against the golden run. The
// same harness drives the IR interpreter and the assembly simulator
// through sim.Engine, which is what makes the paper's cross-layer
// comparison possible.
//
// Campaigns are deterministic: outcome counts depend only on the engine,
// the run count, and the seed — not on scheduling — because every run's
// random choices derive from the seed and the run index alone.
package campaign

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"flowery/internal/asm"
	"flowery/internal/sim"
	"flowery/internal/stats"
	"flowery/internal/telemetry"
)

// Outcome classifies one injection run.
type Outcome uint8

const (
	// OutcomeBenign: the program finished with golden output.
	OutcomeBenign Outcome = iota
	// OutcomeSDC: the program finished normally with corrupted output.
	OutcomeSDC
	// OutcomeDUE: the program crashed or hung.
	OutcomeDUE
	// OutcomeDetected: a duplication checker caught the fault.
	OutcomeDetected

	NumOutcomes = 4
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDUE:
		return "due"
	case OutcomeDetected:
		return "detected"
	default:
		return "unknown"
	}
}

// HangFactor is the multiple of the golden run's dynamic instruction
// count after which a faulty run counts as hung.
const HangFactor = 50

// Pruning selects a campaign's sampling strategy.
type Pruning uint8

const (
	// PruneNone samples the fault population uniformly, one injection
	// per run (the classic Monte-Carlo campaign).
	PruneNone Pruning = iota
	// PruneClasses partitions fault sites into equivalence classes
	// (package equiv), injects a pilot budget of Spec.PilotsPerClass per
	// live class allocated by class weight, and extrapolates stratum
	// outcomes to population-level statistics (see RunPruned).
	PruneClasses
)

func (p Pruning) String() string {
	if p == PruneClasses {
		return "classes"
	}
	return "none"
}

// SnapshotsOff is the Spec.Snapshots value that disables
// checkpoint/fast-forward execution.
const SnapshotsOff = -1

// Spec configures a campaign.
type Spec struct {
	// Runs is the number of fault injections (the paper uses 3000).
	// Under PruneClasses it is the population-equivalent campaign size
	// extrapolated statistics are scaled to, not the injection count.
	Runs int
	// Seed drives all random choices.
	Seed int64
	// MaxSteps bounds each run (0: sim.DefaultMaxSteps).
	MaxSteps int64
	// Workers is the parallelism (0: GOMAXPROCS).
	Workers int
	// Snapshots tunes checkpoint/fast-forward execution: 0 uses it
	// automatically whenever the engine supports it (with
	// DefaultSnapshotTarget checkpoints per golden run), a positive value
	// overrides the per-run checkpoint target, and SnapshotsOff (-1)
	// disables fast-forwarding. Outcome statistics are bit-identical
	// either way; only the wall clock changes.
	Snapshots int
	// Pruning selects equivalence pruning; PruneClasses requires an
	// engine implementing sim.TraceEngine.
	Pruning Pruning
	// PilotsPerClass is the average pilot budget per live equivalence
	// class, in [1, MaxPilotsPerClass]: the pruned campaign executes
	// about PilotsPerClass × (live classes) injections, allocated across
	// strata by class weight (equiv.BuildPlan). Only meaningful (and
	// required) with PruneClasses.
	PilotsPerClass int
	// Masks, when non-nil, supplies each static site's statically
	// proven-masked bit choices (internal/bitmask.Analysis.Masked for
	// the layer the engine executes). RunPruned composes it into the
	// pilot plan: masked choices are scored benign with zero pilots and
	// the pilot budget shrinks by the masked fraction. Only meaningful
	// (and only permitted) with Pruning: classes.
	Masks func(static int32, width uint8) uint64
	// Reference pins every run to the engines' reference interpretation
	// loop instead of their predecoded fast cores. Statistics are
	// bit-identical either way; the knob exists for equivalence gating
	// and for measuring the fast cores' speedup.
	Reference bool
	// Metrics, when non-nil, receives campaign telemetry — run/outcome
	// counters, snapshot build/restore tallies, per-worker injection
	// throughput gauges, pruning tallies — and is forwarded to the
	// engines via sim.Options. Like Stats' perf fields, it is excluded
	// from the determinism guarantees and from pipeline cache keys.
	Metrics *telemetry.Registry
	// TraceSpan, when non-nil, parents the campaign's trace spans
	// (golden run, per-worker batches, engine runs) in Metrics' registry.
	TraceSpan *telemetry.Span
	// Records, when non-nil, receives every run's Record in run order
	// once outcomes are merged (full campaigns only; pruned campaigns
	// have no per-run population sample to record). The sink is
	// observation only: it never influences outcomes and, like Metrics,
	// is excluded from pipeline cache keys — a cache hit replays no
	// records. The sharded executor encodes this stream with
	// internal/reclog; `flowery inject -reclog` stores it on disk.
	Records func(Record)
}

// Validate rejects nonsensical specs up front with a descriptive error,
// before any engine work. Run and RunPruned call it; it is exported so
// CLIs and the pipeline can fail fast.
func (s Spec) Validate() error {
	if s.Runs <= 0 {
		return fmt.Errorf("campaign: Runs must be positive (got %d)", s.Runs)
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("campaign: MaxSteps must be >= 0 (got %d)", s.MaxSteps)
	}
	if s.Snapshots < SnapshotsOff {
		return fmt.Errorf("campaign: Snapshots must be >= -1 (0 auto-tunes, >0 sets the checkpoint target, -1 disables fast-forwarding; got %d)", s.Snapshots)
	}
	switch s.Pruning {
	case PruneNone:
		if s.PilotsPerClass != 0 {
			return fmt.Errorf("campaign: PilotsPerClass (%d) is only meaningful with Pruning: classes", s.PilotsPerClass)
		}
		if s.Masks != nil {
			return fmt.Errorf("campaign: Masks (static bit masking) is only meaningful with Pruning: classes")
		}
	case PruneClasses:
		if s.PilotsPerClass < 1 {
			return fmt.Errorf("campaign: PilotsPerClass must be >= 1 under Pruning: classes (got %d)", s.PilotsPerClass)
		}
		if s.PilotsPerClass > MaxPilotsPerClass {
			return fmt.Errorf("campaign: PilotsPerClass must be <= %d; a larger average budget would outgrow the per-class site sample the trace collector retains (got %d)", MaxPilotsPerClass, s.PilotsPerClass)
		}
	default:
		return fmt.Errorf("campaign: unknown pruning mode %d", s.Pruning)
	}
	return nil
}

// checkPopulation rejects campaigns larger than the distinct-fault
// population: every injectable site has at most 64 distinct single-bit
// faults, so more runs than 64×sites cannot add information and almost
// certainly means Runs and the program were swapped or mis-scaled.
func checkPopulation(runs int, injectable int64) error {
	if int64(runs) > 64*injectable {
		return fmt.Errorf("campaign: %d runs exceed the distinct fault population (%d injectable sites × 64 bit choices = %d)",
			runs, injectable, 64*injectable)
	}
	return nil
}

// Stats aggregates campaign outcomes.
type Stats struct {
	Runs   int
	Counts [NumOutcomes]int
	// SDCByOrigin attributes SDC runs to the provenance tag of the
	// injected assembly instruction (all OriginNone at IR level).
	SDCByOrigin [asm.NumOrigins]int
	// GoldenDyn and GoldenInjectable describe the fault-free run.
	GoldenDyn        int64
	GoldenInjectable int64

	// Perf telemetry. Unlike the outcome fields above, these depend on
	// scheduling (worker count, snapshot placement) and wall clock; they
	// are excluded from determinism guarantees.
	//
	// SimulatedInstrs counts dynamic instructions actually executed
	// across the campaign, including golden and snapshot-building runs.
	// SavedInstrs counts instructions fast-forwarded over via checkpoint
	// restore; scratch execution of the same campaign would have cost
	// SimulatedInstrs+SavedInstrs.
	SimulatedInstrs int64
	SavedInstrs     int64
	// Elapsed is the wall-clock duration of Run.
	Elapsed time.Duration

	// Equivalence-pruning extrapolation, populated only by RunPruned.
	// When Pruned is set, Counts and SDCByOrigin above hold the
	// stratified estimates scaled to Runs by largest-remainder rounding
	// (so they still sum to Runs), while EstRates carry the exact
	// estimates and [SDCLo, SDCHi] the stratified 95% interval.
	Pruned bool
	// Classes is the number of equivalence classes in the partition.
	Classes int
	// DeadSites counts provably-benign sites extrapolated without any
	// injection; DeadBits is the bit-choice population those sites
	// cover (64 per site).
	DeadSites int64
	DeadBits  int64
	// MaskedSites counts live sites with at least one statically
	// proven-masked bit choice; MaskedBits counts the proven-masked
	// (site, bit-choice) pairs scored benign without injection. Both
	// are zero unless Spec.Masks was set.
	MaskedSites int64
	MaskedBits  int64
	// PilotRuns is the number of injections actually executed.
	PilotRuns int
	EstRates  [NumOutcomes]float64
	SDCLo     float64
	SDCHi     float64

	// Sectioned composition (RunSectioned; implies Pruned — the
	// statistics are stratified estimates). Sections counts the
	// sections of the program that executed; SectionsRecalled of them
	// were served from stored summaries and SectionsExecuted were
	// estimated with fresh injections, so PilotRuns above is the
	// incremental re-analysis cost alone.
	Sectioned        bool
	Sections         int
	SectionsExecuted int
	SectionsRecalled int
}

// SavedFrac is the fraction of the campaign's total instruction work
// skipped by checkpoint restore (0 when snapshots were off or useless).
func (s Stats) SavedFrac() float64 {
	total := s.SimulatedInstrs + s.SavedInstrs
	if total == 0 {
		return 0
	}
	return float64(s.SavedInstrs) / float64(total)
}

// RunsPerSec is the campaign throughput in injection runs per second.
func (s Stats) RunsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Runs) / s.Elapsed.Seconds()
}

// Rate returns the fraction of runs with the given outcome (for pruned
// campaigns, the exact stratified estimate rather than the rounded
// Counts ratio).
func (s Stats) Rate(o Outcome) float64 {
	if s.Pruned {
		return s.EstRates[o]
	}
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Counts[o]) / float64(s.Runs)
}

// SDCRate is shorthand for Rate(OutcomeSDC).
func (s Stats) SDCRate() float64 { return s.Rate(OutcomeSDC) }

// Coverage computes SDC coverage of a protected configuration against
// the unprotected baseline measured at the same layer:
// (SDCraw − SDCprot) / SDCraw (paper §2.1).
func Coverage(raw, prot Stats) float64 {
	r := raw.SDCRate()
	if r == 0 {
		return 1
	}
	c := (r - prot.SDCRate()) / r
	if c < 0 {
		return 0
	}
	return c
}

// CoverageCI returns the coverage point estimate together with a 95%
// confidence interval (delta-method propagation of the two campaigns'
// binomial uncertainty; see package stats).
func CoverageCI(raw, prot Stats) (c, lo, hi float64) {
	return stats.CoverageInterval(
		stats.Proportion{Hits: raw.Counts[OutcomeSDC], Total: raw.Runs},
		stats.Proportion{Hits: prot.Counts[OutcomeSDC], Total: prot.Runs},
		stats.Z95,
	)
}

// SDCRateCI returns the SDC rate with its 95% interval: Wilson for
// plain campaigns, the stratified interval for pruned ones.
func (s Stats) SDCRateCI() (p, lo, hi float64) {
	if s.Pruned {
		return s.EstRates[OutcomeSDC], s.SDCLo, s.SDCHi
	}
	pr := stats.Proportion{Hits: s.Counts[OutcomeSDC], Total: s.Runs}
	lo, hi = pr.Wilson(stats.Z95)
	return pr.P(), lo, hi
}

// EngineFactory builds an engine instance. Run calls it once per worker,
// sequentially (engine construction may touch shared module state).
type EngineFactory func() (sim.Engine, error)

// DefaultSnapshotTarget is the number of checkpoints a golden run aims
// for when Spec.Snapshots is 0.
const DefaultSnapshotTarget = 96

// minSnapshotInterval bounds checkpoint density from below: programs too
// short to amortize capture and restore run from scratch instead.
const minSnapshotInterval = 2048

// snapshotInterval derives the checkpoint spacing for a golden run with
// the given injectable population; 0 disables fast-forwarding.
func snapshotInterval(spec Spec, injectable int64) int64 {
	target := int64(DefaultSnapshotTarget)
	switch {
	case spec.Snapshots < 0:
		return 0
	case spec.Snapshots > 0:
		target = int64(spec.Snapshots)
	}
	iv := injectable / target
	if iv < minSnapshotInterval {
		iv = minSnapshotInterval
	}
	if 2*iv > injectable {
		// At most one checkpoint would ever be restored; not worth the
		// capture cost.
		return 0
	}
	return iv
}

// job is one scheduled injection run.
type job struct {
	run   int // run index (the position outcomes are merged at)
	fault sim.Fault
}

// runOutcome is one run's classified result, recorded in a per-run slot
// so the final aggregation order is independent of scheduling.
type runOutcome struct {
	outcome Outcome
	origin  asm.Origin
}

// Run executes a campaign and returns aggregated statistics. Specs with
// Pruning: classes are forwarded to RunPruned.
func Run(factory EngineFactory, spec Spec) (Stats, error) {
	if spec.Pruning == PruneClasses {
		return RunPruned(factory, spec)
	}
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return Stats{}, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Runs {
		workers = spec.Runs
	}

	engines := make([]sim.Engine, workers)
	for i := range engines {
		e, err := factory()
		if err != nil {
			return Stats{}, fmt.Errorf("campaign: engine %d: %w", i, err)
		}
		engines[i] = e
	}

	gs := spec.Metrics.StartSpan(spec.TraceSpan, "campaign.golden")
	golden := engines[0].Run(sim.Fault{}, sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference, Metrics: spec.Metrics})
	gs.SetIntAttr("injectable", golden.InjectableInstrs)
	gs.End()
	if golden.Status != sim.StatusOK {
		return Stats{}, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return Stats{}, fmt.Errorf("campaign: program has no injectable instructions")
	}
	if err := checkPopulation(spec.Runs, golden.InjectableInstrs); err != nil {
		return Stats{}, err
	}
	goldenOut := append([]byte(nil), golden.Output...)

	faults := make([]sim.Fault, spec.Runs)
	for i := range faults {
		faults[i] = faultForRun(spec.Seed, int64(i), golden.InjectableInstrs)
	}
	outcomes, simulated, saved := executeFaults(engines, spec, golden, goldenOut, faults)

	total := Stats{
		Runs:             spec.Runs,
		GoldenDyn:        golden.DynInstrs,
		GoldenInjectable: golden.InjectableInstrs,
		SimulatedInstrs:  golden.DynInstrs + simulated,
		SavedInstrs:      saved,
	}
	// Merge in run order: the aggregate is a pure function of the per-run
	// outcomes, independent of worker count and batch scheduling.
	for i := range outcomes {
		total.Counts[outcomes[i].outcome]++
		if outcomes[i].outcome == OutcomeSDC {
			total.SDCByOrigin[outcomes[i].origin]++
		}
	}
	total.Elapsed = time.Since(start)
	flushStats(spec.Metrics, total)
	if spec.Records != nil {
		for i := range outcomes {
			spec.Records(Record{
				Run:     i,
				Outcome: outcomes[i].outcome,
				Origin:  outcomes[i].origin,
				Target:  faults[i].TargetIndex,
				Bit:     uint8(faults[i].Bit),
			})
		}
	}
	return total, nil
}

// flushStats records a finished campaign's aggregates in reg (nil-safe).
// For pruned campaigns the outcome counters carry the extrapolated
// Counts (scaled to Runs); the prune_* counters carry the exact
// injection work.
func flushStats(reg *telemetry.Registry, total Stats) {
	if reg == nil {
		return
	}
	reg.Counter("campaign_runs_total").Add(int64(total.Runs))
	for o := Outcome(0); o < NumOutcomes; o++ {
		if n := total.Counts[o]; n > 0 {
			reg.Counter(`campaign_outcomes_total{outcome="` + o.String() + `"}`).Add(int64(n))
		}
	}
	reg.Counter("campaign_instrs_simulated_total").Add(total.SimulatedInstrs)
	reg.Counter("campaign_instrs_saved_total").Add(total.SavedInstrs)
	if total.Pruned {
		reg.Counter("campaign_prune_pilot_runs_total").Add(int64(total.PilotRuns))
		reg.Counter("campaign_prune_classes_total").Add(int64(total.Classes))
		reg.Counter("campaign_prune_dead_sites_total").Add(total.DeadSites)
		if total.MaskedBits > 0 {
			reg.Counter("campaign_prune_masked_sites_total").Add(total.MaskedSites)
			reg.Counter("campaign_prune_masked_bits_total").Add(total.MaskedBits)
		}
	}
	if total.Sectioned {
		reg.Counter("campaign_sections_total").Add(int64(total.Sections))
		reg.Counter("campaign_sections_executed_total").Add(int64(total.SectionsExecuted))
		reg.Counter("campaign_sections_recalled_total").Add(int64(total.SectionsRecalled))
	}
}

// executeFaults runs one faulty execution per fault across a worker pool
// of len(engines) engines and returns the classified outcome for each
// fault, indexed like faults, plus the executed and fast-forwarded
// dynamic instruction counts (excluding the golden run). Results are
// independent of worker count and scheduling.
func executeFaults(engines []sim.Engine, spec Spec, golden sim.Result, goldenOut []byte, faults []sim.Fault) ([]runOutcome, int64, int64) {
	workers := len(engines)

	// A fault that corrupts a loop bound can hang the program; runs far
	// past the golden length are classified as hangs (DUE) without
	// burning the global step ceiling.
	maxSteps := spec.MaxSteps
	if maxSteps <= 0 {
		maxSteps = HangFactor*golden.DynInstrs + 100_000
	}

	// Deal faults round-robin into per-worker batches and sort each batch
	// by injection point: consecutive runs then restore from nearby
	// (usually identical) checkpoints, so the snapshot cache stays hot
	// and prefix reuse is maximal. Outcomes land in per-run slots, so
	// neither the batch order nor the worker count can perturb the
	// aggregate.
	interval := snapshotInterval(spec, golden.InjectableInstrs)
	batches := make([][]job, workers)
	for i := range faults {
		w := i % workers
		batches[w] = append(batches[w], job{i, faults[i]})
	}
	for _, b := range batches {
		b := b
		sort.Slice(b, func(i, j int) bool {
			if b[i].fault.TargetIndex != b[j].fault.TargetIndex {
				return b[i].fault.TargetIndex < b[j].fault.TargetIndex
			}
			return b[i].run < b[j].run
		})
	}

	outcomes := make([]runOutcome, len(faults))
	simulated := make([]int64, workers)
	saved := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := engines[w]
			reg := spec.Metrics
			bs := reg.StartSpan(spec.TraceSpan, "campaign.batch")
			bs.SetIntAttr("worker", int64(w))
			bs.SetIntAttr("jobs", int64(len(batches[w])))
			var bstart time.Time
			if reg != nil {
				bstart = time.Now()
			}
			opts := sim.Options{MaxSteps: maxSteps, Reference: spec.Reference, Metrics: reg}
			se, _ := eng.(sim.SnapshotEngine)
			if se != nil && interval > 0 {
				g := se.BuildSnapshots(interval, sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference, Metrics: reg})
				simulated[w] += g.DynInstrs
				reg.Counter("campaign_snapshot_builds_total").Inc()
				if g.Status != sim.StatusOK {
					se = nil // engine degraded; fall back to scratch runs
				}
			} else {
				se = nil
			}
			var restores int64
			for _, j := range batches[w] {
				rs := reg.StartSpan(bs, "engine.run")
				var res sim.Result
				var skipped int64
				if se != nil {
					res, skipped = se.RunFrom(j.fault, opts)
				} else {
					res = eng.Run(j.fault, opts)
				}
				simulated[w] += res.DynInstrs - skipped
				saved[w] += skipped
				if skipped > 0 {
					restores++
				}
				o := classify(res, goldenOut)
				outcomes[j.run] = runOutcome{o, res.InjectedOrigin}
				rs.SetAttr("outcome", o.String())
				rs.End()
			}
			if se != nil {
				se.DropSnapshots()
			}
			if reg != nil {
				reg.Counter("campaign_snapshot_restores_total").Add(restores)
				if el := time.Since(bstart).Seconds(); el > 0 {
					reg.Gauge(`campaign_worker_injections_per_sec{worker="` + strconv.Itoa(w) + `"}`).
						Set(float64(len(batches[w])) / el)
				}
				reg.Histogram("campaign_batch_seconds").Observe(time.Since(bstart))
			}
			bs.End()
		}()
	}
	wg.Wait()

	var simTotal, savedTotal int64
	for w := 0; w < workers; w++ {
		simTotal += simulated[w]
		savedTotal += saved[w]
	}
	return outcomes, simTotal, savedTotal
}

// classify maps a run result to an outcome.
func classify(res sim.Result, goldenOut []byte) Outcome {
	switch res.Status {
	case sim.StatusDetected:
		return OutcomeDetected
	case sim.StatusTrap:
		return OutcomeDUE
	default:
		if !res.Injected {
			// The chosen site was never reached; nothing happened.
			return OutcomeBenign
		}
		if !bytes.Equal(res.Output, goldenOut) {
			return OutcomeSDC
		}
		return OutcomeBenign
	}
}

// faultForRun derives run i's fault deterministically from the seed.
func faultForRun(seed, i, injectable int64) sim.Fault {
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(i)+0x9e3779b97f4a7c15))
	target := int64(h%uint64(injectable)) + 1
	bit := int((h >> 32) % 64)
	return sim.Fault{TargetIndex: target, Bit: bit}
}

// splitmix64 is the standard 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
