// Package campaign orchestrates Monte-Carlo fault-injection campaigns
// (paper §4.3): for each run, a uniformly random dynamic instruction with
// a destination is chosen, a uniformly random bit of that destination is
// flipped, and the outcome is classified against the golden run. The
// same harness drives the IR interpreter and the assembly simulator
// through sim.Engine, which is what makes the paper's cross-layer
// comparison possible.
//
// Campaigns are deterministic: outcome counts depend only on the engine,
// the run count, and the seed — not on scheduling — because every run's
// random choices derive from the seed and the run index alone.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"flowery/internal/asm"
	"flowery/internal/sim"
	"flowery/internal/stats"
)

// Outcome classifies one injection run.
type Outcome uint8

const (
	// OutcomeBenign: the program finished with golden output.
	OutcomeBenign Outcome = iota
	// OutcomeSDC: the program finished normally with corrupted output.
	OutcomeSDC
	// OutcomeDUE: the program crashed or hung.
	OutcomeDUE
	// OutcomeDetected: a duplication checker caught the fault.
	OutcomeDetected

	NumOutcomes = 4
)

func (o Outcome) String() string {
	switch o {
	case OutcomeBenign:
		return "benign"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDUE:
		return "due"
	case OutcomeDetected:
		return "detected"
	default:
		return "unknown"
	}
}

// HangFactor is the multiple of the golden run's dynamic instruction
// count after which a faulty run counts as hung.
const HangFactor = 50

// Spec configures a campaign.
type Spec struct {
	// Runs is the number of fault injections (the paper uses 3000).
	Runs int
	// Seed drives all random choices.
	Seed int64
	// MaxSteps bounds each run (0: sim.DefaultMaxSteps).
	MaxSteps int64
	// Workers is the parallelism (0: GOMAXPROCS).
	Workers int
}

// Stats aggregates campaign outcomes.
type Stats struct {
	Runs   int
	Counts [NumOutcomes]int
	// SDCByOrigin attributes SDC runs to the provenance tag of the
	// injected assembly instruction (all OriginNone at IR level).
	SDCByOrigin [asm.NumOrigins]int
	// GoldenDyn and GoldenInjectable describe the fault-free run.
	GoldenDyn        int64
	GoldenInjectable int64
}

// Rate returns the fraction of runs with the given outcome.
func (s Stats) Rate(o Outcome) float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Counts[o]) / float64(s.Runs)
}

// SDCRate is shorthand for Rate(OutcomeSDC).
func (s Stats) SDCRate() float64 { return s.Rate(OutcomeSDC) }

// Coverage computes SDC coverage of a protected configuration against
// the unprotected baseline measured at the same layer:
// (SDCraw − SDCprot) / SDCraw (paper §2.1).
func Coverage(raw, prot Stats) float64 {
	r := raw.SDCRate()
	if r == 0 {
		return 1
	}
	c := (r - prot.SDCRate()) / r
	if c < 0 {
		return 0
	}
	return c
}

// CoverageCI returns the coverage point estimate together with a 95%
// confidence interval (delta-method propagation of the two campaigns'
// binomial uncertainty; see package stats).
func CoverageCI(raw, prot Stats) (c, lo, hi float64) {
	return stats.CoverageInterval(
		stats.Proportion{Hits: raw.Counts[OutcomeSDC], Total: raw.Runs},
		stats.Proportion{Hits: prot.Counts[OutcomeSDC], Total: prot.Runs},
		stats.Z95,
	)
}

// SDCRateCI returns the SDC rate with its 95% Wilson interval.
func (s Stats) SDCRateCI() (p, lo, hi float64) {
	pr := stats.Proportion{Hits: s.Counts[OutcomeSDC], Total: s.Runs}
	lo, hi = pr.Wilson(stats.Z95)
	return pr.P(), lo, hi
}

// EngineFactory builds an engine instance. Run calls it once per worker,
// sequentially (engine construction may touch shared module state).
type EngineFactory func() (sim.Engine, error)

// Run executes a campaign and returns aggregated statistics.
func Run(factory EngineFactory, spec Spec) (Stats, error) {
	if spec.Runs <= 0 {
		return Stats{}, fmt.Errorf("campaign: non-positive run count")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Runs {
		workers = spec.Runs
	}

	engines := make([]sim.Engine, workers)
	for i := range engines {
		e, err := factory()
		if err != nil {
			return Stats{}, fmt.Errorf("campaign: engine %d: %w", i, err)
		}
		engines[i] = e
	}

	golden := engines[0].Run(sim.Fault{}, sim.Options{MaxSteps: spec.MaxSteps})
	if golden.Status != sim.StatusOK {
		return Stats{}, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return Stats{}, fmt.Errorf("campaign: program has no injectable instructions")
	}
	goldenOut := string(golden.Output)

	// A fault that corrupts a loop bound can hang the program; runs far
	// past the golden length are classified as hangs (DUE) without
	// burning the global step ceiling.
	maxSteps := spec.MaxSteps
	if maxSteps <= 0 {
		maxSteps = HangFactor*golden.DynInstrs + 100_000
	}

	var wg sync.WaitGroup
	partial := make([]Stats, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &partial[w]
			for i := w; i < spec.Runs; i += workers {
				fault := faultForRun(spec.Seed, int64(i), golden.InjectableInstrs)
				res := engines[w].Run(fault, sim.Options{MaxSteps: maxSteps})
				o := classify(res, goldenOut)
				st.Counts[o]++
				if o == OutcomeSDC {
					st.SDCByOrigin[res.InjectedOrigin]++
				}
			}
		}()
	}
	wg.Wait()

	total := Stats{
		Runs:             spec.Runs,
		GoldenDyn:        golden.DynInstrs,
		GoldenInjectable: golden.InjectableInstrs,
	}
	for _, p := range partial {
		for i, c := range p.Counts {
			total.Counts[i] += c
		}
		for i, c := range p.SDCByOrigin {
			total.SDCByOrigin[i] += c
		}
	}
	return total, nil
}

// classify maps a run result to an outcome.
func classify(res sim.Result, goldenOut string) Outcome {
	switch res.Status {
	case sim.StatusDetected:
		return OutcomeDetected
	case sim.StatusTrap:
		return OutcomeDUE
	default:
		if !res.Injected {
			// The chosen site was never reached; nothing happened.
			return OutcomeBenign
		}
		if string(res.Output) != goldenOut {
			return OutcomeSDC
		}
		return OutcomeBenign
	}
}

// faultForRun derives run i's fault deterministically from the seed.
func faultForRun(seed, i, injectable int64) sim.Fault {
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(i)+0x9e3779b97f4a7c15))
	target := int64(h%uint64(injectable)) + 1
	bit := int((h >> 32) % 64)
	return sim.Fault{TargetIndex: target, Bit: bit}
}

// splitmix64 is the standard 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
