package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"flowery/internal/asm"
	"flowery/internal/sim"
)

// This file is the campaign half of sharded multi-process execution
// (DESIGN.md §13): deterministic partitioning of a campaign's run range
// into shards, a runner that executes one shard against a persistent
// engine pool, and the exact merge that reassembles per-shard results
// into the Stats a single-process Run would have produced. The process
// farming itself — worker processes, the wire protocol, work stealing —
// lives in internal/shard, behind the ShardExecutor interface, so this
// package stays free of process management and the shard package stays
// free of statistics.
//
// The exactness argument, in short: a campaign's outcome statistics are
// a pure function of the per-run outcome sequence, every run's fault
// derives from (seed, run index, injectable population) alone, and the
// aggregation is integer addition. Partitioning [0, Runs) into disjoint
// contiguous shards, classifying each run in its shard, and summing the
// per-shard integer tallies therefore reproduces the single-process
// aggregate bit for bit — no floating point, no order sensitivity, no
// scheduling dependence. MergeShards additionally cross-checks that
// every shard observed the same golden run (dynamic and injectable
// counts), which catches any worker whose reconstructed program drifted
// from the coordinator's.

// Record is one run's classified outcome together with the fault that
// produced it — the unit the sharded executor ships between processes
// (encoded via internal/reclog) and `flowery inject -reclog` stores on
// disk.
type Record struct {
	// Run is the run index within the campaign.
	Run int
	// Outcome is the run's classification.
	Outcome Outcome
	// Origin is the provenance tag of the injected instruction
	// (asm.OriginNone at IR level).
	Origin asm.Origin
	// Target is the injected fault's dynamic target index.
	Target int64
	// Bit is the flipped bit choice.
	Bit uint8
}

// ShardRange is a half-open range [Lo, Hi) of run indices.
type ShardRange struct {
	Lo, Hi int
}

// Runs returns the number of runs in the range.
func (r ShardRange) Runs() int { return r.Hi - r.Lo }

// SplitShards partitions [0, runs) into min(n, runs) contiguous,
// non-empty, near-equal ranges (the first runs%n shards take one extra
// run). The split is deterministic: it depends only on (runs, n), which
// is what lets coordinator and workers derive identical plans from the
// shard count alone.
func SplitShards(runs, n int) []ShardRange {
	if n > runs {
		n = runs
	}
	if n < 1 {
		n = 1
	}
	base, rem := runs/n, runs%n
	out := make([]ShardRange, n)
	lo := 0
	for i := range out {
		hi := lo + base
		if i < rem {
			hi++
		}
		out[i] = ShardRange{lo, hi}
		lo = hi
	}
	return out
}

// ShardResult is one shard's contribution to a campaign: integer
// outcome tallies, the per-run records, and the golden-run facts the
// merge cross-checks for consensus. SetupInstrs carries the executing
// worker's one-time cost (golden run, snapshot builds) on the first
// result that worker reports, so merged perf telemetry accounts for all
// executed instructions exactly once.
type ShardResult struct {
	Range       ShardRange
	Counts      [NumOutcomes]int
	SDCByOrigin [asm.NumOrigins]int

	GoldenDyn        int64
	GoldenInjectable int64

	// SimulatedInstrs and SavedInstrs cover the shard's runs only.
	SimulatedInstrs int64
	SavedInstrs     int64
	// SetupInstrs is the worker's amortized setup cost (golden run plus
	// snapshot builds), reported once per worker.
	SetupInstrs int64

	// Records holds the shard's runs in run order.
	Records []Record
}

// ShardExecutor executes the shards of one campaign. Execute must call
// emit exactly once per range (in any order, from any goroutine — emit
// is serialized by the caller) and may execute a range more than once
// internally as long as a single result is reported, which is what
// makes work-stealing reassignment of straggler shards safe: shards are
// deterministic and idempotent, so the first completed result is as
// good as any.
type ShardExecutor interface {
	Execute(spec Spec, ranges []ShardRange, emit func(ShardResult)) error
}

// RunSharded executes a campaign partitioned into opts.Shards disjoint
// run ranges through opts.Exec (default: in-process, sequential, one
// engine pool) and merges the per-shard results exactly. The merged
// Stats' outcome fields are bit-identical to Run's for the same Spec —
// enforced by TestRunShardedMatchesRun and the scripts/ci.sh sharded
// diff gate — while the perf fields (SimulatedInstrs, SavedInstrs,
// Elapsed) describe the sharded execution.
//
// Campaign telemetry (Spec.Metrics) is flushed here, once, at the
// coordinator: shard executors and workers must never emit campaign_*
// counters, or a sharded campaign would count each run once per shard
// touchpoint (see TestShardedTelemetrySingleCount).
func RunSharded(factory EngineFactory, spec Spec, opts ShardOpts) (Stats, error) {
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return Stats{}, err
	}
	if spec.Pruning != PruneNone {
		return Stats{}, fmt.Errorf("campaign: sharded campaigns sample the full population; combine pruning with sharding at the stratum level instead (run RunPruned per shard of classes)")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	exec := opts.Exec
	if exec == nil {
		if factory == nil {
			return Stats{}, fmt.Errorf("campaign: RunSharded needs an engine factory or a ShardExecutor")
		}
		exec = InProcess(factory)
	}
	ranges := SplitShards(spec.Runs, shards)

	var mu sync.Mutex
	results := make([]*ShardResult, len(ranges))
	emit := func(r ShardResult) {
		mu.Lock()
		defer mu.Unlock()
		for i, rg := range ranges {
			if rg == r.Range {
				if results[i] == nil {
					rc := r
					results[i] = &rc
				}
				return
			}
		}
	}
	if err := exec.Execute(spec, ranges, emit); err != nil {
		return Stats{}, err
	}

	collected := make([]ShardResult, 0, len(ranges))
	for i, r := range results {
		if r == nil {
			return Stats{}, fmt.Errorf("campaign: shard %d (%d..%d) reported no result", i, ranges[i].Lo, ranges[i].Hi)
		}
		collected = append(collected, *r)
	}
	total, err := MergeShards(spec, collected)
	if err != nil {
		return Stats{}, err
	}
	total.Elapsed = time.Since(start)
	flushStats(spec.Metrics, total)
	if spec.Records != nil {
		for _, r := range collected {
			for _, rec := range r.Records {
				spec.Records(rec)
			}
		}
	}
	return total, nil
}

// ShardOpts configures RunSharded.
type ShardOpts struct {
	// Shards is the number of contiguous run ranges (values <= 1 run a
	// single shard; sharding with one shard is still useful as the
	// degenerate case of the process executor).
	Shards int
	// Exec runs the shards; nil uses in-process sequential execution
	// through factory.
	Exec ShardExecutor
}

// MergeShards reassembles per-shard results into campaign Stats. It
// requires the shards to cover [0, spec.Runs) disjointly and to agree
// on the golden run; outcome tallies are summed exactly (integer
// addition, so grouping and order cannot perturb the result).
func MergeShards(spec Spec, shards []ShardResult) (Stats, error) {
	if len(shards) == 0 {
		return Stats{}, fmt.Errorf("campaign: no shard results to merge")
	}
	sorted := append([]ShardResult(nil), shards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Range.Lo < sorted[j].Range.Lo })

	total := Stats{
		Runs:             spec.Runs,
		GoldenDyn:        sorted[0].GoldenDyn,
		GoldenInjectable: sorted[0].GoldenInjectable,
	}
	next := 0
	for _, s := range sorted {
		if s.Range.Lo != next || s.Range.Hi <= s.Range.Lo {
			return Stats{}, fmt.Errorf("campaign: shard ranges do not tile [0,%d): got [%d,%d) where %d expected",
				spec.Runs, s.Range.Lo, s.Range.Hi, next)
		}
		if s.GoldenDyn != total.GoldenDyn || s.GoldenInjectable != total.GoldenInjectable {
			return Stats{}, fmt.Errorf("campaign: golden-run disagreement across shards: (%d dyn, %d injectable) vs (%d, %d) — worker program drift",
				s.GoldenDyn, s.GoldenInjectable, total.GoldenDyn, total.GoldenInjectable)
		}
		sum := 0
		for o, n := range s.Counts {
			total.Counts[o] += n
			sum += n
		}
		if sum != s.Range.Runs() {
			return Stats{}, fmt.Errorf("campaign: shard [%d,%d) tallied %d outcomes for %d runs", s.Range.Lo, s.Range.Hi, sum, s.Range.Runs())
		}
		for o, n := range s.SDCByOrigin {
			total.SDCByOrigin[o] += n
		}
		total.SimulatedInstrs += s.SimulatedInstrs + s.SetupInstrs
		total.SavedInstrs += s.SavedInstrs
		next = s.Range.Hi
	}
	if next != spec.Runs {
		return Stats{}, fmt.Errorf("campaign: shard ranges cover [0,%d) of [0,%d)", next, spec.Runs)
	}
	return total, nil
}

// ShardRunner executes disjoint run ranges of one campaign against a
// persistent engine pool: the golden run happens once, snapshots are
// built once per engine, and every RunRange after that pays only for
// its own injections. One runner per worker process (or per in-process
// executor); not safe for concurrent RunRange calls.
type ShardRunner struct {
	spec      Spec
	engines   []sim.Engine
	snaps     []sim.SnapshotEngine // nil entries: engine runs from scratch
	golden    sim.Result
	goldenOut []byte
	maxSteps  int64
	setup     int64 // golden + snapshot-build instructions
}

// NewShardRunner validates the spec, builds the engine pool
// (spec.Workers engines, default GOMAXPROCS), executes the golden run,
// and captures snapshots per the spec's snapshot policy. The returned
// runner never emits campaign telemetry — counters for a sharded
// campaign are the coordinator's to flush, exactly once.
func NewShardRunner(factory EngineFactory, spec Spec) (*ShardRunner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Pruning != PruneNone {
		return nil, fmt.Errorf("campaign: ShardRunner executes full campaigns only (got Pruning: %s)", spec.Pruning)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Runs {
		workers = spec.Runs
	}
	engines := make([]sim.Engine, workers)
	for i := range engines {
		e, err := factory()
		if err != nil {
			return nil, fmt.Errorf("campaign: engine %d: %w", i, err)
		}
		engines[i] = e
	}
	golden := engines[0].Run(sim.Fault{}, sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference})
	if golden.Status != sim.StatusOK {
		return nil, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return nil, fmt.Errorf("campaign: program has no injectable instructions")
	}
	if err := checkPopulation(spec.Runs, golden.InjectableInstrs); err != nil {
		return nil, err
	}

	r := &ShardRunner{
		spec:      spec,
		engines:   engines,
		snaps:     make([]sim.SnapshotEngine, workers),
		golden:    golden,
		goldenOut: append([]byte(nil), golden.Output...),
		setup:     golden.DynInstrs,
	}
	r.maxSteps = spec.MaxSteps
	if r.maxSteps <= 0 {
		r.maxSteps = HangFactor*golden.DynInstrs + 100_000
	}
	if interval := snapshotInterval(spec, golden.InjectableInstrs); interval > 0 {
		for i, eng := range engines {
			se, ok := eng.(sim.SnapshotEngine)
			if !ok {
				continue
			}
			g := se.BuildSnapshots(interval, sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference})
			r.setup += g.DynInstrs
			if g.Status == sim.StatusOK {
				r.snaps[i] = se
			}
		}
	}
	return r, nil
}

// Golden returns the runner's golden-run result.
func (r *ShardRunner) Golden() sim.Result { return r.golden }

// SetupInstrs returns the one-time instruction cost (golden run plus
// snapshot-building runs) the caller should attribute to exactly one of
// the runner's shard results.
func (r *ShardRunner) SetupInstrs() int64 { return r.setup }

// Close releases snapshot storage.
func (r *ShardRunner) Close() {
	for i, se := range r.snaps {
		if se != nil {
			se.DropSnapshots()
			r.snaps[i] = nil
		}
	}
}

// RunRange executes runs [rg.Lo, rg.Hi) and returns the shard's result
// (SetupInstrs zero; the caller attributes setup once via SetupInstrs).
// Faults, batching, and classification reproduce Run exactly: fault i
// is faultForRun(seed, i, injectable), batches are dealt round-robin
// across the engine pool and sorted by injection point, and outcomes
// land in per-run slots so the tallies are independent of scheduling.
func (r *ShardRunner) RunRange(rg ShardRange) (ShardResult, error) {
	if rg.Lo < 0 || rg.Hi > r.spec.Runs || rg.Lo >= rg.Hi {
		return ShardResult{}, fmt.Errorf("campaign: shard range [%d,%d) outside campaign [0,%d)", rg.Lo, rg.Hi, r.spec.Runs)
	}
	n := rg.Runs()
	faults := make([]sim.Fault, n)
	for i := range faults {
		faults[i] = faultForRun(r.spec.Seed, int64(rg.Lo+i), r.golden.InjectableInstrs)
	}
	workers := len(r.engines)
	if workers > n {
		workers = n
	}
	batches := make([][]job, workers)
	for i := range faults {
		w := i % workers
		batches[w] = append(batches[w], job{i, faults[i]})
	}
	for _, b := range batches {
		b := b
		sort.Slice(b, func(i, j int) bool {
			if b[i].fault.TargetIndex != b[j].fault.TargetIndex {
				return b[i].fault.TargetIndex < b[j].fault.TargetIndex
			}
			return b[i].run < b[j].run
		})
	}

	outcomes := make([]runOutcome, n)
	simulated := make([]int64, workers)
	saved := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng, se := r.engines[w], r.snaps[w]
			opts := sim.Options{MaxSteps: r.maxSteps, Reference: r.spec.Reference}
			for _, j := range batches[w] {
				var res sim.Result
				var skipped int64
				if se != nil {
					res, skipped = se.RunFrom(j.fault, opts)
				} else {
					res = eng.Run(j.fault, opts)
				}
				simulated[w] += res.DynInstrs - skipped
				saved[w] += skipped
				outcomes[j.run] = runOutcome{classify(res, r.goldenOut), res.InjectedOrigin}
			}
		}()
	}
	wg.Wait()

	out := ShardResult{
		Range:            rg,
		GoldenDyn:        r.golden.DynInstrs,
		GoldenInjectable: r.golden.InjectableInstrs,
		Records:          make([]Record, n),
	}
	for i := range outcomes {
		out.Counts[outcomes[i].outcome]++
		if outcomes[i].outcome == OutcomeSDC {
			out.SDCByOrigin[outcomes[i].origin]++
		}
		out.Records[i] = Record{
			Run:     rg.Lo + i,
			Outcome: outcomes[i].outcome,
			Origin:  outcomes[i].origin,
			Target:  faults[i].TargetIndex,
			Bit:     uint8(faults[i].Bit),
		}
	}
	for w := 0; w < workers; w++ {
		out.SimulatedInstrs += simulated[w]
		out.SavedInstrs += saved[w]
	}
	return out, nil
}

// InProcess returns the default ShardExecutor: one ShardRunner in this
// process, shards executed sequentially. It is the reference the
// process executor (internal/shard) is equivalence-tested against, and
// what RunSharded uses when no executor is supplied.
func InProcess(factory EngineFactory) ShardExecutor {
	return inProcessExec{factory}
}

type inProcessExec struct {
	factory EngineFactory
}

func (e inProcessExec) Execute(spec Spec, ranges []ShardRange, emit func(ShardResult)) error {
	runner, err := NewShardRunner(e.factory, spec)
	if err != nil {
		return err
	}
	defer runner.Close()
	for i, rg := range ranges {
		res, err := runner.RunRange(rg)
		if err != nil {
			return err
		}
		if i == 0 {
			res.SetupInstrs = runner.SetupInstrs()
		}
		emit(res)
	}
	return nil
}
