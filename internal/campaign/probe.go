package campaign

import (
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"flowery/internal/equiv"
	"flowery/internal/sim"
)

// ProbeStats summarizes a masked-bit validation probe (MaskedProbe):
// a sample of statically proven-masked (site, bit) faults actually
// injected so the analysis's benign claim is checked against the
// injector instead of trusted blindly.
type ProbeStats struct {
	// Samples is the number of masked-choice injections executed;
	// Benign counts those classified benign. Agreement() is their
	// ratio — the static-vs-dynamic agreement rate, 1.0 when every
	// sampled proven-masked bit was indeed benign.
	Samples int
	Benign  int
	// MaskedSites and MaskedBits describe the proven-masked population
	// the sample was drawn from (live dynamic sites with ≥1 masked
	// choice, and masked (site, choice) pairs); TotalBits is the whole
	// 64 × population alphabet.
	MaskedSites int64
	MaskedBits  int64
	TotalBits   int64
	// Elapsed is the probe wall-clock time.
	Elapsed time.Duration
}

// Agreement returns the fraction of sampled proven-masked injections
// that were benign (1 when nothing was sampled: no claims, no
// disagreement).
func (p ProbeStats) Agreement() float64 {
	if p.Samples == 0 {
		return 1
	}
	return float64(p.Benign) / float64(p.Samples)
}

// MaskedProbe validates spec.Masks dynamically: it traces the golden
// run, partitions the fault population (exactly as RunPruned would),
// enumerates the statically proven-masked choices of live classes, and
// injects a weighted sample of them, classifying each outcome. Every
// sampled fault is one the pruned+masked campaign would have scored
// benign without running — so any non-benign outcome is a soundness
// bug in the masking analysis, surfaced here and gated in CI.
//
// The spec must be a valid PruneClasses spec with Masks set; samples
// caps the injection count.
func MaskedProbe(factory EngineFactory, spec Spec, samples int) (ProbeStats, error) {
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return ProbeStats{}, err
	}
	if spec.Pruning != PruneClasses || spec.Masks == nil {
		return ProbeStats{}, fmt.Errorf("campaign: MaskedProbe needs Pruning: classes and Masks set")
	}
	if samples < 1 {
		return ProbeStats{}, fmt.Errorf("campaign: MaskedProbe samples must be >= 1 (got %d)", samples)
	}

	first, err := factory()
	if err != nil {
		return ProbeStats{}, fmt.Errorf("campaign: engine 0: %w", err)
	}
	te, ok := first.(sim.TraceEngine)
	if !ok {
		return ProbeStats{}, fmt.Errorf("campaign: engine %T does not support def-use tracing", first)
	}

	rules := equiv.DefaultRules(spec.Seed)
	rules.MaxSample = 256
	col := equiv.NewCollector(rules)
	golden := te.RunTraced(sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference, Metrics: spec.Metrics}, col)
	if golden.Status != sim.StatusOK {
		return ProbeStats{}, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return ProbeStats{}, fmt.Errorf("campaign: program has no injectable instructions")
	}
	part := col.Close()
	if part.Population != golden.InjectableInstrs {
		return ProbeStats{}, fmt.Errorf("campaign: tracer recorded %d defs for %d injectable sites (engine def-order contract violated)",
			part.Population, golden.InjectableInstrs)
	}
	goldenOut := append([]byte(nil), golden.Output...)

	// Enumerate the masked population: for each live class, the masked
	// choice list and its (site × choice) mass.
	type maskedClass struct {
		ci      int
		choices []int
		pairs   uint64
	}
	var mcs []maskedClass
	probe := ProbeStats{TotalBits: 64 * part.Population}
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead || len(cl.Sample) == 0 {
			continue
		}
		m := spec.Masks(cl.Static, cl.Width)
		if m == 0 {
			continue
		}
		var choices []int
		for b := 0; b < 64; b++ {
			if m&(1<<uint(b)) != 0 {
				choices = append(choices, b)
			}
		}
		mcs = append(mcs, maskedClass{ci: ci, choices: choices, pairs: uint64(cl.Size) * uint64(len(choices))})
		probe.MaskedSites += cl.Size
		probe.MaskedBits += cl.Size * int64(bits.OnesCount64(m))
	}
	if len(mcs) == 0 {
		probe.Elapsed = time.Since(start)
		return probe, nil // nothing proven masked: vacuous agreement
	}
	var totalPairs uint64
	for i := range mcs {
		totalPairs += mcs[i].pairs
	}

	// Sample (class by choice mass, site from the reservoir, choice
	// uniformly over the class's masked list), deterministically from
	// the seed.
	faults := make([]sim.Fault, samples)
	for i := range faults {
		h := splitmix64(uint64(spec.Seed) ^ splitmix64(uint64(i)+0x5851f42d4c957f2d))
		target := h % totalPairs
		var mc *maskedClass
		for j := range mcs {
			if target < mcs[j].pairs {
				mc = &mcs[j]
				break
			}
			target -= mcs[j].pairs
		}
		cl := &part.Classes[mc.ci]
		h = splitmix64(h)
		site := cl.Sample[h%uint64(len(cl.Sample))]
		h = splitmix64(h)
		faults[i] = sim.Fault{TargetIndex: site, Bit: mc.choices[h%uint64(len(mc.choices))]}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	engines := make([]sim.Engine, workers)
	engines[0] = first
	for i := 1; i < workers; i++ {
		e, err := factory()
		if err != nil {
			return ProbeStats{}, fmt.Errorf("campaign: engine %d: %w", i, err)
		}
		engines[i] = e
	}
	outcomes, _, _ := executeFaults(engines, spec, golden, goldenOut, faults)
	probe.Samples = len(outcomes)
	for i := range outcomes {
		if outcomes[i].outcome == OutcomeBenign {
			probe.Benign++
		}
	}
	probe.Elapsed = time.Since(start)
	return probe, nil
}
