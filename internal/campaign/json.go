package campaign

import (
	"encoding/json"
	"fmt"
	"time"

	"flowery/internal/asm"
)

// CountsByName returns the outcome counts keyed by outcome name
// ("benign", "sdc", "due", "detected").
func (s Stats) CountsByName() map[string]int {
	m := make(map[string]int, NumOutcomes)
	for o := Outcome(0); o < NumOutcomes; o++ {
		m[o.String()] = s.Counts[o]
	}
	return m
}

// RatesByName returns the outcome rates keyed by outcome name (the
// stratified estimates for pruned campaigns).
func (s Stats) RatesByName() map[string]float64 {
	m := make(map[string]float64, NumOutcomes)
	for o := Outcome(0); o < NumOutcomes; o++ {
		m[o.String()] = s.Rate(o)
	}
	return m
}

// SDCOriginsByName returns the non-zero SDC origin counts keyed by the
// provenance tag name of the injected assembly instruction.
func (s Stats) SDCOriginsByName() map[string]int {
	m := make(map[string]int)
	for o := 0; o < asm.NumOrigins; o++ {
		if s.SDCByOrigin[o] > 0 {
			m[asm.Origin(o).String()] = s.SDCByOrigin[o]
		}
	}
	return m
}

// statsJSON is the wire form of Stats: outcome maps use names rather
// than positional arrays so reports and BENCH files stay readable and
// stable if outcomes are ever reordered.
type statsJSON struct {
	Runs             int                `json:"runs"`
	Counts           map[string]int     `json:"counts"`
	Rates            map[string]float64 `json:"rates"`
	SDCByOrigin      map[string]int     `json:"sdc_by_origin,omitempty"`
	GoldenDyn        int64              `json:"golden_dyn_instrs"`
	GoldenInjectable int64              `json:"golden_injectable"`
	SimulatedInstrs  int64              `json:"simulated_instrs"`
	SavedInstrs      int64              `json:"saved_instrs"`
	ElapsedNS        int64              `json:"elapsed_ns,omitempty"`

	Pruned      bool    `json:"pruned,omitempty"`
	Classes     int     `json:"classes,omitempty"`
	DeadSites   int64   `json:"dead_sites,omitempty"`
	DeadBits    int64   `json:"dead_bits,omitempty"`
	MaskedSites int64   `json:"masked_sites,omitempty"`
	MaskedBits  int64   `json:"masked_bits,omitempty"`
	PilotRuns   int     `json:"pilot_runs,omitempty"`
	SDCCI       *ciJSON `json:"sdc_ci95,omitempty"`

	Sectioned        bool `json:"sectioned,omitempty"`
	Sections         int  `json:"sections,omitempty"`
	SectionsExecuted int  `json:"sections_executed,omitempty"`
	SectionsRecalled int  `json:"sections_recalled,omitempty"`
}

type ciJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// MarshalJSON emits Stats with named outcome keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	j := statsJSON{
		Runs:             s.Runs,
		Counts:           s.CountsByName(),
		Rates:            s.RatesByName(),
		SDCByOrigin:      s.SDCOriginsByName(),
		GoldenDyn:        s.GoldenDyn,
		GoldenInjectable: s.GoldenInjectable,
		SimulatedInstrs:  s.SimulatedInstrs,
		SavedInstrs:      s.SavedInstrs,
		ElapsedNS:        s.Elapsed.Nanoseconds(),
		Pruned:           s.Pruned,
		Classes:          s.Classes,
		DeadSites:        s.DeadSites,
		DeadBits:         s.DeadBits,
		MaskedSites:      s.MaskedSites,
		MaskedBits:       s.MaskedBits,
		PilotRuns:        s.PilotRuns,
		Sectioned:        s.Sectioned,
		Sections:         s.Sections,
		SectionsExecuted: s.SectionsExecuted,
		SectionsRecalled: s.SectionsRecalled,
	}
	if len(j.SDCByOrigin) == 0 {
		j.SDCByOrigin = nil
	}
	if s.Pruned {
		_, lo, hi := s.SDCRateCI()
		j.SDCCI = &ciJSON{Lo: lo, Hi: hi}
	}
	return json.Marshal(j)
}

// outcomeByName inverts Outcome.String.
func outcomeByName(name string) (Outcome, bool) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == name {
			return o, true
		}
	}
	return 0, false
}

// originByName inverts asm.Origin.String.
func originByName(name string) (asm.Origin, bool) {
	for o := 0; o < asm.NumOrigins; o++ {
		if asm.Origin(o).String() == name {
			return asm.Origin(o), true
		}
	}
	return 0, false
}

// UnmarshalJSON decodes the named-key wire form emitted by MarshalJSON,
// restoring a Stats whose re-marshaling is byte-identical. This is the
// decode half of the persistent artifact store (internal/store keeps
// campaign stats as their JSON rendering) and of the daemon API client,
// both of which must recall exactly what a batch run would have printed.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var j statsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	out := Stats{
		Runs:             j.Runs,
		GoldenDyn:        j.GoldenDyn,
		GoldenInjectable: j.GoldenInjectable,
		SimulatedInstrs:  j.SimulatedInstrs,
		SavedInstrs:      j.SavedInstrs,
		Elapsed:          time.Duration(j.ElapsedNS),
		Pruned:           j.Pruned,
		Classes:          j.Classes,
		DeadSites:        j.DeadSites,
		DeadBits:         j.DeadBits,
		MaskedSites:      j.MaskedSites,
		MaskedBits:       j.MaskedBits,
		PilotRuns:        j.PilotRuns,
		Sectioned:        j.Sectioned,
		Sections:         j.Sections,
		SectionsExecuted: j.SectionsExecuted,
		SectionsRecalled: j.SectionsRecalled,
	}
	for name, n := range j.Counts {
		o, ok := outcomeByName(name)
		if !ok {
			return fmt.Errorf("campaign: unknown outcome %q in stats", name)
		}
		out.Counts[o] = n
	}
	for name, n := range j.SDCByOrigin {
		o, ok := originByName(name)
		if !ok {
			return fmt.Errorf("campaign: unknown SDC origin %q in stats", name)
		}
		out.SDCByOrigin[o] = n
	}
	if j.Pruned {
		// The rates map carries the exact stratified estimates for pruned
		// campaigns (plain campaigns derive rates from Counts instead).
		for name, r := range j.Rates {
			o, ok := outcomeByName(name)
			if !ok {
				return fmt.Errorf("campaign: unknown outcome %q in rates", name)
			}
			out.EstRates[o] = r
		}
		if j.SDCCI != nil {
			out.SDCLo, out.SDCHi = j.SDCCI.Lo, j.SDCCI.Hi
		}
	}
	*s = out
	return nil
}
