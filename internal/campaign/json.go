package campaign

import (
	"encoding/json"

	"flowery/internal/asm"
)

// CountsByName returns the outcome counts keyed by outcome name
// ("benign", "sdc", "due", "detected").
func (s Stats) CountsByName() map[string]int {
	m := make(map[string]int, NumOutcomes)
	for o := Outcome(0); o < NumOutcomes; o++ {
		m[o.String()] = s.Counts[o]
	}
	return m
}

// RatesByName returns the outcome rates keyed by outcome name (the
// stratified estimates for pruned campaigns).
func (s Stats) RatesByName() map[string]float64 {
	m := make(map[string]float64, NumOutcomes)
	for o := Outcome(0); o < NumOutcomes; o++ {
		m[o.String()] = s.Rate(o)
	}
	return m
}

// SDCOriginsByName returns the non-zero SDC origin counts keyed by the
// provenance tag name of the injected assembly instruction.
func (s Stats) SDCOriginsByName() map[string]int {
	m := make(map[string]int)
	for o := 0; o < asm.NumOrigins; o++ {
		if s.SDCByOrigin[o] > 0 {
			m[asm.Origin(o).String()] = s.SDCByOrigin[o]
		}
	}
	return m
}

// statsJSON is the wire form of Stats: outcome maps use names rather
// than positional arrays so reports and BENCH files stay readable and
// stable if outcomes are ever reordered.
type statsJSON struct {
	Runs             int                `json:"runs"`
	Counts           map[string]int     `json:"counts"`
	Rates            map[string]float64 `json:"rates"`
	SDCByOrigin      map[string]int     `json:"sdc_by_origin,omitempty"`
	GoldenDyn        int64              `json:"golden_dyn_instrs"`
	GoldenInjectable int64              `json:"golden_injectable"`
	SimulatedInstrs  int64              `json:"simulated_instrs"`
	SavedInstrs      int64              `json:"saved_instrs"`
	ElapsedNS        int64              `json:"elapsed_ns,omitempty"`

	Pruned    bool    `json:"pruned,omitempty"`
	Classes   int     `json:"classes,omitempty"`
	DeadSites int64   `json:"dead_sites,omitempty"`
	PilotRuns int     `json:"pilot_runs,omitempty"`
	SDCCI     *ciJSON `json:"sdc_ci95,omitempty"`
}

type ciJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// MarshalJSON emits Stats with named outcome keys.
func (s Stats) MarshalJSON() ([]byte, error) {
	j := statsJSON{
		Runs:             s.Runs,
		Counts:           s.CountsByName(),
		Rates:            s.RatesByName(),
		SDCByOrigin:      s.SDCOriginsByName(),
		GoldenDyn:        s.GoldenDyn,
		GoldenInjectable: s.GoldenInjectable,
		SimulatedInstrs:  s.SimulatedInstrs,
		SavedInstrs:      s.SavedInstrs,
		ElapsedNS:        s.Elapsed.Nanoseconds(),
		Pruned:           s.Pruned,
		Classes:          s.Classes,
		DeadSites:        s.DeadSites,
		PilotRuns:        s.PilotRuns,
	}
	if len(j.SDCByOrigin) == 0 {
		j.SDCByOrigin = nil
	}
	if s.Pruned {
		_, lo, hi := s.SDCRateCI()
		j.SDCCI = &ciJSON{Lo: lo, Hi: hi}
	}
	return json.Marshal(j)
}
