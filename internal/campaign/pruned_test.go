package campaign

import (
	"math"
	"strings"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
)

func lowerFactory(m *ir.Module) EngineFactory {
	prog, err := backend.Lower(m)
	if err != nil {
		panic(err)
	}
	return func() (sim.Engine, error) { return machine.New(m, prog) }
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		frag string // expected error substring; "" means valid
	}{
		{"ok plain", Spec{Runs: 10}, ""},
		{"ok pruned", Spec{Runs: 10, Pruning: PruneClasses, PilotsPerClass: 3}, ""},
		{"ok max pilots", Spec{Runs: 10, Pruning: PruneClasses, PilotsPerClass: MaxPilotsPerClass}, ""},
		{"ok snapshots off", Spec{Runs: 10, Snapshots: SnapshotsOff}, ""},
		// Telemetry fields never affect validity (they are observers, not
		// campaign parameters).
		{"ok telemetry", Spec{Runs: 10, Metrics: telemetry.New()}, ""},
		{"telemetry does not mask errors", Spec{Runs: 0, Metrics: telemetry.New()}, "Runs must be positive"},
		{"zero runs", Spec{Runs: 0}, "Runs must be positive"},
		{"negative runs", Spec{Runs: -5}, "Runs must be positive"},
		{"negative maxsteps", Spec{Runs: 10, MaxSteps: -1}, "MaxSteps"},
		{"snapshots below off", Spec{Runs: 10, Snapshots: -2}, "Snapshots"},
		{"pilots without pruning", Spec{Runs: 10, PilotsPerClass: 2}, "only meaningful"},
		{"zero pilots", Spec{Runs: 10, Pruning: PruneClasses}, "PilotsPerClass must be >= 1"},
		{"too many pilots", Spec{Runs: 10, Pruning: PruneClasses, PilotsPerClass: MaxPilotsPerClass + 1}, "PilotsPerClass must be <="},
		{"bad mode", Spec{Runs: 10, Pruning: Pruning(9)}, "unknown pruning mode"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.frag == "" {
				if err != nil {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Errorf("expected error containing %q, got nil", c.frag)
			} else if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestRunsExceedingPopulationRejected(t *testing.T) {
	// buildTarget has on the order of a hundred injectable sites; ten
	// million runs dwarf its 64×sites distinct-fault population.
	_, err := Run(factory(buildTarget()), Spec{Runs: 10_000_000, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "fault population") {
		t.Fatalf("oversized campaign accepted (err=%v)", err)
	}
	_, err = RunPruned(factory(buildTarget()), Spec{Runs: 10_000_000, Seed: 1, Pruning: PruneClasses, PilotsPerClass: 2})
	if err == nil || !strings.Contains(err.Error(), "fault population") {
		t.Fatalf("oversized pruned campaign accepted (err=%v)", err)
	}
}

// TestFaultForRunGolden pins the fault sequence: any change to
// splitmix64 or faultForRun silently invalidates every recorded
// campaign, so drift must fail loudly.
func TestFaultForRunGolden(t *testing.T) {
	want := []struct {
		seed, i, target int64
		bit             int
	}{
		{1, 0, 265, 32},
		{1, 1, 768, 19},
		{1, 2, 977, 29},
		{1, 3, 879, 62},
		{1, 4, 960, 48},
		{1, 5, 331, 1},
		{2023, 0, 527, 59},
		{2023, 1, 771, 14},
		{2023, 2, 700, 23},
		{2023, 3, 627, 36},
		{2023, 4, 252, 4},
		{2023, 5, 315, 56},
	}
	for _, w := range want {
		f := faultForRun(w.seed, w.i, 1000)
		if f.TargetIndex != w.target || f.Bit != w.bit {
			t.Errorf("faultForRun(%d, %d, 1000) = (%d, %d), want (%d, %d)",
				w.seed, w.i, f.TargetIndex, f.Bit, w.target, w.bit)
		}
	}
	pins := map[uint64]uint64{
		0:          16294208416658607535,
		1:          10451216379200822465,
		0xdeadbeef: 5395234354446855067,
	}
	for in, out := range pins {
		if got := splitmix64(in); got != out {
			t.Errorf("splitmix64(%#x) = %d, want %d", in, got, out)
		}
	}
}

func TestPrunedCampaignInterp(t *testing.T) {
	m := buildTarget()
	full, err := Run(factory(m), Spec{Runs: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(factory(m), Spec{Runs: 2000, Seed: 7, Pruning: PruneClasses, PilotsPerClass: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Pruned {
		t.Fatal("Pruned flag not set")
	}
	if pruned.Classes == 0 || pruned.PilotRuns == 0 {
		t.Fatalf("empty plan: %d classes, %d pilots", pruned.Classes, pruned.PilotRuns)
	}
	if pruned.PilotRuns >= full.Runs/2 {
		t.Fatalf("pruning barely reduced work: %d pilots for %d runs", pruned.PilotRuns, full.Runs)
	}
	total := 0
	for _, c := range pruned.Counts {
		total += c
	}
	if total != pruned.Runs {
		t.Fatalf("scaled counts sum to %d, want %d", total, pruned.Runs)
	}
	sdcOrigins := 0
	for _, c := range pruned.SDCByOrigin {
		sdcOrigins += c
	}
	if sdcOrigins != pruned.Counts[OutcomeSDC] {
		t.Fatalf("origin counts sum to %d, want SDC count %d", sdcOrigins, pruned.Counts[OutcomeSDC])
	}
	rateSum := 0.0
	for o := Outcome(0); o < NumOutcomes; o++ {
		rateSum += pruned.Rate(o)
	}
	if math.Abs(rateSum-1) > 1e-9 {
		t.Fatalf("estimated rates sum to %v, want 1", rateSum)
	}
	// The stratified estimate must agree with the full campaign: the two
	// 95% intervals on the SDC rate must overlap.
	_, flo, fhi := full.SDCRateCI()
	p, plo, phi := pruned.SDCRateCI()
	if plo > p || phi < p {
		t.Fatalf("pruned CI [%v, %v] excludes its own estimate %v", plo, phi, p)
	}
	if phi < flo || plo > fhi {
		t.Fatalf("pruned SDC %v [%v, %v] disagrees with full %v [%v, %v]",
			p, plo, phi, full.SDCRate(), flo, fhi)
	}
}

func TestPrunedCampaignMachine(t *testing.T) {
	m := buildTarget()
	fac := lowerFactory(m)
	full, err := Run(fac, Spec{Runs: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := RunPruned(fac, Spec{Runs: 2000, Seed: 11, Pruning: PruneClasses, PilotsPerClass: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PilotRuns >= full.Runs/2 {
		t.Fatalf("pruning barely reduced work: %d pilots for %d runs", pruned.PilotRuns, full.Runs)
	}
	_, flo, fhi := full.SDCRateCI()
	p, plo, phi := pruned.SDCRateCI()
	if phi < flo || plo > fhi {
		t.Fatalf("pruned SDC %v [%v, %v] disagrees with full %v [%v, %v]",
			p, plo, phi, full.SDCRate(), flo, fhi)
	}
}

func TestPrunedDeterministicAcrossWorkerCounts(t *testing.T) {
	m := buildTarget()
	spec := Spec{Runs: 1000, Seed: 3, Pruning: PruneClasses, PilotsPerClass: 3}
	a := spec
	a.Workers = 1
	b := spec
	b.Workers = 4
	sa, err := RunPruned(factory(m), a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := RunPruned(factory(m), b)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Counts != sb.Counts || sa.EstRates != sb.EstRates ||
		sa.PilotRuns != sb.PilotRuns || sa.Classes != sb.Classes ||
		sa.DeadSites != sb.DeadSites || sa.SDCByOrigin != sb.SDCByOrigin {
		t.Fatalf("worker count changed pruned results:\n%+v\nvs\n%+v", sa.Counts, sb.Counts)
	}
}

func TestPrunedRejectsNonTracingEngine(t *testing.T) {
	fac := func() (sim.Engine, error) { return opaqueEngine{interp.New(buildTarget())}, nil }
	_, err := RunPruned(fac, Spec{Runs: 100, Seed: 1, Pruning: PruneClasses, PilotsPerClass: 2})
	if err == nil || !strings.Contains(err.Error(), "def-use tracing") {
		t.Fatalf("non-tracing engine accepted (err=%v)", err)
	}
}

// opaqueEngine hides the tracing (and snapshotting) capability of the
// engine it wraps.
type opaqueEngine struct{ e sim.Engine }

func (o opaqueEngine) Run(f sim.Fault, opts sim.Options) sim.Result { return o.e.Run(f, opts) }
