package campaign

import (
	"testing"

	"flowery/internal/telemetry"
)

func TestSplitShards(t *testing.T) {
	cases := []struct {
		runs, n int
		want    []ShardRange
	}{
		{10, 1, []ShardRange{{0, 10}}},
		{10, 3, []ShardRange{{0, 4}, {4, 7}, {7, 10}}},
		{10, 4, []ShardRange{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{3, 8, []ShardRange{{0, 1}, {1, 2}, {2, 3}}},
		{5, 0, []ShardRange{{0, 5}}},
	}
	for _, c := range cases {
		got := SplitShards(c.runs, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("SplitShards(%d,%d) = %v", c.runs, c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitShards(%d,%d)[%d] = %v, want %v", c.runs, c.n, i, got[i], c.want[i])
			}
		}
	}
}

// outcomesEqual compares the deterministic fields of two Stats (perf
// fields depend on scheduling and are exempt by contract).
func outcomesEqual(a, b Stats) bool {
	return a.Runs == b.Runs && a.Counts == b.Counts && a.SDCByOrigin == b.SDCByOrigin &&
		a.GoldenDyn == b.GoldenDyn && a.GoldenInjectable == b.GoldenInjectable
}

func TestRunShardedMatchesRun(t *testing.T) {
	m := buildTarget()
	single, err := Run(factory(m), Spec{Runs: 240, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5, 16, 240, 1000} {
		sharded, err := RunSharded(factory(m), Spec{Runs: 240, Seed: 7}, ShardOpts{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !outcomesEqual(single, sharded) {
			t.Fatalf("shards=%d: outcome drift:\nsingle  %+v\nsharded %+v", shards, single, sharded)
		}
	}
}

func TestRunShardedRecordsStream(t *testing.T) {
	m := buildTarget()
	spec := Spec{Runs: 120, Seed: 3}
	var fromRun []Record
	runSpec := spec
	runSpec.Records = func(r Record) { fromRun = append(fromRun, r) }
	if _, err := Run(factory(m), runSpec); err != nil {
		t.Fatal(err)
	}
	var fromSharded []Record
	shSpec := spec
	shSpec.Records = func(r Record) { fromSharded = append(fromSharded, r) }
	if _, err := RunSharded(factory(m), shSpec, ShardOpts{Shards: 7}); err != nil {
		t.Fatal(err)
	}
	if len(fromRun) != spec.Runs || len(fromSharded) != spec.Runs {
		t.Fatalf("record counts: run=%d sharded=%d want %d", len(fromRun), len(fromSharded), spec.Runs)
	}
	for i := range fromRun {
		if fromRun[i] != fromSharded[i] {
			t.Fatalf("record %d: run=%+v sharded=%+v", i, fromRun[i], fromSharded[i])
		}
		if fromRun[i].Run != i {
			t.Fatalf("record %d carries run index %d", i, fromRun[i].Run)
		}
	}
}

// TestShardedTelemetrySingleCount is the double-count regression test:
// campaign counters must be flushed once at the coordinator, so
// campaign_runs_total equals Spec.Runs no matter how many shards (or
// shard-level retries) executed.
func TestShardedTelemetrySingleCount(t *testing.T) {
	reg := telemetry.New()
	spec := Spec{Runs: 150, Seed: 11, Metrics: reg}
	st, err := RunSharded(factory(buildTarget()), spec, ShardOpts{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign_runs_total").Value(); got != int64(spec.Runs) {
		t.Fatalf("campaign_runs_total = %d, want %d (per-shard double counting)", got, spec.Runs)
	}
	for o := Outcome(0); o < NumOutcomes; o++ {
		if n := st.Counts[o]; n > 0 {
			name := `campaign_outcomes_total{outcome="` + o.String() + `"}`
			if got := reg.Counter(name).Value(); got != int64(n) {
				t.Fatalf("%s = %d, want %d", name, got, n)
			}
		}
	}
}

func TestRunShardedRejectsPruning(t *testing.T) {
	_, err := RunSharded(factory(buildTarget()), Spec{Runs: 50, Seed: 1, Pruning: PruneClasses, PilotsPerClass: 2}, ShardOpts{Shards: 2})
	if err == nil {
		t.Fatal("pruned sharded campaign accepted")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	spec := Spec{Runs: 10, Seed: 1}
	mk := func(lo, hi int, dyn int64) ShardResult {
		r := ShardResult{Range: ShardRange{lo, hi}, GoldenDyn: dyn, GoldenInjectable: 5}
		r.Counts[OutcomeBenign] = hi - lo
		return r
	}
	if _, err := MergeShards(spec, []ShardResult{mk(0, 5, 100), mk(5, 10, 100)}); err != nil {
		t.Fatalf("valid merge rejected: %v", err)
	}
	if _, err := MergeShards(spec, []ShardResult{mk(0, 5, 100)}); err == nil {
		t.Fatal("gap accepted")
	}
	if _, err := MergeShards(spec, []ShardResult{mk(0, 6, 100), mk(5, 10, 100)}); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, err := MergeShards(spec, []ShardResult{mk(0, 5, 100), mk(5, 10, 101)}); err == nil {
		t.Fatal("golden disagreement accepted")
	}
	bad := mk(0, 5, 100)
	bad.Counts[OutcomeBenign] = 3 // tallies don't sum to the range
	if _, err := MergeShards(spec, []ShardResult{bad, mk(5, 10, 100)}); err == nil {
		t.Fatal("mistallied shard accepted")
	}
	// Merge order must not matter (integer sums).
	a, err := MergeShards(spec, []ShardResult{mk(5, 10, 100), mk(0, 5, 100)})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MergeShards(spec, []ShardResult{mk(0, 5, 100), mk(5, 10, 100)})
	if !outcomesEqual(a, b) {
		t.Fatal("merge is order-sensitive")
	}
}

func TestShardRunnerReuse(t *testing.T) {
	m := buildTarget()
	spec := Spec{Runs: 90, Seed: 5}
	runner, err := NewShardRunner(factory(m), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()
	// Two disjoint ranges off one runner must equal the same ranges off
	// fresh runners (snapshot reuse cannot leak state between shards).
	r1, err := runner.RunRange(ShardRange{0, 45})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runner.RunRange(ShardRange{45, 90})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewShardRunner(factory(m), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	f2, err := fresh.RunRange(ShardRange{45, 90})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counts != f2.Counts || r2.SDCByOrigin != f2.SDCByOrigin {
		t.Fatalf("runner reuse perturbed outcomes: %v vs %v", r2.Counts, f2.Counts)
	}
	if r1.Counts == r2.Counts && r1.Records[0] == r2.Records[0] {
		t.Fatal("distinct ranges produced identical results; range plumbing broken")
	}
	if _, err := runner.RunRange(ShardRange{80, 100}); err == nil {
		t.Fatal("out-of-campaign range accepted")
	}
}
