package campaign

import (
	"testing"

	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/dup"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// outcomeEqual compares the deterministic portion of two Stats — the
// fields the snapshot engine must not perturb. Telemetry (SimulatedInstrs,
// SavedInstrs, Elapsed) is scheduling-dependent and excluded.
func outcomeEqual(a, b Stats) bool {
	return a.Runs == b.Runs &&
		a.Counts == b.Counts &&
		a.SDCByOrigin == b.SDCByOrigin &&
		a.GoldenDyn == b.GoldenDyn &&
		a.GoldenInjectable == b.GoldenInjectable
}

func interpFactory(t *testing.T, name string) EngineFactory {
	t.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	m := bm.Build()
	return func() (sim.Engine, error) { return interp.New(m), nil }
}

func machineFactory(t *testing.T, name string, protect bool) EngineFactory {
	t.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	m := bm.Build()
	if protect {
		if err := dup.ApplyFull(m); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := backend.Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	return func() (sim.Engine, error) { return machine.New(m, prog) }
}

// TestCampaignSnapshotsBitIdentical is the acceptance gate for the
// fast-forward engine: for the same Spec, campaign outcome statistics
// with snapshots enabled must be bit-identical to scratch execution —
// across benchmarks, at both layers, and on a duplication-protected
// program (whose detections truncate runs early).
func TestCampaignSnapshotsBitIdentical(t *testing.T) {
	cases := []struct {
		tag     string
		factory EngineFactory
	}{
		{"bfs/ir", interpFactory(t, "bfs")},
		{"quicksort/ir", interpFactory(t, "quicksort")},
		{"fft2/ir", interpFactory(t, "fft2")},
		{"bfs/asm", machineFactory(t, "bfs", false)},
		{"quicksort/asm", machineFactory(t, "quicksort", false)},
		{"fft2/asm", machineFactory(t, "fft2", false)},
		{"bfs/asm+dup", machineFactory(t, "bfs", true)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.tag, func(t *testing.T) {
			t.Parallel()
			scratch, err := Run(c.factory, Spec{Runs: 250, Seed: 11, Workers: 2, Snapshots: -1})
			if err != nil {
				t.Fatal(err)
			}
			snap, err := Run(c.factory, Spec{Runs: 250, Seed: 11, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !outcomeEqual(scratch, snap) {
				t.Fatalf("snapshots changed outcomes:\nscratch %+v\nsnapshot %+v", scratch, snap)
			}
			if scratch.SavedInstrs != 0 {
				t.Fatalf("scratch campaign reported saved instructions: %d", scratch.SavedInstrs)
			}
			// All these benchmarks are large enough for the interval policy
			// to engage; with hundreds of uniform targets some must land
			// past the first checkpoint.
			if iv := snapshotInterval(Spec{}, snap.GoldenInjectable); iv == 0 {
				t.Fatalf("benchmark too small for snapshots (injectable %d)", snap.GoldenInjectable)
			}
			if snap.SavedInstrs == 0 {
				t.Fatalf("snapshot campaign fast-forwarded nothing")
			}
		})
	}
}

// TestCampaignSnapshotWorkerInvariance: with fast-forwarding on, worker
// count still cannot perturb outcomes (per-run slots + pre-derived
// faults make aggregation a pure function of the seed).
func TestCampaignSnapshotWorkerInvariance(t *testing.T) {
	f := interpFactory(t, "bfs")
	one, err := Run(f, Spec{Runs: 300, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(f, Spec{Runs: 300, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !outcomeEqual(one, eight) {
		t.Fatalf("worker count changed outcomes:\n1 worker %+v\n8 workers %+v", one, eight)
	}
}

// TestSnapshotIntervalPolicy pins the auto-tuning contract of
// Spec.Snapshots.
func TestSnapshotIntervalPolicy(t *testing.T) {
	if iv := snapshotInterval(Spec{Snapshots: -1}, 1_000_000); iv != 0 {
		t.Fatalf("Snapshots=-1 did not disable fast-forwarding (interval %d)", iv)
	}
	if iv := snapshotInterval(Spec{}, 1000); iv != 0 {
		t.Fatalf("tiny program got interval %d, want scratch execution", iv)
	}
	if iv := snapshotInterval(Spec{}, 960_000); iv != 960_000/DefaultSnapshotTarget {
		t.Fatalf("auto interval = %d, want %d", iv, 960_000/DefaultSnapshotTarget)
	}
	if iv := snapshotInterval(Spec{Snapshots: 10}, 960_000); iv != 96_000 {
		t.Fatalf("explicit target ignored: interval %d, want 96000", iv)
	}
	// The floor keeps checkpoints from being denser than their cost.
	if iv := snapshotInterval(Spec{}, 10_000); iv != minSnapshotInterval {
		t.Fatalf("interval floor not applied: %d", iv)
	}
}

// TestFaultForRunDeterminism: a run's fault is a pure function of
// (seed, index, injectable) — the property the per-run outcome slots and
// the cross-worker determinism guarantee rest on.
func TestFaultForRunDeterminism(t *testing.T) {
	const injectable = 54321
	for i := int64(0); i < 1000; i++ {
		a := faultForRun(77, i, injectable)
		b := faultForRun(77, i, injectable)
		if a != b {
			t.Fatalf("run %d: fault not deterministic: %+v vs %+v", i, a, b)
		}
	}
	// Different seeds must decorrelate the sequence.
	same := 0
	for i := int64(0); i < 1000; i++ {
		if faultForRun(77, i, injectable) == faultForRun(78, i, injectable) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 77 and 78 collide on %d of 1000 faults", same)
	}
}

// TestCampaignTinyProgramDegrades: programs below the snapshot threshold
// silently fall back to scratch runs.
func TestCampaignTinyProgramDegrades(t *testing.T) {
	st, err := Run(factory(buildTarget()), Spec{Runs: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SavedInstrs != 0 {
		t.Fatalf("tiny program used snapshots (saved %d)", st.SavedInstrs)
	}
	if st.SimulatedInstrs == 0 {
		t.Fatal("no simulated-instruction telemetry")
	}
}
