package campaign

import (
	"testing"

	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

func buildTarget() *ir.Module {
	m := ir.NewModule("t")
	g := m.NewGlobalI64("data", []int64{9, 8, 7, 6, 5, 4, 3, 2})
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	sum := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 8), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		v := b.LoadElem(ir.I64, g, i)
		b.Store(b.Add(b.Load(ir.I64, sum), b.Mul(v, i)), sum)
	})
	b.PrintI64(b.Load(ir.I64, sum))
	b.Ret(ir.ConstInt(ir.I64, 0))
	return m
}

func factory(m *ir.Module) EngineFactory {
	return func() (sim.Engine, error) { return interp.New(m), nil }
}

func TestCampaignBasics(t *testing.T) {
	st, err := Run(factory(buildTarget()), Spec{Runs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range st.Counts {
		total += c
	}
	if total != 300 || st.Runs != 300 {
		t.Fatalf("counts don't sum to runs: %v", st.Counts)
	}
	if st.Counts[OutcomeSDC] == 0 {
		t.Fatal("no SDCs on an unprotected program; injector inert")
	}
	if st.Counts[OutcomeDetected] != 0 {
		t.Fatal("detections on an unprotected program")
	}
	if st.GoldenDyn == 0 || st.GoldenInjectable == 0 {
		t.Fatal("golden stats missing")
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	m := buildTarget()
	a, err := Run(factory(m), Spec{Runs: 200, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(factory(m), Spec{Runs: 200, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Fatalf("worker count changed results: %v vs %v", a.Counts, b.Counts)
	}
	c, err := Run(factory(m), Spec{Runs: 200, Seed: 43, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts == c.Counts {
		t.Fatal("different seeds produced identical outcome vectors (implausible)")
	}
}

func TestCoverageMath(t *testing.T) {
	raw := Stats{Runs: 100}
	raw.Counts[OutcomeSDC] = 40
	prot := Stats{Runs: 100}
	prot.Counts[OutcomeSDC] = 10
	if c := Coverage(raw, prot); c < 0.75-1e-9 || c > 0.75+1e-9 {
		t.Fatalf("coverage = %v, want 0.75", c)
	}
	// Protection can't make coverage negative.
	worse := Stats{Runs: 100}
	worse.Counts[OutcomeSDC] = 50
	if c := Coverage(raw, worse); c != 0 {
		t.Fatalf("negative coverage not clamped: %v", c)
	}
	// Zero baseline counts as fully covered.
	zero := Stats{Runs: 100}
	if c := Coverage(zero, prot); c != 1 {
		t.Fatalf("zero-baseline coverage = %v, want 1", c)
	}
}

func TestFaultDistribution(t *testing.T) {
	// Fault targets must span the injectable range roughly uniformly.
	const n = 2000
	const injectable = 1000
	buckets := make([]int, 4)
	bitBuckets := make([]int, 8)
	for i := int64(0); i < n; i++ {
		f := faultForRun(7, i, injectable)
		if f.TargetIndex < 1 || f.TargetIndex > injectable {
			t.Fatalf("target %d out of range", f.TargetIndex)
		}
		if f.Bit < 0 || f.Bit > 63 {
			t.Fatalf("bit %d out of range", f.Bit)
		}
		buckets[(f.TargetIndex-1)*4/injectable]++
		bitBuckets[f.Bit/8]++
	}
	for i, c := range buckets {
		if c < n/8 {
			t.Fatalf("quartile %d badly undersampled: %d of %d", i, c, n)
		}
	}
	// Bits must be uniform too (each octile expects n/8 = 250).
	for i, c := range bitBuckets {
		if c < n/16 {
			t.Fatalf("bit octile %d badly undersampled: %d of %d", i, c, n)
		}
	}
}

func TestClassify(t *testing.T) {
	golden := []byte("42\n")
	cases := []struct {
		res  sim.Result
		want Outcome
	}{
		{sim.Result{Status: sim.StatusDetected, Injected: true}, OutcomeDetected},
		{sim.Result{Status: sim.StatusTrap, Trap: sim.TrapBadAddress, Injected: true}, OutcomeDUE},
		{sim.Result{Status: sim.StatusOK, Output: []byte("42\n"), Injected: true}, OutcomeBenign},
		{sim.Result{Status: sim.StatusOK, Output: []byte("43\n"), Injected: true}, OutcomeSDC},
		{sim.Result{Status: sim.StatusOK, Output: []byte("43\n"), Injected: false}, OutcomeBenign},
	}
	for i, c := range cases {
		if got := classify(c.res, golden); got != c.want {
			t.Errorf("case %d: classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, err := Run(factory(buildTarget()), Spec{Runs: 0, Seed: 1}); err == nil {
		t.Fatal("zero runs accepted")
	}
	// A program that traps on its golden run must be rejected.
	m := ir.NewModule("bad")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.SDiv(ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 0)))
	if _, err := Run(factory(m), Spec{Runs: 10, Seed: 1}); err == nil {
		t.Fatal("trapping golden run accepted")
	}
}

func TestHangsClassifiedAsDUE(t *testing.T) {
	// A program where corrupting the loop counter easily produces very
	// long runs: the campaign must classify them as DUEs, quickly.
	m := ir.NewModule("hang")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)
	n := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 1000), n)
	b.While("w", func() ir.Value {
		return b.ICmp(ir.PredNE, b.Load(ir.I64, n), ir.ConstInt(ir.I64, 0))
	}, func() {
		b.Store(b.Sub(b.Load(ir.I64, n), ir.ConstInt(ir.I64, 1)), n)
	})
	b.PrintI64(b.Load(ir.I64, n))
	b.Ret(ir.ConstInt(ir.I64, 0))

	st, err := Run(factory(m), Spec{Runs: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[OutcomeDUE] == 0 {
		t.Fatal("no DUE outcomes; hang classification untested")
	}
}
